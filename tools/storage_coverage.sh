#!/usr/bin/env bash
# Line-coverage gate for src/storage, built on plain gcov (the CI image
# carries no gcovr; the awk is mawk-compatible).  Usage:
#
#   tools/storage_coverage.sh <coverage-build-dir> [min-line-pct]
#
# Expects the build to have been configured with -DLOWDIFF_COVERAGE=ON and
# the test suite to have run (ctest -L tier1), so .gcda data files exist.
# Runs `gcov -n` over every src/storage object, aggregates "Lines
# executed" across files that live under src/storage/ (sources and
# headers), prints a per-file table, and exits nonzero when the aggregate
# line coverage falls below the floor.
#
# The floor is the post-PR-7 baseline minus a small slack; raise it when
# coverage rises, never lower it to make a regression pass.
set -euo pipefail

build_dir=${1:?usage: storage_coverage.sh <coverage-build-dir> [min-line-pct]}
min_pct=${2:-85}

gcda_list=$(find "$build_dir" -path '*src/storage*' -name '*.gcda' | sort)
if [[ -z "$gcda_list" ]]; then
  echo "storage_coverage: no .gcda files under $build_dir/src/storage —" \
       "configure with -DLOWDIFF_COVERAGE=ON and run the tests first" >&2
  exit 2
fi

# gcov emits, per source it touched:   File '<path>'
#                                      Lines executed:NN.NN% of MM
# Keep only files under src/storage (the gate's subject; the same objects
# also pull in headers from common/ etc., which other gates own).  The
# same header shows up once per including object — keep the best view of
# each file (a line is covered if any object covered it).
rows=$(echo "$gcda_list" | xargs gcov -n 2>/dev/null | awk '
  /^File / {
    file = $0
    sub(/^File .'\''/, "", file); sub(/'\''$/, "", file)
    interesting = (file ~ /src\/storage\//)
    next
  }
  /^Lines executed:/ && interesting {
    pct = $0; sub(/^Lines executed:/, "", pct); sub(/% of .*/, "", pct)
    n = $NF
    key = file
    sub(/^.*src\/storage\//, "src/storage/", key)
    if (!(key in best_n) || pct * n > best_pct[key] * best_n[key]) {
      best_pct[key] = pct; best_n[key] = n
    }
    interesting = 0
  }
  END {
    for (k in best_n) printf "%s %d %.2f\n", k, best_n[k], best_pct[k]
  }' | sort)

if [[ -z "$rows" ]]; then
  echo "storage_coverage: gcov reported no src/storage lines" >&2
  exit 2
fi

printf '%-52s %8s %8s\n' "src/storage file" "lines" "cover%"
echo "$rows" | awk '{ printf "%-52s %8d %7.2f%%\n", $1, $2, $3 }'
echo "$rows" | awk -v floor="$min_pct" '
  { total += $2; covered += $2 * $3 / 100.0 }
  END {
    agg = 100.0 * covered / total
    printf "%-52s %8d %7.2f%%  (floor %.1f%%)\n", "TOTAL", total, agg, floor
    if (agg < floor) {
      printf "storage_coverage: FAILED — %.2f%% < %.1f%% floor\n", agg, floor > "/dev/stderr"
      exit 1
    }
  }'
