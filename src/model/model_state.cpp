#include "model/model_state.h"

#include <cmath>

#include "common/rng.h"
#include "tensor/ops.h"

namespace lowdiff {

ModelState::ModelState(ModelSpec spec)
    : spec_(std::move(spec)),
      offsets_(spec_.layer_offsets()),
      params_(spec_.param_count()),
      m_(spec_.param_count()),
      v_(spec_.param_count()) {}

std::span<float> ModelState::layer_params(std::size_t i) {
  return params_.span().subspan(layer_offset(i), layer_size(i));
}

std::span<const float> ModelState::layer_params(std::size_t i) const {
  return params_.span().subspan(layer_offset(i), layer_size(i));
}

std::span<float> ModelState::layer_moment1(std::size_t i) {
  return m_.span().subspan(layer_offset(i), layer_size(i));
}

std::span<float> ModelState::layer_moment2(std::size_t i) {
  return v_.span().subspan(layer_offset(i), layer_size(i));
}

std::size_t ModelState::layer_offset(std::size_t i) const {
  LOWDIFF_ENSURE(i < spec_.layers.size(), "layer index out of range");
  return offsets_[i];
}

std::size_t ModelState::layer_size(std::size_t i) const {
  LOWDIFF_ENSURE(i < spec_.layers.size(), "layer index out of range");
  return offsets_[i + 1] - offsets_[i];
}

void ModelState::init_random(std::uint64_t seed) {
  for (std::size_t i = 0; i < spec_.layers.size(); ++i) {
    SplitMix64 sm(seed ^ (0x9E37ull * (i + 1)));
    Xoshiro256 rng(sm.next());
    const auto& shape = spec_.layers[i].shape;
    // He initialization: stddev = sqrt(2 / fan_in); 1-D tensors get zeros
    // (biases / norm offsets) which matches common practice.
    if (shape.size() <= 1) {
      for (auto& v : layer_params(i)) v = 0.0f;
    } else {
      std::size_t fan_in = 1;
      for (std::size_t d = 1; d < shape.size(); ++d) fan_in *= shape[d];
      const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
      ops::fill_normal(layer_params(i), rng, stddev);
    }
  }
  m_.zero();
  v_.zero();
  step_ = 0;
}

ModelState ModelState::clone() const {
  ModelState out(spec_);
  ops::copy(params_.span(), out.params_.span());
  ops::copy(m_.span(), out.m_.span());
  ops::copy(v_.span(), out.v_.span());
  out.step_ = step_;
  return out;
}

bool ModelState::bit_equal(const ModelState& other) const {
  return step_ == other.step_ && ops::bit_equal(params_.span(), other.params_.span()) &&
         ops::bit_equal(m_.span(), other.m_.span()) &&
         ops::bit_equal(v_.span(), other.v_.span());
}

}  // namespace lowdiff
