#pragma once

/// \file mlp.h
/// A real, trainable multi-layer perceptron with exact forward/backward.
///
/// The model-zoo workloads use synthetic gradients because checkpoint cost
/// only depends on bytes; this MLP exists to prove the *algebra*: that
/// replaying reused gradients through Adam reconstructs training state
/// bit-exactly (Finding 1 / Eq. 2), and that recovered models keep learning
/// with an unchanged loss trajectory.  Architecture: Linear→ReLU stacks with
/// a softmax cross-entropy head.

#include <cstdint>
#include <span>
#include <vector>

#include "model/model_spec.h"
#include "model/model_state.h"
#include "tensor/tensor.h"

namespace lowdiff {

struct MlpConfig {
  std::size_t input_dim = 16;
  std::vector<std::size_t> hidden = {32, 32};
  std::size_t num_classes = 4;
};

class MlpNet {
 public:
  explicit MlpNet(MlpConfig config);

  /// Parameter layout: fc{out,in} weight + {out} bias per layer, in forward
  /// order — compatible with ModelState / the checkpointing stack.
  const ModelSpec& spec() const { return spec_; }

  /// Computes mean cross-entropy loss over the batch and accumulates
  /// d(loss)/d(params) into `grad` (which must be zeroed by the caller if a
  /// fresh gradient is wanted).  `inputs` is row-major [batch, input_dim];
  /// `labels` holds class indices.
  ///
  /// The computation is deterministic: same state + batch => same loss and
  /// bit-identical gradient.
  double loss_and_gradient(const ModelState& state,
                           std::span<const float> inputs,
                           std::span<const std::uint32_t> labels,
                           Tensor& grad) const;

  /// Forward only: fills `probs` ([batch, num_classes]) and returns mean loss.
  double forward(const ModelState& state, std::span<const float> inputs,
                 std::span<const std::uint32_t> labels,
                 std::vector<float>* probs = nullptr) const;

  /// Fraction of batch rows whose argmax matches the label.
  double accuracy(const ModelState& state, std::span<const float> inputs,
                  std::span<const std::uint32_t> labels) const;

 private:
  struct LayerDims {
    std::size_t in = 0;
    std::size_t out = 0;
    std::size_t w_off = 0;  // element offset of the weight block
    std::size_t b_off = 0;  // element offset of the bias block
  };

  /// Runs the forward pass, retaining post-activation values per layer for
  /// the backward pass.  activations[0] is the input batch.
  double forward_impl(const ModelState& state, std::span<const float> inputs,
                      std::span<const std::uint32_t> labels,
                      std::vector<std::vector<float>>& activations,
                      std::vector<float>& probs) const;

  MlpConfig config_;
  ModelSpec spec_;
  std::vector<LayerDims> dims_;
};

}  // namespace lowdiff
