#pragma once

/// \file grad_gen.h
/// Deterministic synthetic gradient source.
///
/// Checkpointing cost is a function of gradient *bytes*, not of the loss
/// surface, so for the model-zoo experiments gradients are synthesized with
/// a realistic heavy-ish tailed distribution (normal body; top-k then has
/// meaningful structure).  The generator is deterministic in
/// (seed, iteration, layer), so every worker in a data-parallel group can
/// synthesize its shard and the collectives produce reproducible results.
///
/// Layer granularity matters: LowDiff+ consumes gradients layer-by-layer in
/// *reverse* forward order as the backward pass emits them (paper Fig. 5).

#include <cstdint>

#include "model/model_spec.h"
#include "tensor/tensor.h"

namespace lowdiff {

class SyntheticGradientGenerator {
 public:
  SyntheticGradientGenerator(const ModelSpec& spec, std::uint64_t seed);

  const ModelSpec& spec() const { return spec_; }

  /// Fills the slice for layer `layer` of `grad` (a flat tensor of
  /// spec().param_count() elements) for the given iteration and worker.
  void generate_layer(std::uint64_t iteration, std::uint32_t worker,
                      std::size_t layer, std::span<float> out) const;

  /// Fills the whole flat gradient for (iteration, worker).
  void generate(std::uint64_t iteration, std::uint32_t worker, Tensor& grad) const;

 private:
  ModelSpec spec_;
  std::vector<std::size_t> offsets_;
  std::uint64_t seed_;
};

}  // namespace lowdiff
