#include "model/grad_gen.h"

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "tensor/ops.h"

namespace lowdiff {

SyntheticGradientGenerator::SyntheticGradientGenerator(const ModelSpec& spec,
                                                       std::uint64_t seed)
    : spec_(spec), offsets_(spec.layer_offsets()), seed_(seed) {}

void SyntheticGradientGenerator::generate_layer(std::uint64_t iteration,
                                                std::uint32_t worker,
                                                std::size_t layer,
                                                std::span<float> out) const {
  LOWDIFF_ENSURE(layer < spec_.layers.size(), "layer index out of range");
  LOWDIFF_ENSURE(out.size() == offsets_[layer + 1] - offsets_[layer],
                 "gradient slice size mismatch");
  SplitMix64 sm(seed_ ^ (iteration * 0x9E3779B97F4A7C15ull) ^
                (static_cast<std::uint64_t>(worker) << 32) ^ (layer + 1));
  Xoshiro256 rng(sm.next());
  // Gradient magnitudes shrink with depth-scaled fan-in, giving top-k
  // selection realistic non-uniform structure across layers.
  const float scale =
      1.0f / std::sqrt(static_cast<float>(out.size() % 4096 + 16));
  ops::fill_normal(out, rng, scale);
}

void SyntheticGradientGenerator::generate(std::uint64_t iteration,
                                          std::uint32_t worker,
                                          Tensor& grad) const {
  LOWDIFF_ENSURE(grad.size() == spec_.param_count(), "gradient tensor size mismatch");
  for (std::size_t layer = 0; layer < spec_.layers.size(); ++layer) {
    generate_layer(iteration, worker, layer,
                   grad.span().subspan(offsets_[layer],
                                       offsets_[layer + 1] - offsets_[layer]));
  }
}

}  // namespace lowdiff
