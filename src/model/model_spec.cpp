#include "model/model_spec.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace lowdiff {

std::size_t ModelSpec::param_count() const {
  std::size_t total = 0;
  for (const auto& l : layers) total += l.size();
  return total;
}

std::vector<std::size_t> ModelSpec::layer_offsets() const {
  std::vector<std::size_t> offsets;
  offsets.reserve(layers.size() + 1);
  std::size_t off = 0;
  for (const auto& l : layers) {
    offsets.push_back(off);
    off += l.size();
  }
  offsets.push_back(off);
  return offsets;
}

ModelSpec ModelSpec::scaled(double factor) const {
  LOWDIFF_ENSURE(factor > 0.0, "scale factor must be positive");
  ModelSpec out;
  out.name = name + "@" + std::to_string(factor);
  out.layers.reserve(layers.size());
  for (const auto& l : layers) {
    LayerSpec s = l;
    if (!s.shape.empty()) {
      const double scaled0 = std::max(1.0, std::round(static_cast<double>(s.shape[0]) * factor));
      s.shape[0] = static_cast<std::size_t>(scaled0);
    }
    out.layers.push_back(std::move(s));
  }
  return out;
}

std::vector<ModelSpec> ModelSpec::partition(std::size_t stages) const {
  LOWDIFF_ENSURE(stages >= 1, "need at least one pipeline stage");
  LOWDIFF_ENSURE(stages <= layers.size(), "more stages than layers");
  const std::size_t total = param_count();
  const std::size_t target = total / stages;

  std::vector<ModelSpec> out;
  out.reserve(stages);
  ModelSpec current;
  std::size_t acc = 0;
  std::size_t stage_index = 0;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    current.layers.push_back(layers[i]);
    acc += layers[i].size();
    const std::size_t remaining_layers = layers.size() - i - 1;
    const std::size_t remaining_stages = stages - stage_index - 1;
    const bool quota_met = acc >= target && remaining_stages > 0;
    const bool must_close = remaining_layers == remaining_stages && remaining_stages > 0;
    if (quota_met || must_close) {
      current.name = name + "/stage" + std::to_string(stage_index);
      out.push_back(std::move(current));
      current = ModelSpec{};
      acc = 0;
      ++stage_index;
    }
  }
  current.name = name + "/stage" + std::to_string(stage_index);
  out.push_back(std::move(current));
  LOWDIFF_CHECK(out.size() == stages);
  return out;
}

}  // namespace lowdiff
