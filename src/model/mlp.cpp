#include "model/mlp.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace lowdiff {
namespace {

/// out[b, o] = sum_i x[b, i] * w[o, i] + bias[o]
void linear_forward(std::span<const float> x, std::size_t batch, std::size_t in,
                    std::span<const float> w, std::span<const float> bias,
                    std::size_t out, std::vector<float>& y) {
  y.assign(batch * out, 0.0f);
  for (std::size_t b = 0; b < batch; ++b) {
    const float* xb = x.data() + b * in;
    float* yb = y.data() + b * out;
    for (std::size_t o = 0; o < out; ++o) {
      const float* wo = w.data() + o * in;
      float acc = bias[o];
      for (std::size_t i = 0; i < in; ++i) acc += xb[i] * wo[i];
      yb[o] = acc;
    }
  }
}

}  // namespace

MlpNet::MlpNet(MlpConfig config) : config_(std::move(config)) {
  LOWDIFF_ENSURE(config_.input_dim > 0 && config_.num_classes > 1,
                 "invalid MLP dimensions");
  spec_.name = "MLP";
  std::size_t in = config_.input_dim;
  std::size_t offset = 0;
  std::vector<std::size_t> outs = config_.hidden;
  outs.push_back(config_.num_classes);
  for (std::size_t l = 0; l < outs.size(); ++l) {
    const std::size_t out = outs[l];
    const std::string prefix = "fc" + std::to_string(l);
    spec_.layers.push_back({prefix + ".weight", {out, in}});
    spec_.layers.push_back({prefix + ".bias", {out}});
    dims_.push_back({in, out, offset, offset + out * in});
    offset += out * in + out;
    in = out;
  }
}

double MlpNet::forward_impl(const ModelState& state,
                            std::span<const float> inputs,
                            std::span<const std::uint32_t> labels,
                            std::vector<std::vector<float>>& activations,
                            std::vector<float>& probs) const {
  LOWDIFF_ENSURE(inputs.size() % config_.input_dim == 0, "ragged input batch");
  const std::size_t batch = inputs.size() / config_.input_dim;
  LOWDIFF_ENSURE(batch == labels.size(), "labels/batch size mismatch");

  const auto params = state.params().span();
  activations.clear();
  activations.emplace_back(inputs.begin(), inputs.end());

  std::vector<float> z;
  for (std::size_t l = 0; l < dims_.size(); ++l) {
    const auto& d = dims_[l];
    linear_forward(activations.back(), batch, d.in,
                   params.subspan(d.w_off, d.out * d.in),
                   params.subspan(d.b_off, d.out), d.out, z);
    if (l + 1 < dims_.size()) {
      for (auto& v : z) v = std::max(v, 0.0f);  // ReLU
    }
    activations.push_back(z);
  }

  // Softmax cross-entropy on the logits (last activation).
  const std::size_t classes = config_.num_classes;
  const std::vector<float>& logits = activations.back();
  probs.assign(batch * classes, 0.0f);
  double loss = 0.0;
  for (std::size_t b = 0; b < batch; ++b) {
    const float* lb = logits.data() + b * classes;
    float* pb = probs.data() + b * classes;
    const float mx = *std::max_element(lb, lb + classes);
    double denom = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      pb[c] = std::exp(lb[c] - mx);
      denom += pb[c];
    }
    for (std::size_t c = 0; c < classes; ++c) {
      pb[c] = static_cast<float>(pb[c] / denom);
    }
    LOWDIFF_ENSURE(labels[b] < classes, "label out of range");
    loss += -std::log(std::max(1e-12, static_cast<double>(pb[labels[b]])));
  }
  return loss / static_cast<double>(batch);
}

double MlpNet::loss_and_gradient(const ModelState& state,
                                 std::span<const float> inputs,
                                 std::span<const std::uint32_t> labels,
                                 Tensor& grad) const {
  LOWDIFF_ENSURE(grad.size() == spec_.param_count(), "gradient size mismatch");
  std::vector<std::vector<float>> activations;
  std::vector<float> probs;
  const double loss = forward_impl(state, inputs, labels, activations, probs);

  const std::size_t batch = labels.size();
  const std::size_t classes = config_.num_classes;
  const auto params = state.params().span();
  auto g = grad.span();

  // dL/dlogits = (probs - onehot) / batch
  std::vector<float> delta(probs);
  for (std::size_t b = 0; b < batch; ++b) {
    delta[b * classes + labels[b]] -= 1.0f;
  }
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (auto& v : delta) v *= inv_batch;

  // Backprop through layers in reverse; activations[l] is the input to
  // layer l, activations[l+1] its (post-ReLU) output.
  for (std::size_t li = dims_.size(); li-- > 0;) {
    const auto& d = dims_[li];
    const std::vector<float>& x = activations[li];
    auto gw = g.subspan(d.w_off, d.out * d.in);
    auto gb = g.subspan(d.b_off, d.out);

    for (std::size_t b = 0; b < batch; ++b) {
      const float* xb = x.data() + b * d.in;
      const float* db = delta.data() + b * d.out;
      for (std::size_t o = 0; o < d.out; ++o) {
        const float dv = db[o];
        if (dv == 0.0f) continue;
        gb[o] += dv;
        float* gwo = gw.data() + o * d.in;
        for (std::size_t i = 0; i < d.in; ++i) gwo[i] += dv * xb[i];
      }
    }

    if (li == 0) break;
    // delta_prev[b, i] = sum_o delta[b, o] * w[o, i], masked by ReLU.
    const auto w = params.subspan(d.w_off, d.out * d.in);
    std::vector<float> prev(batch * d.in, 0.0f);
    for (std::size_t b = 0; b < batch; ++b) {
      const float* db = delta.data() + b * d.out;
      float* pb = prev.data() + b * d.in;
      for (std::size_t o = 0; o < d.out; ++o) {
        const float dv = db[o];
        if (dv == 0.0f) continue;
        const float* wo = w.data() + o * d.in;
        for (std::size_t i = 0; i < d.in; ++i) pb[i] += dv * wo[i];
      }
      const float* act = activations[li].data() + b * d.in;
      for (std::size_t i = 0; i < d.in; ++i) {
        if (act[i] <= 0.0f) pb[i] = 0.0f;  // ReLU mask
      }
    }
    delta = std::move(prev);
  }
  return loss;
}

double MlpNet::forward(const ModelState& state, std::span<const float> inputs,
                       std::span<const std::uint32_t> labels,
                       std::vector<float>* probs) const {
  std::vector<std::vector<float>> activations;
  std::vector<float> local_probs;
  const double loss = forward_impl(state, inputs, labels, activations, local_probs);
  if (probs != nullptr) *probs = std::move(local_probs);
  return loss;
}

double MlpNet::accuracy(const ModelState& state, std::span<const float> inputs,
                        std::span<const std::uint32_t> labels) const {
  std::vector<float> probs;
  forward(state, inputs, labels, &probs);
  const std::size_t classes = config_.num_classes;
  std::size_t correct = 0;
  for (std::size_t b = 0; b < labels.size(); ++b) {
    const float* pb = probs.data() + b * classes;
    const auto argmax = static_cast<std::uint32_t>(
        std::max_element(pb, pb + classes) - pb);
    if (argmax == labels[b]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace lowdiff
