#pragma once

/// \file dataset.h
/// Synthetic classification dataset (Gaussian clusters, one per class) used
/// by the MLP training path.  Substitutes for CIFAR/SQuAD/WikiText: the
/// checkpointing system never looks at data content, but a learnable task
/// lets the end-to-end tests show loss decreasing across failure + recovery.

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace lowdiff {

class SyntheticDataset {
 public:
  /// `spread` controls class separability (smaller = easier task).
  SyntheticDataset(std::size_t input_dim, std::size_t num_classes,
                   std::uint64_t seed, float spread = 0.5f);

  std::size_t input_dim() const { return input_dim_; }
  std::size_t num_classes() const { return num_classes_; }

  /// Deterministically fills a batch for the given batch index: the same
  /// (seed, batch_index) always yields the same samples, so a recovered run
  /// resumes on the identical data stream — required for bit-exact replay.
  void batch(std::uint64_t batch_index, std::size_t batch_size,
             std::vector<float>& inputs, std::vector<std::uint32_t>& labels) const;

 private:
  std::size_t input_dim_;
  std::size_t num_classes_;
  std::uint64_t seed_;
  float spread_;
  std::vector<float> centers_;  // [num_classes, input_dim]
};

}  // namespace lowdiff
