#include "model/zoo.h"

#include <algorithm>

#include "common/error.h"

namespace lowdiff::zoo {
namespace {

void add(ModelSpec& spec, std::string name, std::vector<std::size_t> shape) {
  spec.layers.push_back(LayerSpec{std::move(name), std::move(shape)});
}

/// Adjusts `spec` so param_count() == target exactly (see header).
void align_to(ModelSpec& spec, std::size_t target) {
  std::size_t current = spec.param_count();
  if (current > target) {
    // Shrink the largest tensor row-by-row, then pad the remainder.
    auto largest = std::max_element(
        spec.layers.begin(), spec.layers.end(),
        [](const LayerSpec& a, const LayerSpec& b) { return a.size() < b.size(); });
    LOWDIFF_CHECK(largest != spec.layers.end());
    const std::size_t stride = largest->size() / largest->shape[0];
    const std::size_t excess = current - target;
    const std::size_t rows = (excess + stride - 1) / stride;
    LOWDIFF_ENSURE(rows < largest->shape[0], "cannot align: largest layer too small");
    largest->shape[0] -= rows;
    current = spec.param_count();
  }
  if (current < target) {
    add(spec, "aux.pad", {target - current});
  }
  LOWDIFF_CHECK(spec.param_count() == target);
}

void add_conv_bn(ModelSpec& spec, const std::string& name, std::size_t out_c,
                 std::size_t in_c, std::size_t k) {
  add(spec, name + ".weight", {out_c, in_c, k, k});
  add(spec, name + ".bn.weight", {out_c});
  add(spec, name + ".bn.bias", {out_c});
}

ModelSpec resnet(const std::string& name, const std::vector<std::size_t>& blocks,
                 std::size_t target) {
  ModelSpec spec;
  spec.name = name;
  add_conv_bn(spec, "conv1", 64, 3, 7);
  std::size_t in_c = 64;
  for (std::size_t stage = 0; stage < blocks.size(); ++stage) {
    const std::size_t width = 64ull << stage;
    const std::size_t out_c = width * 4;
    for (std::size_t b = 0; b < blocks[stage]; ++b) {
      const std::string prefix =
          "layer" + std::to_string(stage + 1) + "." + std::to_string(b);
      if (b == 0) {
        add_conv_bn(spec, prefix + ".downsample", out_c, in_c, 1);
      }
      add_conv_bn(spec, prefix + ".conv1", width, in_c, 1);
      add_conv_bn(spec, prefix + ".conv2", width, width, 3);
      add_conv_bn(spec, prefix + ".conv3", out_c, width, 1);
      in_c = out_c;
    }
  }
  add(spec, "fc.weight", {1000, in_c});
  add(spec, "fc.bias", {1000});
  align_to(spec, target);
  return spec;
}

ModelSpec vgg(const std::string& name, const std::vector<int>& config,
              std::size_t target) {
  // config: channel count per conv, -1 marks max-pool (channel reset point).
  ModelSpec spec;
  spec.name = name;
  std::size_t in_c = 3;
  std::size_t conv_idx = 0;
  for (int c : config) {
    if (c < 0) continue;  // pooling layers carry no parameters
    const auto out_c = static_cast<std::size_t>(c);
    const std::string prefix = "features." + std::to_string(conv_idx++);
    add(spec, prefix + ".weight", {out_c, in_c, 3, 3});
    add(spec, prefix + ".bias", {out_c});
    in_c = out_c;
  }
  add(spec, "classifier.0.weight", {4096, in_c * 7 * 7});
  add(spec, "classifier.0.bias", {4096});
  add(spec, "classifier.3.weight", {4096, 4096});
  add(spec, "classifier.3.bias", {4096});
  add(spec, "classifier.6.weight", {1000, 4096});
  add(spec, "classifier.6.bias", {1000});
  align_to(spec, target);
  return spec;
}

void add_layer_norm(ModelSpec& spec, const std::string& name, std::size_t h) {
  add(spec, name + ".weight", {h});
  add(spec, name + ".bias", {h});
}

ModelSpec bert(const std::string& name, std::size_t hidden, std::size_t layers,
               std::size_t target) {
  ModelSpec spec;
  spec.name = name;
  const std::size_t vocab = 30522;
  const std::size_t ff = hidden * 4;
  add(spec, "embeddings.word", {vocab, hidden});
  add(spec, "embeddings.position", {512, hidden});
  add(spec, "embeddings.token_type", {2, hidden});
  add_layer_norm(spec, "embeddings.ln", hidden);
  for (std::size_t l = 0; l < layers; ++l) {
    const std::string p = "encoder." + std::to_string(l);
    for (const char* proj : {"query", "key", "value", "output"}) {
      add(spec, p + ".attn." + proj + ".weight", {hidden, hidden});
      add(spec, p + ".attn." + std::string(proj) + ".bias", {hidden});
    }
    add_layer_norm(spec, p + ".attn.ln", hidden);
    add(spec, p + ".ffn.intermediate.weight", {ff, hidden});
    add(spec, p + ".ffn.intermediate.bias", {ff});
    add(spec, p + ".ffn.output.weight", {hidden, ff});
    add(spec, p + ".ffn.output.bias", {hidden});
    add_layer_norm(spec, p + ".ffn.ln", hidden);
  }
  add(spec, "pooler.weight", {hidden, hidden});
  add(spec, "pooler.bias", {hidden});
  align_to(spec, target);
  return spec;
}

ModelSpec gpt2(const std::string& name, std::size_t hidden, std::size_t layers,
               std::size_t target) {
  ModelSpec spec;
  spec.name = name;
  const std::size_t vocab = 50257;
  const std::size_t ctx = 1024;
  const std::size_t ff = hidden * 4;
  add(spec, "wte", {vocab, hidden});
  add(spec, "wpe", {ctx, hidden});
  for (std::size_t l = 0; l < layers; ++l) {
    const std::string p = "h." + std::to_string(l);
    add_layer_norm(spec, p + ".ln_1", hidden);
    add(spec, p + ".attn.c_attn.weight", {hidden, 3 * hidden});
    add(spec, p + ".attn.c_attn.bias", {3 * hidden});
    add(spec, p + ".attn.c_proj.weight", {hidden, hidden});
    add(spec, p + ".attn.c_proj.bias", {hidden});
    add_layer_norm(spec, p + ".ln_2", hidden);
    add(spec, p + ".mlp.c_fc.weight", {hidden, ff});
    add(spec, p + ".mlp.c_fc.bias", {ff});
    add(spec, p + ".mlp.c_proj.weight", {ff, hidden});
    add(spec, p + ".mlp.c_proj.bias", {hidden});
  }
  add_layer_norm(spec, "ln_f", hidden);
  align_to(spec, target);
  return spec;
}

}  // namespace

ModelSpec resnet50() { return resnet("ResNet-50", {3, 4, 6, 3}, 25'600'000); }
ModelSpec resnet101() { return resnet("ResNet-101", {3, 4, 23, 3}, 44'500'000); }

ModelSpec vgg16() {
  return vgg("VGG-16",
             {64, 64, -1, 128, 128, -1, 256, 256, 256, -1, 512, 512, 512, -1,
              512, 512, 512, -1},
             138'800'000);
}

ModelSpec vgg19() {
  return vgg("VGG-19",
             {64, 64, -1, 128, 128, -1, 256, 256, 256, 256, -1, 512, 512, 512,
              512, -1, 512, 512, 512, 512, -1},
             143'700'000);
}

ModelSpec bert_base() { return bert("BERT-B", 768, 12, 110'000'000); }
ModelSpec bert_large() { return bert("BERT-L", 1024, 24, 334'000'000); }
ModelSpec gpt2_small() { return gpt2("GPT2-S", 768, 12, 117'000'000); }
ModelSpec gpt2_large() { return gpt2("GPT2-L", 1280, 36, 762'000'000); }

ModelSpec by_name(const std::string& name) {
  if (name == "ResNet-50") return resnet50();
  if (name == "ResNet-101") return resnet101();
  if (name == "VGG-16") return vgg16();
  if (name == "VGG-19") return vgg19();
  if (name == "BERT-B") return bert_base();
  if (name == "BERT-L") return bert_large();
  if (name == "GPT2-S") return gpt2_small();
  if (name == "GPT2-L") return gpt2_large();
  throw Error("unknown model: " + name, std::source_location::current());
}

std::vector<ModelSpec> all() {
  return {resnet50(), resnet101(), vgg16(),      vgg19(),
          bert_base(), bert_large(), gpt2_small(), gpt2_large()};
}

}  // namespace lowdiff::zoo
