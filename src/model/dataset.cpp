#include "model/dataset.h"

#include "common/error.h"

namespace lowdiff {

SyntheticDataset::SyntheticDataset(std::size_t input_dim, std::size_t num_classes,
                                   std::uint64_t seed, float spread)
    : input_dim_(input_dim), num_classes_(num_classes), seed_(seed), spread_(spread) {
  LOWDIFF_ENSURE(input_dim_ > 0 && num_classes_ > 1, "invalid dataset dimensions");
  centers_.resize(num_classes_ * input_dim_);
  SplitMix64 sm(seed_);
  Xoshiro256 rng(sm.next());
  for (auto& c : centers_) c = static_cast<float>(rng.normal());
}

void SyntheticDataset::batch(std::uint64_t batch_index, std::size_t batch_size,
                             std::vector<float>& inputs,
                             std::vector<std::uint32_t>& labels) const {
  inputs.resize(batch_size * input_dim_);
  labels.resize(batch_size);
  SplitMix64 sm(seed_ ^ (batch_index * 0xD1B54A32D192ED03ull + 1));
  Xoshiro256 rng(sm.next());
  for (std::size_t b = 0; b < batch_size; ++b) {
    const auto cls = static_cast<std::uint32_t>(rng.uniform_below(num_classes_));
    labels[b] = cls;
    const float* center = centers_.data() + cls * input_dim_;
    float* row = inputs.data() + b * input_dim_;
    for (std::size_t i = 0; i < input_dim_; ++i) {
      row[i] = center[i] + static_cast<float>(rng.normal()) * spread_;
    }
  }
}

}  // namespace lowdiff
