#pragma once

/// \file model_spec.h
/// Structural description of a DNN: an ordered list of named parameter
/// tensors (layers).  The checkpointing system only needs parameter layout,
/// not the math of each layer, so a spec is exactly the information that
/// framework state_dicts expose.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lowdiff {

struct LayerSpec {
  std::string name;
  std::vector<std::size_t> shape;

  std::size_t size() const {
    std::size_t n = 1;
    for (std::size_t d : shape) n *= d;
    return n;
  }
};

/// Ordered parameter layout of one model.  Layer order matches the forward
/// pass; the backward pass produces gradients in *reverse* of this order,
/// which the layer-wise reuse path of LowDiff+ (paper §5.1) relies on.
struct ModelSpec {
  std::string name;
  std::vector<LayerSpec> layers;

  std::size_t layer_count() const { return layers.size(); }

  /// Total number of parameters (paper's Ψ).
  std::size_t param_count() const;

  /// Bytes of one parameter copy (fp32).
  std::size_t param_bytes() const { return param_count() * sizeof(float); }

  /// Bytes of a full checkpoint: params + 2 Adam moments = 3Ψ (Finding 2).
  std::size_t full_checkpoint_bytes() const { return 3 * param_bytes(); }

  /// Per-layer element offsets into the flat parameter vector; the final
  /// entry equals param_count().
  std::vector<std::size_t> layer_offsets() const;

  /// Returns a structurally similar spec with roughly `factor` times the
  /// parameters (each layer's leading dimension scaled, minimum 1 element).
  /// Used to run real-bytes experiments on laptop-scale memory while the
  /// analytic simulator keeps the full-size spec.
  ModelSpec scaled(double factor) const;

  /// Splits layers into `stages` contiguous groups with approximately equal
  /// parameter counts (pipeline parallelism for the Exp. 1 VGG16-PP row).
  std::vector<ModelSpec> partition(std::size_t stages) const;
};

}  // namespace lowdiff
