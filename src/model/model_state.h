#pragma once

/// \file model_state.h
/// The paper's model state M_t = (x_t, o_t): flat fp32 parameter vector plus
/// Adam first/second moments, with per-layer views derived from the spec.
///
/// A full checkpoint serializes exactly this object (3Ψ floats + step
/// counter); a differential checkpoint never needs it (Finding 1).

#include <cstdint>
#include <memory>
#include <span>

#include "model/model_spec.h"
#include "tensor/tensor.h"

namespace lowdiff {

class ModelState {
 public:
  explicit ModelState(ModelSpec spec);

  const ModelSpec& spec() const { return spec_; }
  std::size_t param_count() const { return params_.size(); }

  Tensor& params() { return params_; }
  const Tensor& params() const { return params_; }
  Tensor& moment1() { return m_; }
  const Tensor& moment1() const { return m_; }
  Tensor& moment2() { return v_; }
  const Tensor& moment2() const { return v_; }

  /// Number of optimizer steps applied so far (Adam bias correction state).
  std::uint64_t step() const { return step_; }
  void set_step(std::uint64_t step) { step_ = step; }

  /// Parameter slice of layer `i` (forward order).
  std::span<float> layer_params(std::size_t i);
  std::span<const float> layer_params(std::size_t i) const;
  std::span<float> layer_moment1(std::size_t i);
  std::span<float> layer_moment2(std::size_t i);

  std::size_t layer_offset(std::size_t i) const;
  std::size_t layer_size(std::size_t i) const;

  /// Deterministically initializes parameters (He-style scale per layer) so
  /// two workers constructed with the same seed agree bit-for-bit.
  void init_random(std::uint64_t seed);

  /// Deep copy (snapshot semantics).
  ModelState clone() const;

  /// Bitwise equality of the complete state — the recovery correctness
  /// criterion used throughout the tests.
  bool bit_equal(const ModelState& other) const;

  /// Bytes of the full state (params + both moments), excluding metadata.
  std::size_t byte_size() const { return 3 * params_.byte_size(); }

 private:
  ModelSpec spec_;
  std::vector<std::size_t> offsets_;
  Tensor params_;
  Tensor m_;
  Tensor v_;
  std::uint64_t step_ = 0;
};

}  // namespace lowdiff
