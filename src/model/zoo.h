#pragma once

/// \file zoo.h
/// The eight evaluation workloads of the paper (Table II(b)) as parameter
/// layouts with their real architectural layer structure.
///
/// Each builder enumerates the architecture's actual parameter tensors
/// (convolutions, attention blocks, embeddings, ...) and then aligns the
/// total parameter count to the figure published in the paper by resizing
/// the largest tensor and appending at most one small "aux.pad" tensor, so
/// storage-overhead results (Exp. 7) are directly comparable.

#include <string>
#include <vector>

#include "model/model_spec.h"

namespace lowdiff::zoo {

ModelSpec resnet50();    ///< 25.6 M params (CIFAR-100 task in the paper)
ModelSpec resnet101();   ///< 44.5 M params (ImageNet)
ModelSpec vgg16();       ///< 138.8 M params (CIFAR-100)
ModelSpec vgg19();       ///< 143.7 M params (ImageNet)
ModelSpec bert_base();   ///< 110 M params (SQuAD)
ModelSpec bert_large();  ///< 334 M params (SQuAD)
ModelSpec gpt2_small();  ///< 117 M params (WikiText-2)
ModelSpec gpt2_large();  ///< 762 M params (WikiText-103)

/// Lookup by the names used in the paper's figures:
/// "ResNet-50", "ResNet-101", "VGG-16", "VGG-19", "BERT-B", "BERT-L",
/// "GPT2-S", "GPT2-L".  Throws on unknown names.
ModelSpec by_name(const std::string& name);

/// All eight specs in Table II(b) order.
std::vector<ModelSpec> all();

}  // namespace lowdiff::zoo
