#pragma once

/// \file strategies.h
/// Live (byte-moving, multi-threaded) implementations of every
/// checkpointing strategy evaluated in the paper.  These are the policies
/// the TrainingEngine drives; the analytic counterparts for cluster-scale
/// timelines live in sim/strategy_model.h.
///
/// Threading contract: after_step() is called from the training thread of
/// the checkpointing rank, once per iteration, after the optimizer update.
/// Time spent inside after_step() is, by construction, training stall.
/// Background threads owned by a strategy are joined by flush()/destructor.

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "compress/compressor.h"
#include "compress/merge.h"
#include "core/checkpoint_store.h"
#include "model/model_state.h"
#include "obs/metrics.h"
#include "optim/optimizer.h"
#include "queue/reusing_queue.h"
#include "storage/async_writer.h"
#include "storage/bandwidth.h"
#include "storage/mem_storage.h"

namespace lowdiff {

struct StrategyStats {
  std::uint64_t diff_ckpts = 0;
  std::uint64_t full_ckpts = 0;
  std::uint64_t batched_writes = 0;
  std::uint64_t bytes_written = 0;
  /// Storage retries performed by the strategy's background writer.
  std::uint64_t write_retries = 0;
  std::size_t queue_high_watermark = 0;
  /// Peak bytes of checkpoint payloads resident on the "device" side
  /// (i.e., not yet offloaded to the CPU buffer) — Exp. 6(b).
  std::size_t peak_device_bytes = 0;
};

/// Registry handles shared by every strategy, resolved once per instance
/// under `ckpt.<label>.*`.  `stall_us` samples time spent inside
/// after_step() / on_layer_gradient() on the training thread — training
/// stall by the threading contract above.  `overlap_us` samples background
/// work (offload, replica update) overlapped with training.
struct StrategyObs {
  obs::Counter& full_total;
  obs::Counter& diff_total;
  obs::Counter& batched_write_total;
  obs::Counter& bytes_total;
  obs::Histogram& stall_us;
  obs::Histogram& overlap_us;

  static StrategyObs resolve(const std::string& label);
};

class CheckpointStrategy {
 public:
  virtual ~CheckpointStrategy() = default;

  /// `state`: post-update model state of iteration `iter` (0-based).
  /// `sync_grad`: the synchronized compressed gradient of the iteration
  /// (zero-copy handle; null when the training loop runs without
  /// compression and the strategy does not consume gradients).
  virtual void after_step(std::uint64_t iter, const ModelState& state,
                          std::shared_ptr<const CompressedGrad> sync_grad) = 0;

  /// Blocks until all checkpoint data accepted so far is durable.
  virtual void flush() = 0;

  virtual std::string name() const = 0;
  virtual StrategyStats stats() const = 0;
};

/// W/O CKPT upper bound.
class NoCheckpointStrategy final : public CheckpointStrategy {
 public:
  void after_step(std::uint64_t, const ModelState&,
                  std::shared_ptr<const CompressedGrad>) override {}
  void flush() override {}
  std::string name() const override { return "none"; }
  StrategyStats stats() const override { return {}; }
};

/// Synchronous full checkpointing (torch.save): blocks training for the
/// entire serialize + write.
class TorchSaveStrategy final : public CheckpointStrategy {
 public:
  /// `pipeline.enabled` opts the store's committed writes into the windowed
  /// persist path (CheckpointStore::enable_pipeline).
  TorchSaveStrategy(std::shared_ptr<CheckpointStore> store, std::uint64_t interval,
                    const PipelineSpec& pipeline = {});

  void after_step(std::uint64_t iter, const ModelState& state,
                  std::shared_ptr<const CompressedGrad> sync_grad) override;
  void flush() override { (void)store_->backend().sync(); }
  std::string name() const override { return "torch.save"; }
  StrategyStats stats() const override;

 private:
  std::shared_ptr<CheckpointStore> store_;
  std::uint64_t interval_;
  StrategyObs obs_;
  StrategyStats stats_;
};

/// CheckFreq: snapshot on the training thread (the GPU→CPU copy), persist
/// on a background writer with a single in-flight buffer — a new snapshot
/// waits for the previous persist (Mohan et al., §2.2).
class CheckFreqStrategy final : public CheckpointStrategy {
 public:
  CheckFreqStrategy(std::shared_ptr<CheckpointStore> store, std::uint64_t interval,
                    const PipelineSpec& pipeline = {});

  void after_step(std::uint64_t iter, const ModelState& state,
                  std::shared_ptr<const CompressedGrad> sync_grad) override;
  void flush() override;
  std::string name() const override { return "CheckFreq"; }
  StrategyStats stats() const override;

 private:
  std::shared_ptr<CheckpointStore> store_;
  std::uint64_t interval_;
  StrategyObs obs_;
  AsyncWriter writer_;
  StrategyStats stats_;
};

/// Gemini: checkpoints into a (remote) CPU-memory tier every interval and
/// persists from that tier to durable storage at a lower frequency.
class GeminiStrategy final : public CheckpointStrategy {
 public:
  GeminiStrategy(std::shared_ptr<StorageBackend> memory_tier,
                 std::shared_ptr<CheckpointStore> durable,
                 std::uint64_t interval, std::uint64_t persist_interval,
                 const PipelineSpec& pipeline = {});

  void after_step(std::uint64_t iter, const ModelState& state,
                  std::shared_ptr<const CompressedGrad> sync_grad) override;
  void flush() override;
  std::string name() const override { return "Gemini"; }
  StrategyStats stats() const override;

  /// Recovery from the in-memory tier (software failures / peer survives).
  ModelState recover_from_memory(const ModelSpec& spec) const;

 private:
  std::shared_ptr<StorageBackend> memory_tier_;
  /// Commit-protocol view over the memory tier, so in-memory checkpoints
  /// are integrity-checked exactly like durable ones.
  CheckpointStore tier_store_;
  std::shared_ptr<CheckpointStore> durable_;
  std::uint64_t interval_;
  std::uint64_t persist_interval_;
  StrategyObs obs_;
  AsyncWriter writer_;
  StrategyStats stats_;
};

/// Check-N-Run-style differential checkpointing for general models: the
/// differential is computed from consecutive model states on the critical
/// path (WAR dependency, Fig. 3a), the parameter diff is top-k compressed,
/// and — as Exp. 7 establishes — the optimizer-state diff is stored raw.
class NaiveDcStrategy final : public CheckpointStrategy {
 public:
  NaiveDcStrategy(std::shared_ptr<CheckpointStore> store,
                  std::unique_ptr<Compressor> compressor,
                  std::uint64_t diff_interval, std::uint64_t full_interval,
                  const PipelineSpec& pipeline = {});

  void after_step(std::uint64_t iter, const ModelState& state,
                  std::shared_ptr<const CompressedGrad> sync_grad) override;
  void flush() override;
  std::string name() const override { return "NaiveDC"; }
  StrategyStats stats() const override;

  /// Serial recovery: load latest full, then add each stored diff
  /// (params += decompress(params_diff); moments += raw diffs).
  static ModelState recover(const CheckpointStore& store, const ModelSpec& spec,
                            const Compressor& compressor);

  static std::string naive_diff_key(std::uint64_t iter);

 private:
  std::shared_ptr<CheckpointStore> store_;
  std::unique_ptr<Compressor> compressor_;
  std::uint64_t diff_interval_;
  std::uint64_t full_interval_;
  std::unique_ptr<ModelState> prev_;  // state at the last differential
  StrategyObs obs_;
  AsyncWriter writer_;
  StrategyStats stats_;
};

/// LowDiff (paper §4): reuses the synchronized compressed gradient as the
/// differential checkpoint.  after_step() only enqueues a zero-copy handle;
/// a dedicated checkpointing thread offloads payloads (optionally through a
/// PCIe throttler), batches them in a CPU buffer, and issues batched writes
/// through an async writer.  Full checkpoints are snapshotted on the
/// training thread and persisted asynchronously.
class LowDiffStrategy final : public CheckpointStrategy {
 public:
  struct Options {
    std::uint64_t batch_size = 2;        ///< BS (differentials per write)
    std::uint64_t full_interval = 20;    ///< FCF interval in iterations
    std::size_t queue_capacity = 8;      ///< bounded reusing queue
    bool offload_batching_to_cpu = true; ///< Exp. 6(b) ablation switch
    /// Garbage-collect superseded checkpoints once a new full checkpoint
    /// is durable (bounds storage growth in long runs).
    bool prune_on_full = false;
    /// Optional PCIe model for offloads (null = instantaneous).
    std::shared_ptr<Throttler> pcie;
    /// Optional worker pool for the checkpoint datapath (chunk-parallel CRC
    /// over batched records).  Must outlive the strategy.  Null keeps every
    /// datapath stage serial; the bytes produced are identical either way.
    ThreadPool* datapath_pool = nullptr;
    /// Opt-in pipelined persist path for the background writer (windowed
    /// writes, batched syncs; identical bytes on disk).
    PipelineSpec pipeline;
  };

  LowDiffStrategy(std::shared_ptr<CheckpointStore> store, Options options);
  ~LowDiffStrategy() override;

  void after_step(std::uint64_t iter, const ModelState& state,
                  std::shared_ptr<const CompressedGrad> sync_grad) override;
  void flush() override;
  std::string name() const override { return "LowDiff"; }
  StrategyStats stats() const override;

 private:
  void checkpointing_loop();
  void write_batch(std::vector<CompressedGrad> members);

  std::shared_ptr<CheckpointStore> store_;
  Options options_;
  StrategyObs obs_;
  ReusingQueue<CompressedGrad> queue_;
  AsyncWriter writer_;
  std::thread ckpt_thread_;

  mutable std::mutex mutex_;  // guards stats_ and batch bookkeeping
  std::condition_variable drained_cv_;
  std::uint64_t enqueued_ = 0;
  std::uint64_t processed_ = 0;
  std::vector<CompressedGrad> batch_buffer_;
  std::size_t device_resident_bytes_ = 0;
  StrategyStats stats_;
};

/// LowDiff+ (paper §5): no gradient compression.  The training loop streams
/// layer-wise dense gradient chunks (reverse layer order, as the backward
/// pass produces them); a snapshot thread offloads each chunk to host
/// memory and applies it to a CPU-resident model replica with the same
/// optimizer, keeping an always-up-to-date in-memory checkpoint.  The
/// replica is persisted asynchronously every persist_interval iterations.
class LowDiffPlusStrategy final : public CheckpointStrategy {
 public:
  /// One layer's gradient for one iteration, in flat-parameter coordinates.
  struct GradChunk {
    std::uint64_t iteration = 0;
    std::size_t offset = 0;
    std::vector<float> values;
    bool last_of_iteration = false;
  };

  struct Options {
    std::uint64_t persist_interval = 4;
    std::size_t queue_capacity = 64;
    /// Optional PCIe model for chunk offloads.
    std::shared_ptr<Throttler> pcie;
    /// Opt-in pipelined persist path for the background writer.
    PipelineSpec pipeline;
  };

  /// `init` must equal the training-side initial state (the paper deep-
  /// copies the GPU model at spawn time); `optimizer` must match training.
  LowDiffPlusStrategy(std::shared_ptr<CheckpointStore> store,
                      const ModelState& init,
                      std::unique_ptr<Optimizer> optimizer, Options options);
  ~LowDiffPlusStrategy() override;

  /// Layer-wise entry point (Algorithm 2): enqueue one chunk.
  void on_layer_gradient(GradChunk chunk);

  /// Whole-iteration fallback: splits a dense payload into one chunk.
  void after_step(std::uint64_t iter, const ModelState& state,
                  std::shared_ptr<const CompressedGrad> sync_grad) override;

  void flush() override;
  std::string name() const override { return "LowDiff+"; }
  StrategyStats stats() const override;

  /// In-memory checkpoint: the CPU replica after all chunks up to and
  /// including `iter` have been applied (software-failure recovery, §5.3).
  ModelState replica_snapshot(std::uint64_t iter);

 private:
  void update_loop();

  std::shared_ptr<CheckpointStore> store_;
  std::unique_ptr<Optimizer> optimizer_;
  Options options_;
  StrategyObs obs_;
  ReusingQueue<GradChunk> queue_;
  AsyncWriter writer_;
  std::thread update_thread_;

  mutable std::mutex replica_mutex_;
  std::condition_variable replica_cv_;
  ModelState replica_;
  std::uint64_t replica_iter_done_ = 0;  // iterations fully applied
  std::uint64_t chunks_enqueued_ = 0;
  std::uint64_t chunks_processed_ = 0;
  StrategyStats stats_;
};

}  // namespace lowdiff
