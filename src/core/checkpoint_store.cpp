#include "core/checkpoint_store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>

#include "common/error.h"
#include "storage/atomic_commit.h"
#include "storage/serializer.h"

namespace lowdiff {
namespace {

std::string pad(std::uint64_t iter) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%012llu", static_cast<unsigned long long>(iter));
  return buf;
}

}  // namespace

CheckpointStore::CheckpointStore(std::shared_ptr<StorageBackend> backend,
                                 RetryPolicy retry)
    : backend_(std::move(backend)), retry_(retry),
      rng_(retry.make_rng(0xc4ec9013)) {
  LOWDIFF_ENSURE(backend_ != nullptr, "null backend");
}

std::string CheckpointStore::full_key(std::uint64_t iter) {
  return "full/" + pad(iter);
}

std::string CheckpointStore::diff_key(std::uint64_t iter) {
  return "diff/" + pad(iter);
}

std::string CheckpointStore::batch_key(std::uint64_t first, std::uint64_t last) {
  return "batch/" + pad(first) + "_" + pad(last);
}

std::string CheckpointStore::shard_key(std::uint64_t iter, std::uint32_t rank,
                                       std::uint32_t world) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "fullshard/%012llu_%04u_%04u",
                static_cast<unsigned long long>(iter), rank, world);
  return buf;
}

void CheckpointStore::enable_pipeline(const PipelineSpec& spec) {
  if (!spec.enabled) {
    pipeline_.reset();
    return;
  }
  PipelinedWriter::Options opt;
  opt.spec = spec;
  opt.retry = retry_;
  opt.committed = true;
  opt.seed = 0xc4ec9014;
  pipeline_ = std::make_unique<PipelinedWriter>(backend_, opt);
}

Status CheckpointStore::write_committed(const std::string& key,
                                        std::span<const std::byte> bytes) const {
  if (pipeline_ != nullptr) {
    // The pipeline owns the bytes asynchronously, so stage them in a pooled
    // lease (callers pass spans over stack-local serializations).
    PooledBuffer staged = BufferPool::global().acquire(bytes.size());
    if (!bytes.empty()) std::memcpy(staged.data(), bytes.data(), bytes.size());
    auto final_status = std::make_shared<Status>();
    pipeline_->put(key, ByteBuffer(std::move(staged)),
                   [final_status](const Status& st) { *final_status = st; });
    // barrier() returns only once every pending record — including this
    // one — is finalized, so *final_status is set even when a concurrent
    // writer's barrier reaped our completion.  Concurrent callers in the
    // same window share sync barriers; that is the coalescing win.
    (void)pipeline_->barrier();
    return *final_status;
  }
  // Fork a per-call RNG so retry sleeps don't serialize concurrent writers
  // (sharded saves run one thread per rank).
  std::uint64_t fork_seed;
  {
    std::lock_guard lock(rng_mutex_);
    fork_seed = rng_();
  }
  Xoshiro256 rng(fork_seed);
  std::uint64_t n = 0;
  Status st = committed_write(*backend_, key, bytes, retry_, rng, &n);
  retries_.fetch_add(n, std::memory_order_relaxed);
  return st;
}

Result<std::vector<std::byte>> CheckpointStore::read_committed(
    const std::string& key) const {
  std::uint64_t fork_seed;
  {
    std::lock_guard lock(rng_mutex_);
    fork_seed = rng_();
  }
  Xoshiro256 rng(fork_seed);
  std::uint64_t n = 0;
  auto result = committed_read(*backend_, key, retry_, rng, &n);
  retries_.fetch_add(n, std::memory_order_relaxed);
  return result;
}

Status CheckpointStore::put_full(std::uint64_t iter, const ModelState& state) {
  return write_committed(full_key(iter), serialize_model_state(state));
}

namespace {

/// Element range [lo, hi) owned by `rank` of `world` in a flat vector.
std::pair<std::size_t, std::size_t> shard_range(std::size_t n, std::uint32_t rank,
                                                std::uint32_t world) {
  const std::size_t lo = n * rank / world;
  const std::size_t hi = n * (rank + 1) / world;
  return {lo, hi};
}

template <typename T>
void append_pod(std::vector<std::byte>& out, const T& v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

void append_slice(std::vector<std::byte>& out, std::span<const float> v) {
  const auto* p = reinterpret_cast<const std::byte*>(v.data());
  out.insert(out.end(), p, p + v.size_bytes());
}

template <typename T>
T read_pod(std::span<const std::byte> bytes, std::size_t& pos) {
  LOWDIFF_ENSURE(pos + sizeof(T) <= bytes.size(), "truncated shard");
  T v;
  std::memcpy(&v, bytes.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}

}  // namespace

Status CheckpointStore::put_full_shard(std::uint64_t iter, std::uint32_t rank,
                                       std::uint32_t world,
                                       const ModelState& state) {
  LOWDIFF_ENSURE(world >= 1 && rank < world, "bad shard coordinates");
  const auto [lo, hi] = shard_range(state.param_count(), rank, world);
  const std::size_t count = hi - lo;

  std::vector<std::byte> payload;
  payload.reserve(3 * count * sizeof(float) + 64);
  append_pod(payload, iter);
  append_pod(payload, rank);
  append_pod(payload, world);
  append_pod(payload, state.step());
  append_pod(payload, static_cast<std::uint64_t>(state.param_count()));
  append_pod(payload, static_cast<std::uint64_t>(lo));
  append_pod(payload, static_cast<std::uint64_t>(count));
  append_slice(payload, state.params().cspan().subspan(lo, count));
  append_slice(payload, state.moment1().span().subspan(lo, count));
  append_slice(payload, state.moment2().span().subspan(lo, count));
  return write_committed(shard_key(iter, rank, world),
                         frame(RecordType::kFullShard, payload));
}

Status CheckpointStore::put_diff(const CompressedGrad& grad) {
  return write_committed(diff_key(grad.iteration), serialize_diff(grad));
}

Status CheckpointStore::put_batch(const BatchedGrad& batch) {
  LOWDIFF_ENSURE(!batch.members.empty(), "empty batch");
  return write_committed(batch_key(batch.first_iteration, batch.last_iteration),
                         serialize_batch(batch));
}

Status CheckpointStore::put_raw(const std::string& key,
                                std::span<const std::byte> bytes) {
  return write_committed(key, bytes);
}

bool CheckpointStore::parse_key(const std::string& key, char& kind,
                                std::uint64_t& a, std::uint64_t& b) {
  unsigned long long x = 0, y = 0;
  if (std::sscanf(key.c_str(), "full/%llu", &x) == 1) {
    kind = 'f';
    a = x;
    return true;
  }
  if (std::sscanf(key.c_str(), "diff/%llu", &x) == 1) {
    kind = 'd';
    a = x;
    return true;
  }
  if (std::sscanf(key.c_str(), "batch/%llu_%llu", &x, &y) == 2) {
    kind = 'b';
    a = x;
    b = y;
    return true;
  }
  unsigned rank = 0, world = 0;
  if (std::sscanf(key.c_str(), "fullshard/%llu_%u_%u", &x, &rank, &world) == 3) {
    kind = 's';
    a = x;
    b = (static_cast<std::uint64_t>(world) << 32) | rank;
    return true;
  }
  return false;
}

std::vector<std::string> CheckpointStore::committed_keys() const {
  const auto all = backend_->list();
  const std::set<std::string> index(all.begin(), all.end());
  std::vector<std::string> visible;
  visible.reserve(all.size() / 2);
  for (const auto& key : all) {
    if (is_commit_marker(key)) continue;
    if (index.contains(commit_marker_key(key))) visible.push_back(key);
  }
  return visible;
}

std::vector<std::uint64_t> CheckpointStore::complete_shard_sets() const {
  // iter -> (world, ranks seen)
  std::map<std::uint64_t, std::pair<std::uint32_t, std::set<std::uint32_t>>> seen;
  for (const auto& key : committed_keys()) {
    char kind;
    std::uint64_t a = 0, b = 0;
    if (!parse_key(key, kind, a, b) || kind != 's') continue;
    const auto world = static_cast<std::uint32_t>(b >> 32);
    const auto rank = static_cast<std::uint32_t>(b & 0xFFFFFFFFu);
    auto& entry = seen[a];
    entry.first = world;
    entry.second.insert(rank);
  }
  std::vector<std::uint64_t> complete;
  for (const auto& [iter, entry] : seen) {
    if (entry.first > 0 && entry.second.size() == entry.first) {
      complete.push_back(iter);
    }
  }
  return complete;  // std::map iteration => ascending
}

std::optional<std::uint64_t> CheckpointStore::latest_full() const {
  const auto all = fulls();
  if (all.empty()) return std::nullopt;
  return all.back();
}

std::vector<std::uint64_t> CheckpointStore::fulls() const {
  std::vector<std::uint64_t> result;
  for (const auto& key : committed_keys()) {
    char kind;
    std::uint64_t a = 0, b = 0;
    if (parse_key(key, kind, a, b) && kind == 'f') result.push_back(a);
  }
  for (std::uint64_t iter : complete_shard_sets()) result.push_back(iter);
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

std::vector<std::uint64_t> CheckpointStore::diffs_after(std::uint64_t iter) const {
  std::vector<std::uint64_t> result;
  for (const auto& key : committed_keys()) {
    char kind;
    std::uint64_t a = 0, b = 0;
    if (!parse_key(key, kind, a, b)) continue;
    if (kind == 'd' && a > iter) {
      result.push_back(a);
    } else if (kind == 'b' && b > iter) {
      for (std::uint64_t i = std::max(a, iter + 1); i <= b; ++i) {
        result.push_back(i);
      }
    }
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

Result<ModelState> CheckpointStore::try_read_full(std::uint64_t iter,
                                                  const ModelSpec& spec) const {
  using R = Result<ModelState>;
  if (auto bytes = read_committed(full_key(iter)); bytes.ok()) {
    try {
      return deserialize_model_state(*bytes, spec);
    } catch (const Error& e) {
      return R(ErrorCode::kCorrupted,
               full_key(iter) + " undecodable: " + e.what());
    }
  } else if (bytes.status().code() != ErrorCode::kNotFound) {
    return R(bytes.status());
  }

  // Assemble from shards.  Discover the world size from any committed
  // shard key for this iteration.
  std::uint32_t world = 0;
  for (const auto& key : committed_keys()) {
    char kind;
    std::uint64_t a = 0, b = 0;
    if (parse_key(key, kind, a, b) && kind == 's' && a == iter) {
      world = static_cast<std::uint32_t>(b >> 32);
      break;
    }
  }
  if (world == 0) {
    return R(ErrorCode::kNotFound, "missing full checkpoint " + full_key(iter));
  }

  try {
    ModelState state(spec);
    std::size_t assembled = 0;
    for (std::uint32_t rank = 0; rank < world; ++rank) {
      auto bytes = read_committed(shard_key(iter, rank, world));
      if (!bytes.ok()) {
        return R(bytes.status().code() == ErrorCode::kNotFound
                     ? Status(ErrorCode::kNotFound,
                              "incomplete sharded checkpoint at iteration " +
                                  std::to_string(iter))
                     : bytes.status());
      }
      auto [type, payload] = unframe(*bytes);
      LOWDIFF_ENSURE(type == RecordType::kFullShard, "not a checkpoint shard");
      std::size_t pos = 0;
      const auto shard_iter = read_pod<std::uint64_t>(payload, pos);
      const auto shard_rank = read_pod<std::uint32_t>(payload, pos);
      const auto shard_world = read_pod<std::uint32_t>(payload, pos);
      const auto step = read_pod<std::uint64_t>(payload, pos);
      const auto param_count = read_pod<std::uint64_t>(payload, pos);
      const auto lo = read_pod<std::uint64_t>(payload, pos);
      const auto count = read_pod<std::uint64_t>(payload, pos);
      LOWDIFF_ENSURE(shard_iter == iter && shard_rank == rank && shard_world == world,
                     "shard metadata mismatch");
      LOWDIFF_ENSURE(param_count == spec.param_count(),
                     "shard parameter count does not match model spec");
      LOWDIFF_ENSURE(lo + count <= param_count, "shard range out of bounds");
      LOWDIFF_ENSURE(pos + 3 * count * sizeof(float) == payload.size(),
                     "shard payload size mismatch");
      auto copy_slice = [&payload, &pos](std::span<float> dst) {
        if (!dst.empty()) {
          std::memcpy(dst.data(), payload.data() + pos, dst.size_bytes());
        }
        pos += dst.size_bytes();
      };
      copy_slice(state.params().span().subspan(lo, count));
      copy_slice(state.moment1().span().subspan(lo, count));
      copy_slice(state.moment2().span().subspan(lo, count));
      state.set_step(step);
      assembled += count;
    }
    LOWDIFF_ENSURE(assembled == spec.param_count(), "shards do not cover the state");
    return state;
  } catch (const Error& e) {
    return R(ErrorCode::kCorrupted, "sharded checkpoint at iteration " +
                                        std::to_string(iter) +
                                        " undecodable: " + e.what());
  }
}

ModelState CheckpointStore::read_full(std::uint64_t iter,
                                      const ModelSpec& spec) const {
  auto result = try_read_full(iter, spec);
  result.status().check();
  return std::move(*result);
}

std::optional<CheckpointStore::BatchRef> CheckpointStore::batch_containing(
    std::uint64_t iter) const {
  for (const auto& key : committed_keys()) {
    char kind;
    std::uint64_t a = 0, b = 0;
    if (parse_key(key, kind, a, b) && kind == 'b' && a <= iter && iter <= b) {
      return BatchRef{a, b, key};
    }
  }
  return std::nullopt;
}

Result<CompressedGrad> CheckpointStore::try_read_diff(std::uint64_t iter) const {
  using R = Result<CompressedGrad>;
  if (auto bytes = read_committed(diff_key(iter)); bytes.ok()) {
    try {
      return deserialize_diff(*bytes);
    } catch (const Error& e) {
      return R(ErrorCode::kCorrupted,
               diff_key(iter) + " undecodable: " + e.what());
    }
  } else if (bytes.status().code() != ErrorCode::kNotFound) {
    return R(bytes.status());
  }

  const auto ref = batch_containing(iter);
  if (!ref.has_value()) {
    return R(ErrorCode::kNotFound,
             "missing differential checkpoint for iteration " +
                 std::to_string(iter));
  }
  auto bytes = read_committed(ref->key);
  if (!bytes.ok()) return R(bytes.status());
  try {
    const BatchedGrad batch = deserialize_batch(*bytes);
    for (const auto& member : batch.members) {
      if (member.iteration == iter) return member;
    }
    return R(ErrorCode::kCorrupted, "batch " + ref->key +
                                        " does not contain iteration " +
                                        std::to_string(iter));
  } catch (const Error& e) {
    return R(ErrorCode::kCorrupted, ref->key + " undecodable: " + e.what());
  }
}

CompressedGrad CheckpointStore::read_diff(std::uint64_t iter) const {
  auto result = try_read_diff(iter);
  result.status().check();
  return std::move(*result);
}

void CheckpointStore::prune_before(std::uint64_t iter) {
  for (const auto& key : backend_->list()) {
    if (is_commit_marker(key)) continue;  // removed with their data object
    char kind;
    std::uint64_t a = 0, b = 0;
    if (!parse_key(key, kind, a, b)) continue;
    const bool obsolete = (kind == 'f' && a < iter) || (kind == 'd' && a <= iter) ||
                          (kind == 'b' && b <= iter) || (kind == 's' && a < iter);
    if (obsolete) {
      // Marker first: a data object without a marker is invisible, while a
      // dangling marker would read as a corrupt (data-missing) checkpoint.
      backend_->remove(commit_marker_key(key));
      backend_->remove(key);
    }
  }
}

CheckpointStore::Usage CheckpointStore::usage() const {
  Usage usage;
  for (const auto& key : backend_->list()) {
    char kind;
    std::uint64_t a = 0, b = 0;
    if (!parse_key(key, kind, a, b)) continue;
    const auto bytes = backend_->read(key);
    if (!bytes.has_value()) continue;
    if (kind == 'f' || kind == 's') {
      usage.full_bytes += bytes->size();
      if (kind == 'f') ++usage.full_count;
    } else {
      usage.diff_bytes += bytes->size();
      usage.diff_count += (kind == 'b') ? (b - a + 1) : 1;
    }
  }
  return usage;
}

}  // namespace lowdiff
