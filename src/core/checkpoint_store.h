#pragma once

/// \file checkpoint_store.h
/// Naming scheme and manifest over a StorageBackend for full, differential,
/// and batched-differential checkpoints.  Keys embed zero-padded iteration
/// numbers so a lexicographic listing is a chronological manifest — the
/// recovery process scans it to find the latest full checkpoint and every
/// differential after it (Eq. 2).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "compress/compressed_grad.h"
#include "compress/merge.h"
#include "model/model_state.h"
#include "storage/backend.h"

namespace lowdiff {

class CheckpointStore {
 public:
  explicit CheckpointStore(std::shared_ptr<StorageBackend> backend);

  StorageBackend& backend() { return *backend_; }
  const StorageBackend& backend() const { return *backend_; }
  std::shared_ptr<StorageBackend> backend_ptr() const { return backend_; }

  // --- writes -------------------------------------------------------------

  /// Persists a full checkpoint of `state` taken after iteration `iter`.
  void put_full(std::uint64_t iter, const ModelState& state);

  /// Sharded full checkpoint: rank `rank` of `world` persists its slice of
  /// the flat state (params + moments are split by the same element range).
  /// A sharded checkpoint is only *visible* to latest_full()/read_full()
  /// once all `world` shards are present, so a failure mid-save can never
  /// be recovered from half a checkpoint.
  void put_full_shard(std::uint64_t iter, std::uint32_t rank, std::uint32_t world,
                      const ModelState& state);

  /// Persists one differential checkpoint (a reused compressed gradient).
  void put_diff(const CompressedGrad& grad);

  /// Persists a batched differential checkpoint C^B.
  void put_batch(const BatchedGrad& batch);

  /// Pre-serialized variants for async write paths.
  static std::string full_key(std::uint64_t iter);
  static std::string diff_key(std::uint64_t iter);
  static std::string batch_key(std::uint64_t first, std::uint64_t last);
  static std::string shard_key(std::uint64_t iter, std::uint32_t rank,
                               std::uint32_t world);

  // --- manifest -----------------------------------------------------------

  /// Iteration of the most recent full checkpoint, if any.
  std::optional<std::uint64_t> latest_full() const;

  /// Iterations of all differential checkpoints (batch members expanded)
  /// strictly after `iter`, ascending.
  std::vector<std::uint64_t> diffs_after(std::uint64_t iter) const;

  /// Iterations whose sharded full checkpoints are complete (every rank's
  /// shard present), ascending.  Incomplete sets are invisible to
  /// latest_full().
  std::vector<std::uint64_t> complete_shard_sets() const;

  // --- reads --------------------------------------------------------------

  ModelState read_full(std::uint64_t iter, const ModelSpec& spec) const;

  /// Reads the differential for iteration `iter`, whether it was stored
  /// standalone or inside a batch.
  CompressedGrad read_diff(std::uint64_t iter) const;

  // --- maintenance ---------------------------------------------------------

  /// Deletes checkpoints made obsolete by the full checkpoint at `iter`
  /// (older fulls and all differentials at or before `iter`).
  void prune_before(std::uint64_t iter);

  /// Total bytes currently stored, split by kind (Exp. 7 storage table).
  struct Usage {
    std::uint64_t full_bytes = 0;
    std::uint64_t diff_bytes = 0;
    std::uint64_t full_count = 0;
    std::uint64_t diff_count = 0;
  };
  Usage usage() const;

 private:
  struct BatchRef {
    std::uint64_t first = 0;
    std::uint64_t last = 0;
    std::string key;
  };

  /// Parses a manifest key; returns false for unrelated keys.
  static bool parse_key(const std::string& key, char& kind, std::uint64_t& a,
                        std::uint64_t& b);

  std::optional<BatchRef> batch_containing(std::uint64_t iter) const;

  std::shared_ptr<StorageBackend> backend_;
};

}  // namespace lowdiff
