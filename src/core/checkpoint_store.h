#pragma once

/// \file checkpoint_store.h
/// Naming scheme and manifest over a StorageBackend for full, differential,
/// and batched-differential checkpoints.  Keys embed zero-padded iteration
/// numbers so a lexicographic listing is a chronological manifest — the
/// recovery process scans it to find the latest full checkpoint and every
/// differential after it (Eq. 2).
///
/// All writes follow the atomic commit protocol (atomic_commit.h): a data
/// object is only part of the manifest once its commit marker exists, and
/// the marker carries the object's length + CRC32C.  Scans ignore
/// uncommitted objects, so a torn or in-flight write can never be recovered
/// from; reads validate against the marker and report kCorrupted instead of
/// silently consuming damaged state.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/retry.h"
#include "compress/compressed_grad.h"
#include "compress/merge.h"
#include "model/model_state.h"
#include "storage/backend.h"
#include "storage/pipelined_writer.h"

namespace lowdiff {

class CheckpointStore {
 public:
  explicit CheckpointStore(std::shared_ptr<StorageBackend> backend,
                           RetryPolicy retry = {});

  StorageBackend& backend() { return *backend_; }
  const StorageBackend& backend() const { return *backend_; }
  std::shared_ptr<StorageBackend> backend_ptr() const { return backend_; }
  const RetryPolicy& retry_policy() const { return retry_; }

  /// Routes every committed write through one shared PipelinedWriter
  /// (windowed in-flight writes, batched syncs, ordered markers) instead of
  /// a blocking committed_write per record — concurrent sharded saves then
  /// coalesce their fsyncs.  Bytes on disk are identical either way.  Pass
  /// a spec with enabled=false to return to the serial path.  Not safe to
  /// flip while writes are in flight.
  void enable_pipeline(const PipelineSpec& spec);
  bool pipeline_enabled() const { return pipeline_ != nullptr; }

  // --- writes -------------------------------------------------------------

  /// Persists a full checkpoint of `state` taken after iteration `iter`.
  Status put_full(std::uint64_t iter, const ModelState& state);

  /// Sharded full checkpoint: rank `rank` of `world` persists its slice of
  /// the flat state (params + moments are split by the same element range).
  /// A sharded checkpoint is only *visible* to latest_full()/read_full()
  /// once all `world` shards are present, so a failure mid-save can never
  /// be recovered from half a checkpoint.
  Status put_full_shard(std::uint64_t iter, std::uint32_t rank,
                        std::uint32_t world, const ModelState& state);

  /// Persists one differential checkpoint (a reused compressed gradient).
  Status put_diff(const CompressedGrad& grad);

  /// Persists a batched differential checkpoint C^B.
  Status put_batch(const BatchedGrad& batch);

  /// Commits pre-serialized bytes under `key` (async write paths and the
  /// Gemini memory tier go through this so their objects are visible).
  Status put_raw(const std::string& key, std::span<const std::byte> bytes);

  /// Pre-serialized variants for async write paths.
  static std::string full_key(std::uint64_t iter);
  static std::string diff_key(std::uint64_t iter);
  static std::string batch_key(std::uint64_t first, std::uint64_t last);
  static std::string shard_key(std::uint64_t iter, std::uint32_t rank,
                               std::uint32_t world);

  // --- manifest -----------------------------------------------------------

  /// Iteration of the most recent committed full checkpoint, if any.
  std::optional<std::uint64_t> latest_full() const;

  /// Iterations of every committed full checkpoint (monolithic and complete
  /// shard sets), ascending — recovery walks this backwards when the latest
  /// full turns out to be corrupt.
  std::vector<std::uint64_t> fulls() const;

  /// Iterations of all committed differential checkpoints (batch members
  /// expanded) strictly after `iter`, ascending.
  std::vector<std::uint64_t> diffs_after(std::uint64_t iter) const;

  /// Iterations whose sharded full checkpoints are complete (every rank's
  /// shard committed), ascending.  Incomplete sets are invisible to
  /// latest_full().
  std::vector<std::uint64_t> complete_shard_sets() const;

  // --- reads --------------------------------------------------------------

  /// Throwing reads (programming-error style) for callers that have already
  /// validated existence via the manifest.
  ModelState read_full(std::uint64_t iter, const ModelSpec& spec) const;
  CompressedGrad read_diff(std::uint64_t iter) const;

  /// Non-throwing reads: kNotFound when absent/uncommitted, kCorrupted on
  /// CRC/length mismatch or undecodable payload.
  Result<ModelState> try_read_full(std::uint64_t iter, const ModelSpec& spec) const;
  Result<CompressedGrad> try_read_diff(std::uint64_t iter) const;

  // --- maintenance ---------------------------------------------------------

  /// Deletes checkpoints made obsolete by the full checkpoint at `iter`
  /// (older fulls and all differentials at or before `iter`), markers
  /// included.
  void prune_before(std::uint64_t iter);

  /// Total bytes currently stored, split by kind (Exp. 7 storage table).
  struct Usage {
    std::uint64_t full_bytes = 0;
    std::uint64_t diff_bytes = 0;
    std::uint64_t full_count = 0;
    std::uint64_t diff_count = 0;
  };
  Usage usage() const;

  /// Storage retries performed by this store's reads/writes so far
  /// (pipelined writes report their device-level retries here too).
  std::uint64_t retry_count() const {
    std::uint64_t n = retries_.load(std::memory_order_relaxed);
    if (pipeline_ != nullptr) n += pipeline_->stats().retries;
    return n;
  }

 private:
  struct BatchRef {
    std::uint64_t first = 0;
    std::uint64_t last = 0;
    std::string key;
  };

  /// Parses a manifest key; returns false for unrelated keys.
  static bool parse_key(const std::string& key, char& kind, std::uint64_t& a,
                        std::uint64_t& b);

  /// Data keys from list() that have a commit marker (markers excluded).
  std::vector<std::string> committed_keys() const;

  Status write_committed(const std::string& key,
                         std::span<const std::byte> bytes) const;
  Result<std::vector<std::byte>> read_committed(const std::string& key) const;

  std::optional<BatchRef> batch_containing(std::uint64_t iter) const;

  std::shared_ptr<StorageBackend> backend_;
  RetryPolicy retry_;
  /// Non-null iff enable_pipeline() opted in; shared by all writer threads.
  mutable std::unique_ptr<PipelinedWriter> pipeline_;
  mutable std::mutex rng_mutex_;
  mutable Xoshiro256 rng_;
  mutable std::atomic<std::uint64_t> retries_{0};
};

}  // namespace lowdiff
