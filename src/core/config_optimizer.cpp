#include "core/config_optimizer.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace lowdiff {

double wasted_time_model(const WastedTimeParams& p, double f, double b) {
  LOWDIFF_ENSURE(f > 0.0 && b > 0.0, "f and b must be positive");
  const double failures = p.total_train_sec / p.mtbf_sec;
  const double recovery =
      p.num_gpus * failures *
      (b / 2.0 + p.load_full_sec +
       p.merge_diff_sec / 2.0 * (1.0 / (f * b) - 1.0));
  const double steady =
      p.num_gpus * p.total_train_sec * p.full_ckpt_bytes * f / p.write_bw;
  return recovery + steady;
}

std::pair<double, double> optimal_config(const WastedTimeParams& p) {
  const double f_star = std::cbrt(p.merge_diff_sec * p.write_bw * p.write_bw /
                                  (4.0 * p.full_ckpt_bytes * p.full_ckpt_bytes *
                                   p.mtbf_sec * p.mtbf_sec));
  const double b_star = std::cbrt(2.0 * p.full_ckpt_bytes * p.merge_diff_sec *
                                  p.mtbf_sec / p.write_bw);
  return {f_star, b_star};
}

IterationConfig to_iteration_config(const WastedTimeParams& p,
                                    double iter_time_sec) {
  LOWDIFF_ENSURE(iter_time_sec > 0.0, "iteration time must be positive");
  const auto [f_star, b_star] = optimal_config(p);
  IterationConfig cfg;
  // f* checkpoints per second => 1/f* seconds between checkpoints.
  cfg.full_interval = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(1.0 / (f_star * iter_time_sec))));
  cfg.batch_size = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(b_star / iter_time_sec)));
  // The batch must fit inside the full-checkpoint interval.
  cfg.batch_size = std::min<std::uint64_t>(cfg.batch_size, cfg.full_interval);
  return cfg;
}

ConfigTuner::ConfigTuner(WastedTimeParams initial, double iter_time_sec)
    : params_(initial), iter_time_sec_(iter_time_sec) {
  LOWDIFF_ENSURE(iter_time_sec > 0.0, "iteration time must be positive");
}

void ConfigTuner::observe_mtbf(double measured_mtbf_sec) {
  LOWDIFF_ENSURE(measured_mtbf_sec > 0.0, "mtbf must be positive");
  params_.mtbf_sec =
      (1.0 - smoothing_) * params_.mtbf_sec + smoothing_ * measured_mtbf_sec;
}

void ConfigTuner::observe_write_bandwidth(double measured_bw) {
  LOWDIFF_ENSURE(measured_bw > 0.0, "bandwidth must be positive");
  params_.write_bw =
      (1.0 - smoothing_) * params_.write_bw + smoothing_ * measured_bw;
}

IterationConfig ConfigTuner::recommend() const {
  IterationConfig best = to_iteration_config(params_, iter_time_sec_);
  // Hill-climb the discrete neighborhood of the continuous optimum under
  // the Eq. (3) model (stepwise adjustment of §6).
  auto cost = [this](const IterationConfig& c) {
    const double f = 1.0 / (static_cast<double>(c.full_interval) * iter_time_sec_);
    const double b = static_cast<double>(c.batch_size) * iter_time_sec_;
    return wasted_time_model(params_, f, b);
  };
  double best_cost = cost(best);
  bool improved = true;
  while (improved) {
    improved = false;
    const IterationConfig candidates[] = {
        {best.full_interval + 1, best.batch_size},
        {best.full_interval > 1 ? best.full_interval - 1 : 1, best.batch_size},
        {best.full_interval, best.batch_size + 1},
        {best.full_interval, best.batch_size > 1 ? best.batch_size - 1 : 1},
    };
    for (const auto& c : candidates) {
      if (c.batch_size > c.full_interval) continue;
      const double candidate_cost = cost(c);
      if (candidate_cost + 1e-12 < best_cost) {
        best = c;
        best_cost = candidate_cost;
        improved = true;
      }
    }
  }
  return best;
}

}  // namespace lowdiff
