#pragma once

/// \file recovery.h
/// Recovery engines (paper Algorithm 1 "Recovery Process" + the parallel
/// recovery module of §6 / Fig. 7).
///
/// Serial recovery replays each differential through the optimizer:
///   M_t  = load(C^F);  M_{j+1} = M_j + Opt(decompress(C^D_j))
/// which reproduces the training-time state transitions *bit-exactly*,
/// because training applied the very same synchronized payloads (Finding 1).
///
/// Parallel recovery overlaps the expensive part — reading and unpacking
/// differentials from storage — across a thread pool, and for *state-free*
/// optimizers (plain SGD, whose per-iteration deltas compose additively)
/// also merges differentials pairwise in ⌈log₂ n⌉ rounds before a single
/// apply.  For stateful optimizers (Adam) the replay itself stays ordered,
/// which is required for exactness; the tests pin both equivalences.
///
/// Corruption awareness: every read is CRC-validated against the commit
/// manifest.  A corrupt full checkpoint causes fallback to the next older
/// valid full; a corrupt differential truncates the replay at that point
/// (replay must be a contiguous prefix for bit-exactness) while the
/// remaining differentials are still scanned so the report counts every
/// corrupt record.  Recovery throws only when no valid full exists at all.

#include <map>
#include <memory>
#include <string>

#include "common/thread_pool.h"
#include "compress/compressor.h"
#include "core/checkpoint_store.h"
#include "model/model_state.h"
#include "optim/optimizer.h"

namespace lowdiff {

/// Read traffic attributed to one source (a storage backend, or one tier
/// when recovery runs over a tier::Replicator).
struct ReadSourceTotals {
  std::uint64_t reads = 0;
  std::uint64_t bytes = 0;
  /// Read latency total: wall seconds spent in store reads (per-record
  /// read+decode, summed — exceeds wall clock under parallel recovery), or
  /// modeled seconds at the tier's read bandwidth for tier-aware recovery.
  double seconds = 0.0;
};

struct RecoveryReport {
  std::uint64_t full_iteration = 0;   ///< iteration of the loaded full ckpt
  std::uint64_t final_iteration = 0;  ///< iteration after replay
  std::uint64_t diffs_replayed = 0;
  std::uint64_t merge_rounds = 0;     ///< parallel pairwise merge rounds
  std::uint64_t corrupt_diffs_skipped = 0;  ///< CRC/decoding failures seen
  std::uint64_t corrupt_fulls_skipped = 0;  ///< fulls rejected before base
  std::uint64_t retries = 0;  ///< storage retries during recovery reads
  std::uint64_t bytes_read = 0;  ///< bytes fetched from the store's backend
  double read_seconds = 0.0;     ///< total read latency (see ReadSourceTotals)
  /// Per-source breakdown, keyed by backend/tier name ("storage" for the
  /// single-backend engine; `tier.*` names under TierAwareRecoveryEngine).
  std::map<std::string, ReadSourceTotals> read_sources;
};

class RecoveryEngine {
 public:
  /// `optimizer` and `compressor` must match what training used.
  RecoveryEngine(ModelSpec spec, std::unique_ptr<Optimizer> optimizer,
                 std::unique_ptr<Compressor> compressor);

  /// Serial recovery (Algorithm 1 lines 17–24).
  ModelState recover_serial(const CheckpointStore& store,
                            RecoveryReport* report = nullptr) const;

  /// Parallel recovery: loads + decompresses every differential on `pool`
  /// concurrently, then replays in order.  Bit-identical to
  /// recover_serial() for any optimizer.
  ModelState recover_parallel(const CheckpointStore& store, ThreadPool& pool,
                              RecoveryReport* report = nullptr) const;

  /// Additive fast path (Fig. 7's pairwise merging): valid when one
  /// optimizer step is a state-free linear function of the gradient
  /// (plain SGD: Δ = −lr·G).  Differentials are merged pairwise in
  /// ⌈log₂ n⌉ rounds on `pool` and applied in one shot.
  /// `lr` must equal the training learning rate.
  ModelState recover_parallel_additive(const CheckpointStore& store,
                                       ThreadPool& pool, float lr,
                                       RecoveryReport* report = nullptr) const;

 private:
  /// Loads the newest valid full checkpoint, falling back to older ones
  /// when reads come back corrupt.  Throws when none is valid.
  ModelState load_base(const CheckpointStore& store, std::uint64_t& full_iter,
                       RecoveryReport* report) const;

  ModelSpec spec_;
  std::unique_ptr<Optimizer> optimizer_;
  std::unique_ptr<Compressor> compressor_;
};

}  // namespace lowdiff
