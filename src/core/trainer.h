#pragma once

/// \file trainer.h
/// Live distributed training driver: `world` worker threads training a
/// real MLP on sharded synthetic data, synchronizing gradients through the
/// in-process communicator (compressed allgather+sum, or dense allreduce),
/// and driving a checkpoint strategy from rank 0.
///
/// This is the correctness half of the reproduction: integration tests run
/// it, kill it, recover from the checkpoint store, and verify bit-exact
/// state and an unchanged loss trajectory.  (Timeline/throughput results
/// come from the analytic simulator in sim/.)

#include <cstdint>
#include <memory>
#include <vector>

#include "comm/comm_group.h"
#include "compress/compressor.h"
#include "compress/error_feedback.h"
#include "core/strategies.h"
#include "model/dataset.h"
#include "model/mlp.h"
#include "optim/adam.h"
#include "optim/sgd.h"

namespace lowdiff {

/// Which gradient compression the training loop applies (§2.3).
enum class GradCompression {
  kTopK,     ///< magnitude sparsification (the paper's default)
  kRandomK,  ///< random sparsification
  kQuant8,   ///< 8-bit block quantization (synced dense, then quantized)
  kDense,    ///< no compression — the LowDiff+ regime
};

/// Which optimizer drives the parameter updates (recovery must replay
/// through the identical one — Finding 1).
enum class OptimizerKind {
  kAdam,
  kSgd,
};

struct TrainerConfig {
  std::size_t world = 2;
  std::size_t batch_size = 32;
  /// Sparsification ratio; 0 selects the dense (LowDiff+) regime
  /// regardless of `compression`.
  double rho = 0.01;
  GradCompression compression = GradCompression::kTopK;
  /// Residual error feedback on the local gradient before compression
  /// (sparse schemes only).
  bool error_feedback = false;
  OptimizerKind optimizer = OptimizerKind::kAdam;
  AdamConfig adam{};  ///< used when optimizer == kAdam
  SgdConfig sgd{};    ///< used when optimizer == kSgd
  std::uint64_t seed = 42;
  /// Worker threads for the chunk-parallel compression datapath.  0 keeps
  /// compression serial; any value produces bit-identical payloads (the
  /// compressors' determinism contract), so this is purely a speed knob.
  std::size_t datapath_threads = 0;
};

struct TrainResult {
  std::vector<double> losses;  ///< rank-0 training loss per iteration
  double wall_seconds = 0.0;
  /// Seconds rank 0 spent blocked inside the strategy (training stall).
  double stall_seconds = 0.0;
  /// Iterations that ended with checkpoint durability lagging (the
  /// replication layer's `tier.replication.durability_lag_records` gauge
  /// was nonzero after the strategy ran) — training proceeded, but a
  /// failure in that window could lose more than one checkpoint interval.
  std::uint64_t degraded_iterations = 0;
};

class Trainer {
 public:
  Trainer(MlpConfig mlp_config, TrainerConfig config);

  const MlpNet& net() const { return net_; }
  const ModelSpec& spec() const { return net_.spec(); }
  const TrainerConfig& config() const { return config_; }

  /// Runs iterations [start_iter, start_iter + num_iters) with the given
  /// strategy driven from rank 0.  `strategy` may be null (pure training).
  /// If `layerwise` is non-null (LowDiff+ mode, requires rho == 0), dense
  /// gradients are streamed to it per layer in reverse layer order instead
  /// of calling after_step.
  TrainResult run(std::uint64_t start_iter, std::uint64_t num_iters,
                  CheckpointStrategy* strategy,
                  LowDiffPlusStrategy* layerwise = nullptr);

  /// Worker `rank`'s current model state.
  const ModelState& state(std::size_t rank) const;

  /// Restores every worker to `state` (recovery broadcast) and clears
  /// error-feedback residuals.
  void set_state(const ModelState& state);

  /// Evaluation helpers on freshly generated batches.
  double eval_loss(std::uint64_t batch_index = 1'000'000) const;
  double eval_accuracy(std::uint64_t batch_index = 1'000'000) const;

  /// A fresh optimizer identical to the training one — what a recovery
  /// engine must replay differentials through.
  std::unique_ptr<Optimizer> make_optimizer() const {
    return optimizer_->clone();
  }

 private:
  MlpNet net_;
  TrainerConfig config_;
  SyntheticDataset dataset_;
  /// Owned datapath pool (created when config.datapath_threads > 0).
  /// Declared before compressor_ so it outlives every compressor clone.
  std::unique_ptr<ThreadPool> datapath_pool_;
  std::unique_ptr<Compressor> compressor_;
  std::vector<ModelState> states_;
  std::vector<std::unique_ptr<ErrorFeedback>> feedback_;
  std::unique_ptr<Optimizer> optimizer_;
};

}  // namespace lowdiff
