#pragma once

/// \file config_optimizer.h
/// The Optimal Configuration module (paper §4.3): the closed-form wasted
/// time model of Eq. (3) in full-checkpoint frequency f (checkpoints per
/// second) and batching size b (seconds of gradients per batched write),
/// its analytic minimizer Eq. (5), and the stepwise runtime tuner the
/// implementation section describes.

#include <cstdint>
#include <utility>

namespace lowdiff {

/// Constant system parameters of Eq. (3) (paper's notation in brackets).
struct WastedTimeParams {
  double num_gpus = 8;            ///< N
  double mtbf_sec = 3600.0;       ///< M
  double write_bw = 2.0e9;        ///< W, checkpoint write bandwidth (B/s)
  double full_ckpt_bytes = 1e9;   ///< S
  double total_train_sec = 86400; ///< T
  double load_full_sec = 1.0;     ///< R_F
  double merge_diff_sec = 0.05;   ///< R_D
};

/// Eq. (3): T_wasted(f, b) =
///   N·T/M · ( b/2 + R_F + R_D/2·(1/(f·b) − 1) ) + N·T·S·f / W
/// `f` in full checkpoints per second, `b` in seconds per batch.
double wasted_time_model(const WastedTimeParams& p, double f, double b);

/// Eq. (5): the stationary point
///   f* = cbrt( R_D·W² / (4·S²·M²) ),  b* = cbrt( 2·S·R_D·M / W ).
std::pair<double, double> optimal_config(const WastedTimeParams& p);

/// Converts the continuous optimum into iteration-granular settings for a
/// training loop with the given per-iteration time: the full-checkpoint
/// interval (iterations between full checkpoints, >= 1) and the batching
/// size in differentials per write (>= 1).
struct IterationConfig {
  std::uint64_t full_interval = 1;
  std::uint64_t batch_size = 1;
};
IterationConfig to_iteration_config(const WastedTimeParams& p,
                                    double iter_time_sec);

/// Stepwise runtime tuner (§6 "Optimal configuration module"): starts from
/// the analytic optimum and adapts multiplicatively as runtime estimates of
/// the failure rate and write bandwidth drift.  Pure logic, no threads —
/// callers feed observations and read the recommended configuration.
class ConfigTuner {
 public:
  ConfigTuner(WastedTimeParams initial, double iter_time_sec);

  /// Exponentially-smoothed runtime observations.
  void observe_mtbf(double measured_mtbf_sec);
  void observe_write_bandwidth(double measured_bw);

  /// Current recommendation (recomputed analytically after observations,
  /// then nudged by hill-climbing on the Eq. (3) model so the discrete
  /// neighborhood of the continuous optimum is explored).
  IterationConfig recommend() const;

  const WastedTimeParams& params() const { return params_; }

 private:
  WastedTimeParams params_;
  double iter_time_sec_;
  double smoothing_ = 0.3;
};

}  // namespace lowdiff
