#include "core/recovery.h"

#include <cmath>

#include "common/error.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "compress/merge.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"

namespace lowdiff {

namespace {

struct RecoveryObs {
  obs::Counter& diffs_replayed_total;
  obs::Counter& corrupt_diffs_total;
  obs::Counter& merge_rounds_total;

  static RecoveryObs resolve() {
    auto& reg = obs::Registry::global();
    return RecoveryObs{reg.counter("recovery.diffs_replayed_total"),
                       reg.counter("recovery.corrupt_diffs_total"),
                       reg.counter("recovery.merge_rounds_total")};
  }
};

/// Read-side accounting for one recovery run: bytes come from the backend
/// stats delta, latency totals from per-record stopwatches at the read
/// sites.  Aggregated under the source name "storage" (the tier-aware
/// engine replaces that with its per-tier breakdown).
struct ReadAccounting {
  explicit ReadAccounting(const CheckpointStore& store)
      : store_(store), before_(store.backend().stats()) {}

  void finish(RecoveryReport* report) const {
    if (report == nullptr) return;
    const auto after = store_.backend().stats();
    const std::uint64_t bytes = after.bytes_read - before_.bytes_read;
    report->bytes_read += bytes;
    report->read_seconds += seconds;
    auto& source = report->read_sources["storage"];
    source.reads += reads;
    source.bytes += bytes;
    source.seconds += seconds;
  }

  std::uint64_t reads = 0;
  double seconds = 0.0;

 private:
  const CheckpointStore& store_;
  StorageStats before_;
};

}  // namespace

RecoveryEngine::RecoveryEngine(ModelSpec spec,
                               std::unique_ptr<Optimizer> optimizer,
                               std::unique_ptr<Compressor> compressor)
    : spec_(std::move(spec)), optimizer_(std::move(optimizer)),
      compressor_(std::move(compressor)) {
  LOWDIFF_ENSURE(optimizer_ != nullptr, "null optimizer");
  LOWDIFF_ENSURE(compressor_ != nullptr, "null compressor");
}

ModelState RecoveryEngine::load_base(const CheckpointStore& store,
                                     std::uint64_t& full_iter,
                                     RecoveryReport* report) const {
  LOWDIFF_TRACE_SPAN("recovery.load_base", "recovery");
  const auto fulls = store.fulls();
  LOWDIFF_ENSURE(!fulls.empty(), "no full checkpoint to recover from");
  // Newest first; degrade to older fulls when the newer ones are corrupt.
  for (auto it = fulls.rbegin(); it != fulls.rend(); ++it) {
    auto result = store.try_read_full(*it, spec_);
    if (result.ok()) {
      full_iter = *it;
      return std::move(*result);
    }
    LOWDIFF_LOG_ERROR("full checkpoint at iteration ", *it,
                      " unusable: ", result.status().to_string());
    if (report != nullptr) ++report->corrupt_fulls_skipped;
  }
  throw Error("every full checkpoint is corrupt; cannot recover",
              std::source_location::current());
}

ModelState RecoveryEngine::recover_serial(const CheckpointStore& store,
                                          RecoveryReport* report) const {
  const std::uint64_t retries_before = store.retry_count();
  ReadAccounting acct(store);
  std::uint64_t full_iter = 0;
  Stopwatch base_sw;
  ModelState state = load_base(store, full_iter, report);
  acct.seconds += base_sw.elapsed_sec();
  acct.reads += 1 + (report != nullptr ? report->corrupt_fulls_skipped : 0);

  const auto diffs = store.diffs_after(full_iter);
  LOWDIFF_TRACE_SPAN("recovery.replay", "recovery");
  Tensor dense(spec_.param_count());
  std::uint64_t applied_until = full_iter;
  std::uint64_t applied = 0, corrupt = 0;
  bool truncated = false;
  for (std::uint64_t iter : diffs) {
    Stopwatch read_sw;
    auto payload = store.try_read_diff(iter);
    acct.seconds += read_sw.elapsed_sec();
    ++acct.reads;
    if (!payload.ok()) {
      // Replay must be a contiguous prefix, so the first bad differential
      // ends it — but keep scanning so every corrupt record is reported.
      LOWDIFF_LOG_ERROR("differential at iteration ", iter,
                        " unusable: ", payload.status().to_string());
      ++corrupt;
      truncated = true;
      continue;
    }
    if (truncated) continue;
    compressor_->decompress(*payload, dense.span());
    optimizer_->step(state, dense.cspan());
    applied_until = iter;
    ++applied;
  }
  const RecoveryObs robs = RecoveryObs::resolve();
  robs.diffs_replayed_total.add(applied);
  robs.corrupt_diffs_total.add(corrupt);
  if (report != nullptr) {
    report->full_iteration = full_iter;
    report->diffs_replayed = applied;
    report->final_iteration = applied_until;
    report->merge_rounds = 0;
    report->corrupt_diffs_skipped = corrupt;
    report->retries += store.retry_count() - retries_before;
  }
  acct.finish(report);
  return state;
}

ModelState RecoveryEngine::recover_parallel(const CheckpointStore& store,
                                            ThreadPool& pool,
                                            RecoveryReport* report) const {
  const std::uint64_t retries_before = store.retry_count();
  ReadAccounting acct(store);
  std::uint64_t full_iter = 0;
  Stopwatch base_sw;
  ModelState state = load_base(store, full_iter, report);
  acct.seconds += base_sw.elapsed_sec();
  acct.reads += 1 + (report != nullptr ? report->corrupt_fulls_skipped : 0);

  const auto diffs = store.diffs_after(full_iter);

  // Read + decompress every differential concurrently — the I/O-parallel
  // half of the Fig. 7 scheme.
  struct Loaded {
    Result<Tensor> dense;
    double seconds;
  };
  std::vector<std::future<Loaded>> dense_futures;
  dense_futures.reserve(diffs.size());
  for (std::uint64_t iter : diffs) {
    dense_futures.push_back(pool.submit([this, &store, iter]() -> Loaded {
      Stopwatch read_sw;
      auto payload = store.try_read_diff(iter);
      if (!payload.ok()) {
        return {Result<Tensor>(payload.status()), read_sw.elapsed_sec()};
      }
      Tensor dense(spec_.param_count());
      compressor_->decompress(*payload, dense.span());
      return {Result<Tensor>(std::move(dense)), read_sw.elapsed_sec()};
    }));
  }

  // Ordered replay: Adam's moment updates do not commute, so exactness
  // requires applying gradients in iteration order.
  LOWDIFF_TRACE_SPAN("recovery.replay", "recovery");
  std::uint64_t applied_until = full_iter;
  std::uint64_t applied = 0, corrupt = 0;
  bool truncated = false;
  for (std::size_t i = 0; i < dense_futures.size(); ++i) {
    auto loaded = dense_futures[i].get();
    acct.seconds += loaded.seconds;
    ++acct.reads;
    if (!loaded.dense.ok()) {
      LOWDIFF_LOG_ERROR("differential at iteration ", diffs[i],
                        " unusable: ", loaded.dense.status().to_string());
      ++corrupt;
      truncated = true;
      continue;
    }
    if (truncated) continue;
    optimizer_->step(state, loaded.dense->cspan());
    applied_until = diffs[i];
    ++applied;
  }
  const RecoveryObs robs = RecoveryObs::resolve();
  robs.diffs_replayed_total.add(applied);
  robs.corrupt_diffs_total.add(corrupt);
  if (report != nullptr) {
    report->full_iteration = full_iter;
    report->diffs_replayed = applied;
    report->final_iteration = applied_until;
    report->merge_rounds = 0;
    report->corrupt_diffs_skipped = corrupt;
    report->retries += store.retry_count() - retries_before;
  }
  acct.finish(report);
  return state;
}

ModelState RecoveryEngine::recover_parallel_additive(const CheckpointStore& store,
                                                     ThreadPool& pool, float lr,
                                                     RecoveryReport* report) const {
  const std::uint64_t retries_before = store.retry_count();
  ReadAccounting acct(store);
  std::uint64_t full_iter = 0;
  Stopwatch base_sw;
  ModelState state = load_base(store, full_iter, report);
  acct.seconds += base_sw.elapsed_sec();
  acct.reads += 1 + (report != nullptr ? report->corrupt_fulls_skipped : 0);

  const auto diff_iters = store.diffs_after(full_iter);

  // Round 0: parallel load of every differential payload.
  obs::TraceSpan load_span(obs::Tracer::global(), "recovery.load", "recovery");
  struct LoadedGrad {
    Result<CompressedGrad> payload;
    double seconds;
  };
  std::vector<std::future<LoadedGrad>> loads;
  loads.reserve(diff_iters.size());
  for (std::uint64_t iter : diff_iters) {
    loads.push_back(pool.submit([&store, iter]() -> LoadedGrad {
      Stopwatch read_sw;
      auto payload = store.try_read_diff(iter);
      return {std::move(payload), read_sw.elapsed_sec()};
    }));
  }
  // Usable prefix: corruption at position k truncates the replay there
  // (even additively, applying post-gap updates would yield a state that
  // never existed during training).
  std::vector<CompressedGrad> payloads;
  payloads.reserve(loads.size());
  std::uint64_t corrupt = 0;
  bool truncated = false;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    auto loaded = loads[i].get();
    acct.seconds += loaded.seconds;
    ++acct.reads;
    if (!loaded.payload.ok()) {
      LOWDIFF_LOG_ERROR("differential at iteration ", diff_iters[i],
                        " unusable: ", loaded.payload.status().to_string());
      ++corrupt;
      truncated = true;
      continue;
    }
    if (!truncated) payloads.push_back(std::move(*loaded.payload));
  }
  const std::uint64_t applied = payloads.size();
  const std::uint64_t applied_until =
      applied == 0 ? full_iter : diff_iters[applied - 1];
  load_span.finish();

  // Pairwise merge rounds (Fig. 7): gradients of a state-free optimizer
  // compose additively, so summing sparse payloads preserves the result.
  std::uint64_t rounds = 0;
  while (payloads.size() > 1) {
    ++rounds;
    obs::TraceSpan round_span(obs::Tracer::global(), "recovery.merge_round",
                              "recovery");
    std::vector<std::future<CompressedGrad>> merges;
    merges.reserve((payloads.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < payloads.size(); i += 2) {
      merges.push_back(pool.submit([&payloads, i] {
        const CompressedGrad pair[2] = {payloads[i], payloads[i + 1]};
        return merge_sparse_sum(pair);
      }));
    }
    std::vector<CompressedGrad> next;
    next.reserve(merges.size() + 1);
    for (auto& fut : merges) next.push_back(fut.get());
    if (payloads.size() % 2 == 1) next.push_back(std::move(payloads.back()));
    payloads = std::move(next);
  }

  if (!payloads.empty()) {
    // Single apply of the merged update: params -= lr * sum(G).
    auto params = state.params().span();
    const auto& merged = payloads.front();
    for (std::size_t i = 0; i < merged.indices.size(); ++i) {
      params[merged.indices[i]] -= lr * merged.values[i];
    }
    state.set_step(state.step() + applied);
  }
  const RecoveryObs robs = RecoveryObs::resolve();
  robs.diffs_replayed_total.add(applied);
  robs.corrupt_diffs_total.add(corrupt);
  robs.merge_rounds_total.add(rounds);
  if (report != nullptr) {
    report->full_iteration = full_iter;
    report->diffs_replayed = applied;
    report->final_iteration = applied_until;
    report->merge_rounds = rounds;
    report->corrupt_diffs_skipped = corrupt;
    report->retries += store.retry_count() - retries_before;
  }
  acct.finish(report);
  return state;
}

}  // namespace lowdiff
