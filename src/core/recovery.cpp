#include "core/recovery.h"

#include <cmath>

#include "common/error.h"
#include "compress/merge.h"
#include "tensor/ops.h"

namespace lowdiff {

RecoveryEngine::RecoveryEngine(ModelSpec spec,
                               std::unique_ptr<Optimizer> optimizer,
                               std::unique_ptr<Compressor> compressor)
    : spec_(std::move(spec)), optimizer_(std::move(optimizer)),
      compressor_(std::move(compressor)) {
  LOWDIFF_ENSURE(optimizer_ != nullptr, "null optimizer");
  LOWDIFF_ENSURE(compressor_ != nullptr, "null compressor");
}

ModelState RecoveryEngine::recover_serial(const CheckpointStore& store,
                                          RecoveryReport* report) const {
  const auto full_iter = store.latest_full();
  LOWDIFF_ENSURE(full_iter.has_value(), "no full checkpoint to recover from");
  ModelState state = store.read_full(*full_iter, spec_);

  const auto diffs = store.diffs_after(*full_iter);
  Tensor dense(spec_.param_count());
  for (std::uint64_t iter : diffs) {
    const CompressedGrad payload = store.read_diff(iter);
    compressor_->decompress(payload, dense.span());
    optimizer_->step(state, dense.cspan());
  }
  if (report != nullptr) {
    report->full_iteration = *full_iter;
    report->diffs_replayed = diffs.size();
    report->final_iteration = diffs.empty() ? *full_iter : diffs.back();
    report->merge_rounds = 0;
  }
  return state;
}

ModelState RecoveryEngine::recover_parallel(const CheckpointStore& store,
                                            ThreadPool& pool,
                                            RecoveryReport* report) const {
  const auto full_iter = store.latest_full();
  LOWDIFF_ENSURE(full_iter.has_value(), "no full checkpoint to recover from");

  const auto diffs = store.diffs_after(*full_iter);

  // Load the full checkpoint concurrently with every differential read +
  // decompress — the I/O-parallel half of the Fig. 7 scheme.
  auto full_future = pool.submit(
      [this, &store, iter = *full_iter] { return store.read_full(iter, spec_); });

  std::vector<std::future<Tensor>> dense_futures;
  dense_futures.reserve(diffs.size());
  for (std::uint64_t iter : diffs) {
    dense_futures.push_back(pool.submit([this, &store, iter] {
      const CompressedGrad payload = store.read_diff(iter);
      Tensor dense(spec_.param_count());
      compressor_->decompress(payload, dense.span());
      return dense;
    }));
  }

  ModelState state = full_future.get();
  // Ordered replay: Adam's moment updates do not commute, so exactness
  // requires applying gradients in iteration order.
  for (auto& fut : dense_futures) {
    const Tensor dense = fut.get();
    optimizer_->step(state, dense.cspan());
  }
  if (report != nullptr) {
    report->full_iteration = *full_iter;
    report->diffs_replayed = diffs.size();
    report->final_iteration = diffs.empty() ? *full_iter : diffs.back();
    report->merge_rounds = 0;
  }
  return state;
}

ModelState RecoveryEngine::recover_parallel_additive(const CheckpointStore& store,
                                                     ThreadPool& pool, float lr,
                                                     RecoveryReport* report) const {
  const auto full_iter = store.latest_full();
  LOWDIFF_ENSURE(full_iter.has_value(), "no full checkpoint to recover from");

  const auto diff_iters = store.diffs_after(*full_iter);
  auto full_future = pool.submit(
      [this, &store, iter = *full_iter] { return store.read_full(iter, spec_); });

  // Round 0: parallel load of every differential payload.
  std::vector<std::future<CompressedGrad>> loads;
  loads.reserve(diff_iters.size());
  for (std::uint64_t iter : diff_iters) {
    loads.push_back(pool.submit([&store, iter] { return store.read_diff(iter); }));
  }
  std::vector<CompressedGrad> payloads;
  payloads.reserve(loads.size());
  for (auto& fut : loads) payloads.push_back(fut.get());

  // Pairwise merge rounds (Fig. 7): gradients of a state-free optimizer
  // compose additively, so summing sparse payloads preserves the result.
  std::uint64_t rounds = 0;
  while (payloads.size() > 1) {
    ++rounds;
    std::vector<std::future<CompressedGrad>> merges;
    merges.reserve((payloads.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < payloads.size(); i += 2) {
      merges.push_back(pool.submit([&payloads, i] {
        const CompressedGrad pair[2] = {payloads[i], payloads[i + 1]};
        return merge_sparse_sum(pair);
      }));
    }
    std::vector<CompressedGrad> next;
    next.reserve(merges.size() + 1);
    for (auto& fut : merges) next.push_back(fut.get());
    if (payloads.size() % 2 == 1) next.push_back(std::move(payloads.back()));
    payloads = std::move(next);
  }

  ModelState state = full_future.get();
  if (!payloads.empty()) {
    // Single apply of the merged update: params -= lr * sum(G).
    auto params = state.params().span();
    const auto& merged = payloads.front();
    for (std::size_t i = 0; i < merged.indices.size(); ++i) {
      params[merged.indices[i]] -= lr * merged.values[i];
    }
    state.set_step(state.step() + diff_iters.size());
  }
  if (report != nullptr) {
    report->full_iteration = *full_iter;
    report->diffs_replayed = diff_iters.size();
    report->final_iteration = diff_iters.empty() ? *full_iter : diff_iters.back();
    report->merge_rounds = rounds;
  }
  return state;
}

}  // namespace lowdiff
