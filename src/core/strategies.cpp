#include "core/strategies.h"

#include <cstring>

#include "common/buffer_pool.h"
#include "common/error.h"
#include "obs/datapath.h"
#include "obs/trace.h"
#include "storage/atomic_commit.h"
#include "storage/serializer.h"
#include "tensor/ops.h"

namespace lowdiff {

namespace {

/// Strategies persist through the atomic commit protocol so a crash
/// mid-write never leaves a visible torn checkpoint.  A non-default
/// `pipeline` opts the writer into the windowed persist path (same bytes,
/// overlapped schedule).
AsyncWriter::Options committed_writer(std::size_t max_pending,
                                      const PipelineSpec& pipeline = {}) {
  AsyncWriter::Options opt;
  opt.max_pending = max_pending;
  opt.committed = true;
  opt.pipeline = pipeline;
  return opt;
}

}  // namespace

StrategyObs StrategyObs::resolve(const std::string& label) {
  auto& reg = obs::Registry::global();
  const std::string p = "ckpt." + label + ".";
  return StrategyObs{reg.counter(p + "full_total"),
                     reg.counter(p + "diff_total"),
                     reg.counter(p + "batched_write_total"),
                     reg.counter(p + "bytes_total"),
                     reg.histogram(p + "stall_us"),
                     reg.histogram(p + "overlap_us")};
}

// ---------------------------------------------------------------------------
// TorchSave
// ---------------------------------------------------------------------------

TorchSaveStrategy::TorchSaveStrategy(std::shared_ptr<CheckpointStore> store,
                                     std::uint64_t interval,
                                     const PipelineSpec& pipeline)
    : store_(std::move(store)), interval_(interval),
      obs_(StrategyObs::resolve("torch_save")) {
  LOWDIFF_ENSURE(store_ != nullptr, "null store");
  LOWDIFF_ENSURE(interval_ >= 1, "interval must be >= 1");
  // torch.save persists synchronously through the store, so its opt-in is
  // the store-level pipeline (sync coalescing across concurrent writers).
  if (pipeline.enabled) store_->enable_pipeline(pipeline);
}

void TorchSaveStrategy::after_step(std::uint64_t iter, const ModelState& state,
                                   std::shared_ptr<const CompressedGrad>) {
  if ((iter + 1) % interval_ != 0) return;
  LOWDIFF_TRACE_SPAN("ckpt.full", "ckpt");
  obs::ScopedTimerUs stall(obs_.stall_us);
  // Synchronous: blocks the training thread; a persistent failure here is
  // fatal by design (torch.save semantics).
  store_->put_full(iter, state).check();
  ++stats_.full_ckpts;
  stats_.bytes_written += state.byte_size();
  obs_.full_total.add(1);
  obs_.bytes_total.add(state.byte_size());
}

StrategyStats TorchSaveStrategy::stats() const {
  StrategyStats out = stats_;
  out.write_retries = store_->retry_count();
  return out;
}

// ---------------------------------------------------------------------------
// CheckFreq
// ---------------------------------------------------------------------------

CheckFreqStrategy::CheckFreqStrategy(std::shared_ptr<CheckpointStore> store,
                                     std::uint64_t interval,
                                     const PipelineSpec& pipeline)
    : store_(std::move(store)), interval_(interval),
      obs_(StrategyObs::resolve("checkfreq")),
      writer_(store_->backend_ptr(),
              committed_writer(/*max_pending=*/1, pipeline)) {
  LOWDIFF_ENSURE(interval_ >= 1, "interval must be >= 1");
}

void CheckFreqStrategy::after_step(std::uint64_t iter, const ModelState& state,
                                   std::shared_ptr<const CompressedGrad>) {
  if ((iter + 1) % interval_ != 0) return;
  // Snapshot on the training thread (the device->host copy), persist on
  // the background writer.  The bounded (1) pending queue realizes the
  // "wait for the previous persist" pipeline rule.
  LOWDIFF_TRACE_SPAN("ckpt.snapshot", "ckpt");
  obs::ScopedTimerUs stall(obs_.stall_us);
  // Pooled single-pass snapshot: the framed record is built directly in a
  // recycled arena buffer, so steady-state snapshots stop allocating.
  auto bytes = serialize_model_state(state, BufferPool::global());
  stats_.bytes_written += bytes.size();
  obs_.bytes_total.add(bytes.size());
  writer_.submit(CheckpointStore::full_key(iter), std::move(bytes));
  ++stats_.full_ckpts;
  obs_.full_total.add(1);
}

void CheckFreqStrategy::flush() {
  writer_.flush();
  // Propagate durability through composite backends (e.g. a tier::Replicator
  // drains its replica writers here) so flush() honours its quorum contract.
  (void)store_->backend().sync();
}

StrategyStats CheckFreqStrategy::stats() const {
  StrategyStats out = stats_;
  out.write_retries = writer_.retries();
  return out;
}

// ---------------------------------------------------------------------------
// Gemini
// ---------------------------------------------------------------------------

GeminiStrategy::GeminiStrategy(std::shared_ptr<StorageBackend> memory_tier,
                               std::shared_ptr<CheckpointStore> durable,
                               std::uint64_t interval,
                               std::uint64_t persist_interval,
                               const PipelineSpec& pipeline)
    : memory_tier_(std::move(memory_tier)),
      tier_store_(memory_tier_),  // throws on a null tier
      durable_(std::move(durable)), interval_(interval),
      persist_interval_(persist_interval),
      obs_(StrategyObs::resolve("gemini")),
      writer_(durable_->backend_ptr(),
              committed_writer(/*max_pending=*/1, pipeline)) {
  LOWDIFF_ENSURE(interval_ >= 1 && persist_interval_ >= 1, "bad intervals");
}

void GeminiStrategy::after_step(std::uint64_t iter, const ModelState& state,
                                std::shared_ptr<const CompressedGrad>) {
  if ((iter + 1) % interval_ != 0) return;
  LOWDIFF_TRACE_SPAN("ckpt.tier_write", "ckpt");
  obs::ScopedTimerUs stall(obs_.stall_us);
  // One pooled record, shared by value: the memory-tier write and the
  // durable persist reference the same bytes, no copy between them.
  const ByteBuffer bytes = serialize_model_state(state, BufferPool::global());
  stats_.bytes_written += bytes.size();
  obs_.bytes_total.add(bytes.size());
  // Ship to the (remote) CPU-memory tier; traffic cost is borne by the
  // tier's throttler if one is configured.  A failed tier write leaves no
  // committed object — recovery simply falls back to an older snapshot.
  (void)tier_store_.put_raw(CheckpointStore::full_key(iter), bytes.cspan());
  ++stats_.full_ckpts;
  obs_.full_total.add(1);
  if ((iter + 1) % (interval_ * persist_interval_) == 0) {
    writer_.submit(CheckpointStore::full_key(iter), bytes);
  }
}

void GeminiStrategy::flush() {
  writer_.flush();
  (void)durable_->backend().sync();
}

StrategyStats GeminiStrategy::stats() const {
  StrategyStats out = stats_;
  out.write_retries = writer_.retries() + tier_store_.retry_count();
  return out;
}

ModelState GeminiStrategy::recover_from_memory(const ModelSpec& spec) const {
  CheckpointStore tier_view(memory_tier_);
  const auto latest = tier_view.latest_full();
  LOWDIFF_ENSURE(latest.has_value(), "no in-memory checkpoint available");
  return tier_view.read_full(*latest, spec);
}

// ---------------------------------------------------------------------------
// NaiveDC
// ---------------------------------------------------------------------------

namespace {

/// Wire payload of a Check-N-Run style differential: compressed parameter
/// diff + *uncompressed* optimizer-moment diffs (Exp. 7's key observation).
struct NaiveDiffRecord {
  std::uint64_t iteration = 0;
  CompressedGrad params_diff;
  std::vector<float> m_diff;
  std::vector<float> v_diff;

  std::vector<std::byte> serialize() const {
    std::vector<std::byte> payload;
    auto append_u64 = [&payload](std::uint64_t v) {
      const auto* p = reinterpret_cast<const std::byte*>(&v);
      payload.insert(payload.end(), p, p + sizeof(v));
    };
    auto append_floats = [&payload, &append_u64](const std::vector<float>& v) {
      append_u64(v.size());
      const auto* p = reinterpret_cast<const std::byte*>(v.data());
      payload.insert(payload.end(), p, p + v.size() * sizeof(float));
    };
    append_u64(iteration);
    const auto grad_bytes = params_diff.serialize();
    append_u64(grad_bytes.size());
    payload.insert(payload.end(), grad_bytes.begin(), grad_bytes.end());
    append_floats(m_diff);
    append_floats(v_diff);
    return frame(RecordType::kNaiveDiff, payload);
  }

  static NaiveDiffRecord deserialize(std::span<const std::byte> bytes) {
    auto [type, payload] = unframe(bytes);
    LOWDIFF_ENSURE(type == RecordType::kNaiveDiff, "not a naive differential");
    std::size_t pos = 0;
    auto read_u64 = [&payload, &pos]() {
      LOWDIFF_ENSURE(pos + 8 <= payload.size(), "truncated naive diff");
      std::uint64_t v;
      std::memcpy(&v, payload.data() + pos, sizeof(v));
      pos += sizeof(v);
      return v;
    };
    auto read_floats = [&payload, &pos, &read_u64]() {
      const auto n = read_u64();
      LOWDIFF_ENSURE(pos + n * sizeof(float) <= payload.size(),
                     "truncated naive diff floats");
      std::vector<float> v(n);
      if (n > 0) std::memcpy(v.data(), payload.data() + pos, n * sizeof(float));
      pos += n * sizeof(float);
      return v;
    };
    NaiveDiffRecord rec;
    rec.iteration = read_u64();
    const auto grad_len = read_u64();
    LOWDIFF_ENSURE(pos + grad_len <= payload.size(), "truncated naive diff grad");
    rec.params_diff = CompressedGrad::deserialize(
        std::span<const std::byte>(payload).subspan(pos, grad_len));
    pos += grad_len;
    rec.m_diff = read_floats();
    rec.v_diff = read_floats();
    LOWDIFF_ENSURE(pos == payload.size(), "trailing bytes in naive diff");
    return rec;
  }
};

}  // namespace

NaiveDcStrategy::NaiveDcStrategy(std::shared_ptr<CheckpointStore> store,
                                 std::unique_ptr<Compressor> compressor,
                                 std::uint64_t diff_interval,
                                 std::uint64_t full_interval,
                                 const PipelineSpec& pipeline)
    : store_(std::move(store)), compressor_(std::move(compressor)),
      diff_interval_(diff_interval), full_interval_(full_interval),
      obs_(StrategyObs::resolve("naivedc")),
      writer_(store_->backend_ptr(),
              committed_writer(/*max_pending=*/1, pipeline)) {
  LOWDIFF_ENSURE(compressor_ != nullptr, "null compressor");
  LOWDIFF_ENSURE(diff_interval_ >= 1 && full_interval_ >= 1, "bad intervals");
}

std::string NaiveDcStrategy::naive_diff_key(std::uint64_t iter) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "ndiff/%012llu",
                static_cast<unsigned long long>(iter));
  return buf;
}

void NaiveDcStrategy::after_step(std::uint64_t iter, const ModelState& state,
                                 std::shared_ptr<const CompressedGrad>) {
  const bool full_due = (iter + 1) % full_interval_ == 0;
  const bool diff_due = (iter + 1) % diff_interval_ == 0;

  if (full_due || prev_ == nullptr) {
    LOWDIFF_TRACE_SPAN("ckpt.full", "ckpt");
    obs::ScopedTimerUs stall(obs_.stall_us);
    auto bytes = serialize_model_state(state, BufferPool::global());
    stats_.bytes_written += bytes.size();
    obs_.bytes_total.add(bytes.size());
    writer_.submit(CheckpointStore::full_key(iter), std::move(bytes));
    ++stats_.full_ckpts;
    obs_.full_total.add(1);
    prev_ = std::make_unique<ModelState>(state.clone());
    return;
  }
  if (!diff_due) return;

  LOWDIFF_TRACE_SPAN("ckpt.diff", "ckpt");
  obs::ScopedTimerUs stall(obs_.stall_us);
  // Differential computation on the training thread — the WAR-coupled
  // critical path (Fig. 3a): subtract states, compress the parameter diff.
  const std::size_t n = state.param_count();
  Tensor params_diff(n);
  ops::sub(state.params().span(), prev_->params().span(), params_diff.span());

  NaiveDiffRecord rec;
  rec.iteration = iter;
  rec.params_diff = compressor_->compress(params_diff.cspan(), iter);
  rec.m_diff.resize(n);
  rec.v_diff.resize(n);
  ops::sub(state.moment1().span(), prev_->moment1().span(),
           std::span<float>(rec.m_diff));
  ops::sub(state.moment2().span(), prev_->moment2().span(),
           std::span<float>(rec.v_diff));

  auto bytes = rec.serialize();
  stats_.bytes_written += bytes.size();
  obs_.bytes_total.add(bytes.size());
  writer_.submit(naive_diff_key(iter), std::move(bytes));
  ++stats_.diff_ckpts;
  obs_.diff_total.add(1);
  prev_ = std::make_unique<ModelState>(state.clone());
}

void NaiveDcStrategy::flush() {
  writer_.flush();
  (void)store_->backend().sync();
}

StrategyStats NaiveDcStrategy::stats() const {
  StrategyStats out = stats_;
  out.write_retries = writer_.retries();
  return out;
}

ModelState NaiveDcStrategy::recover(const CheckpointStore& store,
                                    const ModelSpec& spec,
                                    const Compressor& compressor) {
  const auto full_iter = store.latest_full();
  LOWDIFF_ENSURE(full_iter.has_value(), "no full checkpoint to recover from");
  ModelState state = store.read_full(*full_iter, spec);

  // Collect committed naive diffs after the full checkpoint, in iteration
  // order (an uncommitted diff was torn mid-write — invisible by design).
  std::vector<std::pair<std::uint64_t, std::string>> diffs;
  for (const auto& key : store.backend().list()) {
    unsigned long long iter = 0;
    if (std::sscanf(key.c_str(), "ndiff/%llu", &iter) == 1 && iter > *full_iter &&
        is_committed(store.backend(), key)) {
      diffs.emplace_back(iter, key);
    }
  }
  std::sort(diffs.begin(), diffs.end());

  Tensor dense(spec.param_count());
  Xoshiro256 rng(0x7ead5eed);
  for (const auto& [iter, key] : diffs) {
    auto bytes = committed_read(store.backend(), key, store.retry_policy(), rng);
    LOWDIFF_ENSURE(bytes.ok(),
                   "naive diff " + key + ": " + bytes.status().to_string());
    const NaiveDiffRecord rec = NaiveDiffRecord::deserialize(*bytes);
    compressor.decompress(rec.params_diff, dense.span());
    ops::axpy(1.0f, dense.cspan(), state.params().span());
    ops::axpy(1.0f, std::span<const float>(rec.m_diff), state.moment1().span());
    ops::axpy(1.0f, std::span<const float>(rec.v_diff), state.moment2().span());
    state.set_step(state.step() + 1);
  }
  return state;
}

// ---------------------------------------------------------------------------
// LowDiff
// ---------------------------------------------------------------------------

LowDiffStrategy::LowDiffStrategy(std::shared_ptr<CheckpointStore> store,
                                 Options options)
    : store_(std::move(store)), options_(options),
      obs_(StrategyObs::resolve("lowdiff")),
      queue_(options.queue_capacity),
      writer_(store_->backend_ptr(),
              committed_writer(/*max_pending=*/4, options.pipeline)) {
  LOWDIFF_ENSURE(options_.batch_size >= 1, "batch size must be >= 1");
  LOWDIFF_ENSURE(options_.full_interval >= 1, "full interval must be >= 1");
  auto& reg = obs::Registry::global();
  queue_.set_obs({&reg.gauge("queue.lowdiff.occupancy"),
                  &reg.counter("queue.lowdiff.blocked_us_total")});
  ckpt_thread_ = std::thread([this] { checkpointing_loop(); });
}

LowDiffStrategy::~LowDiffStrategy() {
  queue_.close();
  if (ckpt_thread_.joinable()) ckpt_thread_.join();
  writer_.shutdown();
}

void LowDiffStrategy::after_step(std::uint64_t iter, const ModelState& state,
                                 std::shared_ptr<const CompressedGrad> sync_grad) {
  LOWDIFF_ENSURE(sync_grad != nullptr,
                 "LowDiff requires the synchronized gradient payload");
  LOWDIFF_TRACE_SPAN("ckpt.enqueue", "ckpt");
  obs::ScopedTimerUs stall(obs_.stall_us);
  {
    std::lock_guard lock(mutex_);
    device_resident_bytes_ += sync_grad->byte_size();
    stats_.peak_device_bytes =
        std::max(stats_.peak_device_bytes, device_resident_bytes_);
  }
  // Zero-copy enqueue (Algorithm 1 line 6): only the handle moves.  Blocks
  // iff the bounded queue is full — the back-pressure path of §4.2.
  const bool accepted = queue_.put(std::move(sync_grad));
  LOWDIFF_ENSURE(accepted, "reusing queue closed while training is active");
  {
    std::lock_guard lock(mutex_);
    ++enqueued_;
    ++stats_.diff_ckpts;
    stats_.queue_high_watermark =
        std::max(stats_.queue_high_watermark, queue_.high_watermark());
  }
  obs_.diff_total.add(1);

  if ((iter + 1) % options_.full_interval == 0) {
    // Regular full checkpoint (Algorithm 1 line 15): snapshot on the
    // training thread, persist asynchronously.
    LOWDIFF_TRACE_SPAN("ckpt.full", "ckpt");
    auto bytes = serialize_model_state(state, BufferPool::global(),
                                       options_.datapath_pool);
    {
      std::lock_guard lock(mutex_);
      stats_.bytes_written += bytes.size();
      ++stats_.full_ckpts;
    }
    obs_.full_total.add(1);
    obs_.bytes_total.add(bytes.size());
    std::function<void()> on_done;
    if (options_.prune_on_full) {
      // GC runs on the writer thread only after this full checkpoint is
      // durable, so recovery never loses its floor.  Differentials at or
      // before `iter` that land afterwards are benign: recovery ignores
      // anything at or before the latest full checkpoint.
      on_done = [store = store_, iter] { store->prune_before(iter); };
    }
    writer_.submit(CheckpointStore::full_key(iter), std::move(bytes),
                   std::move(on_done));
  }
}

void LowDiffStrategy::checkpointing_loop() {
  for (;;) {
    auto handle = queue_.get();
    if (!handle.has_value()) break;  // closed and drained

    // Offload: copy the payload into host memory (Fig. 4 step 1), modeled
    // PCIe cost included, then release the device handle.
    LOWDIFF_TRACE_SPAN("ckpt.offload", "ckpt");
    obs::ScopedTimerUs overlap(obs_.overlap_us);
    if (options_.pcie != nullptr) options_.pcie->acquire((*handle)->byte_size());
    CompressedGrad host_copy = **handle;
    {
      std::lock_guard lock(mutex_);
      LOWDIFF_CHECK(device_resident_bytes_ >= (*handle)->byte_size());
      device_resident_bytes_ -= (*handle)->byte_size();
    }
    handle->reset();  // "close the IPC handle, free GPU memory"

    std::vector<CompressedGrad> ready;
    {
      std::lock_guard lock(mutex_);
      batch_buffer_.push_back(std::move(host_copy));
      if (!options_.offload_batching_to_cpu) {
        // Ablation: the batching buffer stays device-resident (Exp. 6b).
        device_resident_bytes_ += batch_buffer_.back().byte_size();
        stats_.peak_device_bytes =
            std::max(stats_.peak_device_bytes, device_resident_bytes_);
      }
      if (batch_buffer_.size() >= options_.batch_size) {
        ready = std::move(batch_buffer_);
        batch_buffer_.clear();
      }
    }
    // Submit before publishing the processed count: flush() reads
    // processed_ == enqueued_ as "every full batch has reached the writer",
    // so the submit must happen-before the bump or flush() can return with
    // the last batch still unsubmitted.
    if (!ready.empty()) write_batch(std::move(ready));
    {
      std::lock_guard lock(mutex_);
      ++processed_;
    }
    drained_cv_.notify_all();
  }
  // Drain: write any full batches left implicit in the buffer on close.
  std::vector<CompressedGrad> tail;
  {
    std::lock_guard lock(mutex_);
    if (batch_buffer_.size() >= options_.batch_size) {
      tail = std::move(batch_buffer_);
      batch_buffer_.clear();
    }
  }
  if (!tail.empty()) write_batch(std::move(tail));
}

void LowDiffStrategy::write_batch(std::vector<CompressedGrad> members) {
  LOWDIFF_TRACE_SPAN("datapath.write_batch", "ckpt");
  BatchedGrad batch;
  batch.first_iteration = members.front().iteration;
  batch.last_iteration = members.back().iteration;
  const std::size_t device_bytes =
      options_.offload_batching_to_cpu
          ? 0
          : [&] {
              std::size_t total = 0;
              for (const auto& m : members) total += m.byte_size();
              return total;
            }();
  batch.members = std::move(members);
  // Pooled single-pass serialization: members serialize_into the framed
  // record in place; the CRC chunks across the datapath pool when present.
  auto bytes =
      serialize_batch(batch, BufferPool::global(), options_.datapath_pool);
  obs_.batched_write_total.add(1);
  obs_.bytes_total.add(bytes.size());
  {
    std::lock_guard lock(mutex_);
    stats_.bytes_written += bytes.size();
    ++stats_.batched_writes;
    if (!options_.offload_batching_to_cpu) {
      LOWDIFF_CHECK(device_resident_bytes_ >= device_bytes);
      device_resident_bytes_ -= device_bytes;
    }
  }
  writer_.submit(
      CheckpointStore::batch_key(batch.first_iteration, batch.last_iteration),
      std::move(bytes));
}

void LowDiffStrategy::flush() {
  // Drain the queue: wait until the checkpointing thread has *processed*
  // everything enqueued so far (not merely dequeued it).
  std::vector<CompressedGrad> tail;
  {
    std::unique_lock lock(mutex_);
    drained_cv_.wait(lock, [this] { return processed_ == enqueued_; });
    // Persist the partial batch so flush() leaves nothing volatile.
    if (!batch_buffer_.empty()) {
      tail = std::move(batch_buffer_);
      batch_buffer_.clear();
    }
  }
  if (!tail.empty()) write_batch(std::move(tail));
  writer_.flush();
  (void)store_->backend().sync();
  obs::publish_datapath_metrics();
}

StrategyStats LowDiffStrategy::stats() const {
  std::lock_guard lock(mutex_);
  StrategyStats out = stats_;
  out.write_retries = writer_.retries();
  return out;
}

// ---------------------------------------------------------------------------
// LowDiff+
// ---------------------------------------------------------------------------

LowDiffPlusStrategy::LowDiffPlusStrategy(std::shared_ptr<CheckpointStore> store,
                                         const ModelState& init,
                                         std::unique_ptr<Optimizer> optimizer,
                                         Options options)
    : store_(std::move(store)), optimizer_(std::move(optimizer)),
      options_(options), obs_(StrategyObs::resolve("lowdiffplus")),
      queue_(options.queue_capacity),
      writer_(store_->backend_ptr(),
              committed_writer(/*max_pending=*/2, options.pipeline)),
      replica_(init.clone()) {
  LOWDIFF_ENSURE(optimizer_ != nullptr, "null optimizer");
  LOWDIFF_ENSURE(options_.persist_interval >= 1, "persist interval must be >= 1");
  auto& reg = obs::Registry::global();
  queue_.set_obs({&reg.gauge("queue.lowdiffplus.occupancy"),
                  &reg.counter("queue.lowdiffplus.blocked_us_total")});
  update_thread_ = std::thread([this] { update_loop(); });
}

LowDiffPlusStrategy::~LowDiffPlusStrategy() {
  queue_.close();
  if (update_thread_.joinable()) update_thread_.join();
  writer_.shutdown();
}

void LowDiffPlusStrategy::on_layer_gradient(GradChunk chunk) {
  obs::ScopedTimerUs stall(obs_.stall_us);
  {
    std::lock_guard lock(replica_mutex_);
    ++chunks_enqueued_;
  }
  const bool accepted =
      queue_.put(std::make_shared<const GradChunk>(std::move(chunk)));
  LOWDIFF_ENSURE(accepted, "LowDiff+ queue closed while training is active");
  obs_.diff_total.add(1);
}

void LowDiffPlusStrategy::after_step(std::uint64_t iter, const ModelState&,
                                     std::shared_ptr<const CompressedGrad> grad) {
  LOWDIFF_ENSURE(grad != nullptr && grad->scheme == CompressionScheme::kDense,
                 "LowDiff+ consumes dense gradients");
  GradChunk chunk;
  chunk.iteration = iter;
  chunk.offset = 0;
  chunk.values = grad->values;
  chunk.last_of_iteration = true;
  on_layer_gradient(std::move(chunk));
}

void LowDiffPlusStrategy::update_loop() {
  for (;;) {
    auto handle = queue_.get();
    if (!handle.has_value()) break;
    const GradChunk& chunk = **handle;

    // Snapshot thread: host copy of the layer gradient (Algorithm 2 line
    // 19) with its modeled PCIe cost.
    LOWDIFF_TRACE_SPAN("ckpt.apply", "ckpt");
    obs::ScopedTimerUs overlap(obs_.overlap_us);
    if (options_.pcie != nullptr) {
      options_.pcie->acquire(chunk.values.size() * sizeof(float));
    }

    std::unique_lock lock(replica_mutex_);
    // CPU update (Algorithm 2 line 12): apply the slice to the replica.
    optimizer_->step_slice(replica_, chunk.offset,
                           std::span<const float>(chunk.values));
    if (chunk.last_of_iteration) {
      optimizer_->finish_partial_step(replica_);
      replica_iter_done_ = chunk.iteration + 1;
      ++stats_.diff_ckpts;
      const bool persist_due =
          (chunk.iteration + 1) % options_.persist_interval == 0;
      ByteBuffer bytes;
      if (persist_due) {
        bytes = serialize_model_state(replica_, BufferPool::global());
        stats_.bytes_written += bytes.size();
        ++stats_.full_ckpts;
        obs_.full_total.add(1);
        obs_.bytes_total.add(bytes.size());
      }
      lock.unlock();
      // Submit before publishing the processed count: flush() reads
      // chunks_processed_ == chunks_enqueued_ as "every due persist has
      // reached the writer", so the submit must happen-before the bump or
      // flush() can return with the final full checkpoint still unsubmitted.
      if (persist_due) {
        writer_.submit(CheckpointStore::full_key(chunk.iteration),
                       std::move(bytes));
      }
      lock.lock();
      ++chunks_processed_;
      lock.unlock();
      replica_cv_.notify_all();
      continue;
    }
    ++chunks_processed_;
    lock.unlock();
    replica_cv_.notify_all();
  }
}

ModelState LowDiffPlusStrategy::replica_snapshot(std::uint64_t iter) {
  std::unique_lock lock(replica_mutex_);
  replica_cv_.wait(lock, [this, iter] { return replica_iter_done_ >= iter + 1; });
  return replica_.clone();
}

void LowDiffPlusStrategy::flush() {
  {
    std::unique_lock lock(replica_mutex_);
    replica_cv_.wait(lock,
                     [this] { return chunks_processed_ == chunks_enqueued_; });
  }
  writer_.flush();
  (void)store_->backend().sync();
}

StrategyStats LowDiffPlusStrategy::stats() const {
  std::lock_guard lock(replica_mutex_);
  StrategyStats out = stats_;
  out.write_retries = writer_.retries();
  return out;
}

}  // namespace lowdiff
