#include "core/trainer.h"

#include <thread>

#include "common/error.h"
#include "common/stopwatch.h"
#include "compress/dense.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "compress/quant8.h"
#include "compress/randomk.h"
#include "compress/topk.h"
#include "tensor/ops.h"

namespace lowdiff {

Trainer::Trainer(MlpConfig mlp_config, TrainerConfig config)
    : net_(std::move(mlp_config)), config_(config),
      dataset_(net_.spec().layers.front().shape[1],  // fc0.weight is {out, in}
               net_.spec().layers.back().shape[0],   // last bias is {classes}
               config.seed) {
  switch (config_.optimizer) {
    case OptimizerKind::kAdam:
      optimizer_ = std::make_unique<Adam>(config_.adam);
      break;
    case OptimizerKind::kSgd:
      optimizer_ = std::make_unique<Sgd>(config_.sgd);
      break;
  }
  LOWDIFF_ENSURE(optimizer_ != nullptr, "unknown optimizer kind");
  LOWDIFF_ENSURE(config_.world >= 1, "world must be >= 1");
  if (config_.rho <= 0.0) config_.compression = GradCompression::kDense;
  if (config_.datapath_threads > 0) {
    datapath_pool_ = std::make_unique<ThreadPool>(config_.datapath_threads);
  }
  switch (config_.compression) {
    case GradCompression::kTopK:
      compressor_ = std::make_unique<TopKCompressor>(config_.rho);
      break;
    case GradCompression::kRandomK:
      compressor_ = std::make_unique<RandomKCompressor>(config_.rho, config_.seed);
      break;
    case GradCompression::kQuant8:
      compressor_ = std::make_unique<Quant8Compressor>();
      break;
    case GradCompression::kDense:
      compressor_ = std::make_unique<DenseCompressor>();
      config_.rho = 0.0;
      break;
  }
  // Clones (error-feedback per-rank compressors) inherit the pool.
  compressor_->set_thread_pool(datapath_pool_.get());
  states_.reserve(config_.world);
  for (std::size_t r = 0; r < config_.world; ++r) {
    ModelState state(net_.spec());
    state.init_random(config_.seed);  // identical across ranks
    states_.push_back(std::move(state));
    const bool sparse = config_.compression == GradCompression::kTopK ||
                        config_.compression == GradCompression::kRandomK;
    if (config_.error_feedback && sparse) {
      feedback_.push_back(std::make_unique<ErrorFeedback>(
          compressor_->clone(), net_.spec().param_count()));
    } else {
      feedback_.push_back(nullptr);
    }
  }
}

const ModelState& Trainer::state(std::size_t rank) const {
  LOWDIFF_ENSURE(rank < states_.size(), "rank out of range");
  return states_[rank];
}

void Trainer::set_state(const ModelState& state) {
  for (auto& s : states_) s = state.clone();
  for (auto& fb : feedback_) {
    if (fb != nullptr) fb->reset();
  }
}

double Trainer::eval_loss(std::uint64_t batch_index) const {
  std::vector<float> inputs;
  std::vector<std::uint32_t> labels;
  dataset_.batch(batch_index, 256, inputs, labels);
  return net_.forward(states_[0], inputs, labels);
}

double Trainer::eval_accuracy(std::uint64_t batch_index) const {
  std::vector<float> inputs;
  std::vector<std::uint32_t> labels;
  dataset_.batch(batch_index, 256, inputs, labels);
  return net_.accuracy(states_[0], inputs, labels);
}

TrainResult Trainer::run(std::uint64_t start_iter, std::uint64_t num_iters,
                         CheckpointStrategy* strategy,
                         LowDiffPlusStrategy* layerwise) {
  LOWDIFF_ENSURE(layerwise == nullptr || config_.rho == 0.0,
                 "layer-wise streaming requires the dense (rho = 0) regime");
  TrainResult result;
  result.losses.assign(num_iters, 0.0);
  if (num_iters == 0) return result;

  CommGroup comm(config_.world);
  const auto offsets = net_.spec().layer_offsets();
  Stopwatch wall;
  double stall_total = 0.0;

  // Rank-0 view of the iteration pipeline (resolved once; the worker loop
  // only touches the sharded handles).
  auto& reg = obs::Registry::global();
  obs::Counter& iters_total = reg.counter("trainer.iterations_total");
  obs::Histogram& compute_us = reg.histogram("trainer.compute_us");
  obs::Histogram& sync_us = reg.histogram("trainer.sync_us");
  obs::Histogram& stall_us = reg.histogram("trainer.stall_us");
  // Degraded-durability sampling: the tier layer owns this gauge (string
  // duplicated here — core cannot depend on tier); it reads 0 when no
  // replicator is in the stack, so pure-training runs are unaffected.
  obs::Gauge& durability_lag =
      reg.gauge("tier.replication.durability_lag_records");
  obs::Counter& degraded_total = reg.counter("trainer.degraded_iterations_total");
  std::uint64_t degraded_iters = 0;

  auto worker = [&](std::size_t rank) {
    if (obs::Tracer::global().enabled()) {
      obs::Tracer::global().set_thread_name("rank" + std::to_string(rank));
    }
    ModelState& state = states_[rank];
    Tensor grad(net_.spec().param_count());
    Tensor dense(net_.spec().param_count());
    std::vector<float> inputs;
    std::vector<std::uint32_t> labels;
    double stall = 0.0;

    for (std::uint64_t i = 0; i < num_iters; ++i) {
      const std::uint64_t iter = start_iter + i;

      double loss = 0.0;
      {
        LOWDIFF_TRACE_SPAN("train.compute", "train");
        Stopwatch sw;
        // Data-parallel shard: every (iteration, rank) pair gets its own
        // deterministic batch, so a recovered run replays the same stream.
        dataset_.batch(iter * config_.world + rank, config_.batch_size, inputs,
                       labels);
        grad.zero();
        loss = net_.loss_and_gradient(state, inputs, labels, grad);
        if (rank == 0) compute_us.observe(sw.elapsed_sec() * 1e6);
      }
      if (rank == 0) result.losses[i] = loss;

      obs::TraceSpan sync_span(obs::Tracer::global(), "train.sync", "train");
      Stopwatch sync_sw;
      std::shared_ptr<const CompressedGrad> payload;
      if (config_.compression == GradCompression::kTopK ||
          config_.compression == GradCompression::kRandomK) {
        // Compress (optionally error-corrected), synchronize, average.
        CompressedGrad local =
            feedback_[rank] != nullptr
                ? feedback_[rank]->compress(grad.cspan(), iter)
                : compressor_->compress(grad.cspan(), iter);
        CompressedGrad merged = comm.allreduce_sparse(rank, local);
        const float inv_world = 1.0f / static_cast<float>(config_.world);
        for (auto& v : merged.values) v *= inv_world;
        merged.iteration = iter;
        payload = std::make_shared<const CompressedGrad>(std::move(merged));
        compressor_->decompress(*payload, dense.span());
        optimizer_->step(state, dense.cspan());
      } else if (config_.compression == GradCompression::kQuant8) {
        // Quantized regime: synchronize densely, quantize the synchronized
        // gradient (bit-identical on every rank), and train on the
        // *dequantized* values so recovery replays the exact update.
        comm.allreduce_sum(rank, grad.span());
        ops::scale(grad.span(), 1.0f / static_cast<float>(config_.world));
        payload = std::make_shared<const CompressedGrad>(
            compressor_->compress(grad.cspan(), iter));
        compressor_->decompress(*payload, dense.span());
        optimizer_->step(state, dense.cspan());
      } else {
        comm.allreduce_sum(rank, grad.span());
        ops::scale(grad.span(), 1.0f / static_cast<float>(config_.world));
        optimizer_->step(state, grad.cspan());
        if (rank == 0 && (strategy != nullptr || layerwise != nullptr)) {
          DenseCompressor dense_comp;
          auto wrapped = dense_comp.compress(grad.cspan(), iter);
          payload = std::make_shared<const CompressedGrad>(std::move(wrapped));
        }
      }
      sync_span.finish();
      if (rank == 0) sync_us.observe(sync_sw.elapsed_sec() * 1e6);

      if (rank == 0) {
        Stopwatch sw;
        // Span nested strictly inside the stopwatch window, so summing
        // "ckpt.stall" spans from the trace reconstructs stall_seconds.
        obs::TraceSpan stall_span(obs::Tracer::global(), "ckpt.stall", "ckpt");
        if (layerwise != nullptr) {
          // Stream per-layer chunks in reverse layer order, mirroring the
          // backward pass (Fig. 5).  The first layer emitted is the last
          // produced chunk of the iteration... reversed: layer L-1 first,
          // layer 0 last, which carries last_of_iteration.
          LOWDIFF_CHECK(payload != nullptr);
          const auto& values = payload->values;
          for (std::size_t l = net_.spec().layers.size(); l-- > 0;) {
            LowDiffPlusStrategy::GradChunk chunk;
            chunk.iteration = iter;
            chunk.offset = offsets[l];
            chunk.values.assign(values.begin() + static_cast<std::ptrdiff_t>(offsets[l]),
                                values.begin() + static_cast<std::ptrdiff_t>(offsets[l + 1]));
            chunk.last_of_iteration = (l == 0);
            layerwise->on_layer_gradient(std::move(chunk));
          }
        } else if (strategy != nullptr) {
          strategy->after_step(iter, state, payload);
        }
        stall_span.finish();
        const double stalled = sw.elapsed_sec();
        stall += stalled;
        stall_us.observe(stalled * 1e6);
        iters_total.add(1);
        if ((strategy != nullptr || layerwise != nullptr) &&
            durability_lag.value() > 0) {
          ++degraded_iters;
          degraded_total.add(1);
        }
      }
      comm.barrier();  // keep ranks in lockstep iteration-to-iteration
    }
    if (rank == 0) stall_total = stall;
  };

  std::vector<std::thread> threads;
  threads.reserve(config_.world);
  for (std::size_t r = 0; r < config_.world; ++r) {
    threads.emplace_back(worker, r);
  }
  for (auto& t : threads) t.join();

  result.wall_seconds = wall.elapsed_sec();
  result.stall_seconds = stall_total;
  result.degraded_iterations = degraded_iters;
  return result;
}

}  // namespace lowdiff
