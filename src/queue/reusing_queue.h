#pragma once

/// \file reusing_queue.h
/// The compressed-gradient Reusing Queue (paper §4.1, Fig. 2).
///
/// The paper implements this with torch.multiprocessing.Queue over CUDA IPC:
/// the queue carries GPU memory *handles*, not payload bytes, giving FIFO
/// ordering (Requirement 1) and zero-copy transmission (Requirement 2).
/// In-process, the exact analogue is a bounded blocking FIFO moving
/// std::shared_ptr<const T> handles from the training thread to the
/// checkpointing thread: the payload is never copied, ownership is shared
/// until the checkpointing side drops the handle (= "closing the IPC
/// handle and freeing the GPU memory", Fig. 4 step 1).
///
/// Bounded capacity models finite GPU memory available for in-flight
/// gradients; a full queue back-pressures the producer, which is exactly
/// the training stall LowDiff's batched-write path must avoid.

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>

#include "common/error.h"
#include "obs/metrics.h"

namespace lowdiff {

/// Optional observability hooks for a ReusingQueue.  Null members cost a
/// single branch on the hot path; attached members are updated with the
/// queue's own lock already held (the metrics themselves are lock-free).
struct QueueObs {
  obs::Gauge* occupancy = nullptr;     ///< +1 per enqueue, -1 per dequeue
  obs::Counter* blocked_us = nullptr;  ///< total producer time blocked on full
};

template <typename T>
class ReusingQueue {
 public:
  using Handle = std::shared_ptr<const T>;

  /// `capacity` = maximum number of in-flight handles (0 means unbounded).
  explicit ReusingQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  ReusingQueue(const ReusingQueue&) = delete;
  ReusingQueue& operator=(const ReusingQueue&) = delete;

  /// Attaches metric hooks (pass {} to detach).  Not thread-safe against
  /// concurrent put/get — attach before the queue goes live.
  void set_obs(QueueObs obs) {
    std::lock_guard lock(mutex_);
    obs_ = obs;
  }

  /// Blocks while the queue is full.  Returns false iff the queue was
  /// closed (the handle is then dropped — the producer is shutting down).
  bool put(Handle handle) {
    LOWDIFF_ENSURE(handle != nullptr, "null handle enqueued");
    std::unique_lock lock(mutex_);
    const auto free = [this] {
      return closed_ || capacity_ == 0 || items_.size() < capacity_;
    };
    if (!free()) {
      if (obs_.blocked_us != nullptr) {
        const auto t0 = std::chrono::steady_clock::now();
        not_full_.wait(lock, free);
        obs_.blocked_us->add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
      } else {
        not_full_.wait(lock, free);
      }
    }
    if (closed_) return false;
    items_.push_back(std::move(handle));
    ++total_enqueued_;
    high_watermark_ = std::max(high_watermark_, items_.size());
    if (obs_.occupancy != nullptr) obs_.occupancy->add(1.0);
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking put; returns false if the queue is full or closed.
  bool try_put(Handle handle) {
    LOWDIFF_ENSURE(handle != nullptr, "null handle enqueued");
    {
      std::lock_guard lock(mutex_);
      if (closed_ || (capacity_ != 0 && items_.size() >= capacity_)) return false;
      items_.push_back(std::move(handle));
      ++total_enqueued_;
      high_watermark_ = std::max(high_watermark_, items_.size());
      if (obs_.occupancy != nullptr) obs_.occupancy->add(1.0);
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed *and*
  /// drained.  std::nullopt means: closed, nothing left — consumer exits.
  std::optional<Handle> get() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    Handle h = std::move(items_.front());
    items_.pop_front();
    if (obs_.occupancy != nullptr) obs_.occupancy->add(-1.0);
    lock.unlock();
    not_full_.notify_one();
    return h;
  }

  /// Non-blocking get.
  std::optional<Handle> try_get() {
    std::unique_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    Handle h = std::move(items_.front());
    items_.pop_front();
    if (obs_.occupancy != nullptr) obs_.occupancy->add(-1.0);
    lock.unlock();
    not_full_.notify_one();
    return h;
  }

  /// After close(), put() fails and get() drains the remaining items then
  /// returns std::nullopt.  Idempotent.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  /// Peak number of simultaneously queued handles — the in-flight gradient
  /// memory metric of Exp. 6(b).
  std::size_t high_watermark() const {
    std::lock_guard lock(mutex_);
    return high_watermark_;
  }

  std::uint64_t total_enqueued() const {
    std::lock_guard lock(mutex_);
    return total_enqueued_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Handle> items_;
  bool closed_ = false;
  std::size_t high_watermark_ = 0;
  std::uint64_t total_enqueued_ = 0;
  QueueObs obs_;
};

}  // namespace lowdiff
