#include "tier/repair.h"

#include <algorithm>
#include <set>

#include "common/crc32.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/atomic_commit.h"

namespace lowdiff::tier {

namespace {

struct RepairObs {
  obs::Counter& passes_total;
  obs::Counter& records_repaired_total;
  obs::Counter& copies_total;
  obs::Counter& bytes_total;
  obs::Counter& budget_exhausted_total;
  obs::Counter& unrepairable_total;
  obs::Gauge& under_replicated;

  static RepairObs resolve() {
    auto& reg = obs::Registry::global();
    return RepairObs{reg.counter("repair.passes_total"),
                     reg.counter("repair.records_repaired_total"),
                     reg.counter("repair.copies_total"),
                     reg.counter("repair.bytes_total"),
                     reg.counter("repair.budget_exhausted_total"),
                     reg.counter("repair.unrepairable_total"),
                     reg.gauge("repair.under_replicated")};
  }
};

}  // namespace

QuorumRepairEngine::QuorumRepairEngine(std::shared_ptr<TierTopology> topology,
                                       Replicator& replicator, Options options)
    : topology_(std::move(topology)),
      replicator_(replicator),
      options_(options) {
  LOWDIFF_ENSURE(topology_ != nullptr, "null topology");
  LOWDIFF_ENSURE(options_.budget_bytes_per_pass > 0,
                 "repair budget must be positive");
}

QuorumRepairEngine::~QuorumRepairEngine() { stop(); }

QuorumRepairEngine::Pass QuorumRepairEngine::run_once() {
  LOWDIFF_TRACE_SPAN("tier.repair", "tier");
  static thread_local RepairObs robs = RepairObs::resolve();
  robs.passes_total.add();
  Pass pass;

  // Queued replica jobs may already carry the missing copies — let them
  // land before judging anything under-replicated.
  replicator_.flush();

  const PlacementPolicy& policy = replicator_.policy();
  const std::size_t quorum = policy.quorum();
  const auto health = replicator_.health();
  auto admitted = [&](const TierTarget& t) {
    return health == nullptr || health->readable(t.name);
  };

  // Destination preference: policy tier-kind order, then ring distance
  // from the replicator's origin within a kind — the same shape plan()
  // produces, so repaired records land where a fresh write would have.
  std::size_t ring = 0;
  for (std::size_t i = 0; i < topology_->size(); ++i) {
    const std::size_t d = topology_->target(i).failure_domain;
    if (d != TierTopology::kSharedDomain) ring = std::max(ring, d + 1);
  }
  if (ring == 0) ring = 1;
  const std::size_t origin = replicator_.options().origin_server;
  auto ring_distance = [&](const TierTarget& t) {
    if (t.failure_domain == TierTopology::kSharedDomain) return ring;
    return (t.failure_domain + ring - (origin % ring)) % ring;
  };
  std::vector<TierTarget*> ordered;
  for (TierKind kind : policy.spec().preference) {
    std::vector<TierTarget*> of_kind;
    for (std::size_t i = 0; i < topology_->size(); ++i) {
      if (topology_->target(i).kind == kind) {
        of_kind.push_back(&topology_->target(i));
      }
    }
    std::stable_sort(of_kind.begin(), of_kind.end(),
                     [&](const TierTarget* a, const TierTarget* b) {
                       return ring_distance(*a) < ring_distance(*b);
                     });
    ordered.insert(ordered.end(), of_kind.begin(), of_kind.end());
  }

  // Lexical scan order + monotone repair = the budget-exhausted cursor
  // effectively resumes next pass without explicit state.
  std::set<std::string> keys;
  for (std::size_t i = 0; i < topology_->size(); ++i) {
    auto& t = topology_->target(i);
    if (!topology_->alive(t)) continue;
    for (auto& key : t.backend->list()) {
      if (!is_commit_marker(key)) keys.insert(std::move(key));
    }
  }

  for (const std::string& key : keys) {
    ++pass.scanned;
    const std::string marker_key = commit_marker_key(key);

    std::vector<TierTarget*> holders;
    std::set<std::size_t> domains;
    for (std::size_t i = 0; i < topology_->size(); ++i) {
      auto& t = topology_->target(i);
      if (!topology_->alive(t)) continue;
      if (!t.backend->exists(marker_key)) continue;
      holders.push_back(&t);
      domains.insert(t.failure_domain);
    }
    if (holders.size() >= quorum) {
      replicator_.clear_lag(key);
      continue;
    }
    if (holders.empty()) {
      // No surviving committed copy at all.  Either the record was never
      // committed (a torn write's orphaned data object — invisible under
      // the commit protocol, nothing to restore) or every committed copy
      // sits in a currently-dead domain (nothing to copy *from*; the bytes
      // come back with restore_domain()).  Neither is repair work.
      ++pass.orphaned;
      continue;
    }
    ++pass.under_replicated;
    if (pass.budget_exhausted) {
      ++pass.remaining;  // still counted; repaired next pass
      continue;
    }

    // Source: a surviving, breaker-readable holder whose data validates
    // against its own marker — repair must never propagate a corrupt copy.
    std::vector<std::byte> data;
    std::vector<std::byte> marker_bytes;
    bool have_source = false;
    for (TierTarget* t : holders) {
      if (!admitted(*t)) continue;
      auto m = t->backend->read(marker_key);
      if (!m.ok()) continue;
      auto record = parse_commit_marker(*m);
      if (!record.ok()) continue;
      auto d = t->backend->read(key);
      if (!d.ok() || d->size() != record->data_len ||
          crc32c(d->data(), d->size()) != record->data_crc) {
        continue;
      }
      data = std::move(*d);
      marker_bytes = std::move(*m);
      have_source = true;
      break;
    }
    if (!have_source) {
      ++pass.unrepairable;
      ++pass.remaining;
      robs.unrepairable_total.add();
      continue;
    }

    std::size_t need = quorum - holders.size();
    const std::uint64_t cost = data.size() + marker_bytes.size();
    for (TierTarget* t : ordered) {
      if (need == 0) break;
      if (!topology_->alive(*t) || !admitted(*t)) continue;
      if (t->backend->exists(marker_key)) continue;
      if (policy.spec().distinct_domains && domains.contains(t->failure_domain)) {
        continue;
      }
      if (pass.bytes > 0 && pass.bytes + cost > options_.budget_bytes_per_pass) {
        pass.budget_exhausted = true;
        robs.budget_exhausted_total.add();
        break;
      }
      // Commit order on the destination: data, barrier, marker — the copy
      // is invisible until whole.  A failed step just tries the next
      // candidate; the health monitor hears about it either way.
      auto fail = [&](const Status& st) {
        if (health != nullptr) health->record_failure(t->name, st.code());
        LOWDIFF_LOG_ERROR("repair: copy of ", key, " to ", t->name,
                          " failed: ", st.to_string());
      };
      if (Status st = t->backend->write(key, data); !st.ok()) {
        fail(st);
        continue;
      }
      if (Status st = t->backend->sync(); !st.ok()) {
        fail(st);
        continue;
      }
      if (Status st = t->backend->write(marker_key, marker_bytes); !st.ok()) {
        fail(st);
        continue;
      }
      if (health != nullptr) health->record_success(t->name);
      pass.bytes += cost;
      ++pass.copies;
      robs.copies_total.add();
      robs.bytes_total.add(cost);
      domains.insert(t->failure_domain);
      --need;
    }
    if (need == 0) {
      ++pass.repaired;
      robs.records_repaired_total.add();
      replicator_.clear_lag(key);
    } else {
      ++pass.remaining;
    }
  }

  replicator_.refresh_lag();
  robs.under_replicated.set(static_cast<std::int64_t>(pass.remaining));
  return pass;
}

bool QuorumRepairEngine::repair_until_quorum(std::size_t max_passes) {
  for (std::size_t i = 0; i < max_passes; ++i) {
    const Pass pass = run_once();
    if (pass.remaining == 0) return true;
    // A pass that neither copied nor ran out of budget cannot make
    // progress next time either (no source / no destination).
    if (pass.copies == 0 && !pass.budget_exhausted) return false;
  }
  return false;
}

void QuorumRepairEngine::start() {
  std::lock_guard lock(mutex_);
  if (running_) return;
  running_ = true;
  sweeper_ = std::thread([this] { loop(); });
}

void QuorumRepairEngine::stop() {
  {
    std::lock_guard lock(mutex_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  if (sweeper_.joinable()) sweeper_.join();
}

void QuorumRepairEngine::loop() {
  std::unique_lock lock(mutex_);
  while (running_) {
    lock.unlock();
    run_once();
    lock.lock();
    cv_.wait_for(lock, options_.interval, [this] { return !running_; });
  }
}

}  // namespace lowdiff::tier
