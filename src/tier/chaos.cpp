#include "tier/chaos.h"

#include <optional>

#include "compress/topk.h"
#include "core/checkpoint_store.h"
#include "obs/metrics.h"
#include "optim/adam.h"
#include "sim/cluster.h"
#include "tensor/ops.h"
#include "tier/repair.h"
#include "tier/tier_recovery.h"

namespace lowdiff::tier {

ChaosRunner::ChaosRunner(ChaosOptions options) : options_(std::move(options)) {
  LOWDIFF_ENSURE(options_.servers >= 2, "chaos needs at least 2 servers");
  LOWDIFF_ENSURE(options_.iters > 0, "chaos needs iterations");
  LOWDIFF_ENSURE(options_.full_interval > 0, "full_interval must be positive");
}

ChaosReport ChaosRunner::run(std::uint64_t seed) const {
  const ChaosOptions& o = options_;
  ChaosReport report;

  auto& reg = obs::Registry::global();
  const std::uint64_t sc0 =
      reg.counter("tier.health.short_circuit_total").value();
  const std::uint64_t tr0 =
      reg.counter("tier.health.transitions_total").value();

  // --- build the full stack, everything seeded ----------------------------
  sim::ClusterSpec cluster;
  cluster.num_gpus = o.servers * cluster.gpus_per_server;
  TierSimOptions topts;
  topts.time_scale = o.time_scale;
  topts.faults.seed = SplitMix64(seed ^ 0xc4a05u).next();
  auto topo = TierTopology::for_cluster(cluster, topts);

  HealthOptions hopts;
  hopts.open_cooldown_sec = o.cooldown_sec;
  auto health = std::make_shared<TierHealthMonitor>(hopts);

  // Fast retries: the campaign injects certain-failure windows, so waiting
  // out the default backoff would just slow every seed down.
  RetryPolicy quick;
  quick.max_attempts = 3;
  quick.base_delay_sec = 1e-4;
  quick.max_delay_sec = 1e-3;
  quick.seed = SplitMix64(seed ^ 0x7e77u).next();

  ReplicatorOptions ropts;
  ropts.origin_server = 0;
  ropts.health = health;
  ropts.degrade = o.degrade;
  ropts.replica_retry = quick;
  ropts.deadline.write_deadline_sec = o.deadline_sec;
  ropts.deadline.read_deadline_sec = o.deadline_sec;
  ropts.deadline.sync_deadline_sec = o.deadline_sec;
  auto replicas = std::make_shared<Replicator>(
      topo, PlacementPolicy::parse(o.policy), ropts);

  QuorumRepairEngine::Options qopts;
  qopts.budget_bytes_per_pass = o.repair_budget_bytes;
  QuorumRepairEngine repair(topo, *replicas, qopts);

  CheckpointStore store(replicas, quick);

  ModelSpec spec;
  spec.name = "chaos";
  spec.layers = {{"w", {o.param_count}}};
  Adam adam;
  TopKCompressor comp(o.compress_ratio);

  ModelState state(spec);
  state.init_random(seed);
  std::vector<ModelState> snapshots;
  snapshots.reserve(o.iters);

  Xoshiro256 grad_rng(SplitMix64(seed * 31 + 1).next());
  Xoshiro256 sched_rng(SplitMix64(seed ^ 0x5c4edu).next());
  Tensor grad(spec.param_count());
  Tensor dense(spec.param_count());

  // --- schedule state ------------------------------------------------------
  std::optional<std::size_t> dead_server;  // at most one concurrent loss
  std::uint64_t restore_at = 0;
  struct ActiveSickness {
    std::string target;
    std::uint64_t clear_at = 0;
  };
  std::optional<ActiveSickness> sick;  // at most one concurrent flap/slow
  bool need_full = false;  // gap-free chain discipline (see header)

  auto note = [&](ChaosEvent::Kind kind, std::uint64_t iter, std::size_t server,
                  std::string target) {
    ChaosEvent ev;
    ev.kind = kind;
    ev.iteration = iter;
    ev.server = server;
    ev.target = std::move(target);
    report.events.push_back(std::move(ev));
  };
  auto clear_sickness = [&](std::uint64_t iter) {
    if (!sick) return;
    if (TierTarget* t = topo->find(sick->target); t != nullptr && t->faults) {
      t->faults->set_spec(FaultSpec{});
    }
    health->reset(sick->target);
    note(ChaosEvent::Kind::kClear, iter, 0, sick->target);
    sick.reset();
  };

  // --- campaign loop -------------------------------------------------------
  for (std::uint64_t t = 0; t < o.iters; ++t) {
    // Pending clears first, so a sickness/death window always ends.
    if (sick && sick->clear_at <= t) clear_sickness(t);
    if (dead_server && restore_at <= t) {
      topo->restore_domain(*dead_server);
      for (std::size_t i = 0; i < topo->size(); ++i) {
        auto& tgt = topo->target(i);
        if (tgt.failure_domain == *dead_server) health->reset(tgt.name);
      }
      note(ChaosEvent::Kind::kRestore, t, *dead_server, "");
      dead_server.reset();
    }

    // New events (never before iteration 1: the first full must anchor).
    if (t > 0 && !dead_server &&
        sched_rng.uniform_double() < o.kill_rate) {
      const auto victim =
          static_cast<std::size_t>(sched_rng.uniform_below(o.servers));
      // The background sweeper would have been running between events:
      // settle any best-effort durability debt *before* the loss, so no
      // record faces a domain kill holding a single copy.  (Quorum >= 2 on
      // distinct domains then guarantees a survivor for every record.)
      clear_sickness(t);
      repair.repair_until_quorum(o.repair_passes_per_event);
      topo->fail_domain(victim);
      dead_server = victim;
      restore_at = t + 2 + sched_rng.uniform_below(4);
      ++report.kills;
      note(ChaosEvent::Kind::kKill, t, victim, "");

      // The budgeted repair window: quorum must come back within
      // repair_passes_per_event budgeted passes or the campaign fails.
      std::size_t passes = 0;
      bool restored = false;
      while (passes < o.repair_passes_per_event) {
        const auto pass = repair.run_once();
        ++passes;
        report.repair_copies += pass.copies;
        report.repair_bytes += pass.bytes;
        if (pass.remaining == 0) {
          restored = true;
          break;
        }
        if (pass.copies == 0 && !pass.budget_exhausted) break;  // stuck
      }
      report.repair_passes += passes;
      report.max_passes_per_kill = std::max(report.max_passes_per_kill, passes);
      if (!restored) report.quorum_restored = false;
    }
    if (t > 0 && !sick && sched_rng.uniform_double() < o.sicken_rate) {
      const auto pick =
          static_cast<std::size_t>(sched_rng.uniform_below(topo->size()));
      auto& tgt = topo->target(pick);
      const bool flap = sched_rng.uniform_double() < 0.5;  // draw regardless,
      const auto hold = 1 + sched_rng.uniform_below(3);    // schedule stability
      if (topo->alive(tgt) && tgt.faults != nullptr) {
        FaultSpec fs;
        if (flap) {
          fs.write_error_rate = 1.0;
        } else {
          fs.latency_spike_rate = 1.0;
          fs.latency_spike_sec = o.spike_sec;
        }
        tgt.faults->set_spec(fs);
        sick = ActiveSickness{tgt.name, t + hold};
        ++report.sickenings;
        note(flap ? ChaosEvent::Kind::kFlap : ChaosEvent::Kind::kSlow, t, 0,
             tgt.name);
      }
    }

    // One training step (the gradient-reuse loop the recovery tests use).
    ops::fill_normal(grad.span(), grad_rng, 0.5f);
    const auto payload = comp.compress(grad.cspan(), t);
    comp.decompress(payload, dense.span());
    adam.step(state, dense.cspan());
    snapshots.push_back(state);

    // Checkpoint under the gap-free discipline: after any failed put, only
    // a committed *full* may restart the chain — a diff written past a hole
    // would replay into the wrong state at recovery.
    const bool scheduled_full = (t % o.full_interval == 0);
    const bool forced_full = need_full && !scheduled_full;
    Status st = (scheduled_full || need_full) ? store.put_full(t, state)
                                              : store.put_diff(payload);
    if (st.ok()) {
      if (forced_full) ++report.forced_fulls;
      need_full = false;
    } else {
      ++report.failed_puts;
      need_full = true;
    }
  }

  // Drain sickness before judging: breakers opened by a flap must not hide
  // healthy replicas from recovery's read view.
  clear_sickness(o.iters);
  replicas->flush();

  const auto final_pass = repair.run_once();
  report.under_replicated_final = final_pass.remaining;

  // --- recover from what survives and check bit-exactness ------------------
  TierAwareRecoveryEngine engine(spec, std::make_unique<Adam>(),
                                 std::make_unique<TopKCompressor>(
                                     o.compress_ratio));
  try {
    RecoveryReport rr;
    const ModelState recovered = engine.recover(replicas, &rr);
    report.recovered = true;
    report.recovered_iteration = rr.final_iteration;
    report.bit_exact = rr.final_iteration < snapshots.size() &&
                       recovered.bit_equal(snapshots[rr.final_iteration]);
  } catch (const std::exception&) {
    report.recovered = false;
  }

  report.short_circuits =
      reg.counter("tier.health.short_circuit_total").value() - sc0;
  report.breaker_transitions =
      reg.counter("tier.health.transitions_total").value() - tr0;
  return report;
}

}  // namespace lowdiff::tier
