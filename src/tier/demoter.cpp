#include "tier/demoter.h"

#include "common/logging.h"
#include "core/checkpoint_store.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/atomic_commit.h"

namespace lowdiff::tier {

namespace {

struct DemoterObs {
  obs::Counter& migrated_total;
  obs::Counter& bytes_moved_total;
  obs::Counter& passes_total;
  obs::Counter& skipped_open_total;

  static DemoterObs resolve() {
    auto& reg = obs::Registry::global();
    return DemoterObs{reg.counter("tier.demoter.migrated_total"),
                      reg.counter("tier.demoter.bytes_moved_total"),
                      reg.counter("tier.demoter.passes_total"),
                      reg.counter("tier.demoter.skipped_open_total")};
  }
};

}  // namespace

Demoter::Demoter(std::shared_ptr<TierTopology> topology, Options options)
    : topology_(std::move(topology)), options_(options) {
  LOWDIFF_ENSURE(topology_ != nullptr, "null topology");
  LOWDIFF_ENSURE(options_.peer_capacity_bytes > 0, "capacity must be positive");
}

Demoter::~Demoter() { stop(); }

Demoter::Pass Demoter::run_once() {
  LOWDIFF_TRACE_SPAN("tier.demote", "tier");
  static thread_local DemoterObs dobs = DemoterObs::resolve();
  dobs.passes_total.add();
  Pass pass;

  auto breaker_open = [&](const TierTarget& t) {
    return options_.health != nullptr && !options_.health->readable(t.name);
  };

  TierTarget* shared = nullptr;
  for (std::size_t i = 0; i < topology_->size(); ++i) {
    auto& t = topology_->target(i);
    if (t.kind != TierKind::kRemoteShared || !topology_->alive(t)) continue;
    if (breaker_open(t)) {
      // Destination is sick: migrating into it would fail record by record.
      ++pass.skipped_open;
      dobs.skipped_open_total.add();
      continue;
    }
    shared = &t;
    break;
  }

  for (std::size_t i = 0; i < topology_->size(); ++i) {
    auto& tier = topology_->target(i);
    if (tier.kind != TierKind::kPeerMemory || !topology_->alive(tier)) continue;
    if (tier.base == nullptr) continue;
    if (breaker_open(tier)) {
      // Source is sick: leave its records alone until the breaker closes
      // (reads would fail and the error path would spin every sweep).
      ++pass.skipped_open;
      dobs.skipped_open_total.add();
      continue;
    }
    if (tier.base->resident_bytes() <= options_.peer_capacity_bytes) continue;
    if (shared == nullptr) {
      ++pass.over_budget;
      continue;
    }

    // The manifest view over this tier alone: committed fulls, ascending.
    CheckpointStore view(tier.backend);
    auto fulls = view.fulls();
    std::size_t next = 0;
    while (tier.base->resident_bytes() > options_.peer_capacity_bytes &&
           next < fulls.size()) {
      const std::uint64_t iter = fulls[next++];  // oldest = coldest first
      const std::string key = CheckpointStore::full_key(iter);
      const std::string marker = commit_marker_key(key);

      if (!is_committed(*shared->backend, key)) {
        auto data = tier.backend->read(key);
        auto marker_bytes = tier.backend->read(marker);
        if (!data.ok() || !marker_bytes.ok()) {
          LOWDIFF_LOG_ERROR("demoter: cannot read ", key, " from ", tier.name,
                            "; leaving it in place");
          continue;
        }
        // Commit order on the destination: data, barrier, marker — the
        // record never has fewer committed replicas than before the move.
        if (Status st = shared->backend->write(key, *data); !st.ok()) continue;
        if (Status st = shared->backend->sync(); !st.ok()) continue;
        if (Status st = shared->backend->write(marker, *marker_bytes); !st.ok()) {
          continue;
        }
        pass.bytes += data->size() + marker_bytes->size();
        dobs.bytes_moved_total.add(data->size() + marker_bytes->size());
      }
      tier.backend->remove(key);
      tier.backend->remove(marker);
      ++pass.migrated;
      dobs.migrated_total.add();
    }
    if (tier.base->resident_bytes() > options_.peer_capacity_bytes) {
      ++pass.over_budget;  // only diffs/batches left, or reads kept failing
    }
  }
  return pass;
}

void Demoter::start() {
  std::lock_guard lock(mutex_);
  if (running_) return;
  running_ = true;
  sweeper_ = std::thread([this] { loop(); });
}

void Demoter::stop() {
  {
    std::lock_guard lock(mutex_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  if (sweeper_.joinable()) sweeper_.join();
}

void Demoter::loop() {
  std::unique_lock lock(mutex_);
  while (running_) {
    lock.unlock();
    run_once();
    lock.lock();
    cv_.wait_for(lock, options_.interval, [this] { return !running_; });
  }
}

}  // namespace lowdiff::tier
