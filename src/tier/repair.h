#pragma once

/// \file repair.h
/// QuorumRepairEngine: online re-replication of under-replicated records —
/// the *healing* half of the self-healing runtime (DESIGN.md §9.2).
///
/// After a domain loss or a breaker trip, records that were durable at
/// quorum may suddenly hold fewer committed replicas than the placement
/// policy demands; a best-effort write under degradation starts out that
/// way.  The repair engine scans the surviving tiers for such records and
/// copies them — data, sync, marker, the commit order, so a record never
/// has fewer committed replicas mid-repair than before — to alternate
/// targets chosen with the same rules placement uses (policy tier-kind
/// preference, distinct failure domains, breaker-admitted only).
///
/// Repair traffic competes with checkpoint traffic for the same links, so
/// each pass runs under a byte budget: when the budget is exhausted the
/// pass stops and reports budget_exhausted; the next pass resumes where
/// the scan order left off (keys are scanned in lexical order, so progress
/// is monotone as records get repaired).  A record whose every surviving
/// copy fails CRC validation is counted unrepairable and left for
/// recovery-time truncation.
///
/// run_once() is the deterministic unit tests/benches drive; start()
/// spawns the background sweeper.  repair_until_quorum() loops passes
/// until nothing is under-replicated (the chaos harness's "quorum restored
/// within a budgeted window" assertion counts these passes).

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>

#include "tier/replicator.h"

namespace lowdiff::tier {

/// Namespace-scope (not nested) so it can default-construct as a `= {}`
/// default argument inside the class body (same constraint as
/// TierSimOptions/ReplicatorOptions).
struct QuorumRepairOptions {
  /// Max data+marker bytes copied per pass.  The first copy of a pass is
  /// always allowed (a budget smaller than one record must still make
  /// progress).
  std::uint64_t budget_bytes_per_pass = 8ull << 20;
  /// Background sweep cadence for start().
  std::chrono::milliseconds interval{200};
};

class QuorumRepairEngine {
 public:
  using Options = QuorumRepairOptions;

  /// The replicator supplies placement policy, health monitor, lag set and
  /// flush; the engine reads/writes tier backends directly (its traffic
  /// pays the same modeled link costs as checkpoint I/O).
  QuorumRepairEngine(std::shared_ptr<TierTopology> topology,
                     Replicator& replicator, Options options = {});
  ~QuorumRepairEngine();

  struct Pass {
    std::size_t scanned = 0;            ///< data records examined
    /// Data objects with no surviving committed copy anywhere: torn-write
    /// leftovers (never committed, invisible) or records whose every
    /// committed copy is in a dead domain (nothing to copy from).  Skipped
    /// — not repair work, not `remaining`.
    std::size_t orphaned = 0;
    std::size_t under_replicated = 0;   ///< found below quorum this pass
    std::size_t repaired = 0;           ///< records brought back to quorum
    std::size_t copies = 0;             ///< replica copies created
    std::uint64_t bytes = 0;            ///< data+marker bytes shipped
    bool budget_exhausted = false;      ///< pass stopped on the byte budget
    std::size_t unrepairable = 0;       ///< no valid source or destination
    std::size_t remaining = 0;          ///< still below quorum after pass
  };

  /// One budgeted sweep.  Thread-safe against concurrent checkpoint
  /// traffic (everything goes through the backends' own locking).
  Pass run_once();

  /// Runs passes until no record is under-replicated or `max_passes` is
  /// spent.  Returns true when quorum is fully restored.
  bool repair_until_quorum(std::size_t max_passes);

  void start();
  void stop();

  const Options& options() const { return options_; }

 private:
  void loop();

  std::shared_ptr<TierTopology> topology_;
  Replicator& replicator_;
  Options options_;

  std::mutex mutex_;
  std::condition_variable cv_;
  bool running_ = false;
  std::thread sweeper_;
};

}  // namespace lowdiff::tier
