#pragma once

/// \file topology.h
/// Checkpoint placement tiers and the failure-domain map over a simulated
/// cluster.
///
/// LowDiff as published persists every record to the writing server's local
/// SSD (§6.1), so losing one server loses that server's shard of the
/// checkpoint chain — the paper's recovery story silently assumes the
/// failed node's storage survives.  This module describes *where else* a
/// record can live: each TierTarget is one storage location (another
/// server's RAM reached over the fabric, a server's local SSD, or a shared
/// remote store), carries the failure domain it dies with (the server
/// index; the shared store is its own domain), and the read bandwidth the
/// recovery source-selection model uses.
///
/// Every target's backend is the canonical ThrottledStorage over
/// FaultInjectingStorage over MemStorage stack (storage/stacking.h), so
/// tier traffic pays the same link costs and survives the same fault
/// classes as the single-backend paths.

#include <cstddef>
#include <limits>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "sim/cluster.h"
#include "storage/stacking.h"

namespace lowdiff::tier {

enum class TierKind : std::uint8_t {
  kPeerMemory,    ///< another server's RAM, reached over the fabric
  kLocalSsd,      ///< a server's NVMe SSD
  kRemoteShared,  ///< shared remote store (own failure domain)
};

inline const char* to_string(TierKind kind) {
  switch (kind) {
    case TierKind::kPeerMemory: return "peer";
    case TierKind::kLocalSsd: return "local";
    case TierKind::kRemoteShared: return "remote";
  }
  return "unknown";
}

/// One placement location.  `failure_domain` is the server whose loss
/// takes this target down (kSharedDomain for the remote store);
/// `volatile_storage` marks contents that vanish with the domain (RAM)
/// as opposed to merely becoming unreachable (a dead server's SSD).
struct TierTarget {
  std::string name;  ///< metrics label: `tier.<name>.*`
  TierKind kind = TierKind::kLocalSsd;
  std::size_t failure_domain = 0;
  std::shared_ptr<StorageBackend> backend;
  /// Undecorated root object store — scenario hooks (wipe on server loss,
  /// byte-level corruption in tests).  Never read/written on normal paths.
  std::shared_ptr<MemStorage> base;
  /// Fault-injection layer of the stack — the chaos switchboard flips a
  /// live target sick (flap/slow) via set_spec without rebuilding.  Null
  /// for hand-built targets with undecorated backends.
  std::shared_ptr<FaultInjectingStorage> faults;
  double read_bytes_per_sec = 1.0 * kGB;
  bool volatile_storage = false;
};

/// Knobs for for_cluster()-built topologies.  (Namespace-scope rather than
/// nested so it can serve as a `= {}` default argument inside TierTopology —
/// a nested class's default member initializers are only parsed once the
/// enclosing class is complete.)
struct TierSimOptions {
  double time_scale = 1.0;  ///< shared wall-clock scale for all throttles
  FaultSpec faults;         ///< applied per tier (seed decorrelated)
  bool peer_memory = true;
  bool local_ssd = true;
  bool remote_shared = true;
};

/// The set of tier targets plus which failure domains are currently down.
/// fail_domain()/restore_domain() are the server-loss switchboard the
/// failure scenarios (sim/failure.h) drive; Replicator consults alive()
/// on every read/write.
class TierTopology {
 public:
  static constexpr std::size_t kSharedDomain =
      std::numeric_limits<std::size_t>::max();

  using SimOptions = TierSimOptions;

  /// Builds the paper-testbed topology from a ClusterSpec: per server one
  /// local-SSD tier (`ssd.s<i>`, write link = cluster.storage, read
  /// bandwidth = cluster.storage_read_bytes_per_sec) and one peer-memory
  /// tier (`mem.s<i>`, both directions over cluster.network), plus one
  /// shared remote store (`remote`, links::remote_storage()).
  static std::shared_ptr<TierTopology> for_cluster(const sim::ClusterSpec& cluster,
                                                   const SimOptions& opts = {});

  void add(TierTarget target);

  std::size_t size() const { return targets_.size(); }
  TierTarget& target(std::size_t i) { return targets_[i]; }
  const TierTarget& target(std::size_t i) const { return targets_[i]; }
  TierTarget* find(const std::string& name);
  const TierTarget* find(const std::string& name) const;

  /// Marks a failure domain down.  Volatile targets in the domain lose
  /// their contents immediately (RAM does not survive a server loss);
  /// non-volatile targets keep their bytes but stop serving until
  /// restore_domain() (a replaced machine's SSD is unreachable, not
  /// erased).
  void fail_domain(std::size_t domain);
  void restore_domain(std::size_t domain);
  bool domain_failed(std::size_t domain) const;
  std::size_t failed_domain_count() const;

  bool alive(const TierTarget& target) const {
    return !domain_failed(target.failure_domain);
  }

  /// Indices of currently-servable targets.
  std::vector<std::size_t> alive_indices() const;

 private:
  std::vector<TierTarget> targets_;
  mutable std::mutex mutex_;
  std::set<std::size_t> failed_domains_;
};

}  // namespace lowdiff::tier
