#include "tier/topology.h"

#include "common/error.h"

namespace lowdiff::tier {

std::shared_ptr<TierTopology> TierTopology::for_cluster(
    const sim::ClusterSpec& cluster, const SimOptions& opts) {
  auto topo = std::make_shared<TierTopology>();
  const std::size_t servers = cluster.servers();
  std::size_t tier_index = 0;
  auto faults_for = [&](std::size_t index) {
    FaultSpec spec = opts.faults;
    // Decorrelate the per-tier fault streams; same seed => same topology.
    spec.seed = SplitMix64(opts.faults.seed ^ (0x7137u + index)).next();
    return spec;
  };
  for (std::size_t s = 0; s < servers; ++s) {
    if (opts.local_ssd) {
      TierTarget t;
      t.name = "ssd.s" + std::to_string(s);
      t.kind = TierKind::kLocalSsd;
      t.failure_domain = s;
      auto stack = make_stacked_backend(cluster.storage, faults_for(tier_index++),
                                        opts.time_scale, t.name);
      t.backend = stack.root;
      t.base = stack.base;
      t.faults = stack.faults;
      t.read_bytes_per_sec = cluster.storage_read_bytes_per_sec;
      t.volatile_storage = false;
      topo->add(std::move(t));
    }
    if (opts.peer_memory) {
      TierTarget t;
      t.name = "mem.s" + std::to_string(s);
      t.kind = TierKind::kPeerMemory;
      t.failure_domain = s;
      auto stack = make_stacked_backend(cluster.network, faults_for(tier_index++),
                                        opts.time_scale, t.name);
      t.backend = stack.root;
      t.base = stack.base;
      t.faults = stack.faults;
      t.read_bytes_per_sec = cluster.network.bytes_per_sec;
      t.volatile_storage = true;
      topo->add(std::move(t));
    }
  }
  if (opts.remote_shared) {
    TierTarget t;
    t.name = "remote";
    t.kind = TierKind::kRemoteShared;
    t.failure_domain = kSharedDomain;
    const LinkSpec link = links::remote_storage();
    auto stack = make_stacked_backend(link, faults_for(tier_index++),
                                      opts.time_scale, t.name);
    t.backend = stack.root;
    t.base = stack.base;
    t.faults = stack.faults;
    t.read_bytes_per_sec = link.bytes_per_sec;
    t.volatile_storage = false;
    topo->add(std::move(t));
  }
  return topo;
}

void TierTopology::add(TierTarget target) {
  LOWDIFF_ENSURE(target.backend != nullptr, "tier target needs a backend");
  LOWDIFF_ENSURE(!target.name.empty(), "tier target needs a name");
  LOWDIFF_ENSURE(find(target.name) == nullptr,
                 "duplicate tier target name " + target.name);
  LOWDIFF_ENSURE(target.read_bytes_per_sec > 0, "read bandwidth must be positive");
  targets_.push_back(std::move(target));
}

TierTarget* TierTopology::find(const std::string& name) {
  for (auto& t : targets_) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

const TierTarget* TierTopology::find(const std::string& name) const {
  for (const auto& t : targets_) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

void TierTopology::fail_domain(std::size_t domain) {
  {
    std::lock_guard lock(mutex_);
    failed_domains_.insert(domain);
  }
  for (auto& t : targets_) {
    if (t.failure_domain == domain && t.volatile_storage && t.base != nullptr) {
      t.base->clear();
    }
  }
}

void TierTopology::restore_domain(std::size_t domain) {
  std::lock_guard lock(mutex_);
  failed_domains_.erase(domain);
}

bool TierTopology::domain_failed(std::size_t domain) const {
  std::lock_guard lock(mutex_);
  return failed_domains_.contains(domain);
}

std::size_t TierTopology::failed_domain_count() const {
  std::lock_guard lock(mutex_);
  return failed_domains_.size();
}

std::vector<std::size_t> TierTopology::alive_indices() const {
  std::vector<std::size_t> out;
  out.reserve(targets_.size());
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    if (alive(targets_[i])) out.push_back(i);
  }
  return out;
}

}  // namespace lowdiff::tier
