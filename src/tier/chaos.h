#pragma once

/// \file chaos.h
/// Randomized failure/recovery campaign harness for the self-healing
/// replication runtime (DESIGN.md §9.4) — shared by tests/test_chaos.cpp
/// and bench/bench_chaos.cpp.
///
/// One run builds the full stack (topology → health monitor → replicator →
/// checkpoint store → repair engine), trains a small model with the
/// gradient-reuse checkpoint loop, and drives a seed-deterministic schedule
/// of mid-run events against it:
///
///   - kill:    a server's failure domain goes down (volatile tiers wiped);
///              the repair engine then runs budgeted passes until quorum is
///              restored.  At most one domain is dead at a time — with the
///              replica-distinct-domain invariant, a single loss can never
///              erase every copy of a committed record, and repair re-earns
///              the quorum before the next loss may strike.
///   - restore: the dead server returns; its lanes' breakers are reset
///              (the orchestrator knows the machine was replaced).
///   - flap:    a live target starts failing every write (injected
///              transient errors) until the matching clear event.
///   - slow:    a live target stalls every op past the configured deadline,
///              exercising the timeout→breaker path.
///
/// The checkpoint loop follows the gap-free chain discipline: after any
/// failed put the runner writes only *full* checkpoints until one commits
/// (a diff after a hole would let recovery silently replay across the gap
/// and reconstruct a wrong state — see core/recovery.cpp's truncation
/// semantics, which detect unreadable records, not never-written ones).
///
/// After the schedule drains, the run recovers through the tier-aware
/// engine from whatever survives and checks the recovered state is
/// *bit-exact* against the training-time snapshot of the iteration the
/// recovery reports — the paper's recovery-correctness bar under fire.

#include <cstdint>
#include <string>
#include <vector>

#include "tier/replicator.h"

namespace lowdiff::tier {

struct ChaosEvent {
  enum class Kind : std::uint8_t {
    kKill,     ///< fail_domain(server)
    kRestore,  ///< restore_domain(server) + breaker reset
    kFlap,     ///< target fails all writes until kClear
    kSlow,     ///< target stalls past the deadline until kClear
    kClear,    ///< flap/slow ends, breaker reset
  };
  Kind kind = Kind::kKill;
  std::uint64_t iteration = 0;  ///< applied before this iteration trains
  std::size_t server = 0;       ///< kKill/kRestore
  std::string target;           ///< kFlap/kSlow/kClear
};

struct ChaosOptions {
  std::size_t servers = 4;
  std::string policy = "3@local,peer,remote/q2";
  std::size_t param_count = 192;
  double compress_ratio = 0.25;
  std::uint64_t iters = 28;
  std::uint64_t full_interval = 7;  ///< scheduled fulls (plus forced ones)
  /// Repair passes allowed per domain loss before quorum restoration is
  /// declared failed — the "budgeted window" of the acceptance criterion.
  std::size_t repair_passes_per_event = 12;
  /// Small on purpose: a full checkpoint costs several passes, proving the
  /// budget cursor makes monotone progress.
  std::uint64_t repair_budget_bytes = 64ull << 10;
  double deadline_sec = 3e-3;    ///< per-op deadline on every lane
  double spike_sec = 1e-2;       ///< injected stall length (> deadline)
  double cooldown_sec = 2e-2;    ///< breaker open dwell
  double time_scale = 1e-7;      ///< link-throttle compression (tests)
  DegradeMode degrade = DegradeMode::kBestEffort;
  /// Event rates per iteration (schedule is a pure function of the seed).
  double kill_rate = 0.15;
  double sicken_rate = 0.20;  ///< flap or slow (coin flip between them)
};

struct ChaosReport {
  std::vector<ChaosEvent> events;   ///< applied, in order
  std::size_t kills = 0;
  std::size_t sickenings = 0;       ///< flap + slow events
  std::size_t repair_passes = 0;    ///< across all kills
  std::size_t max_passes_per_kill = 0;
  std::uint64_t repair_copies = 0;
  std::uint64_t repair_bytes = 0;
  bool quorum_restored = true;      ///< every kill repaired within budget
  std::size_t under_replicated_final = 0;
  std::uint64_t failed_puts = 0;    ///< checkpoint writes that errored
  std::uint64_t forced_fulls = 0;   ///< fulls written to re-anchor the chain
  std::uint64_t short_circuits = 0; ///< breaker rejections during the run
  std::uint64_t breaker_transitions = 0;
  bool recovered = false;           ///< recovery produced a state at all
  std::uint64_t recovered_iteration = 0;
  bool bit_exact = false;           ///< recovered == snapshot[recovered_iter]
};

class ChaosRunner {
 public:
  explicit ChaosRunner(ChaosOptions options = {});

  /// One full campaign; everything (topology, schedule, data) derives from
  /// `seed`, so a failing seed replays exactly.
  ChaosReport run(std::uint64_t seed) const;

  const ChaosOptions& options() const { return options_; }

 private:
  ChaosOptions options_;
};

}  // namespace lowdiff::tier
