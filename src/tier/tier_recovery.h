#pragma once

/// \file tier_recovery.h
/// Failure-domain-aware recovery over replicated tiers.
///
/// Extends the core RecoveryEngine (Algorithm 1 + Fig. 7) with placement
/// awareness: given the set of failed servers, the surviving tiers form
/// the read view (TierTopology::fail_domain), the Replicator serves every
/// record from the bandwidth-optimal surviving replica and falls back
/// across tiers on CRC failure, and the existing corruption-aware
/// truncation semantics apply only when *no* surviving replica of a
/// record validates.  The replay math is untouched — this class composes
/// the proven engine rather than re-deriving it — so bit-exactness carries
/// over verbatim.
///
/// RecoveryReport::read_sources is filled with the per-tier breakdown
/// (reads, bytes, modeled seconds at each tier's read bandwidth), which is
/// what Exp. 11 plots as "recovery time vs k and tier mix".

#include <memory>
#include <vector>

#include "core/recovery.h"
#include "tier/replicator.h"

namespace lowdiff::tier {

class TierAwareRecoveryEngine {
 public:
  /// `optimizer` and `compressor` must match what training used.
  TierAwareRecoveryEngine(ModelSpec spec, std::unique_ptr<Optimizer> optimizer,
                          std::unique_ptr<Compressor> compressor);

  /// Serial replay over the surviving replica view.
  ModelState recover(std::shared_ptr<Replicator> replicas,
                     RecoveryReport* report = nullptr) const;

  /// Parallel replay (load + decompress on `pool`), same view.
  ModelState recover_parallel(std::shared_ptr<Replicator> replicas,
                              ThreadPool& pool,
                              RecoveryReport* report = nullptr) const;

  /// Marks every listed server's failure domain down (volatile tiers lose
  /// their contents), then recovers from what survives.
  ModelState recover_after_failures(std::shared_ptr<Replicator> replicas,
                                    const std::vector<std::size_t>& failed_servers,
                                    RecoveryReport* report = nullptr) const;

 private:
  /// Swaps the engine's aggregate source entry for the per-tier breakdown.
  static void fill_read_sources(const Replicator& replicas,
                                const std::map<std::string, SourceTotals>& before,
                                RecoveryReport* report);

  RecoveryEngine engine_;
};

}  // namespace lowdiff::tier
