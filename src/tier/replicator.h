#pragma once

/// \file replicator.h
/// k-way placement-driven replication behind the StorageBackend interface.
///
/// Every write is routed by a PlacementPolicy to an ordered set of tier
/// targets: the primary is written synchronously, the remaining replicas
/// are shipped asynchronously on a per-tier AsyncWriter (FIFO per tier, so
/// the CheckpointStore commit protocol's data-before-marker order is
/// preserved within every tier — each tier carries its own complete commit
/// manifest).  A record is *durable* once its commit marker exists on at
/// least `quorum` tiers; committed_replicas()/durable() report that state
/// and sync() is the full barrier (drain replica writers + sync tiers).
///
/// Reads are placement-aware: candidates are the surviving tiers holding
/// the key, tried in descending read-bandwidth order; a replica that fails
/// its own tier's marker CRC is skipped (counted in
/// `tier.<name>.read_corrupt_total`) and the next-fastest tier serves
/// instead, so a single corrupt replica never truncates recovery while a
/// healthy copy exists.  Requests against a failed domain fail with
/// kUnavailable even when raced by in-flight replica jobs.
///
/// Because Replicator *is* a StorageBackend, the whole existing stack —
/// CheckpointStore manifests, strategies, AsyncWriter, RecoveryEngine —
/// routes through placement unchanged.
///
/// With a TierHealthMonitor attached (Options::health), every lane is
/// additionally wrapped in a per-op deadline and a circuit breaker: ops
/// against an Open lane short-circuit with non-retryable kCircuitOpen
/// before touching the device, sick lanes are excluded from placement and
/// read candidacy, and writes that cannot reach quorum degrade per
/// Options::degrade (best-effort with lag tracking, bounded block, or
/// fail-fast).  See DESIGN.md §9.

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/retry.h"
#include "storage/async_writer.h"
#include "storage/backend.h"
#include "storage/deadline.h"
#include "tier/health.h"
#include "tier/placement.h"
#include "tier/topology.h"

namespace lowdiff::tier {

/// Per-tier read accounting (RecoveryReport::read_sources feeds from this).
struct SourceTotals {
  std::uint64_t reads = 0;
  std::uint64_t bytes = 0;
  double seconds = 0.0;  ///< modeled read time: bytes / tier read bandwidth
  std::uint64_t corrupt = 0;
};

/// What a write does when the placement quorum is not currently reachable
/// (dead domains plus open breakers leave fewer than `quorum` admitted
/// targets).  DESIGN.md §9.3.
enum class DegradeMode : std::uint8_t {
  /// Write to whatever is reachable, record the key as durability-lagging
  /// (gauge `tier.replication.durability_lag_records`), and let the repair
  /// engine restore quorum in the background.  Training never stalls.
  kBestEffort,
  /// Poll placement until quorum returns or `block_timeout_sec` elapses,
  /// then fall back to best-effort.  Bounds the durability gap at the cost
  /// of (bounded) stall.
  kBlock,
  /// Refuse the write with kUnavailable, touching no tier.  For jobs where
  /// an under-replicated checkpoint is worse than no checkpoint.
  kFailFast,
};

/// Namespace-scope (not nested) so it can default-construct as a `= {}`
/// default argument inside the class body.
struct ReplicatorOptions {
  std::size_t origin_server = 0;  ///< placement origin (this rank's server)
  std::size_t writer_queue_depth = 64;
  /// Retry schedule for async replica jobs.  Its seed (satellite of
  /// RetryPolicy::make_rng) plus `seed` below fully determine every
  /// jitter draw, so replicated runs are reproducible under `ctest -j`.
  RetryPolicy replica_retry;
  /// Stream base for per-lane writer jitter RNGs (lane i uses seed + i).
  std::uint64_t seed = 0x5e1f43a1;
  DegradeMode degrade = DegradeMode::kBestEffort;
  double block_timeout_sec = 0.25;  ///< kBlock: max wait for quorum
  double block_poll_sec = 1e-3;     ///< kBlock: replan interval
  /// Per-op deadlines applied to every lane (0 = disabled).  Timeouts are
  /// surfaced as kTimeout and classified as soft failures by `health`.
  DeadlineSpec deadline;
  /// Shared breaker state.  Null (default) disables health gating entirely
  /// — the pre-§9 behavior.
  std::shared_ptr<TierHealthMonitor> health;
  /// Opt-in pipelined persist path for every replica lane's writer: lane
  /// jobs are batch-submitted with a bounded in-flight window instead of
  /// one blocking write per job.  Lanes write plain (non-committed)
  /// records, so this only changes the schedule, never the bytes, and
  /// per-lane FIFO order is preserved.
  PipelineSpec pipeline;
};

class Replicator final : public StorageBackend {
 public:
  using Options = ReplicatorOptions;

  Replicator(std::shared_ptr<TierTopology> topology, PlacementPolicy policy,
             Options options = {});
  ~Replicator() override;

  // --- StorageBackend ------------------------------------------------------
  Status write(const std::string& key, std::span<const std::byte> bytes) override;
  Result<std::vector<std::byte>> read(const std::string& key) const override;
  bool exists(const std::string& key) const override;
  void remove(const std::string& key) override;
  std::vector<std::string> list() const override;
  StorageStats stats() const override;
  /// Full durability barrier: drains every replica writer, then syncs every
  /// surviving tier.
  Status sync() override;

  // --- replication introspection -------------------------------------------
  /// Surviving tiers holding a commit marker for `key`.
  std::size_t committed_replicas(const std::string& key) const;
  /// True once the placement quorum has committed.
  bool durable(const std::string& key) const;
  /// Drains pending async replica writes (sync() minus the tier syncs).
  void flush();

  std::map<std::string, SourceTotals> read_totals() const;

  const PlacementPolicy& policy() const { return policy_; }
  TierTopology& topology() { return *topology_; }
  const Options& options() const { return options_; }
  /// Replica jobs that failed even after the writer's retries.
  std::uint64_t failed_replica_writes() const;
  /// Total retry attempts across every lane's writer.  The chaos tests
  /// assert this stays *flat* while a breaker is open — the short-circuit
  /// proof (an open lane's jobs fail with non-retryable kCircuitOpen on
  /// the first attempt).
  std::uint64_t writer_retries() const;

  // --- degraded-durability accounting (DegradeMode::kBestEffort) -----------
  /// Data keys written without a reachable quorum, not yet repaired.
  std::vector<std::string> lagging_keys() const;
  /// Drops one key from the lag set (the repair engine calls this after
  /// restoring its quorum).
  void clear_lag(const std::string& key);
  /// Re-checks durable() for every lagging key and drops the ones that
  /// caught up (async replicas may have landed since the write).
  void refresh_lag();

  const std::shared_ptr<TierHealthMonitor>& health() const {
    return options_.health;
  }

 private:
  struct Lane;  // one tier target: gated+deadline+monitored stack + writer

  Lane& lane_of(const TierTarget& target) const;
  /// Alive, breaker-readable lanes, fastest read bandwidth first.
  std::vector<Lane*> read_candidates() const;
  bool lane_admitted(const TierTarget& target) const;
  void note_lag(const std::string& key);
  void set_lag_gauge_locked();

  std::shared_ptr<TierTopology> topology_;
  PlacementPolicy policy_;
  Options options_;
  std::vector<std::unique_ptr<Lane>> lanes_;

  mutable std::mutex totals_mutex_;
  mutable std::map<std::string, SourceTotals> totals_;
  mutable StorageStats stats_;
  mutable std::mutex stats_mutex_;

  mutable std::mutex lag_mutex_;
  std::set<std::string> lag_keys_;
  obs::Gauge& lag_gauge_;
};

}  // namespace lowdiff::tier
