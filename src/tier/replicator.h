#pragma once

/// \file replicator.h
/// k-way placement-driven replication behind the StorageBackend interface.
///
/// Every write is routed by a PlacementPolicy to an ordered set of tier
/// targets: the primary is written synchronously, the remaining replicas
/// are shipped asynchronously on a per-tier AsyncWriter (FIFO per tier, so
/// the CheckpointStore commit protocol's data-before-marker order is
/// preserved within every tier — each tier carries its own complete commit
/// manifest).  A record is *durable* once its commit marker exists on at
/// least `quorum` tiers; committed_replicas()/durable() report that state
/// and sync() is the full barrier (drain replica writers + sync tiers).
///
/// Reads are placement-aware: candidates are the surviving tiers holding
/// the key, tried in descending read-bandwidth order; a replica that fails
/// its own tier's marker CRC is skipped (counted in
/// `tier.<name>.read_corrupt_total`) and the next-fastest tier serves
/// instead, so a single corrupt replica never truncates recovery while a
/// healthy copy exists.  Requests against a failed domain fail with
/// kUnavailable even when raced by in-flight replica jobs.
///
/// Because Replicator *is* a StorageBackend, the whole existing stack —
/// CheckpointStore manifests, strategies, AsyncWriter, RecoveryEngine —
/// routes through placement unchanged.

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/async_writer.h"
#include "storage/backend.h"
#include "tier/placement.h"
#include "tier/topology.h"

namespace lowdiff::tier {

/// Per-tier read accounting (RecoveryReport::read_sources feeds from this).
struct SourceTotals {
  std::uint64_t reads = 0;
  std::uint64_t bytes = 0;
  double seconds = 0.0;  ///< modeled read time: bytes / tier read bandwidth
  std::uint64_t corrupt = 0;
};

/// Namespace-scope (not nested) so it can default-construct as a `= {}`
/// default argument inside the class body.
struct ReplicatorOptions {
  std::size_t origin_server = 0;  ///< placement origin (this rank's server)
  std::size_t writer_queue_depth = 64;
};

class Replicator final : public StorageBackend {
 public:
  using Options = ReplicatorOptions;

  Replicator(std::shared_ptr<TierTopology> topology, PlacementPolicy policy,
             Options options = {});
  ~Replicator() override;

  // --- StorageBackend ------------------------------------------------------
  Status write(const std::string& key, std::span<const std::byte> bytes) override;
  Result<std::vector<std::byte>> read(const std::string& key) const override;
  bool exists(const std::string& key) const override;
  void remove(const std::string& key) override;
  std::vector<std::string> list() const override;
  StorageStats stats() const override;
  /// Full durability barrier: drains every replica writer, then syncs every
  /// surviving tier.
  Status sync() override;

  // --- replication introspection -------------------------------------------
  /// Surviving tiers holding a commit marker for `key`.
  std::size_t committed_replicas(const std::string& key) const;
  /// True once the placement quorum has committed.
  bool durable(const std::string& key) const;
  /// Drains pending async replica writes (sync() minus the tier syncs).
  void flush();

  std::map<std::string, SourceTotals> read_totals() const;

  const PlacementPolicy& policy() const { return policy_; }
  TierTopology& topology() { return *topology_; }
  const Options& options() const { return options_; }
  /// Replica jobs that failed even after the writer's retries.
  std::uint64_t failed_replica_writes() const;

 private:
  struct Lane;  // one tier target: gated backend + async writer + metrics

  Lane& lane_of(const TierTarget& target) const;
  /// Alive lanes holding `key`-servable data, fastest read bandwidth first.
  std::vector<Lane*> read_candidates() const;

  std::shared_ptr<TierTopology> topology_;
  PlacementPolicy policy_;
  Options options_;
  std::vector<std::unique_ptr<Lane>> lanes_;

  mutable std::mutex totals_mutex_;
  mutable std::map<std::string, SourceTotals> totals_;
  mutable StorageStats stats_;
  mutable std::mutex stats_mutex_;
};

}  // namespace lowdiff::tier
