#pragma once

/// \file placement.h
/// PlacementPolicy: which tiers a checkpoint record is replicated to.
///
/// A policy is `k` replicas spread over an ordered tier preference, with
/// replicas required to land in *distinct failure domains* by default —
/// that is the property that closes the paper's single-server-loss gap.
///
/// Compact grammar (documented in DESIGN.md §5):
///
///     policy   := k '@' tier (',' tier)* ('/q' quorum)?
///     tier     := 'local' | 'peer' | 'remote'
///     k, quorum := positive integer
///
/// Examples:
///   "1@local"             — paper baseline: one copy on the origin SSD
///   "2@local,peer"        — origin SSD + a peer server's RAM
///   "3@local,peer,remote/q2" — three tiers, durable at 2 commits
///
/// A quorum of 0 (or no `/q` suffix) resolves to a majority of k.  plan()
/// assigns replicas round-robin across the listed tiers — one per tier kind
/// per round, so "2@local,peer" is origin SSD *plus* a peer's RAM, and
/// k greater than the number of listed kinds wraps around for more of the
/// same mix.  Within a tier kind candidates are ordered by proximity to the
/// origin server (origin's own SSD first; peers in ring order starting at
/// origin+1); dead targets and already-used failure domains are skipped.

#include <cstddef>
#include <string>
#include <vector>

#include "tier/topology.h"

namespace lowdiff::tier {

/// Ordered placement for one record: `targets[0]` is the primary (written
/// synchronously); the rest are async replicas.  `degraded` is set when
/// fewer than the requested k targets were available.
struct PlacementPlan {
  std::vector<TierTarget*> targets;
  std::size_t quorum = 1;
  bool degraded = false;
};

class PlacementPolicy {
 public:
  struct Spec {
    std::size_t replicas = 2;  ///< k
    std::vector<TierKind> preference = {TierKind::kLocalSsd,
                                        TierKind::kPeerMemory,
                                        TierKind::kRemoteShared};
    bool distinct_domains = true;
    std::size_t quorum = 0;  ///< 0 = majority of k
  };

  explicit PlacementPolicy(Spec spec);

  /// Parses the grammar above; throws Error on malformed input.
  static PlacementPolicy parse(const std::string& text);

  const Spec& spec() const { return spec_; }
  std::size_t replicas() const { return spec_.replicas; }
  /// Resolved durability quorum (majority of k unless pinned).
  std::size_t quorum() const;
  /// Round-trips to the grammar (metrics labels, bench tables).
  std::string to_string() const;

  /// Ordered surviving targets for a record originating on `origin_server`.
  PlacementPlan plan(TierTopology& topo, std::size_t origin_server) const;

 private:
  Spec spec_;
};

}  // namespace lowdiff::tier
