#include "tier/health.h"

#include <chrono>

#include "common/logging.h"

namespace lowdiff::tier {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

FailureClass classify_failure(ErrorCode code) {
  switch (code) {
    case ErrorCode::kTimeout:
      return FailureClass::kTimeout;
    case ErrorCode::kTransient:
      return FailureClass::kTransient;
    default:
      // kUnavailable, kCorrupted, kExhausted, kInvalidArgument, kInternal:
      // the device (or our model of it) is wrong in a way waiting won't fix.
      return FailureClass::kHard;
  }
}

TierHealthMonitor::TierHealthMonitor(HealthOptions options)
    : options_(options),
      clock_(options.clock ? options.clock : steady_seconds),
      transitions_total_(
          obs::Registry::global().counter("tier.health.transitions_total")),
      short_circuit_total_(
          obs::Registry::global().counter("tier.health.short_circuit_total")),
      probes_total_(
          obs::Registry::global().counter("tier.health.probes_total")),
      failures_timeout_total_(obs::Registry::global().counter(
          "tier.health.failures_timeout_total")),
      failures_transient_total_(obs::Registry::global().counter(
          "tier.health.failures_transient_total")),
      failures_hard_total_(obs::Registry::global().counter(
          "tier.health.failures_hard_total")) {
  LOWDIFF_ENSURE(options_.open_after >= options_.suspect_after,
                 "open_after must be >= suspect_after");
  LOWDIFF_ENSURE(options_.close_after > 0, "close_after must be positive");
  LOWDIFF_ENSURE(options_.hard_failure_weight > 0,
                 "hard_failure_weight must be positive");
}

TierHealthMonitor::Entry& TierHealthMonitor::entry_locked(
    const std::string& target) {
  auto [it, inserted] = entries_.try_emplace(target);
  if (inserted) {
    it->second.state_gauge =
        &obs::Registry::global().gauge("tier.health." + target + ".state");
    it->second.state_gauge->set(0);
  }
  return it->second;
}

void TierHealthMonitor::transition_locked(const std::string& target, Entry& e,
                                          TargetHealth to) {
  if (e.state == to) return;
  LOWDIFF_LOG_INFO("tier target '", target, "' ", to_string(e.state), " -> ",
                   to_string(to));
  e.state = to;
  e.state_gauge->set(static_cast<std::int64_t>(to));
  transitions_total_.add(1);
  if (to == TargetHealth::kOpen) {
    e.opened_at = now();
    e.success_streak = 0;
  } else if (to == TargetHealth::kHealthy) {
    e.failure_score = 0;
    e.success_streak = 0;
  }
}

void TierHealthMonitor::on_failure_locked(const std::string& target, Entry& e,
                                          std::uint32_t weight) {
  e.success_streak = 0;
  switch (e.state) {
    case TargetHealth::kHealthy:
    case TargetHealth::kSuspect:
      e.failure_score += weight;
      if (e.failure_score >= options_.open_after) {
        transition_locked(target, e, TargetHealth::kOpen);
      } else if (e.failure_score >= options_.suspect_after) {
        transition_locked(target, e, TargetHealth::kSuspect);
      }
      break;
    case TargetHealth::kHalfOpen:
      // Failed probe: straight back to Open, cooldown restarts.
      transition_locked(target, e, TargetHealth::kOpen);
      break;
    case TargetHealth::kOpen:
      // A straggler that was admitted before the trip; nothing new.
      break;
  }
}

void TierHealthMonitor::on_success_locked(const std::string& target,
                                          Entry& e) {
  switch (e.state) {
    case TargetHealth::kHealthy:
      e.failure_score = 0;
      break;
    case TargetHealth::kSuspect:
    case TargetHealth::kHalfOpen:
      if (++e.success_streak >= options_.close_after) {
        transition_locked(target, e, TargetHealth::kHealthy);
      }
      break;
    case TargetHealth::kOpen:
      // A read raced the trip, or a cooled-down read probed successfully
      // without going through admit(): count it as a probe success.
      if (now() - e.opened_at >= options_.open_cooldown_sec) {
        transition_locked(target, e, TargetHealth::kHalfOpen);
        ++e.success_streak;
        if (e.success_streak >= options_.close_after) {
          transition_locked(target, e, TargetHealth::kHealthy);
        }
      }
      break;
  }
}

bool TierHealthMonitor::admit(const std::string& target) {
  std::lock_guard lock(mutex_);
  Entry& e = entry_locked(target);
  if (e.state != TargetHealth::kOpen) return true;
  if (now() - e.opened_at >= options_.open_cooldown_sec) {
    transition_locked(target, e, TargetHealth::kHalfOpen);
    probes_total_.add(1);
    return true;
  }
  short_circuit_total_.add(1);
  return false;
}

bool TierHealthMonitor::readable(const std::string& target) const {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(target);
  if (it == entries_.end()) return true;
  const Entry& e = it->second;
  if (e.state != TargetHealth::kOpen) return true;
  return now() - e.opened_at >= options_.open_cooldown_sec;
}

void TierHealthMonitor::record_success(const std::string& target) {
  std::lock_guard lock(mutex_);
  on_success_locked(target, entry_locked(target));
}

void TierHealthMonitor::record_failure(const std::string& target,
                                       ErrorCode code) {
  const FailureClass cls = classify_failure(code);
  std::uint32_t weight = 1;
  switch (cls) {
    case FailureClass::kTimeout:
      failures_timeout_total_.add(1);
      break;
    case FailureClass::kTransient:
      failures_transient_total_.add(1);
      break;
    case FailureClass::kHard:
      failures_hard_total_.add(1);
      weight = options_.hard_failure_weight;
      break;
  }
  std::lock_guard lock(mutex_);
  on_failure_locked(target, entry_locked(target), weight);
}

TargetHealth TierHealthMonitor::state(const std::string& target) const {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(target);
  return it == entries_.end() ? TargetHealth::kHealthy : it->second.state;
}

std::vector<std::string> TierHealthMonitor::targets_in(
    TargetHealth state) const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [name, e] : entries_) {
    if (e.state == state) out.push_back(name);
  }
  return out;
}

void TierHealthMonitor::reset(const std::string& target) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(target);
  if (it == entries_.end()) return;
  transition_locked(target, it->second, TargetHealth::kHealthy);
}

std::uint64_t TierHealthMonitor::transitions() const {
  return transitions_total_.value();
}

std::uint64_t TierHealthMonitor::short_circuits() const {
  return short_circuit_total_.value();
}

std::uint64_t TierHealthMonitor::probes() const {
  return probes_total_.value();
}

}  // namespace lowdiff::tier
