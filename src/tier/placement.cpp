#include "tier/placement.h"

#include <algorithm>

#include "common/error.h"

namespace lowdiff::tier {

namespace {

TierKind parse_kind(const std::string& word) {
  if (word == "local") return TierKind::kLocalSsd;
  if (word == "peer") return TierKind::kPeerMemory;
  if (word == "remote") return TierKind::kRemoteShared;
  throw Error("unknown tier '" + word + "' (want local|peer|remote)",
              std::source_location::current());
}

std::size_t parse_count(const std::string& text, const char* what) {
  std::size_t pos = 0;
  unsigned long value = 0;
  try {
    value = std::stoul(text, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != text.size() || value == 0) {
    throw Error(std::string("bad ") + what + " '" + text + "' in placement policy",
                std::source_location::current());
  }
  return value;
}

}  // namespace

PlacementPolicy::PlacementPolicy(Spec spec) : spec_(std::move(spec)) {
  LOWDIFF_ENSURE(spec_.replicas >= 1, "placement needs at least one replica");
  LOWDIFF_ENSURE(!spec_.preference.empty(), "placement needs a tier preference");
  LOWDIFF_ENSURE(spec_.quorum <= spec_.replicas,
                 "quorum cannot exceed replica count");
}

PlacementPolicy PlacementPolicy::parse(const std::string& text) {
  const auto at = text.find('@');
  if (at == std::string::npos) {
    throw Error("placement policy '" + text + "' missing 'k@' prefix",
                std::source_location::current());
  }
  Spec spec;
  spec.replicas = parse_count(text.substr(0, at), "replica count");

  std::string tiers = text.substr(at + 1);
  if (const auto q = tiers.rfind("/q"); q != std::string::npos) {
    spec.quorum = parse_count(tiers.substr(q + 2), "quorum");
    tiers = tiers.substr(0, q);
  }
  spec.preference.clear();
  std::size_t start = 0;
  while (start <= tiers.size()) {
    const auto comma = tiers.find(',', start);
    const auto word = tiers.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    spec.preference.push_back(parse_kind(word));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return PlacementPolicy(std::move(spec));
}

std::size_t PlacementPolicy::quorum() const {
  if (spec_.quorum != 0) return spec_.quorum;
  return spec_.replicas / 2 + 1;  // majority
}

std::string PlacementPolicy::to_string() const {
  std::string out = std::to_string(spec_.replicas) + "@";
  for (std::size_t i = 0; i < spec_.preference.size(); ++i) {
    if (i > 0) out += ",";
    out += tier::to_string(spec_.preference[i]);
  }
  if (spec_.quorum != 0) out += "/q" + std::to_string(spec_.quorum);
  return out;
}

PlacementPlan PlacementPolicy::plan(TierTopology& topo,
                                    std::size_t origin_server) const {
  PlacementPlan out;
  out.quorum = quorum();
  std::vector<std::size_t> used_domains;
  auto domain_used = [&](std::size_t domain) {
    return std::find(used_domains.begin(), used_domains.end(), domain) !=
           used_domains.end();
  };

  // Number of servers represented in the topology (ring ordering base).
  std::size_t servers = 0;
  for (std::size_t i = 0; i < topo.size(); ++i) {
    const auto& t = topo.target(i);
    if (t.failure_domain != TierTopology::kSharedDomain) {
      servers = std::max(servers, t.failure_domain + 1);
    }
  }

  auto kind_candidate = [&](TierKind kind, std::size_t domain) -> TierTarget* {
    for (std::size_t i = 0; i < topo.size(); ++i) {
      auto& t = topo.target(i);
      if (t.kind == kind && t.failure_domain == domain) return &t;
    }
    return nullptr;
  };

  // Per-kind candidate pools, each in proximity order.
  std::vector<std::vector<TierTarget*>> pools;
  pools.reserve(spec_.preference.size());
  for (TierKind kind : spec_.preference) {
    std::vector<TierTarget*> pool;
    switch (kind) {
      case TierKind::kLocalSsd:
        // Origin's own SSD first, then the other servers' SSDs in ring
        // order — a replica on a peer's SSD is still "the SSD tier", just
        // in a different failure domain.
        for (std::size_t i = 0; i < std::max<std::size_t>(servers, 1); ++i) {
          const std::size_t s = servers == 0 ? 0 : (origin_server + i) % servers;
          if (auto* t = kind_candidate(kind, s)) pool.push_back(t);
        }
        break;
      case TierKind::kPeerMemory:
        // Peer = *another* host's RAM; the origin's own RAM dies with the
        // origin and adds no failure-domain diversity.
        for (std::size_t i = 1; i < std::max<std::size_t>(servers, 1); ++i) {
          const std::size_t s = (origin_server + i) % servers;
          if (auto* t = kind_candidate(kind, s)) pool.push_back(t);
        }
        break;
      case TierKind::kRemoteShared:
        if (auto* t = kind_candidate(kind, TierTopology::kSharedDomain)) {
          pool.push_back(t);
        }
        break;
    }
    pools.push_back(std::move(pool));
  }

  // Round-robin across the listed tiers: one replica per tier kind per
  // round, so "2@local,peer" means origin SSD *plus* a peer's RAM — the
  // tier mix the policy spells out — and extra replicas (k > kinds) wrap
  // around for more of the same mix.  Dead targets and used failure
  // domains are skipped within each pool.
  std::vector<std::size_t> cursor(pools.size(), 0);
  bool progress = true;
  while (out.targets.size() < spec_.replicas && progress) {
    progress = false;
    for (std::size_t p = 0;
         p < pools.size() && out.targets.size() < spec_.replicas; ++p) {
      while (cursor[p] < pools[p].size()) {
        TierTarget* t = pools[p][cursor[p]++];
        if (!topo.alive(*t)) continue;
        if (spec_.distinct_domains && domain_used(t->failure_domain)) continue;
        if (std::find(out.targets.begin(), out.targets.end(), t) !=
            out.targets.end()) {
          continue;
        }
        out.targets.push_back(t);
        used_domains.push_back(t->failure_domain);
        progress = true;
        break;
      }
    }
  }

  out.degraded = out.targets.size() < spec_.replicas;
  return out;
}

}  // namespace lowdiff::tier
