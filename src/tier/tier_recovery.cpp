#include "tier/tier_recovery.h"

#include "obs/trace.h"

namespace lowdiff::tier {

TierAwareRecoveryEngine::TierAwareRecoveryEngine(
    ModelSpec spec, std::unique_ptr<Optimizer> optimizer,
    std::unique_ptr<Compressor> compressor)
    : engine_(std::move(spec), std::move(optimizer), std::move(compressor)) {}

void TierAwareRecoveryEngine::fill_read_sources(
    const Replicator& replicas,
    const std::map<std::string, SourceTotals>& before, RecoveryReport* report) {
  if (report == nullptr) return;
  // Replace the engine's single-backend aggregate with the per-tier view.
  report->read_sources.clear();
  for (const auto& [name, totals] : replicas.read_totals()) {
    const auto it = before.find(name);
    SourceTotals delta = totals;
    if (it != before.end()) {
      delta.reads -= it->second.reads;
      delta.bytes -= it->second.bytes;
      delta.seconds -= it->second.seconds;
      delta.corrupt -= it->second.corrupt;
    }
    if (delta.reads == 0 && delta.corrupt == 0) continue;
    report->read_sources[name] = ReadSourceTotals{
        delta.reads, delta.bytes, delta.seconds};
  }
}

ModelState TierAwareRecoveryEngine::recover(std::shared_ptr<Replicator> replicas,
                                            RecoveryReport* report) const {
  LOWDIFF_TRACE_SPAN("tier.recover", "tier");
  const auto before = replicas->read_totals();
  CheckpointStore store(replicas);
  ModelState state = engine_.recover_serial(store, report);
  fill_read_sources(*replicas, before, report);
  return state;
}

ModelState TierAwareRecoveryEngine::recover_parallel(
    std::shared_ptr<Replicator> replicas, ThreadPool& pool,
    RecoveryReport* report) const {
  LOWDIFF_TRACE_SPAN("tier.recover", "tier");
  const auto before = replicas->read_totals();
  CheckpointStore store(replicas);
  ModelState state = engine_.recover_parallel(store, pool, report);
  fill_read_sources(*replicas, before, report);
  return state;
}

ModelState TierAwareRecoveryEngine::recover_after_failures(
    std::shared_ptr<Replicator> replicas,
    const std::vector<std::size_t>& failed_servers,
    RecoveryReport* report) const {
  for (std::size_t server : failed_servers) {
    replicas->topology().fail_domain(server);
  }
  return recover(std::move(replicas), report);
}

}  // namespace lowdiff::tier
