#pragma once

/// \file health.h
/// Per-target health state machines and circuit breakers for the tier
/// layer — the *memory* of the self-healing runtime (DESIGN.md §9).
///
/// The topology's alive()/fail_domain() switchboard models *declared*
/// failures (an orchestrator announced the server dead).  Real clusters
/// mostly see the other kind: a target that starts timing out or erroring
/// with nobody telling anyone.  TierHealthMonitor infers that state from
/// per-operation outcomes and runs each target through the classic breaker
/// lifecycle:
///
///     Healthy --(failures >= suspect_after)--> Suspect
///     Suspect --(failures >= open_after)-----> Open       [breaker trips]
///     Open    --(cooldown elapses)-----------> HalfOpen   [one probe admitted]
///     HalfOpen --(close_after successes)-----> Healthy
///     HalfOpen --(any failure)---------------> Open       [cooldown restarts]
///     Suspect --(close_after successes)------> Healthy
///
/// Failure *classification* matters: a timeout (DeadlineStorage) or
/// transient error is a soft signal worth `1`, while a hard failure
/// (kUnavailable / kCorrupted / kExhausted) jumps the count by
/// `hard_failure_weight` — one declared-dead response trips a Suspect
/// target immediately under the defaults.
///
/// While a breaker is Open, admit() rejects without touching the device and
/// the caller surfaces ErrorCode::kCircuitOpen — deliberately
/// *non-retryable* (common/error.h), so retry loops exit on the first
/// attempt and the retry counter stays flat for the whole open window.
/// That flatness is the short-circuit proof the chaos tests assert.
///
/// The clock is injectable (seconds, monotone) so tests can step time
/// deterministically; the default reads the steady clock.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "obs/metrics.h"

namespace lowdiff::tier {

enum class TargetHealth : std::uint8_t {
  kHealthy = 0,
  kSuspect = 1,   ///< accumulating failures, still admitted
  kOpen = 2,      ///< breaker tripped: all gated traffic short-circuits
  kHalfOpen = 3,  ///< cooldown elapsed: probe traffic admitted
};

inline const char* to_string(TargetHealth h) {
  switch (h) {
    case TargetHealth::kHealthy: return "healthy";
    case TargetHealth::kSuspect: return "suspect";
    case TargetHealth::kOpen: return "open";
    case TargetHealth::kHalfOpen: return "half-open";
  }
  return "unknown";
}

/// How an operation's failure counts toward tripping the breaker.
enum class FailureClass : std::uint8_t {
  kTimeout,    ///< deadline exceeded (outcome ambiguous) — soft, weight 1
  kTransient,  ///< transient I/O error — soft, weight 1
  kHard,       ///< unavailable / corrupted / exhausted — weight hard_failure_weight
};

/// Maps a failed operation's code to its breaker weight class.  kNotFound
/// and kCircuitOpen never reach here (not-found is an answer, not a
/// failure; a short-circuit never touched the device).
FailureClass classify_failure(ErrorCode code);

struct HealthOptions {
  std::uint32_t suspect_after = 2;  ///< weighted failures: Healthy -> Suspect
  std::uint32_t open_after = 4;     ///< weighted failures: -> Open
  std::uint32_t close_after = 2;    ///< consecutive successes: -> Healthy
  double open_cooldown_sec = 0.5;   ///< Open dwell before a probe is admitted
  std::uint32_t hard_failure_weight = 2;
  /// Monotone seconds source.  Tests inject a stepped fake; null means
  /// std::chrono::steady_clock.
  std::function<double()> clock;
};

/// Thread-safe registry of per-target breaker state.  Shared by the
/// Replicator (gating writes, filtering read candidates), the Demoter
/// (skipping open targets), and the QuorumRepairEngine (choosing repair
/// sources/destinations).
class TierHealthMonitor {
 public:
  explicit TierHealthMonitor(HealthOptions options = {});

  /// Gate for *mutating* traffic (write/sync).  Returns true if the op may
  /// proceed.  In Open state with cooldown elapsed, transitions to HalfOpen
  /// and admits exactly that caller as the probe; otherwise Open rejects
  /// and bumps the short-circuit counter.
  bool admit(const std::string& target);

  /// Non-mutating read-side check: anything but a still-cooling Open
  /// breaker is readable.  Reads through a HalfOpen target double as
  /// probes via record_success/record_failure.
  bool readable(const std::string& target) const;

  void record_success(const std::string& target);
  void record_failure(const std::string& target, ErrorCode code);

  TargetHealth state(const std::string& target) const;

  /// Targets currently in the given state (metrics/test introspection).
  std::vector<std::string> targets_in(TargetHealth state) const;

  /// Resets one target to Healthy (operator override after replacing
  /// hardware); unknown names are a no-op.
  void reset(const std::string& target);

  std::uint64_t transitions() const;
  std::uint64_t short_circuits() const;
  std::uint64_t probes() const;

  const HealthOptions& options() const { return options_; }

 private:
  struct Entry {
    TargetHealth state = TargetHealth::kHealthy;
    std::uint32_t failure_score = 0;   ///< weighted, resets on close
    std::uint32_t success_streak = 0;  ///< consecutive, resets on failure
    double opened_at = 0.0;            ///< clock() at last trip
    obs::Gauge* state_gauge = nullptr;
  };

  double now() const { return clock_(); }
  Entry& entry_locked(const std::string& target);
  void transition_locked(const std::string& target, Entry& e, TargetHealth to);
  void on_failure_locked(const std::string& target, Entry& e,
                         std::uint32_t weight);
  void on_success_locked(const std::string& target, Entry& e);

  HealthOptions options_;
  std::function<double()> clock_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;

  obs::Counter& transitions_total_;
  obs::Counter& short_circuit_total_;
  obs::Counter& probes_total_;
  obs::Counter& failures_timeout_total_;
  obs::Counter& failures_transient_total_;
  obs::Counter& failures_hard_total_;
};

}  // namespace lowdiff::tier
