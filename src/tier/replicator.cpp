#include "tier/replicator.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <thread>

#include "common/crc32.h"
#include "common/error.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/atomic_commit.h"

namespace lowdiff::tier {

namespace {

/// Aliveness gate: every operation against a tier whose failure domain is
/// down fails with kUnavailable, even when raced by in-flight replica jobs.
/// (The physical model: requests to a dead server cannot land.)
class GatedBackend final : public StorageBackend {
 public:
  GatedBackend(const TierTopology* topo, const TierTarget* target)
      : topo_(topo), target_(target) {}

  Status write(const std::string& key, std::span<const std::byte> bytes) override {
    if (!alive()) return down();
    return target_->backend->write(key, bytes);
  }
  Result<std::vector<std::byte>> read(const std::string& key) const override {
    if (!alive()) return Result<std::vector<std::byte>>(down());
    return target_->backend->read(key);
  }
  bool exists(const std::string& key) const override {
    return alive() && target_->backend->exists(key);
  }
  void remove(const std::string& key) override {
    if (alive()) target_->backend->remove(key);
  }
  std::vector<std::string> list() const override {
    if (!alive()) return {};
    return target_->backend->list();
  }
  StorageStats stats() const override { return target_->backend->stats(); }
  Status sync() override {
    if (!alive()) return down();
    return target_->backend->sync();
  }

 private:
  bool alive() const { return topo_->alive(*target_); }
  Status down() const {
    return Status(ErrorCode::kUnavailable,
                  "tier " + target_->name + ": failure domain is down");
  }

  const TierTopology* topo_;
  const TierTarget* target_;
};

/// Breaker gate + outcome observer, innermost caller-facing layer of a
/// lane's stack: Monitored(Deadline(Gated(target.backend))).  Mutating ops
/// consult admit() — an Open breaker rejects with non-retryable
/// kCircuitOpen before the device (or its simulated link) is touched, so a
/// retry loop above exits on attempt one.  Every completed op's outcome is
/// reported back to the monitor; kNotFound is an answer, not a failure.
class MonitoredBackend final : public StorageBackend {
 public:
  MonitoredBackend(std::shared_ptr<StorageBackend> inner, std::string name,
                   TierHealthMonitor* health)
      : inner_(std::move(inner)), name_(std::move(name)), health_(health) {}

  Status write(const std::string& key, std::span<const std::byte> bytes) override {
    if (health_ != nullptr && !health_->admit(name_)) {
      return rejected("write", key);
    }
    return observe(inner_->write(key, bytes));
  }
  Result<std::vector<std::byte>> read(const std::string& key) const override {
    // Reads are not admit()-gated — candidate filtering upstream already
    // skipped hard-open lanes, and a read that does land doubles as a
    // breaker probe via the outcome report.
    auto result = inner_->read(key);
    if (health_ != nullptr) {
      if (result.ok() || result.status().code() == ErrorCode::kNotFound) {
        health_->record_success(name_);
      } else {
        health_->record_failure(name_, result.status().code());
      }
    }
    return result;
  }
  bool exists(const std::string& key) const override {
    return inner_->exists(key);  // metadata probe: never gated or scored
  }
  void remove(const std::string& key) override { inner_->remove(key); }
  std::vector<std::string> list() const override { return inner_->list(); }
  StorageStats stats() const override { return inner_->stats(); }
  Status sync() override {
    if (health_ != nullptr && !health_->admit(name_)) {
      return rejected("sync", "<barrier>");
    }
    return observe(inner_->sync());
  }

 private:
  Status observe(Status status) {
    if (health_ != nullptr) {
      if (status.ok() || status.code() == ErrorCode::kNotFound) {
        health_->record_success(name_);
      } else {
        health_->record_failure(name_, status.code());
      }
    }
    return status;
  }
  Status rejected(const char* op, const std::string& key) const {
    return Status(ErrorCode::kCircuitOpen, std::string(op) + " of '" + key +
                                               "' short-circuited: tier " +
                                               name_ + " breaker is open");
  }

  std::shared_ptr<StorageBackend> inner_;
  std::string name_;
  TierHealthMonitor* health_;
};

struct ReplicationObs {
  obs::Counter& records_total;
  obs::Counter& degraded_total;
  obs::Counter& replica_jobs_total;
  obs::Counter& best_effort_total;
  obs::Counter& block_waits_total;
  obs::Counter& failfast_total;

  static ReplicationObs resolve() {
    auto& reg = obs::Registry::global();
    return ReplicationObs{reg.counter("tier.replication.records_total"),
                          reg.counter("tier.replication.degraded_total"),
                          reg.counter("tier.replication.replica_jobs_total"),
                          reg.counter("tier.replication.best_effort_total"),
                          reg.counter("tier.replication.block_waits_total"),
                          reg.counter("tier.replication.failfast_total")};
  }
};

}  // namespace

struct Replicator::Lane {
  TierTarget* target;
  /// Stack, outermost first: io = Monitored(Deadline(Gated(backend))).
  /// All traffic goes through `io`; the inner handles exist only to keep
  /// the layers alive and runtime-tunable.
  std::shared_ptr<GatedBackend> gated;
  std::shared_ptr<DeadlineStorage> deadline;
  std::shared_ptr<MonitoredBackend> io;
  std::unique_ptr<AsyncWriter> writer;
  obs::Counter& writes_total;
  obs::Counter& bytes_written_total;
  obs::Counter& reads_total;
  obs::Counter& bytes_read_total;
  obs::Counter& read_corrupt_total;

  static std::unique_ptr<AsyncWriter> make_writer(
      std::shared_ptr<StorageBackend> backend, const ReplicatorOptions& opt,
      std::size_t lane_index) {
    AsyncWriter::Options w;
    w.max_pending = opt.writer_queue_depth;
    w.retry = opt.replica_retry;
    // Distinct stream per lane: decorrelated jitter, still a pure function
    // of (replica_retry.seed, seed, lane_index).
    w.seed = opt.seed + lane_index;
    // Lane writers run in plain (non-committed) mode, so an enabled
    // pipeline batches their writes without introducing syncs or markers.
    w.pipeline = opt.pipeline;
    return std::make_unique<AsyncWriter>(std::move(backend), w);
  }

  Lane(TierTopology* topo, TierTarget* t, const ReplicatorOptions& opt,
       std::size_t lane_index)
      : target(t),
        gated(std::make_shared<GatedBackend>(topo, t)),
        deadline(std::make_shared<DeadlineStorage>(gated, opt.deadline)),
        io(std::make_shared<MonitoredBackend>(deadline, t->name,
                                              opt.health.get())),
        writer(make_writer(io, opt, lane_index)),
        writes_total(obs::Registry::global().counter("tier." + t->name +
                                                     ".writes_total")),
        bytes_written_total(obs::Registry::global().counter(
            "tier." + t->name + ".bytes_written_total")),
        reads_total(obs::Registry::global().counter("tier." + t->name +
                                                    ".reads_total")),
        bytes_read_total(obs::Registry::global().counter("tier." + t->name +
                                                         ".bytes_read_total")),
        read_corrupt_total(obs::Registry::global().counter(
            "tier." + t->name + ".read_corrupt_total")) {}
};

Replicator::Replicator(std::shared_ptr<TierTopology> topology,
                       PlacementPolicy policy, Options options)
    : topology_(std::move(topology)), policy_(std::move(policy)),
      options_(std::move(options)),
      lag_gauge_(obs::Registry::global().gauge(
          "tier.replication.durability_lag_records")) {
  LOWDIFF_ENSURE(topology_ != nullptr, "null topology");
  LOWDIFF_ENSURE(topology_->size() > 0, "empty topology");
  // Lanes pin TierTarget addresses: the topology must be fully built
  // before a Replicator is constructed over it.
  lanes_.reserve(topology_->size());
  for (std::size_t i = 0; i < topology_->size(); ++i) {
    lanes_.push_back(std::make_unique<Lane>(topology_.get(),
                                            &topology_->target(i), options_, i));
  }
}

Replicator::~Replicator() {
  for (auto& lane : lanes_) lane->writer->shutdown();
}

Replicator::Lane& Replicator::lane_of(const TierTarget& target) const {
  for (const auto& lane : lanes_) {
    if (lane->target == &target) return *lane;
  }
  throw Error("tier target " + target.name + " has no lane",
              std::source_location::current());
}

bool Replicator::lane_admitted(const TierTarget& target) const {
  // Non-mutating planning check: a hard-open breaker excludes the lane.
  // The mutating admit() (probe admission, short-circuit accounting) runs
  // inside MonitoredBackend when the op actually reaches the lane.
  return options_.health == nullptr || options_.health->readable(target.name);
}

Status Replicator::write(const std::string& key,
                         std::span<const std::byte> bytes) {
  LOWDIFF_TRACE_SPAN("tier.replicate", "tier");
  static thread_local ReplicationObs robs = ReplicationObs::resolve();

  auto admitted_plan = [&] {
    PlacementPlan plan = policy_.plan(*topology_, options_.origin_server);
    std::erase_if(plan.targets, [&](const TierTarget* t) {
      return !lane_admitted(*t);
    });
    return plan;
  };
  PlacementPlan plan = admitted_plan();
  const std::size_t quorum = policy_.quorum();

  if (plan.targets.size() < quorum) {
    switch (options_.degrade) {
      case DegradeMode::kFailFast:
        robs.failfast_total.add();
        return Status(ErrorCode::kUnavailable,
                      "quorum unreachable for " + key + ": " +
                          std::to_string(plan.targets.size()) + "/" +
                          std::to_string(quorum) + " targets admitted");
      case DegradeMode::kBlock: {
        // Bounded stall: poll placement until quorum returns.  Breakers
        // half-open and domains restore asynchronously, so replanning is
        // the only way to notice.
        robs.block_waits_total.add();
        Stopwatch sw;
        while (sw.elapsed_sec() < options_.block_timeout_sec) {
          std::this_thread::sleep_for(
              std::chrono::duration<double>(options_.block_poll_sec));
          plan = admitted_plan();
          if (plan.targets.size() >= quorum) break;
        }
        break;  // timed out: fall through to best-effort
      }
      case DegradeMode::kBestEffort:
        break;
    }
  }
  if (plan.targets.empty()) {
    return Status(ErrorCode::kUnavailable,
                  "no admitted tier target to place " + key);
  }

  robs.records_total.add();
  if (plan.degraded) robs.degraded_total.add();
  if (plan.targets.size() < quorum) {
    // Proceeding under-quorum: count it and remember the record so the
    // repair engine (or a later refresh) can confirm when it catches up.
    robs.best_effort_total.add();
    if (!is_commit_marker(key)) note_lag(key);
  }

  // Primary replica: synchronous, its status is the caller's status (the
  // CheckpointStore retry/commit machinery wraps this call).
  Lane& primary = lane_of(*plan.targets[0]);
  const Status status = primary.io->write(key, bytes);
  if (status.ok()) {
    primary.writes_total.add();
    primary.bytes_written_total.add(bytes.size());
  }

  // Secondary replicas: async, FIFO per tier (preserves the commit
  // protocol's data-before-marker order within each tier's manifest).
  // One shared immutable copy of the record serves every lane — ByteBuffer
  // copies alias the same bytes, so fan-out cost is O(1) allocations
  // instead of one full copy per replica.
  if (plan.targets.size() > 1) {
    const ByteBuffer shared(std::vector<std::byte>(bytes.begin(), bytes.end()));
    const std::size_t size = shared.size();
    for (std::size_t i = 1; i < plan.targets.size(); ++i) {
      Lane& lane = lane_of(*plan.targets[i]);
      Lane* lane_ptr = &lane;
      robs.replica_jobs_total.add();
      lane.writer->submit(key, shared, [lane_ptr, size] {
        lane_ptr->writes_total.add();
        lane_ptr->bytes_written_total.add(size);
      });
    }
  }

  {
    std::lock_guard lock(stats_mutex_);
    ++stats_.writes;
    stats_.bytes_written += bytes.size() * plan.targets.size();
  }
  return status;
}

std::vector<Replicator::Lane*> Replicator::read_candidates() const {
  std::vector<Lane*> out;
  out.reserve(lanes_.size());
  for (const auto& lane : lanes_) {
    if (!topology_->alive(*lane->target)) continue;
    // Breaker-open lanes are not candidates at all: they are never touched,
    // never consume a CRC-fallback slot, never show in read totals.
    if (!lane_admitted(*lane->target)) continue;
    out.push_back(lane.get());
  }
  std::sort(out.begin(), out.end(), [](const Lane* a, const Lane* b) {
    return a->target->read_bytes_per_sec > b->target->read_bytes_per_sec;
  });
  return out;
}

Result<std::vector<std::byte>> Replicator::read(const std::string& key) const {
  LOWDIFF_TRACE_SPAN("tier.read", "tier");
  using R = Result<std::vector<std::byte>>;
  const auto candidates = read_candidates();

  auto account = [&](Lane* lane, std::uint64_t bytes) {
    lane->reads_total.add();
    lane->bytes_read_total.add(bytes);
    const double seconds =
        static_cast<double>(bytes) / lane->target->read_bytes_per_sec;
    {
      std::lock_guard lock(totals_mutex_);
      auto& totals = totals_[lane->target->name];
      ++totals.reads;
      totals.bytes += bytes;
      totals.seconds += seconds;
    }
    std::lock_guard lock(stats_mutex_);
    ++stats_.reads;
    stats_.bytes_read += bytes;
  };
  auto note_corrupt = [&](Lane* lane) {
    lane->read_corrupt_total.add();
    std::lock_guard lock(totals_mutex_);
    ++totals_[lane->target->name].corrupt;
  };

  bool saw_corrupt = false;
  Status last_error(ErrorCode::kNotFound, "no surviving tier holds " + key);

  if (is_commit_marker(key)) {
    // Serve the first marker that *parses* — a bit-flipped marker on the
    // fastest tier must not mask a healthy one elsewhere.
    for (Lane* lane : candidates) {
      if (!lane->io->exists(key)) continue;
      auto marker = lane->io->read(key);
      if (!marker.ok()) {
        last_error = marker.status();
        continue;
      }
      if (!parse_commit_marker(*marker).ok()) {
        saw_corrupt = true;
        note_corrupt(lane);
        continue;
      }
      account(lane, marker->size());
      return marker;
    }
  } else {
    // Verified pass: serve from the fastest tier whose replica matches its
    // own tier's commit manifest; fall across tiers on CRC failure.
    std::vector<Lane*> unverified;
    for (Lane* lane : candidates) {
      if (!lane->io->exists(key)) continue;
      auto marker = lane->io->read(commit_marker_key(key));
      if (!marker.ok()) {
        if (marker.status().code() == ErrorCode::kNotFound) {
          unverified.push_back(lane);  // data landed, marker not (yet) there
        } else {
          last_error = marker.status();
        }
        continue;
      }
      auto record = parse_commit_marker(*marker);
      if (!record.ok()) {
        saw_corrupt = true;
        note_corrupt(lane);
        continue;
      }
      auto data = lane->io->read(key);
      if (!data.ok()) {
        if (data.status().retryable()) {
          last_error = data.status();
        } else {
          saw_corrupt = true;
          note_corrupt(lane);
        }
        continue;
      }
      if (data->size() != record->data_len ||
          crc32c(data->data(), data->size()) != record->data_crc) {
        saw_corrupt = true;
        note_corrupt(lane);
        continue;
      }
      account(lane, marker->size() + data->size());
      return data;
    }
    // Unverified fallback: uncommitted objects are still readable (the
    // CheckpointStore layer decides what marker-less data means).
    for (Lane* lane : unverified) {
      auto data = lane->io->read(key);
      if (data.ok()) {
        account(lane, data->size());
        return data;
      }
      last_error = data.status();
    }
  }

  if (saw_corrupt) {
    return R(ErrorCode::kCorrupted,
             "every surviving replica of " + key + " failed validation");
  }
  return R(last_error);
}

bool Replicator::exists(const std::string& key) const {
  for (const auto& lane : lanes_) {
    if (lane->io->exists(key)) return true;
  }
  return false;
}

void Replicator::remove(const std::string& key) {
  // Drain replica queues first so a pending job cannot resurrect the key.
  flush();
  for (const auto& lane : lanes_) lane->io->remove(key);
}

std::vector<std::string> Replicator::list() const {
  std::set<std::string> merged;
  for (const auto& lane : lanes_) {
    for (auto& key : lane->io->list()) merged.insert(std::move(key));
  }
  return {merged.begin(), merged.end()};
}

StorageStats Replicator::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

Status Replicator::sync() {
  flush();
  Status first_error;
  for (const auto& lane : lanes_) {
    if (!topology_->alive(*lane->target)) continue;
    // Skip open breakers: syncing a sick tier is pointless and would turn
    // the whole barrier into an error while healthy tiers are fine.
    if (!lane_admitted(*lane->target)) continue;
    if (Status st = lane->io->sync(); !st.ok() && first_error.ok()) {
      first_error = st;
    }
  }
  refresh_lag();
  return first_error;
}

void Replicator::flush() {
  for (const auto& lane : lanes_) lane->writer->flush();
}

std::size_t Replicator::committed_replicas(const std::string& key) const {
  std::size_t count = 0;
  for (const auto& lane : lanes_) {
    if (lane->io->exists(commit_marker_key(key))) ++count;
  }
  return count;
}

bool Replicator::durable(const std::string& key) const {
  return committed_replicas(key) >= policy_.quorum();
}

std::map<std::string, SourceTotals> Replicator::read_totals() const {
  std::lock_guard lock(totals_mutex_);
  return totals_;
}

std::uint64_t Replicator::failed_replica_writes() const {
  std::uint64_t failed = 0;
  for (const auto& lane : lanes_) failed += lane->writer->failed_jobs();
  return failed;
}

std::uint64_t Replicator::writer_retries() const {
  std::uint64_t retries = 0;
  for (const auto& lane : lanes_) retries += lane->writer->retries();
  return retries;
}

void Replicator::note_lag(const std::string& key) {
  std::lock_guard lock(lag_mutex_);
  lag_keys_.insert(key);
  set_lag_gauge_locked();
}

void Replicator::set_lag_gauge_locked() {
  lag_gauge_.set(static_cast<std::int64_t>(lag_keys_.size()));
}

std::vector<std::string> Replicator::lagging_keys() const {
  std::lock_guard lock(lag_mutex_);
  return {lag_keys_.begin(), lag_keys_.end()};
}

void Replicator::clear_lag(const std::string& key) {
  std::lock_guard lock(lag_mutex_);
  lag_keys_.erase(key);
  set_lag_gauge_locked();
}

void Replicator::refresh_lag() {
  std::vector<std::string> caught_up;
  {
    std::lock_guard lock(lag_mutex_);
    if (lag_keys_.empty()) return;
    caught_up.assign(lag_keys_.begin(), lag_keys_.end());
  }
  // durable() probes lanes without the lag lock held (it takes no locks of
  // its own, but keeping the critical section tiny is free here).
  std::erase_if(caught_up,
                [&](const std::string& key) { return !durable(key); });
  std::lock_guard lock(lag_mutex_);
  for (const auto& key : caught_up) lag_keys_.erase(key);
  set_lag_gauge_locked();
}

}  // namespace lowdiff::tier
