#pragma once

/// \file demoter.h
/// Background migration of cold full checkpoints out of peer memory.
///
/// Peer-memory tiers are small (a slice of another server's RAM), so they
/// fill up with full checkpoints long before the SSD/remote tiers do.  The
/// Demoter keeps each peer-memory tier under a capacity budget by moving
/// the *oldest* committed fulls (cold: recovery always starts from the
/// newest valid full, so older fulls are pure fallback) to the shared
/// remote store.  A record is copied (data, sync, marker — the commit
/// order) before it is dropped from the peer tier, so there is no instant
/// at which the record has fewer committed replicas than before the
/// migration.
///
/// run_once() is the deterministic unit tests/benches drive; start()
/// spawns the background sweeper that production strategies would run.

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "tier/health.h"
#include "tier/topology.h"

namespace lowdiff::tier {

class Demoter {
 public:
  struct Options {
    /// Budget per peer-memory tier (raw resident bytes, markers included).
    std::size_t peer_capacity_bytes = 64ull << 20;
    /// Background sweep cadence for start().
    std::chrono::milliseconds interval{200};
    /// Optional breaker state: tiers with an open breaker are skipped —
    /// counted in Pass::skipped_open and `tier.demoter.skipped_open_total`
    /// — rather than hammered with migration traffic that would fail (or
    /// worse, keep the breaker from ever probing closed).
    std::shared_ptr<TierHealthMonitor> health;
  };

  Demoter(std::shared_ptr<TierTopology> topology, Options options);
  ~Demoter();

  struct Pass {
    std::size_t migrated = 0;      ///< full checkpoints moved
    std::uint64_t bytes = 0;       ///< data+marker bytes shipped
    std::size_t over_budget = 0;   ///< peer tiers still over budget after
    std::size_t skipped_open = 0;  ///< tiers skipped: breaker open
  };

  /// One sweep over every live peer-memory tier.  No-op (over_budget
  /// counts only) when the shared store is absent or down.
  Pass run_once();

  void start();
  void stop();

 private:
  void loop();

  std::shared_ptr<TierTopology> topology_;
  Options options_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool running_ = false;
  std::thread sweeper_;
};

}  // namespace lowdiff::tier
