#include "storage/mem_storage.h"

namespace lowdiff {

Status MemStorage::write(const std::string& key, std::span<const std::byte> bytes) {
  std::lock_guard lock(mutex_);
  objects_[key].assign(bytes.begin(), bytes.end());
  ++stats_.writes;
  stats_.bytes_written += bytes.size();
  return {};
}

Result<std::vector<std::byte>> MemStorage::read(const std::string& key) const {
  std::lock_guard lock(mutex_);
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return Result<std::vector<std::byte>>(ErrorCode::kNotFound, key);
  }
  ++stats_.reads;
  stats_.bytes_read += it->second.size();
  return it->second;
}

bool MemStorage::exists(const std::string& key) const {
  std::lock_guard lock(mutex_);
  return objects_.contains(key);
}

void MemStorage::remove(const std::string& key) {
  std::lock_guard lock(mutex_);
  objects_.erase(key);
}

std::vector<std::string> MemStorage::list() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> keys;
  keys.reserve(objects_.size());
  for (const auto& [k, v] : objects_) keys.push_back(k);
  return keys;
}

StorageStats MemStorage::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::size_t MemStorage::resident_bytes() const {
  std::lock_guard lock(mutex_);
  std::size_t total = 0;
  for (const auto& [k, v] : objects_) total += v.size();
  return total;
}

void MemStorage::clear() {
  std::lock_guard lock(mutex_);
  objects_.clear();
}

}  // namespace lowdiff
