#include "storage/fault_injection.h"

#include <chrono>
#include <thread>

namespace lowdiff {

FaultInjectingStorage::FaultInjectingStorage(
    std::shared_ptr<StorageBackend> inner, FaultSpec spec)
    : inner_(std::move(inner)), spec_(spec), rng_(spec.seed) {
  LOWDIFF_ENSURE(inner_ != nullptr, "null inner backend");
}

bool FaultInjectingStorage::roll(double rate) const {
  if (!armed_ || rate <= 0.0) return false;
  return rng_.uniform_double() < rate;
}

void FaultInjectingStorage::maybe_spike() const {
  double spike_sec = 0.0;
  {
    std::lock_guard lock(mutex_);
    if (roll(spec_.latency_spike_rate)) {
      ++fault_stats_.latency_spikes;
      spike_sec = spec_.latency_spike_sec;  // capture under lock: spec mutable
    }
  }
  if (spike_sec > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(spike_sec));
  }
}

Status FaultInjectingStorage::write(const std::string& key,
                                    std::span<const std::byte> bytes) {
  maybe_spike();
  enum class Fault { kNone, kError, kTorn, kBitFlip };
  Fault fault = Fault::kNone;
  std::size_t torn_len = 0;
  std::size_t flip_bit = 0;
  {
    std::lock_guard lock(mutex_);
    if (roll(spec_.write_error_rate)) {
      ++fault_stats_.write_errors;
      fault = Fault::kError;
    } else if (roll(spec_.torn_write_rate)) {
      ++fault_stats_.torn_writes;
      fault = Fault::kTorn;
      torn_len = bytes.empty()
                     ? 0
                     : static_cast<std::size_t>(rng_.uniform_below(bytes.size()));
    } else if (roll(spec_.bit_flip_rate)) {
      ++fault_stats_.bit_flips;
      fault = Fault::kBitFlip;
      flip_bit = bytes.empty()
                     ? 0
                     : static_cast<std::size_t>(
                           rng_.uniform_below(bytes.size() * 8));
    }
  }
  switch (fault) {
    case Fault::kNone:
      return inner_->write(key, bytes);
    case Fault::kError:
      return Status(ErrorCode::kTransient, "injected write error: " + key);
    case Fault::kTorn: {
      // Crash mid-write: a prefix lands, then the call fails.
      (void)inner_->write(key, bytes.subspan(0, torn_len));
      return Status(ErrorCode::kTransient, "injected torn write: " + key);
    }
    case Fault::kBitFlip: {
      std::vector<std::byte> corrupted(bytes.begin(), bytes.end());
      if (!corrupted.empty()) {
        corrupted[flip_bit / 8] ^= std::byte{1} << (flip_bit % 8);
      }
      return inner_->write(key, corrupted);  // silent corruption
    }
  }
  return {};
}

Result<std::vector<std::byte>> FaultInjectingStorage::read(
    const std::string& key) const {
  maybe_spike();
  {
    std::lock_guard lock(mutex_);
    if (roll(spec_.read_error_rate)) {
      ++fault_stats_.read_errors;
      return Result<std::vector<std::byte>>(
          ErrorCode::kTransient, "injected read error: " + key);
    }
  }
  return inner_->read(key);
}

bool FaultInjectingStorage::exists(const std::string& key) const {
  return inner_->exists(key);
}

void FaultInjectingStorage::remove(const std::string& key) {
  inner_->remove(key);
}

std::vector<std::string> FaultInjectingStorage::list() const {
  return inner_->list();
}

StorageStats FaultInjectingStorage::stats() const { return inner_->stats(); }

FaultStats FaultInjectingStorage::fault_stats() const {
  std::lock_guard lock(mutex_);
  return fault_stats_;
}

void FaultInjectingStorage::set_armed(bool armed) {
  std::lock_guard lock(mutex_);
  armed_ = armed;
}

void FaultInjectingStorage::set_spec(const FaultSpec& spec) {
  std::lock_guard lock(mutex_);
  const std::uint64_t seed = spec_.seed;
  spec_ = spec;
  spec_.seed = seed;  // RNG stream continuity: seed is construction-only
}

FaultSpec FaultInjectingStorage::spec() const {
  std::lock_guard lock(mutex_);
  return spec_;
}

}  // namespace lowdiff
