#include "storage/pipelined_writer.h"

#include <chrono>
#include <utility>

#include "common/error.h"
#include "common/logging.h"
#include "storage/atomic_commit.h"

namespace lowdiff {

namespace {

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

PipelinedWriter::Metrics PipelinedWriter::Metrics::resolve() {
  auto& reg = obs::Registry::global();
  return Metrics{reg.counter("persist.pipeline.records_total"),
                 reg.counter("persist.pipeline.bytes_total"),
                 reg.counter("persist.pipeline.syncs_total"),
                 reg.counter("persist.pipeline.markers_total"),
                 reg.counter("persist.pipeline.failed_total"),
                 reg.counter("persist.pipeline.stall_us_total"),
                 reg.gauge("persist.pipeline.inflight_depth"),
                 reg.gauge("persist.pipeline.window"),
                 reg.gauge("persist.pipeline.bytes_per_sec")};
}

PipelinedWriter::PipelinedWriter(std::shared_ptr<StorageBackend> backend,
                                 Options options)
    : backend_(std::move(backend)),
      options_(options),
      cadence_(options.spec.effective_cadence()),
      metrics_(Metrics::resolve()),
      origin_(std::chrono::steady_clock::now()) {
  LOWDIFF_ENSURE(backend_ != nullptr, "null backend");
  BatchSubmitQueue::Options qopt;
  qopt.sq_depth = options_.spec.sq_depth;
  qopt.retry = options_.retry;
  qopt.seed = options_.seed;
  qopt.staging = options_.staging;
  queue_ = std::make_unique<BatchSubmitQueue>(backend_, qopt);
  metrics_.window.set(static_cast<double>(options_.spec.effective_window()));
}

PipelinedWriter::~PipelinedWriter() {
  const Status st = barrier();
  if (!st.ok()) {
    LOWDIFF_LOG_ERROR("pipelined writer drained with failure: ",
                      st.to_string());
  }
  queue_->close();
}

void PipelinedWriter::put(std::string key, ByteBuffer bytes,
                          std::function<void(const Status&)> on_result) {
  // The CPU half of the overlap: the marker's CRC pass over the payload
  // runs here, before touching the lock, while the device drains earlier
  // records.
  std::vector<std::byte> marker;
  if (options_.committed) marker = make_commit_marker(bytes.cspan());

  std::vector<SubmitOp> batch;
  std::unique_lock lock(mutex_);
  reap_locked(/*block=*/false);
  const std::size_t window = options_.spec.effective_window();
  if (pending_.size() >= window) {
    const auto t0 = std::chrono::steady_clock::now();
    while (pending_.size() >= window) {
      // Force the partial group's sync out only when *every* pending
      // record is still waiting in it — without that flush a window full
      // of ungrouped records would wait forever.  When older records are
      // already past the group stage their sync/marker completions are
      // coming, and flushing here would fragment the current group into
      // per-record syncs, serializing the exact cost the cadence batches.
      if (unsynced_.size() == pending_.size()) flush_group_locked();
      reap_locked(/*block=*/true);
    }
    const std::uint64_t stalled = elapsed_us(t0);
    stats_.stall_us += stalled;
    metrics_.stall_us_total.add(stalled);
  }

  const std::uint64_t seq = next_seq_++;
  Rec rec;
  rec.key = key;
  rec.size = bytes.size();
  rec.marker = std::move(marker);
  rec.on_result = std::move(on_result);
  pending_.emplace(seq, std::move(rec));

  SubmitOp::append_chunks(batch, key, bytes, options_.spec.chunk_bytes,
                          (seq << 2) | kTagData);
  ++stats_.records;
  stats_.bytes += bytes.size();
  bytes_since_origin_ += bytes.size();
  metrics_.records_total.add(1);
  metrics_.bytes_total.add(bytes.size());
  metrics_.inflight_depth.set(static_cast<double>(pending_.size()));

  if (options_.committed) {
    unsynced_.push_back(seq);
    const bool group_full = unsynced_.size() >= cadence_;
    queue_->submit(std::move(batch));
    if (group_full) flush_group_locked();
  } else {
    queue_->submit(std::move(batch));
  }
}

Status PipelinedWriter::barrier() {
  std::unique_lock lock(mutex_);
  flush_group_locked();
  while (!pending_.empty()) {
    reap_locked(/*block=*/true);
    // Sync completions can enqueue marker submissions; a partial group
    // can only exist if puts raced in, which barrier's contract excludes,
    // but flushing again is harmless and keeps the loop total.
    flush_group_locked();
  }
  ++stats_.barriers;
  stats_.retries = queue_->stats().retries;
  const std::uint64_t us = elapsed_us(origin_);
  if (us > 0 && bytes_since_origin_ > 0) {
    metrics_.bytes_per_sec.set(static_cast<double>(bytes_since_origin_) /
                               (static_cast<double>(us) * 1e-6));
  }
  metrics_.inflight_depth.set(0.0);
  return std::exchange(first_error_, Status{});
}

PipelinedWriter::Stats PipelinedWriter::stats() const {
  std::lock_guard lock(mutex_);
  Stats s = stats_;
  s.retries = queue_->stats().retries;
  return s;
}

std::size_t PipelinedWriter::inflight_records() const {
  std::lock_guard lock(mutex_);
  return pending_.size();
}

void PipelinedWriter::flush_group_locked() {
  if (!options_.committed || unsynced_.empty()) return;
  const std::uint64_t gid = next_group_++;
  groups_.emplace(gid, std::move(unsynced_));
  unsynced_.clear();
  std::vector<SubmitOp> batch;
  batch.push_back(SubmitOp::sync_op((gid << 2) | kTagSync));
  queue_->submit(std::move(batch));
  ++stats_.syncs;
  metrics_.syncs_total.add(1);
}

void PipelinedWriter::reap_locked(bool block) {
  const auto completions =
      block ? queue_->complete(1) : queue_->try_complete();
  for (const auto& c : completions) handle_completion_locked(c);
  pop_finished_locked();
  metrics_.inflight_depth.set(static_cast<double>(pending_.size()));
}

void PipelinedWriter::handle_completion_locked(const Completion& c) {
  const std::uint64_t tag = c.user_data & 0x3;
  const std::uint64_t seq = c.user_data >> 2;
  if (tag == kTagData) {
    const auto it = pending_.find(seq);
    LOWDIFF_ENSURE(it != pending_.end(), "data completion for unknown record");
    it->second.data_status = c.status;
    it->second.data_done = true;
    if (!options_.committed) finalize_locked(seq, c.status);
    return;
  }
  if (tag == kTagSync) {
    const auto git = groups_.find(seq);
    LOWDIFF_ENSURE(git != groups_.end(), "sync completion for unknown group");
    const std::vector<std::uint64_t> members = std::move(git->second);
    groups_.erase(git);
    // Data chunks precede the group's sync in queue order, so every
    // member's data status is known here (invariant of FIFO completion).
    std::vector<SubmitOp> markers;
    for (const std::uint64_t m : members) {
      const auto it = pending_.find(m);
      LOWDIFF_ENSURE(it != pending_.end(), "group member missing");
      Rec& rec = it->second;
      LOWDIFF_ENSURE(rec.data_done, "sync completed before member data");
      if (!rec.data_status.ok()) {
        // I3: failed data ⇒ no marker, record stays invisible.
        finalize_locked(m, rec.data_status);
        continue;
      }
      if (!c.status.ok()) {
        // I1/I3: sync failed ⇒ durability unknown ⇒ no marker for the
        // whole group; each record reports the sync failure.
        finalize_locked(m, c.status);
        continue;
      }
      // I2: markers appended in member (== put) order within the group,
      // and groups are processed in completion (== gid) order.
      SubmitOp::append_chunks(markers, commit_marker_key(rec.key),
                              ByteBuffer(std::move(rec.marker)),
                              options_.spec.chunk_bytes, (m << 2) | kTagMarker);
      ++stats_.markers;
      metrics_.markers_total.add(1);
    }
    if (!markers.empty()) queue_->submit(std::move(markers));
    return;
  }
  LOWDIFF_ENSURE(tag == kTagMarker, "unknown completion tag");
  finalize_locked(seq, c.status);
}

void PipelinedWriter::finalize_locked(std::uint64_t seq, Status st) {
  const auto it = pending_.find(seq);
  LOWDIFF_ENSURE(it != pending_.end(), "finalize of unknown record");
  it->second.final_status = std::move(st);
  it->second.done = true;
}

void PipelinedWriter::pop_finished_locked() {
  // Callbacks fire strictly in put() order: only a finished *prefix* pops.
  while (!pending_.empty() && pending_.begin()->second.done) {
    Rec rec = std::move(pending_.begin()->second);
    pending_.erase(pending_.begin());
    if (!rec.final_status.ok()) {
      ++stats_.failed;
      metrics_.failed_total.add(1);
      if (first_error_.ok()) first_error_ = rec.final_status;
      LOWDIFF_LOG_ERROR("pipelined persist of '", rec.key,
                        "' failed: ", rec.final_status.to_string());
    }
    if (rec.on_result) rec.on_result(rec.final_status);
  }
}

}  // namespace lowdiff
