#include "storage/batch_submit.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/error.h"
#include "obs/trace.h"

namespace lowdiff {

SubmitOp SubmitOp::sync_op(std::uint64_t user_data) {
  SubmitOp op;
  op.kind = Kind::kSync;
  op.user_data = user_data;
  return op;
}

void SubmitOp::append_chunks(std::vector<SubmitOp>& out, const std::string& key,
                             const ByteBuffer& record, std::size_t chunk_bytes,
                             std::uint64_t user_data) {
  LOWDIFF_ENSURE(chunk_bytes > 0, "chunk_bytes must be positive");
  const std::size_t total = record.size();
  std::size_t offset = 0;
  do {
    SubmitOp op;
    op.kind = Kind::kChunk;
    op.key = key;
    op.record = record;
    op.offset = offset;
    op.len = std::min(chunk_bytes, total - offset);
    offset += op.len;
    op.last = offset >= total;
    op.user_data = user_data;
    out.push_back(std::move(op));
  } while (offset < total);
}

BatchSubmitQueue::BatchSubmitQueue(std::shared_ptr<StorageBackend> backend,
                                   Options options)
    : backend_(std::move(backend)),
      options_(options),
      staging_(options.staging != nullptr ? options.staging
                                          : &BufferPool::global()) {
  LOWDIFF_ENSURE(backend_ != nullptr, "null backend");
  device_ = std::thread([this] { run_device(); });
}

BatchSubmitQueue::~BatchSubmitQueue() {
  close();
  if (device_.joinable()) device_.join();
}

bool BatchSubmitQueue::submit(std::vector<SubmitOp> batch) {
  if (batch.empty()) return true;
  {
    std::unique_lock lock(mutex_);
    sq_not_full_.wait(lock, [this, &batch] {
      return closed_ || options_.sq_depth == 0 ||
             sq_.size() + batch.size() <= options_.sq_depth ||
             // A batch larger than the whole SQ must still be admittable
             // once the queue is empty, or it would wait forever.
             (sq_.empty() && batch.size() > options_.sq_depth);
    });
    if (closed_) return false;
    for (auto& op : batch) sq_.push_back(std::move(op));
    stats_.ops_submitted += batch.size();
    inflight_ += batch.size();
  }
  sq_not_empty_.notify_one();
  return true;
}

std::vector<Completion> BatchSubmitQueue::complete(std::size_t min_n) {
  std::unique_lock lock(mutex_);
  cq_not_empty_.wait(lock, [this, min_n] {
    return cq_.size() >= min_n || (drained_ && sq_.empty());
  });
  std::vector<Completion> out(cq_.begin(), cq_.end());
  cq_.clear();
  return out;
}

std::vector<Completion> BatchSubmitQueue::try_complete() {
  std::lock_guard lock(mutex_);
  std::vector<Completion> out(cq_.begin(), cq_.end());
  cq_.clear();
  return out;
}

void BatchSubmitQueue::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  sq_not_empty_.notify_all();
  sq_not_full_.notify_all();
}

std::size_t BatchSubmitQueue::inflight() const {
  std::lock_guard lock(mutex_);
  return inflight_;
}

BatchSubmitQueue::Stats BatchSubmitQueue::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void BatchSubmitQueue::run_device() {
  if (obs::Tracer::global().enabled()) {
    obs::Tracer::global().set_thread_name("persist_device");
  }
  Xoshiro256 rng = options_.retry.make_rng(options_.seed);
  for (;;) {
    SubmitOp op;
    {
      std::unique_lock lock(mutex_);
      sq_not_empty_.wait(lock, [this] { return closed_ || !sq_.empty(); });
      if (sq_.empty()) {
        drained_ = true;
        cq_not_empty_.notify_all();
        return;
      }
      op = std::move(sq_.front());
      sq_.pop_front();
    }
    apply(op, rng);
    {
      std::lock_guard lock(mutex_);
      --inflight_;
      ++stats_.ops_applied;
    }
    sq_not_full_.notify_all();
  }
}

void BatchSubmitQueue::apply(SubmitOp& op, Xoshiro256& rng) {
  if (op.kind == SubmitOp::Kind::kSync) {
    std::uint64_t retries = 0;
    const Status st = run_with_retry(
        options_.retry, rng, [this] { return backend_->sync(); }, &retries);
    std::lock_guard lock(mutex_);
    stats_.retries += retries;
    ++stats_.syncs;
    cq_.push_back(Completion{op.user_data, op.kind, st});
    cq_not_empty_.notify_all();
    return;
  }

  // kChunk.  Single-chunk records write zero-copy from the shared payload;
  // multi-chunk records assemble in a pooled staging buffer first (the
  // double-buffer lease: the producer's buffer is releasable as soon as its
  // chunks are copied, while the slow throttled write runs from staging).
  std::span<const std::byte> write_span;
  bool do_write = false;
  if (op.offset == 0 && op.last) {
    write_span = op.record.cspan();
    do_write = true;
    std::lock_guard lock(mutex_);
    ++stats_.zero_copy_writes;
  } else {
    auto it = staging_by_key_.find(op.key);
    if (it == staging_by_key_.end()) {
      StagingEntry entry;
      entry.buf = staging_->acquire(op.record.size());
      it = staging_by_key_.emplace(op.key, std::move(entry)).first;
    }
    StagingEntry& entry = it->second;
    LOWDIFF_ENSURE(op.offset + op.len <= entry.buf.size(),
                   "chunk outside staged record");
    if (op.len > 0) {
      std::memcpy(entry.buf.data() + op.offset, op.record.data() + op.offset,
                  op.len);
    }
    entry.filled += op.len;
    {
      std::lock_guard lock(mutex_);
      ++stats_.staged_copies;
    }
    if (!op.last) return;  // chunk staged; no completion until the last one
    LOWDIFF_ENSURE(entry.filled == entry.buf.size(),
                   "record staged with missing chunks");
    write_span = entry.buf.cspan();
    do_write = true;
  }

  Status st;
  if (do_write) {
    std::uint64_t retries = 0;
    st = run_with_retry(
        options_.retry, rng,
        [this, &op, write_span] { return backend_->write(op.key, write_span); },
        &retries);
    staging_by_key_.erase(op.key);  // releases the staging lease, if any
    std::lock_guard lock(mutex_);
    stats_.retries += retries;
    ++stats_.records_written;
    cq_.push_back(Completion{op.user_data, op.kind, st});
    cq_not_empty_.notify_all();
  }
}

}  // namespace lowdiff
