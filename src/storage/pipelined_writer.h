#pragma once

/// \file pipelined_writer.h
/// FastPersist-style pipelined persist path over a BatchSubmitQueue.
///
/// The serial committed path per record is: frame+CRC → write → sync →
/// marker, with the storage link idle during CPU work and the CPU idle
/// during link work.  PipelinedWriter overlaps them:
///
///   put(i):   computes record i's commit marker (the CRC pass) on the
///             *caller* thread while the device is still writing records
///             < i, then stages record i's data chunks into the submission
///             queue and returns — bounded by the in-flight window.
///   group:    every `records_per_sync` records one sync op is submitted
///             (fsync batching), and once that sync *completes*, the
///             group's commit markers are submitted in commit order.
///
/// Invariants preserved from the serial protocol (DESIGN.md §10):
///   I1  a record's marker is submitted only after the sync covering its
///       data completed successfully — data durable before marker;
///   I2  markers are submitted in put() order — commit order == key order;
///   I3  a record whose data write or covering sync failed never gets a
///       marker — it stays invisible (kNotFound), exactly like a failed
///       committed_write;
///   I4  bytes-on-disk are byte-identical to the serial path (same frames,
///       same marker payloads, same keys).
///
/// Completion callbacks fire in submission order, on whichever thread is
/// inside put()/barrier() reaping completions; they must not call back
/// into this writer.

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/buffer_pool.h"
#include "common/retry.h"
#include "obs/metrics.h"
#include "storage/batch_submit.h"

namespace lowdiff {

/// Opt-in knob set, embedded in AsyncWriter::Options / ReplicatorOptions /
/// strategy options so every persist client can flip the same flag.
struct PipelineSpec {
  /// Off by default: the serial write→sync→marker path stays the baseline.
  bool enabled = false;
  /// Max records accepted but not yet fully committed; put() blocks (and
  /// counts stall time) when the window is full.  0 behaves as 1.
  std::size_t window = 4;
  /// Records covered by one batched sync; 0 means "= window".  Values
  /// above the window are clamped to it — a group larger than the window
  /// could never assemble without deadlocking the window wait.
  std::size_t records_per_sync = 0;
  /// Submission-queue chunk granularity for data records.
  std::size_t chunk_bytes = std::size_t{256} * 1024;
  /// Submission-queue depth handed to BatchSubmitQueue.
  std::size_t sq_depth = 256;

  std::size_t effective_window() const { return window == 0 ? 1 : window; }
  std::size_t effective_cadence() const {
    const std::size_t w = effective_window();
    if (records_per_sync == 0) return w;
    return records_per_sync < w ? records_per_sync : w;
  }
};

class PipelinedWriter {
 public:
  struct Options {
    PipelineSpec spec;
    RetryPolicy retry;
    /// true: full commit protocol (grouped syncs + ordered markers).
    /// false: plain batched writes (Replicator lane mode) — no syncs, no
    /// markers, a record completes with its data write status.
    bool committed = true;
    /// Stream id for the device retry RNG (decorrelates writers).
    std::uint64_t seed = 0x9197e11e;
    /// Staging pool; nullptr = BufferPool::global().
    BufferPool* staging = nullptr;
  };

  struct Stats {
    std::uint64_t records = 0;
    std::uint64_t bytes = 0;
    std::uint64_t syncs = 0;
    std::uint64_t markers = 0;
    std::uint64_t failed = 0;
    std::uint64_t retries = 0;
    std::uint64_t stall_us = 0;   ///< put() time blocked on a full window
    std::uint64_t barriers = 0;
  };

  PipelinedWriter(std::shared_ptr<StorageBackend> backend, Options options);

  PipelinedWriter(const PipelinedWriter&) = delete;
  PipelinedWriter& operator=(const PipelinedWriter&) = delete;

  /// Drains via barrier(), then shuts the device down.
  ~PipelinedWriter();

  /// Stages the commit of (key, bytes).  Marker bytes (including the
  /// payload CRC) are computed here, on the calling thread, overlapping
  /// whatever the device is writing.  Blocks while the in-flight window is
  /// full.  `on_result` fires exactly once with the record's final commit
  /// status, in put() order.
  void put(std::string key, ByteBuffer bytes,
           std::function<void(const Status&)> on_result = {});

  /// Forces a sync over any partial group, submits its markers, and waits
  /// until every record put() so far is finalized.  Returns the first
  /// non-ok record status since the previous barrier (records' individual
  /// statuses still reach their callbacks).  Markers themselves are left
  /// unsynced, matching the serial path — callers needing marker
  /// durability follow with backend->sync(), as strategy flush() does.
  Status barrier();

  Stats stats() const;
  std::size_t inflight_records() const;
  const PipelineSpec& spec() const { return options_.spec; }

 private:
  // user_data encoding: (seq << 2) | tag.
  enum : std::uint64_t { kTagData = 0, kTagMarker = 1, kTagSync = 2 };

  struct Rec {
    std::string key;
    std::size_t size = 0;
    std::vector<std::byte> marker;  // committed mode only
    std::function<void(const Status&)> on_result;
    Status data_status;
    bool data_done = false;
    bool done = false;
    Status final_status;
  };

  struct Metrics {
    obs::Counter& records_total;
    obs::Counter& bytes_total;
    obs::Counter& syncs_total;
    obs::Counter& markers_total;
    obs::Counter& failed_total;
    obs::Counter& stall_us_total;
    obs::Gauge& inflight_depth;
    obs::Gauge& window;
    obs::Gauge& bytes_per_sec;
    static Metrics resolve();
  };

  void reap_locked(bool block);
  void handle_completion_locked(const Completion& c);
  void flush_group_locked();
  void finalize_locked(std::uint64_t seq, Status st);
  void pop_finished_locked();

  std::shared_ptr<StorageBackend> backend_;
  Options options_;
  std::size_t cadence_;
  Metrics metrics_;
  std::unique_ptr<BatchSubmitQueue> queue_;

  mutable std::mutex mutex_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_group_ = 0;
  std::map<std::uint64_t, Rec> pending_;            // seq → record, ordered
  std::vector<std::uint64_t> unsynced_;             // current group members
  std::map<std::uint64_t, std::vector<std::uint64_t>> groups_;  // gid → seqs
  Status first_error_;  // since last barrier
  Stats stats_;
  std::chrono::steady_clock::time_point origin_;
  std::uint64_t bytes_since_origin_ = 0;
};

}  // namespace lowdiff
