#pragma once

/// \file backend.h
/// Storage backend abstraction: where checkpoints are persisted (paper:
/// local SSD or remote storage).  Keys are flat strings managed by the
/// CheckpointStore naming scheme.  Implementations must be thread-safe —
/// the async persist thread and the recovery path may overlap.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"

namespace lowdiff {

struct StorageStats {
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
};

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Atomically replaces the object at `key`.  Expected I/O failures are
  /// reported as a non-ok Status (kTransient / kUnavailable); malformed
  /// keys remain programming errors and throw.
  virtual Status write(const std::string& key, std::span<const std::byte> bytes) = 0;

  /// Returns the object, or a non-ok Status: kNotFound if absent,
  /// kTransient/kUnavailable on I/O faults, kCorrupted on short reads.
  virtual Result<std::vector<std::byte>> read(const std::string& key) const = 0;

  virtual bool exists(const std::string& key) const = 0;
  virtual void remove(const std::string& key) = 0;

  /// Durability barrier (fsync analogue): returns once every write accepted
  /// before the call is stable.  Default no-op for backends that are
  /// synchronously durable.
  virtual Status sync() { return {}; }

  /// All keys, lexicographically sorted (recovery scans the manifest).
  virtual std::vector<std::string> list() const = 0;

  virtual StorageStats stats() const = 0;
};

}  // namespace lowdiff
