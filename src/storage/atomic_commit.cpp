#include "storage/atomic_commit.h"

#include <cstring>

#include "common/crc32.h"
#include "storage/serializer.h"

namespace lowdiff {

namespace {

constexpr std::size_t kMarkerPayloadSize = sizeof(std::uint64_t) + sizeof(std::uint32_t);

}  // namespace

std::vector<std::byte> make_commit_marker(std::span<const std::byte> data) {
  CommitRecord rec;
  rec.data_len = data.size();
  rec.data_crc = crc32c(data.data(), data.size());
  std::vector<std::byte> payload(kMarkerPayloadSize);
  std::memcpy(payload.data(), &rec.data_len, sizeof(rec.data_len));
  std::memcpy(payload.data() + sizeof(rec.data_len), &rec.data_crc,
              sizeof(rec.data_crc));
  return frame(RecordType::kCommitMarker, payload);
}

Result<CommitRecord> parse_commit_marker(std::span<const std::byte> bytes) {
  using R = Result<CommitRecord>;
  try {
    auto [type, payload] = unframe(bytes);
    if (type != RecordType::kCommitMarker || payload.size() != kMarkerPayloadSize) {
      return R(ErrorCode::kCorrupted, "commit marker has wrong type/shape");
    }
    CommitRecord rec;
    std::memcpy(&rec.data_len, payload.data(), sizeof(rec.data_len));
    std::memcpy(&rec.data_crc, payload.data() + sizeof(rec.data_len),
                sizeof(rec.data_crc));
    return rec;
  } catch (const Error& e) {
    return R(ErrorCode::kCorrupted,
             std::string("commit marker unreadable: ") + e.what());
  }
}

Status write_with_retry(StorageBackend& backend, const std::string& key,
                        std::span<const std::byte> bytes,
                        const RetryPolicy& policy, Xoshiro256& rng,
                        std::uint64_t* retries_out) {
  return run_with_retry(
      policy, rng, [&] { return backend.write(key, bytes); }, retries_out);
}

Result<std::vector<std::byte>> read_with_retry(
    const StorageBackend& backend, const std::string& key,
    const RetryPolicy& policy, Xoshiro256& rng, std::uint64_t* retries_out) {
  const int attempts = std::max(1, policy.max_attempts);
  Result<std::vector<std::byte>> result(ErrorCode::kUnavailable, key);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      retry_sleep(policy.delay_sec(attempt - 1, rng));
      if (retries_out) ++*retries_out;
    }
    result = backend.read(key);
    if (result.ok() || !result.status().retryable()) return result;
  }
  return Result<std::vector<std::byte>>(
      ErrorCode::kExhausted, "read retry budget spent for " + key +
                                 " — last: " + result.status().to_string());
}

Status committed_write(StorageBackend& backend, const std::string& key,
                       std::span<const std::byte> bytes,
                       const RetryPolicy& policy, Xoshiro256& rng,
                       std::uint64_t* retries_out) {
  if (Status st = write_with_retry(backend, key, bytes, policy, rng, retries_out);
      !st.ok()) {
    return st;
  }
  if (Status st = backend.sync(); !st.ok()) return st;
  const auto marker = make_commit_marker(bytes);
  return write_with_retry(backend, commit_marker_key(key), marker, policy, rng,
                          retries_out);
}

Result<std::vector<std::byte>> committed_read(
    const StorageBackend& backend, const std::string& key,
    const RetryPolicy& policy, Xoshiro256& rng, std::uint64_t* retries_out) {
  using R = Result<std::vector<std::byte>>;
  auto marker_bytes =
      read_with_retry(backend, commit_marker_key(key), policy, rng, retries_out);
  if (!marker_bytes.ok()) {
    // No marker → the object was never committed; report absence, not
    // corruption (a torn uncommitted write is invisible by design).
    if (marker_bytes.status().code() == ErrorCode::kNotFound) {
      return R(ErrorCode::kNotFound, "uncommitted: " + key);
    }
    return R(marker_bytes.status());
  }
  auto rec = parse_commit_marker(*marker_bytes);
  if (!rec.ok()) return R(rec.status());

  auto data = read_with_retry(backend, key, policy, rng, retries_out);
  if (!data.ok()) {
    if (data.status().code() == ErrorCode::kNotFound) {
      return R(ErrorCode::kCorrupted, "committed but data missing: " + key);
    }
    return R(data.status());
  }
  if (data->size() != rec->data_len) {
    return R(ErrorCode::kCorrupted,
             "torn data for " + key + ": " + std::to_string(data->size()) +
                 " bytes vs committed " + std::to_string(rec->data_len));
  }
  if (crc32c(data->data(), data->size()) != rec->data_crc) {
    return R(ErrorCode::kCorrupted, "CRC mismatch for " + key);
  }
  return data;
}

bool is_committed(const StorageBackend& backend, const std::string& key) {
  return backend.exists(commit_marker_key(key));
}

}  // namespace lowdiff
