#include "storage/async_writer.h"

#include "common/error.h"
#include "common/logging.h"

namespace lowdiff {

AsyncWriter::AsyncWriter(std::shared_ptr<StorageBackend> backend,
                         std::size_t max_pending)
    : backend_(std::move(backend)), queue_(max_pending) {
  LOWDIFF_ENSURE(backend_ != nullptr, "null backend");
  worker_ = std::thread([this] { run(); });
}

AsyncWriter::~AsyncWriter() { shutdown(); }

bool AsyncWriter::submit(std::string key, std::vector<std::byte> bytes,
                         std::function<void()> on_done) {
  auto job = std::make_shared<const Job>(
      Job{std::move(key), std::move(bytes), std::move(on_done)});
  if (!queue_.put(std::move(job))) return false;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool AsyncWriter::try_submit(std::string key, std::vector<std::byte> bytes,
                             std::function<void()> on_done) {
  auto job = std::make_shared<const Job>(
      Job{std::move(key), std::move(bytes), std::move(on_done)});
  if (!queue_.try_put(std::move(job))) return false;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void AsyncWriter::flush() {
  const std::uint64_t target = submitted_.load(std::memory_order_acquire);
  std::unique_lock lock(flush_mutex_);
  flush_cv_.wait(lock, [this, target] {
    return completed_.load(std::memory_order_acquire) >= target;
  });
}

void AsyncWriter::shutdown() {
  queue_.close();
  if (worker_.joinable()) worker_.join();
}

void AsyncWriter::run() {
  for (;;) {
    auto job = queue_.get();
    if (!job.has_value()) return;  // closed and drained
    const Job& j = **job;
    try {
      backend_->write(j.key, j.bytes);
      if (j.on_done) j.on_done();
    } catch (const std::exception& e) {
      LOWDIFF_LOG_ERROR("async write of '", j.key, "' failed: ", e.what());
    }
    completed_.fetch_add(1, std::memory_order_release);
    flush_cv_.notify_all();
  }
}

}  // namespace lowdiff
