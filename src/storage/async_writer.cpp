#include "storage/async_writer.h"

#include <chrono>

#include "common/error.h"
#include "common/logging.h"
#include "obs/trace.h"
#include "storage/atomic_commit.h"

namespace lowdiff {

AsyncWriter::Metrics AsyncWriter::Metrics::resolve() {
  auto& reg = obs::Registry::global();
  return Metrics{reg.counter("writer.jobs_total"),
                 reg.counter("writer.bytes_total"),
                 reg.counter("writer.retries_total"),
                 reg.counter("writer.failed_total"),
                 reg.counter("writer.submit_blocked_us_total"),
                 reg.gauge("writer.queue_depth"),
                 reg.histogram("writer.persist_us")};
}

AsyncWriter::AsyncWriter(std::shared_ptr<StorageBackend> backend,
                         Options options)
    : backend_(std::move(backend)),
      options_(options),
      metrics_(Metrics::resolve()),
      queue_(options.max_pending) {
  LOWDIFF_ENSURE(backend_ != nullptr, "null backend");
  // Queue depth aggregates across every writer instance; the blocked-time
  // counter is the back-pressure stall submitters experience.
  queue_.set_obs({&metrics_.queue_depth, &metrics_.submit_blocked_us});
  worker_ = std::thread([this] { run(); });
}

namespace {

AsyncWriter::Options bounded_options(std::size_t max_pending) {
  AsyncWriter::Options opt;
  opt.max_pending = max_pending;
  return opt;
}

}  // namespace

AsyncWriter::AsyncWriter(std::shared_ptr<StorageBackend> backend)
    : AsyncWriter(std::move(backend), Options{}) {}

AsyncWriter::AsyncWriter(std::shared_ptr<StorageBackend> backend,
                         std::size_t max_pending)
    : AsyncWriter(std::move(backend), bounded_options(max_pending)) {}

AsyncWriter::~AsyncWriter() { shutdown(); }

bool AsyncWriter::submit(std::string key, ByteBuffer bytes,
                         std::function<void()> on_done,
                         std::function<void(const Status&)> on_result) {
  auto job = std::make_shared<const Job>(Job{std::move(key), std::move(bytes),
                                             std::move(on_done),
                                             std::move(on_result)});
  if (!queue_.put(std::move(job))) return false;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool AsyncWriter::try_submit(std::string key, ByteBuffer bytes,
                             std::function<void()> on_done) {
  auto job = std::make_shared<const Job>(
      Job{std::move(key), std::move(bytes), std::move(on_done), {}});
  if (!queue_.try_put(std::move(job))) return false;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void AsyncWriter::flush() {
  const std::uint64_t target = submitted_.load(std::memory_order_acquire);
  std::unique_lock lock(flush_mutex_);
  flush_cv_.wait(lock, [this, target] {
    return completed_.load(std::memory_order_acquire) >= target;
  });
}

void AsyncWriter::shutdown() {
  queue_.close();
  if (worker_.joinable()) worker_.join();
}

void AsyncWriter::run() {
  if (options_.pipeline.enabled) {
    run_pipelined();
    return;
  }
  // The worker thread owns the RNG exclusively; no locking needed.  Seeded
  // from the retry policy so the jitter schedule is injectable end-to-end.
  Xoshiro256 rng = options_.retry.make_rng(options_.seed);
  if (obs::Tracer::global().enabled()) {
    obs::Tracer::global().set_thread_name("async_writer");
  }
  for (;;) {
    auto job = queue_.get();
    if (!job.has_value()) return;  // closed and drained
    const Job& j = **job;
    try {
      obs::TraceSpan span(obs::Tracer::global(), "writer.persist", "writer");
      obs::ScopedTimerUs persist_timer(metrics_.persist_us);
      std::uint64_t job_retries = 0;
      const Status status =
          options_.committed
              ? committed_write(*backend_, j.key, j.bytes.cspan(),
                                options_.retry, rng, &job_retries)
              : write_with_retry(*backend_, j.key, j.bytes.cspan(),
                                 options_.retry, rng, &job_retries);
      retries_.fetch_add(job_retries, std::memory_order_relaxed);
      metrics_.jobs_total.add(1);
      metrics_.bytes_total.add(j.bytes.size());
      metrics_.retries_total.add(job_retries);
      if (j.on_result) j.on_result(status);
      if (status.ok()) {
        if (j.on_done) j.on_done();
      } else {
        failed_.fetch_add(1, std::memory_order_relaxed);
        metrics_.failed_total.add(1);
        LOWDIFF_LOG_ERROR("async write of '", j.key,
                          "' failed: ", status.to_string());
      }
    } catch (const std::exception& e) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      metrics_.failed_total.add(1);
      LOWDIFF_LOG_ERROR("async write of '", j.key, "' threw: ", e.what());
    }
    completed_.fetch_add(1, std::memory_order_release);
    flush_cv_.notify_all();
  }
}

// Pipelined worker loop: jobs drain into a PipelinedWriter as fast as the
// queue yields them (the in-flight window, not the job boundary, paces the
// device), with a pipeline barrier whenever the queue goes momentarily idle
// so flush() keeps its "everything submitted is durable-ordered" meaning.
void AsyncWriter::run_pipelined() {
  if (obs::Tracer::global().enabled()) {
    obs::Tracer::global().set_thread_name("async_writer");
  }
  PipelinedWriter::Options popt;
  popt.spec = options_.pipeline;
  popt.retry = options_.retry;
  popt.committed = options_.committed;
  popt.seed = options_.seed;
  PipelinedWriter pipe(backend_, popt);
  std::uint64_t retries_seen = 0;

  // Completion callbacks run on this thread (inside put/barrier reaps).
  const auto account = [this](const std::shared_ptr<const Job>& job,
                              const std::chrono::steady_clock::time_point t0) {
    return [this, job, t0](const Status& status) {
      metrics_.persist_us.observe(static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
      metrics_.jobs_total.add(1);
      metrics_.bytes_total.add(job->bytes.size());
      try {
        if (job->on_result) job->on_result(status);
        if (status.ok()) {
          if (job->on_done) job->on_done();
        } else {
          failed_.fetch_add(1, std::memory_order_relaxed);
          metrics_.failed_total.add(1);
        }
      } catch (const std::exception& e) {
        LOWDIFF_LOG_ERROR("pipelined write callback for '", job->key,
                          "' threw: ", e.what());
      }
      completed_.fetch_add(1, std::memory_order_release);
      flush_cv_.notify_all();
    };
  };

  for (;;) {
    auto job = queue_.get();
    if (!job.has_value()) break;  // closed and drained
    for (;;) {
      obs::TraceSpan span(obs::Tracer::global(), "writer.persist", "writer");
      const auto t0 = std::chrono::steady_clock::now();
      pipe.put((*job)->key, (*job)->bytes, account(*job, t0));
      auto next = queue_.try_get();
      if (!next.has_value()) break;
      job = std::move(next);
    }
    // Queue idle: drain the window so a lone job is not stranded behind
    // the sync cadence, and flush() waiters can make progress.
    (void)pipe.barrier();
    const std::uint64_t r = pipe.stats().retries;
    retries_.fetch_add(r - retries_seen, std::memory_order_relaxed);
    metrics_.retries_total.add(r - retries_seen);
    retries_seen = r;
  }
  (void)pipe.barrier();
  const std::uint64_t r = pipe.stats().retries;
  retries_.fetch_add(r - retries_seen, std::memory_order_relaxed);
  metrics_.retries_total.add(r - retries_seen);
}

}  // namespace lowdiff
