#pragma once

/// \file file_storage.h
/// Filesystem storage backend: one file per key under a root directory,
/// with write-to-temp + rename for atomicity (a torn checkpoint write must
/// never be visible to recovery).

#include <filesystem>
#include <mutex>

#include "storage/backend.h"

namespace lowdiff {

class FileStorage final : public StorageBackend {
 public:
  /// Creates `root` (and parents) if missing.
  explicit FileStorage(std::filesystem::path root);

  Status write(const std::string& key, std::span<const std::byte> bytes) override;
  Result<std::vector<std::byte>> read(const std::string& key) const override;
  bool exists(const std::string& key) const override;
  void remove(const std::string& key) override;
  std::vector<std::string> list() const override;
  StorageStats stats() const override;

  const std::filesystem::path& root() const { return root_; }

 private:
  std::filesystem::path path_for(const std::string& key) const;

  std::filesystem::path root_;
  mutable std::mutex mutex_;
  mutable StorageStats stats_;
};

}  // namespace lowdiff
