#pragma once

/// \file batch_submit.h
/// io_uring-style async batch submission over a StorageBackend.
///
/// The serial persist path issues one blocking write() per record and one
/// sync() per commit, leaving the (modeled) SSD link idle while the caller
/// computes the next record's CRC and frame.  This queue decouples the two:
/// callers stage ops into a submission queue (`submit(batch)`), a single
/// device thread applies them FIFO, and callers reap results from a
/// completion queue (`complete()` / `try_complete()`), exactly the
/// SQ/CQ shape of io_uring or the FastPersist double-buffered writer.
///
/// Op kinds:
///  - kChunk: a slice of a record.  Chunks are memcpy'd into a staging
///    buffer leased from a BufferPool (the "pinned DMA buffer"); the chunk
///    carrying `last` triggers the actual backend write of the assembled
///    record.  A record that fits one chunk skips staging entirely and
///    writes zero-copy from the shared payload.
///  - kSync: a durability barrier — backend.sync() at this queue position.
///
/// Ordering contract (what the commit protocol builds on):
///  - ops are applied in submission order, one batch is contiguous;
///  - completions are delivered in application order;
///  - a kSync completes only after every earlier op was applied.
///
/// Writes and syncs go through run_with_retry, so transient backend faults
/// are absorbed with the same bounded backoff as the serial path.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/buffer_pool.h"
#include "common/retry.h"
#include "storage/backend.h"

namespace lowdiff {

/// One submission-queue entry.
struct SubmitOp {
  enum class Kind : std::uint8_t { kChunk, kSync };

  Kind kind = Kind::kChunk;
  std::string key;        ///< kChunk: destination object key
  ByteBuffer record;      ///< kChunk: the *whole* record (shared, immutable)
  std::size_t offset = 0; ///< kChunk: this chunk's slice of `record`
  std::size_t len = 0;
  bool last = false;      ///< kChunk: final chunk — write the record
  std::uint64_t user_data = 0;  ///< echoed on the completion

  static SubmitOp sync_op(std::uint64_t user_data);

  /// Appends the chunk ops covering `record` (at least one, even when
  /// empty) to `out`.  Every chunk shares the record's allocation; only the
  /// last one carries `last = true` and produces a completion.
  static void append_chunks(std::vector<SubmitOp>& out, const std::string& key,
                            const ByteBuffer& record, std::size_t chunk_bytes,
                            std::uint64_t user_data);
};

/// Completion-queue entry: one per record (its last chunk) and one per sync.
struct Completion {
  std::uint64_t user_data = 0;
  SubmitOp::Kind kind = SubmitOp::Kind::kChunk;
  Status status;
};

class BatchSubmitQueue {
 public:
  struct Options {
    /// Bound on submitted-but-not-applied ops; submit() blocks beyond it
    /// (device back-pressure).  0 means unbounded.
    std::size_t sq_depth = 256;
    RetryPolicy retry;
    /// Stream id for the device thread's retry-jitter RNG.
    std::uint64_t seed = 0xba7c5b17;
    /// Pool for staging buffers; nullptr = BufferPool::global().
    BufferPool* staging = nullptr;
  };

  struct Stats {
    std::uint64_t ops_submitted = 0;
    std::uint64_t ops_applied = 0;
    std::uint64_t records_written = 0;
    std::uint64_t syncs = 0;
    std::uint64_t retries = 0;
    std::uint64_t staged_copies = 0;    ///< chunks memcpy'd into staging
    std::uint64_t zero_copy_writes = 0; ///< single-chunk records, no staging
  };

  BatchSubmitQueue(std::shared_ptr<StorageBackend> backend, Options options);
  BatchSubmitQueue(const BatchSubmitQueue&) = delete;
  BatchSubmitQueue& operator=(const BatchSubmitQueue&) = delete;

  /// Drains the SQ and joins the device thread.  Unreaped completions are
  /// dropped.
  ~BatchSubmitQueue();

  /// Enqueues the whole batch contiguously, in order.  Blocks while the SQ
  /// is over sq_depth.  Returns false (batch dropped) after close().
  bool submit(std::vector<SubmitOp> batch);

  /// Blocks until at least `min_n` completions are available (or the queue
  /// is closed and fully drained), then returns everything pending.
  std::vector<Completion> complete(std::size_t min_n = 1);

  /// Non-blocking reap of whatever is pending.
  std::vector<Completion> try_complete();

  /// Stops accepting submissions; the device thread finishes what was
  /// queued.  Idempotent.  Completions remain reapable after close.
  void close();

  /// Ops submitted but not yet applied by the device.
  std::size_t inflight() const;

  Stats stats() const;

 private:
  void run_device();
  void apply(SubmitOp& op, Xoshiro256& rng);
  void push_completion(Completion c);

  std::shared_ptr<StorageBackend> backend_;
  Options options_;
  BufferPool* staging_;

  mutable std::mutex mutex_;
  std::condition_variable sq_not_empty_;
  std::condition_variable sq_not_full_;
  std::condition_variable cq_not_empty_;
  std::deque<SubmitOp> sq_;
  std::deque<Completion> cq_;
  bool closed_ = false;
  bool drained_ = false;
  std::size_t inflight_ = 0;
  Stats stats_;

  /// Device-thread-only staging state (no lock needed): partially
  /// assembled records by key.
  struct StagingEntry {
    PooledBuffer buf;
    std::size_t filled = 0;
  };
  std::unordered_map<std::string, StagingEntry> staging_by_key_;

  std::thread device_;
};

}  // namespace lowdiff
