#pragma once

/// \file bandwidth.h
/// Link bandwidth/latency models.
///
/// Two uses: (1) analytic cost in the discrete-event simulator,
/// (2) real-time throttling of byte movement in live experiments.  All
/// live throttles share one global `time_scale` so a whole experiment can
/// be sped up uniformly without changing any ratio — see DESIGN.md §1.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/units.h"
#include "obs/metrics.h"

namespace lowdiff {

/// α–β cost model for a single link.
struct LinkSpec {
  double bytes_per_sec = 1.0 * kGB;
  double latency_sec = 0.0;
  /// Cost of a durability barrier (fsync analogue) on this device.  0 by
  /// default so presets and existing experiments are unchanged; the persist
  /// pipeline benches set it to model per-sync flush cost, which is exactly
  /// what sync batching amortizes.
  double sync_latency_sec = 0.0;

  /// Time (seconds, unscaled) to move `bytes` over this link.
  double transfer_time(std::uint64_t bytes) const {
    return latency_sec + static_cast<double>(bytes) / bytes_per_sec;
  }
};

/// Hardware presets used in the paper's testbed (Table II(a) and §6.1).
namespace links {
/// PCIe Gen4 x16 host<->device, ~25 GB/s effective (A100 servers).
inline LinkSpec pcie_gen4() { return {25.0 * kGB, 5e-6}; }
/// PCIe Gen3 x16, ~12 GB/s effective (V100S servers).
inline LinkSpec pcie_gen3() { return {12.0 * kGB, 5e-6}; }
/// 25 Gbps Mellanox ConnectX-5 InfiniBand.
inline LinkSpec ib_25gbps() { return {gbps_to_bytes_per_sec(25.0), 2e-6}; }
/// NVLink intra-server, ~300 GB/s aggregate.
inline LinkSpec nvlink() { return {300.0 * kGB, 1e-6}; }
/// Samsung SATA/NVMe SSD sustained write, ~2 GB/s.
inline LinkSpec ssd() { return {2.0 * kGB, 50e-6}; }
/// Remote storage over the 25 Gbps fabric.
inline LinkSpec remote_storage() { return {gbps_to_bytes_per_sec(25.0), 200e-6}; }
}  // namespace links

/// Real-time rate limiter over a LinkSpec.  Concurrent callers are
/// serialized FIFO on the link: each transfer begins when the previous one
/// finishes, modeling queueing contention (e.g. many snapshot threads
/// sharing one PCIe link).  The wall-clock cost is
/// transfer_time(bytes) * time_scale.
class Throttler {
 public:
  /// `name` labels this link in the metrics registry (`link.<name>.*`:
  /// bytes moved, wall time callers spent blocked on the token bucket).
  /// An empty name opts out of metrics entirely.
  explicit Throttler(LinkSpec link, double time_scale = 1.0,
                     std::string name = {});

  /// Blocks until the transfer completes.  Returns the *modeled* (unscaled)
  /// transfer time in seconds.
  double acquire(std::uint64_t bytes);

  /// Occupies the link for a fixed modeled duration (no bytes) — used for
  /// sync barriers (link.sync_latency_sec) and other non-transfer costs.
  /// Serialized FIFO with transfers like acquire().  Returns `seconds`.
  double acquire_seconds(double seconds);

  const LinkSpec& link() const { return link_; }
  double time_scale() const { return time_scale_; }

  /// Total modeled seconds of link occupancy so far.
  double busy_time() const;
  std::uint64_t total_bytes() const;

 private:
  double occupy(double cost, std::uint64_t bytes);

  LinkSpec link_;
  double time_scale_;
  obs::Counter* bytes_metric_ = nullptr;
  obs::Histogram* wait_metric_ = nullptr;
  mutable std::mutex mutex_;
  double next_free_ = 0.0;  // wall-clock seconds since construction
  double busy_time_ = 0.0;  // modeled seconds
  std::uint64_t total_bytes_ = 0;
  std::chrono::steady_clock::time_point origin_;
};

}  // namespace lowdiff
