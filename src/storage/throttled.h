#pragma once

/// \file throttled.h
/// Decorator that imposes a Throttler's bandwidth/latency on another
/// backend.  MemStorage + Throttler(ssd) ≈ a fast box writing to an SSD;
/// MemStorage + Throttler(remote_storage) ≈ remote checkpoint storage.

#include <memory>

#include "storage/backend.h"
#include "storage/bandwidth.h"

namespace lowdiff {

class ThrottledStorage final : public StorageBackend {
 public:
  /// `link_name` labels the throttler's metrics (`link.<name>.*`).
  ThrottledStorage(std::shared_ptr<StorageBackend> inner, LinkSpec link,
                   double time_scale = 1.0, std::string link_name = "storage");

  Status write(const std::string& key, std::span<const std::byte> bytes) override;
  Result<std::vector<std::byte>> read(const std::string& key) const override;
  bool exists(const std::string& key) const override;
  void remove(const std::string& key) override;
  std::vector<std::string> list() const override;
  StorageStats stats() const override;
  /// Charges the link's sync_latency_sec (FIFO with transfers) before
  /// forwarding — the per-barrier cost the pipelined persist path batches.
  Status sync() override;

  /// Modeled seconds the storage link has been busy (steady-state
  /// checkpointing overhead measurements read this).
  double busy_time() const { return throttler_->busy_time(); }

  StorageBackend& inner() { return *inner_; }

 private:
  std::shared_ptr<StorageBackend> inner_;
  /// unique_ptr so const read() can acquire; Throttler is internally locked.
  std::unique_ptr<Throttler> throttler_;
};

}  // namespace lowdiff
