#include "storage/throttled.h"

#include "common/error.h"

namespace lowdiff {

ThrottledStorage::ThrottledStorage(std::shared_ptr<StorageBackend> inner,
                                   LinkSpec link, double time_scale,
                                   std::string link_name)
    : inner_(std::move(inner)),
      throttler_(
          std::make_unique<Throttler>(link, time_scale, std::move(link_name))) {
  LOWDIFF_ENSURE(inner_ != nullptr, "null inner backend");
}

Status ThrottledStorage::write(const std::string& key,
                               std::span<const std::byte> bytes) {
  throttler_->acquire(bytes.size());
  return inner_->write(key, bytes);
}

Result<std::vector<std::byte>> ThrottledStorage::read(
    const std::string& key) const {
  auto result = inner_->read(key);
  if (result.has_value()) throttler_->acquire(result->size());
  return result;
}

bool ThrottledStorage::exists(const std::string& key) const {
  return inner_->exists(key);
}

void ThrottledStorage::remove(const std::string& key) { inner_->remove(key); }

std::vector<std::string> ThrottledStorage::list() const { return inner_->list(); }

StorageStats ThrottledStorage::stats() const { return inner_->stats(); }

Status ThrottledStorage::sync() {
  throttler_->acquire_seconds(throttler_->link().sync_latency_sec);
  return inner_->sync();
}

}  // namespace lowdiff
