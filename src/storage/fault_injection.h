#pragma once

/// \file fault_injection.h
/// Decorator that injects storage faults into any backend, seeded for
/// determinism.  Models the failure classes the paper's experiments assume
/// (Exps. 3, 9, 10: Poisson failures against an MTBF) at the I/O level:
///
///   - transient write/read errors (retrying can succeed)
///   - torn writes: a prefix of the object lands, the call reports failure
///     (crash mid-write) — an uncommitted partial object remains
///   - silent bit flips: the write "succeeds" but one bit is corrupted,
///     detectable only by checksum at read/recovery time
///   - latency spikes: the call stalls (exercises queue back-pressure)

#include <cstdint>
#include <memory>
#include <mutex>

#include "common/rng.h"
#include "storage/backend.h"

namespace lowdiff {

/// Per-operation fault probabilities in [0, 1].  All default to zero, so a
/// default-constructed spec is a transparent pass-through.
struct FaultSpec {
  double write_error_rate = 0.0;   ///< write fails cleanly (nothing lands)
  double torn_write_rate = 0.0;    ///< write fails, random prefix lands
  double bit_flip_rate = 0.0;      ///< write "succeeds" with one bit flipped
  double read_error_rate = 0.0;    ///< read fails with kTransient
  double latency_spike_rate = 0.0; ///< op sleeps latency_spike_sec first
  double latency_spike_sec = 0.0;
  std::uint64_t seed = 0x10add1ff;
};

struct FaultStats {
  std::uint64_t write_errors = 0;
  std::uint64_t torn_writes = 0;
  std::uint64_t bit_flips = 0;
  std::uint64_t read_errors = 0;
  std::uint64_t latency_spikes = 0;

  std::uint64_t total() const {
    return write_errors + torn_writes + bit_flips + read_errors;
  }
};

class FaultInjectingStorage final : public StorageBackend {
 public:
  FaultInjectingStorage(std::shared_ptr<StorageBackend> inner, FaultSpec spec);

  Status write(const std::string& key, std::span<const std::byte> bytes) override;
  Result<std::vector<std::byte>> read(const std::string& key) const override;
  bool exists(const std::string& key) const override;
  void remove(const std::string& key) override;
  std::vector<std::string> list() const override;
  StorageStats stats() const override;
  Status sync() override { return inner_->sync(); }

  FaultStats fault_stats() const;

  /// Disables / re-enables injection without reconstructing (recovery
  /// phases of a test can read back cleanly).
  void set_armed(bool armed);

  /// Replaces the fault probabilities mid-run (the chaos switchboard flaps
  /// or slows a live target this way).  The RNG stream is left untouched so
  /// prior draws stay reproducible; the seed field of `spec` is ignored.
  void set_spec(const FaultSpec& spec);
  FaultSpec spec() const;

  StorageBackend& inner() { return *inner_; }

 private:
  bool roll(double rate) const;  // caller holds mutex_
  void maybe_spike() const;      // caller must NOT hold mutex_ during sleep

  std::shared_ptr<StorageBackend> inner_;
  FaultSpec spec_;
  mutable std::mutex mutex_;
  mutable Xoshiro256 rng_;
  mutable FaultStats fault_stats_;
  bool armed_ = true;
};

}  // namespace lowdiff
