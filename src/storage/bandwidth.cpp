#include "storage/bandwidth.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/error.h"

namespace lowdiff {

Throttler::Throttler(LinkSpec link, double time_scale, std::string name)
    : link_(link), time_scale_(time_scale),
      origin_(std::chrono::steady_clock::now()) {
  LOWDIFF_ENSURE(time_scale > 0.0, "time scale must be positive");
  if (!name.empty()) {
    auto& reg = obs::Registry::global();
    bytes_metric_ = &reg.counter("link." + name + ".bytes_total");
    wait_metric_ = &reg.histogram("link." + name + ".wait_us");
  }
}

double Throttler::acquire(std::uint64_t bytes) {
  return occupy(link_.transfer_time(bytes), bytes);
}

double Throttler::acquire_seconds(double seconds) {
  if (seconds <= 0.0) return 0.0;
  return occupy(seconds, 0);
}

double Throttler::occupy(double cost, std::uint64_t bytes) {
  const double wall_cost = cost * time_scale_;              // wall seconds
  double finish;
  double now;
  {
    std::lock_guard lock(mutex_);
    now = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        origin_)
              .count();
    const double start = std::max(now, next_free_);
    finish = start + wall_cost;
    next_free_ = finish;
    busy_time_ += cost;
    total_bytes_ += bytes;
  }
  if (bytes_metric_ != nullptr && bytes > 0) bytes_metric_->add(bytes);
  // Wall time this caller is about to spend blocked: own transfer plus any
  // queueing behind earlier transfers on the link.
  if (wait_metric_ != nullptr && finish > now) {
    wait_metric_->observe((finish - now) * 1e6);
  }
  std::this_thread::sleep_until(
      origin_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(finish)));
  return cost;
}

double Throttler::busy_time() const {
  std::lock_guard lock(mutex_);
  return busy_time_;
}

std::uint64_t Throttler::total_bytes() const {
  std::lock_guard lock(mutex_);
  return total_bytes_;
}

}  // namespace lowdiff
