#pragma once

/// \file stacking.h
/// Canonical decorator stacking order for simulated storage backends.
///
/// The physical model is: bytes traverse a *link* (PCIe / network / SSD
/// bus), then land on a *device* that may misbehave.  The decorators must
/// therefore stack as
///
///     ThrottledStorage( FaultInjectingStorage( MemStorage ) )
///                ^link                ^device
///
/// i.e. faults are injected *after* throttling on the write path:
///   - a torn write consumes full link bandwidth before the device tears it
///     (the bytes really crossed the wire);
///   - a latency-spike fault (device stall) adds to the bandwidth wait
///     instead of hiding inside it — the two compose additively;
///   - a clean read error costs no read bandwidth (ThrottledStorage only
///     charges the link for bytes actually returned).
///
/// Stacking the other way around (faults outside the throttle) would let a
/// torn write skip the link entirely and would serialize latency spikes
/// *before* the token-bucket wait, under-counting link occupancy.  The
/// composition is pinned by `StorageStacking.*` in tests/test_storage.cpp.

#include <memory>
#include <string>

#include "storage/fault_injection.h"
#include "storage/mem_storage.h"
#include "storage/throttled.h"

namespace lowdiff {

/// Handles into every layer of a canonical Throttled(FaultInjecting(Mem))
/// stack.  `root` is what callers read/write through; `faults` and `base`
/// stay accessible for test/scenario control (arming faults, corrupting or
/// wiping raw objects).
struct StackedBackend {
  std::shared_ptr<ThrottledStorage> root;
  std::shared_ptr<FaultInjectingStorage> faults;
  std::shared_ptr<MemStorage> base;
};

/// Builds the canonical stack over a fresh MemStorage.
inline StackedBackend make_stacked_backend(LinkSpec link, FaultSpec faults = {},
                                           double time_scale = 1.0,
                                           std::string link_name = "storage") {
  StackedBackend stack;
  stack.base = std::make_shared<MemStorage>();
  stack.faults = std::make_shared<FaultInjectingStorage>(stack.base, faults);
  stack.root = std::make_shared<ThrottledStorage>(stack.faults, link, time_scale,
                                                  std::move(link_name));
  return stack;
}

}  // namespace lowdiff
