#pragma once

/// \file atomic_commit.h
/// Manifest-commit protocol for atomic checkpoint writes.
///
/// A data object at `key` is only *visible* once a commit marker exists at
/// `commit/<key>`.  The protocol is write-data → sync (fsync analogue) →
/// write-marker; the marker records the data length and CRC32C, so a reader
/// can detect torn or bit-flipped data even when the backend lies about the
/// write having succeeded.  Readers treat marker-less data as absent
/// (kNotFound) and marker/data mismatches as kCorrupted.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/retry.h"
#include "storage/backend.h"

namespace lowdiff {

inline constexpr std::string_view kCommitPrefix = "commit/";

inline std::string commit_marker_key(const std::string& data_key) {
  return std::string(kCommitPrefix) + data_key;
}

inline bool is_commit_marker(const std::string& key) {
  return key.starts_with(kCommitPrefix);
}

/// Inverse of commit_marker_key (caller checks is_commit_marker first).
inline std::string data_key_of_marker(const std::string& marker_key) {
  return marker_key.substr(kCommitPrefix.size());
}

/// Integrity metadata the marker carries about its data object.
struct CommitRecord {
  std::uint64_t data_len = 0;
  std::uint32_t data_crc = 0;
};

/// Serializes a marker for `data` (framed as RecordType::kCommitMarker).
std::vector<std::byte> make_commit_marker(std::span<const std::byte> data);

/// Parses a marker object; kCorrupted if the frame or shape is bad.
Result<CommitRecord> parse_commit_marker(std::span<const std::byte> bytes);

/// write() with bounded-backoff retries on retryable failures.
Status write_with_retry(StorageBackend& backend, const std::string& key,
                        std::span<const std::byte> bytes,
                        const RetryPolicy& policy, Xoshiro256& rng,
                        std::uint64_t* retries_out = nullptr);

/// read() with bounded-backoff retries on retryable failures.
Result<std::vector<std::byte>> read_with_retry(
    const StorageBackend& backend, const std::string& key,
    const RetryPolicy& policy, Xoshiro256& rng,
    std::uint64_t* retries_out = nullptr);

/// Full commit protocol: data (retried) → sync → marker (retried).
/// On failure the data object may exist but stays uncommitted/invisible.
Status committed_write(StorageBackend& backend, const std::string& key,
                       std::span<const std::byte> bytes,
                       const RetryPolicy& policy, Xoshiro256& rng,
                       std::uint64_t* retries_out = nullptr);

/// Reads a committed object: kNotFound without a marker, kCorrupted when
/// the data fails the marker's length/CRC check.
Result<std::vector<std::byte>> committed_read(
    const StorageBackend& backend, const std::string& key,
    const RetryPolicy& policy, Xoshiro256& rng,
    std::uint64_t* retries_out = nullptr);

/// True iff a commit marker exists for `key`.
bool is_committed(const StorageBackend& backend, const std::string& key);

}  // namespace lowdiff
