#include "storage/deadline.h"

#include "common/error.h"
#include "common/stopwatch.h"

namespace lowdiff {

DeadlineStorage::DeadlineStorage(std::shared_ptr<StorageBackend> inner,
                                 DeadlineSpec spec)
    : inner_(std::move(inner)), spec_(spec) {
  LOWDIFF_ENSURE(inner_ != nullptr, "null inner backend");
}

void DeadlineStorage::set_spec(DeadlineSpec spec) {
  std::lock_guard lock(spec_mutex_);
  spec_ = spec;
}

DeadlineSpec DeadlineStorage::spec() const {
  std::lock_guard lock(spec_mutex_);
  return spec_;
}

double DeadlineStorage::deadline_for_write() const {
  std::lock_guard lock(spec_mutex_);
  return spec_.write_deadline_sec;
}

double DeadlineStorage::deadline_for_read() const {
  std::lock_guard lock(spec_mutex_);
  return spec_.read_deadline_sec;
}

double DeadlineStorage::deadline_for_sync() const {
  std::lock_guard lock(spec_mutex_);
  return spec_.sync_deadline_sec;
}

Status DeadlineStorage::timed_out(const char* op, const std::string& key,
                                  double elapsed, double deadline) const {
  timeouts_.fetch_add(1, std::memory_order_relaxed);
  char detail[96];
  std::snprintf(detail, sizeof(detail), " took %.1fms (deadline %.1fms)",
                elapsed * 1e3, deadline * 1e3);
  return Status(ErrorCode::kTimeout, std::string(op) + " of '" + key + "'" +
                                         detail);
}

Status DeadlineStorage::write(const std::string& key,
                              std::span<const std::byte> bytes) {
  const double deadline = deadline_for_write();
  if (deadline <= 0.0) return inner_->write(key, bytes);
  Stopwatch sw;
  const Status st = inner_->write(key, bytes);
  const double elapsed = sw.elapsed_sec();
  if (elapsed > deadline) return timed_out("write", key, elapsed, deadline);
  return st;
}

Result<std::vector<std::byte>> DeadlineStorage::read(
    const std::string& key) const {
  const double deadline = deadline_for_read();
  if (deadline <= 0.0) return inner_->read(key);
  Stopwatch sw;
  auto result = inner_->read(key);
  const double elapsed = sw.elapsed_sec();
  if (elapsed > deadline) {
    return Result<std::vector<std::byte>>(
        timed_out("read", key, elapsed, deadline));
  }
  return result;
}

bool DeadlineStorage::exists(const std::string& key) const {
  return inner_->exists(key);
}

void DeadlineStorage::remove(const std::string& key) { inner_->remove(key); }

std::vector<std::string> DeadlineStorage::list() const {
  return inner_->list();
}

StorageStats DeadlineStorage::stats() const { return inner_->stats(); }

Status DeadlineStorage::sync() {
  const double deadline = deadline_for_sync();
  if (deadline <= 0.0) return inner_->sync();
  Stopwatch sw;
  const Status st = inner_->sync();
  const double elapsed = sw.elapsed_sec();
  if (elapsed > deadline) return timed_out("sync", "<barrier>", elapsed, deadline);
  return st;
}

}  // namespace lowdiff
