#include "storage/file_storage.h"

#include <algorithm>
#include <fstream>

#include "common/error.h"

namespace lowdiff {
namespace fs = std::filesystem;

namespace {

/// Keys may contain '/' (logical hierarchy); everything else must be a
/// conservative portable-filename character.
std::string sanitize(const std::string& key) {
  LOWDIFF_ENSURE(!key.empty(), "empty storage key");
  std::string out;
  out.reserve(key.size());
  for (char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '_' ||
                    c == '/';
    out.push_back(ok ? c : '_');
  }
  LOWDIFF_ENSURE(out.find("..") == std::string::npos, "path traversal in key");
  return out;
}

}  // namespace

FileStorage::FileStorage(fs::path root) : root_(std::move(root)) {
  fs::create_directories(root_);
}

fs::path FileStorage::path_for(const std::string& key) const {
  return root_ / sanitize(key);
}

Status FileStorage::write(const std::string& key, std::span<const std::byte> bytes) {
  const fs::path target = path_for(key);
  std::error_code ec;
  fs::create_directories(target.parent_path(), ec);
  if (ec) {
    return Status(ErrorCode::kUnavailable,
                  "mkdir " + target.parent_path().string() + ": " + ec.message());
  }
  const fs::path tmp = target.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      return Status(ErrorCode::kUnavailable, "cannot open " + tmp.string());
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out.good()) {
      return Status(ErrorCode::kUnavailable, "short write to " + tmp.string());
    }
  }
  fs::rename(tmp, target, ec);
  if (ec) {
    return Status(ErrorCode::kUnavailable,
                  "rename " + tmp.string() + ": " + ec.message());
  }
  std::lock_guard lock(mutex_);
  ++stats_.writes;
  stats_.bytes_written += bytes.size();
  return {};
}

Result<std::vector<std::byte>> FileStorage::read(const std::string& key) const {
  using R = Result<std::vector<std::byte>>;
  const fs::path target = path_for(key);
  std::ifstream in(target, std::ios::binary | std::ios::ate);
  if (!in.good()) return R(ErrorCode::kNotFound, target.string());
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::byte> bytes(size);
  in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(size));
  if (!in.good() && size != 0) {
    return R(ErrorCode::kCorrupted, "short read from " + target.string());
  }
  std::lock_guard lock(mutex_);
  ++stats_.reads;
  stats_.bytes_read += size;
  return bytes;
}

bool FileStorage::exists(const std::string& key) const {
  return fs::exists(path_for(key));
}

void FileStorage::remove(const std::string& key) {
  fs::remove(path_for(key));
}

std::vector<std::string> FileStorage::list() const {
  std::vector<std::string> keys;
  if (!fs::exists(root_)) return keys;
  for (const auto& entry : fs::recursive_directory_iterator(root_)) {
    if (!entry.is_regular_file()) continue;
    const auto rel = fs::relative(entry.path(), root_).generic_string();
    if (rel.ends_with(".tmp")) continue;
    keys.push_back(rel);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

StorageStats FileStorage::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace lowdiff
