#pragma once

/// \file deadline.h
/// Deadline-aware storage decorator: the failure *detector* of the
/// self-healing runtime (DESIGN.md §9).
///
/// A dead target fails fast (kUnavailable from the aliveness gate), but a
/// *sick* target — saturated link, GC pause, degrading device — just gets
/// slower, and a caller that waits indefinitely converts one slow replica
/// into a training stall.  DeadlineStorage bounds every delegated operation
/// with a per-class deadline: an op that takes longer than its deadline is
/// reported as ErrorCode::kTimeout even when the inner backend eventually
/// returned ok.
///
/// Semantics of a write timeout are deliberately ambiguous-outcome: the
/// bytes may or may not have landed (exactly like a timed-out RPC).  That
/// is safe under the commit protocol — an uncommitted data object is
/// invisible, and markers are CRC-validated — so callers treat kTimeout as
/// retryable while health monitors treat it as a *soft* failure signal
/// (timeout vs. transient vs. hard classification in tier/health.h).
///
/// The wrapper is synchronous (it cannot abort an in-flight call — the
/// backends here are in-process), so it detects lateness rather than
/// enforcing cancellation; the circuit breaker above it is what stops the
/// next call from paying the same price.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "storage/backend.h"

namespace lowdiff {

/// Per-operation-class deadlines in seconds.  0 disables the class.
struct DeadlineSpec {
  double write_deadline_sec = 0.0;
  double read_deadline_sec = 0.0;
  double sync_deadline_sec = 0.0;

  bool enabled() const {
    return write_deadline_sec > 0.0 || read_deadline_sec > 0.0 ||
           sync_deadline_sec > 0.0;
  }
};

class DeadlineStorage final : public StorageBackend {
 public:
  DeadlineStorage(std::shared_ptr<StorageBackend> inner, DeadlineSpec spec);

  Status write(const std::string& key, std::span<const std::byte> bytes) override;
  Result<std::vector<std::byte>> read(const std::string& key) const override;
  bool exists(const std::string& key) const override;
  void remove(const std::string& key) override;
  std::vector<std::string> list() const override;
  StorageStats stats() const override;
  Status sync() override;

  /// Runtime-adjustable (chaos scenarios tighten/relax deadlines mid-run).
  void set_spec(DeadlineSpec spec);
  DeadlineSpec spec() const;

  /// Operations converted to kTimeout so far (reads + writes + syncs).
  std::uint64_t timeouts() const {
    return timeouts_.load(std::memory_order_relaxed);
  }

  StorageBackend& inner() { return *inner_; }

 private:
  double deadline_for_write() const;
  double deadline_for_read() const;
  double deadline_for_sync() const;
  Status timed_out(const char* op, const std::string& key, double elapsed,
                   double deadline) const;

  std::shared_ptr<StorageBackend> inner_;
  mutable std::mutex spec_mutex_;
  DeadlineSpec spec_;
  mutable std::atomic<std::uint64_t> timeouts_{0};
};

}  // namespace lowdiff
