#include "storage/serializer.h"

#include <cstring>

#include "common/crc32.h"
#include "common/error.h"
#include "tensor/ops.h"

namespace lowdiff {
namespace {

constexpr char kMagic[4] = {'L', 'D', 'C', 'K'};
constexpr std::uint16_t kVersion = 1;
constexpr std::size_t kHeaderSize = 4 + 2 + 1 + 8 + 4;

template <typename T>
void append(std::vector<std::byte>& out, const T& value) {
  const auto* p = reinterpret_cast<const std::byte*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T read_at(std::span<const std::byte> bytes, std::size_t offset) {
  LOWDIFF_ENSURE(offset + sizeof(T) <= bytes.size(), "truncated record");
  T value;
  std::memcpy(&value, bytes.data() + offset, sizeof(T));
  return value;
}

void append_floats(std::vector<std::byte>& out, std::span<const float> v) {
  append(out, static_cast<std::uint64_t>(v.size()));
  const auto* p = reinterpret_cast<const std::byte*>(v.data());
  out.insert(out.end(), p, p + v.size_bytes());
}

std::size_t read_floats(std::span<const std::byte> bytes, std::size_t pos,
                        std::span<float> out) {
  const auto n = read_at<std::uint64_t>(bytes, pos);
  pos += sizeof(std::uint64_t);
  LOWDIFF_ENSURE(n == out.size(), "float block size mismatch");
  LOWDIFF_ENSURE(pos + n * sizeof(float) <= bytes.size(), "truncated float block");
  if (n > 0) std::memcpy(out.data(), bytes.data() + pos, n * sizeof(float));
  return pos + n * sizeof(float);
}

}  // namespace

std::vector<std::byte> frame(RecordType type, std::span<const std::byte> payload) {
  std::vector<std::byte> out;
  out.reserve(kHeaderSize + payload.size());
  out.insert(out.end(), reinterpret_cast<const std::byte*>(kMagic),
             reinterpret_cast<const std::byte*>(kMagic) + 4);
  append(out, kVersion);
  append(out, static_cast<std::uint8_t>(type));
  append(out, static_cast<std::uint64_t>(payload.size()));
  append(out, crc32c(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::pair<RecordType, std::vector<std::byte>> unframe(
    std::span<const std::byte> bytes) {
  LOWDIFF_ENSURE(bytes.size() >= kHeaderSize, "record shorter than header");
  LOWDIFF_ENSURE(std::memcmp(bytes.data(), kMagic, 4) == 0, "bad checkpoint magic");
  const auto version = read_at<std::uint16_t>(bytes, 4);
  LOWDIFF_ENSURE(version == kVersion, "unsupported checkpoint version");
  const auto type = static_cast<RecordType>(read_at<std::uint8_t>(bytes, 6));
  const auto payload_len = read_at<std::uint64_t>(bytes, 7);
  const auto expected_crc = read_at<std::uint32_t>(bytes, 15);
  LOWDIFF_ENSURE(bytes.size() == kHeaderSize + payload_len,
                 "record length mismatch");
  const auto payload = bytes.subspan(kHeaderSize);
  LOWDIFF_ENSURE(crc32c(payload.data(), payload.size()) == expected_crc,
                 "checkpoint CRC mismatch (corrupt or torn write)");
  return {type, std::vector<std::byte>(payload.begin(), payload.end())};
}

std::vector<std::byte> serialize_model_state(const ModelState& state) {
  std::vector<std::byte> payload;
  payload.reserve(state.byte_size() + 64);
  append(payload, state.step());
  append(payload, static_cast<std::uint64_t>(state.param_count()));
  append_floats(payload, state.params().span());
  append_floats(payload, state.moment1().span());
  append_floats(payload, state.moment2().span());
  return frame(RecordType::kFullCheckpoint, payload);
}

ModelState deserialize_model_state(std::span<const std::byte> bytes,
                                   const ModelSpec& spec) {
  auto [type, payload] = unframe(bytes);
  LOWDIFF_ENSURE(type == RecordType::kFullCheckpoint, "not a full checkpoint");
  std::size_t pos = 0;
  const auto step = read_at<std::uint64_t>(payload, pos);
  pos += sizeof(std::uint64_t);
  const auto count = read_at<std::uint64_t>(payload, pos);
  pos += sizeof(std::uint64_t);
  LOWDIFF_ENSURE(count == spec.param_count(),
                 "checkpoint parameter count does not match model spec");
  ModelState state(spec);
  pos = read_floats(payload, pos, state.params().span());
  pos = read_floats(payload, pos, state.moment1().span());
  pos = read_floats(payload, pos, state.moment2().span());
  LOWDIFF_ENSURE(pos == payload.size(), "trailing bytes in full checkpoint");
  state.set_step(step);
  return state;
}

std::vector<std::byte> serialize_diff(const CompressedGrad& grad) {
  return frame(RecordType::kDiffCheckpoint, grad.serialize());
}

CompressedGrad deserialize_diff(std::span<const std::byte> bytes) {
  auto [type, payload] = unframe(bytes);
  LOWDIFF_ENSURE(type == RecordType::kDiffCheckpoint, "not a differential checkpoint");
  return CompressedGrad::deserialize(payload);
}

std::vector<std::byte> serialize_batch(const BatchedGrad& batch) {
  return frame(RecordType::kBatchedDiff, batch.serialize());
}

BatchedGrad deserialize_batch(std::span<const std::byte> bytes) {
  auto [type, payload] = unframe(bytes);
  LOWDIFF_ENSURE(type == RecordType::kBatchedDiff, "not a batched differential");
  return BatchedGrad::deserialize(payload);
}

}  // namespace lowdiff
