#include "storage/serializer.h"

#include <cstring>

#include "common/crc32.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "tensor/ops.h"

namespace lowdiff {
namespace {

constexpr char kMagic[4] = {'L', 'D', 'C', 'K'};
constexpr std::uint16_t kVersion = 1;
constexpr std::size_t kHeaderSize = 4 + 2 + 1 + 8 + 4;
constexpr std::size_t kCrcOffset = 4 + 2 + 1 + 8;

template <typename T>
T read_at(std::span<const std::byte> bytes, std::size_t offset) {
  LOWDIFF_ENSURE(offset + sizeof(T) <= bytes.size(), "truncated record");
  T value;
  std::memcpy(&value, bytes.data() + offset, sizeof(T));
  return value;
}

/// Cursor over a pre-sized destination span (all serializers size exactly
/// before writing, validated once at the end).
class SpanWriter {
 public:
  explicit SpanWriter(std::span<std::byte> out) : out_(out) {}

  template <typename T>
  void write(const T& value) {
    std::memcpy(out_.data() + pos_, &value, sizeof(T));
    pos_ += sizeof(T);
  }

  void write_floats(std::span<const float> v) {
    write(static_cast<std::uint64_t>(v.size()));
    if (!v.empty()) {
      std::memcpy(out_.data() + pos_, v.data(), v.size_bytes());
      pos_ += v.size_bytes();
    }
  }

  std::size_t written() const { return pos_; }

 private:
  std::span<std::byte> out_;
  std::size_t pos_ = 0;
};

std::size_t read_floats(std::span<const std::byte> bytes, std::size_t pos,
                        std::span<float> out) {
  const auto n = read_at<std::uint64_t>(bytes, pos);
  pos += sizeof(std::uint64_t);
  LOWDIFF_ENSURE(n == out.size(), "float block size mismatch");
  LOWDIFF_ENSURE(pos + n * sizeof(float) <= bytes.size(), "truncated float block");
  if (n > 0) std::memcpy(out.data(), bytes.data() + pos, n * sizeof(float));
  return pos + n * sizeof(float);
}

std::size_t model_state_payload_size(const ModelState& state) {
  return 2 * sizeof(std::uint64_t) +                              // step, count
         3 * sizeof(std::uint64_t) +                              // float prefixes
         state.params().span().size_bytes() +
         state.moment1().span().size_bytes() +
         state.moment2().span().size_bytes();
}

void write_model_state_payload(std::span<std::byte> payload,
                               const ModelState& state) {
  SpanWriter w(payload);
  w.write(state.step());
  w.write(static_cast<std::uint64_t>(state.param_count()));
  w.write_floats(state.params().span());
  w.write_floats(state.moment1().span());
  w.write_floats(state.moment2().span());
  LOWDIFF_ENSURE(w.written() == payload.size(), "model state payload size mismatch");
}

}  // namespace

std::size_t framed_size(std::size_t payload_len) {
  return kHeaderSize + payload_len;
}

std::span<std::byte> frame_prepare(std::span<std::byte> record, RecordType type) {
  LOWDIFF_ENSURE(record.size() >= kHeaderSize, "frame buffer shorter than header");
  SpanWriter w(record);
  w.write(kMagic);
  w.write(kVersion);
  w.write(static_cast<std::uint8_t>(type));
  w.write(static_cast<std::uint64_t>(record.size() - kHeaderSize));
  w.write(std::uint32_t{0});  // CRC patched by frame_seal
  return record.subspan(kHeaderSize);
}

void frame_seal(std::span<std::byte> record, ThreadPool* pool) {
  LOWDIFF_ENSURE(record.size() >= kHeaderSize, "frame buffer shorter than header");
  const auto payload = record.subspan(kHeaderSize);
  const std::uint32_t crc = crc32c_chunked(payload.data(), payload.size(), pool);
  std::memcpy(record.data() + kCrcOffset, &crc, sizeof(crc));
}

std::vector<std::byte> frame(RecordType type, std::span<const std::byte> payload) {
  std::vector<std::byte> out(framed_size(payload.size()));
  auto dst = frame_prepare(out, type);
  if (!payload.empty()) std::memcpy(dst.data(), payload.data(), payload.size());
  frame_seal(out);
  return out;
}

std::pair<RecordType, std::vector<std::byte>> unframe(
    std::span<const std::byte> bytes) {
  LOWDIFF_ENSURE(bytes.size() >= kHeaderSize, "record shorter than header");
  LOWDIFF_ENSURE(std::memcmp(bytes.data(), kMagic, 4) == 0, "bad checkpoint magic");
  const auto version = read_at<std::uint16_t>(bytes, 4);
  LOWDIFF_ENSURE(version == kVersion, "unsupported checkpoint version");
  const auto type = static_cast<RecordType>(read_at<std::uint8_t>(bytes, 6));
  const auto payload_len = read_at<std::uint64_t>(bytes, 7);
  const auto expected_crc = read_at<std::uint32_t>(bytes, 15);
  LOWDIFF_ENSURE(bytes.size() == kHeaderSize + payload_len,
                 "record length mismatch");
  const auto payload = bytes.subspan(kHeaderSize);
  LOWDIFF_ENSURE(crc32c(payload.data(), payload.size()) == expected_crc,
                 "checkpoint CRC mismatch (corrupt or torn write)");
  return {type, std::vector<std::byte>(payload.begin(), payload.end())};
}

std::vector<std::byte> serialize_model_state(const ModelState& state) {
  std::vector<std::byte> out(framed_size(model_state_payload_size(state)));
  write_model_state_payload(frame_prepare(out, RecordType::kFullCheckpoint), state);
  frame_seal(out);
  return out;
}

PooledBuffer serialize_model_state(const ModelState& state, BufferPool& pool,
                                   ThreadPool* crc_pool) {
  PooledBuffer out = pool.acquire(framed_size(model_state_payload_size(state)));
  write_model_state_payload(frame_prepare(out.span(), RecordType::kFullCheckpoint),
                            state);
  frame_seal(out.span(), crc_pool);
  return out;
}

ModelState deserialize_model_state(std::span<const std::byte> bytes,
                                   const ModelSpec& spec) {
  auto [type, payload] = unframe(bytes);
  LOWDIFF_ENSURE(type == RecordType::kFullCheckpoint, "not a full checkpoint");
  std::size_t pos = 0;
  const auto step = read_at<std::uint64_t>(payload, pos);
  pos += sizeof(std::uint64_t);
  const auto count = read_at<std::uint64_t>(payload, pos);
  pos += sizeof(std::uint64_t);
  LOWDIFF_ENSURE(count == spec.param_count(),
                 "checkpoint parameter count does not match model spec");
  ModelState state(spec);
  pos = read_floats(payload, pos, state.params().span());
  pos = read_floats(payload, pos, state.moment1().span());
  pos = read_floats(payload, pos, state.moment2().span());
  LOWDIFF_ENSURE(pos == payload.size(), "trailing bytes in full checkpoint");
  state.set_step(step);
  return state;
}

std::vector<std::byte> serialize_diff(const CompressedGrad& grad) {
  std::vector<std::byte> out(framed_size(grad.serialized_size()));
  grad.serialize_into(frame_prepare(out, RecordType::kDiffCheckpoint));
  frame_seal(out);
  return out;
}

PooledBuffer serialize_diff(const CompressedGrad& grad, BufferPool& pool,
                            ThreadPool* crc_pool) {
  PooledBuffer out = pool.acquire(framed_size(grad.serialized_size()));
  grad.serialize_into(frame_prepare(out.span(), RecordType::kDiffCheckpoint));
  frame_seal(out.span(), crc_pool);
  return out;
}

CompressedGrad deserialize_diff(std::span<const std::byte> bytes) {
  auto [type, payload] = unframe(bytes);
  LOWDIFF_ENSURE(type == RecordType::kDiffCheckpoint, "not a differential checkpoint");
  return CompressedGrad::deserialize(payload);
}

std::vector<std::byte> serialize_batch(const BatchedGrad& batch) {
  std::vector<std::byte> out(framed_size(batch.serialized_size()));
  batch.serialize_into(frame_prepare(out, RecordType::kBatchedDiff));
  frame_seal(out);
  return out;
}

PooledBuffer serialize_batch(const BatchedGrad& batch, BufferPool& pool,
                             ThreadPool* crc_pool) {
  PooledBuffer out = pool.acquire(framed_size(batch.serialized_size()));
  batch.serialize_into(frame_prepare(out.span(), RecordType::kBatchedDiff));
  frame_seal(out.span(), crc_pool);
  return out;
}

BatchedGrad deserialize_batch(std::span<const std::byte> bytes) {
  auto [type, payload] = unframe(bytes);
  LOWDIFF_ENSURE(type == RecordType::kBatchedDiff, "not a batched differential");
  return BatchedGrad::deserialize(payload);
}

}  // namespace lowdiff
