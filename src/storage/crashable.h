#pragma once

/// \file crashable.h
/// Write-back crash model for exhaustive crash-boundary enumeration.
///
/// Real storage stacks buffer writes in a volatile cache; only a sync
/// (fsync) makes them durable, and a crash discards whatever was still
/// volatile.  CrashableStorage models exactly that state machine on top of
/// any inner backend:
///
///   write(k, v)  -> lands in the volatile set (visible to reads)
///   sync()       -> promotes every volatile object to the durable set
///   remove(k)    -> volatile tombstone, applied to durable state on sync
///   crash()      -> drops the volatile set; the backend goes dead
///                   (every op returns kUnavailable) until reopen()
///
/// Every *applied* backend op (write / remove / sync) bumps a deterministic
/// op counter, so "crash after op N" enumerates every submit/complete/sync
/// boundary of a persist schedule — no sampling.  Tests run the schedule
/// once to learn the total op count M, then replay it M+1 times with
/// set_crash_after_ops(0..M) and recover from durable_snapshot() each time.
///
/// Thread-safety: one mutex over all state, same contract as MemStorage.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>

#include "storage/backend.h"

namespace lowdiff {

class CrashableStorage final : public StorageBackend {
 public:
  /// Inner backend holds the *durable* image.  Pass a fresh MemStorage in
  /// tests; an already-populated backend models pre-existing durable state.
  explicit CrashableStorage(std::shared_ptr<StorageBackend> durable);

  // StorageBackend — reads see volatile-over-durable (the OS page cache
  // view); after crash() everything is kUnavailable until reopen().
  Status write(const std::string& key, std::span<const std::byte> bytes) override;
  Result<std::vector<std::byte>> read(const std::string& key) const override;
  bool exists(const std::string& key) const override;
  void remove(const std::string& key) override;
  Status sync() override;
  std::vector<std::string> list() const override;
  StorageStats stats() const override;

  /// Arms the crash trigger: the backend crashes immediately *after*
  /// applying its `n`-th op from now (0 = crash before the next op).
  /// Counts only mutating ops (write/remove/sync) — the events that move
  /// the volatile/durable state machine.
  void set_crash_after_ops(std::uint64_t n);
  void disarm();

  /// Drops all volatile state and kills the backend now (manual trigger).
  void crash();

  /// True once a crash (armed or manual) has fired.
  bool crashed() const;

  /// Mutating ops applied since construction (or the last reset_op_count).
  /// The crash matrix asserts this against the closed-form boundary count.
  std::uint64_t applied_ops() const;
  void reset_op_count();

  /// The durable image a post-crash recovery would see: a fresh MemStorage
  /// deep-copied from the inner backend's current (synced) contents.
  std::shared_ptr<StorageBackend> durable_snapshot() const;

  /// Clears the crashed flag so the same instance can serve a new schedule
  /// (volatile state stays dropped, durable state persists — a reboot).
  void reopen();

 private:
  // Applies one mutating op under the lock; returns false when the armed
  // crash fired *instead of* the op (crash-before-op semantics for n=0
  // relative arming) — callers then report kUnavailable.
  bool admit_op_locked();
  void crash_locked();

  std::shared_ptr<StorageBackend> durable_;
  mutable std::mutex mutex_;
  bool dead_ = false;
  std::uint64_t applied_ops_ = 0;
  std::optional<std::uint64_t> crash_after_;  // ops remaining before crash
  /// Volatile overlay: value = pending write; nullopt = pending remove.
  std::map<std::string, std::optional<std::vector<std::byte>>> volatile_;
  mutable StorageStats stats_;
};

}  // namespace lowdiff
