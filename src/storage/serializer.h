#pragma once

/// \file serializer.h
/// Checkpoint wire format.
///
/// Every persisted object is framed as:
///   magic "LDCK" | version u16 | type u8 | payload_len u64 | crc32c u32 | payload
/// The CRC covers the payload; unframe() rejects corrupt or truncated
/// records, so recovery never consumes a torn write.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/buffer_pool.h"
#include "compress/compressed_grad.h"
#include "compress/merge.h"
#include "model/model_state.h"

namespace lowdiff {

class ThreadPool;

enum class RecordType : std::uint8_t {
  kFullCheckpoint = 1,  ///< model state: params + moments + step (3Ψ + meta)
  kDiffCheckpoint = 2,  ///< one compressed gradient (reused as C^D)
  kBatchedDiff = 3,     ///< batched differential checkpoint C^B
  kNaiveDiff = 4,       ///< Check-N-Run style state differential
  kFullShard = 5,       ///< one rank's slice of a sharded full checkpoint
  kCommitMarker = 6,    ///< manifest commit record: {data_len, data_crc32c}
};

/// Wraps a payload in the framed format.
std::vector<std::byte> frame(RecordType type, std::span<const std::byte> payload);

/// Exact on-disk size of a framed record carrying `payload_len` bytes.
std::size_t framed_size(std::size_t payload_len);

/// Zero-copy framing: writes everything but the CRC into `record` (which
/// must be exactly framed_size(payload_len) for the intended payload) and
/// returns the payload region for the caller to fill in place.  Finish with
/// frame_seal().
std::span<std::byte> frame_prepare(std::span<std::byte> record, RecordType type);

/// Computes the payload CRC — chunk-parallel across `pool` when given, with
/// a bit-identical result — and patches it into the header.  Call after the
/// payload region from frame_prepare() has been filled.
void frame_seal(std::span<std::byte> record, ThreadPool* pool = nullptr);

/// Validates magic/version/CRC and returns (type, payload).  Throws Error
/// on any corruption.
std::pair<RecordType, std::vector<std::byte>> unframe(std::span<const std::byte> bytes);

/// Full checkpoint ⇄ ModelState.
std::vector<std::byte> serialize_model_state(const ModelState& state);
/// `spec` must structurally match what was serialized (validated).
ModelState deserialize_model_state(std::span<const std::byte> bytes,
                                   const ModelSpec& spec);

/// Differential checkpoint ⇄ CompressedGrad.
std::vector<std::byte> serialize_diff(const CompressedGrad& grad);
CompressedGrad deserialize_diff(std::span<const std::byte> bytes);

/// Batched differential checkpoint ⇄ BatchedGrad.
std::vector<std::byte> serialize_batch(const BatchedGrad& batch);
BatchedGrad deserialize_batch(std::span<const std::byte> bytes);

/// Pooled single-pass variants: lease an exactly-sized buffer from `pool`,
/// serialize directly into the framed record (no intermediate payload
/// vector), and CRC chunk-parallel across `crc_pool` when given.  The byte
/// stream is identical to the vector-returning forms.
PooledBuffer serialize_model_state(const ModelState& state, BufferPool& pool,
                                   ThreadPool* crc_pool = nullptr);
PooledBuffer serialize_diff(const CompressedGrad& grad, BufferPool& pool,
                            ThreadPool* crc_pool = nullptr);
PooledBuffer serialize_batch(const BatchedGrad& batch, BufferPool& pool,
                             ThreadPool* crc_pool = nullptr);

}  // namespace lowdiff
