#pragma once

/// \file async_writer.h
/// Background persistence thread: the "persist" half of CheckFreq's
/// snapshot/persist decomposition, also used by LowDiff's checkpointing
/// process to overlap storage writes with training.
///
/// Jobs are (key, bytes) pairs executed FIFO on a dedicated thread.  The
/// queue depth is bounded; a full queue back-pressures the submitter —
/// exactly the condition under which frequent checkpointing starts stalling
/// training (paper Challenge 2).
///
/// Writes are hardened: retryable storage faults are retried with bounded
/// exponential backoff, and in committed mode each job runs the full
/// write → sync → commit-marker protocol so a crash mid-job never leaves a
/// visible torn checkpoint.

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "common/buffer_pool.h"
#include "common/retry.h"
#include "obs/metrics.h"
#include "queue/reusing_queue.h"
#include "storage/backend.h"
#include "storage/pipelined_writer.h"

namespace lowdiff {

class AsyncWriter {
 public:
  struct Job {
    std::string key;
    /// Shared immutable payload: plain vectors and pooled buffers both
    /// convert in without copying bytes, and replica fan-out shares one
    /// allocation across writers.
    ByteBuffer bytes;
    /// Invoked on the writer thread after the write *succeeds*.  Failed
    /// jobs (retry budget exhausted) are counted, logged, and skipped.
    std::function<void()> on_done;
    /// Invoked on the writer thread with the job's final status, success or
    /// not — the hook health monitors use to observe replica outcomes.
    std::function<void(const Status&)> on_result;
  };

  static constexpr std::size_t kDefaultMaxPending = 64;

  struct Options {
    /// Bound on queued jobs (0 = unbounded).  Unbounded is a foot-gun
    /// under latency spikes — memory grows without back-pressure — so the
    /// default is a finite depth.
    std::size_t max_pending = kDefaultMaxPending;
    RetryPolicy retry;
    /// When true every job uses the atomic commit protocol
    /// (write → sync → marker) instead of a bare write.
    bool committed = false;
    /// Stream id for this writer's jitter RNG, combined with retry.seed via
    /// RetryPolicy::make_rng so independent writers decorrelate while the
    /// whole schedule stays a pure function of the injected seeds.
    std::uint64_t seed = 0xa51dc0de;
    /// Opt-in pipelined persist path: when enabled, jobs flow through a
    /// PipelinedWriter (windowed in-flight writes, batched syncs, ordered
    /// markers) instead of one blocking committed_write per job.  Artifact
    /// bytes are identical either way; only the schedule changes.
    PipelineSpec pipeline;
  };

  AsyncWriter(std::shared_ptr<StorageBackend> backend, Options options);

  /// All-defaults convenience (bounded queue, plain retried writes).
  explicit AsyncWriter(std::shared_ptr<StorageBackend> backend);

  /// Convenience: bound the queue, defaults for everything else.
  AsyncWriter(std::shared_ptr<StorageBackend> backend, std::size_t max_pending);

  AsyncWriter(const AsyncWriter&) = delete;
  AsyncWriter& operator=(const AsyncWriter&) = delete;

  /// Drains all pending jobs, then joins the writer thread.
  ~AsyncWriter();

  /// Enqueues a write.  Blocks if the pending queue is full.  Returns false
  /// if the writer is already shut down.
  bool submit(std::string key, ByteBuffer bytes,
              std::function<void()> on_done = {},
              std::function<void(const Status&)> on_result = {});

  /// Non-blocking submit; false if full or shut down (caller decides
  /// whether to stall or drop — strategies differ).
  bool try_submit(std::string key, ByteBuffer bytes,
                  std::function<void()> on_done = {});

  /// Blocks until every job submitted so far has been written.
  void flush();

  /// Stops accepting jobs, drains, joins.  Idempotent.
  void shutdown();

  std::uint64_t completed_jobs() const { return completed_.load(); }
  /// Jobs whose write failed even after retries (subset of completed).
  std::uint64_t failed_jobs() const { return failed_.load(); }
  /// Total retry attempts performed across all jobs.
  std::uint64_t retries() const { return retries_.load(); }
  std::size_t pending_jobs() const { return queue_.size(); }
  std::size_t max_pending() const { return options_.max_pending; }

 private:
  struct Metrics {
    obs::Counter& jobs_total;
    obs::Counter& bytes_total;
    obs::Counter& retries_total;
    obs::Counter& failed_total;
    obs::Counter& submit_blocked_us;
    obs::Gauge& queue_depth;
    obs::Histogram& persist_us;
    static Metrics resolve();
  };

  void run();
  void run_pipelined();

  std::shared_ptr<StorageBackend> backend_;
  Options options_;
  Metrics metrics_;
  ReusingQueue<Job> queue_;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::mutex flush_mutex_;
  std::condition_variable flush_cv_;
  std::thread worker_;
};

}  // namespace lowdiff
