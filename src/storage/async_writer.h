#pragma once

/// \file async_writer.h
/// Background persistence thread: the "persist" half of CheckFreq's
/// snapshot/persist decomposition, also used by LowDiff's checkpointing
/// process to overlap storage writes with training.
///
/// Jobs are (key, bytes) pairs executed FIFO on a dedicated thread.  The
/// queue depth is bounded; a full queue back-pressures the submitter —
/// exactly the condition under which frequent checkpointing starts stalling
/// training (paper Challenge 2).

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "queue/reusing_queue.h"
#include "storage/backend.h"

namespace lowdiff {

class AsyncWriter {
 public:
  struct Job {
    std::string key;
    std::vector<std::byte> bytes;
    /// Invoked on the writer thread after the write completes.
    std::function<void()> on_done;
  };

  /// `max_pending`: bound on queued jobs (0 = unbounded).
  explicit AsyncWriter(std::shared_ptr<StorageBackend> backend,
                       std::size_t max_pending = 0);

  AsyncWriter(const AsyncWriter&) = delete;
  AsyncWriter& operator=(const AsyncWriter&) = delete;

  /// Drains all pending jobs, then joins the writer thread.
  ~AsyncWriter();

  /// Enqueues a write.  Blocks if the pending queue is full.  Returns false
  /// if the writer is already shut down.
  bool submit(std::string key, std::vector<std::byte> bytes,
              std::function<void()> on_done = {});

  /// Non-blocking submit; false if full or shut down (caller decides
  /// whether to stall or drop — strategies differ).
  bool try_submit(std::string key, std::vector<std::byte> bytes,
                  std::function<void()> on_done = {});

  /// Blocks until every job submitted so far has been written.
  void flush();

  /// Stops accepting jobs, drains, joins.  Idempotent.
  void shutdown();

  std::uint64_t completed_jobs() const { return completed_.load(); }
  std::size_t pending_jobs() const { return queue_.size(); }

 private:
  void run();

  std::shared_ptr<StorageBackend> backend_;
  ReusingQueue<Job> queue_;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::mutex flush_mutex_;
  std::condition_variable flush_cv_;
  std::thread worker_;
};

}  // namespace lowdiff
