#include "storage/crashable.h"

#include <utility>

#include "common/error.h"
#include "storage/mem_storage.h"

namespace lowdiff {

namespace {

Status dead_status() {
  return Status(ErrorCode::kUnavailable, "backend crashed");
}

}  // namespace

CrashableStorage::CrashableStorage(std::shared_ptr<StorageBackend> durable)
    : durable_(std::move(durable)) {
  LOWDIFF_ENSURE(durable_ != nullptr, "null durable backend");
}

bool CrashableStorage::admit_op_locked() {
  if (dead_) return false;
  if (crash_after_.has_value() && *crash_after_ == 0) {
    crash_locked();
    return false;
  }
  return true;
}

void CrashableStorage::crash_locked() {
  volatile_.clear();
  dead_ = true;
  crash_after_.reset();
}

// In write/remove/sync below: if the armed countdown hits zero while
// applying op N, the op itself still reports success — the machine dies
// *after* it took effect, and only the next op observes the crash.
Status CrashableStorage::write(const std::string& key,
                               std::span<const std::byte> bytes) {
  std::lock_guard lock(mutex_);
  if (!admit_op_locked()) return dead_status();
  volatile_[key] = std::vector<std::byte>(bytes.begin(), bytes.end());
  ++applied_ops_;
  ++stats_.writes;
  stats_.bytes_written += bytes.size();
  if (crash_after_.has_value() && --*crash_after_ == 0) crash_locked();
  return {};
}

void CrashableStorage::remove(const std::string& key) {
  std::lock_guard lock(mutex_);
  if (!admit_op_locked()) return;
  volatile_[key] = std::nullopt;  // tombstone
  ++applied_ops_;
  if (crash_after_.has_value() && --*crash_after_ == 0) crash_locked();
}

Status CrashableStorage::sync() {
  std::lock_guard lock(mutex_);
  if (!admit_op_locked()) return dead_status();
  for (auto& [key, value] : volatile_) {
    if (value.has_value()) {
      const Status st = durable_->write(key, std::span(*value));
      if (!st.ok()) return st;
    } else {
      durable_->remove(key);
    }
  }
  volatile_.clear();
  const Status st = durable_->sync();
  if (!st.ok()) return st;
  ++applied_ops_;
  if (crash_after_.has_value() && --*crash_after_ == 0) crash_locked();
  return {};
}

Result<std::vector<std::byte>> CrashableStorage::read(
    const std::string& key) const {
  std::lock_guard lock(mutex_);
  if (dead_) return dead_status();
  const auto it = volatile_.find(key);
  if (it != volatile_.end()) {
    if (!it->second.has_value()) {
      return Status(ErrorCode::kNotFound, "removed: " + key);
    }
    ++stats_.reads;
    stats_.bytes_read += it->second->size();
    return *it->second;
  }
  auto r = durable_->read(key);
  if (r.ok()) {
    ++stats_.reads;
    stats_.bytes_read += r.value().size();
  }
  return r;
}

bool CrashableStorage::exists(const std::string& key) const {
  std::lock_guard lock(mutex_);
  if (dead_) return false;
  const auto it = volatile_.find(key);
  if (it != volatile_.end()) return it->second.has_value();
  return durable_->exists(key);
}

std::vector<std::string> CrashableStorage::list() const {
  std::lock_guard lock(mutex_);
  if (dead_) return {};
  // Merge durable keys with the volatile overlay (writes add, tombstones
  // hide), preserving the backend contract of sorted output.
  std::vector<std::string> keys = durable_->list();
  std::set<std::string> merged(keys.begin(), keys.end());
  for (const auto& [key, value] : volatile_) {
    if (value.has_value()) {
      merged.insert(key);
    } else {
      merged.erase(key);
    }
  }
  return {merged.begin(), merged.end()};
}

StorageStats CrashableStorage::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void CrashableStorage::set_crash_after_ops(std::uint64_t n) {
  std::lock_guard lock(mutex_);
  crash_after_ = n;
}

void CrashableStorage::disarm() {
  std::lock_guard lock(mutex_);
  crash_after_.reset();
}

void CrashableStorage::crash() {
  std::lock_guard lock(mutex_);
  crash_locked();
}

bool CrashableStorage::crashed() const {
  std::lock_guard lock(mutex_);
  return dead_;
}

std::uint64_t CrashableStorage::applied_ops() const {
  std::lock_guard lock(mutex_);
  return applied_ops_;
}

void CrashableStorage::reset_op_count() {
  std::lock_guard lock(mutex_);
  applied_ops_ = 0;
}

std::shared_ptr<StorageBackend> CrashableStorage::durable_snapshot() const {
  std::lock_guard lock(mutex_);
  auto snap = std::make_shared<MemStorage>();
  for (const auto& key : durable_->list()) {
    auto r = durable_->read(key);
    LOWDIFF_ENSURE(r.ok(), "durable read failed during snapshot");
    const Status st = snap->write(key, std::span(r.value()));
    LOWDIFF_ENSURE(st.ok(), "snapshot write failed");
  }
  return snap;
}

void CrashableStorage::reopen() {
  std::lock_guard lock(mutex_);
  dead_ = false;
  crash_after_.reset();
}

}  // namespace lowdiff
