#pragma once

/// \file mem_storage.h
/// In-memory storage backend.  Doubles as the "CPU memory tier" for
/// Gemini-style in-memory checkpointing and as the fast fixture in tests.

#include <map>
#include <mutex>

#include "storage/backend.h"

namespace lowdiff {

class MemStorage final : public StorageBackend {
 public:
  Status write(const std::string& key, std::span<const std::byte> bytes) override;
  Result<std::vector<std::byte>> read(const std::string& key) const override;
  bool exists(const std::string& key) const override;
  void remove(const std::string& key) override;
  std::vector<std::string> list() const override;
  StorageStats stats() const override;

  /// Total bytes currently resident (memory-tier occupancy).
  std::size_t resident_bytes() const;

  /// Drops every object — models the loss of CPU memory on a hardware
  /// failure (paper §5.3).
  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::vector<std::byte>> objects_;
  mutable StorageStats stats_;
};

}  // namespace lowdiff
