#pragma once

/// \file workload.h
/// A training workload for the timeline simulator: model size, calibrated
/// per-iteration compute time, and the gradient-compression setting.
/// Derived byte sizes implement the paper's accounting:
///   full checkpoint      = 3Ψ floats            (params + 2 Adam moments)
///   compressed gradient  = ρΨ (index,value) pairs = 8ρΨ bytes
///   naive-DC differential = compressed params (8ρΨ) + raw optimizer (8Ψ)
///     — Check-N-Run does not sparsify optimizer state (Exp. 7 analysis)
///   dense gradient       = 4Ψ bytes             (LowDiff+ mode)

#include <cstdint>
#include <string>

#include "sim/cluster.h"

namespace lowdiff::sim {

struct Workload {
  std::string model;
  std::uint64_t params = 0;         ///< Ψ
  double iter_compute_sec = 0.1;    ///< fwd+bwd+update on this GPU
  double rho = 0.01;                ///< sparsification ratio; 0 => dense mode
  std::size_t pipeline_stages = 1;  ///< >1 => pipeline-parallel variant

  bool compressed() const { return rho > 0.0; }

  std::uint64_t full_ckpt_bytes() const { return 12 * params; }
  std::uint64_t dense_grad_bytes() const { return 4 * params; }
  std::uint64_t sparse_grad_bytes() const {
    return static_cast<std::uint64_t>(8.0 * rho * static_cast<double>(params));
  }
  /// Differential the checkpointing path writes per checkpoint.
  std::uint64_t lowdiff_diff_bytes() const {
    return compressed() ? sparse_grad_bytes() : dense_grad_bytes();
  }
  std::uint64_t naive_diff_bytes() const {
    const double comp_params = compressed()
                                   ? 8.0 * rho * static_cast<double>(params)
                                   : 4.0 * static_cast<double>(params);
    return static_cast<std::uint64_t>(comp_params) + 8 * params;
  }

  /// Builds the workload for one of the paper's eight models (Table II(b))
  /// on the given GPU generation.  `rho` = 0 selects the non-compression
  /// (LowDiff+) regime.
  static Workload for_model(const std::string& name, const GpuGeneration& gpu,
                            double rho);
};

}  // namespace lowdiff::sim
