#pragma once

/// \file failure.h
/// Failure injection for the long-horizon experiments (Exp. 3, 9, 10, 11).
/// Failures arrive as a Poisson process with the configured MTBF, matching
/// the paper's methodology ("failures were simulated ... adhering to a
/// fixed MTBF metric", §6.2 Exp. 3).  Each event can carry the index of
/// the server it strikes, which maps onto the failure domains of the
/// tiered placement subsystem (tier/topology.h) for Exp. 11.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace lowdiff::sim {

enum class FailureType {
  kSoftware,  ///< training process dies; host memory survives (§5.3)
  kHardware,  ///< machine is replaced; all volatile state is lost
};

struct FailureEvent {
  double time = 0.0;  ///< seconds since the previous failure (or start)
  FailureType type = FailureType::kSoftware;
  /// Server struck by the failure (uniform over the cluster when sampled
  /// via next(num_servers); 0 for the legacy single-server next()).
  std::size_t server = 0;
};

class FailureModel {
 public:
  /// `software_fraction`: probability a failure is a software failure.
  FailureModel(double mtbf_sec, std::uint64_t seed, double software_fraction = 0.5)
      : mtbf_sec_(mtbf_sec), software_fraction_(software_fraction),
        rng_(SplitMix64(seed ^ 0xFA11u).next()) {}

  double mtbf() const { return mtbf_sec_; }

  /// Samples the next failure (time to failure + type).
  FailureEvent next() {
    FailureEvent ev;
    ev.time = rng_.exponential(mtbf_sec_);
    ev.type = rng_.uniform_double() < software_fraction_ ? FailureType::kSoftware
                                                         : FailureType::kHardware;
    return ev;
  }

  /// Samples the next failure and attributes it to a server drawn
  /// uniformly from `num_servers` (each server is equally likely to be
  /// the one that dies — the paper's clusters are homogeneous).
  FailureEvent next(std::size_t num_servers) {
    LOWDIFF_ENSURE(num_servers > 0, "cluster has no servers");
    FailureEvent ev = next();
    ev.server = static_cast<std::size_t>(
        rng_.uniform_below(static_cast<std::uint64_t>(num_servers)));
    return ev;
  }

  /// Fills `out[0..n)` with the next `n` failures.  Stream-identical to
  /// calling next() n times — the exponential/uniform interleaving is part
  /// of the historical RNG stream and must not be reordered — but lets the
  /// event engine amortize the call overhead across a block.
  void fill(FailureEvent* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = next();
  }

 private:
  double mtbf_sec_;
  double software_fraction_;
  Xoshiro256 rng_;
};

/// Samples `count` *distinct* servers to kill simultaneously — the
/// correlated-loss scenario of Exp. 11 ("kill f servers, measure recovery
/// time vs k and tier mix").  Deterministic in `seed`; returns the victims
/// in ascending order.  `count` must not exceed `num_servers`.
inline std::vector<std::size_t> sample_server_losses(std::size_t num_servers,
                                                     std::size_t count,
                                                     std::uint64_t seed) {
  LOWDIFF_ENSURE(count <= num_servers, "cannot kill more servers than exist");
  Xoshiro256 rng(SplitMix64(seed ^ 0x5E12Fu).next());
  // Floyd's distinct-sampling algorithm: O(count) time and memory, one
  // uniform draw per victim — replaces the old partial Fisher–Yates, whose
  // O(num_servers) identity array dominated fleet-scale bursts.  For
  // count == 1 the two algorithms consume the same single draw and return
  // the same victim, so historical single-loss outputs are unchanged;
  // multi-loss samples stay uniform over distinct subsets but differ from
  // the pre-Floyd draws for the same seed (goldens bumped with the note in
  // DESIGN.md §11).
  std::vector<std::size_t> victims;
  victims.reserve(count);
  for (std::size_t j = num_servers - count; j < num_servers; ++j) {
    const std::size_t t = static_cast<std::size_t>(
        rng.uniform_below(static_cast<std::uint64_t>(j) + 1));
    if (std::find(victims.begin(), victims.end(), t) != victims.end()) {
      victims.push_back(j);
    } else {
      victims.push_back(t);
    }
  }
  std::sort(victims.begin(), victims.end());
  return victims;
}

/// Analytic model of *repair racing failure* — the window analysis behind
/// the quorum repair engine's budget (DESIGN.md §9.2).  While a record is
/// under-replicated (between a domain loss and its repair completing), a
/// second loss can strike; replication only protects against losses that
/// do not overlap a repair window.  With Poisson failures (rate 1/MTBF per
/// server) and mean repair time R, the number of concurrently-unrepaired
/// failures in an n-server cluster behaves like an M/G/inf queue with
/// occupancy lambda*R = n*R/MTBF, so quorum (k replicas, q required) is
/// lost when at least k-q+1 domains are simultaneously down — a Poisson
/// tail in that occupancy.
class RepairModel {
 public:
  RepairModel(double mtbf_sec, double mean_repair_sec)
      : mtbf_sec_(mtbf_sec), mean_repair_sec_(mean_repair_sec) {
    LOWDIFF_ENSURE(mtbf_sec > 0, "mtbf must be positive");
    LOWDIFF_ENSURE(mean_repair_sec >= 0, "repair time cannot be negative");
  }

  double mtbf() const { return mtbf_sec_; }
  double mean_repair() const { return mean_repair_sec_; }

  /// P(another failure of the same server arrives within one repair
  /// window) = 1 - e^(-R/MTBF).
  double overlap_probability() const {
    return 1.0 - std::exp(-mean_repair_sec_ / mtbf_sec_);
  }

  /// Expected number of servers simultaneously inside a repair window
  /// (M/G/inf occupancy): n * R / MTBF.
  double expected_unrepaired(std::size_t num_servers) const {
    return static_cast<double>(num_servers) * mean_repair_sec_ / mtbf_sec_;
  }

  /// P(>= `overlapping` failures are concurrently unrepaired) — the
  /// Poisson tail of the occupancy above.  With k replicas and quorum q,
  /// call with overlapping = k - q + 1 for the quorum-loss probability at
  /// any instant.
  double concurrent_loss_probability(std::size_t num_servers,
                                     std::size_t overlapping) const {
    const double occupancy = expected_unrepaired(num_servers);
    // P(N >= m) = 1 - sum_{i<m} e^-o o^i / i!
    double term = std::exp(-occupancy);  // i = 0
    double cdf = 0.0;
    for (std::size_t i = 0; i < overlapping; ++i) {
      cdf += term;
      term *= occupancy / static_cast<double>(i + 1);
    }
    return std::max(0.0, 1.0 - cdf);
  }

  /// Quorum-loss probability for a k-replica / q-quorum placement: at
  /// least k - q + 1 overlapping unrepaired losses.
  double quorum_loss_probability(std::size_t num_servers, std::size_t replicas,
                                 std::size_t quorum) const {
    LOWDIFF_ENSURE(quorum >= 1 && quorum <= replicas, "bad quorum");
    return concurrent_loss_probability(num_servers, replicas - quorum + 1);
  }

  /// Samples one repair duration (exponential with the configured mean) —
  /// feeds chaos schedules that want randomized restore times.
  double sample_repair_sec(Xoshiro256& rng) const {
    return mean_repair_sec_ <= 0 ? 0.0 : rng.exponential(mean_repair_sec_);
  }

 private:
  double mtbf_sec_;
  double mean_repair_sec_;
};

}  // namespace lowdiff::sim
