#pragma once

/// \file failure.h
/// Failure injection for the long-horizon experiments (Exp. 3, 9, 10).
/// Failures arrive as a Poisson process with the configured MTBF, matching
/// the paper's methodology ("failures were simulated ... adhering to a
/// fixed MTBF metric", §6.2 Exp. 3).

#include <cstdint>

#include "common/rng.h"

namespace lowdiff::sim {

enum class FailureType {
  kSoftware,  ///< training process dies; host memory survives (§5.3)
  kHardware,  ///< machine is replaced; all volatile state is lost
};

struct FailureEvent {
  double time = 0.0;  ///< seconds since the previous failure (or start)
  FailureType type = FailureType::kSoftware;
};

class FailureModel {
 public:
  /// `software_fraction`: probability a failure is a software failure.
  FailureModel(double mtbf_sec, std::uint64_t seed, double software_fraction = 0.5)
      : mtbf_sec_(mtbf_sec), software_fraction_(software_fraction),
        rng_(SplitMix64(seed ^ 0xFA11u).next()) {}

  double mtbf() const { return mtbf_sec_; }

  /// Samples the next failure (time to failure + type).
  FailureEvent next() {
    FailureEvent ev;
    ev.time = rng_.exponential(mtbf_sec_);
    ev.type = rng_.uniform_double() < software_fraction_ ? FailureType::kSoftware
                                                         : FailureType::kHardware;
    return ev;
  }

 private:
  double mtbf_sec_;
  double software_fraction_;
  Xoshiro256 rng_;
};

}  // namespace lowdiff::sim
