#pragma once

/// \file failure.h
/// Failure injection for the long-horizon experiments (Exp. 3, 9, 10, 11).
/// Failures arrive as a Poisson process with the configured MTBF, matching
/// the paper's methodology ("failures were simulated ... adhering to a
/// fixed MTBF metric", §6.2 Exp. 3).  Each event can carry the index of
/// the server it strikes, which maps onto the failure domains of the
/// tiered placement subsystem (tier/topology.h) for Exp. 11.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace lowdiff::sim {

enum class FailureType {
  kSoftware,  ///< training process dies; host memory survives (§5.3)
  kHardware,  ///< machine is replaced; all volatile state is lost
};

struct FailureEvent {
  double time = 0.0;  ///< seconds since the previous failure (or start)
  FailureType type = FailureType::kSoftware;
  /// Server struck by the failure (uniform over the cluster when sampled
  /// via next(num_servers); 0 for the legacy single-server next()).
  std::size_t server = 0;
};

class FailureModel {
 public:
  /// `software_fraction`: probability a failure is a software failure.
  FailureModel(double mtbf_sec, std::uint64_t seed, double software_fraction = 0.5)
      : mtbf_sec_(mtbf_sec), software_fraction_(software_fraction),
        rng_(SplitMix64(seed ^ 0xFA11u).next()) {}

  double mtbf() const { return mtbf_sec_; }

  /// Samples the next failure (time to failure + type).
  FailureEvent next() {
    FailureEvent ev;
    ev.time = rng_.exponential(mtbf_sec_);
    ev.type = rng_.uniform_double() < software_fraction_ ? FailureType::kSoftware
                                                         : FailureType::kHardware;
    return ev;
  }

  /// Samples the next failure and attributes it to a server drawn
  /// uniformly from `num_servers` (each server is equally likely to be
  /// the one that dies — the paper's clusters are homogeneous).
  FailureEvent next(std::size_t num_servers) {
    LOWDIFF_ENSURE(num_servers > 0, "cluster has no servers");
    FailureEvent ev = next();
    ev.server = static_cast<std::size_t>(
        rng_.uniform_below(static_cast<std::uint64_t>(num_servers)));
    return ev;
  }

 private:
  double mtbf_sec_;
  double software_fraction_;
  Xoshiro256 rng_;
};

/// Samples `count` *distinct* servers to kill simultaneously — the
/// correlated-loss scenario of Exp. 11 ("kill f servers, measure recovery
/// time vs k and tier mix").  Deterministic in `seed`; returns the victims
/// in ascending order.  `count` must not exceed `num_servers`.
inline std::vector<std::size_t> sample_server_losses(std::size_t num_servers,
                                                     std::size_t count,
                                                     std::uint64_t seed) {
  LOWDIFF_ENSURE(count <= num_servers, "cannot kill more servers than exist");
  std::vector<std::size_t> servers(num_servers);
  for (std::size_t i = 0; i < num_servers; ++i) servers[i] = i;
  Xoshiro256 rng(SplitMix64(seed ^ 0x5E12Fu).next());
  // Partial Fisher–Yates: the first `count` entries form a uniform sample.
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.uniform_below(
                static_cast<std::uint64_t>(num_servers - i)));
    std::swap(servers[i], servers[j]);
  }
  servers.resize(count);
  std::sort(servers.begin(), servers.end());
  return servers;
}

}  // namespace lowdiff::sim
