#pragma once

/// \file event_queue.h
/// Pending-event set for the discrete-event simulation engine (DESIGN.md
/// §11).  Two interchangeable backends behind one facade:
///
///  - CalendarQueue: the classic bucketed calendar queue (Brown 1988).
///    Events hash into year-circular time buckets; pop scans forward from
///    the current bucket.  O(1) amortized push/pop when the event-time
///    distribution is reasonably even — which Poisson arrival processes
///    are — with periodic O(n) resizes that re-estimate the bucket width
///    from observed inter-event gaps.
///  - BinaryHeapQueue: std::push_heap/pop_heap, O(log n), distribution-
///    oblivious.
///
/// The EventQueue facade starts on the calendar and permanently migrates to
/// the heap if the calendar degenerates (average bucket-scan cost per pop
/// exceeds a bound — e.g. adversarially clustered event times).  The
/// migration decision depends only on the pushed event sequence, so runs
/// stay deterministic.  Both backends break time ties by insertion order
/// (`seq`), making pop order a total, backend-independent function of the
/// push sequence — asserted by the equivalence suite in test_sim_engine.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/error.h"

namespace lowdiff::sim {

/// What a scheduled occurrence means to the scenario engine (scenario.h).
enum class EventKind : std::uint8_t {
  kFailure,         ///< base failure process strikes (software or hardware)
  kBurst,           ///< correlated rack-level failure burst begins
  kBurstRepair,     ///< a burst's victims come back online
  kPreemptNotice,   ///< spot reclaim notice arrives for a worker
  kPreemptKill,     ///< notice window elapsed; the worker is reclaimed
  kPreemptReplace,  ///< replacement capacity for a preempted worker arrives
  kJoin,            ///< elastic membership: a worker joins the fleet
  kLeave,           ///< elastic membership: a worker leaves gracefully
  kStragglerOnset,  ///< a worker starts running slow
  kStragglerEnd,    ///< a straggler episode ends
  kRecoveryDone,    ///< rollback/recovery window after a failure completes
};

struct Event {
  double time = 0.0;        ///< absolute simulation seconds
  EventKind kind = EventKind::kFailure;
  std::uint32_t worker = 0; ///< primary operand (victim worker/rack index)
  std::uint32_t aux = 0;    ///< secondary operand (burst size, flags, ...)
  std::uint64_t seq = 0;    ///< insertion order — total tie-break
};

/// Strict-weak "a fires after b": (time, seq) lexicographic.
inline bool event_after(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time > b.time;
  return a.seq > b.seq;
}

/// Binary-heap backend.  O(log n) push/pop, no distribution assumptions.
class BinaryHeapQueue {
 public:
  void push(const Event& e) {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), event_after);
  }

  Event pop() {
    LOWDIFF_CHECK(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), event_after);
    const Event e = heap_.back();
    heap_.pop_back();
    return e;
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  const std::vector<Event>& raw() const { return heap_; }
  void clear() { heap_.clear(); }

 private:
  std::vector<Event> heap_;
};

/// Bucketed calendar-queue backend.
class CalendarQueue {
 public:
  CalendarQueue() { rebuild(kMinBuckets, 1.0); }

  void push(const Event& e) {
    auto& bucket = buckets_[bucket_of(e.time)];
    // Buckets are kept sorted descending by (time, seq); the minimum sits
    // at the back.  Near-future inserts land near the back, so the linear
    // scan is short in the common case.
    auto it = bucket.end();
    while (it != bucket.begin() && event_after(e, *(it - 1))) --it;
    bucket.insert(it, e);
    ++size_;
    // An event earlier than the current scan cell would be missed by the
    // forward year scan — rewind the cursor to its cell.
    if (e.time < year_end_ - width_) {
      cur_bucket_ = bucket_of(e.time);
      year_end_ = (std::floor(e.time / width_) + 1.0) * width_;
    }
    if (size_ > 2 * buckets_.size()) resize();
  }

  Event pop() {
    LOWDIFF_CHECK(size_ > 0);
    for (std::size_t scanned = 0; scanned < buckets_.size(); ++scanned) {
      auto& bucket = buckets_[cur_bucket_];
      if (!bucket.empty() && bucket.back().time < year_end_) {
        const Event e = bucket.back();
        bucket.pop_back();
        --size_;
        scan_cost_ += scanned;
        ++pops_;
        return e;
      }
      cur_bucket_ = (cur_bucket_ + 1) & mask_;
      year_end_ += width_;
    }
    // Nothing within a whole year: every pending event is far in the
    // future.  Seek directly to the global minimum.
    scan_cost_ += buckets_.size();
    seek_to_min();
    auto& bucket = buckets_[cur_bucket_];
    const Event e = bucket.back();
    bucket.pop_back();
    --size_;
    ++pops_;
    return e;
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Average bucket-advance scans per pop — the facade's degeneracy signal.
  double scan_cost_per_pop() const {
    return pops_ == 0 ? 0.0
                      : static_cast<double>(scan_cost_) /
                            static_cast<double>(pops_);
  }
  std::uint64_t pops() const { return pops_; }

  /// Drains every pending event (unordered) — used for heap migration.
  std::vector<Event> drain() {
    std::vector<Event> out;
    out.reserve(size_);
    for (auto& b : buckets_) {
      out.insert(out.end(), b.begin(), b.end());
      b.clear();
    }
    size_ = 0;
    return out;
  }

  std::size_t num_buckets() const { return buckets_.size(); }
  double bucket_width() const { return width_; }

 private:
  static constexpr std::size_t kMinBuckets = 16;

  std::size_t bucket_of(double time) const {
    return static_cast<std::size_t>(time / width_) & mask_;
  }

  void rebuild(std::size_t nbuckets, double width) {
    buckets_.assign(nbuckets, {});
    mask_ = nbuckets - 1;
    width_ = width;
    cur_bucket_ = 0;
    year_end_ = width_;
  }

  /// Re-point (cur_bucket_, year_end_) at the bucket holding the global
  /// minimum so the next scan starts in the right year.
  void seek_to_min() {
    const Event* min_ev = nullptr;
    for (const auto& b : buckets_) {
      if (!b.empty() && (!min_ev || event_after(*min_ev, b.back()))) {
        min_ev = &b.back();
      }
    }
    LOWDIFF_CHECK(min_ev != nullptr);
    cur_bucket_ = bucket_of(min_ev->time);
    year_end_ = (std::floor(min_ev->time / width_) + 1.0) * width_;
  }

  /// Doubles the bucket count and re-estimates the width from the observed
  /// event-time spread (average adjacent gap of a sorted sample).
  void resize() {
    std::vector<Event> pending = drain();
    std::size_t nbuckets = kMinBuckets;
    while (nbuckets < pending.size()) nbuckets <<= 1;

    std::vector<double> sample;
    const std::size_t stride = std::max<std::size_t>(1, pending.size() / 64);
    for (std::size_t i = 0; i < pending.size(); i += stride) {
      sample.push_back(pending[i].time);
    }
    std::sort(sample.begin(), sample.end());
    double gap_sum = 0.0;
    std::size_t gaps = 0;
    for (std::size_t i = 1; i < sample.size(); ++i) {
      const double g = sample[i] - sample[i - 1];
      if (g > 0.0) {
        gap_sum += g;
        ++gaps;
      }
    }
    const double width = gaps > 0 ? 3.0 * gap_sum / static_cast<double>(gaps)
                                  : width_;
    rebuild(nbuckets, std::max(width, 1e-9));
    for (const auto& e : pending) {
      auto& bucket = buckets_[bucket_of(e.time)];
      auto it = bucket.end();
      while (it != bucket.begin() && event_after(e, *(it - 1))) --it;
      bucket.insert(it, e);
    }
    size_ = pending.size();
    if (size_ > 0) seek_to_min();
  }

  std::vector<std::vector<Event>> buckets_;
  std::size_t mask_ = 0;
  double width_ = 1.0;
  std::size_t size_ = 0;
  std::size_t cur_bucket_ = 0;
  double year_end_ = 1.0;
  std::uint64_t scan_cost_ = 0;
  std::uint64_t pops_ = 0;
};

enum class QueueBackend { kCalendar, kHeap };

/// Backend selection policy for EventQueue.
enum class QueuePolicy {
  kCalendar,  ///< calendar only (no fallback)
  kHeap,      ///< heap only
  kAdaptive,  ///< calendar first; migrate to heap if it degenerates
};

/// The facade the engine talks to.  Assigns insertion sequence numbers so
/// pop order is a pure function of the push sequence, independent of the
/// active backend.
class EventQueue {
 public:
  explicit EventQueue(QueuePolicy policy = QueuePolicy::kAdaptive)
      : policy_(policy),
        backend_(policy == QueuePolicy::kHeap ? QueueBackend::kHeap
                                              : QueueBackend::kCalendar) {}

  void push(double time, EventKind kind, std::uint32_t worker = 0,
            std::uint32_t aux = 0) {
    Event e{time, kind, worker, aux, next_seq_++};
    if (backend_ == QueueBackend::kHeap) {
      heap_.push(e);
    } else {
      calendar_.push(e);
    }
  }

  Event pop() {
    if (backend_ == QueueBackend::kHeap) return heap_.pop();
    const Event e = calendar_.pop();
    maybe_fall_back();
    return e;
  }

  bool empty() const {
    return backend_ == QueueBackend::kHeap ? heap_.empty() : calendar_.empty();
  }
  std::size_t size() const {
    return backend_ == QueueBackend::kHeap ? heap_.size() : calendar_.size();
  }
  QueueBackend backend() const { return backend_; }

 private:
  /// Adaptive fallback: if the calendar averages more than kMaxScanPerPop
  /// bucket advances per pop over the first kProbePops pops (and keeps
  /// doing so thereafter), its distribution assumption has failed —
  /// migrate everything to the heap, once.
  void maybe_fall_back() {
    if (policy_ != QueuePolicy::kAdaptive) return;
    constexpr std::uint64_t kProbePops = 512;
    constexpr double kMaxScanPerPop = 16.0;
    if (calendar_.pops() < kProbePops ||
        calendar_.scan_cost_per_pop() <= kMaxScanPerPop) {
      return;
    }
    for (const Event& e : calendar_.drain()) heap_.push(e);
    backend_ = QueueBackend::kHeap;
  }

  QueuePolicy policy_;
  QueueBackend backend_;
  CalendarQueue calendar_;
  BinaryHeapQueue heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace lowdiff::sim
