#pragma once

/// \file strategy_model.h
/// Analytic per-iteration timeline models of every checkpointing strategy
/// in the paper's evaluation (§6.1 Baselines + LowDiff/LowDiff+).
///
/// The model advances one training iteration at a time, keeping
/// "resource-free-at" clocks for the PCIe link, the storage link, the
/// checkpoint share of the network, and the host CPU.  Training stalls
/// whenever a strategy's synchronous step must wait on one of those clocks
/// — exactly the compression/transmission stalls of Fig. 1 — and overlapped
/// (asynchronous) work advances the clocks without stalling.
///
/// Resource sharing mirrors the testbed: the SSD and the NIC of a server
/// are shared by its `gpus_per_server` GPUs; PCIe is per-GPU; collectives
/// run at server granularity after an intra-server NVLink reduction.

#include <cstdint>
#include <string>

#include "sim/cluster.h"
#include "sim/workload.h"

namespace lowdiff::sim {

enum class StrategyKind {
  kNone,         ///< W/O CKPT upper bound
  kTorchSave,    ///< synchronous torch.save baseline
  kCheckFreq,    ///< snapshot/persist pipeline (Mohan et al.)
  kGemini,       ///< CPU-memory checkpointing w/ traffic interleaving
  kNaiveDC,      ///< Check-N-Run style differential checkpointing
  kLowDiff,      ///< gradient reuse + batched writes (this paper)
  kLowDiffPlus,  ///< layer-wise reuse w/o compression (this paper, §5)
  kPCcheck,      ///< PMEM checkpointing w/ concurrent checkpoints (§2.2)
};

const char* to_string(StrategyKind kind);

struct StrategyConfig {
  StrategyKind kind = StrategyKind::kLowDiff;
  /// Iterations between checkpoints: differential checkpoints for the DC
  /// strategies, full checkpoints for TorchSave/CheckFreq/Gemini.
  std::uint64_t ckpt_interval = 1;
  /// DC strategies: iterations between *full* checkpoints (the paper's FCF
  /// is expressed as this interval).
  std::uint64_t full_interval = 100;
  /// LowDiff: number of differentials merged per batched write (BS).
  std::uint64_t batch_size = 2;
  /// LowDiff+: iterations between persisting the CPU replica; 0 = auto
  /// (lowest interval the storage link sustains).
  std::uint64_t persist_interval = 0;
  /// Reusing-queue capacity in payloads (bounds device-resident in-flight
  /// gradients).
  std::uint64_t queue_capacity = 8;
  /// Exp. 6(b) ablation: batching buffer on CPU (true, default) or GPU.
  bool offload_batching_to_cpu = true;
  /// Ablation: zero-copy handle transmission through the reusing queue
  /// (true, default — §4.1 Requirement 2) vs copying the payload on the
  /// training thread before enqueue.
  bool zero_copy_queue = true;
};

/// Cumulative timeline statistics for one simulated worker.
struct TimelineStats {
  double total_time = 0.0;     ///< wall seconds for all iterations
  double compute_time = 0.0;   ///< fwd+bwd+update
  double compress_time = 0.0;  ///< gradient (not differential) compression
  double sync_time = 0.0;      ///< collective communication
  double stall_time = 0.0;     ///< checkpoint-induced training stalls
  std::uint64_t iterations = 0;
  std::uint64_t diff_ckpts = 0;
  std::uint64_t full_ckpts = 0;
  std::uint64_t storage_writes = 0;  ///< I/O operations issued
  std::uint64_t bytes_to_storage = 0;
  /// Modeled seconds of storage-link occupancy (transfer + per-write op
  /// cost) — the quantity batched writes reduce (Exp. 6a / ablation A3).
  double storage_busy_time = 0.0;

  /// Peak device-memory overhead from in-flight checkpoint payloads, as a
  /// fraction of the model-state footprint (Exp. 6(b)).
  double device_mem_overhead_frac = 0.0;

  double avg_iteration_time() const {
    return iterations == 0 ? 0.0 : total_time / static_cast<double>(iterations);
  }
};

/// Per-iteration timeline engine.  Deterministic: same inputs => same
/// timeline.
class StrategyTimeline {
 public:
  StrategyTimeline(ClusterSpec cluster, Workload workload, StrategyConfig config);

  /// Advances one iteration and returns its wall duration in seconds.
  double step();

  /// Runs `iterations` steps from the current state.
  TimelineStats run(std::uint64_t iterations);

  /// Resets all clocks and counters.
  void reset();

  const TimelineStats& stats() const { return stats_; }
  const StrategyConfig& config() const { return config_; }
  const Workload& workload() const { return workload_; }

  /// Baseline (no-checkpoint) iteration duration for this workload —
  /// denominators of every overhead ratio.
  double baseline_iteration_time() const;

  /// Seconds to recover after a failure, *excluding* the re-execution of
  /// lost iterations (load + replay of differentials).  `diffs_to_replay`
  /// counts differential checkpoints between the loaded full checkpoint
  /// and the failure point.
  double load_and_replay_time(std::uint64_t diffs_to_replay) const;

  /// Iterations of training progress lost at an arbitrary failure instant
  /// (worst case): work since the last *recoverable* checkpoint.
  std::uint64_t worst_case_lost_iterations() const;

  /// Full recovery cost: load_and_replay + re-executing lost iterations.
  double recovery_time() const {
    return load_and_replay_time(replayable_diffs()) +
           static_cast<double>(worst_case_lost_iterations()) *
               baseline_iteration_time();
  }

  /// Differentials that must be replayed in the worst case.
  std::uint64_t replayable_diffs() const;

  /// LowDiff+ only: the resolved persistence interval (iterations between
  /// CPU-replica persists) — the Exp. 4 LowDiff+(P) metric.
  std::uint64_t persist_interval() const { return auto_persist_interval_; }

 private:
  // Per-iteration strategy hooks; return the stall (seconds) charged to
  // training for this iteration.
  double step_none();
  double step_torch_save(double iter_end);
  double step_checkfreq(double iter_end);
  double step_gemini(double iter_end);
  double step_naive_dc(double iter_end);
  double step_lowdiff(double iter_end);
  double step_lowdiff_plus(double iter_end);
  double step_pccheck(double iter_end);

  bool is_ckpt_iter() const { return (iter_ + 1) % config_.ckpt_interval == 0; }
  bool is_full_ckpt_iter() const {
    return (iter_ + 1) % config_.full_interval == 0;
  }

  double eff_storage_bw() const;  ///< SSD share of one GPU
  double eff_net_bw() const;      ///< NIC share of one GPU (ckpt traffic)
  double pcie_bw() const { return cluster_.gpu.pcie.bytes_per_sec; }

  double compress_cost() const;  ///< per-iteration gradient compression
  double sync_cost() const;      ///< per-iteration collective time

  ClusterSpec cluster_;
  Workload workload_;
  StrategyConfig config_;

  // Clocks (absolute seconds on this worker's timeline).
  double now_ = 0.0;
  double pcie_free_ = 0.0;
  double storage_free_ = 0.0;
  double pmem_free_ = 0.0;
  double net_free_ = 0.0;
  double cpu_free_ = 0.0;

  std::uint64_t iter_ = 0;
  std::uint64_t batch_pending_ = 0;   // differentials awaiting a batched write
  std::uint64_t auto_persist_interval_ = 1;  // resolved LowDiff+ persistence

  TimelineStats stats_;
};

/// Smallest checkpoint interval (1 = every iteration) whose steady-state
/// overhead stays within `overhead_bound` of the no-checkpoint baseline —
/// the Exp. 4 / Exp. 8 metric.  Searches intervals in [1, max_interval];
/// returns max_interval if even that violates the bound.
std::uint64_t max_checkpoint_frequency(const ClusterSpec& cluster,
                                       const Workload& workload,
                                       StrategyConfig config,
                                       double overhead_bound = 0.035,
                                       std::uint64_t max_interval = 64,
                                       std::uint64_t measure_iters = 400);

}  // namespace lowdiff::sim
