#include "sim/scenario.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/batch_rng.h"
#include "common/error.h"

namespace lowdiff::sim {
namespace {

/// Rollback-event cap shared with the reference engine's safety valve.
constexpr std::uint64_t kMaxRollbacks = 200'000;
/// Hard event cap — a runaway-scenario backstop, far above any real run.
constexpr std::uint64_t kMaxEvents = 50'000'000;

/// Stream tags: every stochastic source draws from
/// SplitMix64(seed ^ tag), so adding an axis never perturbs another
/// axis's stream.  kFailureTag matches FailureModel's historical tag.
constexpr std::uint64_t kStragglerTag = 0x57A661Eull;
constexpr std::uint64_t kBurstTag = 0xB0257ull;
constexpr std::uint64_t kPreemptTag = 0x9EE47ull;
constexpr std::uint64_t kElasticTag = 0xE1A571Cull;

/// Batched exponential arrival stream: inter-arrival draws are filled a
/// block at a time (common/batch_rng.h) so the event loop never pays
/// per-draw call overhead.  Victim/magnitude draws come straight off the
/// same generator, interleaved deterministically with the blocks.
class ArrivalStream {
 public:
  ArrivalStream(double mean_sec, std::uint64_t seed)
      : mean_(mean_sec), rng_(SplitMix64(seed).next()) {}

  double next_arrival() {
    if (pos_ == kBlock) {
      fill_exponential(rng_, mean_, block_, kBlock);
      pos_ = 0;
    }
    return block_[pos_++];
  }

  Xoshiro256& rng() { return rng_; }

 private:
  static constexpr std::size_t kBlock = 32;
  double mean_;
  Xoshiro256 rng_;
  double block_[kBlock] = {};
  std::size_t pos_ = kBlock;
};

/// Batched legacy failure source: stream-identical to calling
/// FailureModel::next() per event (the exponential/uniform interleaving is
/// part of the historical stream and must not be reordered), amortizing
/// the per-event call overhead across a block.
class BatchedFailureSource {
 public:
  BatchedFailureSource(double mtbf_sec, std::uint64_t seed,
                       double software_fraction)
      : model_(mtbf_sec, seed, software_fraction) {}

  const FailureEvent& next() {
    if (pos_ == kBlock) {
      model_.fill(block_, kBlock);
      pos_ = 0;
    }
    return block_[pos_++];
  }

 private:
  // Sized so typical runs (tens of failures) waste few tail draws while
  // still amortizing the call overhead.
  static constexpr std::size_t kBlock = 8;
  FailureModel model_;
  FailureEvent block_[kBlock];
  std::size_t pos_ = kBlock;
};

/// Exact-value memo key: every numeric field is appended as raw bytes
/// (doubles by IEEE-754 bit pattern), so two configurations collide only
/// when every calibration input is bit-equal.  Binary packing keeps the
/// lookup an order of magnitude cheaper than formatting — the key build
/// sits on the memoized hot path of every sweep cell.
std::string memo_key(const ClusterSpec& c, const Workload& w,
                     const StrategyConfig& s) {
  std::string key;
  key.reserve(256);
  const auto put = [&key](const void* p, std::size_t n) {
    key.append(static_cast<const char*>(p), n);
  };
  const auto put_d = [&](double v) { put(&v, sizeof v); };
  const auto put_u = [&](std::uint64_t v) { put(&v, sizeof v); };

  key += c.gpu.name;
  key += '\0';
  put_d(c.gpu.compute_scale);
  for (const LinkSpec* link : {&c.gpu.pcie, &c.network, &c.storage, &c.pmem}) {
    put_d(link->bytes_per_sec);
    put_d(link->latency_sec);
    put_d(link->sync_latency_sec);
  }
  put_d(c.storage_read_bytes_per_sec);
  put_d(c.gpu_compress_throughput);
  put_d(c.gpu_diff_throughput);
  put_d(c.cpu_update_throughput);
  put_d(c.cpu_merge_throughput);
  put_u(c.num_gpus);
  put_u(c.gpus_per_server);

  key += w.model;
  key += '\0';
  put_u(w.params);
  put_d(w.iter_compute_sec);
  put_d(w.rho);
  put_u(w.pipeline_stages);

  put_u(static_cast<std::uint64_t>(s.kind));
  put_u(s.ckpt_interval);
  put_u(s.full_interval);
  put_u(s.batch_size);
  put_u(s.persist_interval);
  put_u(s.queue_capacity);
  put_u((s.offload_batching_to_cpu ? 1u : 0u) | (s.zero_copy_queue ? 2u : 0u));
  return key;
}

/// Flat SoA fleet state — per-worker arrays, aggregate caches.
struct FleetState {
  std::vector<std::uint8_t> active;
  std::vector<double> slowdown;
  std::vector<std::uint32_t> stragglers;  ///< workers with slowdown > 1
  std::size_t active_count = 0;

  explicit FleetState(std::size_t workers)
      : active(workers, 1), slowdown(workers, 1.0), active_count(workers) {}

  std::size_t size() const { return active.size(); }

  /// Synchronous data parallelism: throughput is active capacity divided
  /// by the slowest active worker's slowdown.
  double throughput_factor() const {
    if (active_count == 0) return 0.0;
    double max_slow = 1.0;
    for (const std::uint32_t w : stragglers) {
      if (active[w]) max_slow = std::max(max_slow, slowdown[w]);
    }
    return (static_cast<double>(active_count) /
            static_cast<double>(active.size())) /
           max_slow;
  }
};

/// Floyd's distinct-sample over an index range [0, n) — O(count) draws,
/// O(count) memory; shared semantics with sample_server_losses.
std::vector<std::uint32_t> floyd_indices(std::uint32_t n, std::uint32_t count,
                                         Xoshiro256& rng) {
  std::vector<std::uint32_t> out;
  out.reserve(count);
  for (std::uint32_t j = n - count; j < n; ++j) {
    const auto t = static_cast<std::uint32_t>(
        rng.uniform_below(static_cast<std::uint64_t>(j) + 1));
    if (std::find(out.begin(), out.end(), t) != out.end()) {
      out.push_back(j);
    } else {
      out.push_back(t);
    }
  }
  return out;
}

/// The scalar legacy path: the reference walk with the closed forms
/// replaced by their memoized values and the failure draws batched.  Every
/// arithmetic expression matches run_with_failures_reference term for term
/// — that is the bit-identity contract bench_sim gates.
FleetRunResult run_legacy(const ScenarioConfig& scenario, const SteadyCosts& c) {
  BatchedFailureSource failures(scenario.mtbf_sec, scenario.seed,
                                scenario.software_fraction);

  FleetRunResult out;
  double remaining = scenario.train_work_sec;
  double wall = 0.0;
  double overhead = 0.0;
  double recovery = 0.0;
  double redo = 0.0;
  std::uint64_t n_failures = 0;

  while (remaining > 0.0 && n_failures < kMaxRollbacks) {
    const FailureEvent& ev = failures.next();
    const double time_to_finish = remaining / c.productive_frac;
    if (ev.time >= time_to_finish) {
      wall += time_to_finish;
      overhead += time_to_finish * (1.0 - c.productive_frac);
      remaining = 0.0;
      break;
    }
    wall += ev.time;
    overhead += ev.time * (1.0 - c.productive_frac);
    const double progressed = ev.time * c.productive_frac;
    double lost = ev.type == FailureType::kSoftware ? c.lost_sw_sec
                                                    : c.lost_hw_sec;
    if (c.strategy_none) {
      lost = scenario.train_work_sec - remaining + progressed;
    }
    lost = std::min(lost, scenario.train_work_sec - remaining + progressed);
    remaining = remaining - progressed + lost;
    redo += lost;
    ++n_failures;

    const double load_replay = ev.type == FailureType::kHardware
                                   ? c.load_replay_hw_sec
                                   : c.load_replay_sw_sec;
    const double rec = scenario.restart_overhead_sec + load_replay;
    wall += rec;
    recovery += rec;
  }

  out.base.wall_time = wall;
  out.base.failures = n_failures;
  out.base.overhead_time = overhead;
  out.base.recovery_time = recovery;
  out.base.redo_time = redo;
  const double completed = scenario.train_work_sec - std::max(0.0, remaining);
  out.base.wasted_time = wall - completed;
  out.base.effective_ratio = wall > 0.0 ? completed / wall : 1.0;
  out.events = n_failures;
  return out;
}

/// The event core: heterogeneous failure processes against SoA fleet state.
class ScenarioEngine {
 public:
  ScenarioEngine(const ClusterSpec& cluster,
                 const StrategyConfig& /*strategy*/,
                 const ScenarioConfig& scenario, const SteadyCosts& costs,
                 QueuePolicy policy)
      : scenario_(scenario), c_(costs), queue_(policy),
        fleet_(cluster.num_gpus),
        failures_(scenario.mtbf_sec, scenario.seed,
                  scenario.software_fraction),
        straggler_src_(scenario.stragglers.onset_mtbf_sec,
                       scenario.seed ^ kStragglerTag),
        burst_src_(scenario.correlated.burst_mtbf_sec,
                   scenario.seed ^ kBurstTag),
        preempt_src_(scenario.preemption.preempt_mtbf_sec,
                     scenario.seed ^ kPreemptTag),
        elastic_src_(scenario.elastic.leave_mtbf_sec,
                     scenario.seed ^ kElasticTag) {
    remaining_ = scenario.train_work_sec;
    tf_ = fleet_.throughput_factor();
  }

  FleetRunResult run() {
    schedule_failure();
    if (scenario_.stragglers.onset_mtbf_sec > 0.0) {
      queue_.push(now_ + straggler_src_.next_arrival(),
                  EventKind::kStragglerOnset);
    }
    if (scenario_.correlated.burst_mtbf_sec > 0.0) {
      queue_.push(now_ + burst_src_.next_arrival(), EventKind::kBurst);
    }
    if (scenario_.preemption.preempt_mtbf_sec > 0.0) {
      queue_.push(now_ + preempt_src_.next_arrival(),
                  EventKind::kPreemptNotice);
    }
    if (scenario_.elastic.leave_mtbf_sec > 0.0) {
      queue_.push(now_ + elastic_src_.next_arrival(), EventKind::kLeave);
    }

    while (remaining_ > 0.0 && rollbacks_ < kMaxRollbacks &&
           events_ < kMaxEvents) {
      const Event e = queue_.pop();
      // Does the job finish before the next event?
      if (now_ >= recovery_until_ && tf_ > 0.0) {
        const double t_fin = remaining_ / (c_.productive_frac * tf_);
        if (now_ + t_fin <= e.time) {
          advance_to(now_ + t_fin);
          remaining_ = 0.0;
          break;
        }
      }
      advance_to(e.time);
      ++events_;
      process(e);
    }
    return finalize();
  }

 private:
  void advance_to(double t) {
    const double seg = t - now_;
    now_ = t;
    if (seg <= 0.0) return;
    wall_ += seg;
    if (now_ - seg < recovery_until_) {
      // Whole segment sits inside a recovery window: the kRecoveryDone
      // event at recovery_until_ guarantees no segment straddles the end.
      recovery_ += seg;
      return;
    }
    const double progressed = seg * c_.productive_frac * tf_;
    remaining_ -= progressed;
    overhead_ += seg * (1.0 - c_.productive_frac);
    degraded_ += seg * c_.productive_frac * (1.0 - tf_);
  }

  double work_done() const {
    return scenario_.train_work_sec - std::max(0.0, remaining_);
  }

  /// Rolls the job back (lost_sec of redone work, clamped to completed
  /// progress) and opens/extends a zero-progress recovery window.
  void rollback(double lost_sec, double recovery_sec) {
    if (now_ >= recovery_until_) {
      const double lost = std::min(lost_sec, work_done());
      remaining_ += lost;
      redo_ += lost;
    }
    // Failures landing inside an open recovery window find the job already
    // rolled back; they only extend the outage.
    ++rollbacks_;
    if (recovery_sec > 0.0 || now_ < recovery_until_) {
      recovery_until_ = std::max(recovery_until_, now_) + recovery_sec;
      queue_.push(recovery_until_, EventKind::kRecoveryDone);
    }
  }

  void schedule_failure() {
    const FailureEvent& ev = failures_.next();
    queue_.push(now_ + ev.time, EventKind::kFailure, 0,
                ev.type == FailureType::kSoftware ? 1 : 0);
  }

  void refresh_tf() { tf_ = fleet_.throughput_factor(); }

  void deactivate(std::uint32_t w) {
    if (!fleet_.active[w]) return;
    fleet_.active[w] = 0;
    --fleet_.active_count;
    refresh_tf();
  }

  void activate(std::uint32_t w) {
    if (fleet_.active[w]) return;
    fleet_.active[w] = 1;
    ++fleet_.active_count;
    refresh_tf();
  }

  void process(const Event& e) {
    switch (e.kind) {
      case EventKind::kFailure: {
        const bool software = e.aux == 1;
        ++base_failures_;
        const double lost =
            c_.strategy_none ? work_done()
                             : (software ? c_.lost_sw_sec : c_.lost_hw_sec);
        const double load_replay =
            software ? c_.load_replay_sw_sec : c_.load_replay_hw_sec;
        rollback(lost, scenario_.restart_overhead_sec + load_replay);
        schedule_failure();
        break;
      }
      case EventKind::kBurst: {
        const auto& spec = scenario_.correlated;
        Xoshiro256& rng = burst_src_.rng();
        const std::size_t racks = std::max<std::size_t>(1, spec.num_racks);
        const auto rack = static_cast<std::uint32_t>(
            rng.uniform_below(static_cast<std::uint64_t>(racks)));
        // Workers are assigned to failure domains round-robin.
        std::vector<std::uint32_t> members;
        for (std::uint32_t w = rack; w < fleet_.size();
             w += static_cast<std::uint32_t>(racks)) {
          if (fleet_.active[w]) members.push_back(w);
        }
        if (!members.empty()) {
          const auto count = std::min<std::uint32_t>(
              static_cast<std::uint32_t>(members.size()),
              std::max<std::uint32_t>(
                  1, static_cast<std::uint32_t>(
                         std::ceil(spec.rack_fraction *
                                   static_cast<double>(members.size())))));
          std::vector<std::uint32_t> victims;
          for (const std::uint32_t idx : floyd_indices(
                   static_cast<std::uint32_t>(members.size()), count, rng)) {
            victims.push_back(members[idx]);
          }
          for (const std::uint32_t w : victims) deactivate(w);
          ++rack_bursts_;
          // Machine loss: hardware-failure semantics for the rollback.
          rollback(c_.strategy_none ? work_done() : c_.lost_hw_sec,
                   scenario_.restart_overhead_sec + c_.load_replay_hw_sec);
          const std::uint32_t id = next_burst_id_++;
          burst_victims_[id] = std::move(victims);
          queue_.push(now_ + rng.exponential(spec.repair_mean_sec),
                      EventKind::kBurstRepair, id);
        }
        queue_.push(now_ + burst_src_.next_arrival(), EventKind::kBurst);
        break;
      }
      case EventKind::kBurstRepair: {
        auto it = burst_victims_.find(e.worker);
        if (it != burst_victims_.end()) {
          for (const std::uint32_t w : it->second) activate(w);
          burst_victims_.erase(it);
        }
        break;
      }
      case EventKind::kPreemptNotice: {
        Xoshiro256& rng = preempt_src_.rng();
        const auto w = static_cast<std::uint32_t>(
            rng.uniform_below(static_cast<std::uint64_t>(fleet_.size())));
        queue_.push(now_ + scenario_.preemption.notice_sec,
                    EventKind::kPreemptKill, w);
        queue_.push(now_ + preempt_src_.next_arrival(),
                    EventKind::kPreemptNotice);
        break;
      }
      case EventKind::kPreemptKill: {
        if (fleet_.active[e.worker]) {
          deactivate(e.worker);
          ++preemptions_;
          // The notice window covered a final flush: checkpointing
          // strategies lose no work, only the membership change.  Without
          // any checkpoint (kNone) the job still loses everything.
          rollback(c_.strategy_none ? work_done() : 0.0,
                   scenario_.restart_overhead_sec);
          queue_.push(now_ + preempt_src_.rng().exponential(
                                 scenario_.preemption.replacement_mean_sec),
                      EventKind::kPreemptReplace, e.worker);
        }
        break;
      }
      case EventKind::kPreemptReplace:
        if (!fleet_.active[e.worker]) {
          activate(e.worker);
          rollback(0.0, scenario_.restart_overhead_sec);
        }
        break;
      case EventKind::kLeave: {
        Xoshiro256& rng = elastic_src_.rng();
        const auto w = static_cast<std::uint32_t>(
            rng.uniform_below(static_cast<std::uint64_t>(fleet_.size())));
        if (fleet_.active[w] &&
            fleet_.active_count >
                std::max<std::size_t>(1, scenario_.elastic.min_workers)) {
          deactivate(w);
          ++leaves_;
          // Graceful: state is drained, no work lost — only a resync pause.
          rollback(0.0, scenario_.elastic.resync_sec);
          queue_.push(
              now_ + rng.exponential(scenario_.elastic.rejoin_delay_mean_sec),
              EventKind::kJoin, w);
        }
        queue_.push(now_ + elastic_src_.next_arrival(), EventKind::kLeave);
        break;
      }
      case EventKind::kJoin:
        if (!fleet_.active[e.worker]) {
          activate(e.worker);
          ++joins_;
          rollback(0.0, scenario_.elastic.resync_sec);
        }
        break;
      case EventKind::kStragglerOnset: {
        const auto& spec = scenario_.stragglers;
        Xoshiro256& rng = straggler_src_.rng();
        const auto w = static_cast<std::uint32_t>(
            rng.uniform_below(static_cast<std::uint64_t>(fleet_.size())));
        if (fleet_.active[w] && fleet_.slowdown[w] == 1.0) {
          fleet_.slowdown[w] =
              1.0 + rng.exponential(std::max(1e-9, spec.slowdown_mean - 1.0));
          fleet_.stragglers.push_back(w);
          ++straggler_episodes_;
          refresh_tf();
          queue_.push(now_ + rng.exponential(spec.episode_mean_sec),
                      EventKind::kStragglerEnd, w);
        }
        queue_.push(now_ + straggler_src_.next_arrival(),
                    EventKind::kStragglerOnset);
        break;
      }
      case EventKind::kStragglerEnd: {
        fleet_.slowdown[e.worker] = 1.0;
        auto& s = fleet_.stragglers;
        s.erase(std::remove(s.begin(), s.end(), e.worker), s.end());
        refresh_tf();
        break;
      }
      case EventKind::kRecoveryDone:
        // Recovery state derives from now_ vs recovery_until_; the event
        // exists to bound advance_to() segments at the window edge.
        break;
    }
  }

  FleetRunResult finalize() const {
    FleetRunResult out;
    out.base.wall_time = wall_;
    out.base.failures = base_failures_;
    out.base.overhead_time = overhead_;
    out.base.recovery_time = recovery_;
    out.base.redo_time = redo_;
    const double completed =
        scenario_.train_work_sec - std::max(0.0, remaining_);
    out.base.wasted_time = wall_ - completed;
    out.base.effective_ratio = wall_ > 0.0 ? completed / wall_ : 1.0;
    out.events = events_;
    out.rack_bursts = rack_bursts_;
    out.preemptions = preemptions_;
    out.joins = joins_;
    out.leaves = leaves_;
    out.straggler_episodes = straggler_episodes_;
    out.degraded_time = degraded_;
    return out;
  }

  const ScenarioConfig& scenario_;
  const SteadyCosts& c_;

  EventQueue queue_;
  FleetState fleet_;
  BatchedFailureSource failures_;
  ArrivalStream straggler_src_;
  ArrivalStream burst_src_;
  ArrivalStream preempt_src_;
  ArrivalStream elastic_src_;

  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> burst_victims_;
  std::uint32_t next_burst_id_ = 0;

  double now_ = 0.0;
  double wall_ = 0.0;
  double remaining_ = 0.0;
  double overhead_ = 0.0;
  double recovery_ = 0.0;
  double redo_ = 0.0;
  double degraded_ = 0.0;
  double recovery_until_ = 0.0;
  double tf_ = 1.0;
  std::uint64_t events_ = 0;
  std::uint64_t rollbacks_ = 0;
  std::uint64_t base_failures_ = 0;
  std::uint64_t rack_bursts_ = 0;
  std::uint64_t preemptions_ = 0;
  std::uint64_t joins_ = 0;
  std::uint64_t leaves_ = 0;
  std::uint64_t straggler_episodes_ = 0;
};

}  // namespace

SteadyCosts compute_steady_costs(const ClusterSpec& cluster,
                                 const Workload& workload,
                                 const StrategyConfig& strategy) {
  // Mirrors the reference engine's preamble and per-failure closed-form
  // evaluations expression for expression — memoization must not be
  // observable in the results.
  StrategyTimeline timeline(cluster, workload, strategy);
  const std::uint64_t warm_iters = std::max<std::uint64_t>(
      400, 4 * std::max(strategy.full_interval, strategy.ckpt_interval));
  const TimelineStats steady = timeline.run(warm_iters);

  SteadyCosts c;
  c.iter_cost = steady.avg_iteration_time();
  c.iter_baseline = timeline.baseline_iteration_time();
  LOWDIFF_CHECK(c.iter_cost >= c.iter_baseline - 1e-12);
  c.productive_frac = c.iter_baseline / c.iter_cost;
  c.lost_sw_sec =
      expected_lost_iterations(timeline, FailureType::kSoftware) *
      c.iter_baseline;
  c.lost_hw_sec =
      expected_lost_iterations(timeline, FailureType::kHardware) *
      c.iter_baseline;
  c.load_replay_sw_sec =
      timeline.load_and_replay_time(expected_replay_diffs(strategy));
  if (strategy.kind == StrategyKind::kLowDiffPlus) {
    // CPU memory lost: reload the persisted replica from storage.
    c.load_replay_hw_sec = static_cast<double>(workload.full_ckpt_bytes()) /
                           cluster.storage_read_bytes_per_sec;
  } else {
    c.load_replay_hw_sec = c.load_replay_sw_sec;
  }
  c.strategy_none = strategy.kind == StrategyKind::kNone;
  return c;
}

const SteadyCosts& StepCostCache::get(const ClusterSpec& cluster,
                                      const Workload& workload,
                                      const StrategyConfig& strategy) {
  const std::string key = memo_key(cluster, workload, strategy);
  {
    std::lock_guard lock(mutex_);
    auto it = memo_.find(key);
    if (it != memo_.end()) return *it->second;
  }
  // Compute outside the lock: distinct keys memoize concurrently.
  auto costs = std::make_unique<SteadyCosts>(
      compute_steady_costs(cluster, workload, strategy));
  std::lock_guard lock(mutex_);
  auto [it, inserted] = memo_.emplace(key, std::move(costs));
  return *it->second;
}

std::size_t StepCostCache::size() const {
  std::lock_guard lock(mutex_);
  return memo_.size();
}

FleetRunResult run_scenario(const ClusterSpec& cluster,
                            const Workload& workload,
                            const StrategyConfig& strategy,
                            const ScenarioConfig& scenario,
                            StepCostCache* cache, QueuePolicy policy) {
  LOWDIFF_ENSURE(scenario.train_work_sec > 0.0,
                 "train_work_sec must be positive");
  LOWDIFF_ENSURE(scenario.mtbf_sec > 0.0, "mtbf_sec must be positive");

  ClusterSpec eff = cluster;
  if (scenario.num_workers > 0) eff.num_gpus = scenario.num_workers;

  SteadyCosts local;
  const SteadyCosts* costs;
  if (cache) {
    costs = &cache->get(eff, workload, strategy);
  } else {
    local = compute_steady_costs(eff, workload, strategy);
    costs = &local;
  }
  return run_scenario(cluster, workload, strategy, scenario, *costs, policy);
}

FleetRunResult run_scenario(const ClusterSpec& cluster,
                            const Workload& workload,
                            const StrategyConfig& strategy,
                            const ScenarioConfig& scenario,
                            const SteadyCosts& costs, QueuePolicy policy) {
  LOWDIFF_ENSURE(scenario.train_work_sec > 0.0,
                 "train_work_sec must be positive");
  LOWDIFF_ENSURE(scenario.mtbf_sec > 0.0, "mtbf_sec must be positive");

  const std::size_t fleet_size =
      scenario.num_workers > 0 ? scenario.num_workers : cluster.num_gpus;
  FleetRunResult out;
  if (scenario.legacy()) {
    out = run_legacy(scenario, costs);
  } else {
    ClusterSpec eff = cluster;
    eff.num_gpus = fleet_size;
    out = ScenarioEngine(eff, strategy, scenario, costs, policy).run();
  }

  const double fleet = static_cast<double>(fleet_size);
  out.gpu_hours_total = out.base.wall_time * fleet / 3600.0;
  out.gpu_hours_wasted = out.base.wasted_time * fleet / 3600.0;
  out.cost_total_usd = out.gpu_hours_total * scenario.cost.gpu_hour_usd;
  out.cost_wasted_usd = out.gpu_hours_wasted * scenario.cost.gpu_hour_usd;
  return out;
}

double measure_concurrent_downtime(std::size_t num_servers, double mtbf_sec,
                                   double mean_repair_sec,
                                   std::size_t overlapping, double horizon_sec,
                                   std::uint64_t seed, QueuePolicy policy) {
  LOWDIFF_ENSURE(num_servers > 0 && mtbf_sec > 0.0, "bad repair-race config");
  // Aggregate M/G/inf view (matching RepairModel): failures arrive at rate
  // num_servers / mtbf; each opens an exponential repair window.
  const double agg_mean = mtbf_sec / static_cast<double>(num_servers);
  Xoshiro256 rng(SplitMix64(seed ^ 0x5EED5ull).next());
  EventQueue queue(policy);
  queue.push(rng.exponential(agg_mean), EventKind::kFailure);

  double now = 0.0;
  double time_at_or_above = 0.0;
  std::size_t down = 0;
  while (!queue.empty()) {
    const Event e = queue.pop();
    const double t = std::min(e.time, horizon_sec);
    if (down >= overlapping) time_at_or_above += t - now;
    now = t;
    if (e.time >= horizon_sec) break;
    if (e.kind == EventKind::kFailure) {
      ++down;
      queue.push(now + rng.exponential(mean_repair_sec),
                 EventKind::kRecoveryDone);
      queue.push(now + rng.exponential(agg_mean), EventKind::kFailure);
    } else {
      --down;
    }
  }
  return horizon_sec > 0.0 ? time_at_or_above / horizon_sec : 0.0;
}

}  // namespace lowdiff::sim
