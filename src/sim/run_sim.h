#pragma once

/// \file run_sim.h
/// Long-horizon training simulation with failure injection — produces the
/// paper's wasted-time (Exp. 3, Table I) and effective-training-time-ratio
/// (Exp. 9, 10) metrics.
///
/// Accounting follows §2.2: wasted time = steady-state checkpointing
/// overhead + recovery overhead (checkpoint loading/replay + re-executed
/// work); the effective ratio is productive training time over wall time.

#include <cstdint>

#include "sim/failure.h"
#include "sim/strategy_model.h"

namespace lowdiff::sim {

struct FailureRunConfig {
  /// Productive training required, measured in no-checkpoint baseline
  /// seconds (the job is "done" after this much pure training).
  double train_work_sec = 3600.0;
  double mtbf_sec = 3600.0;
  std::uint64_t seed = 1;
  /// Probability that an injected failure is a software failure (§5.3).
  double software_fraction = 0.5;
  /// Fixed restart cost per failure (process respawn, rendezvous, CUDA
  /// context init) — identical across strategies.
  double restart_overhead_sec = 15.0;
};

struct FailureRunResult {
  double wall_time = 0.0;       ///< total seconds to finish the job
  double wasted_time = 0.0;     ///< wall_time - train_work_sec
  double effective_ratio = 0.0; ///< train_work_sec / wall_time
  std::uint64_t failures = 0;
  double overhead_time = 0.0;   ///< steady-state checkpointing overhead
  double recovery_time = 0.0;   ///< restart + load + replay
  double redo_time = 0.0;       ///< re-executed lost work
};

/// Runs the job to completion under failure injection.  Deterministic for
/// a given seed.
FailureRunResult run_with_failures(const ClusterSpec& cluster,
                                   const Workload& workload,
                                   const StrategyConfig& strategy,
                                   const FailureRunConfig& run);

}  // namespace lowdiff::sim
