#pragma once

/// \file run_sim.h
/// Long-horizon training simulation with failure injection — produces the
/// paper's wasted-time (Exp. 3, Table I) and effective-training-time-ratio
/// (Exp. 9, 10) metrics.
///
/// Accounting follows §2.2: wasted time = steady-state checkpointing
/// overhead + recovery overhead (checkpoint loading/replay + re-executed
/// work); the effective ratio is productive training time over wall time.

#include <cstdint>

#include "sim/failure.h"
#include "sim/strategy_model.h"

namespace lowdiff::sim {

struct FailureRunConfig {
  /// Productive training required, measured in no-checkpoint baseline
  /// seconds (the job is "done" after this much pure training).
  double train_work_sec = 3600.0;
  double mtbf_sec = 3600.0;
  std::uint64_t seed = 1;
  /// Probability that an injected failure is a software failure (§5.3).
  double software_fraction = 0.5;
  /// Fixed restart cost per failure (process respawn, rendezvous, CUDA
  /// context init) — identical across strategies.
  double restart_overhead_sec = 15.0;
};

struct FailureRunResult {
  double wall_time = 0.0;       ///< total seconds to finish the job
  double wasted_time = 0.0;     ///< wall_time - train_work_sec
  double effective_ratio = 0.0; ///< train_work_sec / wall_time
  std::uint64_t failures = 0;
  double overhead_time = 0.0;   ///< steady-state checkpointing overhead
  double recovery_time = 0.0;   ///< restart + load + replay
  double redo_time = 0.0;       ///< re-executed lost work
};

/// Runs the job to completion under failure injection.  Deterministic for
/// a given seed.  Since the discrete-event rewrite (DESIGN.md §11) this
/// routes through the scenario engine's legacy path (memoized step costs,
/// batched failure draws) and is gated bit-identical to
/// run_with_failures_reference by bench_sim and the checked-in goldens.
FailureRunResult run_with_failures(const ClusterSpec& cluster,
                                   const Workload& workload,
                                   const StrategyConfig& strategy,
                                   const FailureRunConfig& run);

/// The pre-rewrite scalar engine, kept verbatim as the bit-identity oracle
/// for the event core's legacy path.  One failure at a time, re-evaluating
/// the StrategyTimeline closed forms per call — do not use in sweeps.
FailureRunResult run_with_failures_reference(const ClusterSpec& cluster,
                                             const Workload& workload,
                                             const StrategyConfig& strategy,
                                             const FailureRunConfig& run);

/// Closed forms shared by the reference engine and the memoized step-cost
/// table (scenario.h) — §2.2 / §4.3 accounting.

/// Expected iterations of lost work per failure (average case — a failure
/// lands uniformly within a checkpoint window).  kNone returns 0; the
/// caller is responsible for the all-progress-lost special case.
double expected_lost_iterations(const StrategyTimeline& timeline,
                                FailureType type);

/// Expected differential checkpoints replayed during one recovery.
std::uint64_t expected_replay_diffs(const StrategyConfig& cfg);

}  // namespace lowdiff::sim
