#include "sim/run_sim.h"

#include <algorithm>

#include "common/error.h"
#include "sim/scenario.h"

namespace lowdiff::sim {

double expected_lost_iterations(const StrategyTimeline& timeline,
                                FailureType type) {
  const auto& cfg = timeline.config();
  switch (cfg.kind) {
    case StrategyKind::kNone:
      return 0.0;  // handled by the caller: all accumulated progress is lost
    case StrategyKind::kTorchSave:
    case StrategyKind::kCheckFreq:
    case StrategyKind::kGemini:
    case StrategyKind::kPCcheck:
      return static_cast<double>(cfg.ckpt_interval) / 2.0;
    case StrategyKind::kNaiveDC:
      return static_cast<double>(cfg.ckpt_interval) / 2.0;
    case StrategyKind::kLowDiff:
      // Half a batch of differentials is in the CPU buffer on average
      // (§4.3's b/2 term), plus half the diff interval.
      return static_cast<double>(cfg.ckpt_interval) *
             (static_cast<double>(cfg.batch_size) / 2.0 + 0.5);
    case StrategyKind::kLowDiffPlus:
      if (type == FailureType::kSoftware) return 0.5;  // CPU replica intact
      return static_cast<double>(timeline.persist_interval()) / 2.0 + 0.5;
  }
  return 0.0;
}

std::uint64_t expected_replay_diffs(const StrategyConfig& cfg) {
  switch (cfg.kind) {
    case StrategyKind::kNaiveDC:
    case StrategyKind::kLowDiff:
      return cfg.full_interval / std::max<std::uint64_t>(1, cfg.ckpt_interval) / 2;
    default:
      return 0;
  }
}

FailureRunResult run_with_failures_reference(const ClusterSpec& cluster,
                                             const Workload& workload,
                                             const StrategyConfig& strategy,
                                             const FailureRunConfig& run) {
  LOWDIFF_ENSURE(run.train_work_sec > 0.0, "train_work_sec must be positive");
  LOWDIFF_ENSURE(run.mtbf_sec > 0.0, "mtbf_sec must be positive");

  // Steady-state per-iteration cost (warm timeline — amortizes full
  // checkpoints and batched writes).
  StrategyTimeline timeline(cluster, workload, strategy);
  const std::uint64_t warm_iters = std::max<std::uint64_t>(
      400, 4 * std::max(strategy.full_interval, strategy.ckpt_interval));
  const TimelineStats steady = timeline.run(warm_iters);
  const double iter_cost = steady.avg_iteration_time();
  const double iter_baseline = timeline.baseline_iteration_time();
  LOWDIFF_CHECK(iter_cost >= iter_baseline - 1e-12);
  // Fraction of wall time that is productive training while running.
  const double productive_frac = iter_baseline / iter_cost;

  FailureModel failures(run.mtbf_sec, run.seed, run.software_fraction);

  FailureRunResult result;
  double remaining = run.train_work_sec;  // productive seconds still needed
  double wall = 0.0;
  double overhead = 0.0;
  double recovery = 0.0;
  double redo = 0.0;
  std::uint64_t n_failures = 0;

  // Safety valve: if a configuration cannot make progress (loss per
  // failure >= progress per failure), stop after a bounded number of
  // failures and report the (dismal) ratio achieved so far.
  constexpr std::uint64_t kMaxFailures = 200'000;

  while (remaining > 0.0 && n_failures < kMaxFailures) {
    const FailureEvent ev = failures.next();
    const double time_to_finish = remaining / productive_frac;
    if (ev.time >= time_to_finish) {
      wall += time_to_finish;
      overhead += time_to_finish * (1.0 - productive_frac);
      remaining = 0.0;
      break;
    }
    // Run until the failure.
    wall += ev.time;
    overhead += ev.time * (1.0 - productive_frac);
    const double progressed = ev.time * productive_frac;
    // Lost tail of work since the last recoverable checkpoint.
    double lost = expected_lost_iterations(timeline, ev.type) * iter_baseline;
    if (strategy.kind == StrategyKind::kNone) {
      lost = run.train_work_sec - remaining + progressed;  // start over
    }
    lost = std::min(lost, run.train_work_sec - remaining + progressed);
    remaining = remaining - progressed + lost;
    redo += lost;
    ++n_failures;

    // Recovery: restart + load + replay.
    double load_replay;
    if (strategy.kind == StrategyKind::kLowDiffPlus &&
        ev.type == FailureType::kHardware) {
      // CPU memory lost: reload the persisted replica from storage.
      load_replay = static_cast<double>(workload.full_ckpt_bytes()) /
                    cluster.storage_read_bytes_per_sec;
    } else {
      load_replay = timeline.load_and_replay_time(expected_replay_diffs(strategy));
    }
    const double rec = run.restart_overhead_sec + load_replay;
    wall += rec;
    recovery += rec;
  }

  result.wall_time = wall;
  result.failures = n_failures;
  result.overhead_time = overhead;
  result.recovery_time = recovery;
  result.redo_time = redo;
  const double completed = run.train_work_sec - std::max(0.0, remaining);
  result.wasted_time = wall - completed;
  result.effective_ratio = wall > 0.0 ? completed / wall : 1.0;
  return result;
}

FailureRunResult run_with_failures(const ClusterSpec& cluster,
                                   const Workload& workload,
                                   const StrategyConfig& strategy,
                                   const FailureRunConfig& run) {
  return run_scenario(cluster, workload, strategy, ScenarioConfig::from(run))
      .base;
}

}  // namespace lowdiff::sim
