#include "sim/strategy_model.h"

#include <algorithm>
#include <cmath>

#include "comm/network_model.h"
#include "common/error.h"

namespace lowdiff::sim {
namespace {

/// Calibration constants (see DESIGN.md §1 — absolute speeds are scaled,
/// ratios are what the experiments check).

/// Fixed per-checkpoint bookkeeping cost (zero-copy IPC handle
/// export/import, Python-process coordination in the reference
/// implementation).  Charged by LowDiff's enqueue and by Gemini's traffic
/// scheduler alike.
constexpr double kIpcOpSec = 2e-3;

/// Fraction of an asynchronous bulk snapshot (full model state over PCIe
/// DMA) that interferes with training despite overlap.
constexpr double kSnapshotInterference = 0.3;

/// Layer-wise host copies of *dense* gradients serialize with backward
/// kernels far more than one bulk DMA does; the paper measures 8–10 %
/// overhead for LowDiff+ from exactly this PCIe contention (§6.2 Exp. 2).
constexpr double kLayerwiseContention = 1.0;

/// Fraction of the compute window usable to overlap a snapshot.
constexpr double kBackwardWindowFrac = 0.67;

/// Storage backlog (in baseline iterations of link time) the CPU write
/// buffer absorbs before back-pressuring training.
constexpr double kStorageBufferIters = 10.0;

/// CPU-replica update backlog tolerated (iterations) before LowDiff+
/// throttles training.
constexpr double kCpuBacklogIters = 4.0;

/// Pipeline-parallel bubble overhead on compute.
constexpr double kPipelineBubble = 0.15;

/// Eq. (3)'s R_D, expressed as a fraction of a baseline iteration: the time
/// to merge one batched differential with the full checkpoint at recovery.
constexpr double kMergeOpIterFrac = 0.15;

/// Host memory copy bandwidth (non-zero-copy queue ablation).
constexpr double kHostMemcpyBw = 10.0e9;

/// Fixed cost per storage write operation (file create, metadata, fsync) —
/// what batched gradient writes amortize (§4.2).
constexpr double kStorageOpSec = 8e-3;

}  // namespace

const char* to_string(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kNone: return "W/O CKPT";
    case StrategyKind::kTorchSave: return "TorchSave";
    case StrategyKind::kCheckFreq: return "CheckFreq";
    case StrategyKind::kGemini: return "Gemini";
    case StrategyKind::kNaiveDC: return "NaiveDC";
    case StrategyKind::kLowDiff: return "LowDiff";
    case StrategyKind::kLowDiffPlus: return "LowDiff+";
    case StrategyKind::kPCcheck: return "PCcheck";
  }
  return "?";
}

StrategyTimeline::StrategyTimeline(ClusterSpec cluster, Workload workload,
                                   StrategyConfig config)
    : cluster_(std::move(cluster)), workload_(std::move(workload)),
      config_(config) {
  LOWDIFF_ENSURE(config_.ckpt_interval >= 1, "checkpoint interval must be >= 1");
  LOWDIFF_ENSURE(config_.full_interval >= 1, "full-checkpoint interval must be >= 1");
  LOWDIFF_ENSURE(config_.batch_size >= 1, "batch size must be >= 1");

  // Resolve the LowDiff+ persistence interval: smallest interval the
  // storage link sustains for the sharded replica write.
  if (config_.kind == StrategyKind::kLowDiffPlus) {
    if (config_.persist_interval == 0) {
      const double shard_bytes = static_cast<double>(workload_.full_ckpt_bytes()) /
                                 static_cast<double>(cluster_.num_gpus);
      const double write_time = shard_bytes / eff_storage_bw();
      auto_persist_interval_ = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(
                 std::ceil(write_time / baseline_iteration_time())));
    } else {
      auto_persist_interval_ = config_.persist_interval;
    }
  }
}

double StrategyTimeline::eff_storage_bw() const {
  return cluster_.storage.bytes_per_sec /
         static_cast<double>(cluster_.gpus_per_server);
}

double StrategyTimeline::eff_net_bw() const {
  return cluster_.network.bytes_per_sec /
         static_cast<double>(cluster_.gpus_per_server);
}

double StrategyTimeline::compress_cost() const {
  if (!workload_.compressed()) return 0.0;
  return static_cast<double>(workload_.params) / cluster_.gpu_compress_throughput;
}

double StrategyTimeline::sync_cost() const {
  const std::size_t servers = cluster_.servers();
  if (servers <= 1 && cluster_.num_gpus <= 1) return 0.0;
  NetworkModel nm{cluster_.network, std::max<std::size_t>(servers, 2)};
  const double stages = static_cast<double>(workload_.pipeline_stages);
  if (workload_.compressed()) {
    return nm.allgather_time(static_cast<std::uint64_t>(
        static_cast<double>(workload_.sparse_grad_bytes()) / stages));
  }
  return nm.allreduce_time(static_cast<std::uint64_t>(
      static_cast<double>(workload_.dense_grad_bytes()) / stages));
}

double StrategyTimeline::baseline_iteration_time() const {
  const double bubble =
      workload_.pipeline_stages > 1 ? (1.0 + kPipelineBubble) : 1.0;
  return workload_.iter_compute_sec * bubble + compress_cost() + sync_cost();
}

double StrategyTimeline::step() {
  const double start = now_;
  const double bubble =
      workload_.pipeline_stages > 1 ? (1.0 + kPipelineBubble) : 1.0;
  const double compute = workload_.iter_compute_sec * bubble;
  const double compress = compress_cost();
  const double sync = sync_cost();
  const double iter_end = start + compute + compress + sync;

  double stall = 0.0;
  switch (config_.kind) {
    case StrategyKind::kNone: stall = step_none(); break;
    case StrategyKind::kTorchSave: stall = step_torch_save(iter_end); break;
    case StrategyKind::kCheckFreq: stall = step_checkfreq(iter_end); break;
    case StrategyKind::kGemini: stall = step_gemini(iter_end); break;
    case StrategyKind::kNaiveDC: stall = step_naive_dc(iter_end); break;
    case StrategyKind::kLowDiff: stall = step_lowdiff(iter_end); break;
    case StrategyKind::kLowDiffPlus: stall = step_lowdiff_plus(iter_end); break;
    case StrategyKind::kPCcheck: stall = step_pccheck(iter_end); break;
  }

  now_ = iter_end + stall;
  ++iter_;

  stats_.compute_time += compute;
  stats_.compress_time += compress;
  stats_.sync_time += sync;
  stats_.stall_time += stall;
  stats_.total_time = now_;
  stats_.iterations = iter_;
  return compute + compress + sync + stall;
}

TimelineStats StrategyTimeline::run(std::uint64_t iterations) {
  for (std::uint64_t i = 0; i < iterations; ++i) step();
  return stats_;
}

void StrategyTimeline::reset() {
  now_ = pcie_free_ = storage_free_ = net_free_ = cpu_free_ = pmem_free_ = 0.0;
  iter_ = 0;
  batch_pending_ = 0;
  stats_ = TimelineStats{};
}

double StrategyTimeline::step_none() { return 0.0; }

double StrategyTimeline::step_torch_save(double iter_end) {
  if (!is_ckpt_iter()) return 0.0;
  // Fully synchronous: device->host copy then storage write, both blocking.
  const auto bytes = workload_.full_ckpt_bytes();
  const double stall = static_cast<double>(bytes) / pcie_bw() + kStorageOpSec +
                       static_cast<double>(bytes) / eff_storage_bw();
  ++stats_.full_ckpts;
  ++stats_.storage_writes;
  stats_.bytes_to_storage += bytes;
  stats_.storage_busy_time +=
      kStorageOpSec + static_cast<double>(bytes) / eff_storage_bw();
  storage_free_ = iter_end + stall;
  return stall;
}

double StrategyTimeline::step_checkfreq(double iter_end) {
  if (!is_ckpt_iter()) return 0.0;
  const auto bytes = workload_.full_ckpt_bytes();
  // Single snapshot buffer: a new snapshot waits for the previous persist.
  const double wait_buf = std::max(0.0, storage_free_ - iter_end);
  // The snapshot (device->host copy of the full 3Ψ state) gates the next
  // model update (WAR); in the measured DeepSpeed integration it is
  // effectively blocking — this is what pins CheckFreq at ~10-iteration
  // intervals under the 3.5% bound (Exp. 4).
  const double snap = static_cast<double>(bytes) / pcie_bw();
  const double snap_stall = snap;
  const double persist_start = iter_end + wait_buf + snap;
  const double t_persist =
      kStorageOpSec + static_cast<double>(bytes) / eff_storage_bw();
  storage_free_ = persist_start + t_persist;
  stats_.storage_busy_time += t_persist;
  ++stats_.full_ckpts;
  ++stats_.storage_writes;
  stats_.bytes_to_storage += bytes;
  return wait_buf + snap_stall;
}

double StrategyTimeline::step_gemini(double iter_end) {
  if (!is_ckpt_iter()) return 0.0;
  // Each server replicates its full model state into a remote server's CPU
  // memory (machine-level failure domains); the server's GPUs split the
  // shipping, so each GPU moves 3Ψ/gpus_per_server over its NIC share.
  // Traffic interleaves with training; training stalls when the previous
  // checkpoint is still in flight (single staging buffer).
  const double traffic_bytes = static_cast<double>(workload_.full_ckpt_bytes()) /
                               static_cast<double>(cluster_.gpus_per_server);
  const double t_traffic = traffic_bytes / eff_net_bw();
  const double wait = std::max(0.0, net_free_ - iter_end);
  net_free_ = std::max(net_free_, iter_end) + t_traffic;
  ++stats_.full_ckpts;  // in-memory checkpoint (persistence is rare/async)
  return wait + kIpcOpSec;
}

double StrategyTimeline::step_naive_dc(double iter_end) {
  double stall = 0.0;
  if (is_ckpt_iter() && !is_full_ckpt_iter()) {
    // Differential = state subtraction + top-k over the parameter diff —
    // on the critical path (WAR dependency, Fig. 3a), as is the transfer.
    const double t_sub = 3.0 * static_cast<double>(workload_.params) /
                         cluster_.gpu_diff_throughput;
    const double t_comp =
        workload_.compressed()
            ? static_cast<double>(workload_.params) / cluster_.gpu_compress_throughput
            : 0.0;
    const auto bytes = workload_.naive_diff_bytes();
    const double t_pcie = static_cast<double>(bytes) / pcie_bw();
    const double wait_buf = std::max(0.0, storage_free_ - iter_end);
    stall = t_sub + t_comp + t_pcie + wait_buf;
    storage_free_ = iter_end + stall + static_cast<double>(bytes) / eff_storage_bw();
    ++stats_.diff_ckpts;
    ++stats_.storage_writes;
    stats_.bytes_to_storage += bytes;
  }
  if (is_full_ckpt_iter()) {
    // Full checkpoint handled CheckFreq-style (snapshot + async persist).
    const auto bytes = workload_.full_ckpt_bytes();
    const double wait_buf = std::max(0.0, storage_free_ - iter_end);
    const double snap = static_cast<double>(bytes) / pcie_bw();
    const double overlap = workload_.iter_compute_sec * kBackwardWindowFrac;
    stall += wait_buf + std::max(0.0, snap - overlap) +
             kSnapshotInterference * std::min(snap, overlap);
    storage_free_ = iter_end + stall + static_cast<double>(bytes) / eff_storage_bw();
    ++stats_.full_ckpts;
    ++stats_.storage_writes;
    stats_.bytes_to_storage += bytes;
  }
  return stall;
}

double StrategyTimeline::step_lowdiff(double iter_end) {
  double stall = 0.0;
  const auto diff_bytes = workload_.lowdiff_diff_bytes();
  if (is_ckpt_iter()) {
    // Training side: zero-copy enqueue of the synchronized compressed
    // gradient (Algorithm 1 line 6).
    stall += kIpcOpSec;
    if (!config_.zero_copy_queue) {
      // Ablation: the training thread serializes + copies the payload
      // into the queue instead of sharing the memory handle.
      stall += static_cast<double>(diff_bytes) / kHostMemcpyBw;
    }

    // Checkpointing side: offload the handle's payload over PCIe.
    const double t_off = static_cast<double>(diff_bytes) / pcie_bw();
    const double off_start = std::max(pcie_free_, iter_end);
    pcie_free_ = off_start + t_off;

    // Bounded queue: if offloads fall behind by more than the queue
    // capacity, the producer blocks (Limitation 2, §4.2).
    const double backlog = pcie_free_ - iter_end;
    const double capacity_time =
        static_cast<double>(config_.queue_capacity) * t_off;
    if (backlog > capacity_time) stall += backlog - capacity_time;

    ++stats_.diff_ckpts;
    ++batch_pending_;
    const double diff_frac =
        static_cast<double>(diff_bytes) /
        static_cast<double>(workload_.full_ckpt_bytes());
    const std::uint64_t resident =
        config_.offload_batching_to_cpu ? 1 : batch_pending_;
    stats_.device_mem_overhead_frac =
        std::max(stats_.device_mem_overhead_frac,
                 static_cast<double>(resident + 1) * diff_frac);

    if (batch_pending_ >= config_.batch_size) {
      // One batched write (Fig. 4 step 3), asynchronous.  The CPU buffer
      // absorbs bursts; training is back-pressured only once the storage
      // backlog exceeds the buffer budget (in seconds of link time), which
      // is what turns a sustained throughput deficit into a stall.
      const auto batch_bytes = diff_bytes * batch_pending_;
      const double t_write =
          kStorageOpSec + static_cast<double>(batch_bytes) / eff_storage_bw();
      const double backlog_limit = kStorageBufferIters * baseline_iteration_time();
      const double storage_backlog = std::max(0.0, storage_free_ - iter_end);
      if (storage_backlog > backlog_limit) {
        stall += storage_backlog - backlog_limit;
      }
      storage_free_ = std::max(storage_free_, iter_end) + t_write;
      stats_.storage_busy_time += t_write;
      batch_pending_ = 0;
      ++stats_.storage_writes;
      stats_.bytes_to_storage += batch_bytes;
    }
  }
  if (is_full_ckpt_iter()) {
    // Regular full checkpoint (Algorithm 1 line 15).  The data-parallel
    // group partitions the full state across its ranks (DeepSpeed-style
    // sharded save): each GPU snapshots and persists 1/N of 3Ψ.
    const auto bytes = static_cast<std::uint64_t>(
        static_cast<double>(workload_.full_ckpt_bytes()) /
        static_cast<double>(cluster_.num_gpus));
    const double wait_buf = std::max(0.0, storage_free_ - iter_end);
    const double snap = static_cast<double>(bytes) / pcie_bw();
    const double overlap = workload_.iter_compute_sec * kBackwardWindowFrac;
    stall += wait_buf + std::max(0.0, snap - overlap) +
             kSnapshotInterference * std::min(snap, overlap);
    storage_free_ = iter_end + stall + static_cast<double>(bytes) / eff_storage_bw();
    ++stats_.full_ckpts;
    ++stats_.storage_writes;
    stats_.bytes_to_storage += bytes;
  }
  return stall;
}

double StrategyTimeline::step_lowdiff_plus(double iter_end) {
  double stall = 0.0;
  if (is_ckpt_iter()) {
    // Queue/thread-pool bookkeeping (Algorithm 2's handle sets).
    stall += kIpcOpSec;
    // Layer-wise snapshot of the dense gradient, pipelined with backward
    // (Algorithm 2).  Host copies contend with backward kernels.
    const auto bytes = workload_.dense_grad_bytes();
    const double t_off = static_cast<double>(bytes) / pcie_bw();
    const double window = workload_.iter_compute_sec * kBackwardWindowFrac;
    stall += std::max(0.0, t_off - window) +
             kLayerwiseContention * std::min(t_off, window);

    const double off_done = iter_end + t_off;
    pcie_free_ = std::max(pcie_free_, off_done);

    // CPU replica update (host Adam over the dense gradient).
    const double t_cpu = static_cast<double>(workload_.params) /
                         cluster_.cpu_update_throughput;
    const double cpu_start = std::max(cpu_free_, off_done);
    cpu_free_ = cpu_start + t_cpu;
    const double backlog_limit = kCpuBacklogIters * baseline_iteration_time();
    const double cpu_backlog = cpu_free_ - iter_end;
    if (cpu_backlog > backlog_limit) stall += cpu_backlog - backlog_limit;

    ++stats_.diff_ckpts;  // in-memory differential checkpoint each iteration
  }
  // Asynchronous persistence of the sharded CPU replica — fully decoupled
  // from GPU training (never stalls), bounded by storage bandwidth via
  // auto_persist_interval_.
  if ((iter_ + 1) % auto_persist_interval_ == 0) {
    const auto shard = static_cast<std::uint64_t>(
        static_cast<double>(workload_.full_ckpt_bytes()) /
        static_cast<double>(cluster_.num_gpus));
    storage_free_ = std::max(storage_free_, iter_end) +
                    static_cast<double>(shard) / eff_storage_bw();
    ++stats_.full_ckpts;
    ++stats_.storage_writes;
    stats_.bytes_to_storage += shard;
  }
  return stall;
}

double StrategyTimeline::step_pccheck(double iter_end) {
  if (!is_ckpt_iter()) return 0.0;
  // PCcheck (Strati et al.): full checkpoints into persistent main memory,
  // pipelined across multiple concurrent checkpoint buffers — a new
  // checkpoint only stalls once the PMEM backlog exceeds the concurrent-
  // checkpoint window.  The snapshot stays a blocking device->host copy.
  constexpr double kConcurrentCheckpoints = 4.0;
  const auto bytes = workload_.full_ckpt_bytes();
  const double snap = static_cast<double>(bytes) / pcie_bw();
  const double pmem_bw = cluster_.pmem.bytes_per_sec /
                         static_cast<double>(cluster_.gpus_per_server);
  const double t_write = static_cast<double>(bytes) / pmem_bw;
  const double backlog = std::max(0.0, pmem_free_ - iter_end);
  const double limit = kConcurrentCheckpoints * t_write;
  const double wait = backlog > limit ? backlog - limit : 0.0;
  pmem_free_ = std::max(pmem_free_, iter_end) + t_write;
  ++stats_.full_ckpts;
  ++stats_.storage_writes;
  stats_.bytes_to_storage += bytes;
  stats_.storage_busy_time += t_write;
  return snap + wait;
}

double StrategyTimeline::load_and_replay_time(std::uint64_t diffs_to_replay) const {
  const double read_bw = cluster_.storage_read_bytes_per_sec;
  const double full_bytes = static_cast<double>(workload_.full_ckpt_bytes());
  const double t_load_full = full_bytes / read_bw;

  switch (config_.kind) {
    case StrategyKind::kNone:
      return 0.0;  // nothing to load; all progress is lost
    case StrategyKind::kTorchSave:
    case StrategyKind::kCheckFreq:
      return t_load_full;
    case StrategyKind::kPCcheck:
      // Reload from PMEM; reads are faster than writes and recovery is
      // one reader at a time, so the full device bandwidth applies.
      return full_bytes / cluster_.pmem.bytes_per_sec;
    case StrategyKind::kGemini: {
      // Restore from remote CPU memory over the network.
      return full_bytes / eff_net_bw();
    }
    case StrategyKind::kNaiveDC: {
      // Serial: load full, then read + merge each differential in turn.
      const double t_read_diff =
          static_cast<double>(workload_.naive_diff_bytes()) / read_bw;
      const double t_merge = 3.0 * static_cast<double>(workload_.params) /
                             cluster_.cpu_merge_throughput;
      return t_load_full +
             static_cast<double>(diffs_to_replay) * (t_read_diff + t_merge);
    }
    case StrategyKind::kLowDiff: {
      // Parallel recovery (Fig. 7): differential reads proceed in parallel
      // with the full-checkpoint load across the server's GPUs; merge
      // rounds are logarithmic in the differential count.
      const double t_read_diffs =
          static_cast<double>(workload_.lowdiff_diff_bytes()) *
          static_cast<double>(diffs_to_replay) / read_bw /
          static_cast<double>(cluster_.gpus_per_server);
      const double merge_rounds = diffs_to_replay == 0
                                      ? 0.0
                                      : std::ceil(std::log2(
                                            static_cast<double>(diffs_to_replay) + 1));
      // Each merge round touches the (sparse) differential payload.
      const double t_merge_round =
          static_cast<double>(workload_.lowdiff_diff_bytes()) / 4.0 /
          cluster_.cpu_merge_throughput * 2.0;
      // Per batched-DC merge with the full checkpoint — Eq. (3)'s R_D term
      // (one merge operation per batched differential).
      const double batches =
          std::ceil(static_cast<double>(diffs_to_replay) /
                    static_cast<double>(std::max<std::uint64_t>(1, config_.batch_size)));
      const double t_batch_merges =
          batches * kMergeOpIterFrac * baseline_iteration_time();
      // Applying the replayed gradients through the optimizer.
      const double t_apply = static_cast<double>(diffs_to_replay) *
                             static_cast<double>(workload_.params) *
                             (workload_.compressed() ? workload_.rho : 1.0) /
                             cluster_.cpu_merge_throughput;
      return std::max(t_load_full, t_read_diffs) +
             merge_rounds * t_merge_round + t_batch_merges + t_apply;
    }
    case StrategyKind::kLowDiffPlus: {
      // Software failure: restore the CPU-resident replica to the device.
      return full_bytes / pcie_bw();
    }
  }
  return t_load_full;
}

std::uint64_t StrategyTimeline::worst_case_lost_iterations() const {
  switch (config_.kind) {
    case StrategyKind::kNone:
      return stats_.iterations;  // no checkpoint: everything is lost
    case StrategyKind::kTorchSave:
    case StrategyKind::kCheckFreq:
    case StrategyKind::kGemini:
    case StrategyKind::kPCcheck:
      return config_.ckpt_interval;
    case StrategyKind::kNaiveDC:
      return config_.ckpt_interval;  // diffs recover up to the last diff
    case StrategyKind::kLowDiff:
      // A failure loses the not-yet-persisted batch (§4.3: up to b
      // gradients in the batch buffer).
      return config_.ckpt_interval * config_.batch_size;
    case StrategyKind::kLowDiffPlus:
      return 1;  // CPU replica trails the GPU by at most one iteration
  }
  return config_.ckpt_interval;
}

std::uint64_t StrategyTimeline::replayable_diffs() const {
  switch (config_.kind) {
    case StrategyKind::kNaiveDC:
      return config_.full_interval / std::max<std::uint64_t>(1, config_.ckpt_interval) / 2;
    case StrategyKind::kLowDiff:
      // Average case: half the full-checkpoint interval, batched.
      return config_.full_interval /
             std::max<std::uint64_t>(1, config_.ckpt_interval) / 2;
    default:
      return 0;
  }
}

std::uint64_t max_checkpoint_frequency(const ClusterSpec& cluster,
                                       const Workload& workload,
                                       StrategyConfig config,
                                       double overhead_bound,
                                       std::uint64_t max_interval,
                                       std::uint64_t measure_iters) {
  StrategyTimeline probe(cluster, workload, {StrategyKind::kNone, 1});
  const double baseline = probe.baseline_iteration_time();
  for (std::uint64_t interval = 1; interval <= max_interval; ++interval) {
    config.ckpt_interval = interval;
    if (config.kind != StrategyKind::kLowDiff &&
        config.kind != StrategyKind::kNaiveDC) {
      config.full_interval = interval;
    }
    StrategyTimeline timeline(cluster, workload, config);
    const auto stats = timeline.run(measure_iters);
    const double overhead = stats.avg_iteration_time() / baseline - 1.0;
    if (overhead <= overhead_bound) return interval;
  }
  return max_interval;
}

}  // namespace lowdiff::sim
