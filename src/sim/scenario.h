#pragma once

/// \file scenario.h
/// Fleet-scale failure scenarios and the discrete-event engine that runs
/// them (DESIGN.md §11).  Extends the legacy single-process failure walk of
/// run_sim.h along the axes the end-to-end-simulation survey (PAPERS.md)
/// names for credible large-scale models:
///
///  - fleets of 1k–10k workers with flat SoA per-worker state,
///  - elastic membership (graceful leave + delayed rejoin),
///  - stragglers (per-worker multiplicative slowdown episodes),
///  - correlated rack-level failure bursts (failure-domain losses with the
///    same distinct-victim sampling semantics as sample_server_losses),
///  - spot-style preemption with a notice window (a flush fits inside the
///    notice, so checkpointing strategies lose no work — only capacity),
///  - dollar-denominated TCO output (GPU-hours × fleet × $/GPU-hour).
///
/// Two execution paths share one accounting model:
///  - scenarios with no fleet axes enabled (`ScenarioConfig::legacy()`)
///    replay the historical scalar walk with memoized step costs and
///    batched failure draws — bit-identical to run_with_failures_reference
///    (gated by bench_sim and the checked-in goldens);
///  - scenarios with any fleet axis enabled run on the event core
///    (event_queue.h), processing every failure process as a stream of
///    timed events against SoA fleet state.
///
/// Determinism: every stochastic stream is seeded as
/// SplitMix64(seed ^ tag); results are a pure function of
/// (cluster, workload, strategy, scenario) and independent of the queue
/// backend and of sweep thread counts (test_sim_engine asserts both).

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sim/event_queue.h"
#include "sim/run_sim.h"

namespace lowdiff::sim {

/// Elastic membership: workers leave gracefully (no lost work) and rejoin
/// after a provisioning delay; each membership change pauses training for a
/// short resync (rendezvous + reshard).
struct ElasticSpec {
  double leave_mtbf_sec = 0.0;       ///< mean time between leaves; 0 = off
  double rejoin_delay_mean_sec = 300.0;  ///< leave -> rejoin delay (exponential)
  double resync_sec = 5.0;           ///< training pause per membership change
  std::size_t min_workers = 1;       ///< leaves never shrink the fleet below
};

/// Straggler episodes: a worker's iterations slow by a multiplicative
/// factor drawn as 1 + Exp(slowdown_mean - 1) — mean slowdown_mean,
/// variance (slowdown_mean - 1)^2 — for an Exp(episode_mean_sec) duration.
/// Synchronous data parallelism runs at the pace of the slowest worker.
struct StragglerSpec {
  double onset_mtbf_sec = 0.0;   ///< mean time between onsets; 0 = off
  double slowdown_mean = 1.5;    ///< mean multiplicative slowdown (> 1)
  double episode_mean_sec = 300.0;
};

/// Correlated rack-level failures: bursts wipe a failure domain at once
/// (power/switch loss).  Victims are a distinct uniform sample of the
/// rack's active workers — sample_server_losses semantics, Floyd's
/// algorithm — and return together when the rack is repaired.
struct CorrelatedSpec {
  double burst_mtbf_sec = 0.0;   ///< mean time between bursts; 0 = off
  std::size_t num_racks = 8;     ///< failure domains (workers round-robin)
  double rack_fraction = 1.0;    ///< fraction of the rack's workers killed
  double repair_mean_sec = 600.0;  ///< burst -> rack back online
};

/// Spot-style preemption: a reclaim notice arrives, the worker is taken
/// after `notice_sec`, and replacement capacity arrives later.  The notice
/// window is long enough to flush in-flight checkpoint state, so
/// checkpointing strategies lose capacity but no work.
struct PreemptionSpec {
  double preempt_mtbf_sec = 0.0;  ///< mean time between reclaims; 0 = off
  double notice_sec = 120.0;      ///< reclaim notice window
  double replacement_mean_sec = 300.0;  ///< kill -> replacement online
};

struct CostSpec {
  double gpu_hour_usd = 0.0;  ///< on-demand price per GPU-hour; 0 = no TCO
};

struct ScenarioConfig {
  /// Fleet size in workers (GPUs).  0 = use cluster.num_gpus unchanged;
  /// otherwise overrides it (sync costs re-derive from the new size).
  std::size_t num_workers = 0;
  double train_work_sec = 3600.0;
  double mtbf_sec = 3600.0;  ///< base (cluster-level) failure process
  std::uint64_t seed = 1;
  double software_fraction = 0.5;
  double restart_overhead_sec = 15.0;

  ElasticSpec elastic;
  StragglerSpec stragglers;
  CorrelatedSpec correlated;
  PreemptionSpec preemption;
  CostSpec cost;

  /// True when no fleet axis is enabled — the scenario is expressible in
  /// the historical engine and must reproduce it bit-identically.
  bool legacy() const {
    return elastic.leave_mtbf_sec == 0.0 && stragglers.onset_mtbf_sec == 0.0 &&
           correlated.burst_mtbf_sec == 0.0 &&
           preemption.preempt_mtbf_sec == 0.0;
  }

  /// Legacy bridge: lifts a FailureRunConfig into a scenario (no fleet
  /// axes), preserving every knob.
  static ScenarioConfig from(const FailureRunConfig& run) {
    ScenarioConfig s;
    s.train_work_sec = run.train_work_sec;
    s.mtbf_sec = run.mtbf_sec;
    s.seed = run.seed;
    s.software_fraction = run.software_fraction;
    s.restart_overhead_sec = run.restart_overhead_sec;
    return s;
  }
};

/// Scenario outcome: the legacy accounting plus fleet counters and TCO.
struct FleetRunResult {
  FailureRunResult base;      ///< wall/wasted/ratio/overhead/recovery/redo
  std::uint64_t events = 0;   ///< events processed by the engine
  std::uint64_t rack_bursts = 0;
  std::uint64_t preemptions = 0;  ///< reclaims that actually killed a worker
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t straggler_episodes = 0;
  /// Wall seconds of capacity lost to stragglers / shrunken membership
  /// while training ran (excluded from overhead_time/recovery_time).
  double degraded_time = 0.0;
  /// TCO: the whole fleet bills for every wall second.
  double gpu_hours_total = 0.0;
  double gpu_hours_wasted = 0.0;
  double cost_total_usd = 0.0;
  double cost_wasted_usd = 0.0;
};

/// Memoized steady-state step costs for one (cluster, workload, strategy):
/// everything the per-failure hot loop needs, so StrategyTimeline's closed
/// forms run once per configuration instead of once per run (the
/// grid-sweep bottleneck ROADMAP names).  Values are produced by the exact
/// expressions of the reference engine, so memoized runs stay bit-identical.
struct SteadyCosts {
  double iter_cost = 0.0;        ///< steady-state seconds per iteration
  double iter_baseline = 0.0;    ///< no-checkpoint seconds per iteration
  double productive_frac = 1.0;  ///< iter_baseline / iter_cost
  double lost_sw_sec = 0.0;      ///< expected lost work per software failure
  double lost_hw_sec = 0.0;      ///< expected lost work per hardware failure
  double load_replay_sw_sec = 0.0;  ///< recovery load+replay, software
  double load_replay_hw_sec = 0.0;  ///< recovery load+replay, hardware
  bool strategy_none = false;    ///< kNone: every failure loses everything
};

SteadyCosts compute_steady_costs(const ClusterSpec& cluster,
                                 const Workload& workload,
                                 const StrategyConfig& strategy);

/// Thread-safe memo table over compute_steady_costs.  Sweeps pre-warm it
/// serially (run_sweep), after which parallel cells only read.
class StepCostCache {
 public:
  const SteadyCosts& get(const ClusterSpec& cluster, const Workload& workload,
                         const StrategyConfig& strategy);
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::unique_ptr<SteadyCosts>> memo_;
};

/// Runs one scenario to completion.  Deterministic in scenario.seed;
/// independent of `policy` (queue backends are pop-order equivalent) —
/// the knob exists for the benchmarked comparison and tests.
FleetRunResult run_scenario(const ClusterSpec& cluster, const Workload& workload,
                            const StrategyConfig& strategy,
                            const ScenarioConfig& scenario,
                            StepCostCache* cache = nullptr,
                            QueuePolicy policy = QueuePolicy::kAdaptive);

/// Hot-path variant with pre-resolved step costs: skips the memo lookup
/// entirely.  `costs` must come from compute_steady_costs (or a
/// StepCostCache) for the *effective* cluster — cluster with
/// scenario.num_workers applied — or results are meaningless.  run_sweep
/// resolves each cell's costs once during pre-warm and runs cells through
/// this entry.
FleetRunResult run_scenario(const ClusterSpec& cluster, const Workload& workload,
                            const StrategyConfig& strategy,
                            const ScenarioConfig& scenario,
                            const SteadyCosts& costs,
                            QueuePolicy policy = QueuePolicy::kAdaptive);

/// Empirical companion to RepairModel::concurrent_loss_probability: runs
/// the aggregate failure/repair process (arrivals at num_servers/mtbf,
/// exponential repairs) on the event queue for `horizon_sec` and returns
/// the fraction of time at least `overlapping` servers were simultaneously
/// inside a repair window.  test_sim_engine cross-checks this against the
/// M/G/inf closed form at 1k and 10k workers.
double measure_concurrent_downtime(std::size_t num_servers, double mtbf_sec,
                                   double mean_repair_sec,
                                   std::size_t overlapping, double horizon_sec,
                                   std::uint64_t seed,
                                   QueuePolicy policy = QueuePolicy::kAdaptive);

}  // namespace lowdiff::sim
