#pragma once

/// \file cluster.h
/// Hardware description of the simulated training cluster, mirroring the
/// paper's testbed (§6.1, Table II(a)): servers with 4 GPUs, NVLink within
/// a server, 25 Gbps InfiniBand across servers, PCIe Gen4 (A100) or Gen3
/// (V100S), and a local NVMe SSD per server.
///
/// Throughput constants are calibration inputs for the analytic timeline;
/// they set absolute speeds only — every reproduced result is a ratio.

#include <cstddef>
#include <string>

#include "storage/bandwidth.h"

namespace lowdiff::sim {

/// GPU generation: relative compute speed + host link.
struct GpuGeneration {
  std::string name;
  /// Multiplier on per-iteration compute time (A100 = 1.0).
  double compute_scale = 1.0;
  LinkSpec pcie = links::pcie_gen4();
};

namespace gpus {
inline GpuGeneration a100() { return {"A100", 1.0, links::pcie_gen4()}; }
inline GpuGeneration v100s() { return {"V100S", 2.2, links::pcie_gen3()}; }
}  // namespace gpus

struct ClusterSpec {
  GpuGeneration gpu = gpus::a100();
  std::size_t num_gpus = 8;
  std::size_t gpus_per_server = 4;

  /// Cross-server fabric (shared by the GPUs of one server).
  LinkSpec network = links::ib_25gbps();
  /// Local NVMe SSD sustained write path, shared by the server's GPUs.
  LinkSpec storage = {2.2 * kGB, 50e-6};
  /// Persistent main memory (PMEM) write path for the PCcheck baseline
  /// (§2.2), shared by the server's GPUs.
  LinkSpec pmem = {8.0 * kGB, 1e-6};
  /// SSD read path (recovery).
  double storage_read_bytes_per_sec = 3.2 * kGB;

  /// GPU top-k selection throughput (elements/second).
  double gpu_compress_throughput = 2.0e9;
  /// GPU elementwise throughput for differential computation (elements/s).
  double gpu_diff_throughput = 2.0e10;
  /// Host-side Adam replica update throughput (elements/second) — the
  /// LowDiff+ CPU update path (torch.set_num_threads over all cores).
  double cpu_update_throughput = 2.0e9;
  /// Host-side merge throughput during recovery (elements/second).
  double cpu_merge_throughput = 4.0e9;

  std::size_t servers() const {
    return (num_gpus + gpus_per_server - 1) / gpus_per_server;
  }
};

}  // namespace lowdiff::sim
