#include "sim/workload.h"

#include "common/error.h"

namespace lowdiff::sim {
namespace {

struct ModelEntry {
  const char* name;
  std::uint64_t params;
  /// Calibrated fwd+bwd+update seconds per iteration on one A100 at the
  /// paper's batch sizes.  Only ratios between checkpointing costs and
  /// these times matter for the reproduced results.
  double a100_iter_sec;
};

constexpr ModelEntry kModels[] = {
    {"ResNet-50", 25'600'000ull, 0.055},
    {"ResNet-101", 44'500'000ull, 0.095},
    {"VGG-16", 138'800'000ull, 0.140},
    {"VGG-19", 143'700'000ull, 0.160},
    {"BERT-B", 110'000'000ull, 0.110},
    {"BERT-L", 334'000'000ull, 0.280},
    {"GPT2-S", 117'000'000ull, 0.120},
    {"GPT2-L", 762'000'000ull, 0.450},
};

}  // namespace

Workload Workload::for_model(const std::string& name, const GpuGeneration& gpu,
                             double rho) {
  for (const auto& entry : kModels) {
    if (name == entry.name) {
      Workload w;
      w.model = name;
      w.params = entry.params;
      w.iter_compute_sec = entry.a100_iter_sec * gpu.compute_scale;
      w.rho = rho;
      return w;
    }
  }
  throw Error("unknown workload model: " + name, std::source_location::current());
}

}  // namespace lowdiff::sim
