#pragma once

/// \file sweep.h
/// Parallel scenario-grid sweeper (DESIGN.md §11).  A sweep is a flat list
/// of self-contained cells — (cluster, workload, strategy, scenario) — run
/// across the shared ThreadPool with deterministic results:
///
///  - each cell's seed is derived as SplitMix64(base_seed ^ cell_index),
///    so cells are statistically independent yet reproducible, and adding
///    a cell never perturbs another cell's stream;
///  - the step-cost memo (StepCostCache) is pre-warmed serially over the
///    distinct (cluster, workload, strategy) keys before the parallel
///    phase, so workers only read it;
///  - results land in a pre-sized vector slot per cell — no locks, no
///    ordering dependence — making sweep output a pure function of the
///    cell list, independent of thread count (asserted by test_sim_engine
///    across {1, 2, 8} threads).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/scenario.h"

namespace lowdiff {
class ThreadPool;
}

namespace lowdiff::sim {

/// One grid cell.  `scenario.seed` is overwritten by the sweeper with the
/// per-cell derived seed unless `keep_seed` is set.
struct SweepCell {
  std::string label;
  ClusterSpec cluster;
  Workload workload;
  StrategyConfig strategy;
  ScenarioConfig scenario;
  bool keep_seed = false;  ///< run with scenario.seed exactly as given
};

struct SweepOptions {
  std::uint64_t base_seed = 1;
  /// Queue backend for every cell (kAdaptive in production; tests compare
  /// kCalendar vs kHeap through this knob).
  QueuePolicy queue = QueuePolicy::kAdaptive;
};

struct SweepCellResult {
  std::string label;
  std::string strategy_name;
  std::size_t workers = 0;
  FleetRunResult run;
};

/// Per-strategy roll-up of a sweep — the dollar-denominated summary every
/// sim bench emits (EXPERIMENTS.md "TCO JSON schema").
struct TcoSummary {
  std::string strategy_name;
  std::size_t cells = 0;
  double gpu_hours_total = 0.0;
  double gpu_hours_wasted = 0.0;
  double cost_total_usd = 0.0;
  double cost_wasted_usd = 0.0;
  double worst_wasted_ratio = 0.0;  ///< max over cells of wasted/wall
};

/// Runs every cell on `pool` (serial if null).  Results are index-aligned
/// with `cells` and independent of the pool's thread count.
std::vector<SweepCellResult> run_sweep(const std::vector<SweepCell>& cells,
                                       const SweepOptions& options,
                                       ThreadPool* pool,
                                       StepCostCache* cache = nullptr);

/// Groups per-cell results by strategy name, accumulating GPU-hours and
/// dollars.  Order: first appearance in `results`.
std::vector<TcoSummary> summarize_tco(const std::vector<SweepCellResult>& results);

}  // namespace lowdiff::sim
