#include "sim/sweep.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace lowdiff::sim {

std::vector<SweepCellResult> run_sweep(const std::vector<SweepCell>& cells,
                                       const SweepOptions& options,
                                       ThreadPool* pool,
                                       StepCostCache* cache) {
  StepCostCache local_cache;
  StepCostCache* memo = cache ? cache : &local_cache;

  // Serial pre-warm: the timeline calibration (400+ warm iterations per
  // distinct configuration) runs exactly once per memo key, before the
  // parallel phase turns the cache read-only.  Each cell keeps a direct
  // pointer to its costs so the hot phase skips the lookup entirely
  // (pointers are stable — the cache stores unique_ptr values).
  std::vector<const SteadyCosts*> costs(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const SweepCell& cell = cells[i];
    ClusterSpec eff = cell.cluster;
    if (cell.scenario.num_workers > 0) eff.num_gpus = cell.scenario.num_workers;
    costs[i] = &memo->get(eff, cell.workload, cell.strategy);
  }

  std::vector<SweepCellResult> results(cells.size());
  const auto run_cell = [&](std::size_t i) {
    const SweepCell& cell = cells[i];
    ScenarioConfig scenario = cell.scenario;
    if (!cell.keep_seed) {
      scenario.seed = SplitMix64(options.base_seed ^
                                 static_cast<std::uint64_t>(i)).next();
    }
    SweepCellResult& out = results[i];
    out.label = cell.label;
    out.strategy_name = to_string(cell.strategy.kind);
    out.workers = cell.scenario.num_workers > 0 ? cell.scenario.num_workers
                                                : cell.cluster.num_gpus;
    out.run = run_scenario(cell.cluster, cell.workload, cell.strategy,
                           scenario, *costs[i], options.queue);
  };

  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for(0, cells.size(), run_cell);
  } else {
    for (std::size_t i = 0; i < cells.size(); ++i) run_cell(i);
  }
  return results;
}

std::vector<TcoSummary> summarize_tco(
    const std::vector<SweepCellResult>& results) {
  std::vector<TcoSummary> out;
  for (const SweepCellResult& r : results) {
    auto it = std::find_if(out.begin(), out.end(), [&](const TcoSummary& s) {
      return s.strategy_name == r.strategy_name;
    });
    if (it == out.end()) {
      out.push_back(TcoSummary{r.strategy_name});
      it = out.end() - 1;
    }
    ++it->cells;
    it->gpu_hours_total += r.run.gpu_hours_total;
    it->gpu_hours_wasted += r.run.gpu_hours_wasted;
    it->cost_total_usd += r.run.cost_total_usd;
    it->cost_wasted_usd += r.run.cost_wasted_usd;
    const double wall = r.run.base.wall_time;
    if (wall > 0.0) {
      it->worst_wasted_ratio =
          std::max(it->worst_wasted_ratio, r.run.base.wasted_time / wall);
    }
  }
  return out;
}

}  // namespace lowdiff::sim
