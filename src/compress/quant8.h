#pragma once

/// \file quant8.h
/// 8-bit block quantization (§2.3 "Quantization"): each block of 256
/// elements stores one fp32 max-abs scale plus one signed 8-bit code per
/// element.  Nominal ratio ≈ 0.25 plus per-block scale overhead.

#include "compress/compressor.h"

namespace lowdiff {

class Quant8Compressor final : public Compressor {
 public:
  static constexpr std::size_t kBlock = 256;

  CompressedGrad compress(std::span<const float> grad,
                          std::uint64_t iteration) const override;
  void decompress(const CompressedGrad& payload, std::span<float> out) const override;

  double nominal_ratio() const override {
    return (1.0 + 4.0 / static_cast<double>(kBlock)) / 4.0;
  }
  std::string name() const override { return "quant8"; }
  std::unique_ptr<Compressor> clone() const override {
    auto c = std::make_unique<Quant8Compressor>();
    c->set_thread_pool(thread_pool());
    return c;
  }
};

}  // namespace lowdiff
