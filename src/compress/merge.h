#pragma once

/// \file merge.h
/// Aggregation of compressed gradients.
///
/// Batched gradient writing (paper §4.2, Fig. 4) accumulates several
/// compressed differentials in CPU memory and persists them as a single
/// batched checkpoint C^B.  For sparse payloads the batch is the index-wise
/// union with summed values; the batch records the iteration range it
/// covers so recovery can replay it in order.

#include <span>
#include <vector>

#include "compress/compressed_grad.h"
#include "compress/compressor.h"

namespace lowdiff {

/// A batch of compressed differentials written as one I/O operation.
struct BatchedGrad {
  std::uint64_t first_iteration = 0;
  std::uint64_t last_iteration = 0;
  /// Individual payloads in iteration order.  Kept (rather than only the
  /// merged sum) because optimizer replay is order-dependent; the merged
  /// form below is used for size accounting and additive-delta recovery.
  std::vector<CompressedGrad> members;

  std::size_t byte_size() const;
  std::size_t count() const { return members.size(); }

  /// Exact size serialize()/serialize_into() produce (byte_size() plus the
  /// member-count and per-member length prefixes).
  std::size_t serialized_size() const;

  std::vector<std::byte> serialize() const;

  /// Writes the serialized form into a caller-provided buffer of at least
  /// serialized_size() bytes; members serialize in place, no temporaries.
  /// Returns the bytes written.
  std::size_t serialize_into(std::span<std::byte> out) const;

  static BatchedGrad deserialize(std::span<const std::byte> bytes);
};

/// Index-union sum of sparse payloads (all kTopK/kRandomK over the same
/// dense size).  The result's iteration is the last member's.  This is the
/// "tensor addition" aggregation of the batched-writing module; it is what
/// the write path would persist when the consumer only needs the summed
/// update (e.g. SGD deltas, which compose additively).
///
/// Two implementations behind one dispatch, both bit-identical to
/// merge_sparse_sum_pairwise (duplicate coordinates accumulate in payload
/// order, the cascade's exact left fold): a dense scatter-accumulator,
/// O(total + dense_size), when the batch is dense in aggregate; and a
/// k-way heap union-sum, O(total·log B) for B payloads, for the sparse
/// regime.  Both replace the pairwise cascade's O(total·B).
CompressedGrad merge_sparse_sum(std::span<const CompressedGrad> payloads);

/// Reference left-fold of two-pointer merges (the original implementation).
/// Kept for the bit-exactness tests and the bench_micro baseline column.
CompressedGrad merge_sparse_sum_pairwise(std::span<const CompressedGrad> payloads);

}  // namespace lowdiff
