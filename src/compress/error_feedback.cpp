#include "compress/error_feedback.h"

#include "common/error.h"
#include "tensor/ops.h"

namespace lowdiff {

ErrorFeedback::ErrorFeedback(std::unique_ptr<Compressor> inner,
                             std::size_t dense_size)
    : inner_(std::move(inner)), residual_(dense_size), scratch_(dense_size) {
  LOWDIFF_ENSURE(inner_ != nullptr, "null inner compressor");
}

CompressedGrad ErrorFeedback::compress(std::span<const float> grad,
                                       std::uint64_t iteration) {
  LOWDIFF_ENSURE(grad.size() == residual_.size(), "gradient size mismatch");
  // corrected = grad + residual
  ops::add(grad, residual_.cspan(), scratch_.span());
  CompressedGrad payload = inner_->compress(scratch_.cspan(), iteration);
  // residual = corrected - decompress(payload)
  inner_->decompress(payload, residual_.span());
  ops::sub(scratch_.cspan(), residual_.cspan(), residual_.span());
  return payload;
}

}  // namespace lowdiff
