#include "compress/quant8.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/thread_pool.h"

namespace lowdiff {

CompressedGrad Quant8Compressor::compress(std::span<const float> grad,
                                          std::uint64_t iteration) const {
  CompressedGrad out;
  out.scheme = CompressionScheme::kQuant8;
  out.dense_size = grad.size();
  out.iteration = iteration;
  const std::size_t blocks = (grad.size() + kBlock - 1) / kBlock;
  out.scales.resize(blocks);
  out.codes.resize(grad.size());

  // Blocks are independent (each writes its own scale slot and code range),
  // so block-parallel execution is bit-identical to the serial loop.
  auto quantize_block = [&](std::size_t b) {
    const std::size_t lo = b * kBlock;
    const std::size_t hi = std::min(grad.size(), lo + kBlock);
    float max_abs = 0.0f;
    for (std::size_t i = lo; i < hi; ++i) {
      max_abs = std::max(max_abs, std::fabs(grad[i]));
    }
    const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
    out.scales[b] = scale;
    for (std::size_t i = lo; i < hi; ++i) {
      const float q = std::round(grad[i] / scale);
      const auto code = static_cast<std::int8_t>(std::clamp(q, -127.0f, 127.0f));
      out.codes[i] = static_cast<std::uint8_t>(code);
    }
  };

  ThreadPool* pool = thread_pool();
  if (pool != nullptr && pool->size() > 1 && blocks >= 64) {
    pool->parallel_for(0, blocks, quantize_block);
  } else {
    for (std::size_t b = 0; b < blocks; ++b) quantize_block(b);
  }
  return out;
}

void Quant8Compressor::decompress(const CompressedGrad& payload,
                                  std::span<float> out) const {
  LOWDIFF_ENSURE(payload.scheme == CompressionScheme::kQuant8,
                 "payload scheme mismatch");
  LOWDIFF_ENSURE(out.size() == payload.dense_size, "decompress size mismatch");
  LOWDIFF_ENSURE(payload.codes.size() == payload.dense_size, "code count mismatch");
  for (std::size_t i = 0; i < out.size(); ++i) {
    const float scale = payload.scales[i / kBlock];
    out[i] = static_cast<float>(static_cast<std::int8_t>(payload.codes[i])) * scale;
  }
}

}  // namespace lowdiff
