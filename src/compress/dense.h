#pragma once

/// \file dense.h
/// Identity "compressor": the payload carries the full gradient.  Used by
/// the non-compression scenarios (§5, LowDiff+) so the same queue/write
/// machinery handles both modes.

#include "compress/compressor.h"

#include <algorithm>

#include "common/error.h"

namespace lowdiff {

class DenseCompressor final : public Compressor {
 public:
  CompressedGrad compress(std::span<const float> grad,
                          std::uint64_t iteration) const override {
    CompressedGrad out;
    out.scheme = CompressionScheme::kDense;
    out.dense_size = grad.size();
    out.iteration = iteration;
    out.values.assign(grad.begin(), grad.end());
    return out;
  }

  void decompress(const CompressedGrad& payload, std::span<float> out) const override {
    LOWDIFF_ENSURE(payload.scheme == CompressionScheme::kDense,
                   "payload scheme mismatch");
    LOWDIFF_ENSURE(out.size() == payload.dense_size, "decompress size mismatch");
    std::copy(payload.values.begin(), payload.values.end(), out.begin());
  }

  double nominal_ratio() const override { return 1.0; }
  std::string name() const override { return "dense"; }
  std::unique_ptr<Compressor> clone() const override {
    auto c = std::make_unique<DenseCompressor>();
    c->set_thread_pool(thread_pool());
    return c;
  }
};

}  // namespace lowdiff
