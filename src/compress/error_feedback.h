#pragma once

/// \file error_feedback.h
/// Error-feedback (residual accumulation) wrapper around any lossy
/// compressor.  The residual each iteration is added back into the next
/// gradient before compression — standard practice for convergent
/// sparsified training (Stich et al.), and the configuration the paper's
/// training loop uses implicitly with top-k.
///
/// Stateful per worker; not shared across threads.

#include <memory>

#include "compress/compressor.h"
#include "tensor/tensor.h"

namespace lowdiff {

class ErrorFeedback {
 public:
  ErrorFeedback(std::unique_ptr<Compressor> inner, std::size_t dense_size);

  /// Compresses (grad + residual) and updates the residual to what the
  /// compressed payload failed to represent.  `grad` itself is not mutated.
  CompressedGrad compress(std::span<const float> grad, std::uint64_t iteration);

  const Compressor& inner() const { return *inner_; }
  std::span<const float> residual() const { return residual_.span(); }
  void reset() { residual_.zero(); }

 private:
  std::unique_ptr<Compressor> inner_;
  Tensor residual_;
  Tensor scratch_;
};

}  // namespace lowdiff
