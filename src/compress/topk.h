#pragma once

/// \file topk.h
/// Top-K magnitude sparsification — the paper's default compression
/// (ρ = 0.01, §6.1).  Keeps the k = max(1, round(ρ·n)) largest-magnitude
/// coordinates; ties break toward the lower index so compression is a pure
/// function of the input.

#include "compress/compressor.h"

namespace lowdiff {

class TopKCompressor final : public Compressor {
 public:
  /// ρ ∈ (0, 1]: fraction of coordinates retained.
  explicit TopKCompressor(double ratio);

  CompressedGrad compress(std::span<const float> grad,
                          std::uint64_t iteration) const override;
  void decompress(const CompressedGrad& payload, std::span<float> out) const override;

  double nominal_ratio() const override { return ratio_; }
  std::string name() const override;
  std::unique_ptr<Compressor> clone() const override {
    auto c = std::make_unique<TopKCompressor>(ratio_);
    c->set_thread_pool(thread_pool());
    return c;
  }

  /// Number of retained coordinates for a gradient of n elements.
  std::size_t k_for(std::size_t n) const;

 private:
  double ratio_;
};

}  // namespace lowdiff
