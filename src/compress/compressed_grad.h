#pragma once

/// \file compressed_grad.h
/// Self-describing compressed-gradient payload — the object LowDiff reuses
/// as a differential checkpoint (paper §3.3).  It is what flows through the
/// ReusingQueue, what the batched writer aggregates, and what the recovery
/// process decompresses and replays through the optimizer.

#include <cstdint>
#include <span>
#include <vector>

namespace lowdiff {

enum class CompressionScheme : std::uint8_t {
  kDense = 0,    ///< no compression (LowDiff+ path)
  kTopK = 1,     ///< magnitude sparsification
  kRandomK = 2,  ///< random sparsification
  kQuant8 = 3,   ///< 8-bit block quantization
};

const char* to_string(CompressionScheme scheme);

struct CompressedGrad {
  CompressionScheme scheme = CompressionScheme::kDense;
  std::uint64_t dense_size = 0;  ///< element count of the original gradient
  std::uint64_t iteration = 0;   ///< training iteration that produced it

  /// Sparse schemes: sorted coordinate list + matching values.
  std::vector<std::uint32_t> indices;
  std::vector<float> values;

  /// Quantized schemes: one fp32 scale per block + one code byte per element.
  std::vector<float> scales;
  std::vector<std::uint8_t> codes;

  /// Wire size in bytes (what a differential checkpoint write transfers).
  std::size_t byte_size() const;

  /// Exact size serialize()/serialize_into() produce: byte_size() plus the
  /// four vector length prefixes.
  std::size_t serialized_size() const;

  /// Serialization used by the storage layer (CRC framing added there).
  std::vector<std::byte> serialize() const;

  /// Writes the serialized form into a caller-provided buffer of at least
  /// serialized_size() bytes (zero-copy datapath: callers presize pooled
  /// buffers exactly).  Returns the bytes written.
  std::size_t serialize_into(std::span<std::byte> out) const;

  static CompressedGrad deserialize(std::span<const std::byte> bytes);

  bool operator==(const CompressedGrad& other) const = default;
};

}  // namespace lowdiff
