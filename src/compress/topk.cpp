#include "compress/topk.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace lowdiff {

TopKCompressor::TopKCompressor(double ratio) : ratio_(ratio) {
  LOWDIFF_ENSURE(ratio > 0.0 && ratio <= 1.0, "top-k ratio must be in (0, 1]");
}

std::size_t TopKCompressor::k_for(std::size_t n) const {
  if (n == 0) return 0;
  const auto k = static_cast<std::size_t>(std::llround(ratio_ * static_cast<double>(n)));
  return std::clamp<std::size_t>(k, 1, n);
}

CompressedGrad TopKCompressor::compress(std::span<const float> grad,
                                        std::uint64_t iteration) const {
  CompressedGrad out;
  out.scheme = CompressionScheme::kTopK;
  out.dense_size = grad.size();
  out.iteration = iteration;
  const std::size_t k = k_for(grad.size());
  if (k == 0) return out;

  std::vector<std::uint32_t> order(grad.size());
  std::iota(order.begin(), order.end(), 0u);
  auto by_magnitude = [&grad](std::uint32_t a, std::uint32_t b) {
    const float fa = std::fabs(grad[a]);
    const float fb = std::fabs(grad[b]);
    if (fa != fb) return fa > fb;
    return a < b;  // deterministic tie-break
  };
  std::nth_element(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k) - 1,
                   order.end(), by_magnitude);
  order.resize(k);
  std::sort(order.begin(), order.end());  // ascending coordinates on the wire

  out.indices = std::move(order);
  out.values.reserve(k);
  for (std::uint32_t idx : out.indices) out.values.push_back(grad[idx]);
  return out;
}

void TopKCompressor::decompress(const CompressedGrad& payload,
                                std::span<float> out) const {
  LOWDIFF_ENSURE(payload.scheme == CompressionScheme::kTopK,
                 "payload scheme mismatch");
  LOWDIFF_ENSURE(out.size() == payload.dense_size, "decompress size mismatch");
  std::fill(out.begin(), out.end(), 0.0f);
  for (std::size_t i = 0; i < payload.indices.size(); ++i) {
    out[payload.indices[i]] = payload.values[i];
  }
}

std::string TopKCompressor::name() const {
  return "topk(rho=" + std::to_string(ratio_) + ")";
}

}  // namespace lowdiff
