#include "compress/topk.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <numeric>

#include "common/error.h"
#include "common/thread_pool.h"

namespace lowdiff {
namespace {

/// Below this size the chunked path cannot win: key packing + candidate
/// compaction costs more than the serial nth_element saves.
constexpr std::size_t kParallelThreshold = std::size_t{1} << 15;

/// Packs the selection order into one integer so chunked selection is a
/// plain u64 compare: high 32 bits are the magnitude bits of the float
/// (sign cleared — for non-NaN values integer order on these bits equals
/// fabs order), low 32 bits are ~index so that on equal magnitudes the
/// LOWER index wins under descending key order.  This is the exact total
/// order of the serial comparator below, and because a total order has a
/// unique top-k set, any chunking of the selection produces bit-identical
/// output.
inline std::uint32_t mag_bits(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits & 0x7FFFFFFFu;  // sign cleared: integer order == fabs order
}

inline std::uint64_t pack_key(float v, std::uint32_t index) {
  return (static_cast<std::uint64_t>(mag_bits(v)) << 32) |
         static_cast<std::uint64_t>(~index);
}

inline std::uint32_t unpack_index(std::uint64_t key) {
  return ~static_cast<std::uint32_t>(key);
}

/// Histogram (radix) top-k selection, chunk-parallel.
///
/// Two linear passes instead of an O(n) nth_element with its data
/// movement: pass 1 histograms the magnitude's high 15 bits per chunk;
/// the folded histogram locates the threshold bucket t such that buckets
/// above t hold fewer than k entries but t's entries push past k.  Pass 2
/// collects every index above t (already the top of the order) plus the
/// full packed keys inside t, from which the remaining winners are picked
/// by nth_element on that (normally tiny) bucket.
///
/// Selection operates on the pack_key total order (|v| descending, index
/// ascending on ties) and a total order has a unique top-k set, so the
/// result is bit-identical to select_serial for any chunk count.
void select_chunked(std::span<const float> grad, std::size_t k,
                    ThreadPool& pool, std::vector<std::uint32_t>& indices) {
  const std::size_t n = grad.size();
  const std::size_t chunks =
      std::min<std::size_t>(pool.size(), (n + kParallelThreshold - 1) /
                                             kParallelThreshold);
  const std::size_t per = (n + chunks - 1) / chunks;
  constexpr std::size_t kBuckets = std::size_t{1} << 15;  // mag_bits >> 16

  auto chunk_lo = [&](std::size_t c) { return std::min(n, c * per); };
  auto chunk_hi = [&](std::size_t c) { return std::min(n, c * per + per); };

  // Pass 1: per-chunk bucket counts.
  std::vector<std::uint32_t> hist(chunks * kBuckets, 0);
  pool.parallel_for(0, chunks, [&](std::size_t c) {
    std::uint32_t* h = hist.data() + c * kBuckets;
    const std::size_t hi = chunk_hi(c);
    for (std::size_t i = chunk_lo(c); i < hi; ++i) {
      ++h[mag_bits(grad[i]) >> 16];
    }
  });

  // Threshold bucket: buckets above t hold k_above < k entries in total.
  std::size_t t = 0, k_above = 0;
  for (std::size_t b = kBuckets; b-- > 0;) {
    std::size_t in_bucket = 0;
    for (std::size_t c = 0; c < chunks; ++c) in_bucket += hist[c * kBuckets + b];
    if (k_above + in_bucket >= k) {
      t = b;
      break;
    }
    k_above += in_bucket;
  }
  const std::size_t need = k - k_above;  // winners still owed by bucket t

  // Exact output slots per chunk from the histograms: indices above t land
  // ascending (chunks are ordered, scans are ascending), no concatenation.
  std::vector<std::size_t> above_off(chunks + 1, 0), t_off(chunks + 1, 0);
  for (std::size_t c = 0; c < chunks; ++c) {
    std::size_t above = 0;
    for (std::size_t b = t + 1; b < kBuckets; ++b) above += hist[c * kBuckets + b];
    above_off[c + 1] = above_off[c] + above;
    t_off[c + 1] = t_off[c] + hist[c * kBuckets + t];
  }

  indices.resize(k);
  std::vector<std::uint64_t> tkeys(t_off[chunks]);
  pool.parallel_for(0, chunks, [&](std::size_t c) {
    std::uint32_t* above_out = indices.data() + above_off[c];
    std::uint64_t* t_out = tkeys.data() + t_off[c];
    const std::size_t hi = chunk_hi(c);
    for (std::size_t i = chunk_lo(c); i < hi; ++i) {
      const std::uint32_t bucket = mag_bits(grad[i]) >> 16;
      if (bucket > t) {
        *above_out++ = static_cast<std::uint32_t>(i);
      } else if (bucket == t) {
        *t_out++ = pack_key(grad[i], static_cast<std::uint32_t>(i));
      }
    }
  });

  if (need < tkeys.size()) {
    std::nth_element(tkeys.begin(),
                     tkeys.begin() + static_cast<std::ptrdiff_t>(need) - 1,
                     tkeys.end(), std::greater<std::uint64_t>());
  }
  for (std::size_t i = 0; i < need; ++i) {
    indices[k_above + i] = unpack_index(tkeys[i]);
  }
  std::sort(indices.begin(), indices.end());  // ascending coordinates on the wire
}

void select_serial(std::span<const float> grad, std::size_t k,
                   std::vector<std::uint32_t>& indices) {
  indices.resize(grad.size());
  std::iota(indices.begin(), indices.end(), 0u);
  auto by_magnitude = [&grad](std::uint32_t a, std::uint32_t b) {
    const float fa = std::fabs(grad[a]);
    const float fb = std::fabs(grad[b]);
    if (fa != fb) return fa > fb;
    return a < b;  // deterministic tie-break
  };
  std::nth_element(indices.begin(),
                   indices.begin() + static_cast<std::ptrdiff_t>(k) - 1,
                   indices.end(), by_magnitude);
  indices.resize(k);
  std::sort(indices.begin(), indices.end());  // ascending coordinates on the wire
}

}  // namespace

TopKCompressor::TopKCompressor(double ratio) : ratio_(ratio) {
  LOWDIFF_ENSURE(ratio > 0.0 && ratio <= 1.0, "top-k ratio must be in (0, 1]");
}

std::size_t TopKCompressor::k_for(std::size_t n) const {
  if (n == 0) return 0;
  const auto k = static_cast<std::size_t>(std::llround(ratio_ * static_cast<double>(n)));
  return std::clamp<std::size_t>(k, 1, n);
}

CompressedGrad TopKCompressor::compress(std::span<const float> grad,
                                        std::uint64_t iteration) const {
  CompressedGrad out;
  out.scheme = CompressionScheme::kTopK;
  out.dense_size = grad.size();
  out.iteration = iteration;
  const std::size_t k = k_for(grad.size());
  if (k == 0) return out;

  ThreadPool* pool = thread_pool();
  if (pool != nullptr && pool->size() > 1 && grad.size() >= 2 * kParallelThreshold) {
    select_chunked(grad, k, *pool, out.indices);
  } else {
    select_serial(grad, k, out.indices);
  }

  out.values.resize(k);
  auto gather = [&](std::size_t i) { out.values[i] = grad[out.indices[i]]; };
  if (pool != nullptr && pool->size() > 1 && k >= kParallelThreshold) {
    pool->parallel_for(0, k, gather);
  } else {
    for (std::size_t i = 0; i < k; ++i) gather(i);
  }
  return out;
}

void TopKCompressor::decompress(const CompressedGrad& payload,
                                std::span<float> out) const {
  LOWDIFF_ENSURE(payload.scheme == CompressionScheme::kTopK,
                 "payload scheme mismatch");
  LOWDIFF_ENSURE(out.size() == payload.dense_size, "decompress size mismatch");
  std::fill(out.begin(), out.end(), 0.0f);
  for (std::size_t i = 0; i < payload.indices.size(); ++i) {
    out[payload.indices[i]] = payload.values[i];
  }
}

std::string TopKCompressor::name() const {
  return "topk(rho=" + std::to_string(ratio_) + ")";
}

}  // namespace lowdiff
