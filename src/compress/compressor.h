#pragma once

/// \file compressor.h
/// Gradient compression interface (paper §2.3).  Implementations must be
/// deterministic for a given input (and iteration, for randomized schemes):
/// every worker compresses the same synchronized gradient to the same
/// payload, and recovery re-decompresses checkpointed payloads.

#include <memory>
#include <span>
#include <string>

#include "compress/compressed_grad.h"

namespace lowdiff {

class ThreadPool;

class Compressor {
 public:
  virtual ~Compressor() = default;

  /// Attaches an optional worker pool for chunk-parallel compression;
  /// nullptr restores the serial path.  The pool must outlive the
  /// compressor.  Determinism contract: for a given input the payload is
  /// bit-identical for every pool size, including none (DESIGN.md §6), so
  /// workers with different pool configurations still agree.  Clones
  /// inherit the pool.
  void set_thread_pool(ThreadPool* pool) noexcept { pool_ = pool; }
  ThreadPool* thread_pool() const noexcept { return pool_; }

  /// Compresses a dense gradient.  `iteration` seeds randomized schemes and
  /// is recorded in the payload for recovery ordering.
  virtual CompressedGrad compress(std::span<const float> grad,
                                  std::uint64_t iteration) const = 0;

  /// Reconstructs a dense gradient: `out` is fully overwritten (missing
  /// coordinates become zero).  out.size() must equal payload.dense_size.
  virtual void decompress(const CompressedGrad& payload,
                          std::span<float> out) const = 0;

  /// Nominal compressed/dense size ratio (the paper's ρ), used by the
  /// analytic cost models.
  virtual double nominal_ratio() const = 0;

  virtual std::string name() const = 0;
  virtual std::unique_ptr<Compressor> clone() const = 0;

 private:
  ThreadPool* pool_ = nullptr;
};

/// out += decompress(payload) without materializing a temporary dense
/// tensor for sparse payloads.  Works for any scheme.
void accumulate_decompressed(const Compressor& comp, const CompressedGrad& payload,
                             std::span<float> out);

}  // namespace lowdiff
