#include "compress/compressed_grad.h"

#include <cstring>

#include "common/error.h"

namespace lowdiff {
namespace {

template <typename T>
void append(std::vector<std::byte>& out, const T& value) {
  const auto* p = reinterpret_cast<const std::byte*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
void append_vec(std::vector<std::byte>& out, const std::vector<T>& v) {
  append(out, static_cast<std::uint64_t>(v.size()));
  const auto* p = reinterpret_cast<const std::byte*>(v.data());
  out.insert(out.end(), p, p + v.size() * sizeof(T));
}

class Reader {
 public:
  explicit Reader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  template <typename T>
  T read() {
    LOWDIFF_ENSURE(pos_ + sizeof(T) <= bytes_.size(), "truncated compressed gradient");
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <typename T>
  std::vector<T> read_vec() {
    const auto n = read<std::uint64_t>();
    LOWDIFF_ENSURE(pos_ + n * sizeof(T) <= bytes_.size(), "truncated compressed gradient");
    std::vector<T> v(n);
    if (n > 0) std::memcpy(v.data(), bytes_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

const char* to_string(CompressionScheme scheme) {
  switch (scheme) {
    case CompressionScheme::kDense: return "dense";
    case CompressionScheme::kTopK: return "topk";
    case CompressionScheme::kRandomK: return "randomk";
    case CompressionScheme::kQuant8: return "quant8";
  }
  return "?";
}

std::size_t CompressedGrad::byte_size() const {
  return sizeof(scheme) + sizeof(dense_size) + sizeof(iteration) +
         indices.size() * sizeof(std::uint32_t) + values.size() * sizeof(float) +
         scales.size() * sizeof(float) + codes.size();
}

std::vector<std::byte> CompressedGrad::serialize() const {
  std::vector<std::byte> out;
  out.reserve(byte_size() + 4 * sizeof(std::uint64_t));
  append(out, static_cast<std::uint8_t>(scheme));
  append(out, dense_size);
  append(out, iteration);
  append_vec(out, indices);
  append_vec(out, values);
  append_vec(out, scales);
  append_vec(out, codes);
  return out;
}

CompressedGrad CompressedGrad::deserialize(std::span<const std::byte> bytes) {
  Reader r(bytes);
  CompressedGrad g;
  g.scheme = static_cast<CompressionScheme>(r.read<std::uint8_t>());
  g.dense_size = r.read<std::uint64_t>();
  g.iteration = r.read<std::uint64_t>();
  g.indices = r.read_vec<std::uint32_t>();
  g.values = r.read_vec<float>();
  g.scales = r.read_vec<float>();
  g.codes = r.read_vec<std::uint8_t>();
  LOWDIFF_ENSURE(r.exhausted(), "trailing bytes after compressed gradient");
  LOWDIFF_ENSURE(g.indices.size() == g.values.size() || g.indices.empty(),
                 "index/value count mismatch");
  return g;
}

}  // namespace lowdiff
