#include "compress/compressed_grad.h"

#include <cstring>

#include "common/error.h"

namespace lowdiff {
namespace {

/// Bounds-unchecked cursor over a pre-sized destination; the caller
/// (serialize_into) validates the total against serialized_size() once.
class Writer {
 public:
  explicit Writer(std::span<std::byte> out) : out_(out) {}

  template <typename T>
  void write(const T& value) {
    std::memcpy(out_.data() + pos_, &value, sizeof(T));
    pos_ += sizeof(T);
  }

  template <typename T>
  void write_vec(const std::vector<T>& v) {
    write(static_cast<std::uint64_t>(v.size()));
    if (!v.empty()) {
      std::memcpy(out_.data() + pos_, v.data(), v.size() * sizeof(T));
      pos_ += v.size() * sizeof(T);
    }
  }

  std::size_t written() const { return pos_; }

 private:
  std::span<std::byte> out_;
  std::size_t pos_ = 0;
};

class Reader {
 public:
  explicit Reader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  template <typename T>
  T read() {
    LOWDIFF_ENSURE(pos_ + sizeof(T) <= bytes_.size(), "truncated compressed gradient");
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <typename T>
  std::vector<T> read_vec() {
    const auto n = read<std::uint64_t>();
    LOWDIFF_ENSURE(pos_ + n * sizeof(T) <= bytes_.size(), "truncated compressed gradient");
    std::vector<T> v(n);
    if (n > 0) std::memcpy(v.data(), bytes_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

const char* to_string(CompressionScheme scheme) {
  switch (scheme) {
    case CompressionScheme::kDense: return "dense";
    case CompressionScheme::kTopK: return "topk";
    case CompressionScheme::kRandomK: return "randomk";
    case CompressionScheme::kQuant8: return "quant8";
  }
  return "?";
}

std::size_t CompressedGrad::byte_size() const {
  return sizeof(scheme) + sizeof(dense_size) + sizeof(iteration) +
         indices.size() * sizeof(std::uint32_t) + values.size() * sizeof(float) +
         scales.size() * sizeof(float) + codes.size();
}

std::size_t CompressedGrad::serialized_size() const {
  return byte_size() + 4 * sizeof(std::uint64_t);
}

std::vector<std::byte> CompressedGrad::serialize() const {
  std::vector<std::byte> out(serialized_size());
  const std::size_t written = serialize_into(out);
  LOWDIFF_ENSURE(written == out.size(), "serialized_size mismatch");
  return out;
}

std::size_t CompressedGrad::serialize_into(std::span<std::byte> out) const {
  LOWDIFF_ENSURE(out.size() >= serialized_size(),
                 "serialize_into buffer too small");
  Writer w(out);
  w.write(static_cast<std::uint8_t>(scheme));
  w.write(dense_size);
  w.write(iteration);
  w.write_vec(indices);
  w.write_vec(values);
  w.write_vec(scales);
  w.write_vec(codes);
  return w.written();
}

CompressedGrad CompressedGrad::deserialize(std::span<const std::byte> bytes) {
  Reader r(bytes);
  CompressedGrad g;
  g.scheme = static_cast<CompressionScheme>(r.read<std::uint8_t>());
  g.dense_size = r.read<std::uint64_t>();
  g.iteration = r.read<std::uint64_t>();
  g.indices = r.read_vec<std::uint32_t>();
  g.values = r.read_vec<float>();
  g.scales = r.read_vec<float>();
  g.codes = r.read_vec<std::uint8_t>();
  LOWDIFF_ENSURE(r.exhausted(), "trailing bytes after compressed gradient");
  LOWDIFF_ENSURE(g.indices.size() == g.values.size() || g.indices.empty(),
                 "index/value count mismatch");
  return g;
}

}  // namespace lowdiff
