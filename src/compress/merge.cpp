#include "compress/merge.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"

namespace lowdiff {

std::size_t BatchedGrad::byte_size() const {
  std::size_t total = 2 * sizeof(std::uint64_t);
  for (const auto& m : members) total += m.byte_size();
  return total;
}

std::vector<std::byte> BatchedGrad::serialize() const {
  std::vector<std::byte> out;
  auto append_u64 = [&out](std::uint64_t v) {
    const auto* p = reinterpret_cast<const std::byte*>(&v);
    out.insert(out.end(), p, p + sizeof(v));
  };
  append_u64(first_iteration);
  append_u64(last_iteration);
  append_u64(members.size());
  for (const auto& m : members) {
    const auto bytes = m.serialize();
    append_u64(bytes.size());
    out.insert(out.end(), bytes.begin(), bytes.end());
  }
  return out;
}

BatchedGrad BatchedGrad::deserialize(std::span<const std::byte> bytes) {
  std::size_t pos = 0;
  auto read_u64 = [&bytes, &pos]() {
    LOWDIFF_ENSURE(pos + sizeof(std::uint64_t) <= bytes.size(), "truncated batch");
    std::uint64_t v;
    std::memcpy(&v, bytes.data() + pos, sizeof(v));
    pos += sizeof(v);
    return v;
  };
  BatchedGrad out;
  out.first_iteration = read_u64();
  out.last_iteration = read_u64();
  const std::uint64_t count = read_u64();
  out.members.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t len = read_u64();
    LOWDIFF_ENSURE(pos + len <= bytes.size(), "truncated batch member");
    out.members.push_back(CompressedGrad::deserialize(bytes.subspan(pos, len)));
    pos += len;
  }
  LOWDIFF_ENSURE(pos == bytes.size(), "trailing bytes after batch");
  return out;
}

namespace {

/// Sorted-coordinate union-sum of two payload coordinate lists.
void merge_two(const std::vector<std::uint32_t>& ia, const std::vector<float>& va,
               const std::vector<std::uint32_t>& ib, const std::vector<float>& vb,
               std::vector<std::uint32_t>& io, std::vector<float>& vo) {
  io.clear();
  vo.clear();
  io.reserve(ia.size() + ib.size());
  vo.reserve(ia.size() + ib.size());
  std::size_t a = 0, b = 0;
  while (a < ia.size() && b < ib.size()) {
    if (ia[a] < ib[b]) {
      io.push_back(ia[a]);
      vo.push_back(va[a]);
      ++a;
    } else if (ib[b] < ia[a]) {
      io.push_back(ib[b]);
      vo.push_back(vb[b]);
      ++b;
    } else {
      io.push_back(ia[a]);
      vo.push_back(va[a] + vb[b]);
      ++a;
      ++b;
    }
  }
  for (; a < ia.size(); ++a) {
    io.push_back(ia[a]);
    vo.push_back(va[a]);
  }
  for (; b < ib.size(); ++b) {
    io.push_back(ib[b]);
    vo.push_back(vb[b]);
  }
}

}  // namespace

CompressedGrad merge_sparse_sum(std::span<const CompressedGrad> payloads) {
  LOWDIFF_ENSURE(!payloads.empty(), "cannot merge an empty payload set");
  const std::uint64_t dense_size = payloads.front().dense_size;
  for (const auto& p : payloads) {
    LOWDIFF_ENSURE(p.scheme == CompressionScheme::kTopK ||
                       p.scheme == CompressionScheme::kRandomK,
                   "merge_sparse_sum requires sparse payloads");
    LOWDIFF_ENSURE(p.dense_size == dense_size, "mixed dense sizes in merge");
    LOWDIFF_ENSURE(std::is_sorted(p.indices.begin(), p.indices.end()),
                   "sparse payload coordinates must be sorted");
  }

  CompressedGrad out;
  out.scheme = payloads.front().scheme;
  out.dense_size = dense_size;
  out.iteration = payloads.back().iteration;
  out.indices = payloads.front().indices;
  out.values = payloads.front().values;

  // Left fold of sorted two-pointer merges: O(k · total) with contiguous
  // memory — this is the hot path of batched writes, sparse allreduce, and
  // pairwise parallel recovery.
  std::vector<std::uint32_t> scratch_idx;
  std::vector<float> scratch_val;
  for (std::size_t p = 1; p < payloads.size(); ++p) {
    merge_two(out.indices, out.values, payloads[p].indices, payloads[p].values,
              scratch_idx, scratch_val);
    out.indices.swap(scratch_idx);
    out.values.swap(scratch_val);
  }
  return out;
}

void accumulate_decompressed(const Compressor& comp, const CompressedGrad& payload,
                             std::span<float> out) {
  LOWDIFF_ENSURE(out.size() == payload.dense_size, "accumulate size mismatch");
  switch (payload.scheme) {
    case CompressionScheme::kTopK:
    case CompressionScheme::kRandomK:
      for (std::size_t i = 0; i < payload.indices.size(); ++i) {
        out[payload.indices[i]] += payload.values[i];
      }
      return;
    case CompressionScheme::kDense:
    case CompressionScheme::kQuant8: {
      std::vector<float> tmp(out.size());
      comp.decompress(payload, tmp);
      for (std::size_t i = 0; i < out.size(); ++i) out[i] += tmp[i];
      return;
    }
  }
  LOWDIFF_UNREACHABLE("unknown compression scheme");
}

}  // namespace lowdiff
