#include "compress/merge.h"

#include <algorithm>
#include <cstring>
#include <functional>

#include "common/error.h"

namespace lowdiff {

std::size_t BatchedGrad::byte_size() const {
  std::size_t total = 2 * sizeof(std::uint64_t);
  for (const auto& m : members) total += m.byte_size();
  return total;
}

std::size_t BatchedGrad::serialized_size() const {
  std::size_t total = 3 * sizeof(std::uint64_t);  // first, last, count
  for (const auto& m : members) {
    total += sizeof(std::uint64_t) + m.serialized_size();  // length prefix
  }
  return total;
}

std::vector<std::byte> BatchedGrad::serialize() const {
  std::vector<std::byte> out(serialized_size());
  const std::size_t written = serialize_into(out);
  LOWDIFF_ENSURE(written == out.size(), "batch serialized_size mismatch");
  return out;
}

std::size_t BatchedGrad::serialize_into(std::span<std::byte> out) const {
  LOWDIFF_ENSURE(out.size() >= serialized_size(),
                 "serialize_into buffer too small");
  std::size_t pos = 0;
  auto put_u64 = [&out, &pos](std::uint64_t v) {
    std::memcpy(out.data() + pos, &v, sizeof(v));
    pos += sizeof(v);
  };
  put_u64(first_iteration);
  put_u64(last_iteration);
  put_u64(members.size());
  for (const auto& m : members) {
    const std::size_t len = m.serialized_size();
    put_u64(len);
    pos += m.serialize_into(out.subspan(pos, len));
  }
  return pos;
}

BatchedGrad BatchedGrad::deserialize(std::span<const std::byte> bytes) {
  std::size_t pos = 0;
  auto read_u64 = [&bytes, &pos]() {
    LOWDIFF_ENSURE(pos + sizeof(std::uint64_t) <= bytes.size(), "truncated batch");
    std::uint64_t v;
    std::memcpy(&v, bytes.data() + pos, sizeof(v));
    pos += sizeof(v);
    return v;
  };
  BatchedGrad out;
  out.first_iteration = read_u64();
  out.last_iteration = read_u64();
  const std::uint64_t count = read_u64();
  out.members.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t len = read_u64();
    LOWDIFF_ENSURE(pos + len <= bytes.size(), "truncated batch member");
    out.members.push_back(CompressedGrad::deserialize(bytes.subspan(pos, len)));
    pos += len;
  }
  LOWDIFF_ENSURE(pos == bytes.size(), "trailing bytes after batch");
  return out;
}

namespace {

/// Sorted-coordinate union-sum of two payload coordinate lists.
void merge_two(const std::vector<std::uint32_t>& ia, const std::vector<float>& va,
               const std::vector<std::uint32_t>& ib, const std::vector<float>& vb,
               std::vector<std::uint32_t>& io, std::vector<float>& vo) {
  io.clear();
  vo.clear();
  io.reserve(ia.size() + ib.size());
  vo.reserve(ia.size() + ib.size());
  std::size_t a = 0, b = 0;
  while (a < ia.size() && b < ib.size()) {
    if (ia[a] < ib[b]) {
      io.push_back(ia[a]);
      vo.push_back(va[a]);
      ++a;
    } else if (ib[b] < ia[a]) {
      io.push_back(ib[b]);
      vo.push_back(vb[b]);
      ++b;
    } else {
      io.push_back(ia[a]);
      vo.push_back(va[a] + vb[b]);
      ++a;
      ++b;
    }
  }
  for (; a < ia.size(); ++a) {
    io.push_back(ia[a]);
    vo.push_back(va[a]);
  }
  for (; b < ib.size(); ++b) {
    io.push_back(ib[b]);
    vo.push_back(vb[b]);
  }
}

/// Shared validation + result header for both union-sum implementations.
CompressedGrad merge_prologue(std::span<const CompressedGrad> payloads) {
  LOWDIFF_ENSURE(!payloads.empty(), "cannot merge an empty payload set");
  const std::uint64_t dense_size = payloads.front().dense_size;
  for (const auto& p : payloads) {
    LOWDIFF_ENSURE(p.scheme == CompressionScheme::kTopK ||
                       p.scheme == CompressionScheme::kRandomK,
                   "merge_sparse_sum requires sparse payloads");
    LOWDIFF_ENSURE(p.dense_size == dense_size, "mixed dense sizes in merge");
    LOWDIFF_ENSURE(std::is_sorted(p.indices.begin(), p.indices.end()),
                   "sparse payload coordinates must be sorted");
  }
  CompressedGrad out;
  out.scheme = payloads.front().scheme;
  out.dense_size = dense_size;
  out.iteration = payloads.back().iteration;
  return out;
}

}  // namespace

namespace {

/// Dense-accumulator union-sum, cache-blocked: the coordinate space is
/// walked in windows small enough that the accumulator and seen-mark
/// arrays stay L2-resident, so every scatter write is a cache hit; each
/// window is emitted (ascending) before the next begins.  Scratch memory
/// is a constant ~320 KiB regardless of dense_size.  O(total + dense_size)
/// total work, all of it linear or cache-local.
///
/// Bit-exactness: payloads scatter in payload order within each window,
/// so for every coordinate the additions happen in exactly the pairwise
/// cascade's left-fold order.  The first touch *assigns* (rather than
/// adding to 0.0f) so single-payload coordinates keep their sign bit
/// (-0.0f would otherwise flip to +0.0f).
void merge_dense_accumulate(std::span<const CompressedGrad> payloads,
                            CompressedGrad& out) {
  constexpr std::uint64_t kWindow = std::uint64_t{1} << 16;  // 256K acc + 64K seen
  const std::uint64_t n = out.dense_size;
  std::vector<float> acc(kWindow);
  std::vector<std::uint8_t> seen(kWindow);
  std::vector<std::size_t> cur(payloads.size(), 0);

  for (std::uint64_t base = 0; base < n; base += kWindow) {
    const std::uint64_t end = std::min(n, base + kWindow);
    std::fill(seen.begin(), seen.begin() + static_cast<std::ptrdiff_t>(end - base), 0);
    std::size_t touched = 0;
    for (std::size_t p = 0; p < payloads.size(); ++p) {
      const auto& idx = payloads[p].indices;
      const auto& val = payloads[p].values;
      std::size_t i = cur[p];
      for (; i < idx.size() && idx[i] < end; ++i) {
        const auto local = static_cast<std::size_t>(idx[i] - base);
        if (seen[local] == 0) {
          seen[local] = 1;
          ++touched;
          acc[local] = val[i];
        } else {
          acc[local] += val[i];
        }
      }
      cur[p] = i;
    }
    if (touched == 0) continue;
    for (std::size_t local = 0; local < end - base; ++local) {
      if (seen[local] != 0) {
        out.indices.push_back(static_cast<std::uint32_t>(base + local));
        out.values.push_back(acc[local]);
      }
    }
  }
}

}  // namespace

CompressedGrad merge_sparse_sum(std::span<const CompressedGrad> payloads) {
  CompressedGrad out = merge_prologue(payloads);
  const std::size_t b_count = payloads.size();

  std::size_t total = 0;
  for (const auto& p : payloads) total += p.indices.size();

  // Batched checkpoints (B sparse payloads over one model) are dense in
  // aggregate; scatter-accumulate beats any comparison-based merge there.
  // The heap below handles the genuinely sparse regime, where scanning
  // dense_size would dominate the small entry count.
  if (out.dense_size <= 16 * total) {
    out.indices.reserve(total);
    out.values.reserve(total);
    merge_dense_accumulate(payloads, out);
    return out;
  }
  out.indices.reserve(total);
  out.values.reserve(total);

  // K-way heap union-sum: heap keys pack (coordinate << 32) | payload_id,
  // so the min key is the smallest coordinate and, among equal coordinates,
  // the smallest payload id.  Duplicates therefore pop in payload order and
  // the float accumulation below is the same left fold the pairwise cascade
  // performs — bit-identical sums, at O(total · log B) instead of
  // O(total · B).
  std::vector<std::size_t> cursor(b_count, 0);
  auto key_of = [&](std::size_t p) {
    return (static_cast<std::uint64_t>(payloads[p].indices[cursor[p]]) << 32) |
           static_cast<std::uint64_t>(p);
  };

  std::vector<std::uint64_t> heap;
  heap.reserve(b_count);
  for (std::size_t p = 0; p < b_count; ++p) {
    if (!payloads[p].indices.empty()) heap.push_back(key_of(p));
  }
  std::make_heap(heap.begin(), heap.end(), std::greater<std::uint64_t>());

  auto sift_down = [&heap] {
    std::size_t i = 0;
    const std::size_t n = heap.size();
    const std::uint64_t v = heap[0];
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && heap[child + 1] < heap[child]) ++child;
      if (heap[child] >= v) break;
      heap[i] = heap[child];
      i = child;
    }
    heap[i] = v;
  };

  // Pops the top, advances its payload's cursor, refills from that payload
  // (replace-top: one sift instead of pop+push).  Returns the payload id.
  auto advance_top = [&]() -> std::size_t {
    const std::size_t p = static_cast<std::size_t>(heap[0] & 0xFFFFFFFFull);
    ++cursor[p];
    if (cursor[p] < payloads[p].indices.size()) {
      heap[0] = key_of(p);
    } else {
      heap[0] = heap.back();
      heap.pop_back();
    }
    if (!heap.empty()) sift_down();
    return p;
  };

  while (!heap.empty()) {
    const auto coord = static_cast<std::uint32_t>(heap[0] >> 32);
    std::size_t p = advance_top();
    float acc = payloads[p].values[cursor[p] - 1];
    while (!heap.empty() && static_cast<std::uint32_t>(heap[0] >> 32) == coord) {
      p = advance_top();
      acc += payloads[p].values[cursor[p] - 1];
    }
    out.indices.push_back(coord);
    out.values.push_back(acc);
  }
  return out;
}

CompressedGrad merge_sparse_sum_pairwise(std::span<const CompressedGrad> payloads) {
  CompressedGrad out = merge_prologue(payloads);
  out.indices = payloads.front().indices;
  out.values = payloads.front().values;

  // Left fold of sorted two-pointer merges: O(B · total) with contiguous
  // memory.  Superseded by the k-way heap above on the hot path; kept as
  // the bit-exactness reference.
  std::vector<std::uint32_t> scratch_idx;
  std::vector<float> scratch_val;
  for (std::size_t p = 1; p < payloads.size(); ++p) {
    merge_two(out.indices, out.values, payloads[p].indices, payloads[p].values,
              scratch_idx, scratch_val);
    out.indices.swap(scratch_idx);
    out.values.swap(scratch_val);
  }
  return out;
}

void accumulate_decompressed(const Compressor& comp, const CompressedGrad& payload,
                             std::span<float> out) {
  LOWDIFF_ENSURE(out.size() == payload.dense_size, "accumulate size mismatch");
  switch (payload.scheme) {
    case CompressionScheme::kTopK:
    case CompressionScheme::kRandomK:
      for (std::size_t i = 0; i < payload.indices.size(); ++i) {
        out[payload.indices[i]] += payload.values[i];
      }
      return;
    case CompressionScheme::kDense:
    case CompressionScheme::kQuant8: {
      std::vector<float> tmp(out.size());
      comp.decompress(payload, tmp);
      for (std::size_t i = 0; i < out.size(); ++i) out[i] += tmp[i];
      return;
    }
  }
  LOWDIFF_UNREACHABLE("unknown compression scheme");
}

}  // namespace lowdiff
