#include "compress/randomk.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace lowdiff {

RandomKCompressor::RandomKCompressor(double ratio, std::uint64_t seed)
    : ratio_(ratio), seed_(seed) {
  LOWDIFF_ENSURE(ratio > 0.0 && ratio <= 1.0, "random-k ratio must be in (0, 1]");
}

CompressedGrad RandomKCompressor::compress(std::span<const float> grad,
                                           std::uint64_t iteration) const {
  CompressedGrad out;
  out.scheme = CompressionScheme::kRandomK;
  out.dense_size = grad.size();
  out.iteration = iteration;
  if (grad.empty()) return out;

  const auto n = grad.size();
  auto k = static_cast<std::size_t>(std::llround(ratio_ * static_cast<double>(n)));
  k = std::clamp<std::size_t>(k, 1, n);

  // Floyd's algorithm: sample k distinct coordinates deterministically.
  SplitMix64 sm(seed_ ^ (iteration * 0xA24BAED4963EE407ull + 1));
  Xoshiro256 rng(sm.next());
  std::vector<std::uint32_t> picked;
  picked.reserve(k);
  std::vector<bool> taken(n, false);
  for (std::size_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::size_t>(rng.uniform_below(j + 1));
    const std::size_t chosen = taken[t] ? j : t;
    taken[chosen] = true;
    picked.push_back(static_cast<std::uint32_t>(chosen));
  }
  std::sort(picked.begin(), picked.end());

  out.indices = std::move(picked);
  out.values.resize(k);
  // Selection stays serial (Floyd's walk is inherently sequential); the
  // value gather is order-independent, so it parallelizes bit-exactly.
  ThreadPool* pool = thread_pool();
  auto gather = [&](std::size_t i) { out.values[i] = grad[out.indices[i]]; };
  if (pool != nullptr && pool->size() > 1 && k >= (std::size_t{1} << 15)) {
    pool->parallel_for(0, k, gather);
  } else {
    for (std::size_t i = 0; i < k; ++i) gather(i);
  }
  return out;
}

void RandomKCompressor::decompress(const CompressedGrad& payload,
                                   std::span<float> out) const {
  LOWDIFF_ENSURE(payload.scheme == CompressionScheme::kRandomK,
                 "payload scheme mismatch");
  LOWDIFF_ENSURE(out.size() == payload.dense_size, "decompress size mismatch");
  std::fill(out.begin(), out.end(), 0.0f);
  for (std::size_t i = 0; i < payload.indices.size(); ++i) {
    out[payload.indices[i]] = payload.values[i];
  }
}

std::string RandomKCompressor::name() const {
  return "randomk(rho=" + std::to_string(ratio_) + ")";
}

}  // namespace lowdiff
