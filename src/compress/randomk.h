#pragma once

/// \file randomk.h
/// Random-K sparsification: keeps a pseudo-random subset of coordinates.
/// The subset is a deterministic function of (seed, iteration) so all
/// workers select identical coordinates — required for the sparse
/// allreduce to sum matching entries.

#include "compress/compressor.h"

namespace lowdiff {

class RandomKCompressor final : public Compressor {
 public:
  RandomKCompressor(double ratio, std::uint64_t seed);

  CompressedGrad compress(std::span<const float> grad,
                          std::uint64_t iteration) const override;
  void decompress(const CompressedGrad& payload, std::span<float> out) const override;

  double nominal_ratio() const override { return ratio_; }
  std::string name() const override;
  std::unique_ptr<Compressor> clone() const override {
    auto c = std::make_unique<RandomKCompressor>(ratio_, seed_);
    c->set_thread_pool(thread_pool());
    return c;
  }

 private:
  double ratio_;
  std::uint64_t seed_;
};

}  // namespace lowdiff
