#pragma once

/// \file barrier.h
/// Reusable generation-counted barrier for the in-process worker group.
/// (std::barrier is available in C++20 but its completion-function typing
/// makes composition awkward; this 30-line version is the classic MPI-style
/// phase barrier.)

#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "common/error.h"

namespace lowdiff {

class Barrier {
 public:
  explicit Barrier(std::size_t parties) : parties_(parties) {
    LOWDIFF_ENSURE(parties > 0, "barrier needs at least one party");
  }

  /// Blocks until all parties have arrived; automatically resets.
  void arrive_and_wait() {
    std::unique_lock lock(mutex_);
    const std::size_t my_generation = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      lock.unlock();
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [this, my_generation] { return generation_ != my_generation; });
  }

 private:
  const std::size_t parties_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t arrived_ = 0;
  std::size_t generation_ = 0;
};

}  // namespace lowdiff
