#include "comm/comm_group.h"

#include <chrono>
#include <thread>

#include "common/error.h"
#include "tensor/ops.h"

namespace lowdiff {

CommGroup::CommGroup(std::size_t world, NetworkModel model, double time_scale)
    : world_(world),
      model_(model),
      time_scale_(time_scale),
      barrier_(world),
      dense_slots_(world),
      sparse_slots_(world, nullptr),
      comm_time_(world, 0.0) {
  LOWDIFF_ENSURE(world >= 1, "world size must be >= 1");
  model_.world = world;
}

void CommGroup::barrier() { barrier_.arrive_and_wait(); }

void CommGroup::charge(std::size_t rank, double modeled_seconds) {
  comm_time_[rank] += modeled_seconds;
  if (time_scale_ > 0.0 && modeled_seconds > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(modeled_seconds * time_scale_));
  }
}

void CommGroup::allreduce_sum(std::size_t rank, std::span<float> data) {
  LOWDIFF_ENSURE(rank < world_, "rank out of range");
  if (world_ == 1) {
    charge(rank, 0.0);
    return;
  }
  dense_slots_[rank] = data;
  barrier_.arrive_and_wait();  // all contributions registered

  // Reduce in fixed rank order into a local temporary: every rank computes
  // the same fp sum, so results are bitwise identical across ranks.
  std::vector<float> acc(data.size(), 0.0f);
  for (std::size_t r = 0; r < world_; ++r) {
    const auto other = dense_slots_[r];
    LOWDIFF_ENSURE(other.size() == data.size(), "allreduce size mismatch");
    for (std::size_t i = 0; i < data.size(); ++i) acc[i] += other[i];
  }
  barrier_.arrive_and_wait();  // reads complete, safe to overwrite inputs

  ops::copy(std::span<const float>(acc), data);
  charge(rank, model_.allreduce_time(data.size_bytes()));
  barrier_.arrive_and_wait();  // slots reusable
}

std::vector<CompressedGrad> CommGroup::allgather(std::size_t rank,
                                                 const CompressedGrad& mine) {
  LOWDIFF_ENSURE(rank < world_, "rank out of range");
  sparse_slots_[rank] = &mine;
  barrier_.arrive_and_wait();

  std::vector<CompressedGrad> out;
  out.reserve(world_);
  for (std::size_t r = 0; r < world_; ++r) {
    LOWDIFF_ENSURE(sparse_slots_[r] != nullptr, "missing allgather contribution");
    out.push_back(*sparse_slots_[r]);
  }
  barrier_.arrive_and_wait();  // copies complete, inputs may be destroyed

  charge(rank, model_.allgather_time(mine.byte_size()));
  return out;
}

CompressedGrad CommGroup::allreduce_sparse(std::size_t rank,
                                           const CompressedGrad& mine) {
  auto all = allgather(rank, mine);
  return merge_sparse_sum(all);
}

void CommGroup::broadcast(std::size_t rank, std::size_t root,
                          std::span<float> data) {
  LOWDIFF_ENSURE(rank < world_ && root < world_, "rank out of range");
  if (world_ == 1) return;
  dense_slots_[rank] = data;
  barrier_.arrive_and_wait();  // all spans registered

  if (rank != root) {
    const auto src = dense_slots_[root];
    LOWDIFF_ENSURE(src.size() == data.size(), "broadcast size mismatch");
    ops::copy(src, data);
  }
  barrier_.arrive_and_wait();  // copies complete before root reuses its span
  charge(rank, model_.broadcast_time(data.size_bytes()));
}

double CommGroup::modeled_comm_time(std::size_t rank) const {
  LOWDIFF_ENSURE(rank < world_, "rank out of range");
  return comm_time_[rank];
}

}  // namespace lowdiff
