#pragma once

/// \file network_model.h
/// Analytic collective-communication cost model (α–β) over a LinkSpec.
/// Used both for charging modeled time in live runs and by the
/// discrete-event simulator for cluster-scale experiments.

#include <cstdint>

#include "storage/bandwidth.h"

namespace lowdiff {

struct NetworkModel {
  LinkSpec link = links::ib_25gbps();
  std::size_t world = 1;

  /// Ring allreduce: 2(N-1)/N of the payload crosses each link, with
  /// 2(N-1) latency hops.
  double allreduce_time(std::uint64_t bytes) const {
    if (world <= 1) return 0.0;
    const double n = static_cast<double>(world);
    return 2.0 * (n - 1.0) / n * static_cast<double>(bytes) / link.bytes_per_sec +
           2.0 * (n - 1.0) * link.latency_sec;
  }

  /// Ring allgather of `bytes_per_rank` from every rank: each link carries
  /// (N-1) * bytes_per_rank.
  double allgather_time(std::uint64_t bytes_per_rank) const {
    if (world <= 1) return 0.0;
    const double n = static_cast<double>(world);
    return (n - 1.0) * static_cast<double>(bytes_per_rank) / link.bytes_per_sec +
           (n - 1.0) * link.latency_sec;
  }

  /// Binary-tree broadcast.
  double broadcast_time(std::uint64_t bytes) const {
    if (world <= 1) return 0.0;
    double hops = 0.0;
    for (std::size_t w = 1; w < world; w *= 2) hops += 1.0;
    return hops * (static_cast<double>(bytes) / link.bytes_per_sec + link.latency_sec);
  }
};

}  // namespace lowdiff
