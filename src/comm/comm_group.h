#pragma once

/// \file comm_group.h
/// In-process data-parallel communicator: one group shared by `world`
/// worker threads, providing the collectives the training loop needs
/// (paper Algorithm 1 line 5: Sync of compressed gradients).
///
/// Determinism contract: every collective reduces contributions in fixed
/// rank order, so all ranks observe a bitwise-identical result — the
/// property gradient reuse depends on (each worker's checkpointing process
/// persists the *synchronized* gradient).
///
/// Timing: if a time_scale is configured, each rank sleeps the modeled
/// collective duration (ring allreduce / allgather over the configured
/// link), scaled — the live analogue of NCCL time on a 25 Gbps fabric.

#include <memory>
#include <span>
#include <vector>

#include "comm/barrier.h"
#include "comm/network_model.h"
#include "compress/compressed_grad.h"
#include "compress/merge.h"

namespace lowdiff {

class CommGroup {
 public:
  /// `model`: link + world for modeled timing.  `time_scale` <= 0 disables
  /// sleeping (zero-latency collectives, still deterministic).
  explicit CommGroup(std::size_t world, NetworkModel model = {},
                     double time_scale = 0.0);

  std::size_t world() const { return world_; }
  const NetworkModel& network() const { return model_; }

  /// Rendezvous of all ranks.
  void barrier();

  /// In-place sum-allreduce: after return, every rank's span holds the
  /// rank-ordered sum of all contributions.  All spans must be equal-sized.
  void allreduce_sum(std::size_t rank, std::span<float> data);

  /// Gathers every rank's payload; the returned vector is indexed by rank.
  std::vector<CompressedGrad> allgather(std::size_t rank, const CompressedGrad& mine);

  /// Convenience for sparsified training: allgather + index-union sum,
  /// giving each rank the same synchronized compressed gradient.
  CompressedGrad allreduce_sparse(std::size_t rank, const CompressedGrad& mine);

  /// Copies `root`'s span into every other rank's span (sizes must match).
  /// Used to fan a recovered model state out to the worker group.
  void broadcast(std::size_t rank, std::size_t root, std::span<float> data);

  /// Modeled seconds spent in collectives by one rank so far.
  double modeled_comm_time(std::size_t rank) const;

 private:
  void charge(std::size_t rank, double modeled_seconds);

  const std::size_t world_;
  NetworkModel model_;
  double time_scale_;
  Barrier barrier_;

  // Collective scratch (valid between the internal barriers only).
  std::vector<std::span<float>> dense_slots_;
  std::vector<const CompressedGrad*> sparse_slots_;
  std::vector<double> comm_time_;  // per rank, modeled seconds
};

}  // namespace lowdiff
