#include "obs/trace.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "obs/json.h"

namespace lowdiff::obs {

namespace {

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Tracer::Tracer() : id_(next_tracer_id()), epoch_ns_(steady_now_ns()) {}

double Tracer::now_us() const noexcept {
  return static_cast<double>(steady_now_ns() -
                             epoch_ns_.load(std::memory_order_relaxed)) *
         1e-3;
}

Tracer::ThreadBuf& Tracer::local_buf() {
  // One cache entry per (thread, tracer); entries for dead tracers are
  // never looked up again because tracer ids are process-unique.
  struct CacheEntry {
    std::uint64_t tracer_id;
    ThreadBuf* buf;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const auto& e : cache) {
    if (e.tracer_id == id_) return *e.buf;
  }
  std::lock_guard lock(mu_);
  bufs_.push_back(std::make_unique<ThreadBuf>());
  ThreadBuf& buf = *bufs_.back();
  buf.tid = static_cast<std::uint32_t>(bufs_.size());
  cache.push_back({id_, &buf});
  return buf;
}

void Tracer::instant(std::string_view name, std::string_view cat) {
  if (!enabled()) return;
  const double ts = now_us();
  ThreadBuf& buf = local_buf();
  std::lock_guard lock(buf.mu);
  buf.events.push_back(TraceEvent{std::string(name), std::string(cat), 'i', ts,
                                  0.0, buf.tid});
}

void Tracer::complete(std::string_view name, std::string_view cat, double ts_us,
                      double dur_us) {
  ThreadBuf& buf = local_buf();
  std::lock_guard lock(buf.mu);
  buf.events.push_back(TraceEvent{std::string(name), std::string(cat), 'X',
                                  ts_us, dur_us, buf.tid});
}

void Tracer::set_thread_name(std::string_view name) {
  ThreadBuf& buf = local_buf();
  std::lock_guard lock(buf.mu);
  buf.thread_name = std::string(name);
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard lock(mu_);
    for (const auto& buf : bufs_) {
      std::lock_guard buf_lock(buf->mu);
      out.insert(out.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

double Tracer::span_total_us(std::string_view name) const {
  double total = 0.0;
  std::lock_guard lock(mu_);
  for (const auto& buf : bufs_) {
    std::lock_guard buf_lock(buf->mu);
    for (const auto& e : buf->events) {
      if (e.phase == 'X' && e.name == name) total += e.dur_us;
    }
  }
  return total;
}

std::string Tracer::to_chrome_json() const {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  auto emit = [&out, &first](const std::string& line) {
    out += first ? "" : ",\n";
    out += line;
    first = false;
  };

  std::lock_guard lock(mu_);
  for (const auto& buf : bufs_) {
    std::lock_guard buf_lock(buf->mu);
    if (!buf->thread_name.empty()) {
      emit("{\"ph\": \"M\", \"pid\": 1, \"tid\": " + std::to_string(buf->tid) +
           ", \"name\": \"thread_name\", \"args\": {\"name\": " +
           json::quoted(buf->thread_name) + "}}");
    }
    for (const auto& e : buf->events) {
      std::string line = "{\"ph\": \"";
      line += e.phase;
      line += "\", \"pid\": 1, \"tid\": " + std::to_string(e.tid) +
              ", \"name\": " + json::quoted(e.name);
      if (!e.cat.empty()) line += ", \"cat\": " + json::quoted(e.cat);
      line += ", \"ts\": " + json::number(e.ts_us);
      if (e.phase == 'X') line += ", \"dur\": " + json::number(e.dur_us);
      if (e.phase == 'i') line += ", \"s\": \"t\"";
      line += "}";
      emit(line);
    }
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::write_chrome_json(const std::string& path) const {
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
  }
  std::ofstream out(path);
  if (!out) return false;
  out << to_chrome_json();
  return static_cast<bool>(out);
}

void Tracer::clear() {
  std::lock_guard lock(mu_);
  for (const auto& buf : bufs_) {
    std::lock_guard buf_lock(buf->mu);
    buf->events.clear();
  }
  epoch_ns_.store(steady_now_ns(), std::memory_order_relaxed);
}

Tracer& Tracer::global() {
  static Tracer* instance = new Tracer();  // leaked: outlives all users
  return *instance;
}

}  // namespace lowdiff::obs
