#include "obs/metrics.h"

#include <algorithm>
#include <chrono>

#include "common/error.h"
#include "obs/json.h"

namespace lowdiff::obs {

namespace detail {

std::size_t thread_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

}  // namespace detail

std::vector<double> latency_buckets_us() {
  // 1-2-5 decades from 1us to 10s: fine enough to separate a queue handoff
  // from a batched write from a throttled persist.
  return {1,    2,    5,    10,   20,   50,   100,  200,  500,  1e3,  2e3, 5e3,
          1e4,  2e4,  5e4,  1e5,  2e5,  5e5,  1e6,  2e6,  5e6,  1e7};
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = latency_buckets_us();
  LOWDIFF_ENSURE(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "histogram bounds must be ascending");
  shards_.reserve(detail::kShards);
  for (std::size_t i = 0; i < detail::kShards; ++i) {
    shards_.push_back(std::make_unique<Shard>(bounds_.size() + 1));
  }
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  Shard& s = *shards_[detail::thread_shard()];
  s.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
  s.n.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->n.load(std::memory_order_relaxed);
  return total;
}

double Histogram::sum() const noexcept {
  double total = 0.0;
  for (const auto& s : shards_) total += s->sum.load(std::memory_order_relaxed);
  return total;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (const auto& s : shards_) {
    for (std::size_t b = 0; b < out.size(); ++b) {
      out[b] += s->counts[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void Histogram::reset() noexcept {
  for (auto& s : shards_) {
    for (auto& c : s->counts) c.store(0, std::memory_order_relaxed);
    s->sum.store(0.0, std::memory_order_relaxed);
    s->n.store(0, std::memory_order_relaxed);
  }
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts[b];
    if (static_cast<double>(cumulative) < target) continue;
    const double lo = b == 0 ? 0.0 : bounds[b - 1];
    // Overflow bucket has no finite upper edge; report its lower edge.
    const double hi = b < bounds.size() ? bounds[b] : lo;
    const double frac =
        counts[b] == 0 ? 0.0 : (target - before) / static_cast<double>(counts[b]);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

std::string Snapshot::to_json(const std::string& label) const {
  std::string out = "{\n";
  if (!label.empty()) {
    out += "  \"bench\": " + json::quoted(label) + ",\n";
  }
  out += "  \"schema\": \"lowdiff-metrics/1\",\n";

  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out += first ? "\n" : ",\n";
    out += "    " + json::quoted(name) + ": " + std::to_string(v);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    out += first ? "\n" : ",\n";
    out += "    " + json::quoted(name) + ": " + json::number(v);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    out += "    " + json::quoted(name) + ": {\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + json::number(h.sum) +
           ", \"mean\": " + json::number(h.mean()) +
           ", \"p50\": " + json::number(h.quantile(0.50)) +
           ", \"p95\": " + json::number(h.quantile(0.95)) +
           ", \"p99\": " + json::number(h.quantile(0.99)) + ", \"buckets\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) out += ", ";
      const std::string le =
          b < h.bounds.size() ? json::number(h.bounds[b]) : "\"+inf\"";
      out += "{\"le\": " + le + ", \"count\": " + std::to_string(h.counts[b]) + "}";
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

Snapshot Registry::scrape() const {
  std::lock_guard lock(mutex_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.bounds = h->bounds();
    hs.counts = h->bucket_counts();
    hs.count = h->count();
    hs.sum = h->sum();
    snap.histograms[name] = std::move(hs);
  }
  return snap;
}

void Registry::reset_values() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // leaked: outlives all users
  return *instance;
}

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ScopedTimerUs::ScopedTimerUs(Histogram& hist) noexcept
    : hist_(&hist), start_ns_(now_ns()) {}

ScopedTimerUs::~ScopedTimerUs() {
  hist_->observe(static_cast<double>(now_ns() - start_ns_) * 1e-3);
}

}  // namespace lowdiff::obs
