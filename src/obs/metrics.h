#pragma once

/// \file metrics.h
/// Low-overhead metrics registry: counters, gauges, and fixed-bucket
/// histograms, designed for the checkpointing hot paths (after_step, the
/// reusing-queue handoff, the async persist loop).
///
/// Write-path design: every metric is sharded across a small fixed set of
/// cache-line-padded atomic slots; a thread picks its slot once (thread-
/// local) and updates it with relaxed atomics — no locks, no contention
/// between the training thread and the checkpointing/writer threads.
/// Reads (scrape()) aggregate across shards and are allowed to be slow.
///
/// Handles returned by Registry::{counter,gauge,histogram} are stable for
/// the registry's lifetime; resolve them once at construction time and keep
/// the reference — name lookup takes a mutex and must stay off hot paths.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lowdiff::obs {

namespace detail {

inline constexpr std::size_t kShards = 16;

/// Stable per-thread shard index in [0, kShards).
std::size_t thread_shard();

struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> v{0};
};

struct alignas(64) PaddedF64 {
  std::atomic<double> v{0.0};
};

}  // namespace detail

/// Monotonic counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[detail::thread_shard()].v.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  detail::PaddedU64 shards_[detail::kShards];
};

/// Point-in-time value.  set() is last-writer-wins; add() lets several
/// components contribute deltas to one aggregate (e.g. total queue depth
/// across every AsyncWriter instance).
class Gauge {
 public:
  void set(double v) noexcept {
    base_.store(v, std::memory_order_relaxed);
    for (auto& s : shards_) s.v.store(0.0, std::memory_order_relaxed);
  }

  void add(double d) noexcept {
    shards_[detail::thread_shard()].v.fetch_add(d, std::memory_order_relaxed);
  }

  double value() const noexcept {
    double total = base_.load(std::memory_order_relaxed);
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> base_{0.0};
  detail::PaddedF64 shards_[detail::kShards];
};

/// Exponential upper bounds suited to microsecond latencies (1us .. 10s).
std::vector<double> latency_buckets_us();

/// Fixed-bucket histogram.  `bounds` are ascending inclusive upper bounds;
/// an implicit +inf bucket catches the overflow.  observe() is lock-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t count() const noexcept;
  double sum() const noexcept;
  /// Per-bucket counts, size bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;

  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    explicit Shard(std::size_t buckets) : counts(buckets) {}
    std::vector<std::atomic<std::uint64_t>> counts;
    std::atomic<double> sum{0.0};
    std::atomic<std::uint64_t> n{0};
  };

  std::vector<double> bounds_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< size bounds.size() + 1
  std::uint64_t count = 0;
  double sum = 0.0;

  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
  /// Bucket-interpolated quantile estimate, q in [0, 1].
  double quantile(double q) const;
};

/// Aggregated point-in-time view of a registry.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Machine-readable form (the BENCH_<name>.json payload; schema documented
  /// in EXPERIMENTS.md).  `label` fills the top-level "bench" field.
  std::string to_json(const std::string& label = "") const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create by name.  Returned references stay valid for the
  /// registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` applies only on first creation; later callers get the
  /// existing histogram whatever its bounds.
  Histogram& histogram(const std::string& name, std::vector<double> bounds = {});

  Snapshot scrape() const;

  /// Zeroes every metric value.  Handles stay valid (tests isolate runs
  /// with this; production never needs it).
  void reset_values();

  /// The process-wide registry all built-in instrumentation reports to.
  static Registry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// RAII latency sample: observes elapsed microseconds on destruction.
class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(Histogram& hist) noexcept;
  ~ScopedTimerUs();
  ScopedTimerUs(const ScopedTimerUs&) = delete;
  ScopedTimerUs& operator=(const ScopedTimerUs&) = delete;

 private:
  Histogram* hist_;
  std::uint64_t start_ns_;
};

}  // namespace lowdiff::obs
