#pragma once

/// \file trace.h
/// Timeline tracer: begin/end spans and instant events recorded per thread
/// and exported as Chrome `trace_event` JSON (load the file in
/// chrome://tracing or https://ui.perfetto.dev).
///
/// Cost model: tracing is OFF by default.  A disabled tracer costs one
/// relaxed atomic load per span (TraceSpan stores a null tracer and the
/// destructor does nothing) — cheap enough to leave spans compiled into the
/// per-iteration hot paths.  Defining LOWDIFF_OBS_DISABLED compiles the
/// LOWDIFF_TRACE_* macros away entirely.
///
/// Threading: each thread appends to its own buffer (registered on first
/// use); the per-buffer mutex is only ever contended by export/clear, so
/// recording never blocks on another recording thread.  The tracer must
/// outlive every thread that records into it.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace lowdiff::obs {

struct TraceEvent {
  std::string name;
  std::string cat;
  char phase = 'X';   ///< 'X' complete span, 'i' instant
  double ts_us = 0;   ///< microseconds since the tracer epoch
  double dur_us = 0;  ///< span duration ('X' only)
  std::uint32_t tid = 0;
};

class Tracer {
 public:
  Tracer();
  ~Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Microseconds since the tracer epoch (construction or last clear()).
  double now_us() const noexcept;

  /// Records an instant event on the calling thread (no-op when disabled).
  void instant(std::string_view name, std::string_view cat = {});

  /// Records a completed span; TraceSpan is the usual entry point.
  void complete(std::string_view name, std::string_view cat, double ts_us,
                double dur_us);

  /// Names the calling thread's row in the exported timeline.
  void set_thread_name(std::string_view name);

  /// Merged copy of every thread's events, ordered by timestamp.
  std::vector<TraceEvent> events() const;

  /// Sum of dur_us over complete spans named `name` (timeline analysis and
  /// the stall-reconstruction test).
  double span_total_us(std::string_view name) const;

  std::string to_chrome_json() const;
  bool write_chrome_json(const std::string& path) const;

  /// Drops all recorded events and restarts the epoch.
  void clear();

  /// Process-wide tracer used by the built-in instrumentation.
  static Tracer& global();

 private:
  struct ThreadBuf {
    mutable std::mutex mu;
    std::uint32_t tid = 0;
    std::string thread_name;
    std::vector<TraceEvent> events;
  };

  ThreadBuf& local_buf();

  std::atomic<bool> enabled_{false};
  std::uint64_t id_;  ///< process-unique, keys the thread-local buffer cache
  std::atomic<std::int64_t> epoch_ns_;  ///< steady_clock epoch (atomic: clear() races now_us())
  mutable std::mutex mu_;  ///< guards bufs_ registration
  std::vector<std::unique_ptr<ThreadBuf>> bufs_;
};

/// RAII span: records one complete ('X') event covering its lifetime.
/// Construction against a disabled tracer records nothing and allocates
/// nothing.
class TraceSpan {
 public:
  TraceSpan(Tracer& tracer, std::string_view name, std::string_view cat = {})
      : tracer_(tracer.enabled() ? &tracer : nullptr) {
    if (tracer_ != nullptr) {
      name_ = name;
      cat_ = cat;
      start_us_ = tracer_->now_us();
    }
  }

  explicit TraceSpan(std::string_view name, std::string_view cat = {})
      : TraceSpan(Tracer::global(), name, cat) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { finish(); }

  /// Ends the span early (idempotent).
  void finish() {
    if (tracer_ == nullptr) return;
    tracer_->complete(name_, cat_, start_us_, tracer_->now_us() - start_us_);
    tracer_ = nullptr;
  }

 private:
  Tracer* tracer_;
  std::string name_;
  std::string cat_;
  double start_us_ = 0;
};

}  // namespace lowdiff::obs

#define LOWDIFF_OBS_CONCAT_(a, b) a##b
#define LOWDIFF_OBS_CONCAT(a, b) LOWDIFF_OBS_CONCAT_(a, b)

#ifndef LOWDIFF_OBS_DISABLED
/// Span over the rest of the enclosing scope, on the global tracer.
#define LOWDIFF_TRACE_SPAN(name, cat)                             \
  ::lowdiff::obs::TraceSpan LOWDIFF_OBS_CONCAT(lowdiff_span_,     \
                                               __LINE__)((name), (cat))
#define LOWDIFF_TRACE_INSTANT(name, cat) \
  ::lowdiff::obs::Tracer::global().instant((name), (cat))
#else
#define LOWDIFF_TRACE_SPAN(name, cat) \
  do {                                \
  } while (false)
#define LOWDIFF_TRACE_INSTANT(name, cat) \
  do {                                   \
  } while (false)
#endif
