#pragma once

/// \file datapath.h
/// Observability for the parallel zero-copy checkpoint datapath.
///
/// The common layer (BufferPool, crc32) cannot link against obs — obs
/// already links common — so the pool exports a plain Stats struct and this
/// header mirrors it into the metrics registry from the layers that can.
/// Call publish_datapath_metrics() at natural sampling points (strategy
/// flush, bench teardown); gauges are last-writer-wins so repeated calls
/// are cheap and safe.

#include "common/buffer_pool.h"
#include "common/crc32.h"
#include "obs/metrics.h"

namespace lowdiff::obs {

inline void publish_datapath_metrics(
    const BufferPool::Stats& stats = BufferPool::global().stats()) {
  auto& reg = Registry::global();
  reg.gauge("datapath.pool.acquires").set(static_cast<double>(stats.acquires));
  reg.gauge("datapath.pool.hits").set(static_cast<double>(stats.hits));
  reg.gauge("datapath.pool.allocs").set(static_cast<double>(stats.allocs));
  reg.gauge("datapath.pool.dropped").set(static_cast<double>(stats.dropped));
  reg.gauge("datapath.pool.cached_buffers")
      .set(static_cast<double>(stats.cached_buffers));
  reg.gauge("datapath.pool.cached_bytes")
      .set(static_cast<double>(stats.cached_bytes));
  reg.gauge("datapath.crc32c.hardware")
      .set(crc32c_hardware_available() ? 1.0 : 0.0);
}

}  // namespace lowdiff::obs
