#pragma once

/// \file json.h
/// Minimal JSON emission helpers shared by the metrics registry and the
/// timeline tracer.  Writing only — the library never parses JSON.

#include <cmath>
#include <cstdio>
#include <string>

namespace lowdiff::obs::json {

/// Escapes a string for inclusion inside JSON double quotes.
inline std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string quoted(const std::string& s) { return "\"" + escape(s) + "\""; }

/// Formats a double as a valid JSON number (JSON has no inf/nan; they map
/// to very large sentinels so bucket bounds survive the round trip).
inline std::string number(double v) {
  if (std::isnan(v)) return "0";
  if (std::isinf(v)) return v > 0 ? "1e308" : "-1e308";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace lowdiff::obs::json
