#pragma once

/// \file adam.h
/// Adam (Kingma & Ba) with bias correction — the paper's default optimizer.
/// Maintains first/second moments of the same size as the parameters, which
/// is why a full checkpoint is 3Ψ while a gradient is Ψ (Finding 2).

#include "optim/optimizer.h"

namespace lowdiff {

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
};

class Adam final : public Optimizer {
 public:
  explicit Adam(AdamConfig config = {}) : config_(config) {}

  void step(ModelState& state, std::span<const float> grad) const override;
  void step_slice(ModelState& state, std::size_t offset,
                  std::span<const float> grad) const override;

  std::string name() const override { return "Adam"; }
  std::unique_ptr<Optimizer> clone() const override {
    return std::make_unique<Adam>(config_);
  }

  const AdamConfig& config() const { return config_; }

 private:
  /// Shared kernel: updates the slice assuming the post-increment step
  /// counter is `step_after` (bias correction depends on it).
  void apply(ModelState& state, std::size_t offset, std::span<const float> grad,
             std::uint64_t step_after) const;

  AdamConfig config_;
};

}  // namespace lowdiff
