#pragma once

/// \file sgd.h
/// SGD with optional momentum.  Included so the checkpoint-size accounting
/// can be exercised with optimizers whose state differs from Adam's 2Ψ
/// (plain SGD keeps no moments; momentum keeps Ψ).

#include "optim/optimizer.h"

namespace lowdiff {

struct SgdConfig {
  float lr = 1e-2f;
  float momentum = 0.0f;  ///< 0 disables the momentum buffer semantics.
};

class Sgd final : public Optimizer {
 public:
  explicit Sgd(SgdConfig config = {}) : config_(config) {}

  void step(ModelState& state, std::span<const float> grad) const override;
  void step_slice(ModelState& state, std::size_t offset,
                  std::span<const float> grad) const override;

  std::string name() const override {
    return config_.momentum > 0.0f ? "SGD-momentum" : "SGD";
  }
  std::unique_ptr<Optimizer> clone() const override {
    return std::make_unique<Sgd>(config_);
  }

  const SgdConfig& config() const { return config_; }

 private:
  void apply(ModelState& state, std::size_t offset,
             std::span<const float> grad) const;

  SgdConfig config_;
};

}  // namespace lowdiff
