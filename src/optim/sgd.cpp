#include "optim/sgd.h"

#include "common/error.h"

namespace lowdiff {

void Sgd::apply(ModelState& state, std::size_t offset,
                std::span<const float> grad) const {
  LOWDIFF_ENSURE(offset + grad.size() <= state.param_count(),
                 "sgd slice out of range");
  float* __restrict p = state.params().data() + offset;
  const float* __restrict g = grad.data();
  const float lr = config_.lr;
  if (config_.momentum > 0.0f) {
    // Momentum buffer lives in moment1; moment2 stays zero.
    float* __restrict buf = state.moment1().data() + offset;
    const float mu = config_.momentum;
    for (std::size_t i = 0; i < grad.size(); ++i) {
      buf[i] = mu * buf[i] + g[i];
      p[i] -= lr * buf[i];
    }
  } else {
    for (std::size_t i = 0; i < grad.size(); ++i) {
      p[i] -= lr * g[i];
    }
  }
}

void Sgd::step(ModelState& state, std::span<const float> grad) const {
  LOWDIFF_ENSURE(grad.size() == state.param_count(), "sgd gradient size mismatch");
  apply(state, 0, grad);
  state.set_step(state.step() + 1);
}

void Sgd::step_slice(ModelState& state, std::size_t offset,
                     std::span<const float> grad) const {
  apply(state, offset, grad);
}

}  // namespace lowdiff
