#pragma once

/// \file optimizer.h
/// Optimizer interface.  An optimizer step is the paper's Eq. (1):
///   M_{t+1} = M_t + Opt(G_t)
/// where M includes both parameters and optimizer moments.  Steps must be
/// *bitwise deterministic*: the recovery process replays reused gradients
/// through the same optimizer and must land on the identical model state
/// (Finding 1), which the integration tests assert bit-for-bit.

#include <memory>
#include <span>
#include <string>

#include "model/model_state.h"

namespace lowdiff {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one dense update.  `grad` must have state.param_count()
  /// elements.  Mutates parameters, moments, and the step counter.
  virtual void step(ModelState& state, std::span<const float> grad) const = 0;

  /// Applies the update to the contiguous slice [offset, offset+grad.size())
  /// of the parameter vector only.  Used by the layer-wise CPU replica
  /// update of LowDiff+ (Algorithm 2 line 12), which applies gradients per
  /// layer as they stream in.  The step counter is NOT advanced — the caller
  /// advances it once per iteration via finish_partial_step().
  virtual void step_slice(ModelState& state, std::size_t offset,
                          std::span<const float> grad) const = 0;

  /// Advances the step counter after a set of step_slice() calls covering
  /// the whole parameter vector.  step_slice over all slices followed by
  /// finish_partial_step() must equal one dense step() bit-for-bit.
  void finish_partial_step(ModelState& state) const {
    state.set_step(state.step() + 1);
  }

  virtual std::string name() const = 0;
  virtual std::unique_ptr<Optimizer> clone() const = 0;
};

}  // namespace lowdiff
