#include "optim/adam.h"

#include <cmath>

#include "common/error.h"

namespace lowdiff {

void Adam::apply(ModelState& state, std::size_t offset,
                 std::span<const float> grad, std::uint64_t step_after) const {
  LOWDIFF_ENSURE(offset + grad.size() <= state.param_count(),
                 "adam slice out of range");
  float* __restrict p = state.params().data() + offset;
  float* __restrict m = state.moment1().data() + offset;
  float* __restrict v = state.moment2().data() + offset;
  const float* __restrict g = grad.data();

  const float b1 = config_.beta1;
  const float b2 = config_.beta2;
  // Bias correction computed in float so the dense and slice paths produce
  // bit-identical results regardless of slicing.
  const auto t = static_cast<float>(step_after);
  const float c1 = 1.0f - std::pow(b1, t);
  const float c2 = 1.0f - std::pow(b2, t);
  const float lr = config_.lr;
  const float eps = config_.eps;

  for (std::size_t i = 0; i < grad.size(); ++i) {
    m[i] = b1 * m[i] + (1.0f - b1) * g[i];
    v[i] = b2 * v[i] + (1.0f - b2) * g[i] * g[i];
    const float mhat = m[i] / c1;
    const float vhat = v[i] / c2;
    p[i] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

void Adam::step(ModelState& state, std::span<const float> grad) const {
  LOWDIFF_ENSURE(grad.size() == state.param_count(), "adam gradient size mismatch");
  apply(state, 0, grad, state.step() + 1);
  state.set_step(state.step() + 1);
}

void Adam::step_slice(ModelState& state, std::size_t offset,
                      std::span<const float> grad) const {
  apply(state, offset, grad, state.step() + 1);
}

}  // namespace lowdiff
