#pragma once

/// \file retry.h
/// Bounded exponential backoff with jitter for retryable storage faults.
///
/// The policy is deterministic given a seed (jitter comes from Xoshiro256),
/// so fault-injection tests can assert exact retry counts.  Delays are
/// expressed in seconds; callers that run against in-memory backends may
/// scale them to ~zero for test speed.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "common/error.h"
#include "common/rng.h"

namespace lowdiff {

/// Bounded exponential backoff: attempt k (0-based) sleeps
/// base * multiplier^k, capped at max_delay, with ±jitter fractional noise.
struct RetryPolicy {
  int max_attempts = 4;          ///< total tries (first attempt + retries)
  double base_delay_sec = 1e-3;  ///< delay before the first retry
  double multiplier = 2.0;
  double max_delay_sec = 0.1;
  double jitter = 0.5;  ///< delay is scaled by uniform [1-jitter, 1+jitter]
  /// Root seed for every jitter stream derived from this policy.  All
  /// components that retry (CheckpointStore, AsyncWriter, Replicator lanes)
  /// draw their RNGs via make_rng(), so a test or the chaos harness pins
  /// one seed here and the whole retry schedule is reproducible — including
  /// under `ctest -j`, where wall-clock interleaving must not feed back
  /// into the jitter sequence.
  std::uint64_t seed = 0x7e77a5eedull;

  /// Jitter RNG for one retry stream.  `stream` decorrelates independent
  /// retry loops (per store, per writer lane) under the same policy seed.
  Xoshiro256 make_rng(std::uint64_t stream = 0) const {
    return Xoshiro256(SplitMix64(seed ^ (0x9e3779b9ull + stream)).next());
  }

  /// Delay (seconds) to sleep before retry number `retry` (0-based).
  double delay_sec(int retry, Xoshiro256& rng) const {
    double d = base_delay_sec;
    for (int i = 0; i < retry; ++i) d *= multiplier;
    d = std::min(d, max_delay_sec);
    const double scale = 1.0 + jitter * (2.0 * rng.uniform_double() - 1.0);
    return std::max(0.0, d * scale);
  }
};

/// Sleeps for the given number of seconds (sub-millisecond resolution).
inline void retry_sleep(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

/// Runs `op` (returning Status) up to policy.max_attempts times, sleeping
/// between attempts while the failure is retryable.  Non-retryable statuses
/// are returned immediately.  When the budget is exhausted the last status
/// is wrapped as kExhausted.  `retries_out`, if non-null, is incremented
/// once per retry performed.
template <typename Op>
Status run_with_retry(const RetryPolicy& policy, Xoshiro256& rng, Op&& op,
                      std::uint64_t* retries_out = nullptr) {
  const int attempts = std::max(1, policy.max_attempts);
  Status last;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      retry_sleep(policy.delay_sec(attempt - 1, rng));
      if (retries_out) ++*retries_out;
    }
    last = op();
    if (last.ok() || !last.retryable()) return last;
  }
  return Status(ErrorCode::kExhausted,
                "retry budget spent (" + std::to_string(attempts) +
                    " attempts) — last: " + last.to_string());
}

}  // namespace lowdiff
