#include "common/thread_pool.h"

#include <algorithm>

namespace lowdiff {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        // stopping_ and drained: exit.
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& f) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, workers_.size());
  if (chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) f(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  const std::size_t per = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * per;
    const std::size_t hi = std::min(end, lo + per);
    if (lo >= hi) break;
    futures.push_back(submit([lo, hi, &f] {
      for (std::size_t i = lo; i < hi; ++i) f(i);
    }));
  }
  for (auto& fu : futures) fu.get();
}

}  // namespace lowdiff
