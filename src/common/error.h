#pragma once

/// \file error.h
/// Error-handling primitives for the LowDiff library.
///
/// Following the C++ Core Guidelines (I.6, E.12), preconditions and
/// invariants are checked with macros that throw a typed exception carrying
/// the failing expression and source location.  Checks are always on: the
/// library simulates distributed-systems failure paths, so silent invariant
/// corruption is never acceptable.

#include <source_location>
#include <stdexcept>
#include <string>

namespace lowdiff {

/// Exception thrown when a LOWDIFF_ENSURE / LOWDIFF_CHECK condition fails.
class Error : public std::runtime_error {
 public:
  Error(const std::string& what_arg, std::source_location loc)
      : std::runtime_error(format(what_arg, loc)) {}

 private:
  static std::string format(const std::string& msg, std::source_location loc) {
    return std::string(loc.file_name()) + ":" + std::to_string(loc.line()) +
           " (" + loc.function_name() + "): " + msg;
  }
};

namespace detail {
[[noreturn]] inline void raise(const char* expr, const std::string& msg,
                               std::source_location loc) {
  std::string text = std::string("check failed: ") + expr;
  if (!msg.empty()) text += " — " + msg;
  throw Error(text, loc);
}
}  // namespace detail

}  // namespace lowdiff

/// Precondition / invariant check with an explanatory message.
#define LOWDIFF_ENSURE(cond, msg)                                       \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::lowdiff::detail::raise(#cond, (msg),                            \
                               std::source_location::current());        \
    }                                                                   \
  } while (false)

/// Bare invariant check.
#define LOWDIFF_CHECK(cond) LOWDIFF_ENSURE(cond, "")

/// Marks unreachable control flow.
#define LOWDIFF_UNREACHABLE(msg)                                        \
  ::lowdiff::detail::raise("unreachable", (msg),                        \
                           std::source_location::current())
