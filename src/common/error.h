#pragma once

/// \file error.h
/// Error-handling primitives for the LowDiff library.
///
/// Following the C++ Core Guidelines (I.6, E.12), preconditions and
/// invariants are checked with macros that throw a typed exception carrying
/// the failing expression and source location.  Checks are always on: the
/// library simulates distributed-systems failure paths, so silent invariant
/// corruption is never acceptable.
///
/// Expected failures — storage I/O errors, missing objects, corrupt
/// records — are *values*, not exceptions: Status / Result<T> carry an
/// ErrorCode so callers can distinguish retryable faults (kTransient,
/// kUnavailable) from data loss (kCorrupted) from absence (kNotFound) and
/// react per-code (retry, fall back, degrade).  Exceptions remain reserved
/// for programming errors.

#include <cstdint>
#include <optional>
#include <source_location>
#include <stdexcept>
#include <string>
#include <utility>

namespace lowdiff {

/// Exception thrown when a LOWDIFF_ENSURE / LOWDIFF_CHECK condition fails.
class Error : public std::runtime_error {
 public:
  Error(const std::string& what_arg, std::source_location loc)
      : std::runtime_error(format(what_arg, loc)) {}

 private:
  static std::string format(const std::string& msg, std::source_location loc) {
    return std::string(loc.file_name()) + ":" + std::to_string(loc.line()) +
           " (" + loc.function_name() + "): " + msg;
  }
};

namespace detail {
[[noreturn]] inline void raise(const char* expr, const std::string& msg,
                               std::source_location loc) {
  std::string text = std::string("check failed: ") + expr;
  if (!msg.empty()) text += " — " + msg;
  throw Error(text, loc);
}
}  // namespace detail

/// Classification of expected (non-programming-error) failures.
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kNotFound,     ///< object absent (also: present but never committed)
  kTransient,    ///< injected / sporadic fault — retrying may succeed
  kUnavailable,  ///< backend cannot serve the request (e.g. fs error)
  kCorrupted,    ///< CRC mismatch, torn write, or malformed record
  kShutdown,     ///< component is shutting down; request not accepted
  kExhausted,    ///< retry budget spent without success
  kTimeout,      ///< op exceeded its deadline; outcome on the device unknown
  kCircuitOpen,  ///< short-circuited by an open breaker; device never touched
};

inline const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kTransient: return "transient";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kCorrupted: return "corrupted";
    case ErrorCode::kShutdown: return "shutdown";
    case ErrorCode::kExhausted: return "exhausted";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kCircuitOpen: return "circuit_open";
  }
  return "unknown";
}

/// Success-or-coded-error value for fallible operations (storage I/O).
class Status {
 public:
  Status() = default;  // ok
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// True for codes where retrying the same operation can succeed.
  /// kCircuitOpen is deliberately *not* retryable: the whole point of an
  /// open breaker is that retrying against the same target is wasted work —
  /// the caller must route around it (or wait for the half-open probe).
  bool retryable() const {
    return code_ == ErrorCode::kTransient || code_ == ErrorCode::kUnavailable ||
           code_ == ErrorCode::kTimeout;
  }

  std::string to_string() const {
    if (ok()) return "ok";
    return std::string(error_code_name(code_)) + ": " + message_;
  }

  /// Bridges to the exception world at API boundaries that promise throws.
  void check(std::source_location loc = std::source_location::current()) const {
    if (!ok()) throw Error(to_string(), loc);
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// A value or a (non-ok) Status.  Mirrors std::optional's access surface so
/// `if (result.has_value())` / `*result` call sites read naturally while the
/// error cause stays inspectable via status().
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) { reject_ok_status(); }
  Result(ErrorCode code, std::string message)
      : status_(code, std::move(message)) {
    reject_ok_status();
  }

  bool ok() const { return value_.has_value(); }
  bool has_value() const { return ok(); }
  explicit operator bool() const { return ok(); }

  const Status& status() const { return status_; }

  T& value() & { return check_deref(); }
  const T& value() const& { return const_cast<Result*>(this)->check_deref(); }
  T&& value() && { return std::move(check_deref()); }

  T& operator*() & { return check_deref(); }
  const T& operator*() const& { return const_cast<Result*>(this)->check_deref(); }
  T&& operator*() && { return std::move(check_deref()); }
  T* operator->() { return &check_deref(); }
  const T* operator->() const { return &const_cast<Result*>(this)->check_deref(); }

 private:
  T& check_deref() {
    if (!value_.has_value()) {
      throw Error("dereferenced error Result — " + status_.to_string(),
                  std::source_location::current());
    }
    return *value_;
  }

  /// A Result built from an ok() status would be neither value nor error.
  void reject_ok_status() const {
    if (status_.ok()) {
      throw Error("Result constructed from ok status",
                  std::source_location::current());
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace lowdiff

/// Precondition / invariant check with an explanatory message.
#define LOWDIFF_ENSURE(cond, msg)                                       \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::lowdiff::detail::raise(#cond, (msg),                            \
                               std::source_location::current());        \
    }                                                                   \
  } while (false)

/// Bare invariant check.
#define LOWDIFF_CHECK(cond) LOWDIFF_ENSURE(cond, "")

/// Marks unreachable control flow.
#define LOWDIFF_UNREACHABLE(msg)                                        \
  ::lowdiff::detail::raise("unreachable", (msg),                        \
                           std::source_location::current())
