#pragma once

/// \file buffer_pool.h
/// Reusable arena of AlignedBuffers for the checkpoint datapath.
///
/// Every checkpoint record the system persists used to malloc a fresh
/// std::vector, fill it, and often copy it again on the way to the writer
/// thread.  At one differential per iteration that is steady-state
/// allocator traffic on the hot path.  The pool leases aligned buffers
/// (PooledBuffer) that return automatically on destruction; steady-state
/// serialization therefore recycles the same few allocations.
///
/// Lifetime rules (DESIGN.md §6):
///  - A PooledBuffer must not outlive the BufferPool it was leased from.
///    The process-wide BufferPool::global() satisfies this for any buffer
///    that dies before static teardown (all strategy/writer threads join in
///    destructors, so their buffers do).
///  - Buffers are exclusive while leased: the pool never aliases a live
///    lease.  Sharing after fill is done by converting to ByteBuffer.
///  - acquire()/release are mutex-protected and thread-safe; the bytes
///    themselves are owned by exactly one thread until shared.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "common/aligned_buffer.h"

namespace lowdiff {

class BufferPool;

/// RAII lease on a pool buffer.  Logical size() is what was requested;
/// capacity() is the (possibly larger, recycled) allocation behind it.
class PooledBuffer {
 public:
  PooledBuffer() = default;

  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;

  PooledBuffer(PooledBuffer&& other) noexcept { swap(other); }
  PooledBuffer& operator=(PooledBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      swap(other);
    }
    return *this;
  }

  ~PooledBuffer() { reset(); }

  /// Returns the allocation to the pool (or frees it for pool-less
  /// buffers) and empties this handle.
  void reset();

  void swap(PooledBuffer& other) noexcept {
    buf_.swap(other.buf_);
    std::swap(size_, other.size_);
    std::swap(pool_, other.pool_);
  }

  std::byte* data() noexcept { return buf_.data(); }
  const std::byte* data() const noexcept { return buf_.data(); }
  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return buf_.size(); }
  bool empty() const noexcept { return size_ == 0; }

  std::span<std::byte> span() noexcept { return {buf_.data(), size_}; }
  std::span<const std::byte> cspan() const noexcept {
    return {buf_.data(), size_};
  }

 private:
  friend class BufferPool;
  PooledBuffer(AlignedBuffer buf, std::size_t size, BufferPool* pool)
      : buf_(std::move(buf)), size_(size), pool_(pool) {}

  AlignedBuffer buf_;
  std::size_t size_ = 0;
  BufferPool* pool_ = nullptr;
};

/// Thread-safe free-list of AlignedBuffers.  Capacities are rounded up so
/// records of slightly varying size (batched diffs grow and shrink) still
/// hit the cache.
class BufferPool {
 public:
  struct Options {
    /// Buffers retained on the free list; extra returns are freed.
    std::size_t max_cached_buffers = 16;
    /// Total bytes retained; returns that would exceed this are freed.
    std::size_t max_cached_bytes = std::size_t{1} << 28;  // 256 MiB
  };

  struct Stats {
    std::uint64_t acquires = 0;  ///< total acquire() calls
    std::uint64_t hits = 0;      ///< served from the free list
    std::uint64_t allocs = 0;    ///< served by a fresh allocation
    std::uint64_t dropped = 0;   ///< returns freed because of the limits
    std::size_t cached_buffers = 0;
    std::size_t cached_bytes = 0;
  };

  BufferPool() = default;
  explicit BufferPool(Options options) : options_(options) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Leases a buffer with capacity >= size (logical size() == size).
  PooledBuffer acquire(std::size_t size);

  /// Process-wide pool used by the serialization datapath.
  static BufferPool& global();

  Stats stats() const;

  /// Frees every cached buffer (tests; memory-pressure hook).
  void trim();

 private:
  friend class PooledBuffer;
  void release(AlignedBuffer buf);

  Options options_;
  mutable std::mutex mutex_;
  std::vector<AlignedBuffer> free_;
  std::size_t cached_bytes_ = 0;
  std::uint64_t acquires_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t allocs_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Immutable, cheaply shareable byte payload for async write paths.  Built
/// from either a std::vector (legacy call sites) or a PooledBuffer (the
/// zero-copy datapath); copies alias the same bytes, so a record fanned out
/// to N replica writers is stored once.
class ByteBuffer {
 public:
  ByteBuffer() = default;

  // Intentionally implicit: every existing submit(key, std::move(vec))
  // call site keeps compiling, one move, no byte copy.
  ByteBuffer(std::vector<std::byte> bytes) {  // NOLINT(google-explicit-*)
    auto owner = std::make_shared<std::vector<std::byte>>(std::move(bytes));
    data_ = owner->data();
    size_ = owner->size();
    owner_ = std::move(owner);
  }

  ByteBuffer(PooledBuffer bytes) {  // NOLINT(google-explicit-*)
    auto owner = std::make_shared<PooledBuffer>(std::move(bytes));
    data_ = owner->data();
    size_ = owner->size();
    owner_ = std::move(owner);
  }

  const std::byte* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::span<const std::byte> cspan() const noexcept { return {data_, size_}; }

 private:
  std::shared_ptr<const void> owner_;
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace lowdiff
