#pragma once

/// \file batch_rng.h
/// Batched random draws for simulation hot loops.
///
/// Sampling one variate at a time through a virtual-ish call chain keeps the
/// generator state bouncing between registers and memory and defeats
/// vectorization of the transform (log for exponentials, scaling for
/// uniforms).  These helpers fill flat arrays in one pass: the generator
/// loop is tight, the transform loop is separately vectorizable, and the
/// caller amortizes call overhead across the whole block.
///
/// Determinism contract: each fill consumes the generator stream in exactly
/// the same order as the equivalent sequence of scalar draws, so switching a
/// call site between scalar and batched sampling cannot change results.

#include <cstddef>
#include <cstdint>

#include "common/rng.h"

namespace lowdiff {

/// Fills out[0..n) with uniform doubles in [0, 1) — stream-equivalent to n
/// calls of rng.uniform_double().
inline void fill_uniform(Xoshiro256& rng, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = rng.uniform_double();
}

/// Fills out[0..n) with exponential variates of the given mean —
/// stream-equivalent to n calls of rng.exponential(mean).
inline void fill_exponential(Xoshiro256& rng, double mean, double* out,
                             std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = rng.exponential(mean);
}

/// Fills out[0..n) with uniform integers in [0, bound) — stream-equivalent
/// to n calls of rng.uniform_below(bound).
inline void fill_uniform_below(Xoshiro256& rng, std::uint64_t bound,
                               std::uint64_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = rng.uniform_below(bound);
}

}  // namespace lowdiff
