/// \file crc32_hw.cpp
/// Hardware CRC32C kernels.  This translation unit is the only one compiled
/// with ISA-extension flags (see src/common/CMakeLists.txt), so the rest of
/// the library stays runnable on baseline CPUs; callers reach the kernel
/// only after detail::crc32c_hw_supported() says the instruction exists.

#include "common/crc32.h"

#include <cstring>

#if defined(__x86_64__) && defined(__SSE4_2__)
#include <nmmintrin.h>
#define LOWDIFF_CRC32_HW_X86 1
#elif defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#include <arm_acle.h>
#define LOWDIFF_CRC32_HW_ARM 1
#if defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1 << 7)
#endif
#endif
#endif

namespace lowdiff::detail {

#if defined(LOWDIFF_CRC32_HW_X86)

bool crc32c_hw_supported() { return __builtin_cpu_supports("sse4.2"); }

std::uint32_t crc32c_hw(std::uint32_t crc, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t c = ~crc;
  while (len >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, sizeof(word));
    c = _mm_crc32_u64(c, word);
    p += 8;
    len -= 8;
  }
  auto c32 = static_cast<std::uint32_t>(c);
  if (len >= 4) {
    std::uint32_t word;
    std::memcpy(&word, p, sizeof(word));
    c32 = _mm_crc32_u32(c32, word);
    p += 4;
    len -= 4;
  }
  while (len-- > 0) c32 = _mm_crc32_u8(c32, *p++);
  return ~c32;
}

#elif defined(LOWDIFF_CRC32_HW_ARM)

bool crc32c_hw_supported() {
#if defined(__linux__)
  return (getauxval(AT_HWCAP) & HWCAP_CRC32) != 0;
#else
  // Compiled with +crc for this target: assume the extension is present.
  return true;
#endif
}

std::uint32_t crc32c_hw(std::uint32_t crc, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = ~crc;
  while (len >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, sizeof(word));
    c = __crc32cd(c, word);
    p += 8;
    len -= 8;
  }
  if (len >= 4) {
    std::uint32_t word;
    std::memcpy(&word, p, sizeof(word));
    c = __crc32cw(c, word);
    p += 4;
    len -= 4;
  }
  while (len-- > 0) c = __crc32cb(c, *p++);
  return ~c;
}

#else

bool crc32c_hw_supported() { return false; }

std::uint32_t crc32c_hw(std::uint32_t crc, const void* data, std::size_t len) {
  // Never reached: dispatch only selects this kernel when supported().
  return crc32c_sw(crc, data, len);
}

#endif

}  // namespace lowdiff::detail
