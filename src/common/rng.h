#pragma once

/// \file rng.h
/// Deterministic random number generation.
///
/// The simulator must be reproducible run-to-run (experiments are compared
/// across strategies), so every stochastic component takes an explicit seed
/// and uses these engines rather than std::random_device.

#include <cmath>
#include <cstdint>
#include <limits>

namespace lowdiff {

/// SplitMix64 — used to expand a single seed into stream seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality PRNG for bulk gradient synthesis.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform float in [0, 1).
  constexpr float uniform_float() {
    return static_cast<float>((*this)() >> 40) * 0x1.0p-24f;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t uniform_below(std::uint64_t bound) {
    // Lemire's multiply-shift; slight modulo bias is irrelevant here.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
  }

  /// Standard normal via Marsaglia polar method (deterministic).
  double normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * uniform_double() - 1.0;
      v = 2.0 * uniform_double() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    has_spare_ = true;
    return u * m;
  }

  /// Exponential with the given mean (used for MTBF failure sampling).
  double exponential(double mean) {
    double u;
    do {
      u = uniform_double();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace lowdiff
