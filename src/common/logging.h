#pragma once

/// \file logging.h
/// Minimal leveled logger.  Benchmarks print their tables on stdout; the
/// logger keeps diagnostics on stderr so bench output stays machine-parsable.

#include <sstream>
#include <string>

namespace lowdiff {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level (default kWarn so tests/benches stay quiet).
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

template <typename... Parts>
void log(LogLevel level, const Parts&... parts) {
  if (level < log_level()) return;
  std::ostringstream oss;
  (oss << ... << parts);
  detail::log_line(level, oss.str());
}

#define LOWDIFF_LOG_DEBUG(...) ::lowdiff::log(::lowdiff::LogLevel::kDebug, __VA_ARGS__)
#define LOWDIFF_LOG_INFO(...) ::lowdiff::log(::lowdiff::LogLevel::kInfo, __VA_ARGS__)
#define LOWDIFF_LOG_WARN(...) ::lowdiff::log(::lowdiff::LogLevel::kWarn, __VA_ARGS__)
#define LOWDIFF_LOG_ERROR(...) ::lowdiff::log(::lowdiff::LogLevel::kError, __VA_ARGS__)

}  // namespace lowdiff
