#include "common/crc32.h"

#include <array>
#include <cstring>
#include <vector>

#include "common/thread_pool.h"

namespace lowdiff {
namespace {

// Reversed Castagnoli polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

// Software slice-by-8 tables, generated at static-init time.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};

  constexpr Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (std::size_t s = 1; s < 8; ++s) {
        c = t[0][c & 0xFFu] ^ (c >> 8);
        t[s][i] = c;
      }
    }
  }
};

constexpr Tables kTables{};

inline std::uint32_t load_le32(const unsigned char* p) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
#else
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
#endif
}

using CrcFn = std::uint32_t (*)(std::uint32_t, const void*, std::size_t);

CrcFn resolve_crc32c() {
  return detail::crc32c_hw_supported() ? &detail::crc32c_hw : &crc32c_sw;
}

const CrcFn kCrcImpl = resolve_crc32c();

// --- GF(2) machinery for crc32c_combine (zlib's crc32_combine scheme) -----

std::uint32_t gf2_matrix_times(const std::uint32_t mat[32], std::uint32_t vec) {
  std::uint32_t sum = 0;
  int i = 0;
  while (vec != 0) {
    if (vec & 1u) sum ^= mat[i];
    vec >>= 1;
    ++i;
  }
  return sum;
}

void gf2_matrix_square(std::uint32_t square[32], const std::uint32_t mat[32]) {
  for (int i = 0; i < 32; ++i) square[i] = gf2_matrix_times(mat, mat[i]);
}

}  // namespace

std::uint32_t crc32c_sw(std::uint32_t crc, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (len >= 8) {
    const std::uint32_t lo = crc ^ load_le32(p);
    const std::uint32_t hi = load_le32(p + 4);
    crc = kTables.t[7][lo & 0xFFu] ^ kTables.t[6][(lo >> 8) & 0xFFu] ^
          kTables.t[5][(lo >> 16) & 0xFFu] ^ kTables.t[4][lo >> 24] ^
          kTables.t[3][hi & 0xFFu] ^ kTables.t[2][(hi >> 8) & 0xFFu] ^
          kTables.t[1][(hi >> 16) & 0xFFu] ^ kTables.t[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  while (len-- > 0) {
    crc = kTables.t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t len) {
  return kCrcImpl(crc, data, len);
}

bool crc32c_hardware_available() { return kCrcImpl == &detail::crc32c_hw; }

std::uint32_t crc32c_combine(std::uint32_t crc_a, std::uint32_t crc_b,
                             std::uint64_t len_b) {
  if (len_b == 0) return crc_a;

  std::uint32_t even[32];  // even-power-of-two zero operators
  std::uint32_t odd[32];   // odd-power-of-two zero operators

  // odd = operator for one zero bit.
  odd[0] = kPoly;
  std::uint32_t row = 1;
  for (int i = 1; i < 32; ++i) {
    odd[i] = row;
    row <<= 1;
  }
  gf2_matrix_square(even, odd);  // two zero bits
  gf2_matrix_square(odd, even);  // four zero bits (one zero byte, squared)

  // Advance crc_a through len_b zero bytes by applying the operator for
  // each set bit of len_b, squaring as we walk the bits.
  std::uint64_t len = len_b;
  do {
    gf2_matrix_square(even, odd);
    if (len & 1u) crc_a = gf2_matrix_times(even, crc_a);
    len >>= 1;
    if (len == 0) break;
    gf2_matrix_square(odd, even);
    if (len & 1u) crc_a = gf2_matrix_times(odd, crc_a);
    len >>= 1;
  } while (len != 0);

  return crc_a ^ crc_b;
}

std::uint32_t crc32c_chunked(const void* data, std::size_t len,
                             ThreadPool* pool, std::size_t min_chunk) {
  if (pool == nullptr || pool->size() <= 1 || len < 2 * min_chunk) {
    return crc32c(data, len);
  }
  const std::size_t chunks =
      std::min<std::size_t>(pool->size(), len / min_chunk);
  const std::size_t per = (len + chunks - 1) / chunks;
  const auto* base = static_cast<const unsigned char*>(data);

  struct Piece {
    std::uint32_t crc = 0;
    std::size_t len = 0;
  };
  std::vector<Piece> pieces(chunks);
  pool->parallel_for(0, chunks, [&](std::size_t c) {
    const std::size_t lo = c * per;
    const std::size_t hi = std::min(len, lo + per);
    pieces[c].len = hi - lo;
    pieces[c].crc = crc32c(base + lo, hi - lo);
  });

  std::uint32_t crc = pieces[0].crc;
  for (std::size_t c = 1; c < chunks; ++c) {
    crc = crc32c_combine(crc, pieces[c].crc, pieces[c].len);
  }
  return crc;
}

}  // namespace lowdiff
