#include "common/crc32.h"

#include <array>

namespace lowdiff {
namespace {

// Software slice-by-4 CRC32C. Table generated at static-init time from the
// reversed Castagnoli polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

struct Tables {
  std::array<std::array<std::uint32_t, 256>, 4> t{};

  constexpr Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (std::size_t s = 1; s < 4; ++s) {
        c = t[0][c & 0xFFu] ^ (c >> 8);
        t[s][i] = c;
      }
    }
  }
};

constexpr Tables kTables{};

}  // namespace

std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (len >= 4) {
    crc ^= static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
    crc = kTables.t[3][crc & 0xFFu] ^ kTables.t[2][(crc >> 8) & 0xFFu] ^
          kTables.t[1][(crc >> 16) & 0xFFu] ^ kTables.t[0][crc >> 24];
    p += 4;
    len -= 4;
  }
  while (len-- > 0) {
    crc = kTables.t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace lowdiff
