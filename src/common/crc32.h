#pragma once

/// \file crc32.h
/// CRC32C (Castagnoli) used to frame checkpoint files.
///
/// Checkpoints written by the storage subsystem carry a CRC so that the
/// recovery path can detect torn or corrupted writes — a real failure mode
/// the paper's recovery process must survive.

#include <cstddef>
#include <cstdint>

namespace lowdiff {

/// Incrementally updates a CRC32C over a byte range.
/// Start with crc = 0; feed successive chunks, reusing the returned value.
std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t len);

/// One-shot convenience over a whole buffer.
inline std::uint32_t crc32c(const void* data, std::size_t len) {
  return crc32c(0, data, len);
}

}  // namespace lowdiff
