#pragma once

/// \file crc32.h
/// CRC32C (Castagnoli) used to frame checkpoint files.
///
/// Checkpoints written by the storage subsystem carry a CRC so that the
/// recovery path can detect torn or corrupted writes — a real failure mode
/// the paper's recovery process must survive.
///
/// The default entry point dispatches at load time to the hardware CRC32C
/// instructions when the CPU has them (SSE4.2 `crc32` on x86-64, the ARMv8
/// CRC extension on aarch64) and falls back to a slice-by-8 software kernel
/// otherwise.  All kernels compute the identical function — dispatch never
/// changes a checksum.  `crc32c_combine` stitches independently computed
/// chunk CRCs together, which is what lets large checkpoint records be
/// checksummed chunk-parallel (`crc32c_chunked`) with a bit-identical
/// result.

#include <cstddef>
#include <cstdint>

namespace lowdiff {

class ThreadPool;

/// Incrementally updates a CRC32C over a byte range.
/// Start with crc = 0; feed successive chunks, reusing the returned value.
/// Dispatches to the hardware kernel when available.
std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t len);

/// One-shot convenience over a whole buffer.
inline std::uint32_t crc32c(const void* data, std::size_t len) {
  return crc32c(0, data, len);
}

/// Portable slice-by-8 software kernel (always available; the dispatch
/// fallback).  Exposed so tests and benches can pin hardware ≡ software.
std::uint32_t crc32c_sw(std::uint32_t crc, const void* data, std::size_t len);

/// True when crc32c() resolves to a hardware instruction kernel.
bool crc32c_hardware_available();

/// CRC of the concatenation A‖B from crc32c(A) and crc32c(B) alone:
///   crc32c_combine(crc32c(0, A, lenA), crc32c(0, B, lenB), lenB)
///     == crc32c(0, A‖B, lenA + lenB)
/// O(log len_b) GF(2) matrix applications — independent chunks can be
/// checksummed in parallel and folded exactly.
std::uint32_t crc32c_combine(std::uint32_t crc_a, std::uint32_t crc_b,
                             std::uint64_t len_b);

/// Chunk-parallel one-shot CRC32C: splits `data` across `pool` (when given
/// and the range is at least `min_chunk` per worker), checksums chunks
/// concurrently, and folds with crc32c_combine.  Bit-identical to
/// crc32c(data, len) for every pool size, including none.
std::uint32_t crc32c_chunked(const void* data, std::size_t len,
                             ThreadPool* pool,
                             std::size_t min_chunk = std::size_t{1} << 20);

namespace detail {
/// Hardware kernel + support probe, defined in crc32_hw.cpp (compiled with
/// the ISA flags for the kernel only; callers must check support first).
std::uint32_t crc32c_hw(std::uint32_t crc, const void* data, std::size_t len);
bool crc32c_hw_supported();
}  // namespace detail

}  // namespace lowdiff
