#pragma once

/// \file aligned_buffer.h
/// RAII cache-line / SIMD aligned byte buffer (Core Guidelines R.1).
///
/// Tensors, compressed-gradient payloads, and serialized checkpoints all sit
/// on top of this type.  Alignment defaults to 64 bytes so vectorized loops
/// over float payloads never straddle cache lines.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#include "common/error.h"

namespace lowdiff {

class AlignedBuffer {
 public:
  static constexpr std::size_t kAlignment = 64;

  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t size) : size_(size) {
    if (size_ > 0) {
      const std::size_t padded = (size_ + kAlignment - 1) / kAlignment * kAlignment;
      data_ = static_cast<std::byte*>(::operator new(padded, std::align_val_t{kAlignment}));
    }
  }

  AlignedBuffer(const AlignedBuffer& other) : AlignedBuffer(other.size_) {
    if (size_ > 0) std::memcpy(data_, other.data_, size_);
  }

  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) {
      AlignedBuffer tmp(other);
      swap(tmp);
    }
    return *this;
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept { swap(other); }

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  void swap(AlignedBuffer& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
  }

  std::byte* data() noexcept { return data_; }
  const std::byte* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  void fill(std::byte value) {
    if (size_ > 0) std::memset(data_, static_cast<int>(value), size_);
  }

  /// Reinterprets the buffer as an array of T.  The buffer size must be a
  /// multiple of sizeof(T); alignment is guaranteed by construction.
  template <typename T>
  T* as() {
    LOWDIFF_ENSURE(size_ % sizeof(T) == 0, "buffer size not a multiple of element size");
    return reinterpret_cast<T*>(data_);
  }

  template <typename T>
  const T* as() const {
    LOWDIFF_ENSURE(size_ % sizeof(T) == 0, "buffer size not a multiple of element size");
    return reinterpret_cast<const T*>(data_);
  }

 private:
  void release() noexcept {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t{kAlignment});
      data_ = nullptr;
    }
    size_ = 0;
  }

  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace lowdiff
