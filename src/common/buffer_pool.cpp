#include "common/buffer_pool.h"

#include <algorithm>
#include <bit>

namespace lowdiff {

void PooledBuffer::reset() {
  if (buf_.data() != nullptr && pool_ != nullptr) {
    pool_->release(std::move(buf_));
  }
  buf_ = AlignedBuffer();
  size_ = 0;
  pool_ = nullptr;
}

namespace {

// Round capacities up so a stream of records with jittering sizes (batched
// diffs grow and shrink a little each batch) still reuses cached buffers.
std::size_t round_capacity(std::size_t size) {
  if (size <= 4096) return 4096;
  return std::bit_ceil(size);
}

}  // namespace

PooledBuffer BufferPool::acquire(std::size_t size) {
  const std::size_t want = round_capacity(size);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++acquires_;
    // Best fit: smallest cached buffer with capacity >= want.
    auto best = free_.end();
    for (auto it = free_.begin(); it != free_.end(); ++it) {
      if (it->size() >= want &&
          (best == free_.end() || it->size() < best->size())) {
        best = it;
      }
    }
    if (best != free_.end()) {
      ++hits_;
      AlignedBuffer buf = std::move(*best);
      *best = std::move(free_.back());
      free_.pop_back();
      cached_bytes_ -= buf.size();
      return PooledBuffer(std::move(buf), size, this);
    }
    ++allocs_;
  }
  // Allocate outside the lock.
  return PooledBuffer(AlignedBuffer(want), size, this);
}

void BufferPool::release(AlignedBuffer buf) {
  if (buf.data() == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (free_.size() >= options_.max_cached_buffers ||
      cached_bytes_ + buf.size() > options_.max_cached_bytes) {
    ++dropped_;
    return;  // buf frees on scope exit
  }
  cached_bytes_ += buf.size();
  free_.push_back(std::move(buf));
}

BufferPool& BufferPool::global() {
  static BufferPool pool;
  return pool;
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.acquires = acquires_;
  s.hits = hits_;
  s.allocs = allocs_;
  s.dropped = dropped_;
  s.cached_buffers = free_.size();
  s.cached_bytes = cached_bytes_;
  return s;
}

void BufferPool::trim() {
  std::lock_guard<std::mutex> lock(mutex_);
  free_.clear();
  cached_bytes_ = 0;
}

}  // namespace lowdiff
