#pragma once

/// \file thread_pool.h
/// Fixed-size worker pool with future-returning submission and a blocking
/// parallel_for.  Used for:
///  - the layer-wise communication / snapshot thread pools of LowDiff+
///    (paper §5, Algorithm 2's P_g and P_s),
///  - the parallel recovery module's pairwise merges (paper Fig. 7),
///  - CPU-side batched gradient accumulation.
///
/// RAII: the destructor drains the queue and joins all workers (CP.23).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace lowdiff {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks, then joins.
  ~ThreadPool();

  std::size_t size() const { return workers_.size(); }

  /// Submits a callable; the returned future carries its result/exception.
  template <typename F, typename... Args>
  auto submit(F&& f, Args&&... args)
      -> std::future<std::invoke_result_t<F, Args...>> {
    using R = std::invoke_result_t<F, Args...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [fn = std::forward<F>(f),
         ... as = std::forward<Args>(args)]() mutable -> R {
          return std::invoke(std::move(fn), std::move(as)...);
        });
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      tasks_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Blocks until f(i) has run for every i in [begin, end), splitting the
  /// range into roughly equal chunks across the pool.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& f);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace lowdiff
