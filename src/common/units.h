#pragma once

/// \file units.h
/// Byte-size and time units used throughout the simulator configuration.

#include <cstdint>
#include <cstdio>
#include <string>

namespace lowdiff {

constexpr std::uint64_t kKiB = 1024ull;
constexpr std::uint64_t kMiB = 1024ull * kKiB;
constexpr std::uint64_t kGiB = 1024ull * kMiB;

/// Decimal units, used for network bandwidths quoted in Gbps.
constexpr double kKB = 1e3;
constexpr double kMB = 1e6;
constexpr double kGB = 1e9;

/// Converts a link speed in gigabits per second to bytes per second.
constexpr double gbps_to_bytes_per_sec(double gbps) { return gbps * 1e9 / 8.0; }

/// Human-readable byte count ("1.3G", "82M", "511K", "17B").
inline std::string format_bytes(std::uint64_t bytes) {
  auto fmt = [](double v, const char* suffix) {
    char buf[32];
    if (v >= 100.0) {
      std::snprintf(buf, sizeof(buf), "%.0f%s", v, suffix);
    } else if (v >= 10.0) {
      std::snprintf(buf, sizeof(buf), "%.1f%s", v, suffix);
    } else {
      std::snprintf(buf, sizeof(buf), "%.2f%s", v, suffix);
    }
    return std::string(buf);
  };
  const double b = static_cast<double>(bytes);
  if (b >= static_cast<double>(kGiB)) return fmt(b / static_cast<double>(kGiB), "G");
  if (b >= static_cast<double>(kMiB)) return fmt(b / static_cast<double>(kMiB), "M");
  if (b >= static_cast<double>(kKiB)) return fmt(b / static_cast<double>(kKiB), "K");
  return std::to_string(bytes) + "B";
}

}  // namespace lowdiff
