#pragma once

/// \file stopwatch.h
/// Monotonic wall-clock stopwatch used by benchmarks and the live engine.

#include <chrono>

namespace lowdiff {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double elapsed_sec() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_sec() * 1e3; }
  double elapsed_us() const { return elapsed_sec() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lowdiff
