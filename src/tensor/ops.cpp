#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.h"

namespace lowdiff::ops {

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  LOWDIFF_ENSURE(x.size() == y.size(), "axpy size mismatch");
  float* __restrict yp = y.data();
  const float* __restrict xp = x.data();
  for (std::size_t i = 0; i < x.size(); ++i) yp[i] += alpha * xp[i];
}

void copy(std::span<const float> x, std::span<float> y) {
  LOWDIFF_ENSURE(x.size() == y.size(), "copy size mismatch");
  if (!x.empty()) std::memcpy(y.data(), x.data(), x.size_bytes());
}

void scale(std::span<float> x, float alpha) {
  for (auto& v : x) v *= alpha;
}

void add(std::span<const float> a, std::span<const float> b, std::span<float> out) {
  LOWDIFF_ENSURE(a.size() == b.size() && a.size() == out.size(), "add size mismatch");
  float* __restrict op = out.data();
  const float* __restrict ap = a.data();
  const float* __restrict bp = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) op[i] = ap[i] + bp[i];
}

void sub(std::span<const float> a, std::span<const float> b, std::span<float> out) {
  LOWDIFF_ENSURE(a.size() == b.size() && a.size() == out.size(), "sub size mismatch");
  float* __restrict op = out.data();
  const float* __restrict ap = a.data();
  const float* __restrict bp = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) op[i] = ap[i] - bp[i];
}

double dot(std::span<const float> a, std::span<const float> b) {
  LOWDIFF_ENSURE(a.size() == b.size(), "dot size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

double squared_norm(std::span<const float> x) { return dot(x, x); }

float max_abs(std::span<const float> x) {
  float m = 0.0f;
  for (float v : x) m = std::max(m, std::fabs(v));
  return m;
}

void fill_normal(std::span<float> x, Xoshiro256& rng, float stddev) {
  for (auto& v : x) v = static_cast<float>(rng.normal()) * stddev;
}

void fill_uniform(std::span<float> x, Xoshiro256& rng, float lo, float hi) {
  const float width = hi - lo;
  for (auto& v : x) v = lo + rng.uniform_float() * width;
}

bool bit_equal(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size()) return false;
  if (a.empty()) return true;
  return std::memcmp(a.data(), b.data(), a.size_bytes()) == 0;
}

float max_abs_diff(std::span<const float> a, std::span<const float> b) {
  LOWDIFF_ENSURE(a.size() == b.size(), "max_abs_diff size mismatch");
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

}  // namespace lowdiff::ops
