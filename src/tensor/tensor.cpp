#include "tensor/tensor.h"

#include <sstream>

namespace lowdiff {

std::string shape_string(const Tensor& t) {
  std::ostringstream oss;
  oss << "[";
  const auto& shape = t.shape();
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << shape[i];
  }
  oss << "]";
  return oss.str();
}

}  // namespace lowdiff
