#pragma once

/// \file tensor.h
/// Dense float32 tensor with value semantics, backed by an aligned buffer.
///
/// The checkpointing system moves parameters, optimizer moments, and
/// gradients around as flat float arrays; shape metadata is carried for the
/// model zoo but all byte movement treats tensors as contiguous spans.

#include <cstddef>
#include <initializer_list>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/error.h"

namespace lowdiff {

class Tensor {
 public:
  Tensor() = default;

  /// Flat tensor of `size` elements, zero-initialized.
  explicit Tensor(std::size_t size) : Tensor(std::vector<std::size_t>{size}) {}

  /// Shaped tensor, zero-initialized.
  explicit Tensor(std::vector<std::size_t> shape)
      : shape_(std::move(shape)),
        buffer_(element_count(shape_) * sizeof(float)) {
    buffer_.fill(std::byte{0});
  }

  static Tensor from_values(std::initializer_list<float> values) {
    Tensor t(values.size());
    std::size_t i = 0;
    for (float v : values) t.data()[i++] = v;
    return t;
  }

  std::size_t size() const {
    return buffer_.size() / sizeof(float);
  }
  bool empty() const { return buffer_.empty(); }
  std::size_t byte_size() const { return buffer_.size(); }
  const std::vector<std::size_t>& shape() const { return shape_; }

  float* data() { return buffer_.as<float>(); }
  const float* data() const { return buffer_.as<float>(); }

  std::span<float> span() { return {data(), size()}; }
  std::span<const float> span() const { return {data(), size()}; }
  std::span<const float> cspan() const { return {data(), size()}; }

  float& operator[](std::size_t i) { return data()[i]; }
  float operator[](std::size_t i) const { return data()[i]; }

  float& at(std::size_t i) {
    LOWDIFF_ENSURE(i < size(), "tensor index out of range");
    return data()[i];
  }
  float at(std::size_t i) const {
    LOWDIFF_ENSURE(i < size(), "tensor index out of range");
    return data()[i];
  }

  void zero() { buffer_.fill(std::byte{0}); }

  /// Raw byte view, used by serialization and throttled transfers.
  std::span<const std::byte> bytes() const { return {buffer_.data(), buffer_.size()}; }
  std::span<std::byte> bytes() { return {buffer_.data(), buffer_.size()}; }

 private:
  static std::size_t element_count(const std::vector<std::size_t>& shape) {
    return std::accumulate(shape.begin(), shape.end(), std::size_t{1},
                           [](std::size_t a, std::size_t b) { return a * b; });
  }

  std::vector<std::size_t> shape_;
  AlignedBuffer buffer_;
};

/// "[a, b, c]" shape description for diagnostics.
std::string shape_string(const Tensor& t);

}  // namespace lowdiff
