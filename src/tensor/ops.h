#pragma once

/// \file ops.h
/// Elementwise kernels over float spans.  These are the hot loops of the
/// optimizer, the CPU-side batched gradient accumulation (paper §4.2), and
/// the differential merges of the recovery path, so they are written as
/// simple auto-vectorizable loops over restrict-free spans.

#include <cstddef>
#include <span>

#include "common/rng.h"

namespace lowdiff::ops {

/// y += alpha * x  (sizes must match).
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// y = x (sizes must match).
void copy(std::span<const float> x, std::span<float> y);

/// x *= alpha.
void scale(std::span<float> x, float alpha);

/// out = a + b (sizes must match).
void add(std::span<const float> a, std::span<const float> b, std::span<float> out);

/// out = a - b (sizes must match).
void sub(std::span<const float> a, std::span<const float> b, std::span<float> out);

/// Dot product.
double dot(std::span<const float> a, std::span<const float> b);

/// Squared L2 norm.
double squared_norm(std::span<const float> x);

/// Largest absolute element (0 for empty spans).
float max_abs(std::span<const float> x);

/// Fills with N(0, stddev) samples from the given engine.
void fill_normal(std::span<float> x, Xoshiro256& rng, float stddev);

/// Fills with U[lo, hi) samples.
void fill_uniform(std::span<float> x, Xoshiro256& rng, float lo, float hi);

/// True if a and b are elementwise bit-identical.
bool bit_equal(std::span<const float> a, std::span<const float> b);

/// Maximum absolute elementwise difference.
float max_abs_diff(std::span<const float> a, std::span<const float> b);

}  // namespace lowdiff::ops
