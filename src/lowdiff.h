#pragma once

/// \file lowdiff.h
/// Umbrella header: the public API of the LowDiff library.
///
/// Layering (bottom-up):
///   common/   — error handling, RNG, CRC, thread pool, buffers
///   tensor/   — dense fp32 tensors and elementwise kernels
///   model/    — model specs, the paper's model zoo, states, MLP, datasets
///   optim/    — Adam / SGD with slice-wise (layer-wise) application
///   compress/ — top-k / random-k / quant8 gradient compression + merging
///   queue/    — the zero-copy Reusing Queue
///   storage/  — backends, CRC-framed serialization, async persistence
///   comm/     — in-process collectives + network cost models
///   sim/      — cluster-scale analytic timelines and failure injection
///   core/     — checkpoint store, strategies (LowDiff, LowDiff+, and the
///               baselines), recovery engines, Eq. (3)/(5) config tuning,
///               and the live training engine
///   tier/     — tiered placement, k-way replication across failure
///               domains, tier-aware recovery, cold-full demotion

#include "common/error.h"
#include "common/logging.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/units.h"

#include "tensor/ops.h"
#include "tensor/tensor.h"

#include "model/dataset.h"
#include "model/grad_gen.h"
#include "model/mlp.h"
#include "model/model_state.h"
#include "model/zoo.h"

#include "optim/adam.h"
#include "optim/sgd.h"

#include "compress/compressor.h"
#include "compress/dense.h"
#include "compress/error_feedback.h"
#include "compress/merge.h"
#include "compress/quant8.h"
#include "compress/randomk.h"
#include "compress/topk.h"

#include "queue/reusing_queue.h"

#include "storage/async_writer.h"
#include "storage/atomic_commit.h"
#include "storage/bandwidth.h"
#include "storage/fault_injection.h"
#include "storage/file_storage.h"
#include "storage/mem_storage.h"
#include "storage/serializer.h"
#include "storage/stacking.h"
#include "storage/throttled.h"

#include "comm/comm_group.h"
#include "comm/network_model.h"

#include "sim/cluster.h"
#include "sim/failure.h"
#include "sim/run_sim.h"
#include "sim/strategy_model.h"
#include "sim/workload.h"

#include "core/checkpoint_store.h"
#include "core/config_optimizer.h"
#include "core/recovery.h"
#include "core/strategies.h"
#include "core/trainer.h"

#include "tier/demoter.h"
#include "tier/placement.h"
#include "tier/replicator.h"
#include "tier/tier_recovery.h"
#include "tier/topology.h"
