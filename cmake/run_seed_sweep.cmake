# Script-mode runner (cmake -P): rerun one randomized test binary over a
# range of fixed seed universes.  Each universe exports
# LOWDIFF_TEST_SEED=<s>; the suites route every base seed through
# tests/support/kill_points.h sweep_seed(), so universe 0 is bit-for-bit
# the normal tier-1 run and universes 1..N are decorrelated remixes.
# Registered as the `seed_sweep_*` ctest entries (`ctest -L seeds`).
#
# Required -D arguments: TEST_BIN (absolute path to the gtest binary),
# SEED_COUNT (number of universes, seeds 1..SEED_COUNT).
# Optional: GTEST_FILTER (forwarded as --gtest_filter).

if(NOT TEST_BIN OR NOT SEED_COUNT)
  message(FATAL_ERROR
      "run_seed_sweep.cmake needs -DTEST_BIN= and -DSEED_COUNT=")
endif()

get_filename_component(bin_name ${TEST_BIN} NAME)
set(run_args --gtest_brief=1)
if(GTEST_FILTER)
  list(APPEND run_args --gtest_filter=${GTEST_FILTER})
endif()

foreach(seed RANGE 1 ${SEED_COUNT})
  message(STATUS "[seeds:${bin_name}] universe ${seed}/${SEED_COUNT}")
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env LOWDIFF_TEST_SEED=${seed}
            ${TEST_BIN} ${run_args}
    RESULT_VARIABLE run_rc)
  if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR
        "[seeds:${bin_name}] FAILED in universe LOWDIFF_TEST_SEED=${seed} "
        "(rc=${run_rc}).  Reproduce with:\n"
        "  LOWDIFF_TEST_SEED=${seed} ${TEST_BIN} ${run_args}")
  endif()
endforeach()

message(STATUS "[seeds:${bin_name}] all ${SEED_COUNT} universes green")
