# Script-mode runner (cmake -P): configure a sub-build of this project with
# AddressSanitizer enabled, build only the crash/recovery harness, and run
# it.  Registered as the `asan_crash_harness` ctest entry by the top-level
# CMakeLists (only in non-sanitized builds, so it cannot recurse).
#
# Required -D arguments: SOURCE_DIR, BUILD_DIR.

if(NOT SOURCE_DIR OR NOT BUILD_DIR)
  message(FATAL_ERROR "run_asan_harness.cmake needs -DSOURCE_DIR= and -DBUILD_DIR=")
endif()

message(STATUS "[asan-harness] configuring sanitized sub-build in ${BUILD_DIR}")
execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BUILD_DIR}
          -DLOWDIFF_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
  RESULT_VARIABLE configure_rc)
if(NOT configure_rc EQUAL 0)
  message(FATAL_ERROR "[asan-harness] configure failed (${configure_rc})")
endif()

cmake_host_system_information(RESULT ncores QUERY NUMBER_OF_LOGICAL_CORES)
message(STATUS "[asan-harness] building test_fault_tolerance (-j ${ncores})")
execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BUILD_DIR} --target test_fault_tolerance
          -j ${ncores}
  RESULT_VARIABLE build_rc)
if(NOT build_rc EQUAL 0)
  message(FATAL_ERROR "[asan-harness] build failed (${build_rc})")
endif()

message(STATUS "[asan-harness] running crash harness under AddressSanitizer")
execute_process(
  COMMAND ${BUILD_DIR}/tests/test_fault_tolerance
  RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "[asan-harness] harness failed under ASan (${run_rc})")
endif()
