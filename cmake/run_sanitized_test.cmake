# Script-mode runner (cmake -P): configure a sub-build of this project with
# the requested sanitizer enabled, build one test target, and run it.
# Registered as the `asan_crash_harness` and `tsan_queue_stress` ctest
# entries by the top-level CMakeLists (only in non-sanitized builds, so it
# cannot recurse).
#
# Required -D arguments: SOURCE_DIR, BUILD_DIR, SANITIZER (address|thread|
# undefined), TEST_TARGET.
# Optional: GTEST_FILTER (forwarded as --gtest_filter).

if(NOT SOURCE_DIR OR NOT BUILD_DIR OR NOT SANITIZER OR NOT TEST_TARGET)
  message(FATAL_ERROR
      "run_sanitized_test.cmake needs -DSOURCE_DIR=, -DBUILD_DIR=, "
      "-DSANITIZER=, and -DTEST_TARGET=")
endif()

set(tag "[${SANITIZER}:${TEST_TARGET}]")

message(STATUS "${tag} configuring sanitized sub-build in ${BUILD_DIR}")
execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BUILD_DIR}
          -DLOWDIFF_SANITIZE=${SANITIZER} -DCMAKE_BUILD_TYPE=RelWithDebInfo
  RESULT_VARIABLE configure_rc)
if(NOT configure_rc EQUAL 0)
  message(FATAL_ERROR "${tag} configure failed (${configure_rc})")
endif()

cmake_host_system_information(RESULT ncores QUERY NUMBER_OF_LOGICAL_CORES)
message(STATUS "${tag} building ${TEST_TARGET} (-j ${ncores})")
execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BUILD_DIR} --target ${TEST_TARGET}
          -j ${ncores}
  RESULT_VARIABLE build_rc)
if(NOT build_rc EQUAL 0)
  message(FATAL_ERROR "${tag} build failed (${build_rc})")
endif()

set(run_args)
if(GTEST_FILTER)
  list(APPEND run_args --gtest_filter=${GTEST_FILTER})
endif()

message(STATUS "${tag} running under ${SANITIZER} sanitizer")
execute_process(
  COMMAND ${BUILD_DIR}/tests/${TEST_TARGET} ${run_args}
  RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "${tag} failed under ${SANITIZER} (${run_rc})")
endif()
