/// \file cluster_simulation.cpp
/// Cluster-scale what-if tool: simulates training one of the paper's
/// workloads on a configurable GPU cluster under failure injection and
/// reports, per checkpointing strategy, the steady-state overhead, the
/// sustainable checkpoint frequency, wasted time, and the effective
/// training-time ratio.
///
/// Usage: cluster_simulation [model] [num_gpus] [mtbf_hours] [rho]
///   e.g.: cluster_simulation GPT2-L 32 0.5 0.01

#include <cstdio>
#include <cstdlib>
#include <string>

#include "lowdiff.h"

using namespace lowdiff;
using namespace lowdiff::sim;

int main(int argc, char** argv) {
  const std::string model = argc > 1 ? argv[1] : "GPT2-L";
  const std::size_t num_gpus =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 8;
  const double mtbf_h = argc > 3 ? std::atof(argv[3]) : 1.0;
  const double rho = argc > 4 ? std::atof(argv[4]) : 0.01;

  ClusterSpec cluster;
  cluster.num_gpus = num_gpus;
  const auto w = Workload::for_model(model, cluster.gpu, rho);
  const auto w_dense = Workload::for_model(model, cluster.gpu, 0.0);

  StrategyTimeline probe(cluster, w, {StrategyKind::kNone, 1});
  const double iter0 = probe.baseline_iteration_time();

  std::printf("cluster: %zu x %s, %s over %zu servers, MTBF %.2f h\n",
              num_gpus, cluster.gpu.name.c_str(), model.c_str(),
              cluster.servers(), mtbf_h);
  std::printf("workload: %llu params, rho=%.3g, baseline iteration %.0f ms\n\n",
              static_cast<unsigned long long>(w.params), rho, iter0 * 1e3);

  // Tuned LowDiff configuration (Eq. 5).
  WastedTimeParams params;
  params.num_gpus = num_gpus;
  params.mtbf_sec = mtbf_h * 3600.0;
  params.full_ckpt_bytes =
      static_cast<double>(w.full_ckpt_bytes()) / static_cast<double>(num_gpus);
  params.write_bw = cluster.storage.bytes_per_sec /
                    static_cast<double>(cluster.gpus_per_server);
  params.total_train_sec = 24 * 3600.0;
  params.load_full_sec = static_cast<double>(w.full_ckpt_bytes()) /
                         cluster.storage_read_bytes_per_sec;
  params.merge_diff_sec = 0.15 * iter0;
  const auto tuned = to_iteration_config(params, iter0);
  std::printf("Eq.(5) tuned LowDiff config: full checkpoint every %llu "
              "iterations, batch size %llu\n\n",
              static_cast<unsigned long long>(tuned.full_interval),
              static_cast<unsigned long long>(tuned.batch_size));

  std::printf("%-11s %10s %12s %12s %12s %10s\n", "strategy", "overhead",
              "max_freq", "recovery_s", "wasted_h", "eff_ratio");

  FailureRunConfig run;
  run.train_work_sec = 12 * 3600.0;
  run.mtbf_sec = mtbf_h * 3600.0;
  run.seed = 1;

  auto report = [&](const char* name, StrategyConfig cfg, const Workload& wl) {
    StrategyTimeline t(cluster, wl, cfg);
    const auto stats = t.run(500);
    const double overhead = stats.avg_iteration_time() /
                                StrategyTimeline(cluster, wl, {StrategyKind::kNone, 1})
                                    .baseline_iteration_time() -
                            1.0;
    StrategyConfig probe_cfg = cfg;
    const auto freq = max_checkpoint_frequency(cluster, wl, probe_cfg);
    const auto result = run_with_failures(cluster, wl, cfg, run);
    std::printf("%-11s %9.1f%% %12llu %12.2f %12.2f %9.1f%%\n", name,
                overhead * 100.0, static_cast<unsigned long long>(freq),
                t.recovery_time(), result.wasted_time / 3600.0,
                result.effective_ratio * 100.0);
  };

  StrategyConfig lowdiff{StrategyKind::kLowDiff, 1, tuned.full_interval,
                         tuned.batch_size};
  report("LowDiff", lowdiff, w);
  report("LowDiff+", {StrategyKind::kLowDiffPlus, 1}, w_dense);
  report("Gemini", {StrategyKind::kGemini, 1, 1}, w);
  report("NaiveDC", {StrategyKind::kNaiveDC, 1, 20}, w);
  report("CheckFreq", {StrategyKind::kCheckFreq, 10, 10}, w);
  report("PCcheck", {StrategyKind::kPCcheck, 10, 10}, w);
  report("TorchSave", {StrategyKind::kTorchSave, 25, 25}, w);

  std::printf("\noverhead: steady-state slowdown at the configured frequency\n"
              "max_freq: smallest checkpoint interval within a 3.5%% bound\n"
              "recovery_s: worst-case load+replay+redo after one failure\n");
  return 0;
}
