/// \file tuning_advisor.cpp
/// Interactive-style advisor around the Optimal Configuration module
/// (paper §4.3): given cluster parameters it prints the Eq. (5) optimum,
/// a sensitivity sweep over MTBF and storage bandwidth, and demonstrates
/// the runtime tuner adapting as observations drift.
///
/// Usage: tuning_advisor [model] [mtbf_hours] [write_bw_GBps]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "lowdiff.h"

using namespace lowdiff;
using namespace lowdiff::sim;

int main(int argc, char** argv) {
  const std::string model = argc > 1 ? argv[1] : "GPT2-S";
  const double mtbf_h = argc > 2 ? std::atof(argv[2]) : 1.0;
  const double write_gbps = argc > 3 ? std::atof(argv[3]) : 0.55;

  ClusterSpec cluster;
  const auto w = Workload::for_model(model, cluster.gpu, 0.01);
  StrategyTimeline probe(cluster, w, {StrategyKind::kNone, 1});
  const double iter0 = probe.baseline_iteration_time();

  WastedTimeParams p;
  p.num_gpus = cluster.num_gpus;
  p.mtbf_sec = mtbf_h * 3600.0;
  p.write_bw = write_gbps * 1e9;
  p.full_ckpt_bytes = static_cast<double>(w.full_ckpt_bytes()) /
                      static_cast<double>(cluster.num_gpus);
  p.total_train_sec = 24 * 3600.0;
  p.load_full_sec = static_cast<double>(w.full_ckpt_bytes()) /
                    cluster.storage_read_bytes_per_sec;
  p.merge_diff_sec = 0.15 * iter0;

  const auto [f_star, b_star] = optimal_config(p);
  const auto cfg = to_iteration_config(p, iter0);
  std::printf("model %s: iteration %.0f ms, sharded full checkpoint %.0f MB\n",
              model.c_str(), iter0 * 1e3, p.full_ckpt_bytes / 1e6);
  std::printf("\nEq.(5) optimum for MTBF %.2f h, write bw %.2f GB/s:\n",
              mtbf_h, write_gbps);
  std::printf("  f* = %.5f full checkpoints/s  ->  every %llu iterations\n",
              f_star, static_cast<unsigned long long>(cfg.full_interval));
  std::printf("  b* = %.3f s of gradients/batch ->  batch size %llu\n", b_star,
              static_cast<unsigned long long>(cfg.batch_size));
  std::printf("  modeled wasted time over 24 h: %.1f GPU-minutes\n",
              wasted_time_model(p, f_star, b_star) / 60.0);

  std::printf("\nsensitivity: tuned (FCF interval, BS) as conditions change\n");
  std::printf("%-14s", "MTBF \\ bw");
  for (double bw : {0.25, 0.55, 1.0, 2.0}) std::printf("  %8.2fGB/s", bw);
  std::printf("\n");
  for (double m : {0.1, 0.5, 1.0, 4.0, 24.0}) {
    std::printf("%10.1f h  ", m);
    for (double bw : {0.25, 0.55, 1.0, 2.0}) {
      auto q = p;
      q.mtbf_sec = m * 3600.0;
      q.write_bw = bw * 1e9;
      const auto c = to_iteration_config(q, iter0);
      std::printf("  %5llu/%-5llu",
                  static_cast<unsigned long long>(c.full_interval),
                  static_cast<unsigned long long>(c.batch_size));
    }
    std::printf("\n");
  }

  std::printf("\nruntime tuner: failures suddenly 10x more frequent...\n");
  ConfigTuner tuner(p, iter0);
  const auto before = tuner.recommend();
  for (int i = 0; i < 20; ++i) tuner.observe_mtbf(p.mtbf_sec / 10.0);
  const auto after = tuner.recommend();
  std::printf("  before: full every %llu iters, batch %llu\n",
              static_cast<unsigned long long>(before.full_interval),
              static_cast<unsigned long long>(before.batch_size));
  std::printf("  after:  full every %llu iters, batch %llu\n",
              static_cast<unsigned long long>(after.full_interval),
              static_cast<unsigned long long>(after.batch_size));
  return 0;
}
