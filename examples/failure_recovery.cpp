/// \file failure_recovery.cpp
/// Failure-mode walkthrough for LowDiff and LowDiff+ (paper §5.3):
///   - software failure with LowDiff+: the training process dies but the
///     checkpointing process's CPU-resident replica survives → instant
///     in-memory recovery;
///   - hardware failure: all volatile state is lost → recover from the
///     persisted checkpoints on storage;
///   - corrupted checkpoint: CRC framing rejects a torn write instead of
///     silently resuming from garbage;
///   - LowDiff crash mid-batch: only the unbatched tail of differentials
///     is lost (the b/2 term of the wasted-time model).

#include <cstdio>

#include "lowdiff.h"

using namespace lowdiff;

namespace {

MlpConfig mlp_config() {
  MlpConfig mlp;
  mlp.input_dim = 10;
  mlp.hidden = {24};
  mlp.num_classes = 3;
  return mlp;
}

TrainerConfig dense_config() {
  TrainerConfig cfg;
  cfg.world = 2;
  cfg.rho = 0.0;  // LowDiff+ operates without gradient compression
  cfg.seed = 21;
  return cfg;
}

}  // namespace

int main() {
  std::printf("== LowDiff+ software failure: recover from the CPU replica ==\n");
  {
    auto backend = std::make_shared<MemStorage>();
    auto store = std::make_shared<CheckpointStore>(backend);

    auto cfg = dense_config();
    Trainer trainer(mlp_config(), cfg);
    ModelState init(trainer.spec());
    init.init_random(cfg.seed);

    LowDiffPlusStrategy::Options options;
    options.persist_interval = 8;
    LowDiffPlusStrategy strategy(store, init, std::make_unique<Adam>(cfg.adam),
                                 options);

    trainer.run(0, 20, nullptr, &strategy);  // layer-wise gradient streaming

    // The training process "dies"; the checkpointing process still holds
    // the replica, updated through iteration 19.
    const ModelState replica = strategy.replica_snapshot(19);
    std::printf("replica == lost GPU state: %s (zero iterations lost)\n",
                replica.bit_equal(trainer.state(0)) ? "YES" : "no (bug!)");

    std::printf("\n== LowDiff+ hardware failure: replica lost, storage "
                "survives ==\n");
    strategy.flush();
    const auto persisted = store->latest_full();
    std::printf("last persisted replica: iteration %llu -> lose %llu "
                "iterations of work\n",
                static_cast<unsigned long long>(*persisted),
                static_cast<unsigned long long>(19 - *persisted));
    const ModelState from_disk = store->read_full(*persisted, trainer.spec());
    std::printf("persisted checkpoint loads cleanly, step=%llu\n",
                static_cast<unsigned long long>(from_disk.step()));
  }

  std::printf("\n== LowDiff crash mid-batch: bounded loss of buffered "
              "differentials ==\n");
  {
    auto backend = std::make_shared<MemStorage>();
    auto store = std::make_shared<CheckpointStore>(backend);
    TrainerConfig cfg;
    cfg.world = 2;
    cfg.rho = 0.05;
    cfg.seed = 3;

    Trainer trainer(mlp_config(), cfg);
    {
      LowDiffStrategy::Options options;
      options.batch_size = 4;
      options.full_interval = 8;
      LowDiffStrategy strategy(store, options);
      trainer.run(0, 19, &strategy);
      // Destructor without flush(): the partial batch (up to BS-1
      // differentials) is dropped, exactly like a crash.
    }
    Adam adam(cfg.adam);
    TopKCompressor comp(cfg.rho);
    RecoveryEngine engine(trainer.spec(), adam.clone(), comp.clone());
    RecoveryReport report;
    const auto recovered = engine.recover_serial(*store, &report);
    std::printf("trained through iteration 18; recovered to iteration %llu "
                "(lost %llu <= batch size 4)\n",
                static_cast<unsigned long long>(report.final_iteration),
                static_cast<unsigned long long>(18 - report.final_iteration));
    (void)recovered;
  }

  std::printf("\n== corrupted checkpoint: CRC rejects a torn write ==\n");
  {
    auto backend = std::make_shared<MemStorage>();
    auto store = std::make_shared<CheckpointStore>(backend);
    TrainerConfig cfg;
    cfg.world = 1;
    cfg.rho = 0.05;
    Trainer trainer(mlp_config(), cfg);
    TorchSaveStrategy strategy(store, 5);
    trainer.run(0, 10, &strategy);

    const auto key = CheckpointStore::full_key(*store->latest_full());
    auto bytes = *backend->read(key);
    bytes[bytes.size() / 3] ^= std::byte{0x10};  // flip one bit
    backend->write(key, bytes);

    try {
      store->read_full(*store->latest_full(), trainer.spec());
      std::printf("ERROR: corruption was not detected!\n");
      return 1;
    } catch (const Error& e) {
      std::printf("corruption detected as expected: %s\n", e.what());
    }
  }
  std::printf("\nall failure scenarios behaved as designed.\n");
  return 0;
}
