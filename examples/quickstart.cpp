/// \file quickstart.cpp
/// Five-minute tour of LowDiff:
///   1. train a small model data-parallel with top-k compressed gradients,
///      checkpointing every iteration by *reusing* the synchronized
///      compressed gradient as a differential checkpoint;
///   2. "crash";
///   3. recover — bit-exactly — from full + differential checkpoints;
///   4. resume training and confirm the trajectory is unchanged.

#include <cstdio>

#include "lowdiff.h"

using namespace lowdiff;

int main() {
  // A real (autodiff) MLP stands in for the DNN; the checkpointing stack
  // only sees parameter/gradient bytes, so the mechanics are identical.
  MlpConfig mlp;
  mlp.input_dim = 12;
  mlp.hidden = {32, 24};
  mlp.num_classes = 4;

  TrainerConfig cfg;
  cfg.world = 2;     // two data-parallel workers (threads)
  cfg.rho = 0.05;    // top-k sparsification ratio
  cfg.seed = 7;

  // Checkpoints land in an in-memory store here; FileStorage works the
  // same way for on-disk checkpoints.
  auto backend = std::make_shared<MemStorage>();
  auto store = std::make_shared<CheckpointStore>(backend);

  LowDiffStrategy::Options options;
  options.batch_size = 3;      // batched gradient writes (Fig. 4)
  options.full_interval = 10;  // full checkpoint every 10 iterations

  std::printf("== phase 1: train 25 iterations with per-iteration LowDiff "
              "checkpoints ==\n");
  Trainer trainer(mlp, cfg);
  {
    LowDiffStrategy strategy(store, options);
    const auto result = trainer.run(0, 25, &strategy);
    strategy.flush();
    std::printf("loss %.4f -> %.4f, ckpt stall %.1f ms total\n",
                result.losses.front(), result.losses.back(),
                result.stall_seconds * 1e3);
  }
  const ModelState& live = trainer.state(0);
  std::printf("store now holds: latest full @ iter %llu, %zu differentials "
              "after it\n",
              static_cast<unsigned long long>(*store->latest_full()),
              store->diffs_after(*store->latest_full()).size());

  std::printf("\n== phase 2: crash, then recover from storage ==\n");
  Adam adam(cfg.adam);
  TopKCompressor compressor(cfg.rho);
  RecoveryEngine engine(trainer.spec(), adam.clone(), compressor.clone());
  ThreadPool pool(4);
  RecoveryReport report;
  const ModelState recovered = engine.recover_parallel(*store, pool, &report);
  std::printf("recovered to iteration %llu (replayed %llu differentials)\n",
              static_cast<unsigned long long>(report.final_iteration),
              static_cast<unsigned long long>(report.diffs_replayed));
  std::printf("bit-exact vs pre-crash state: %s\n",
              recovered.bit_equal(live) ? "YES" : "no (bug!)");

  std::printf("\n== phase 3: resume and compare with an uninterrupted run ==\n");
  Trainer resumed(mlp, cfg);
  resumed.set_state(recovered);
  resumed.run(25, 15, nullptr);

  Trainer reference(mlp, cfg);
  reference.run(0, 40, nullptr);
  std::printf("resumed == uninterrupted after 40 iterations: %s\n",
              resumed.state(0).bit_equal(reference.state(0)) ? "YES"
                                                             : "no (bug!)");
  std::printf("final eval accuracy: %.1f%%\n", resumed.eval_accuracy() * 100.0);
  return 0;
}
