/// \file test_tier.cpp
/// Tiered placement & replication (DESIGN.md §5): placement grammar and
/// round-robin planning, quorum durability through the Replicator, the
/// failure-domain acceptance scenarios (k=2 survives any single server
/// loss bit-exactly; the paper's 1@local baseline loses the origin's
/// chain), bandwidth-optimal source selection, CRC cross-tier fallback,
/// and the peer-memory Demoter.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "compress/topk.h"
#include "core/checkpoint_store.h"
#include "core/recovery.h"
#include "obs/metrics.h"
#include "optim/adam.h"
#include "sim/cluster.h"
#include "sim/failure.h"
#include "tensor/ops.h"
#include "tier/demoter.h"
#include "tier/placement.h"
#include "tier/replicator.h"
#include "tier/tier_recovery.h"
#include "tier/topology.h"

namespace lowdiff {
namespace {

using tier::PlacementPolicy;
using tier::Replicator;
using tier::TierAwareRecoveryEngine;
using tier::TierTopology;

sim::ClusterSpec cluster_of(std::size_t servers) {
  sim::ClusterSpec cluster;
  cluster.num_gpus = servers * cluster.gpus_per_server;
  return cluster;
}

/// Paper-testbed topology with throttling compressed to negligible wall
/// time — link *accounting* still runs, tests just don't sleep for it.
std::shared_ptr<TierTopology> topo_of(std::size_t servers) {
  tier::TierSimOptions opts;
  opts.time_scale = 1e-7;
  return TierTopology::for_cluster(cluster_of(servers), opts);
}

std::shared_ptr<Replicator> replicator_of(std::shared_ptr<TierTopology> topo,
                                          const std::string& policy,
                                          std::size_t origin = 0) {
  tier::ReplicatorOptions opts;
  opts.origin_server = origin;
  return std::make_shared<Replicator>(std::move(topo),
                                      PlacementPolicy::parse(policy), opts);
}

ModelSpec spec_of(std::size_t n) {
  ModelSpec spec;
  spec.name = "flat";
  spec.layers = {{"w", {n}}};
  return spec;
}

/// Same gradient-reuse loop as test_recovery.cpp: each synchronized
/// compressed gradient steps the optimizer and lands in the store as a
/// differential.  Returns the final training state.
ModelState train_with_reuse(CheckpointStore& store, const ModelSpec& spec,
                            const Optimizer& opt, const Compressor& comp,
                            std::uint64_t full_at, std::uint64_t iters,
                            std::uint64_t seed) {
  ModelState state(spec);
  state.init_random(seed);
  Tensor grad(spec.param_count());
  Tensor dense(spec.param_count());
  Xoshiro256 rng(seed * 31 + 1);
  for (std::uint64_t t = 0; t < iters; ++t) {
    ops::fill_normal(grad.span(), rng, 0.5f);
    const auto payload = comp.compress(grad.cspan(), t);
    comp.decompress(payload, dense.span());
    opt.step(state, dense.cspan());
    if (t == full_at) {
      store.put_full(t, state);
    } else if (t > full_at) {
      store.put_diff(payload);
    }
  }
  return state;
}

std::uint64_t counter(const std::string& name) {
  return obs::Registry::global().counter(name).value();
}

// --- placement grammar -------------------------------------------------------

TEST(Placement, ParseRoundTripsAndResolvesQuorum) {
  const auto p = PlacementPolicy::parse("2@local,peer");
  EXPECT_EQ(p.replicas(), 2u);
  ASSERT_EQ(p.spec().preference.size(), 2u);
  EXPECT_EQ(p.spec().preference[0], tier::TierKind::kLocalSsd);
  EXPECT_EQ(p.spec().preference[1], tier::TierKind::kPeerMemory);
  EXPECT_EQ(p.quorum(), 2u);  // majority of 2
  EXPECT_EQ(p.to_string(), "2@local,peer");

  const auto q = PlacementPolicy::parse("3@local,peer,remote/q2");
  EXPECT_EQ(q.replicas(), 3u);
  EXPECT_EQ(q.quorum(), 2u);  // pinned
  EXPECT_EQ(q.to_string(), "3@local,peer,remote/q2");

  EXPECT_EQ(PlacementPolicy::parse("3@local").quorum(), 2u);  // majority of 3
  EXPECT_EQ(PlacementPolicy::parse("1@local").quorum(), 1u);
}

TEST(Placement, ParseRejectsMalformedPolicies) {
  EXPECT_THROW(PlacementPolicy::parse("local"), Error);        // no k@
  EXPECT_THROW(PlacementPolicy::parse("0@local"), Error);      // k == 0
  EXPECT_THROW(PlacementPolicy::parse("2@"), Error);           // empty tier
  EXPECT_THROW(PlacementPolicy::parse("2@disk"), Error);       // unknown tier
  EXPECT_THROW(PlacementPolicy::parse("2@local/q0"), Error);   // quorum == 0
  EXPECT_THROW(PlacementPolicy::parse("2@local/q3"), Error);   // quorum > k
}

TEST(Placement, PlanRoundRobinsAcrossListedTierKinds) {
  auto topo = topo_of(4);

  // One replica per listed kind per round: origin SSD *plus* a peer's RAM.
  auto mixed = PlacementPolicy::parse("2@local,peer").plan(*topo, 0);
  ASSERT_EQ(mixed.targets.size(), 2u);
  EXPECT_EQ(mixed.targets[0]->name, "ssd.s0");
  EXPECT_EQ(mixed.targets[1]->name, "mem.s1");  // peer ring starts at origin+1
  EXPECT_FALSE(mixed.degraded);

  // A single listed kind spreads over distinct servers of that kind.
  auto local = PlacementPolicy::parse("2@local").plan(*topo, 2);
  ASSERT_EQ(local.targets.size(), 2u);
  EXPECT_EQ(local.targets[0]->name, "ssd.s2");  // origin's own SSD first
  EXPECT_EQ(local.targets[1]->name, "ssd.s3");  // then ring order

  auto three = PlacementPolicy::parse("3@local,peer,remote").plan(*topo, 1);
  ASSERT_EQ(three.targets.size(), 3u);
  EXPECT_EQ(three.targets[0]->name, "ssd.s1");
  EXPECT_EQ(three.targets[1]->name, "mem.s2");
  EXPECT_EQ(three.targets[2]->name, "remote");

  // k beyond the listed kinds wraps for more of the same mix, still in
  // distinct failure domains.
  auto wrapped = PlacementPolicy::parse("4@local,peer").plan(*topo, 0);
  ASSERT_EQ(wrapped.targets.size(), 4u);
  EXPECT_EQ(wrapped.targets[0]->name, "ssd.s0");
  EXPECT_EQ(wrapped.targets[1]->name, "mem.s1");
  EXPECT_EQ(wrapped.targets[2]->name, "ssd.s2");  // domain 1 already used
  EXPECT_EQ(wrapped.targets[3]->name, "mem.s3");
}

TEST(Placement, PlanSkipsDeadDomainsAndReportsDegraded) {
  auto topo = topo_of(2);
  topo->fail_domain(1);

  // The surviving server can still take the primary; the peer replica has
  // nowhere distinct to go.
  auto plan = PlacementPolicy::parse("2@local,peer").plan(*topo, 0);
  ASSERT_EQ(plan.targets.size(), 1u);
  EXPECT_EQ(plan.targets[0]->name, "ssd.s0");
  EXPECT_TRUE(plan.degraded);

  topo->restore_domain(1);
  EXPECT_FALSE(PlacementPolicy::parse("2@local,peer").plan(*topo, 0).degraded);
}

// --- replication & durability ------------------------------------------------

TEST(Replication, SyncReachesFullReplicaCountAndQuorum) {
  auto topo = topo_of(4);
  auto replicas = replicator_of(topo, "2@local,peer");
  CheckpointStore store(replicas);

  ModelState state(spec_of(128));
  state.init_random(3);
  store.put_full(0, state);
  ASSERT_TRUE(replicas->sync().ok());

  const std::string key = "full/000000000000";
  EXPECT_EQ(replicas->committed_replicas(key), 2u);
  EXPECT_TRUE(replicas->durable(key));
  EXPECT_EQ(replicas->failed_replica_writes(), 0u);

  // Both the origin SSD and the peer's RAM hold the complete record
  // (data + commit marker) — each tier is a self-contained manifest.
  for (const char* name : {"ssd.s0", "mem.s1"}) {
    auto* target = topo->find(name);
    ASSERT_NE(target, nullptr) << name;
    EXPECT_TRUE(target->backend->exists(key)) << name;
    EXPECT_TRUE(target->backend->exists("commit/" + key)) << name;
  }
}

TEST(Replication, ListIsUnionOfSurvivingTiers) {
  auto topo = topo_of(2);
  auto replicas = replicator_of(topo, "1@local");
  ASSERT_TRUE(replicas->write("full/000000000000",
                              std::vector<std::byte>(16, std::byte{1}))
                  .ok());
  ASSERT_TRUE(replicas->sync().ok());

  auto keys = replicas->list();
  EXPECT_NE(std::find(keys.begin(), keys.end(), "full/000000000000"),
            keys.end());

  topo->fail_domain(0);
  EXPECT_TRUE(replicas->list().empty());  // only tier holding it is down
  EXPECT_FALSE(replicas->exists("full/000000000000"));
}

// --- acceptance (a): k=2 across servers survives any single server loss -----

TEST(TierRecovery, TwoReplicasSurviveAnySingleServerKillBitExactly) {
  const auto spec = spec_of(300);
  const auto cluster = cluster_of(4);
  for (std::size_t victim = 0; victim < cluster.servers(); ++victim) {
    auto topo = topo_of(4);
    auto replicas = replicator_of(topo, "2@local,peer");
    CheckpointStore store(replicas);
    Adam adam;
    TopKCompressor comp(0.1);
    const auto trained =
        train_with_reuse(store, spec, adam, comp, /*full_at=*/4, /*iters=*/24,
                         /*seed=*/victim + 5);
    ASSERT_TRUE(replicas->sync().ok());

    TierAwareRecoveryEngine engine(spec, adam.clone(), comp.clone());
    RecoveryReport report;
    const auto recovered = engine.recover_after_failures(replicas, {victim},
                                                         &report);
    EXPECT_TRUE(trained.bit_equal(recovered)) << "victim server " << victim;
    EXPECT_EQ(report.final_iteration, 23u) << "victim server " << victim;
    EXPECT_EQ(report.corrupt_diffs_skipped, 0u);
  }
}

// --- acceptance (b): the paper's 1@local baseline loses the origin's chain --

TEST(TierRecovery, LocalOnlyPlacementLosesOriginServersChain) {
  const auto spec = spec_of(200);
  auto topo = topo_of(4);
  auto replicas = replicator_of(topo, "1@local", /*origin=*/0);
  CheckpointStore store(replicas);
  Adam adam;
  TopKCompressor comp(0.1);
  const auto trained =
      train_with_reuse(store, spec, adam, comp, /*full_at=*/2, /*iters=*/20, 9);
  ASSERT_TRUE(replicas->sync().ok());

  TierAwareRecoveryEngine engine(spec, adam.clone(), comp.clone());

  // Control: losing a *different* server leaves the origin SSD intact.
  {
    RecoveryReport report;
    const auto recovered = engine.recover_after_failures(replicas, {1}, &report);
    EXPECT_TRUE(trained.bit_equal(recovered));
    topo->restore_domain(1);
  }

  // Losing the origin server takes the only replica of every record with
  // it — exactly the single-point-of-loss the tier subsystem closes.
  EXPECT_THROW(engine.recover_after_failures(replicas, {0}), Error);
}

// --- acceptance (c): reads come from the bandwidth-optimal surviving tier ---

TEST(TierRecovery, ReadsPreferFastestSurvivingTier) {
  const auto spec = spec_of(256);
  auto topo = topo_of(4);
  auto replicas = replicator_of(topo, "3@local,peer,remote");
  CheckpointStore store(replicas);
  Adam adam;
  TopKCompressor comp(0.1);
  const auto trained =
      train_with_reuse(store, spec, adam, comp, /*full_at=*/3, /*iters=*/18, 13);
  ASSERT_TRUE(replicas->sync().ok());

  TierAwareRecoveryEngine engine(spec, adam.clone(), comp.clone());

  // Healthy cluster: the origin SSD (3.2 GB/s read) outranks peer RAM and
  // the remote store (25 Gbps fabric each), so it serves everything.
  const auto ssd_before = counter("tier.ssd.s0.reads_total");
  const auto mem_before = counter("tier.mem.s1.reads_total");
  const auto remote_before = counter("tier.remote.reads_total");
  RecoveryReport healthy;
  const auto recovered = engine.recover(replicas, &healthy);
  EXPECT_TRUE(trained.bit_equal(recovered));
  EXPECT_GT(counter("tier.ssd.s0.reads_total"), ssd_before);
  EXPECT_EQ(counter("tier.mem.s1.reads_total"), mem_before);
  EXPECT_EQ(counter("tier.remote.reads_total"), remote_before);
  ASSERT_TRUE(healthy.read_sources.count("ssd.s0"));
  EXPECT_EQ(healthy.read_sources.count("remote"), 0u);

  // The per-source breakdown accounts for every byte the recovery read.
  std::uint64_t source_bytes = 0;
  for (const auto& [name, totals] : healthy.read_sources) {
    source_bytes += totals.bytes;
  }
  EXPECT_EQ(source_bytes, healthy.bytes_read);
  EXPECT_GT(healthy.bytes_read, 0u);

  // Kill the origin: the next-fastest surviving replica serves instead and
  // the result is still bit-exact.
  const auto ssd_mid = counter("tier.ssd.s0.reads_total");
  RecoveryReport failed;
  const auto after = engine.recover_after_failures(replicas, {0}, &failed);
  EXPECT_TRUE(trained.bit_equal(after));
  EXPECT_EQ(counter("tier.ssd.s0.reads_total"), ssd_mid);
  EXPECT_EQ(failed.read_sources.count("ssd.s0"), 0u);
  std::uint64_t surviving_bytes = 0;
  for (const auto& [name, totals] : failed.read_sources) {
    EXPECT_NE(name, "ssd.s0");
    surviving_bytes += totals.bytes;
  }
  EXPECT_EQ(surviving_bytes, failed.bytes_read);
}

// --- CRC cross-tier fallback -------------------------------------------------

TEST(TierRecovery, CorruptReplicaFallsBackAcrossTiersBitExactly) {
  const auto spec = spec_of(220);
  auto topo = topo_of(2);
  auto replicas = replicator_of(topo, "2@local,remote");
  CheckpointStore store(replicas);
  Adam adam;
  TopKCompressor comp(0.1);
  const auto trained =
      train_with_reuse(store, spec, adam, comp, /*full_at=*/2, /*iters=*/16, 17);
  ASSERT_TRUE(replicas->sync().ok());

  // Flip a byte of every data object on the fast tier, underneath the
  // fault injector (the scenario hook `base` exists for exactly this).
  auto* ssd = topo->find("ssd.s0");
  ASSERT_NE(ssd, nullptr);
  std::size_t corrupted = 0;
  for (const auto& key : ssd->base->list()) {
    if (key.rfind("commit/", 0) == 0) continue;
    auto data = ssd->base->read(key);
    ASSERT_TRUE(data.ok());
    auto bytes = std::move(data).value();
    ASSERT_FALSE(bytes.empty());
    bytes[bytes.size() / 2] ^= std::byte{0x40};
    ASSERT_TRUE(ssd->base->write(key, bytes).ok());
    ++corrupted;
  }
  ASSERT_GT(corrupted, 0u);

  const auto corrupt_before = counter("tier.ssd.s0.read_corrupt_total");
  TierAwareRecoveryEngine engine(spec, adam.clone(), comp.clone());
  RecoveryReport report;
  const auto recovered = engine.recover(replicas, &report);

  // Every record fell through to the remote replica: bit-exact, nothing
  // truncated, and the skips are visible in the tier metrics.
  EXPECT_TRUE(trained.bit_equal(recovered));
  EXPECT_EQ(report.corrupt_diffs_skipped, 0u);
  EXPECT_EQ(report.final_iteration, 15u);
  EXPECT_GE(counter("tier.ssd.s0.read_corrupt_total") - corrupt_before,
            corrupted);
  ASSERT_TRUE(report.read_sources.count("remote"));
  EXPECT_GT(report.read_sources.at("remote").reads, 0u);
}

// --- demoter -----------------------------------------------------------------

TEST(Demoter, MigratesOldestFullsFromPeerMemoryToSharedStore) {
  const auto spec = spec_of(512);
  auto topo = topo_of(2);
  auto replicas = replicator_of(topo, "1@peer", /*origin=*/0);
  CheckpointStore store(replicas);

  ModelState state(spec);
  state.init_random(21);
  for (std::uint64_t t = 0; t < 4; ++t) store.put_full(t * 10, state);
  ASSERT_TRUE(replicas->sync().ok());

  auto* peer = topo->find("mem.s1");
  ASSERT_NE(peer, nullptr);
  const auto resident_before = peer->base->resident_bytes();
  ASSERT_GT(resident_before, 0u);

  // Budget for roughly half the resident set: the two oldest fulls must
  // move, the newest must stay hot in peer memory.
  tier::Demoter::Options opts;
  opts.peer_capacity_bytes = resident_before / 2;
  tier::Demoter demoter(topo, opts);
  const auto pass = demoter.run_once();

  EXPECT_GE(pass.migrated, 1u);
  EXPECT_GT(pass.bytes, 0u);
  EXPECT_EQ(pass.over_budget, 0u);
  EXPECT_LE(peer->base->resident_bytes(), opts.peer_capacity_bytes);

  // Oldest full moved (committed on the shared store, gone from the peer);
  // newest full still lives in peer memory.
  auto* remote = topo->find("remote");
  ASSERT_NE(remote, nullptr);
  EXPECT_TRUE(remote->backend->exists("full/000000000000"));
  EXPECT_TRUE(remote->backend->exists("commit/full/000000000000"));
  EXPECT_FALSE(peer->backend->exists("full/000000000000"));
  EXPECT_TRUE(peer->backend->exists("full/000000000030"));

  // No instant of reduced durability: every full still has a committed
  // replica somewhere, and the union view still lists all four.
  for (std::uint64_t t = 0; t < 4; ++t) {
    char key[32];
    std::snprintf(key, sizeof(key), "full/%012llu",
                  static_cast<unsigned long long>(t * 10));
    EXPECT_GE(replicas->committed_replicas(key), 1u) << key;
  }
  EXPECT_EQ(store.fulls().size(), 4u);

  // A second pass over an in-budget tier is a no-op.
  const auto again = demoter.run_once();
  EXPECT_EQ(again.migrated, 0u);
  EXPECT_EQ(again.over_budget, 0u);
}

// --- failure sampling (sim/failure.h) ---------------------------------------

TEST(FailureSampling, ServerLossesAreDistinctBoundedAndDeterministic) {
  const auto a = sim::sample_server_losses(8, 3, 42);
  const auto b = sim::sample_server_losses(8, 3, 42);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  EXPECT_EQ(std::adjacent_find(a.begin(), a.end()), a.end());
  for (const auto s : a) EXPECT_LT(s, 8u);

  // Different seeds decorrelate; killing every server is the full set.
  EXPECT_NE(sim::sample_server_losses(8, 3, 43),
            sim::sample_server_losses(8, 3, 44));
  const auto all = sim::sample_server_losses(4, 4, 7);
  EXPECT_EQ(all, (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_THROW(sim::sample_server_losses(2, 3, 1), Error);
}

}  // namespace
}  // namespace lowdiff
