#include <gtest/gtest.h>

#include "core/trainer.h"
#include "storage/throttled.h"
#include "tensor/ops.h"

namespace lowdiff {
namespace {

MlpConfig small_mlp() {
  MlpConfig cfg;
  cfg.input_dim = 8;
  cfg.hidden = {24};
  cfg.num_classes = 4;
  return cfg;
}

TrainerConfig base_config(std::size_t world, double rho) {
  TrainerConfig cfg;
  cfg.world = world;
  cfg.batch_size = 32;
  cfg.rho = rho;
  cfg.adam.lr = 5e-3f;
  cfg.seed = 13;
  return cfg;
}

TEST(Trainer, LossDecreasesWithCompressedTraining) {
  Trainer trainer(small_mlp(), base_config(2, 0.05));
  const double before = trainer.eval_loss();
  trainer.run(0, 150, nullptr);
  const double after = trainer.eval_loss();
  EXPECT_LT(after, before * 0.8);
  EXPECT_GT(trainer.eval_accuracy(), 0.5);
}

TEST(Trainer, LossDecreasesWithDenseTraining) {
  Trainer trainer(small_mlp(), base_config(2, 0.0));
  const double before = trainer.eval_loss();
  trainer.run(0, 120, nullptr);
  EXPECT_LT(trainer.eval_loss(), before * 0.7);
}

class TrainerWorlds : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TrainerWorlds, AllRanksStayBitIdentical) {
  const std::size_t world = GetParam();
  Trainer trainer(small_mlp(), base_config(world, 0.05));
  trainer.run(0, 40, nullptr);
  for (std::size_t r = 1; r < world; ++r) {
    EXPECT_TRUE(trainer.state(r).bit_equal(trainer.state(0)))
        << "rank " << r << " diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(Worlds, TrainerWorlds, ::testing::Values(1, 2, 4));

TEST(Trainer, RunsAreDeterministic) {
  Trainer a(small_mlp(), base_config(2, 0.05));
  Trainer b(small_mlp(), base_config(2, 0.05));
  const auto ra = a.run(0, 30, nullptr);
  const auto rb = b.run(0, 30, nullptr);
  EXPECT_EQ(ra.losses, rb.losses);
  EXPECT_TRUE(a.state(0).bit_equal(b.state(0)));
}

TEST(Trainer, SplitRunEqualsSingleRun) {
  // Running 40 iterations in one call must equal 25 + 15 with the data
  // stream resuming at the right batch index.
  Trainer whole(small_mlp(), base_config(2, 0.05));
  whole.run(0, 40, nullptr);

  Trainer split(small_mlp(), base_config(2, 0.05));
  split.run(0, 25, nullptr);
  split.run(25, 15, nullptr);

  EXPECT_TRUE(whole.state(0).bit_equal(split.state(0)));
}

TEST(Trainer, ErrorFeedbackStillLearns) {
  auto cfg = base_config(2, 0.02);
  cfg.error_feedback = true;
  Trainer trainer(small_mlp(), cfg);
  const double before = trainer.eval_loss();
  trainer.run(0, 150, nullptr);
  EXPECT_LT(trainer.eval_loss(), before);
}

TEST(Trainer, SetStateRestoresAllRanks) {
  Trainer trainer(small_mlp(), base_config(3, 0.05));
  trainer.run(0, 10, nullptr);
  const auto snapshot = trainer.state(0).clone();
  trainer.run(10, 10, nullptr);
  EXPECT_FALSE(trainer.state(0).bit_equal(snapshot));
  trainer.set_state(snapshot);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_TRUE(trainer.state(r).bit_equal(snapshot));
  }
}

TEST(Trainer, LayerwiseRequiresDenseMode) {
  Trainer trainer(small_mlp(), base_config(1, 0.05));
  auto mem = std::make_shared<MemStorage>();
  auto store = std::make_shared<CheckpointStore>(mem);
  ModelState init(trainer.spec());
  init.init_random(base_config(1, 0.05).seed);
  LowDiffPlusStrategy strategy(store, init, std::make_unique<Adam>(), {});
  EXPECT_THROW(trainer.run(0, 1, nullptr, &strategy), Error);
}

}  // namespace
}  // namespace lowdiff

namespace lowdiff {
namespace {

TEST(Trainer, QuantizedAndRandomKModesLearn) {
  for (auto scheme : {GradCompression::kQuant8, GradCompression::kRandomK}) {
    auto cfg = base_config(2, 0.05);
    cfg.compression = scheme;
    Trainer trainer(small_mlp(), cfg);
    const double before = trainer.eval_loss();
    trainer.run(0, 120, nullptr);
    EXPECT_LT(trainer.eval_loss(), before)
        << "scheme " << static_cast<int>(scheme);
    for (std::size_t r = 1; r < 2; ++r) {
      EXPECT_TRUE(trainer.state(r).bit_equal(trainer.state(0)));
    }
  }
}

TEST(Trainer, ElasticResumeWithDifferentWorldSize) {
  // Recovery does not pin the cluster size: a state trained with world=2
  // can resume on world=4 (different data sharding, same model).
  Trainer original(small_mlp(), base_config(2, 0.05));
  original.run(0, 40, nullptr);
  const auto snapshot = original.state(0).clone();
  const double loss_at_crash = original.eval_loss();

  Trainer bigger(small_mlp(), base_config(4, 0.05));
  bigger.set_state(snapshot);
  bigger.run(40, 80, nullptr);
  EXPECT_LT(bigger.eval_loss(), loss_at_crash);
  for (std::size_t r = 1; r < 4; ++r) {
    EXPECT_TRUE(bigger.state(r).bit_equal(bigger.state(0)));
  }
}

TEST(Trainer, StallAccountingReflectsBlockingStrategy) {
  // A fully synchronous strategy on a slow link must show up as stall.
  auto mem = std::make_shared<MemStorage>();
  auto throttled = std::make_shared<ThrottledStorage>(
      mem, LinkSpec{5.0e6, 0.0}, /*time_scale=*/1.0);  // 5 MB/s, real sleeps
  auto store = std::make_shared<CheckpointStore>(throttled);
  TorchSaveStrategy strategy(store, 2);

  Trainer trainer(small_mlp(), base_config(1, 0.05));
  const auto result = trainer.run(0, 6, &strategy);
  // Three checkpoints of a ~6KB state at 5 MB/s ≈ 3+ ms of stall.
  EXPECT_GT(result.stall_seconds, 1e-3);

  Trainer unblocked(small_mlp(), base_config(1, 0.05));
  const auto baseline = unblocked.run(0, 6, nullptr);
  EXPECT_LT(baseline.stall_seconds, result.stall_seconds);
}

}  // namespace
}  // namespace lowdiff
