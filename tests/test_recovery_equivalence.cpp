// Equivalence suite: parallel recovery must reconstruct the same state as
// serial recovery for differential chains of every awkward length, with and
// without corruption truncating the replay prefix.  Three fixed seeds per
// case keep the randomized inputs deterministic.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "compress/topk.h"
#include "core/checkpoint_store.h"
#include "core/recovery.h"
#include "optim/adam.h"
#include "optim/sgd.h"
#include "storage/mem_storage.h"
#include "tensor/ops.h"

namespace lowdiff {
namespace {

constexpr std::uint64_t kSeeds[] = {5, 77, 901};
constexpr std::uint64_t kChainLengths[] = {1, 2, 3, 7, 16};
constexpr std::uint64_t kFullAt = 4;

ModelSpec spec_of(std::size_t n) {
  ModelSpec spec;
  spec.name = "flat";
  spec.layers = {{"w", {n}}};
  return spec;
}

/// Trains with gradient reuse: one full checkpoint at kFullAt, then
/// `n_diffs` reused compressed gradients.  Returns the final state.
ModelState train_chain(CheckpointStore& store, const ModelSpec& spec,
                       const Optimizer& opt, const Compressor& comp,
                       std::uint64_t n_diffs, std::uint64_t seed) {
  ModelState state(spec);
  state.init_random(seed);
  Tensor grad(spec.param_count());
  Tensor dense(spec.param_count());
  Xoshiro256 rng(seed * 131 + 7);
  const std::uint64_t iters = kFullAt + n_diffs + 1;
  for (std::uint64_t t = 0; t < iters; ++t) {
    ops::fill_normal(grad.span(), rng, 0.5f);
    const auto payload = comp.compress(grad.cspan(), t);
    comp.decompress(payload, dense.span());
    opt.step(state, dense.cspan());
    if (t == kFullAt) {
      store.put_full(t, state);
    } else if (t > kFullAt) {
      store.put_diff(payload);
    }
  }
  return state;
}

/// Flips one byte of the stored differential for `iter`, bypassing the
/// commit protocol — the marker still promises the original CRC, so reads
/// must detect the mismatch.
void corrupt_diff(MemStorage& mem, std::uint64_t iter) {
  const auto key = CheckpointStore::diff_key(iter);
  auto bytes = *mem.read(key);
  bytes[bytes.size() / 2] ^= std::byte{0x10};
  mem.write(key, bytes);
}

TEST(RecoveryEquivalence, ParallelMatchesSerialForEveryChainLength) {
  for (const auto seed : kSeeds) {
    for (const auto n : kChainLengths) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + " n=" + std::to_string(n));
      const auto spec = spec_of(350);
      auto mem = std::make_shared<MemStorage>();
      CheckpointStore store(mem);
      Adam adam;
      TopKCompressor comp(0.08);
      const auto trained = train_chain(store, spec, adam, comp, n, seed);

      RecoveryEngine engine(spec, adam.clone(), comp.clone());
      ThreadPool pool(4);
      RecoveryReport serial_report, parallel_report;
      const auto serial = engine.recover_serial(store, &serial_report);
      const auto parallel =
          engine.recover_parallel(store, pool, &parallel_report);

      EXPECT_TRUE(serial.bit_equal(trained));
      EXPECT_TRUE(parallel.bit_equal(serial));
      EXPECT_EQ(serial_report.diffs_replayed, n);
      EXPECT_EQ(parallel_report.diffs_replayed, n);
      EXPECT_EQ(parallel_report.full_iteration, serial_report.full_iteration);
      EXPECT_EQ(parallel_report.final_iteration, serial_report.final_iteration);
      EXPECT_EQ(parallel_report.corrupt_diffs_skipped, 0u);
    }
  }
}

TEST(RecoveryEquivalence, CorruptDiffTruncatesBothPathsIdentically) {
  for (const auto seed : kSeeds) {
    for (const auto n : kChainLengths) {
      // Corrupt one differential per chain — first, middle, last across
      // the sweep so every truncation position is exercised.
      const std::uint64_t corrupt_pos = (seed % n);
      SCOPED_TRACE("seed=" + std::to_string(seed) + " n=" + std::to_string(n) +
                   " corrupt_pos=" + std::to_string(corrupt_pos));
      const auto spec = spec_of(280);
      auto mem = std::make_shared<MemStorage>();
      CheckpointStore store(mem);
      Adam adam;
      TopKCompressor comp(0.08);
      train_chain(store, spec, adam, comp, n, seed);
      corrupt_diff(*mem, kFullAt + 1 + corrupt_pos);

      RecoveryEngine engine(spec, adam.clone(), comp.clone());
      ThreadPool pool(3);
      RecoveryReport serial_report, parallel_report;
      const auto serial = engine.recover_serial(store, &serial_report);
      const auto parallel =
          engine.recover_parallel(store, pool, &parallel_report);

      // Truncated-prefix semantics: everything before the corrupt record
      // replays, nothing after it does, identically on both paths.
      EXPECT_TRUE(parallel.bit_equal(serial));
      EXPECT_EQ(serial_report.diffs_replayed, corrupt_pos);
      EXPECT_EQ(parallel_report.diffs_replayed, corrupt_pos);
      EXPECT_EQ(serial_report.corrupt_diffs_skipped, 1u);
      EXPECT_EQ(parallel_report.corrupt_diffs_skipped, 1u);
      const std::uint64_t expect_final =
          corrupt_pos == 0 ? kFullAt : kFullAt + corrupt_pos;
      EXPECT_EQ(serial_report.final_iteration, expect_final);
      EXPECT_EQ(parallel_report.final_iteration, expect_final);
    }
  }
}

TEST(RecoveryEquivalence, AdditiveMergeMatchesSerialForSgd) {
  // The pairwise-merge path (Fig. 7) only composes for a state-free
  // optimizer; float re-association across merges allows tiny drift, so
  // this is near-equality, not bit-equality.
  for (const auto seed : kSeeds) {
    for (const auto n : kChainLengths) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + " n=" + std::to_string(n));
      const auto spec = spec_of(320);
      auto mem = std::make_shared<MemStorage>();
      CheckpointStore store(mem);
      SgdConfig sgd_cfg;
      Sgd sgd(sgd_cfg);
      TopKCompressor comp(0.1);
      train_chain(store, spec, sgd, comp, n, seed);

      RecoveryEngine engine(spec, sgd.clone(), comp.clone());
      ThreadPool pool(4);
      RecoveryReport serial_report, additive_report;
      const auto serial = engine.recover_serial(store, &serial_report);
      const auto additive = engine.recover_parallel_additive(
          store, pool, sgd_cfg.lr, &additive_report);

      EXPECT_EQ(additive_report.diffs_replayed, serial_report.diffs_replayed);
      EXPECT_EQ(additive_report.final_iteration, serial_report.final_iteration);
      EXPECT_GE(additive_report.merge_rounds,
                n > 1 ? static_cast<std::uint64_t>(std::ceil(std::log2(n))) : 0u);
      const auto a = serial.params().cspan();
      const auto b = additive.params().cspan();
      float max_err = 0.0f;
      for (std::size_t i = 0; i < a.size(); ++i) {
        max_err = std::max(max_err, std::fabs(a[i] - b[i]));
      }
      EXPECT_LT(max_err, 1e-4f) << "fp-reassociation drift too large";
    }
  }
}

}  // namespace
}  // namespace lowdiff
