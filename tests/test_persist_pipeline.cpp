#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "compress/dense.h"
#include "compress/topk.h"
#include "core/checkpoint_store.h"
#include "core/recovery.h"
#include "core/strategies.h"
#include "optim/adam.h"
#include "storage/atomic_commit.h"
#include "storage/batch_submit.h"
#include "storage/crashable.h"
#include "storage/deadline.h"
#include "storage/fault_injection.h"
#include "storage/mem_storage.h"
#include "storage/pipelined_writer.h"
#include "storage/stacking.h"
#include "storage/throttled.h"
#include "support/kill_points.h"
#include "tensor/ops.h"

namespace lowdiff {
namespace {

using test_support::drain;
using test_support::exhaustive_kill_points;

RetryPolicy fast_retry(int attempts = 4) {
  RetryPolicy p;
  p.max_attempts = attempts;
  p.base_delay_sec = 1e-6;
  p.max_delay_sec = 1e-5;
  return p;
}

std::vector<std::byte> pattern_bytes(std::size_t n, std::uint64_t seed) {
  std::vector<std::byte> out(n);
  Xoshiro256 rng(seed);
  for (auto& b : out) b = static_cast<std::byte>(rng() & 0xff);
  return out;
}

/// Full backend image, key → bytes.  The differential suite's equality
/// relation: two persist paths are equivalent iff their dumps match.
std::map<std::string, std::vector<std::byte>> dump(const StorageBackend& b) {
  std::map<std::string, std::vector<std::byte>> out;
  for (const auto& key : b.list()) out.emplace(key, *b.read(key));
  return out;
}

std::size_t marker_count(const StorageBackend& b) {
  std::size_t n = 0;
  for (const auto& key : b.list()) n += is_commit_marker(key) ? 1 : 0;
  return n;
}

std::size_t marker_count_of(
    const std::map<std::string, std::vector<std::byte>>& d) {
  std::size_t n = 0;
  for (const auto& [key, bytes] : d) n += is_commit_marker(key) ? 1 : 0;
  return n;
}

ModelSpec spec_of(std::size_t n) {
  ModelSpec spec;
  spec.name = "flat";
  spec.layers = {{"w0", {n / 2}}, {"w1", {n - n / 2}}};
  return spec;
}

// ===========================================================================
// CrashableStorage: the write-back crash model the matrix is built on.
// ===========================================================================

TEST(CrashableStorage, WritesAreVolatileUntilSync) {
  auto crashable =
      std::make_shared<CrashableStorage>(std::make_shared<MemStorage>());
  ASSERT_TRUE(crashable->write("a", pattern_bytes(16, 1)).ok());
  // Visible through the cache view...
  EXPECT_TRUE(crashable->exists("a"));
  EXPECT_EQ(*crashable->read("a"), pattern_bytes(16, 1));
  // ...but not durable yet.
  EXPECT_FALSE(crashable->durable_snapshot()->exists("a"));

  ASSERT_TRUE(crashable->sync().ok());
  EXPECT_EQ(*crashable->durable_snapshot()->read("a"), pattern_bytes(16, 1));
}

TEST(CrashableStorage, CrashDropsVolatileStateAndKillsTheBackend) {
  auto crashable =
      std::make_shared<CrashableStorage>(std::make_shared<MemStorage>());
  ASSERT_TRUE(crashable->write("durable", pattern_bytes(8, 2)).ok());
  ASSERT_TRUE(crashable->sync().ok());
  ASSERT_TRUE(crashable->write("volatile", pattern_bytes(8, 3)).ok());

  crashable->crash();
  EXPECT_TRUE(crashable->crashed());
  EXPECT_EQ(crashable->write("x", pattern_bytes(1, 4)).code(),
            ErrorCode::kUnavailable);
  EXPECT_FALSE(crashable->sync().ok());
  EXPECT_FALSE(crashable->read("durable").ok());  // dead until reopen

  const auto snap = crashable->durable_snapshot();
  EXPECT_TRUE(snap->exists("durable"));
  EXPECT_FALSE(snap->exists("volatile"));

  crashable->reopen();
  EXPECT_FALSE(crashable->crashed());
  EXPECT_EQ(*crashable->read("durable"), pattern_bytes(8, 2));
  EXPECT_FALSE(crashable->exists("volatile"));  // reboot lost the cache
}

TEST(CrashableStorage, ArmedCrashFiresAfterExactlyNOps) {
  auto crashable =
      std::make_shared<CrashableStorage>(std::make_shared<MemStorage>());
  crashable->set_crash_after_ops(2);
  EXPECT_TRUE(crashable->write("one", pattern_bytes(4, 5)).ok());  // op 1
  EXPECT_TRUE(crashable->sync().ok());                             // op 2 → crash
  EXPECT_TRUE(crashable->crashed());
  EXPECT_EQ(crashable->write("three", pattern_bytes(4, 6)).code(),
            ErrorCode::kUnavailable);
  EXPECT_EQ(crashable->applied_ops(), 2u);
  EXPECT_TRUE(crashable->durable_snapshot()->exists("one"));

  // Arming with 0 crashes *before* the next op.
  auto immediate =
      std::make_shared<CrashableStorage>(std::make_shared<MemStorage>());
  immediate->set_crash_after_ops(0);
  EXPECT_EQ(immediate->write("k", pattern_bytes(4, 7)).code(),
            ErrorCode::kUnavailable);
  EXPECT_EQ(immediate->applied_ops(), 0u);
}

// ===========================================================================
// BatchSubmitQueue: SQ/CQ device semantics.
// ===========================================================================

TEST(BatchSubmit, ChunkedRecordAssemblesBitExact) {
  auto mem = std::make_shared<MemStorage>();
  BatchSubmitQueue::Options opt;
  opt.retry = fast_retry();
  BatchSubmitQueue queue(mem, opt);

  const auto record = pattern_bytes(1000, 11);
  std::vector<SubmitOp> batch;
  SubmitOp::append_chunks(batch, "rec/0", ByteBuffer(record),
                          /*chunk_bytes=*/256, /*user_data=*/42);
  ASSERT_EQ(batch.size(), 4u);  // 256+256+256+232
  EXPECT_TRUE(batch.back().last);
  ASSERT_TRUE(queue.submit(std::move(batch)));

  const auto completions = queue.complete(1);
  ASSERT_EQ(completions.size(), 1u);  // one completion per record, not chunk
  EXPECT_EQ(completions[0].user_data, 42u);
  EXPECT_TRUE(completions[0].status.ok());
  EXPECT_EQ(*mem->read("rec/0"), record);
  EXPECT_GE(queue.stats().staged_copies, 4u);
  EXPECT_EQ(queue.stats().zero_copy_writes, 0u);
}

TEST(BatchSubmit, SingleChunkRecordsSkipStaging) {
  auto mem = std::make_shared<MemStorage>();
  BatchSubmitQueue::Options opt;
  opt.retry = fast_retry();
  BatchSubmitQueue queue(mem, opt);

  const auto record = pattern_bytes(100, 12);
  std::vector<SubmitOp> batch;
  SubmitOp::append_chunks(batch, "rec/zc", ByteBuffer(record), 4096, 7);
  ASSERT_EQ(batch.size(), 1u);
  ASSERT_TRUE(queue.submit(std::move(batch)));
  queue.complete(1);
  EXPECT_EQ(*mem->read("rec/zc"), record);
  EXPECT_EQ(queue.stats().zero_copy_writes, 1u);
  EXPECT_EQ(queue.stats().staged_copies, 0u);
}

TEST(BatchSubmit, CompletionsArriveInApplicationOrderAndSyncIsABarrier) {
  auto crashable =
      std::make_shared<CrashableStorage>(std::make_shared<MemStorage>());
  BatchSubmitQueue::Options opt;
  opt.retry = fast_retry();
  BatchSubmitQueue queue(crashable, opt);

  const auto r1 = pattern_bytes(600, 13);
  const auto r2 = pattern_bytes(600, 14);
  std::vector<SubmitOp> batch;
  SubmitOp::append_chunks(batch, "k1", ByteBuffer(r1), 256, 1);
  batch.push_back(SubmitOp::sync_op(2));
  SubmitOp::append_chunks(batch, "k2", ByteBuffer(r2), 256, 3);
  ASSERT_TRUE(queue.submit(std::move(batch)));

  std::vector<Completion> all;
  while (all.size() < 3) {
    for (auto& c : queue.complete(1)) all.push_back(std::move(c));
  }
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].user_data, 1u);
  EXPECT_EQ(all[1].user_data, 2u);  // sync completes after k1, before k2
  EXPECT_EQ(all[2].user_data, 3u);
  for (const auto& c : all) EXPECT_TRUE(c.status.ok());

  // The sync barrier promoted exactly the ops before it: k1 is durable,
  // k2 (applied after the sync) is still volatile.
  const auto snap = crashable->durable_snapshot();
  EXPECT_EQ(*snap->read("k1"), r1);
  EXPECT_FALSE(snap->exists("k2"));
}

TEST(BatchSubmit, BackPressureBoundsTheQueueWithoutLosingOps) {
  auto mem = std::make_shared<MemStorage>();
  BatchSubmitQueue::Options opt;
  opt.sq_depth = 4;  // far smaller than the op count
  opt.retry = fast_retry();
  BatchSubmitQueue queue(mem, opt);

  constexpr int kRecords = 64;
  for (int i = 0; i < kRecords; ++i) {
    std::vector<SubmitOp> batch;
    SubmitOp::append_chunks(batch, "rec/" + std::to_string(i),
                            ByteBuffer(pattern_bytes(300, 20 + i)), 128,
                            static_cast<std::uint64_t>(i));
    ASSERT_TRUE(queue.submit(std::move(batch)));
  }
  std::size_t reaped = 0;
  while (reaped < kRecords) reaped += queue.complete(1).size();
  EXPECT_EQ(mem->list().size(), static_cast<std::size_t>(kRecords));
  EXPECT_EQ(queue.stats().records_written, static_cast<std::uint64_t>(kRecords));
}

TEST(BatchSubmit, SubmitAfterCloseIsRejected) {
  BatchSubmitQueue queue(std::make_shared<MemStorage>(), {});
  queue.close();
  std::vector<SubmitOp> batch;
  SubmitOp::append_chunks(batch, "k", ByteBuffer(pattern_bytes(8, 1)), 8, 0);
  EXPECT_FALSE(queue.submit(std::move(batch)));
}

// ===========================================================================
// PipelinedWriter differential suite: pipelined ≡ serial, bytes-on-disk,
// across window depths × chunk sizes (tentpole requirement (a), writer half).
// ===========================================================================

std::vector<std::pair<std::string, std::vector<std::byte>>> mixed_records() {
  // Sizes straddle every chunking edge: empty, sub-chunk, exact multiples,
  // off-by-one, and a record much larger than any chunk size used below.
  const std::size_t sizes[] = {0, 1, 7, 256, 300, 4096, 4097, 65536};
  std::vector<std::pair<std::string, std::vector<std::byte>>> records;
  std::uint64_t seed = 100;
  for (const std::size_t n : sizes) {
    records.emplace_back("rec/" + std::to_string(records.size()),
                         pattern_bytes(n, seed++));
  }
  return records;
}

TEST(PipelinedDifferential, CommittedBytesIdenticalAcrossWindowsAndChunks) {
  const auto records = mixed_records();

  // Serial reference: the existing committed_write protocol per record.
  auto serial_mem = std::make_shared<MemStorage>();
  Xoshiro256 rng = fast_retry().make_rng(1);
  for (const auto& [key, bytes] : records) {
    ASSERT_TRUE(
        committed_write(*serial_mem, key, bytes, fast_retry(), rng).ok());
  }
  const auto reference = dump(*serial_mem);
  ASSERT_EQ(reference.size(), 2 * records.size());  // data + marker each

  for (const std::size_t window : {1u, 2u, 4u, 8u}) {
    for (const std::size_t chunk : {std::size_t{7}, std::size_t{300},
                                    std::size_t{256} * 1024}) {
      auto mem = std::make_shared<MemStorage>();
      PipelinedWriter::Options opt;
      opt.spec.enabled = true;
      opt.spec.window = window;
      opt.spec.chunk_bytes = chunk;
      opt.retry = fast_retry();
      PipelinedWriter writer(mem, opt);
      std::vector<Status> results;
      for (const auto& [key, bytes] : records) {
        writer.put(key, ByteBuffer(bytes),
                   [&results](const Status& st) { results.push_back(st); });
      }
      EXPECT_TRUE(writer.barrier().ok());
      ASSERT_EQ(results.size(), records.size());
      for (const auto& st : results) EXPECT_TRUE(st.ok());
      // I4: bit-identical artifacts, marker payloads included.
      EXPECT_EQ(dump(*mem), reference)
          << "window=" << window << " chunk=" << chunk;
    }
  }
}

TEST(PipelinedDifferential, PlainModeMatchesSerialWrites) {
  const auto records = mixed_records();
  auto serial_mem = std::make_shared<MemStorage>();
  for (const auto& [key, bytes] : records) {
    ASSERT_TRUE(serial_mem->write(key, bytes).ok());
  }

  auto mem = std::make_shared<MemStorage>();
  PipelinedWriter::Options opt;
  opt.spec.enabled = true;
  opt.spec.window = 3;
  opt.spec.chunk_bytes = 512;
  opt.retry = fast_retry();
  opt.committed = false;  // Replicator lane mode: no syncs, no markers
  PipelinedWriter writer(mem, opt);
  for (const auto& [key, bytes] : records) writer.put(key, ByteBuffer(bytes));
  EXPECT_TRUE(writer.barrier().ok());

  EXPECT_EQ(dump(*mem), dump(*serial_mem));
  EXPECT_EQ(marker_count(*mem), 0u);
  EXPECT_EQ(writer.stats().syncs, 0u);
}

TEST(PipelinedDifferential, CallbacksFireInPutOrder) {
  auto mem = std::make_shared<MemStorage>();
  PipelinedWriter::Options opt;
  opt.spec.enabled = true;
  opt.spec.window = 4;
  opt.spec.records_per_sync = 2;
  opt.retry = fast_retry();
  PipelinedWriter writer(mem, opt);

  std::vector<int> order;
  for (int i = 0; i < 9; ++i) {
    writer.put("rec/" + std::to_string(i), ByteBuffer(pattern_bytes(128, 200 + i)),
               [&order, i](const Status& st) {
                 ASSERT_TRUE(st.ok());
                 order.push_back(i);
               });
  }
  EXPECT_TRUE(writer.barrier().ok());
  ASSERT_EQ(order.size(), 9u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  const auto stats = writer.stats();
  EXPECT_EQ(stats.records, 9u);
  EXPECT_EQ(stats.markers, 9u);
  EXPECT_EQ(stats.syncs, 5u);  // ceil(9/2): 4 full groups + barrier partial
}

// ===========================================================================
// Exhaustive crash-point matrix (tentpole requirement (b)).
//
// A real LowDiff manifest (fulls + differentials) is replayed through the
// PipelinedWriter onto CrashableStorage.  A dry run counts the backend ops
// M and asserts it against the closed form; then *every* boundary
// k ∈ [0, M] is enumerated — crash after exactly k ops — and for each one
// the durable image must satisfy:
//   * committed records form a put-order prefix of the schedule (I2),
//   * every durable marker covers present, CRC-valid data (I1),
//   * recovery is bit-exact at the prefix's last iteration, or degrades
//     cleanly to "no checkpoint" when no full has committed yet (I3).
// ===========================================================================

struct CrashMatrix {
  ModelSpec spec = spec_of(64);
  TopKCompressor comp{0.3};
  /// (key, framed bytes, iteration) in manifest (put) order.
  struct Record {
    std::string key;
    std::vector<std::byte> bytes;
    std::uint64_t iter = 0;
  };
  std::vector<Record> records;
  std::vector<ModelState> refs;  // refs[t] = training state after step t

  CrashMatrix() {
    // Generate the manifest with the *serial* store, so the matrix also
    // re-checks pipelined-vs-serial byte identity record by record.
    auto mem = std::make_shared<MemStorage>();
    CheckpointStore store(mem, fast_retry());
    ModelState state(spec);
    state.init_random(33);
    Adam adam;
    Tensor grad(spec.param_count());
    Tensor densed(spec.param_count());
    Xoshiro256 rng(34);
    std::vector<std::pair<std::uint64_t, char>> manifest;
    for (std::uint64_t t = 0; t < 9; ++t) {
      ops::fill_normal(grad.span(), rng, 0.4f);
      const auto payload = comp.compress(grad.cspan(), t);
      comp.decompress(payload, densed.span());
      adam.step(state, densed.cspan());
      if (t == 2 || t == 6) {
        LOWDIFF_ENSURE(store.put_full(t, state).ok(), "put_full failed");
        manifest.emplace_back(t, 'f');
      } else if (t > 2) {
        LOWDIFF_ENSURE(store.put_diff(payload).ok(), "put_diff failed");
        manifest.emplace_back(t, 'd');
      }
      refs.push_back(state.clone());
    }
    for (const auto& [t, kind] : manifest) {
      const std::string key = kind == 'f' ? CheckpointStore::full_key(t)
                                          : CheckpointStore::diff_key(t);
      records.push_back({key, *mem->read(key), t});
    }
    LOWDIFF_ENSURE(records.size() == 7, "manifest: fulls @2,6; diffs @3,4,5,7,8");
  }

  /// Runs the full pipelined schedule (puts → barrier → final sync) against
  /// a crash armed after `crash_after` ops; nullopt = dry run, never crash.
  std::shared_ptr<CrashableStorage> run(
      std::size_t window, std::size_t cadence, std::size_t chunk,
      std::optional<std::uint64_t> crash_after) const {
    auto crashable =
        std::make_shared<CrashableStorage>(std::make_shared<MemStorage>());
    if (crash_after) crashable->set_crash_after_ops(*crash_after);
    {
      PipelinedWriter::Options opt;
      opt.spec.enabled = true;
      opt.spec.window = window;
      opt.spec.records_per_sync = cadence;
      opt.spec.chunk_bytes = chunk;
      opt.retry = fast_retry(2);
      PipelinedWriter writer(crashable, opt);
      for (const auto& rec : records) writer.put(rec.key, ByteBuffer(rec.bytes));
      (void)writer.barrier();
    }
    (void)crashable->sync();  // marker durability — the schedule's final op
    return crashable;
  }

  void check_every_boundary(std::size_t window, std::size_t cadence) {
    const std::uint64_t R = records.size();
    const std::uint64_t groups = (R + cadence - 1) / cadence;
    // Closed form: R data writes + ⌈R/cadence⌉ group syncs + R marker
    // writes + 1 final sync.  Asserted in-test, per ISSUE: the matrix must
    // *prove* it enumerated everything, not sample.
    const std::uint64_t expected_ops = 2 * R + groups + 1;

    const auto dry = run(window, cadence, /*chunk=*/97, std::nullopt);
    ASSERT_FALSE(dry->crashed());
    ASSERT_EQ(dry->applied_ops(), expected_ops);
    // Chunk granularity must not change the op schedule: chunks are SQ
    // entries, not backend ops.
    EXPECT_EQ(run(window, cadence, 1 << 20, std::nullopt)->applied_ops(),
              expected_ops);

    const auto boundaries = drain(exhaustive_kill_points(expected_ops));
    ASSERT_EQ(boundaries.size(), expected_ops + 1);

    std::set<std::size_t> prefixes_seen;
    for (const std::uint64_t k : boundaries) {
      SCOPED_TRACE("crash after op " + std::to_string(k) + " of " +
                   std::to_string(expected_ops));
      const auto crashed = run(window, cadence, 97, k);
      EXPECT_TRUE(crashed->crashed());
      const auto snap = crashed->durable_snapshot();

      // I2: committed records are a put-order prefix.
      std::size_t prefix = 0;
      while (prefix < records.size() &&
             is_committed(*snap, records[prefix].key)) {
        ++prefix;
      }
      for (std::size_t i = prefix; i < records.size(); ++i) {
        EXPECT_FALSE(is_committed(*snap, records[i].key))
            << "marker gap at record " << i << " breaks commit order";
      }
      prefixes_seen.insert(prefix);

      // I1: every durable marker covers present, CRC-valid, byte-identical
      // data — a marker is never observable before its data.
      Xoshiro256 rng = fast_retry().make_rng(2);
      for (std::size_t i = 0; i < prefix; ++i) {
        const auto back =
            committed_read(*snap, records[i].key, fast_retry(), rng);
        ASSERT_TRUE(back.ok()) << records[i].key << ": " << back.status().to_string();
        EXPECT_EQ(*back, records[i].bytes);
      }

      // Recovery: bit-exact at the prefix boundary, or cleanly absent.
      CheckpointStore store(snap, fast_retry());
      if (prefix == 0) {
        EXPECT_FALSE(store.latest_full().has_value());
      } else {
        RecoveryEngine engine(spec, std::make_unique<Adam>(), comp.clone());
        RecoveryReport report;
        const auto recovered = engine.recover_serial(store, &report);
        EXPECT_EQ(report.final_iteration, records[prefix - 1].iter);
        EXPECT_TRUE(recovered.bit_equal(refs[records[prefix - 1].iter]));
        EXPECT_EQ(report.corrupt_diffs_skipped, 0u);
      }
    }

    // Non-vacuity: the matrix must have exercised "nothing durable",
    // intermediate prefixes, and the fully-committed end state.
    EXPECT_TRUE(prefixes_seen.count(0));
    EXPECT_TRUE(prefixes_seen.count(records.size()));
    EXPECT_GE(prefixes_seen.size(), 3u);
  }
};

TEST(PipelinedCrashMatrix, EveryBoundaryRecoversBitExactOrDegradesCleanly) {
  CrashMatrix matrix;
  matrix.check_every_boundary(/*window=*/4, /*cadence=*/2);
}

TEST(PipelinedCrashMatrix, SingleRecordWindowEnumeratesAllBoundariesToo) {
  // window 1 / cadence 1 degenerates to the serial schedule — the matrix
  // must hold there as well (and M grows to 2R + R + 1).
  CrashMatrix matrix;
  matrix.check_every_boundary(/*window=*/1, /*cadence=*/1);
}

// ===========================================================================
// Fault-injection sweep (tentpole requirement (c)): torn writes, silent bit
// flips, and sync timeouts mid-window.  Invariant under test everywhere:
// the commit marker is never observable before (valid, durable) data.
// ===========================================================================

TEST(PipelineFaults, TornWritesLeaveDataInvisibleAndUnmarked) {
  FaultSpec faults;
  faults.torn_write_rate = 1.0;
  faults.seed = 77;
  auto mem = std::make_shared<MemStorage>();
  auto torn = std::make_shared<FaultInjectingStorage>(mem, faults);

  PipelinedWriter::Options opt;
  opt.spec.enabled = true;
  opt.spec.window = 4;
  opt.spec.records_per_sync = 2;
  opt.retry = fast_retry(2);
  PipelinedWriter writer(torn, opt);
  std::vector<Status> results;
  for (int i = 0; i < 6; ++i) {
    writer.put("rec/" + std::to_string(i), ByteBuffer(pattern_bytes(512, 300 + i)),
               [&results](const Status& st) { results.push_back(st); });
  }
  const Status barrier = writer.barrier();
  EXPECT_FALSE(barrier.ok());
  ASSERT_EQ(results.size(), 6u);
  for (const auto& st : results) EXPECT_FALSE(st.ok());

  // Torn prefixes landed on the device, but I3 held: not one marker was
  // even *attempted*, so every record reads back as absent, never as torn.
  EXPECT_GE(torn->fault_stats().torn_writes, 6u);
  EXPECT_TRUE(mem->exists("rec/0"));
  EXPECT_EQ(marker_count(*mem), 0u);
  Xoshiro256 rng = fast_retry().make_rng(3);
  for (int i = 0; i < 6; ++i) {
    const auto read =
        committed_read(*mem, "rec/" + std::to_string(i), fast_retry(), rng);
    EXPECT_EQ(read.status().code(), ErrorCode::kNotFound);
  }
}

TEST(PipelineFaults, SilentBitFlipsAreDetectedAtReadNeverServed) {
  FaultSpec faults;
  faults.bit_flip_rate = 1.0;  // every write lands with one bit corrupted
  faults.seed = 78;
  auto mem = std::make_shared<MemStorage>();
  auto flipping = std::make_shared<FaultInjectingStorage>(mem, faults);

  PipelinedWriter::Options opt;
  opt.spec.enabled = true;
  opt.spec.window = 4;
  opt.spec.records_per_sync = 2;
  opt.retry = fast_retry(2);
  std::vector<std::pair<std::string, std::vector<std::byte>>> written;
  {
    PipelinedWriter writer(flipping, opt);
    for (int i = 0; i < 6; ++i) {
      written.emplace_back("rec/" + std::to_string(i),
                           pattern_bytes(512, 400 + i));
      writer.put(written.back().first, ByteBuffer(written.back().second));
    }
    // The writes "succeeded" — the corruption is silent.
    EXPECT_TRUE(writer.barrier().ok());
  }
  ASSERT_GT(flipping->fault_stats().bit_flips, 0u);

  // Every committed read must detect the damage via the marker CRC chain;
  // under no circumstances are corrupt bytes served as the original.
  Xoshiro256 rng = fast_retry().make_rng(4);
  for (const auto& [key, original] : written) {
    const auto back = committed_read(*mem, key, fast_retry(), rng);
    ASSERT_FALSE(back.ok()) << key << " served corrupt data";
    EXPECT_EQ(back.status().code(), ErrorCode::kCorrupted);
  }
}

TEST(PipelineFaults, SyncTimeoutMidWindowFailsTheGroupBeforeAnyMarker) {
  // Modeled device whose fsync takes 20 ms against a 4 ms sync deadline:
  // every group sync times out mid-window.  Data writes are unaffected.
  auto mem = std::make_shared<MemStorage>();
  LinkSpec link;
  link.bytes_per_sec = 1e12;
  link.sync_latency_sec = 0.02;
  auto throttled = std::make_shared<ThrottledStorage>(
      mem, link, /*time_scale=*/1.0, "pipeline_timeout_test");
  DeadlineSpec deadline;
  deadline.sync_deadline_sec = 0.004;
  auto deadlined = std::make_shared<DeadlineStorage>(throttled, deadline);

  PipelinedWriter::Options opt;
  opt.spec.enabled = true;
  opt.spec.window = 4;
  opt.spec.records_per_sync = 3;
  opt.retry = fast_retry(1);  // timeouts are retryable; don't pay twice
  PipelinedWriter writer(deadlined, opt);
  std::vector<Status> results;
  for (int i = 0; i < 6; ++i) {
    writer.put("rec/" + std::to_string(i), ByteBuffer(pattern_bytes(256, 500 + i)),
               [&results](const Status& st) { results.push_back(st); });
  }
  const Status barrier = writer.barrier();
  EXPECT_FALSE(barrier.ok());
  ASSERT_EQ(results.size(), 6u);
  for (const auto& st : results) EXPECT_FALSE(st.ok());
  EXPECT_GE(deadlined->timeouts(), 2u);  // both group syncs timed out

  // Durability unknown ⇒ whole group unmarked: data objects exist, yet not
  // one commit marker is observable.
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(mem->exists("rec/" + std::to_string(i)));
  }
  EXPECT_EQ(marker_count(*mem), 0u);
}

// ===========================================================================
// Client integration: the flag must thread through every persist client
// with bit-identical artifacts (tentpole requirement (a), client half).
// ===========================================================================

PipelineSpec test_pipeline() {
  PipelineSpec spec;
  spec.enabled = true;
  spec.window = 4;
  spec.records_per_sync = 2;
  spec.chunk_bytes = 700;  // force multi-chunk staging for full checkpoints
  return spec;
}

TEST(PipelinedClients, CheckpointStorePipelineIsBitIdentical) {
  const auto spec = spec_of(120);
  ModelState state(spec);
  state.init_random(55);
  TopKCompressor comp(0.2);
  Tensor grad(spec.param_count());
  Xoshiro256 rng(56);

  auto run = [&](bool pipelined) {
    auto mem = std::make_shared<MemStorage>();
    CheckpointStore store(mem, fast_retry());
    if (pipelined) {
      store.enable_pipeline(test_pipeline());
      EXPECT_TRUE(store.pipeline_enabled());
    }
    Xoshiro256 grad_rng(57);
    EXPECT_TRUE(store.put_full(0, state).ok());
    for (std::uint64_t t = 1; t <= 4; ++t) {
      ops::fill_normal(grad.span(), grad_rng, 0.3f);
      EXPECT_TRUE(store.put_diff(comp.compress(grad.cspan(), t)).ok());
    }
    return dump(*mem);
  };

  const auto serial = run(false);
  const auto pipelined = run(true);
  EXPECT_EQ(serial, pipelined);

  // Disabling restores the serial path.
  CheckpointStore store(std::make_shared<MemStorage>(), fast_retry());
  store.enable_pipeline(test_pipeline());
  store.enable_pipeline(PipelineSpec{});
  EXPECT_FALSE(store.pipeline_enabled());
}

TEST(PipelinedClients, AsyncWriterPipelinedIsBitIdentical) {
  auto run = [&](const PipelineSpec& pipeline) {
    auto mem = std::make_shared<MemStorage>();
    AsyncWriter::Options opt;
    opt.retry = fast_retry();
    opt.committed = true;
    opt.pipeline = pipeline;
    std::atomic<int> done{0};
    {
      AsyncWriter writer(mem, opt);
      for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(writer.submit("rec/" + std::to_string(i),
                                  pattern_bytes(900, 600 + i),
                                  [&done] { ++done; }));
      }
      writer.flush();
      EXPECT_EQ(writer.completed_jobs(), 10u);
      EXPECT_EQ(writer.failed_jobs(), 0u);
    }
    EXPECT_EQ(done.load(), 10);
    return dump(*mem);
  };

  const auto serial = run(PipelineSpec{});
  const auto pipelined = run(test_pipeline());
  EXPECT_EQ(serial, pipelined);
  EXPECT_EQ(marker_count_of(serial), 10u);
}

// ===========================================================================
// All six strategies, serial vs pipelined, identical backend bytes.
// ===========================================================================

struct StrategyHarness {
  explicit StrategyHarness(std::size_t n = 200, std::uint64_t seed = 5)
      : spec(spec_of(n)), state(spec), grad(n), dense(n), rng(seed) {
    state.init_random(seed);
  }

  void step(std::uint64_t iter, CheckpointStrategy& strategy,
            const Compressor& comp) {
    ops::fill_normal(grad.span(), rng, 0.4f);
    auto payload = std::make_shared<const CompressedGrad>(
        comp.compress(grad.cspan(), iter));
    comp.decompress(*payload, dense.span());
    adam.step(state, dense.cspan());
    strategy.after_step(iter, state, std::move(payload));
  }

  ModelSpec spec;
  ModelState state;
  Tensor grad, dense;
  Xoshiro256 rng;
  Adam adam;
};

TEST(PipelinedClients, AllSixStrategiesProduceIdenticalBytes) {
  struct Case {
    const char* name;
    std::function<std::map<std::string, std::vector<std::byte>>(
        const PipelineSpec&)>
        run;
  };

  const TopKCompressor comp(0.1);
  const auto cases = std::vector<Case>{
      {"torch.save",
       [&](const PipelineSpec& ps) {
         auto mem = std::make_shared<MemStorage>();
         auto store = std::make_shared<CheckpointStore>(mem, fast_retry());
         TorchSaveStrategy strategy(store, /*interval=*/3, ps);
         StrategyHarness h;
         for (std::uint64_t t = 0; t < 10; ++t) h.step(t, strategy, comp);
         strategy.flush();
         return dump(*mem);
       }},
      {"CheckFreq",
       [&](const PipelineSpec& ps) {
         auto mem = std::make_shared<MemStorage>();
         auto store = std::make_shared<CheckpointStore>(mem, fast_retry());
         CheckFreqStrategy strategy(store, /*interval=*/3, ps);
         StrategyHarness h;
         for (std::uint64_t t = 0; t < 10; ++t) h.step(t, strategy, comp);
         strategy.flush();
         return dump(*mem);
       }},
      {"Gemini",
       [&](const PipelineSpec& ps) {
         auto tier = std::make_shared<MemStorage>();
         auto durable_mem = std::make_shared<MemStorage>();
         auto durable =
             std::make_shared<CheckpointStore>(durable_mem, fast_retry());
         GeminiStrategy strategy(tier, durable, /*interval=*/1,
                                 /*persist_interval=*/4, ps);
         StrategyHarness h;
         for (std::uint64_t t = 0; t < 10; ++t) h.step(t, strategy, comp);
         strategy.flush();
         auto image = dump(*durable_mem);
         // Fold the memory tier in too: the pipeline must not perturb it.
         for (auto& [k, v] : dump(*tier)) image.emplace("tier/" + k, std::move(v));
         return image;
       }},
      {"NaiveDC",
       [&](const PipelineSpec& ps) {
         auto mem = std::make_shared<MemStorage>();
         auto store = std::make_shared<CheckpointStore>(mem, fast_retry());
         NaiveDcStrategy strategy(store, std::make_unique<TopKCompressor>(1.0),
                                  /*diff_interval=*/1, /*full_interval=*/6, ps);
         StrategyHarness h;
         for (std::uint64_t t = 0; t < 10; ++t) h.step(t, strategy, comp);
         strategy.flush();
         return dump(*mem);
       }},
      {"LowDiff",
       [&](const PipelineSpec& ps) {
         auto mem = std::make_shared<MemStorage>();
         auto store = std::make_shared<CheckpointStore>(mem, fast_retry());
         LowDiffStrategy::Options opt;
         opt.batch_size = 3;
         opt.full_interval = 5;
         opt.pipeline = ps;
         LowDiffStrategy strategy(store, opt);
         StrategyHarness h;
         for (std::uint64_t t = 0; t < 12; ++t) h.step(t, strategy, comp);
         strategy.flush();
         return dump(*mem);
       }},
      {"LowDiff+",
       [&](const PipelineSpec& ps) {
         auto mem = std::make_shared<MemStorage>();
         auto store = std::make_shared<CheckpointStore>(mem, fast_retry());
         const auto spec = spec_of(100);
         ModelState train_state(spec);
         train_state.init_random(2);
         LowDiffPlusStrategy::Options opt;
         opt.persist_interval = 4;
         opt.pipeline = ps;
         LowDiffPlusStrategy strategy(store, train_state,
                                      std::make_unique<Adam>(), opt);
         Adam adam;
         DenseCompressor dense;
         Tensor grad(spec.param_count());
         Xoshiro256 rng(6);
         for (std::uint64_t t = 0; t < 8; ++t) {
           ops::fill_normal(grad.span(), rng, 0.2f);
           adam.step(train_state, grad.cspan());
           strategy.after_step(t, train_state,
                               std::make_shared<const CompressedGrad>(
                                   dense.compress(grad.cspan(), t)));
         }
         strategy.flush();
         return dump(*mem);
       }},
  };

  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    const auto serial = c.run(PipelineSpec{});
    const auto pipelined = c.run(test_pipeline());
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, pipelined);
  }
}

}  // namespace
}  // namespace lowdiff
