// Property-style tests for the compression layer: randomized shapes and
// seeds, invariants instead of golden values.  Deterministic — every
// "random" choice flows from the fixed kSeeds below, so a failure
// reproduces exactly.  Under `ctest -L seeds` the bases are decorrelated
// per LOWDIFF_TEST_SEED universe (tests/support/kill_points.h).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "compress/error_feedback.h"
#include "compress/quant8.h"
#include "compress/randomk.h"
#include "compress/topk.h"
#include "support/kill_points.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace lowdiff {
namespace {

const std::uint64_t kSeeds[] = {test_support::sweep_seed(11),
                                test_support::sweep_seed(222),
                                test_support::sweep_seed(3333)};

// Shape ladder: tiny edge cases through odd non-power-of-two sizes up to a
// couple of quant blocks.
constexpr std::size_t kSizes[] = {1, 2, 7, 64, 255, 256, 257, 1000, 4097};

Tensor random_grad(std::size_t n, std::uint64_t seed, float sigma = 1.0f) {
  Tensor t(n);
  Xoshiro256 rng(seed);
  ops::fill_normal(t.span(), rng, sigma);
  return t;
}

// --- TopK ------------------------------------------------------------------

TEST(CompressProperty, TopKKeepsTheKLargestExactly) {
  for (const auto seed : kSeeds) {
    for (const auto n : kSizes) {
      const auto grad = random_grad(n, seed);
      TopKCompressor comp(0.1);
      const auto payload = comp.compress(grad.cspan(), seed);
      ASSERT_GE(payload.indices.size(), 1u);
      ASSERT_EQ(payload.indices.size(), payload.values.size());

      // Selected values are carried bit-exactly (lossless on the kept set).
      std::vector<bool> selected(n, false);
      for (std::size_t i = 0; i < payload.indices.size(); ++i) {
        const auto idx = payload.indices[i];
        ASSERT_LT(idx, n);
        EXPECT_FALSE(selected[idx]) << "duplicate index " << idx;
        selected[idx] = true;
        EXPECT_EQ(payload.values[i], grad.cspan()[idx])
            << "seed=" << seed << " n=" << n;
      }

      // k-largest-by-magnitude: no dropped coordinate may beat a kept one.
      float min_kept = std::numeric_limits<float>::infinity();
      for (const auto v : payload.values) {
        min_kept = std::min(min_kept, std::fabs(v));
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (!selected[i]) {
          EXPECT_LE(std::fabs(grad.cspan()[i]), min_kept)
              << "dropped |g[" << i << "]| beats the smallest kept value";
        }
      }

      // Decompression scatters exactly the kept set; everything else is 0.
      Tensor out(n);
      comp.decompress(payload, out.span());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out.cspan()[i], selected[i] ? grad.cspan()[i] : 0.0f);
      }
    }
  }
}

TEST(CompressProperty, TopKIsDeterministicAcrossInstances) {
  for (const auto seed : kSeeds) {
    const auto grad = random_grad(1000, seed);
    TopKCompressor a(0.05), b(0.05);
    EXPECT_EQ(a.compress(grad.cspan(), 3), b.compress(grad.cspan(), 3));
  }
}

// --- RandomK ---------------------------------------------------------------

TEST(CompressProperty, RandomKIsDeterministicPerIteration) {
  for (const auto seed : kSeeds) {
    const auto grad = random_grad(2000, seed);
    RandomKCompressor a(0.1, seed), b(0.1, seed);
    // Same (input, iteration) → identical payload on any instance with the
    // same seed: the property every rank relies on for synchronized
    // compression and recovery relies on for replay.
    const auto p1 = a.compress(grad.cspan(), 5);
    const auto p2 = b.compress(grad.cspan(), 5);
    EXPECT_EQ(p1, p2);
    // Different iterations must (with overwhelming probability) sample
    // different support sets.
    const auto p3 = a.compress(grad.cspan(), 6);
    EXPECT_NE(p1.indices, p3.indices);
  }
}

TEST(CompressProperty, RandomKRoundTripsItsSupport) {
  for (const auto seed : kSeeds) {
    for (const auto n : kSizes) {
      const auto grad = random_grad(n, seed);
      RandomKCompressor comp(0.2, 99);
      const auto payload = comp.compress(grad.cspan(), seed);
      ASSERT_EQ(payload.indices.size(), payload.values.size());
      std::vector<bool> selected(n, false);
      for (std::size_t i = 0; i < payload.indices.size(); ++i) {
        const auto idx = payload.indices[i];
        ASSERT_LT(idx, n);
        EXPECT_FALSE(selected[idx]);
        selected[idx] = true;
        EXPECT_EQ(payload.values[i], grad.cspan()[idx]);
      }
      Tensor out(n);
      comp.decompress(payload, out.span());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out.cspan()[i], selected[i] ? grad.cspan()[i] : 0.0f);
      }
    }
  }
}

// --- Quant8 ----------------------------------------------------------------

TEST(CompressProperty, Quant8ErrorBoundedByHalfScale) {
  for (const auto seed : kSeeds) {
    for (const auto n : kSizes) {
      const auto grad = random_grad(n, seed, 2.0f);
      Quant8Compressor comp;
      const auto payload = comp.compress(grad.cspan(), 0);
      ASSERT_EQ(payload.codes.size(), n);
      ASSERT_EQ(payload.scales.size(), (n + Quant8Compressor::kBlock - 1) /
                                           Quant8Compressor::kBlock);
      Tensor out(n);
      comp.decompress(payload, out.span());
      for (std::size_t i = 0; i < n; ++i) {
        const float scale = payload.scales[i / Quant8Compressor::kBlock];
        // round() quantization: at most half a step, plus fp slack.
        EXPECT_LE(std::fabs(out.cspan()[i] - grad.cspan()[i]),
                  0.5f * scale * (1.0f + 1e-5f))
            << "seed=" << seed << " n=" << n << " i=" << i;
      }
    }
  }
}

// --- Error feedback --------------------------------------------------------

TEST(CompressProperty, ErrorFeedbackResidualIsExactlyWhatWasDropped) {
  for (const auto seed : kSeeds) {
    const std::size_t n = 600;
    ErrorFeedback fb(std::make_unique<TopKCompressor>(0.1), n);
    Xoshiro256 rng(seed);
    Tensor grad(n), carried(n), decompressed(n);
    carried.zero();
    for (std::uint64_t iter = 0; iter < 5; ++iter) {
      ops::fill_normal(grad.span(), rng, 1.0f);
      // What the wrapper should compress this iteration.
      Tensor corrected(n);
      for (std::size_t i = 0; i < n; ++i) {
        corrected.span()[i] = grad.cspan()[i] + carried.cspan()[i];
      }
      const auto payload = fb.compress(grad.cspan(), iter);
      fb.inner().decompress(payload, decompressed.span());
      // Invariant: residual == (grad + old residual) - decompress(payload),
      // i.e. exactly the mass the lossy step failed to transmit.
      const auto residual = fb.residual();
      for (std::size_t i = 0; i < n; ++i) {
        const float expect = corrected.cspan()[i] - decompressed.cspan()[i];
        EXPECT_NEAR(residual[i], expect, 1e-6f)
            << "seed=" << seed << " iter=" << iter << " i=" << i;
        carried.span()[i] = residual[i];
      }
    }
    // Over iterations the kept set changes, so mass is eventually flushed:
    // the payload at iteration t>0 must reflect accumulated residual, not
    // the raw gradient alone (spot check: identical input twice should give
    // different payloads once a residual exists).
    Tensor same(n);
    Xoshiro256 same_rng(seed + 1);
    ops::fill_normal(same.span(), same_rng, 1.0f);
    const auto p1 = fb.compress(same.cspan(), 100);
    const auto p2 = fb.compress(same.cspan(), 101);
    EXPECT_NE(p1.values, p2.values);
  }
}

// --- Serialization ---------------------------------------------------------

TEST(CompressProperty, SerializeRoundTripsEveryScheme) {
  for (const auto seed : kSeeds) {
    for (const auto n : {1ul, 257ul, 1000ul}) {
      const auto grad = random_grad(n, seed);
      const TopKCompressor topk(0.1);
      const RandomKCompressor randk(0.1, seed);
      const Quant8Compressor quant;
      for (const Compressor* comp :
           {static_cast<const Compressor*>(&topk),
            static_cast<const Compressor*>(&randk),
            static_cast<const Compressor*>(&quant)}) {
        const auto payload = comp->compress(grad.cspan(), seed);
        const auto bytes = payload.serialize();
        EXPECT_EQ(CompressedGrad::deserialize(bytes), payload)
            << comp->name() << " seed=" << seed << " n=" << n;
      }
    }
  }
}

}  // namespace
}  // namespace lowdiff
