#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/rng.h"
#include "compress/dense.h"
#include "compress/topk.h"
#include "core/recovery.h"
#include "core/strategies.h"
#include "optim/adam.h"
#include "storage/mem_storage.h"
#include "storage/throttled.h"
#include "tensor/ops.h"

namespace lowdiff {
namespace {

ModelSpec spec_of(std::size_t n) {
  ModelSpec spec;
  spec.name = "flat";
  spec.layers = {{"w0", {n / 2}}, {"w1", {n - n / 2}}};
  return spec;
}

struct Harness {
  explicit Harness(std::size_t n = 200, std::uint64_t seed = 5)
      : spec(spec_of(n)), state(spec), grad(n), dense(n), rng(seed) {
    state.init_random(seed);
  }

  /// One training iteration with gradient reuse: compress, apply, hand the
  /// payload (and post-update state) to the strategy.
  void step(std::uint64_t iter, CheckpointStrategy& strategy,
            const Compressor& comp) {
    ops::fill_normal(grad.span(), rng, 0.4f);
    auto payload =
        std::make_shared<const CompressedGrad>(comp.compress(grad.cspan(), iter));
    comp.decompress(*payload, dense.span());
    adam.step(state, dense.cspan());
    strategy.after_step(iter, state, std::move(payload));
  }

  ModelSpec spec;
  ModelState state;
  Tensor grad, dense;
  Xoshiro256 rng;
  Adam adam;
};

TEST(TorchSave, WritesFullAtInterval) {
  auto mem = std::make_shared<MemStorage>();
  auto store = std::make_shared<CheckpointStore>(mem);
  TorchSaveStrategy strategy(store, 5);
  Harness h;
  TopKCompressor comp(0.1);
  for (std::uint64_t t = 0; t < 12; ++t) h.step(t, strategy, comp);
  EXPECT_EQ(store->latest_full(), 9u);
  EXPECT_EQ(strategy.stats().full_ckpts, 2u);
  const auto recovered = store->read_full(9, h.spec);
  EXPECT_EQ(recovered.step(), 10u);
}

TEST(CheckFreq, PersistsAsynchronouslyAndFlushes) {
  auto mem = std::make_shared<MemStorage>();
  auto store = std::make_shared<CheckpointStore>(mem);
  CheckFreqStrategy strategy(store, 3);
  Harness h;
  TopKCompressor comp(0.1);
  for (std::uint64_t t = 0; t < 10; ++t) h.step(t, strategy, comp);
  strategy.flush();
  EXPECT_EQ(strategy.stats().full_ckpts, 3u);  // iters 2, 5, 8
  EXPECT_EQ(store->latest_full(), 8u);
  // The persisted state is exactly the state at that iteration.
  EXPECT_EQ(store->read_full(8, h.spec).step(), 9u);
}

TEST(Gemini, MemoryTierRecoveryAndRarePersistence) {
  auto tier = std::make_shared<MemStorage>();
  auto durable_mem = std::make_shared<MemStorage>();
  auto durable = std::make_shared<CheckpointStore>(durable_mem);
  GeminiStrategy strategy(tier, durable, /*interval=*/1, /*persist_interval=*/5);
  Harness h;
  TopKCompressor comp(0.1);
  for (std::uint64_t t = 0; t < 12; ++t) h.step(t, strategy, comp);
  strategy.flush();

  // Every iteration is in the memory tier; durable persisted every 5th.
  EXPECT_EQ(strategy.stats().full_ckpts, 12u);
  const auto from_memory = strategy.recover_from_memory(h.spec);
  EXPECT_TRUE(from_memory.bit_equal(h.state));
  EXPECT_EQ(durable->latest_full(), 9u);

  // Hardware failure: the memory tier is lost; durable survives.
  tier->clear();
  EXPECT_THROW(strategy.recover_from_memory(h.spec), Error);
  EXPECT_TRUE(durable->read_full(9, h.spec).bit_equal(
      durable->read_full(9, h.spec)));
}

TEST(NaiveDc, RecoversExactlyFromStateDiffs) {
  auto mem = std::make_shared<MemStorage>();
  auto store = std::make_shared<CheckpointStore>(mem);
  // rho=1: the "compressed" parameter diff is lossless, so recovery must be
  // exact; smaller rho loses information by design (Check-N-Run relies on
  // sparsity that general models lack — the paper's point).
  NaiveDcStrategy strategy(store, std::make_unique<TopKCompressor>(1.0),
                           /*diff_interval=*/1, /*full_interval=*/6);
  Harness h;
  TopKCompressor comp(0.1);
  for (std::uint64_t t = 0; t < 10; ++t) h.step(t, strategy, comp);
  strategy.flush();

  TopKCompressor loss_free(1.0);
  const auto recovered = NaiveDcStrategy::recover(*store, h.spec, loss_free);
  EXPECT_EQ(recovered.step(), h.state.step());
  EXPECT_LT(
      ops::max_abs_diff(recovered.params().cspan(), h.state.params().cspan()),
      1e-6f);
  EXPECT_LT(
      ops::max_abs_diff(recovered.moment1().cspan(), h.state.moment1().cspan()),
      1e-6f);
}

TEST(NaiveDc, DiffRecordsAreLargerThanLowDiffPayloads) {
  // Exp. 7's root cause: NaiveDC stores raw optimizer diffs, so its
  // records dwarf the reused compressed gradients at the same rho.
  auto mem = std::make_shared<MemStorage>();
  auto store = std::make_shared<CheckpointStore>(mem);
  NaiveDcStrategy strategy(store, std::make_unique<TopKCompressor>(0.01),
                           1, 1000);
  Harness h(2000);
  TopKCompressor comp(0.01);
  for (std::uint64_t t = 0; t < 5; ++t) h.step(t, strategy, comp);
  strategy.flush();

  const auto naive_bytes = mem->read(NaiveDcStrategy::naive_diff_key(1));
  ASSERT_TRUE(naive_bytes.has_value());
  const auto payload = comp.compress(h.grad.cspan(), 0);
  // Naive diff carries 2 * n raw floats (~16KB) vs ~8 * rho * n (~160B).
  EXPECT_GT(naive_bytes->size(), payload.byte_size() * 20);
}

TEST(LowDiff, BatchedWritesAndRecovery) {
  auto mem = std::make_shared<MemStorage>();
  auto store = std::make_shared<CheckpointStore>(mem);
  LowDiffStrategy::Options opt;
  opt.batch_size = 3;
  opt.full_interval = 8;
  auto strategy = std::make_unique<LowDiffStrategy>(store, opt);

  Harness h;
  TopKCompressor comp(0.1);
  for (std::uint64_t t = 0; t < 20; ++t) h.step(t, *strategy, comp);
  strategy->flush();

  const auto stats = strategy->stats();
  EXPECT_EQ(stats.diff_ckpts, 20u);
  EXPECT_EQ(stats.full_ckpts, 2u);          // iters 7, 15
  EXPECT_GE(stats.batched_writes, 6u);      // 20 diffs / batch 3 (+ tail)
  EXPECT_EQ(store->latest_full(), 15u);

  // Recovery from full @15 + diffs 16..19 must be bit-exact.
  RecoveryEngine engine(h.spec, h.adam.clone(), comp.clone());
  const auto recovered = engine.recover_serial(*store);
  EXPECT_TRUE(recovered.bit_equal(h.state));
  strategy.reset();
}

TEST(LowDiff, PartialBatchLostWithoutFlush) {
  // Crash semantics: differentials still in the CPU batch buffer are lost
  // (the b/2 term of the wasted-time model); recovery lands on the last
  // *written* batch boundary.
  auto mem = std::make_shared<MemStorage>();
  auto store = std::make_shared<CheckpointStore>(mem);
  LowDiffStrategy::Options opt;
  opt.batch_size = 4;
  opt.full_interval = 100;  // no second full checkpoint
  auto strategy = std::make_unique<LowDiffStrategy>(store, opt);

  Harness h;
  TopKCompressor comp(0.1);
  std::unique_ptr<ModelState> at_full;
  ModelState at_last_batch(h.spec);
  for (std::uint64_t t = 0; t < 11; ++t) {
    h.step(t, *strategy, comp);
    if (t == 0) {
      store->put_full(0, h.state);  // base full checkpoint
    }
    if (t == 7) at_last_batch = h.state.clone();
  }
  // Give the checkpointing thread a moment, then crash (destroy without
  // flushing the partial batch of iterations 8-10).
  while (strategy->stats().batched_writes < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  strategy.reset();  // crash: batch buffer dropped

  RecoveryEngine engine(h.spec, h.adam.clone(), comp.clone());
  const auto recovered = engine.recover_serial(*store);
  // Batches [0..3] and [4..7] were written; diffs 8..10 lost.
  EXPECT_TRUE(recovered.bit_equal(at_last_batch));
  EXPECT_FALSE(recovered.bit_equal(h.state));
}

TEST(LowDiff, ZeroCopyUntilOffload) {
  auto mem = std::make_shared<MemStorage>();
  auto store = std::make_shared<CheckpointStore>(mem);
  LowDiffStrategy::Options opt;
  opt.batch_size = 2;
  auto strategy = std::make_unique<LowDiffStrategy>(store, opt);

  auto payload = std::make_shared<const CompressedGrad>(CompressedGrad{
      CompressionScheme::kTopK, 10, 0, {1, 2}, {0.5f, 0.25f}, {}, {}});
  std::weak_ptr<const CompressedGrad> weak = payload;
  Harness h(10);
  strategy->after_step(0, h.state, std::move(payload));
  strategy->flush();
  // After offload the device handle must be released.
  EXPECT_TRUE(weak.expired());
  strategy.reset();
}

TEST(LowDiff, DeviceResidencyAblation) {
  // Exp. 6(b): without CPU offload the batch buffer stays device-resident.
  for (bool offload : {true, false}) {
    auto mem = std::make_shared<MemStorage>();
    auto store = std::make_shared<CheckpointStore>(mem);
    LowDiffStrategy::Options opt;
    opt.batch_size = 8;
    opt.full_interval = 1000;
    opt.offload_batching_to_cpu = offload;
    auto strategy = std::make_unique<LowDiffStrategy>(store, opt);
    Harness h(4000);
    TopKCompressor comp(0.1);
    for (std::uint64_t t = 0; t < 8; ++t) {
      h.step(t, *strategy, comp);
      if (offload) {
        // Drain per step so the peak reflects steady state, not a transient
        // pile-up of not-yet-offloaded handles.
        strategy->flush();
      }
    }
    strategy->flush();
    const auto stats = strategy->stats();
    const std::size_t one_payload = comp.compress(h.grad.cspan(), 0).byte_size();
    if (offload) {
      EXPECT_LT(stats.peak_device_bytes, 4 * one_payload);
    } else {
      EXPECT_GE(stats.peak_device_bytes, 7 * one_payload);
    }
    strategy.reset();
  }
}

TEST(LowDiff, PruneOnFullBoundsStorage) {
  auto mem = std::make_shared<MemStorage>();
  auto store = std::make_shared<CheckpointStore>(mem);
  LowDiffStrategy::Options opt;
  opt.batch_size = 2;
  opt.full_interval = 6;
  opt.prune_on_full = true;
  auto strategy = std::make_unique<LowDiffStrategy>(store, opt);

  Harness h;
  TopKCompressor comp(0.1);
  for (std::uint64_t t = 0; t < 30; ++t) h.step(t, *strategy, comp);
  strategy->flush();

  // Only the latest full (iter 29) and nothing older may remain;
  // recovery must still be exact from what's left.
  EXPECT_EQ(store->latest_full(), 29u);
  const auto usage = store->usage();
  EXPECT_EQ(usage.full_count, 1u);
  RecoveryEngine engine(h.spec, h.adam.clone(), comp.clone());
  EXPECT_TRUE(engine.recover_serial(*store).bit_equal(h.state));
  strategy.reset();
}

TEST(LowDiffPlus, ReplicaTracksTrainingBitExactly) {
  auto mem = std::make_shared<MemStorage>();
  auto store = std::make_shared<CheckpointStore>(mem);

  const auto spec = spec_of(300);
  ModelState train_state(spec);
  train_state.init_random(9);

  LowDiffPlusStrategy::Options opt;
  opt.persist_interval = 4;
  auto strategy = std::make_unique<LowDiffPlusStrategy>(
      store, train_state, std::make_unique<Adam>(), opt);

  // Train densely, streaming layer chunks in reverse order (Fig. 5).
  Adam adam;
  Tensor grad(spec.param_count());
  Xoshiro256 rng(4);
  const auto offsets = spec.layer_offsets();
  for (std::uint64_t t = 0; t < 10; ++t) {
    ops::fill_normal(grad.span(), rng, 0.3f);
    adam.step(train_state, grad.cspan());
    for (std::size_t l = spec.layers.size(); l-- > 0;) {
      LowDiffPlusStrategy::GradChunk chunk;
      chunk.iteration = t;
      chunk.offset = offsets[l];
      const auto slice = grad.cspan().subspan(offsets[l], offsets[l + 1] - offsets[l]);
      chunk.values.assign(slice.begin(), slice.end());
      chunk.last_of_iteration = (l == 0);
      strategy->on_layer_gradient(std::move(chunk));
    }
  }

  // Software failure at iteration 9: the in-memory replica must equal the
  // GPU state exactly (this is the LowDiff+(S) recovery path).
  const auto replica = strategy->replica_snapshot(9);
  EXPECT_TRUE(replica.bit_equal(train_state));

  strategy->flush();
  // Persistence every 4 iterations: 3, 7 (iterations are 0-based).
  EXPECT_EQ(store->latest_full(), 7u);
  const auto persisted = store->read_full(7, spec);
  EXPECT_EQ(persisted.step(), 8u);
  strategy.reset();
}

TEST(LowDiffPlus, DensePayloadFallback) {
  auto mem = std::make_shared<MemStorage>();
  auto store = std::make_shared<CheckpointStore>(mem);
  const auto spec = spec_of(100);
  ModelState train_state(spec);
  train_state.init_random(2);
  LowDiffPlusStrategy::Options opt;
  opt.persist_interval = 2;
  auto strategy = std::make_unique<LowDiffPlusStrategy>(
      store, train_state, std::make_unique<Adam>(), opt);

  Adam adam;
  DenseCompressor dense;
  Tensor grad(spec.param_count());
  Xoshiro256 rng(6);
  for (std::uint64_t t = 0; t < 4; ++t) {
    ops::fill_normal(grad.span(), rng, 0.2f);
    adam.step(train_state, grad.cspan());
    strategy->after_step(t, train_state, std::make_shared<const CompressedGrad>(
                                             dense.compress(grad.cspan(), t)));
  }
  EXPECT_TRUE(strategy->replica_snapshot(3).bit_equal(train_state));
  strategy->flush();
  EXPECT_EQ(strategy->stats().full_ckpts, 2u);
  strategy.reset();
}

TEST(LowDiffPlus, RejectsSparsePayloadInFallback) {
  auto mem = std::make_shared<MemStorage>();
  auto store = std::make_shared<CheckpointStore>(mem);
  const auto spec = spec_of(50);
  ModelState state(spec);
  LowDiffPlusStrategy strategy(store, state, std::make_unique<Adam>(), {});
  auto sparse = std::make_shared<const CompressedGrad>(
      CompressedGrad{CompressionScheme::kTopK, 50, 0, {1}, {1.0f}, {}, {}});
  EXPECT_THROW(strategy.after_step(0, state, sparse), Error);
}

}  // namespace
}  // namespace lowdiff

namespace lowdiff {
namespace {

TEST(LowDiff, OffloadsThroughThePcieModel) {
  auto mem = std::make_shared<MemStorage>();
  auto store = std::make_shared<CheckpointStore>(mem);
  LowDiffStrategy::Options opt;
  opt.batch_size = 2;
  opt.full_interval = 100;
  opt.pcie = std::make_shared<Throttler>(links::pcie_gen4(), /*time_scale=*/1e-9);
  auto strategy = std::make_unique<LowDiffStrategy>(store, opt);

  Harness h(1000);
  TopKCompressor comp(0.1);
  for (std::uint64_t t = 0; t < 6; ++t) h.step(t, *strategy, comp);
  strategy->flush();
  EXPECT_GT(opt.pcie->busy_time(), 0.0);
  EXPECT_EQ(opt.pcie->total_bytes() > 0, true);
  strategy.reset();
}

TEST(LowDiffPlus, SnapshotsThroughThePcieModel) {
  auto mem = std::make_shared<MemStorage>();
  auto store = std::make_shared<CheckpointStore>(mem);
  const auto spec = spec_of(100);
  ModelState init(spec);
  init.init_random(1);
  LowDiffPlusStrategy::Options opt;
  opt.persist_interval = 100;
  opt.pcie = std::make_shared<Throttler>(links::pcie_gen3(), 1e-9);
  LowDiffPlusStrategy strategy(store, init, std::make_unique<Adam>(), opt);

  DenseCompressor dense;
  Adam adam;
  ModelState train = init.clone();
  Tensor grad(spec.param_count());
  Xoshiro256 rng(2);
  for (std::uint64_t t = 0; t < 3; ++t) {
    ops::fill_normal(grad.span(), rng, 0.1f);
    adam.step(train, grad.cspan());
    strategy.after_step(t, train, std::make_shared<const CompressedGrad>(
                                      dense.compress(grad.cspan(), t)));
  }
  strategy.flush();
  EXPECT_GT(opt.pcie->busy_time(), 0.0);
  EXPECT_TRUE(strategy.replica_snapshot(2).bit_equal(train));
}

TEST(Gemini, ThrottledMemoryTierChargesNetworkTime) {
  // The "remote CPU memory" tier behind a 25 Gbps link: Gemini's traffic
  // cost shows up as modeled link busy-time.
  auto raw_tier = std::make_shared<MemStorage>();
  auto tier = std::make_shared<ThrottledStorage>(raw_tier, links::ib_25gbps(),
                                                 /*time_scale=*/1e-9);
  auto durable = std::make_shared<CheckpointStore>(std::make_shared<MemStorage>());
  GeminiStrategy strategy(tier, durable, 1, 10);
  Harness h;
  TopKCompressor comp(0.1);
  for (std::uint64_t t = 0; t < 5; ++t) h.step(t, strategy, comp);
  strategy.flush();
  EXPECT_GT(tier->busy_time(), 0.0);
  EXPECT_TRUE(strategy.recover_from_memory(h.spec).bit_equal(h.state));
}

}  // namespace
}  // namespace lowdiff
