#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>
#include <filesystem>
#include <thread>

#include "common/buffer_pool.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "compress/topk.h"
#include "model/model_state.h"
#include "storage/async_writer.h"
#include "storage/atomic_commit.h"
#include "storage/bandwidth.h"
#include "storage/deadline.h"
#include "storage/fault_injection.h"
#include "storage/file_storage.h"
#include "storage/mem_storage.h"
#include "storage/pipelined_writer.h"
#include "storage/serializer.h"
#include "storage/stacking.h"
#include "storage/throttled.h"
#include "tensor/ops.h"

namespace lowdiff {
namespace {

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

class BackendSuite : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (GetParam() == "mem") {
      backend_ = std::make_shared<MemStorage>();
    } else {
      dir_ = std::filesystem::temp_directory_path() /
             ("lowdiff_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name());
      std::filesystem::remove_all(dir_);
      backend_ = std::make_shared<FileStorage>(dir_);
    }
  }
  void TearDown() override {
    backend_.reset();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  std::shared_ptr<StorageBackend> backend_;
  std::filesystem::path dir_;
};

TEST_P(BackendSuite, WriteReadRoundTrip) {
  backend_->write("a/key1", bytes_of("hello"));
  auto back = backend_->read("a/key1");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, bytes_of("hello"));
}

TEST_P(BackendSuite, OverwriteReplaces) {
  backend_->write("k", bytes_of("one"));
  backend_->write("k", bytes_of("twotwo"));
  EXPECT_EQ(*backend_->read("k"), bytes_of("twotwo"));
}

TEST_P(BackendSuite, MissingKeyIsNullopt) {
  EXPECT_FALSE(backend_->read("missing").has_value());
  EXPECT_FALSE(backend_->exists("missing"));
}

TEST_P(BackendSuite, RemoveDeletes) {
  backend_->write("k", bytes_of("x"));
  EXPECT_TRUE(backend_->exists("k"));
  backend_->remove("k");
  EXPECT_FALSE(backend_->exists("k"));
}

TEST_P(BackendSuite, ListIsSorted) {
  backend_->write("b/2", bytes_of("x"));
  backend_->write("a/1", bytes_of("y"));
  backend_->write("c/3", bytes_of("z"));
  const auto keys = backend_->list();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST_P(BackendSuite, StatsAccumulate) {
  backend_->write("k", bytes_of("12345"));
  backend_->read("k");
  const auto stats = backend_->stats();
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.bytes_written, 5u);
  EXPECT_EQ(stats.reads, 1u);
  EXPECT_EQ(stats.bytes_read, 5u);
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendSuite, ::testing::Values("mem", "file"),
                         [](const auto& info) { return info.param; });

TEST(MemStorage, ResidentBytesAndClear) {
  MemStorage mem;
  mem.write("a", bytes_of("1234"));
  mem.write("b", bytes_of("56"));
  EXPECT_EQ(mem.resident_bytes(), 6u);
  mem.clear();  // hardware failure: CPU memory lost
  EXPECT_EQ(mem.resident_bytes(), 0u);
  EXPECT_FALSE(mem.exists("a"));
}

TEST(FileStorage, SanitizesHostileKeys) {
  const auto dir = std::filesystem::temp_directory_path() / "lowdiff_sanitize";
  std::filesystem::remove_all(dir);
  FileStorage fs(dir);
  EXPECT_THROW(fs.write("../escape", bytes_of("x")), Error);
  fs.write("weird key!@#", bytes_of("ok"));
  EXPECT_TRUE(fs.read("weird key!@#").has_value());
  std::filesystem::remove_all(dir);
}

// --- serializer ---------------------------------------------------------------

ModelSpec small_spec() {
  ModelSpec spec;
  spec.name = "s";
  spec.layers = {{"w", {16, 4}}, {"b", {16}}};
  return spec;
}

TEST(Serializer, ModelStateRoundTripBitExact) {
  ModelState state(small_spec());
  state.init_random(5);
  state.set_step(321);
  const auto bytes = serialize_model_state(state);
  const auto back = deserialize_model_state(bytes, small_spec());
  EXPECT_TRUE(state.bit_equal(back));
}

TEST(Serializer, ModelStateSpecMismatchRejected) {
  ModelState state(small_spec());
  const auto bytes = serialize_model_state(state);
  ModelSpec other;
  other.layers = {{"w", {8, 4}}};
  EXPECT_THROW(deserialize_model_state(bytes, other), Error);
}

TEST(Serializer, CrcDetectsEveryCorruptedRegion) {
  ModelState state(small_spec());
  state.init_random(9);
  auto bytes = serialize_model_state(state);
  // Corrupt one byte in several positions across the payload.
  for (std::size_t pos : {std::size_t{25}, bytes.size() / 2, bytes.size() - 1}) {
    auto corrupt = bytes;
    corrupt[pos] ^= std::byte{0x40};
    EXPECT_THROW(deserialize_model_state(corrupt, small_spec()), Error)
        << "corruption at byte " << pos << " was not detected";
  }
}

TEST(Serializer, BadMagicAndTruncationRejected) {
  ModelState state(small_spec());
  auto bytes = serialize_model_state(state);
  auto bad_magic = bytes;
  bad_magic[0] = std::byte{'X'};
  EXPECT_THROW(unframe(bad_magic), Error);
  EXPECT_THROW(unframe(std::span<const std::byte>(bytes.data(), 10)), Error);
  EXPECT_THROW(unframe(std::span<const std::byte>(bytes.data(), bytes.size() - 1)),
               Error);
}

TEST(Serializer, TypeTagsEnforced) {
  ModelState state(small_spec());
  const auto full = serialize_model_state(state);
  EXPECT_THROW(deserialize_diff(full), Error);
  EXPECT_THROW(deserialize_batch(full), Error);

  Tensor g(64);
  Xoshiro256 rng(1);
  ops::fill_normal(g.span(), rng, 1.0f);
  const auto diff = serialize_diff(TopKCompressor(0.1).compress(g.cspan(), 3));
  EXPECT_THROW(deserialize_model_state(diff, small_spec()), Error);
  const auto back = deserialize_diff(diff);
  EXPECT_EQ(back.iteration, 3u);
}

TEST(Serializer, BatchRoundTrip) {
  TopKCompressor comp(0.2);
  Tensor g(50);
  Xoshiro256 rng(2);
  BatchedGrad batch;
  batch.first_iteration = 4;
  batch.last_iteration = 5;
  for (std::uint64_t i = 4; i <= 5; ++i) {
    ops::fill_normal(g.span(), rng, 1.0f);
    batch.members.push_back(comp.compress(g.cspan(), i));
  }
  const auto back = deserialize_batch(serialize_batch(batch));
  EXPECT_EQ(back.members.size(), 2u);
  EXPECT_EQ(back.members[1], batch.members[1]);
}

// --- throttling -----------------------------------------------------------------

TEST(Bandwidth, TransferTimeFormula) {
  LinkSpec link{2.0e9, 1e-3};
  EXPECT_DOUBLE_EQ(link.transfer_time(2'000'000'000ull), 1.0 + 1e-3);
  EXPECT_DOUBLE_EQ(link.transfer_time(0), 1e-3);
}

TEST(Throttler, ModeledTimeAccumulates) {
  Throttler throttler({1.0e9, 0.0}, /*time_scale=*/1e-9);  // ~no real sleep
  throttler.acquire(500'000'000ull);
  throttler.acquire(250'000'000ull);
  EXPECT_NEAR(throttler.busy_time(), 0.75, 1e-9);
  EXPECT_EQ(throttler.total_bytes(), 750'000'000ull);
}

TEST(Throttler, ActuallyDelaysAtScale) {
  Throttler throttler({1.0e6, 0.0}, /*time_scale=*/1.0);  // 1 MB/s
  Stopwatch sw;
  throttler.acquire(30'000);  // 30 ms modeled
  EXPECT_GE(sw.elapsed_sec(), 0.025);
}

TEST(Throttler, SerializesConcurrentTransfers) {
  // Two concurrent 25 ms transfers over one link must take ~50 ms total.
  Throttler throttler({1.0e6, 0.0}, 1.0);
  Stopwatch sw;
  std::thread a([&throttler] { throttler.acquire(25'000); });
  std::thread b([&throttler] { throttler.acquire(25'000); });
  a.join();
  b.join();
  EXPECT_GE(sw.elapsed_sec(), 0.045);
}

TEST(ThrottledStorage, DelegatesAndThrottles) {
  auto mem = std::make_shared<MemStorage>();
  ThrottledStorage throttled(mem, {1.0e9, 0.0}, /*time_scale=*/1e-9);
  throttled.write("k", bytes_of("data"));
  EXPECT_TRUE(mem->exists("k"));
  EXPECT_EQ(*throttled.read("k"), bytes_of("data"));
  EXPECT_GT(throttled.busy_time(), 0.0);
  throttled.remove("k");
  EXPECT_FALSE(throttled.exists("k"));
}

// --- async writer ------------------------------------------------------------------

TEST(AsyncWriter, WritesEverythingOnFlush) {
  auto mem = std::make_shared<MemStorage>();
  AsyncWriter writer(mem);
  for (int i = 0; i < 50; ++i) {
    writer.submit("key" + std::to_string(i), bytes_of(std::to_string(i)));
  }
  writer.flush();
  EXPECT_EQ(writer.completed_jobs(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(*mem->read("key" + std::to_string(i)), bytes_of(std::to_string(i)));
  }
}

TEST(AsyncWriter, OnDoneCallbackRuns) {
  auto mem = std::make_shared<MemStorage>();
  AsyncWriter writer(mem);
  std::atomic<int> done{0};
  writer.submit("k", bytes_of("v"), [&done] { ++done; });
  writer.flush();
  EXPECT_EQ(done.load(), 1);
}

TEST(AsyncWriter, BoundedQueueTrySubmit) {
  auto mem = std::make_shared<MemStorage>();
  auto throttled = std::make_shared<ThrottledStorage>(mem, LinkSpec{1.0e6, 0.0}, 1.0);
  AsyncWriter writer(throttled, /*max_pending=*/1);
  // First job occupies the writer (slow link); the queue holds one more.
  ASSERT_TRUE(writer.try_submit("a", std::vector<std::byte>(20'000)));
  bool saturated = false;
  for (int i = 0; i < 20 && !saturated; ++i) {
    saturated = !writer.try_submit("b" + std::to_string(i),
                                   std::vector<std::byte>(20'000));
  }
  EXPECT_TRUE(saturated);
  writer.flush();
}

TEST(AsyncWriter, ShutdownDrains) {
  auto mem = std::make_shared<MemStorage>();
  {
    AsyncWriter writer(mem);
    for (int i = 0; i < 10; ++i) {
      writer.submit("k" + std::to_string(i), bytes_of("x"));
    }
  }  // destructor drains
  EXPECT_EQ(mem->list().size(), 10u);
}

TEST(AsyncWriter, RejectsAfterShutdown) {
  auto mem = std::make_shared<MemStorage>();
  AsyncWriter writer(mem);
  writer.shutdown();
  EXPECT_FALSE(writer.submit("k", bytes_of("x")));
}

}  // namespace
}  // namespace lowdiff

namespace lowdiff {
namespace {

/// Backend that fails every write — exercises the async writer's error path.
class FailingStorage final : public StorageBackend {
 public:
  Status write(const std::string& key, std::span<const std::byte>) override {
    return Status(ErrorCode::kUnavailable, "disk on fire: " + key);
  }
  Result<std::vector<std::byte>> read(const std::string& key) const override {
    return Result<std::vector<std::byte>>(ErrorCode::kNotFound, key);
  }
  bool exists(const std::string&) const override { return false; }
  void remove(const std::string&) override {}
  std::vector<std::string> list() const override { return {}; }
  StorageStats stats() const override { return {}; }
};

AsyncWriter::Options fast_retry_options() {
  AsyncWriter::Options opt;
  opt.retry.base_delay_sec = 1e-6;
  opt.retry.max_delay_sec = 1e-5;
  return opt;
}

TEST(AsyncWriter, SurvivesBackendFailures) {
  auto failing = std::make_shared<FailingStorage>();
  AsyncWriter writer(failing, fast_retry_options());
  set_log_level(LogLevel::kOff);  // silence the expected error lines
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(writer.submit("k" + std::to_string(i), std::vector<std::byte>(8)));
  }
  writer.flush();  // must not hang or crash
  EXPECT_EQ(writer.completed_jobs(), 5u);
  EXPECT_EQ(writer.failed_jobs(), 5u);
  // kUnavailable is retryable: every job burned its full retry budget.
  const auto budget =
      static_cast<std::uint64_t>(fast_retry_options().retry.max_attempts - 1);
  EXPECT_EQ(writer.retries(), 5u * budget);
  set_log_level(LogLevel::kWarn);
}

TEST(AsyncWriter, OnDoneSkippedOnFailure) {
  auto failing = std::make_shared<FailingStorage>();
  AsyncWriter writer(failing, fast_retry_options());
  set_log_level(LogLevel::kOff);
  std::atomic<int> done{0};
  writer.submit("k", bytes_of("v"), [&done] { ++done; });
  writer.flush();
  EXPECT_EQ(done.load(), 0) << "on_done must not run for a failed write";
  set_log_level(LogLevel::kWarn);
}

TEST(FileStorage, NestedKeysAndRemoveMissing) {
  const auto dir = std::filesystem::temp_directory_path() / "lowdiff_nested";
  std::filesystem::remove_all(dir);
  FileStorage fs(dir);
  fs.write("a/b/c/deep", std::vector<std::byte>(3));
  EXPECT_EQ(fs.list(), std::vector<std::string>{"a/b/c/deep"});
  EXPECT_NO_THROW(fs.remove("not/there"));
  std::filesystem::remove_all(dir);
}

TEST(Serializer, EmptyKeyRejectedByFileStorage) {
  const auto dir = std::filesystem::temp_directory_path() / "lowdiff_empty";
  std::filesystem::remove_all(dir);
  FileStorage fs(dir);
  EXPECT_THROW(fs.write("", std::vector<std::byte>(1)), Error);
  std::filesystem::remove_all(dir);
}

// --- retry policy -------------------------------------------------------------

RetryPolicy fast_policy() {
  RetryPolicy p;
  p.base_delay_sec = 1e-6;
  p.max_delay_sec = 1e-5;
  return p;
}

TEST(RetryPolicy, DelayGrowsExponentiallyAndCaps) {
  RetryPolicy p;
  p.base_delay_sec = 1e-3;
  p.multiplier = 2.0;
  p.max_delay_sec = 4e-3;
  p.jitter = 0.5;
  Xoshiro256 rng(7);
  for (int retry = 0; retry < 8; ++retry) {
    double expected = p.base_delay_sec;
    for (int i = 0; i < retry; ++i) expected *= p.multiplier;
    expected = std::min(expected, p.max_delay_sec);
    const double d = p.delay_sec(retry, rng);
    EXPECT_GE(d, expected * (1.0 - p.jitter) - 1e-12) << "retry " << retry;
    EXPECT_LE(d, expected * (1.0 + p.jitter) + 1e-12) << "retry " << retry;
  }
}

TEST(RetryPolicy, ZeroJitterIsDeterministic) {
  RetryPolicy p;
  p.base_delay_sec = 2e-3;
  p.jitter = 0.0;
  Xoshiro256 rng(1);
  EXPECT_DOUBLE_EQ(p.delay_sec(0, rng), 2e-3);
  EXPECT_DOUBLE_EQ(p.delay_sec(1, rng), 4e-3);
}

TEST(RunWithRetry, SucceedsAfterTransientFailures) {
  Xoshiro256 rng(3);
  int calls = 0;
  std::uint64_t retries = 0;
  const Status s = run_with_retry(
      fast_policy(), rng,
      [&calls] {
        return ++calls < 3 ? Status(ErrorCode::kTransient, "blip") : Status{};
      },
      &retries);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
}

TEST(RunWithRetry, ExhaustsBudgetOnPersistentFailure) {
  Xoshiro256 rng(3);
  int calls = 0;
  std::uint64_t retries = 0;
  const Status s = run_with_retry(
      fast_policy(), rng,
      [&calls] {
        ++calls;
        return Status(ErrorCode::kUnavailable, "down");
      },
      &retries);
  EXPECT_EQ(s.code(), ErrorCode::kExhausted);
  EXPECT_EQ(calls, fast_policy().max_attempts);
  EXPECT_EQ(retries, static_cast<std::uint64_t>(fast_policy().max_attempts - 1));
}

TEST(RunWithRetry, NonRetryableReturnsImmediately) {
  Xoshiro256 rng(3);
  int calls = 0;
  const Status s = run_with_retry(fast_policy(), rng, [&calls] {
    ++calls;
    return Status(ErrorCode::kCorrupted, "bad crc");
  });
  EXPECT_EQ(s.code(), ErrorCode::kCorrupted);
  EXPECT_EQ(calls, 1);
}

// --- fault injection ----------------------------------------------------------

TEST(FaultInjection, DefaultSpecIsTransparent) {
  auto mem = std::make_shared<MemStorage>();
  FaultInjectingStorage faulty(mem, FaultSpec{});
  EXPECT_TRUE(faulty.write("k", bytes_of("v")).ok());
  ASSERT_TRUE(faulty.read("k").has_value());
  EXPECT_EQ(*faulty.read("k"), bytes_of("v"));
  EXPECT_EQ(faulty.fault_stats().total(), 0u);
}

TEST(FaultInjection, DeterministicGivenSeed) {
  FaultSpec spec;
  spec.write_error_rate = 0.3;
  spec.seed = 99;
  std::vector<ErrorCode> first, second;
  for (auto* codes : {&first, &second}) {
    FaultInjectingStorage faulty(std::make_shared<MemStorage>(), spec);
    for (int i = 0; i < 100; ++i) {
      codes->push_back(faulty.write("k" + std::to_string(i), bytes_of("v")).code());
    }
  }
  EXPECT_EQ(first, second);
  EXPECT_TRUE(std::count(first.begin(), first.end(), ErrorCode::kTransient) > 0);
  EXPECT_TRUE(std::count(first.begin(), first.end(), ErrorCode::kOk) > 0);
}

TEST(FaultInjection, WriteErrorLeavesNothingBehind) {
  FaultSpec spec;
  spec.write_error_rate = 1.0;
  auto mem = std::make_shared<MemStorage>();
  FaultInjectingStorage faulty(mem, spec);
  const Status s = faulty.write("k", bytes_of("data"));
  EXPECT_EQ(s.code(), ErrorCode::kTransient);
  EXPECT_TRUE(s.retryable());
  EXPECT_FALSE(mem->exists("k"));
  EXPECT_EQ(faulty.fault_stats().write_errors, 1u);
}

TEST(FaultInjection, TornWriteLeavesPartialPrefix) {
  FaultSpec spec;
  spec.torn_write_rate = 1.0;
  auto mem = std::make_shared<MemStorage>();
  FaultInjectingStorage faulty(mem, spec);
  const auto payload = std::vector<std::byte>(64, std::byte{0xAB});
  EXPECT_EQ(faulty.write("k", payload).code(), ErrorCode::kTransient);
  auto landed = mem->read("k");
  ASSERT_TRUE(landed.has_value());
  EXPECT_LT(landed->size(), payload.size());
  EXPECT_TRUE(std::equal(landed->begin(), landed->end(), payload.begin()));
  EXPECT_EQ(faulty.fault_stats().torn_writes, 1u);
}

TEST(FaultInjection, BitFlipIsSilent) {
  FaultSpec spec;
  spec.bit_flip_rate = 1.0;
  auto mem = std::make_shared<MemStorage>();
  FaultInjectingStorage faulty(mem, spec);
  const auto payload = std::vector<std::byte>(32, std::byte{0});
  EXPECT_TRUE(faulty.write("k", payload).ok()) << "bit flips must look like success";
  const auto landed = *mem->read("k");
  ASSERT_EQ(landed.size(), payload.size());
  int bits_differing = 0;
  for (std::size_t i = 0; i < landed.size(); ++i) {
    bits_differing += std::popcount(std::to_integer<unsigned>(landed[i]));
  }
  EXPECT_EQ(bits_differing, 1);
  EXPECT_EQ(faulty.fault_stats().bit_flips, 1u);
}

TEST(FaultInjection, ReadErrorsAndDisarm) {
  FaultSpec spec;
  spec.read_error_rate = 1.0;
  auto mem = std::make_shared<MemStorage>();
  FaultInjectingStorage faulty(mem, spec);
  ASSERT_TRUE(faulty.write("k", bytes_of("v")).ok());
  EXPECT_EQ(faulty.read("k").status().code(), ErrorCode::kTransient);
  faulty.set_armed(false);  // recovery phase reads cleanly
  ASSERT_TRUE(faulty.read("k").has_value());
  EXPECT_EQ(*faulty.read("k"), bytes_of("v"));
}

TEST(FaultInjection, LatencySpikeStalls) {
  FaultSpec spec;
  spec.latency_spike_rate = 1.0;
  spec.latency_spike_sec = 0.02;
  FaultInjectingStorage faulty(std::make_shared<MemStorage>(), spec);
  Stopwatch sw;
  EXPECT_TRUE(faulty.write("k", bytes_of("v")).ok());
  EXPECT_GE(sw.elapsed_sec(), 0.015);
  EXPECT_EQ(faulty.fault_stats().latency_spikes, 1u);
}

// --- atomic commit ------------------------------------------------------------

TEST(AtomicCommit, CommittedRoundTrip) {
  MemStorage mem;
  Xoshiro256 rng(1);
  std::uint64_t retries = 0;
  ASSERT_TRUE(
      committed_write(mem, "ckpt", bytes_of("payload"), fast_policy(), rng, &retries)
          .ok());
  EXPECT_EQ(retries, 0u);
  EXPECT_TRUE(is_committed(mem, "ckpt"));
  auto back = committed_read(mem, "ckpt", fast_policy(), rng);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, bytes_of("payload"));
}

TEST(AtomicCommit, UncommittedDataIsInvisible) {
  MemStorage mem;
  Xoshiro256 rng(1);
  mem.write("ckpt", bytes_of("torn and never committed"));
  EXPECT_FALSE(is_committed(mem, "ckpt"));
  EXPECT_EQ(committed_read(mem, "ckpt", fast_policy(), rng).status().code(),
            ErrorCode::kNotFound);
}

TEST(AtomicCommit, TornDataDetectedByLength) {
  MemStorage mem;
  Xoshiro256 rng(1);
  ASSERT_TRUE(committed_write(mem, "ckpt", bytes_of("full payload"), fast_policy(),
                              rng)
                  .ok());
  mem.write("ckpt", bytes_of("full"));  // data later torn down to a prefix
  EXPECT_EQ(committed_read(mem, "ckpt", fast_policy(), rng).status().code(),
            ErrorCode::kCorrupted);
}

TEST(AtomicCommit, BitFlipDetectedByCrc) {
  MemStorage mem;
  Xoshiro256 rng(1);
  auto payload = bytes_of("bits will rot");
  ASSERT_TRUE(committed_write(mem, "ckpt", payload, fast_policy(), rng).ok());
  payload[5] ^= std::byte{0x10};
  mem.write("ckpt", payload);  // same length, one bit flipped
  EXPECT_EQ(committed_read(mem, "ckpt", fast_policy(), rng).status().code(),
            ErrorCode::kCorrupted);
}

TEST(AtomicCommit, CorruptMarkerDetected) {
  MemStorage mem;
  Xoshiro256 rng(1);
  ASSERT_TRUE(committed_write(mem, "ckpt", bytes_of("x"), fast_policy(), rng).ok());
  mem.write(commit_marker_key("ckpt"), bytes_of("garbage marker"));
  EXPECT_EQ(committed_read(mem, "ckpt", fast_policy(), rng).status().code(),
            ErrorCode::kCorrupted);
}

TEST(AtomicCommit, MarkerKeysRoundTrip) {
  EXPECT_EQ(commit_marker_key("full/3"), "commit/full/3");
  EXPECT_TRUE(is_commit_marker("commit/full/3"));
  EXPECT_FALSE(is_commit_marker("full/3"));
  EXPECT_EQ(data_key_of_marker("commit/full/3"), "full/3");
}

TEST(AtomicCommit, RetriesThroughInjectedTransients) {
  FaultSpec spec;
  spec.write_error_rate = 0.4;
  spec.seed = 11;
  FaultInjectingStorage faulty(std::make_shared<MemStorage>(), spec);
  Xoshiro256 rng(5);
  RetryPolicy policy = fast_policy();
  policy.max_attempts = 12;
  std::uint64_t retries = 0;
  const Status s = committed_write(faulty, "ckpt", bytes_of("persist me"), policy,
                                   rng, &retries);
  ASSERT_TRUE(s.ok()) << s.to_string();
  EXPECT_GT(retries, 0u);
  auto back = committed_read(faulty, "ckpt", policy, rng);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, bytes_of("persist me"));
}

// --- async writer races -------------------------------------------------------

TEST(AsyncWriter, DefaultQueueIsBounded) {
  AsyncWriter writer(std::make_shared<MemStorage>());
  EXPECT_EQ(writer.max_pending(), AsyncWriter::kDefaultMaxPending);
  EXPECT_GT(writer.max_pending(), 0u) << "unbounded default is a foot-gun";
}

TEST(AsyncWriter, FlushDuringShutdownDoesNotHang) {
  auto mem = std::make_shared<MemStorage>();
  AsyncWriter writer(mem);
  std::atomic<std::uint64_t> accepted{0};
  std::thread submitter([&] {
    for (int i = 0; i < 200; ++i) {
      if (writer.submit("k" + std::to_string(i), bytes_of("x"))) {
        accepted.fetch_add(1);
      }
    }
  });
  std::thread flusher([&] {
    for (int i = 0; i < 50; ++i) writer.flush();
  });
  writer.shutdown();
  submitter.join();
  flusher.join();
  writer.flush();  // post-shutdown flush must return immediately
  EXPECT_EQ(writer.completed_jobs(), accepted.load());
  EXPECT_EQ(mem->list().size(), accepted.load());
}

TEST(AsyncWriter, SubmitAfterShutdownRace) {
  AsyncWriter writer(std::make_shared<MemStorage>());
  std::thread submitter([&] {
    for (int i = 0; i < 1000; ++i) {
      writer.submit("k" + std::to_string(i), bytes_of("x"));
    }
  });
  writer.shutdown();
  submitter.join();
  // Every accepted job completed; later submits were cleanly rejected.
  EXPECT_FALSE(writer.submit("late", bytes_of("x")));
  EXPECT_EQ(writer.failed_jobs(), 0u);
}

// --- canonical decorator stacking (storage/stacking.h) ----------------------
//
// The physical model is link-then-device: Throttled(FaultInjecting(Mem)).
// These tests pin the composition — reordering the decorators breaks them.

TEST(StorageStacking, TornWriteStillConsumesLinkBandwidth) {
  FaultSpec faults;
  faults.torn_write_rate = 1.0;
  auto stack =
      make_stacked_backend(LinkSpec{1e6, 0.0}, faults, /*time_scale=*/1e-9);
  const std::vector<std::byte> payload(50'000, std::byte{0xAB});

  EXPECT_FALSE(stack.root->write("full/0", payload).ok());
  EXPECT_EQ(stack.faults->fault_stats().torn_writes, 1u);
  // The bytes crossed the wire before the device tore them: full link
  // occupancy for the full object, even though only a prefix landed.
  EXPECT_NEAR(stack.root->busy_time(), 0.05, 1e-9);
  ASSERT_TRUE(stack.base->exists("full/0"));
  EXPECT_LT(stack.base->read("full/0")->size(), payload.size());
}

TEST(StorageStacking, LatencySpikeAddsToLinkTimeInsteadOfHidingInIt) {
  FaultSpec faults;
  faults.latency_spike_rate = 1.0;
  faults.latency_spike_sec = 20e-3;
  auto stack = make_stacked_backend(LinkSpec{1e9, 0.0}, faults, 1e-9);
  const std::vector<std::byte> payload(1024, std::byte{1});

  Stopwatch sw;
  ASSERT_TRUE(stack.root->write("k", payload).ok());
  // The device stall is real wall time *on top of* the link wait; stacked
  // the other way it would serialize before the token bucket and hide
  // inside the modeled occupancy.
  EXPECT_GE(sw.elapsed_sec(), 15e-3);
  EXPECT_EQ(stack.faults->fault_stats().latency_spikes, 1u);
  EXPECT_NEAR(stack.root->busy_time(), 1024 / 1e9, 1e-12);
}

TEST(StorageStacking, SilentBitFlipCaughtByCommittedRead) {
  FaultSpec faults;
  faults.bit_flip_rate = 1.0;
  auto stack = make_stacked_backend(LinkSpec{1e9, 0.0}, faults, 1e-9);
  const auto payload = bytes_of("synchronized gradient payload");

  // The device corrupts below the throttle but reports success...
  EXPECT_TRUE(stack.root->write("diff/1", payload).ok());
  EXPECT_EQ(stack.faults->fault_stats().bit_flips, 1u);
  // ...while the commit marker carries the CRC of the intended bytes
  // (set_armed stays reachable through the stack handles).
  stack.faults->set_armed(false);
  ASSERT_TRUE(stack.root
                  ->write(commit_marker_key("diff/1"),
                          make_commit_marker(payload))
                  .ok());

  Xoshiro256 rng(5);
  const auto read = committed_read(*stack.root, "diff/1", fast_policy(), rng);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), ErrorCode::kCorrupted);
}

TEST(StorageStacking, ReadPathChargesLinkOnlyForBytesReturned) {
  auto stack = make_stacked_backend(LinkSpec{1e6, 0.0}, {}, 1e-9);
  const std::vector<std::byte> payload(10'000, std::byte{7});
  ASSERT_TRUE(stack.root->write("full/0", payload).ok());
  const double after_write = stack.root->busy_time();
  EXPECT_NEAR(after_write, 0.01, 1e-9);

  // A successful read occupies the link for exactly the returned bytes —
  // the same transfer-time the recovery source-selection model charges.
  ASSERT_TRUE(stack.root->read("full/0").ok());
  EXPECT_NEAR(stack.root->busy_time() - after_write, 0.01, 1e-9);

  // Metadata operations and missing-key reads move no payload bytes.
  const double before_meta = stack.root->busy_time();
  EXPECT_TRUE(stack.root->exists("full/0"));
  EXPECT_FALSE(stack.root->exists("missing"));
  (void)stack.root->list();
  EXPECT_FALSE(stack.root->read("missing").ok());
  EXPECT_EQ(stack.root->busy_time(), before_meta);
}

TEST(StorageStacking, FailedReadCostsNoReadBandwidth) {
  FaultSpec faults;
  faults.read_error_rate = 1.0;
  auto stack = make_stacked_backend(LinkSpec{1e6, 0.0}, faults, 1e-9);
  stack.faults->set_armed(false);
  ASSERT_TRUE(
      stack.root->write("full/0", std::vector<std::byte>(4096, std::byte{1}))
          .ok());
  stack.faults->set_armed(true);

  const double before = stack.root->busy_time();
  const auto read = stack.root->read("full/0");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), ErrorCode::kTransient);
  // A clean device read error returns no bytes, so the link stays idle —
  // only possible with fault injection *below* the throttle.
  EXPECT_EQ(stack.root->busy_time(), before);
}

// --- pipelined writer over the canonical stack -------------------------------
//
// The persist pipeline must honor the same physical model the serial path
// is tested against above: faults fire under the throttle, deadlines sit
// on top of both.  These cases pin the pipeline × decorator composition;
// the pipeline-only invariants live in test_persist_pipeline.cpp.

std::size_t stack_marker_count(const MemStorage& base) {
  std::size_t n = 0;
  for (const auto& key : base.list()) {
    if (is_commit_marker(key)) ++n;
  }
  return n;
}

TEST(StorageStacking, PipelinedTornWritesChargeTheLinkAndCommitNothing) {
  FaultSpec faults;
  faults.torn_write_rate = 1.0;
  faults.seed = 41;
  auto stack = make_stacked_backend(LinkSpec{1e6, 0.0}, faults, 1e-9);
  set_log_level(LogLevel::kOff);  // every record legitimately logs its failure

  PipelinedWriter::Options opt;
  opt.spec.enabled = true;
  opt.spec.window = 4;
  opt.spec.records_per_sync = 2;
  opt.retry = fast_policy();
  opt.retry.max_attempts = 2;
  PipelinedWriter writer(stack.root, opt);
  for (int i = 0; i < 3; ++i) {
    writer.put("rec/" + std::to_string(i),
               ByteBuffer(std::vector<std::byte>(10'000, std::byte{0xAB})));
  }
  EXPECT_FALSE(writer.barrier().ok());

  // Every attempt pushed the full object across the wire before the device
  // tore it: 3 records × 2 attempts × 10 ms of link occupancy, exactly as
  // the serial path is charged.  Syncs move no payload bytes.
  EXPECT_EQ(stack.faults->fault_stats().torn_writes, 6u);
  EXPECT_NEAR(stack.root->busy_time(), 0.06, 1e-9);
  // I3 through the stack: torn prefixes landed on the device but not one
  // marker did — the records are absent, never torn.
  ASSERT_TRUE(stack.base->exists("rec/0"));
  EXPECT_EQ(stack_marker_count(*stack.base), 0u);
  set_log_level(LogLevel::kWarn);
}

TEST(StorageStacking, PipelinedSyncDeadlineFailsTheGroupBeforeAnyMarker) {
  // Link with a slow, real-time sync (20 ms wall) under a 4 ms sync
  // deadline: every group sync times out while data writes sail through.
  auto stack =
      make_stacked_backend(LinkSpec{1e12, 0.0, 0.02}, {}, /*time_scale=*/1.0);
  DeadlineSpec deadlines;
  deadlines.sync_deadline_sec = 0.004;
  auto guarded = std::make_shared<DeadlineStorage>(stack.root, deadlines);
  set_log_level(LogLevel::kOff);

  PipelinedWriter::Options opt;
  opt.spec.enabled = true;
  opt.spec.window = 4;
  opt.spec.records_per_sync = 2;
  opt.retry = fast_policy();
  opt.retry.max_attempts = 1;  // one 20 ms stall per group is plenty
  PipelinedWriter writer(guarded, opt);
  std::vector<Status> results;
  for (int i = 0; i < 4; ++i) {
    writer.put("rec/" + std::to_string(i),
               ByteBuffer(std::vector<std::byte>(512, std::byte{0x5A})),
               [&results](const Status& st) { results.push_back(st); });
  }
  EXPECT_FALSE(writer.barrier().ok());

  // Both group syncs converted to kTimeout; the data is on the device but
  // without a covering sync no record may surface a marker (I1/I3 under a
  // deadline, not just under injected faults).
  EXPECT_GE(guarded->timeouts(), 2u);
  ASSERT_EQ(results.size(), 4u);
  for (const auto& st : results) EXPECT_FALSE(st.ok());
  EXPECT_TRUE(stack.base->exists("rec/0"));
  EXPECT_EQ(stack_marker_count(*stack.base), 0u);
  set_log_level(LogLevel::kWarn);
}

TEST(StorageStacking, PipelinedBytesBitExactThroughTheFullStack) {
  // Serial committed reference on a bare MemStorage...
  auto serial_mem = std::make_shared<MemStorage>();
  Xoshiro256 rng(9);
  std::vector<std::pair<std::string, std::vector<std::byte>>> records;
  Xoshiro256 fill(1234);
  for (int i = 0; i < 6; ++i) {
    std::vector<std::byte> bytes(301 * (i + 1));
    for (auto& b : bytes) b = std::byte(fill() & 0xFF);
    records.emplace_back("rec/" + std::to_string(i), bytes);
  }
  for (const auto& [key, bytes] : records) {
    ASSERT_TRUE(committed_write(*serial_mem, key, bytes, fast_policy(), rng).ok());
  }

  // ...vs the pipeline pushing the same records through the whole
  // Deadline(Throttled(FaultInjecting(Mem))) stack with generous limits.
  auto stack = make_stacked_backend(LinkSpec{1e9, 0.0}, {}, 1e-9);
  DeadlineSpec deadlines;
  deadlines.write_deadline_sec = 10.0;
  deadlines.sync_deadline_sec = 10.0;
  auto guarded = std::make_shared<DeadlineStorage>(stack.root, deadlines);
  {
    PipelinedWriter::Options opt;
    opt.spec.enabled = true;
    opt.spec.window = 4;
    opt.spec.records_per_sync = 2;
    opt.spec.chunk_bytes = 256;
    opt.retry = fast_policy();
    PipelinedWriter writer(guarded, opt);
    for (const auto& [key, bytes] : records) writer.put(key, ByteBuffer(bytes));
    EXPECT_TRUE(writer.barrier().ok());
  }

  // I4 survives the decorators: byte-identical artifacts, markers included.
  ASSERT_EQ(stack.base->list(), serial_mem->list());
  for (const auto& key : serial_mem->list()) {
    EXPECT_EQ(*stack.base->read(key), *serial_mem->read(key)) << key;
  }
  EXPECT_EQ(guarded->timeouts(), 0u);
}

TEST(AsyncWriter, CommittedModeWritesMarkers) {
  auto mem = std::make_shared<MemStorage>();
  AsyncWriter::Options opt = fast_retry_options();
  opt.committed = true;
  {
    AsyncWriter writer(mem, opt);
    writer.submit("full/0", bytes_of("state"));
    writer.flush();
  }
  EXPECT_TRUE(is_committed(*mem, "full/0"));
  Xoshiro256 rng(1);
  EXPECT_EQ(*committed_read(*mem, "full/0", fast_policy(), rng), bytes_of("state"));
}

}  // namespace
}  // namespace lowdiff
