#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <thread>

#include "common/rng.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "compress/topk.h"
#include "model/model_state.h"
#include "storage/async_writer.h"
#include "storage/bandwidth.h"
#include "storage/file_storage.h"
#include "storage/mem_storage.h"
#include "storage/serializer.h"
#include "storage/throttled.h"
#include "tensor/ops.h"

namespace lowdiff {
namespace {

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

class BackendSuite : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (GetParam() == "mem") {
      backend_ = std::make_shared<MemStorage>();
    } else {
      dir_ = std::filesystem::temp_directory_path() /
             ("lowdiff_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name());
      std::filesystem::remove_all(dir_);
      backend_ = std::make_shared<FileStorage>(dir_);
    }
  }
  void TearDown() override {
    backend_.reset();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  std::shared_ptr<StorageBackend> backend_;
  std::filesystem::path dir_;
};

TEST_P(BackendSuite, WriteReadRoundTrip) {
  backend_->write("a/key1", bytes_of("hello"));
  auto back = backend_->read("a/key1");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, bytes_of("hello"));
}

TEST_P(BackendSuite, OverwriteReplaces) {
  backend_->write("k", bytes_of("one"));
  backend_->write("k", bytes_of("twotwo"));
  EXPECT_EQ(*backend_->read("k"), bytes_of("twotwo"));
}

TEST_P(BackendSuite, MissingKeyIsNullopt) {
  EXPECT_FALSE(backend_->read("missing").has_value());
  EXPECT_FALSE(backend_->exists("missing"));
}

TEST_P(BackendSuite, RemoveDeletes) {
  backend_->write("k", bytes_of("x"));
  EXPECT_TRUE(backend_->exists("k"));
  backend_->remove("k");
  EXPECT_FALSE(backend_->exists("k"));
}

TEST_P(BackendSuite, ListIsSorted) {
  backend_->write("b/2", bytes_of("x"));
  backend_->write("a/1", bytes_of("y"));
  backend_->write("c/3", bytes_of("z"));
  const auto keys = backend_->list();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST_P(BackendSuite, StatsAccumulate) {
  backend_->write("k", bytes_of("12345"));
  backend_->read("k");
  const auto stats = backend_->stats();
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.bytes_written, 5u);
  EXPECT_EQ(stats.reads, 1u);
  EXPECT_EQ(stats.bytes_read, 5u);
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendSuite, ::testing::Values("mem", "file"),
                         [](const auto& info) { return info.param; });

TEST(MemStorage, ResidentBytesAndClear) {
  MemStorage mem;
  mem.write("a", bytes_of("1234"));
  mem.write("b", bytes_of("56"));
  EXPECT_EQ(mem.resident_bytes(), 6u);
  mem.clear();  // hardware failure: CPU memory lost
  EXPECT_EQ(mem.resident_bytes(), 0u);
  EXPECT_FALSE(mem.exists("a"));
}

TEST(FileStorage, SanitizesHostileKeys) {
  const auto dir = std::filesystem::temp_directory_path() / "lowdiff_sanitize";
  std::filesystem::remove_all(dir);
  FileStorage fs(dir);
  EXPECT_THROW(fs.write("../escape", bytes_of("x")), Error);
  fs.write("weird key!@#", bytes_of("ok"));
  EXPECT_TRUE(fs.read("weird key!@#").has_value());
  std::filesystem::remove_all(dir);
}

// --- serializer ---------------------------------------------------------------

ModelSpec small_spec() {
  ModelSpec spec;
  spec.name = "s";
  spec.layers = {{"w", {16, 4}}, {"b", {16}}};
  return spec;
}

TEST(Serializer, ModelStateRoundTripBitExact) {
  ModelState state(small_spec());
  state.init_random(5);
  state.set_step(321);
  const auto bytes = serialize_model_state(state);
  const auto back = deserialize_model_state(bytes, small_spec());
  EXPECT_TRUE(state.bit_equal(back));
}

TEST(Serializer, ModelStateSpecMismatchRejected) {
  ModelState state(small_spec());
  const auto bytes = serialize_model_state(state);
  ModelSpec other;
  other.layers = {{"w", {8, 4}}};
  EXPECT_THROW(deserialize_model_state(bytes, other), Error);
}

TEST(Serializer, CrcDetectsEveryCorruptedRegion) {
  ModelState state(small_spec());
  state.init_random(9);
  auto bytes = serialize_model_state(state);
  // Corrupt one byte in several positions across the payload.
  for (std::size_t pos : {std::size_t{25}, bytes.size() / 2, bytes.size() - 1}) {
    auto corrupt = bytes;
    corrupt[pos] ^= std::byte{0x40};
    EXPECT_THROW(deserialize_model_state(corrupt, small_spec()), Error)
        << "corruption at byte " << pos << " was not detected";
  }
}

TEST(Serializer, BadMagicAndTruncationRejected) {
  ModelState state(small_spec());
  auto bytes = serialize_model_state(state);
  auto bad_magic = bytes;
  bad_magic[0] = std::byte{'X'};
  EXPECT_THROW(unframe(bad_magic), Error);
  EXPECT_THROW(unframe(std::span<const std::byte>(bytes.data(), 10)), Error);
  EXPECT_THROW(unframe(std::span<const std::byte>(bytes.data(), bytes.size() - 1)),
               Error);
}

TEST(Serializer, TypeTagsEnforced) {
  ModelState state(small_spec());
  const auto full = serialize_model_state(state);
  EXPECT_THROW(deserialize_diff(full), Error);
  EXPECT_THROW(deserialize_batch(full), Error);

  Tensor g(64);
  Xoshiro256 rng(1);
  ops::fill_normal(g.span(), rng, 1.0f);
  const auto diff = serialize_diff(TopKCompressor(0.1).compress(g.cspan(), 3));
  EXPECT_THROW(deserialize_model_state(diff, small_spec()), Error);
  const auto back = deserialize_diff(diff);
  EXPECT_EQ(back.iteration, 3u);
}

TEST(Serializer, BatchRoundTrip) {
  TopKCompressor comp(0.2);
  Tensor g(50);
  Xoshiro256 rng(2);
  BatchedGrad batch;
  batch.first_iteration = 4;
  batch.last_iteration = 5;
  for (std::uint64_t i = 4; i <= 5; ++i) {
    ops::fill_normal(g.span(), rng, 1.0f);
    batch.members.push_back(comp.compress(g.cspan(), i));
  }
  const auto back = deserialize_batch(serialize_batch(batch));
  EXPECT_EQ(back.members.size(), 2u);
  EXPECT_EQ(back.members[1], batch.members[1]);
}

// --- throttling -----------------------------------------------------------------

TEST(Bandwidth, TransferTimeFormula) {
  LinkSpec link{2.0e9, 1e-3};
  EXPECT_DOUBLE_EQ(link.transfer_time(2'000'000'000ull), 1.0 + 1e-3);
  EXPECT_DOUBLE_EQ(link.transfer_time(0), 1e-3);
}

TEST(Throttler, ModeledTimeAccumulates) {
  Throttler throttler({1.0e9, 0.0}, /*time_scale=*/1e-9);  // ~no real sleep
  throttler.acquire(500'000'000ull);
  throttler.acquire(250'000'000ull);
  EXPECT_NEAR(throttler.busy_time(), 0.75, 1e-9);
  EXPECT_EQ(throttler.total_bytes(), 750'000'000ull);
}

TEST(Throttler, ActuallyDelaysAtScale) {
  Throttler throttler({1.0e6, 0.0}, /*time_scale=*/1.0);  // 1 MB/s
  Stopwatch sw;
  throttler.acquire(30'000);  // 30 ms modeled
  EXPECT_GE(sw.elapsed_sec(), 0.025);
}

TEST(Throttler, SerializesConcurrentTransfers) {
  // Two concurrent 25 ms transfers over one link must take ~50 ms total.
  Throttler throttler({1.0e6, 0.0}, 1.0);
  Stopwatch sw;
  std::thread a([&throttler] { throttler.acquire(25'000); });
  std::thread b([&throttler] { throttler.acquire(25'000); });
  a.join();
  b.join();
  EXPECT_GE(sw.elapsed_sec(), 0.045);
}

TEST(ThrottledStorage, DelegatesAndThrottles) {
  auto mem = std::make_shared<MemStorage>();
  ThrottledStorage throttled(mem, {1.0e9, 0.0}, /*time_scale=*/1e-9);
  throttled.write("k", bytes_of("data"));
  EXPECT_TRUE(mem->exists("k"));
  EXPECT_EQ(*throttled.read("k"), bytes_of("data"));
  EXPECT_GT(throttled.busy_time(), 0.0);
  throttled.remove("k");
  EXPECT_FALSE(throttled.exists("k"));
}

// --- async writer ------------------------------------------------------------------

TEST(AsyncWriter, WritesEverythingOnFlush) {
  auto mem = std::make_shared<MemStorage>();
  AsyncWriter writer(mem);
  for (int i = 0; i < 50; ++i) {
    writer.submit("key" + std::to_string(i), bytes_of(std::to_string(i)));
  }
  writer.flush();
  EXPECT_EQ(writer.completed_jobs(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(*mem->read("key" + std::to_string(i)), bytes_of(std::to_string(i)));
  }
}

TEST(AsyncWriter, OnDoneCallbackRuns) {
  auto mem = std::make_shared<MemStorage>();
  AsyncWriter writer(mem);
  std::atomic<int> done{0};
  writer.submit("k", bytes_of("v"), [&done] { ++done; });
  writer.flush();
  EXPECT_EQ(done.load(), 1);
}

TEST(AsyncWriter, BoundedQueueTrySubmit) {
  auto mem = std::make_shared<MemStorage>();
  auto throttled = std::make_shared<ThrottledStorage>(mem, LinkSpec{1.0e6, 0.0}, 1.0);
  AsyncWriter writer(throttled, /*max_pending=*/1);
  // First job occupies the writer (slow link); the queue holds one more.
  ASSERT_TRUE(writer.try_submit("a", std::vector<std::byte>(20'000)));
  bool saturated = false;
  for (int i = 0; i < 20 && !saturated; ++i) {
    saturated = !writer.try_submit("b" + std::to_string(i),
                                   std::vector<std::byte>(20'000));
  }
  EXPECT_TRUE(saturated);
  writer.flush();
}

TEST(AsyncWriter, ShutdownDrains) {
  auto mem = std::make_shared<MemStorage>();
  {
    AsyncWriter writer(mem);
    for (int i = 0; i < 10; ++i) {
      writer.submit("k" + std::to_string(i), bytes_of("x"));
    }
  }  // destructor drains
  EXPECT_EQ(mem->list().size(), 10u);
}

TEST(AsyncWriter, RejectsAfterShutdown) {
  auto mem = std::make_shared<MemStorage>();
  AsyncWriter writer(mem);
  writer.shutdown();
  EXPECT_FALSE(writer.submit("k", bytes_of("x")));
}

}  // namespace
}  // namespace lowdiff

namespace lowdiff {
namespace {

/// Backend that fails every write — exercises the async writer's error path.
class FailingStorage final : public StorageBackend {
 public:
  void write(const std::string&, std::span<const std::byte>) override {
    throw Error("disk on fire", std::source_location::current());
  }
  std::optional<std::vector<std::byte>> read(const std::string&) const override {
    return std::nullopt;
  }
  bool exists(const std::string&) const override { return false; }
  void remove(const std::string&) override {}
  std::vector<std::string> list() const override { return {}; }
  StorageStats stats() const override { return {}; }
};

TEST(AsyncWriter, SurvivesBackendFailures) {
  auto failing = std::make_shared<FailingStorage>();
  AsyncWriter writer(failing);
  set_log_level(LogLevel::kOff);  // silence the expected error lines
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(writer.submit("k" + std::to_string(i), std::vector<std::byte>(8)));
  }
  writer.flush();  // must not hang or crash
  EXPECT_EQ(writer.completed_jobs(), 5u);
  set_log_level(LogLevel::kWarn);
}

TEST(FileStorage, NestedKeysAndRemoveMissing) {
  const auto dir = std::filesystem::temp_directory_path() / "lowdiff_nested";
  std::filesystem::remove_all(dir);
  FileStorage fs(dir);
  fs.write("a/b/c/deep", std::vector<std::byte>(3));
  EXPECT_EQ(fs.list(), std::vector<std::string>{"a/b/c/deep"});
  EXPECT_NO_THROW(fs.remove("not/there"));
  std::filesystem::remove_all(dir);
}

TEST(Serializer, EmptyKeyRejectedByFileStorage) {
  const auto dir = std::filesystem::temp_directory_path() / "lowdiff_empty";
  std::filesystem::remove_all(dir);
  FileStorage fs(dir);
  EXPECT_THROW(fs.write("", std::vector<std::byte>(1)), Error);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace lowdiff
