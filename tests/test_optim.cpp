#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "model/model_state.h"
#include "optim/adam.h"
#include "optim/sgd.h"
#include "tensor/ops.h"

namespace lowdiff {
namespace {

ModelSpec flat_spec(std::size_t n) {
  ModelSpec spec;
  spec.name = "flat";
  spec.layers = {{"w", {n}}};
  return spec;
}

TEST(Adam, MatchesReferenceFormula) {
  const AdamConfig cfg{.lr = 0.1f, .beta1 = 0.9f, .beta2 = 0.999f, .eps = 1e-8f};
  Adam adam(cfg);
  ModelState state(flat_spec(1));
  state.params()[0] = 1.0f;
  const float g = 0.5f;

  adam.step(state, std::vector<float>{g});

  const float m = (1 - cfg.beta1) * g;
  const float v = (1 - cfg.beta2) * g * g;
  const float mhat = m / (1 - cfg.beta1);
  const float vhat = v / (1 - cfg.beta2);
  const float expected = 1.0f - cfg.lr * mhat / (std::sqrt(vhat) + cfg.eps);
  EXPECT_FLOAT_EQ(state.params()[0], expected);
  EXPECT_FLOAT_EQ(state.moment1()[0], m);
  EXPECT_FLOAT_EQ(state.moment2()[0], v);
  EXPECT_EQ(state.step(), 1u);
}

TEST(Adam, DeterministicAcrossRuns) {
  Adam adam;
  ModelState a(flat_spec(64)), b(flat_spec(64));
  a.init_random(3);
  b.init_random(3);
  Xoshiro256 rng(5);
  Tensor grad(64);
  for (int i = 0; i < 20; ++i) {
    ops::fill_normal(grad.span(), rng, 1.0f);
    adam.step(a, grad.cspan());
  }
  Xoshiro256 rng2(5);
  for (int i = 0; i < 20; ++i) {
    ops::fill_normal(grad.span(), rng2, 1.0f);
    adam.step(b, grad.cspan());
  }
  EXPECT_TRUE(a.bit_equal(b));
}

/// Property: slice-wise application over any partition == one dense step,
/// bit-for-bit — the invariant LowDiff+'s layer-wise CPU update depends on.
class AdamSlices : public ::testing::TestWithParam<int> {};

TEST_P(AdamSlices, SliceUpdatesEqualDenseUpdate) {
  const int pieces = GetParam();
  const std::size_t n = 97;
  Adam adam;
  ModelState dense(flat_spec(n)), sliced(flat_spec(n));
  dense.init_random(11);
  sliced.init_random(11);

  Xoshiro256 rng(77);
  Tensor grad(n);
  for (int iter = 0; iter < 5; ++iter) {
    ops::fill_normal(grad.span(), rng, 0.3f);
    adam.step(dense, grad.cspan());

    const std::size_t per = (n + pieces - 1) / pieces;
    for (int p = 0; p < pieces; ++p) {
      const std::size_t lo = p * per;
      if (lo >= n) break;
      const std::size_t hi = std::min(n, lo + per);
      adam.step_slice(sliced, lo, grad.cspan().subspan(lo, hi - lo));
    }
    adam.finish_partial_step(sliced);
    ASSERT_TRUE(dense.bit_equal(sliced)) << "iteration " << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Partitions, AdamSlices, ::testing::Values(1, 2, 3, 7, 97));

TEST(Adam, SliceOutOfRangeThrows) {
  Adam adam;
  ModelState state(flat_spec(10));
  std::vector<float> grad(5, 0.0f);
  EXPECT_THROW(adam.step_slice(state, 6, grad), Error);
}

TEST(Adam, GradientSizeMismatchThrows) {
  Adam adam;
  ModelState state(flat_spec(10));
  std::vector<float> grad(9, 0.0f);
  EXPECT_THROW(adam.step(state, grad), Error);
}

TEST(Adam, CloneKeepsConfig) {
  Adam adam(AdamConfig{.lr = 0.42f});
  auto copy = adam.clone();
  EXPECT_EQ(copy->name(), "Adam");
  auto* as_adam = dynamic_cast<Adam*>(copy.get());
  ASSERT_NE(as_adam, nullptr);
  EXPECT_FLOAT_EQ(as_adam->config().lr, 0.42f);
}

TEST(Sgd, PlainStep) {
  Sgd sgd(SgdConfig{.lr = 0.5f, .momentum = 0.0f});
  ModelState state(flat_spec(2));
  state.params()[0] = 1.0f;
  state.params()[1] = 2.0f;
  sgd.step(state, std::vector<float>{1.0f, -2.0f});
  EXPECT_FLOAT_EQ(state.params()[0], 0.5f);
  EXPECT_FLOAT_EQ(state.params()[1], 3.0f);
  EXPECT_EQ(state.moment1()[0], 0.0f);  // no momentum buffer touched
  EXPECT_EQ(state.step(), 1u);
}

TEST(Sgd, MomentumAccumulates) {
  Sgd sgd(SgdConfig{.lr = 1.0f, .momentum = 0.5f});
  ModelState state(flat_spec(1));
  sgd.step(state, std::vector<float>{1.0f});
  EXPECT_FLOAT_EQ(state.params()[0], -1.0f);   // buf = 1
  sgd.step(state, std::vector<float>{1.0f});
  EXPECT_FLOAT_EQ(state.params()[0], -2.5f);   // buf = 1.5
  EXPECT_FLOAT_EQ(state.moment1()[0], 1.5f);
  EXPECT_EQ(sgd.name(), "SGD-momentum");
}

TEST(Sgd, StepDeltaIsAdditiveWithoutMomentum) {
  // Plain SGD deltas compose additively: applying g1 then g2 equals
  // applying (g1 + g2) — the property the parallel-additive recovery path
  // relies on.
  Sgd sgd(SgdConfig{.lr = 0.3f, .momentum = 0.0f});
  ModelState sequential(flat_spec(8)), merged(flat_spec(8));
  sequential.init_random(2);
  merged.init_random(2);

  Xoshiro256 rng(6);
  Tensor g1(8), g2(8), sum(8);
  ops::fill_normal(g1.span(), rng, 1.0f);
  ops::fill_normal(g2.span(), rng, 1.0f);
  ops::add(g1.cspan(), g2.cspan(), sum.span());

  sgd.step(sequential, g1.cspan());
  sgd.step(sequential, g2.cspan());
  sgd.step(merged, sum.cspan());

  EXPECT_LT(ops::max_abs_diff(sequential.params().cspan(), merged.params().cspan()),
            1e-6f);
}

TEST(Adam, StepsAreNotAdditive) {
  // The same experiment with Adam must NOT commute — this is why LowDiff's
  // recovery replays differentials in order for stateful optimizers.
  Adam adam;
  ModelState sequential(flat_spec(8)), merged(flat_spec(8));
  sequential.init_random(2);
  merged.init_random(2);

  Xoshiro256 rng(6);
  Tensor g1(8), g2(8), sum(8);
  ops::fill_normal(g1.span(), rng, 1.0f);
  ops::fill_normal(g2.span(), rng, 1.0f);
  ops::add(g1.cspan(), g2.cspan(), sum.span());

  adam.step(sequential, g1.cspan());
  adam.step(sequential, g2.cspan());
  adam.step(merged, sum.cspan());

  EXPECT_GT(ops::max_abs_diff(sequential.params().cspan(), merged.params().cspan()),
            1e-6f);
}

}  // namespace
}  // namespace lowdiff
