/// \file test_datapath.cpp
/// The parallel zero-copy checkpoint datapath's correctness contract:
/// chunk-parallel compression is bit-identical to serial for every pool
/// size, the k-way merge reproduces the pairwise reference byte for byte,
/// pooled serialization emits the exact stream the vector forms do, and
/// BufferPool/ByteBuffer obey their lifetime and aliasing rules.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "common/buffer_pool.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "compress/dense.h"
#include "compress/merge.h"
#include "compress/quant8.h"
#include "compress/randomk.h"
#include "compress/topk.h"
#include "core/trainer.h"
#include "model/model_state.h"
#include "storage/async_writer.h"
#include "storage/mem_storage.h"
#include "storage/serializer.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace lowdiff {
namespace {

Tensor random_tensor(std::size_t n, std::uint64_t seed) {
  Tensor t(n);
  Xoshiro256 rng(seed);
  ops::fill_normal(t.span(), rng, 1.0f);
  return t;
}

/// Many repeated magnitudes — the adversarial case for top-k selection,
/// where the index tie-break decides the winning set.
Tensor tie_heavy_tensor(std::size_t n, std::uint64_t seed) {
  static constexpr float kLevels[] = {0.0f, 0.5f, -0.5f, 1.0f, -1.0f, 2.0f};
  Tensor t(n);
  Xoshiro256 rng(seed);
  auto s = t.span();
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = kLevels[rng.uniform_below(std::size(kLevels))];
  }
  return t;
}

std::vector<std::unique_ptr<Compressor>> all_compressors(std::uint64_t seed) {
  std::vector<std::unique_ptr<Compressor>> comps;
  comps.push_back(std::make_unique<TopKCompressor>(0.01));
  comps.push_back(std::make_unique<RandomKCompressor>(0.01, seed));
  comps.push_back(std::make_unique<Quant8Compressor>());
  comps.push_back(std::make_unique<DenseCompressor>());
  return comps;
}

// The chunk-parallel path engages at n >= 2 * 32768; both sizes below and
// above, odd on purpose so chunk boundaries never divide evenly.
constexpr std::size_t kSmallN = 4097;
constexpr std::size_t kLargeN = (std::size_t{1} << 17) + 1;  // 131073

TEST(ParallelCompress, BitIdenticalForEveryPoolSize) {
  ThreadPool pool1(1), pool2(2), pool3(3), pool8(8);
  ThreadPool* pools[] = {nullptr, &pool1, &pool2, &pool3, &pool8};
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    for (std::size_t n : {kSmallN, kLargeN}) {
      const auto grad = random_tensor(n, seed);
      for (auto& comp : all_compressors(seed)) {
        comp->set_thread_pool(nullptr);
        const auto serial = comp->compress(grad.cspan(), seed);
        const auto serial_bytes = serial.serialize();
        for (ThreadPool* pool : pools) {
          comp->set_thread_pool(pool);
          const auto parallel = comp->compress(grad.cspan(), seed);
          EXPECT_EQ(parallel, serial)
              << comp->name() << " n=" << n << " seed=" << seed
              << " pool=" << (pool ? pool->size() : 0);
          EXPECT_EQ(parallel.serialize(), serial_bytes);
        }
      }
    }
  }
}

TEST(ParallelCompress, TopKTieHeavyInputIsDeterministic) {
  // With thousands of equal magnitudes the selected set is decided purely
  // by the index tie-break; every chunking must agree with serial.
  ThreadPool pool2(2), pool8(8);
  const auto grad = tie_heavy_tensor(kLargeN, 11);
  TopKCompressor comp(0.05);
  const auto serial = comp.compress(grad.cspan(), 0);
  for (ThreadPool* pool : {&pool2, &pool8}) {
    comp.set_thread_pool(pool);
    EXPECT_EQ(comp.compress(grad.cspan(), 0), serial)
        << "pool=" << pool->size();
  }
}

TEST(ParallelCompress, CloneInheritsThreadPool) {
  ThreadPool pool(4);
  TopKCompressor comp(0.01);
  comp.set_thread_pool(&pool);
  const auto clone = comp.clone();
  EXPECT_EQ(clone->thread_pool(), &pool);
  comp.set_thread_pool(nullptr);
  EXPECT_EQ(comp.clone()->thread_pool(), nullptr);
  // Clone with a pool still matches the serial payload.
  const auto grad = random_tensor(kLargeN, 5);
  EXPECT_EQ(clone->compress(grad.cspan(), 7),
            comp.compress(grad.cspan(), 7));
}

TEST(ParallelCompress, ConcurrentCompressIsSafe) {
  // One compressor + one pool shared across caller threads (the trainer's
  // per-rank clones share the datapath pool).  TSan target.
  ThreadPool pool(4);
  TopKCompressor comp(0.01);
  comp.set_thread_pool(&pool);
  const auto grad = random_tensor(kLargeN, 3);
  comp.set_thread_pool(nullptr);
  const auto serial = comp.compress(grad.cspan(), 0);
  comp.set_thread_pool(&pool);
  std::vector<std::thread> callers;
  std::vector<int> ok(4, 0);
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&, t] {
      for (int rep = 0; rep < 3; ++rep) {
        if (!(comp.compress(grad.cspan(), 0) == serial)) return;
      }
      ok[static_cast<std::size_t>(t)] = 1;
    });
  }
  for (auto& c : callers) c.join();
  for (int v : ok) EXPECT_EQ(v, 1);
}

TEST(ParallelCompress, TrainerDatapathThreadsDoNotChangeTraining) {
  // datapath_threads is a speed knob only: the trained state must be
  // bit-identical with and without the pool.
  MlpConfig mlp;
  mlp.input_dim = 16;
  mlp.hidden = {24};
  mlp.num_classes = 4;
  TrainerConfig base;
  base.world = 2;
  base.rho = 0.05;
  base.compression = GradCompression::kTopK;
  TrainerConfig pooled = base;
  pooled.datapath_threads = 2;

  Trainer serial(mlp, base);
  Trainer parallel(mlp, pooled);
  const auto serial_result = serial.run(0, 4, nullptr);
  const auto parallel_result = parallel.run(0, 4, nullptr);
  EXPECT_EQ(serial_result.losses, parallel_result.losses);
  EXPECT_EQ(serialize_model_state(serial.state(0)),
            serialize_model_state(parallel.state(0)));
}

// --- K-way merge ----------------------------------------------------------

std::vector<CompressedGrad> random_batch(std::size_t count, std::size_t n,
                                         std::uint64_t seed) {
  TopKCompressor comp(0.02);
  std::vector<CompressedGrad> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(comp.compress(random_tensor(n, seed + i).cspan(), i));
  }
  return out;
}

CompressedGrad sparse_payload(std::uint64_t dense_size,
                              std::vector<std::uint32_t> indices,
                              std::vector<float> values,
                              std::uint64_t iteration) {
  CompressedGrad g;
  g.scheme = CompressionScheme::kTopK;
  g.dense_size = dense_size;
  g.iteration = iteration;
  g.indices = std::move(indices);
  g.values = std::move(values);
  return g;
}

TEST(KWayMerge, MatchesPairwiseOnRandomBatches) {
  for (std::size_t count : {1u, 2u, 3u, 8u, 32u}) {
    const auto payloads = random_batch(count, 1 << 14, 100 + count);
    const auto kway = merge_sparse_sum(payloads);
    const auto pairwise = merge_sparse_sum_pairwise(payloads);
    EXPECT_EQ(kway, pairwise) << "B=" << count;
    EXPECT_EQ(kway.serialize(), pairwise.serialize()) << "B=" << count;
  }
}

TEST(KWayMerge, DisjointOverlappingAndEmptyMembers) {
  const std::uint64_t n = 100;
  const std::vector<CompressedGrad> cases[] = {
      // fully disjoint
      {sparse_payload(n, {0, 10, 20}, {1.0f, 2.0f, 3.0f}, 0),
       sparse_payload(n, {5, 15, 25}, {4.0f, 5.0f, 6.0f}, 1)},
      // fully overlapping: float sum order must match the pairwise fold
      {sparse_payload(n, {1, 2, 3}, {0.1f, 0.2f, 0.3f}, 0),
       sparse_payload(n, {1, 2, 3}, {0.7f, 0.8f, 0.9f}, 1),
       sparse_payload(n, {1, 2, 3}, {1e-8f, -0.8f, 10.0f}, 2)},
      // empty members interleaved
      {sparse_payload(n, {}, {}, 0),
       sparse_payload(n, {7}, {1.5f}, 1),
       sparse_payload(n, {}, {}, 2)},
      // single member
      {sparse_payload(n, {3, 9}, {-1.0f, 2.0f}, 5)},
      // negative zero must survive a single-payload coordinate
      {sparse_payload(n, {1, 2}, {-0.0f, 1.0f}, 0),
       sparse_payload(n, {2}, {2.0f}, 1)},
  };
  for (const auto& payloads : cases) {
    const auto kway = merge_sparse_sum(payloads);
    const auto pairwise = merge_sparse_sum_pairwise(payloads);
    EXPECT_EQ(kway, pairwise);
    EXPECT_EQ(kway.iteration, payloads.back().iteration);
  }
}

TEST(KWayMerge, SparseRegimeUsesHeapAndStillMatches) {
  // A huge dense_size with a handful of entries routes around the dense
  // accumulator; the heap path must agree with the reference too.
  const std::uint64_t n = (std::uint64_t{1} << 26) + 1;
  const std::vector<CompressedGrad> payloads = {
      sparse_payload(n, {0, 1000000, 50000000}, {1.0f, 2.0f, 3.0f}, 0),
      sparse_payload(n, {1000000, 2000000}, {0.5f, -4.0f}, 1),
      sparse_payload(n, {0, 67108864}, {7.0f, 8.0f}, 2),
  };
  EXPECT_EQ(merge_sparse_sum(payloads), merge_sparse_sum_pairwise(payloads));
}

// --- Zero-copy serialization ----------------------------------------------

TEST(SerializeInto, MatchesSerializeExactly) {
  const auto grad = random_tensor(1 << 12, 9);
  Quant8Compressor q8;
  TopKCompressor topk(0.05);
  for (const CompressedGrad& g : {topk.compress(grad.cspan(), 3),
                                  q8.compress(grad.cspan(), 4)}) {
    const auto reference = g.serialize();
    ASSERT_EQ(reference.size(), g.serialized_size());
    std::vector<std::byte> buf(g.serialized_size());
    EXPECT_EQ(g.serialize_into(buf), buf.size());
    EXPECT_EQ(buf, reference);
  }

  BatchedGrad batch;
  batch.members = random_batch(5, 1 << 12, 50);
  batch.first_iteration = 0;
  batch.last_iteration = 4;
  const auto reference = batch.serialize();
  ASSERT_EQ(reference.size(), batch.serialized_size());
  std::vector<std::byte> buf(batch.serialized_size());
  EXPECT_EQ(batch.serialize_into(buf), buf.size());
  EXPECT_EQ(buf, reference);
  EXPECT_EQ(BatchedGrad::deserialize(buf).serialize(), reference);
}

TEST(PooledSerializers, ByteIdenticalToVectorForms) {
  ModelSpec spec{"t", {{"w", {777}}, {"b", {33}}}};
  ModelState state(spec);
  state.init_random(13);
  TopKCompressor comp(0.05);
  const auto diff = comp.compress(random_tensor(810, 2).cspan(), 8);
  BatchedGrad batch;
  batch.members = random_batch(4, 1 << 12, 60);
  batch.first_iteration = 0;
  batch.last_iteration = 3;

  BufferPool pool;
  ThreadPool crc_pool(3);
  for (ThreadPool* cp : {static_cast<ThreadPool*>(nullptr), &crc_pool}) {
    const auto full = serialize_model_state(state, pool, cp);
    EXPECT_EQ(std::vector<std::byte>(full.cspan().begin(), full.cspan().end()),
              serialize_model_state(state));
    const auto d = serialize_diff(diff, pool, cp);
    EXPECT_EQ(std::vector<std::byte>(d.cspan().begin(), d.cspan().end()),
              serialize_diff(diff));
    const auto b = serialize_batch(batch, pool, cp);
    EXPECT_EQ(std::vector<std::byte>(b.cspan().begin(), b.cspan().end()),
              serialize_batch(batch));
    // And the framed records still unframe + roundtrip.
    const auto [type, payload] = unframe(b.cspan());
    EXPECT_EQ(type, RecordType::kBatchedDiff);
    EXPECT_EQ(BatchedGrad::deserialize(payload).serialize(), batch.serialize());
  }
}

TEST(Framing, PrepareFillSealMatchesFrame) {
  std::vector<std::byte> payload(3001);
  Xoshiro256 rng(4);
  for (auto& b : payload) b = static_cast<std::byte>(rng());
  const auto reference = frame(RecordType::kDiffCheckpoint, payload);
  ASSERT_EQ(reference.size(), framed_size(payload.size()));

  ThreadPool pool(2);
  for (ThreadPool* cp : {static_cast<ThreadPool*>(nullptr), &pool}) {
    std::vector<std::byte> record(framed_size(payload.size()));
    auto region = frame_prepare(record, RecordType::kDiffCheckpoint);
    ASSERT_EQ(region.size(), payload.size());
    std::memcpy(region.data(), payload.data(), payload.size());
    frame_seal(record, cp);
    EXPECT_EQ(record, reference);
  }
}

// --- BufferPool / ByteBuffer ----------------------------------------------

TEST(BufferPool, ReusesReturnedBuffers) {
  BufferPool pool;
  const std::byte* first = nullptr;
  {
    auto buf = pool.acquire(10000);
    EXPECT_GE(buf.capacity(), 10000u);
    EXPECT_EQ(buf.size(), 10000u);
    first = buf.data();
  }  // returned to the free list
  {
    // Smaller request, same rounded capacity class: must hit the cache.
    auto buf = pool.acquire(9000);
    EXPECT_EQ(buf.data(), first);
    EXPECT_EQ(buf.size(), 9000u);
  }
  const auto stats = pool.stats();
  EXPECT_EQ(stats.acquires, 2u);
  EXPECT_EQ(stats.allocs, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST(BufferPool, EnforcesCacheLimits) {
  BufferPool::Options opts;
  opts.max_cached_buffers = 2;
  BufferPool pool(opts);
  {
    auto a = pool.acquire(100);
    auto b = pool.acquire(100);
    auto c = pool.acquire(100);
  }  // three returns, capacity for two
  auto stats = pool.stats();
  EXPECT_EQ(stats.cached_buffers, 2u);
  EXPECT_EQ(stats.dropped, 1u);
  pool.trim();
  stats = pool.stats();
  EXPECT_EQ(stats.cached_buffers, 0u);
  EXPECT_EQ(stats.cached_bytes, 0u);
}

TEST(BufferPool, ConcurrentAcquireRelease) {
  BufferPool pool;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool, t] {
      Xoshiro256 rng(static_cast<std::uint64_t>(t));
      for (int i = 0; i < 200; ++i) {
        auto buf = pool.acquire(512 + rng.uniform_below(8192));
        buf.span()[0] = std::byte{0xFF};  // touch the lease
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(pool.stats().acquires, 800u);
}

TEST(PooledBuffer, MoveTransfersLease) {
  BufferPool pool;
  auto a = pool.acquire(64);
  const std::byte* ptr = a.data();
  PooledBuffer b = std::move(a);
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(b.size(), 64u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): asserting reset
  b.reset();
  EXPECT_TRUE(b.empty());
  // The reset returned the allocation: next acquire hits.
  auto c = pool.acquire(64);
  EXPECT_EQ(c.data(), ptr);
}

TEST(ByteBuffer, CopiesAliasTheSameBytes) {
  std::vector<std::byte> vec(256, std::byte{0x42});
  const ByteBuffer from_vec(std::move(vec));
  const ByteBuffer copy = from_vec;
  EXPECT_EQ(copy.data(), from_vec.data());
  EXPECT_EQ(copy.size(), 256u);

  BufferPool pool;
  auto leased = pool.acquire(128);
  const std::byte* ptr = leased.data();
  const ByteBuffer from_pool(std::move(leased));
  const ByteBuffer pool_copy = from_pool;
  EXPECT_EQ(from_pool.data(), ptr);
  EXPECT_EQ(pool_copy.data(), ptr);
}

TEST(ByteBuffer, ReleasesPooledBufferWhenLastCopyDies) {
  BufferPool pool;
  const std::byte* ptr = nullptr;
  {
    auto leased = pool.acquire(4096);
    ptr = leased.data();
    const ByteBuffer shared(std::move(leased));
    const ByteBuffer copy = shared;
  }  // last owner gone -> lease returns to the pool
  auto again = pool.acquire(4096);
  EXPECT_EQ(again.data(), ptr);
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(AsyncWriterDatapath, WritesPooledBuffersWithoutCopy) {
  auto mem = std::make_shared<MemStorage>();
  BufferPool pool;
  {
    AsyncWriter writer(mem);
    auto buf = pool.acquire(1000);
    Xoshiro256 rng(77);
    for (auto& b : buf.span()) b = static_cast<std::byte>(rng());
    std::vector<std::byte> expected(buf.cspan().begin(), buf.cspan().end());
    const ByteBuffer shared(std::move(buf));
    // Same bytes fanned out to two keys, one allocation.
    EXPECT_TRUE(writer.submit("a", shared));
    EXPECT_TRUE(writer.submit("b", shared));
    writer.flush();
    for (const char* key : {"a", "b"}) {
      auto read = mem->read(key);
      ASSERT_TRUE(read.ok());
      EXPECT_EQ(*read, expected);
    }
  }
}

}  // namespace
}  // namespace lowdiff
