#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "sim/cluster.h"
#include "sim/failure.h"
#include "sim/run_sim.h"
#include "sim/strategy_model.h"
#include "sim/workload.h"

namespace lowdiff::sim {
namespace {

ClusterSpec a100_cluster() {
  ClusterSpec c;
  c.gpu = gpus::a100();
  return c;
}

Workload gpt2l(double rho = 0.01) {
  return Workload::for_model("GPT2-L", gpus::a100(), rho);
}

// --- workload byte accounting -------------------------------------------------

TEST(Workload, ByteSizesFollowPaperAccounting) {
  const auto w = gpt2l(0.01);
  EXPECT_EQ(w.full_ckpt_bytes(), 12ull * 762'000'000ull);
  EXPECT_EQ(w.dense_grad_bytes(), 4ull * 762'000'000ull);
  // 8 bytes per kept element (index + value).
  EXPECT_EQ(w.sparse_grad_bytes(),
            static_cast<std::uint64_t>(8.0 * 0.01 * 762'000'000.0));
  // Naive DC: compressed params + RAW optimizer state (2 moments).
  EXPECT_EQ(w.naive_diff_bytes(),
            w.sparse_grad_bytes() + 8ull * 762'000'000ull);
}

TEST(Workload, DenseModeSelectsDenseDiff) {
  const auto w = gpt2l(0.0);
  EXPECT_FALSE(w.compressed());
  EXPECT_EQ(w.lowdiff_diff_bytes(), w.dense_grad_bytes());
}

TEST(Workload, UnknownModelThrows) {
  EXPECT_THROW(Workload::for_model("LeNet", gpus::a100(), 0.01), lowdiff::Error);
}

TEST(Workload, V100IsSlower) {
  const auto a = Workload::for_model("BERT-B", gpus::a100(), 0.01);
  const auto v = Workload::for_model("BERT-B", gpus::v100s(), 0.01);
  EXPECT_GT(v.iter_compute_sec, a.iter_compute_sec * 1.5);
}

// --- per-strategy timelines -------------------------------------------------------

double overhead_at_freq1(StrategyKind kind, const Workload& w) {
  StrategyConfig cfg;
  cfg.kind = kind;
  cfg.ckpt_interval = 1;
  cfg.full_interval = kind == StrategyKind::kLowDiff ? 20 : 1000000;
  if (kind == StrategyKind::kTorchSave || kind == StrategyKind::kCheckFreq ||
      kind == StrategyKind::kGemini) {
    cfg.full_interval = 1;
  }
  StrategyTimeline t(a100_cluster(), w, cfg);
  const auto stats = t.run(300);
  return stats.avg_iteration_time() / t.baseline_iteration_time() - 1.0;
}

TEST(StrategyTimeline, NoCheckpointHasZeroOverhead) {
  StrategyTimeline t(a100_cluster(), gpt2l(), {StrategyKind::kNone, 1});
  const auto stats = t.run(100);
  EXPECT_DOUBLE_EQ(stats.stall_time, 0.0);
  EXPECT_NEAR(stats.avg_iteration_time(), t.baseline_iteration_time(), 1e-12);
}

TEST(StrategyTimeline, Exp1OrderingAtPerIterationFrequency) {
  // The headline ranking of Fig. 8: LowDiff ~ W/O < Gemini < NaiveDC,
  // CheckFreq, TorchSave.
  const auto w = gpt2l();
  const double lowdiff = overhead_at_freq1(StrategyKind::kLowDiff, w);
  const double gemini = overhead_at_freq1(StrategyKind::kGemini, w);
  const double naive = overhead_at_freq1(StrategyKind::kNaiveDC, w);
  const double checkfreq = overhead_at_freq1(StrategyKind::kCheckFreq, w);
  const double torch = overhead_at_freq1(StrategyKind::kTorchSave, w);

  EXPECT_LT(lowdiff, 0.05);      // "less than 3.1%" headline (some slack)
  EXPECT_GT(gemini, lowdiff * 5);
  EXPECT_GT(naive, gemini);
  EXPECT_GT(checkfreq, gemini);
  EXPECT_GT(torch, checkfreq * 0.8);
  EXPECT_GT(checkfreq, 5.0);     // CheckFreq at freq 1 is catastrophic
}

TEST(StrategyTimeline, LowDiffOverheadWithinPaperBound) {
  // Exp. 1: across all models, LowDiff adds < ~3.1% at per-iteration
  // frequency with tuned FCF.
  for (const char* model : {"ResNet-50", "VGG-16", "BERT-L", "GPT2-S", "GPT2-L"}) {
    const auto w = Workload::for_model(model, gpus::a100(), 0.01);
    StrategyConfig cfg;
    cfg.kind = StrategyKind::kLowDiff;
    cfg.ckpt_interval = 1;
    cfg.full_interval = 50;
    cfg.batch_size = 2;
    StrategyTimeline t(a100_cluster(), w, cfg);
    const auto stats = t.run(500);
    const double overhead =
        stats.avg_iteration_time() / t.baseline_iteration_time() - 1.0;
    EXPECT_LT(overhead, 0.05) << model;
    EXPECT_GT(overhead, 0.0) << model;
  }
}

TEST(StrategyTimeline, OverheadGrowsWithFrequency) {
  // Fig. 1's monotonicity: higher DC frequency, slower training.
  const auto w = gpt2l();
  double prev = 1e9;
  for (std::uint64_t interval : {1, 2, 4, 8}) {
    StrategyConfig cfg;
    cfg.kind = StrategyKind::kNaiveDC;
    cfg.ckpt_interval = interval;
    cfg.full_interval = 1000000;
    StrategyTimeline t(a100_cluster(), w, cfg);
    const auto stats = t.run(400);
    const double overhead =
        stats.avg_iteration_time() / t.baseline_iteration_time() - 1.0;
    EXPECT_LT(overhead, prev);
    prev = overhead;
  }
}

TEST(StrategyTimeline, LowDiffPlusOverheadMatchesExp2Band) {
  // Exp. 2: 8.2% – 10.1% over W/O CKPT in the dense regime (some slack).
  for (const char* model : {"BERT-L", "GPT2-L"}) {
    const auto w = Workload::for_model(model, gpus::a100(), 0.0);
    StrategyConfig cfg;
    cfg.kind = StrategyKind::kLowDiffPlus;
    cfg.ckpt_interval = 1;
    StrategyTimeline t(a100_cluster(), w, cfg);
    const auto stats = t.run(300);
    const double overhead =
        stats.avg_iteration_time() / t.baseline_iteration_time() - 1.0;
    EXPECT_GT(overhead, 0.03) << model;
    EXPECT_LT(overhead, 0.16) << model;
  }
}

TEST(StrategyTimeline, DeviceMemoryAblation) {
  // Exp. 6(b): without CPU-offloaded batching the device retains the whole
  // batch buffer; with offload it retains only in-flight payloads.
  const auto w = gpt2l();
  StrategyConfig with;
  with.kind = StrategyKind::kLowDiff;
  with.batch_size = 16;
  with.full_interval = 1000;
  with.offload_batching_to_cpu = true;
  StrategyConfig without = with;
  without.offload_batching_to_cpu = false;

  StrategyTimeline t1(a100_cluster(), w, with);
  StrategyTimeline t2(a100_cluster(), w, without);
  const double frac_with = t1.run(200).device_mem_overhead_frac;
  const double frac_without = t2.run(200).device_mem_overhead_frac;
  EXPECT_GT(frac_without, frac_with * 3);
  EXPECT_GT(frac_without, 0.05);   // ~10% of state for GPT2-L at BS=16
  EXPECT_LT(frac_with, 0.05);
}

TEST(StrategyTimeline, MaxFrequencySearchMatchesExp4Shape) {
  const auto cluster = a100_cluster();
  struct Row {
    const char* model;
  };
  for (const char* model : {"ResNet-101", "GPT2-S", "BERT-L", "GPT2-L"}) {
    const auto w = Workload::for_model(model, gpus::a100(), 0.01);
    StrategyConfig lowdiff;
    lowdiff.kind = StrategyKind::kLowDiff;
    lowdiff.full_interval = 100;
    lowdiff.batch_size = 2;
    EXPECT_EQ(max_checkpoint_frequency(cluster, w, lowdiff), 1u) << model;

    StrategyConfig checkfreq;
    checkfreq.kind = StrategyKind::kCheckFreq;
    const auto cf = max_checkpoint_frequency(cluster, w, checkfreq);
    EXPECT_GE(cf, 4u) << model;  // CheckFreq needs long intervals

    StrategyConfig gemini;
    gemini.kind = StrategyKind::kGemini;
    const auto gm = max_checkpoint_frequency(cluster, w, gemini);
    EXPECT_LE(gm, cf) << model;  // Gemini beats CheckFreq

    StrategyConfig naive;
    naive.kind = StrategyKind::kNaiveDC;
    naive.full_interval = 1000000;
    const auto nd = max_checkpoint_frequency(cluster, w, naive);
    EXPECT_GT(nd, 1u) << model;  // NaiveDC cannot do per-iteration
  }
}

TEST(StrategyTimeline, GeminiIntervalGrowsWithModelSize) {
  const auto cluster = a100_cluster();
  StrategyConfig gemini;
  gemini.kind = StrategyKind::kGemini;
  const auto small = max_checkpoint_frequency(
      cluster, Workload::for_model("ResNet-101", gpus::a100(), 0.01), gemini);
  const auto large = max_checkpoint_frequency(
      cluster, Workload::for_model("GPT2-L", gpus::a100(), 0.01), gemini);
  EXPECT_LE(small, 2u);   // (near-)per-iteration on ResNet-101 (paper: 1)
  EXPECT_GT(large, 2u);   // interval grows for GPT2-L (paper: 4)
  EXPECT_LE(large, 8u);
  EXPECT_GT(large, small);
}

TEST(StrategyTimeline, Exp8CompressionRatioCrossover) {
  // GPT2-S: per-iteration for rho in [0.001, 0.1]; GPT2-L: per-iteration
  // until ~0.075, then the interval grows.
  const auto cluster = a100_cluster();
  StrategyConfig cfg;
  cfg.kind = StrategyKind::kLowDiff;
  cfg.full_interval = 100;
  cfg.batch_size = 2;
  for (double rho : {0.001, 0.01, 0.05, 0.1}) {
    const auto ws = Workload::for_model("GPT2-S", gpus::a100(), rho);
    EXPECT_EQ(max_checkpoint_frequency(cluster, ws, cfg), 1u) << "rho " << rho;
  }
  const auto wl_small_rho = Workload::for_model("GPT2-L", gpus::a100(), 0.01);
  EXPECT_EQ(max_checkpoint_frequency(cluster, wl_small_rho, cfg), 1u);
  const auto wl_big_rho = Workload::for_model("GPT2-L", gpus::a100(), 0.1);
  const auto interval = max_checkpoint_frequency(cluster, wl_big_rho, cfg);
  EXPECT_GE(interval, 2u);
  EXPECT_LE(interval, 3u);
}

TEST(StrategyTimeline, LowDiffPlusPersistIntervalTracksModelSize) {
  // Exp. 4 LowDiff+(P): per-iteration persistence for ResNet-101, a few
  // iterations for GPT2-L (paper: 3).
  const auto cluster = a100_cluster();
  StrategyConfig cfg;
  cfg.kind = StrategyKind::kLowDiffPlus;
  StrategyTimeline small(cluster, Workload::for_model("ResNet-101", gpus::a100(), 0.0),
                         cfg);
  StrategyTimeline large(cluster, Workload::for_model("GPT2-L", gpus::a100(), 0.0),
                         cfg);
  EXPECT_EQ(small.persist_interval(), 1u);
  EXPECT_GE(large.persist_interval(), 2u);
  EXPECT_LE(large.persist_interval(), 5u);
}

/// Property sweep: LowDiff sustains per-iteration checkpointing with small
/// overhead on every Table II(b) workload; every baseline pays more.
class AllModels : public ::testing::TestWithParam<const char*> {};

TEST_P(AllModels, LowDiffStaysCheapBaselinesDoNot) {
  const auto w = Workload::for_model(GetParam(), gpus::a100(), 0.01);
  const ClusterSpec cluster = a100_cluster();

  StrategyConfig lowdiff{StrategyKind::kLowDiff, 1, 50, 2};
  StrategyTimeline tl(cluster, w, lowdiff);
  const double base = tl.baseline_iteration_time();
  const double lowdiff_overhead = tl.run(400).avg_iteration_time() / base - 1.0;
  EXPECT_GT(lowdiff_overhead, 0.0);
  EXPECT_LT(lowdiff_overhead, 0.05);

  StrategyTimeline cf(cluster, w, {StrategyKind::kCheckFreq, 1, 1});
  EXPECT_GT(cf.run(200).avg_iteration_time() / base - 1.0,
            lowdiff_overhead * 10);
}

TEST_P(AllModels, ZooAndWorkloadParamsAgree) {
  const auto w = Workload::for_model(GetParam(), gpus::a100(), 0.01);
  EXPECT_GT(w.params, 10'000'000u);
  EXPECT_GT(w.iter_compute_sec, 0.01);
  EXPECT_LT(w.iter_compute_sec, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Table2b, AllModels,
                         ::testing::Values("ResNet-50", "ResNet-101", "VGG-16",
                                           "VGG-19", "BERT-B", "BERT-L",
                                           "GPT2-S", "GPT2-L"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(StrategyTimeline, ZeroCopyAblationAddsStall) {
  const auto w = gpt2l();
  StrategyConfig zc{StrategyKind::kLowDiff, 1, 1000, 2};
  StrategyConfig copy = zc;
  copy.zero_copy_queue = false;
  StrategyTimeline a(a100_cluster(), w, zc);
  StrategyTimeline b(a100_cluster(), w, copy);
  EXPECT_LT(a.run(100).stall_time, b.run(100).stall_time);
}

TEST(FailureRun, EffectiveRatioMonotonicInMtbf) {
  const auto cluster = a100_cluster();
  const auto w = Workload::for_model("GPT2-S", gpus::a100(), 0.01);
  StrategyConfig cfg{StrategyKind::kLowDiff, 1, 20, 2};
  double prev = 0.0;
  for (double mtbf_h : {0.1, 0.25, 0.5, 1.0, 4.0}) {
    FailureRunConfig run;
    run.train_work_sec = 4 * 3600.0;
    run.mtbf_sec = mtbf_h * 3600.0;
    run.seed = 3;
    const double ratio =
        run_with_failures(cluster, w, cfg, run).effective_ratio;
    EXPECT_GE(ratio, prev - 0.01) << "mtbf " << mtbf_h;  // small seed noise ok
    prev = ratio;
  }
}

// --- recovery models ----------------------------------------------------------------

TEST(RecoveryModel, ParallelBeatsSerialBeatsBaselineRedo) {
  const auto cluster = a100_cluster();
  const auto w = Workload::for_model("GPT2-S", gpus::a100(), 0.01);

  StrategyConfig baseline;
  baseline.kind = StrategyKind::kTorchSave;
  baseline.ckpt_interval = 10;
  StrategyTimeline tb(cluster, w, baseline);

  StrategyConfig naive;
  naive.kind = StrategyKind::kNaiveDC;
  naive.ckpt_interval = 1;
  naive.full_interval = 10;
  StrategyTimeline tn(cluster, w, naive);

  StrategyConfig lowdiff;
  lowdiff.kind = StrategyKind::kLowDiff;
  lowdiff.ckpt_interval = 1;
  lowdiff.full_interval = 10;
  lowdiff.batch_size = 2;
  StrategyTimeline tl(cluster, w, lowdiff);

  StrategyConfig plus;
  plus.kind = StrategyKind::kLowDiffPlus;
  StrategyTimeline tp(cluster, w, plus);

  const double rb = tb.recovery_time();
  const double rn = tn.recovery_time();
  const double rl = tl.recovery_time();
  const double rp = tp.recovery_time();

  EXPECT_LT(rl, rn);  // parallel recovery beats serial NaiveDC
  EXPECT_LT(rl, rb);  // and the torch.save baseline
  EXPECT_LT(rp, rl);  // LowDiff+ software recovery is fastest
  EXPECT_GT(rb / rp, 5.0);  // Exp. 5: ~9x-57x — at FCF=10 expect >5x
}

TEST(RecoveryModel, BaselineRecoveryGrowsWithInterval) {
  const auto cluster = a100_cluster();
  const auto w = Workload::for_model("GPT2-S", gpus::a100(), 0.01);
  double prev = 0.0;
  for (std::uint64_t interval : {5, 10, 20, 50}) {
    StrategyConfig cfg;
    cfg.kind = StrategyKind::kTorchSave;
    cfg.ckpt_interval = interval;
    StrategyTimeline t(cluster, w, cfg);
    const double r = t.recovery_time();
    EXPECT_GT(r, prev);
    prev = r;
  }
}

// --- failure model -------------------------------------------------------------------

TEST(FailureModel, DeterministicForSeed) {
  FailureModel a(1000.0, 7), b(1000.0, 7);
  for (int i = 0; i < 50; ++i) {
    const auto ea = a.next();
    const auto eb = b.next();
    EXPECT_EQ(ea.time, eb.time);
    EXPECT_EQ(ea.type, eb.type);
  }
}

TEST(FailureModel, MeanApproximatesMtbf) {
  FailureModel fm(500.0, 3);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += fm.next().time;
  EXPECT_NEAR(sum / n, 500.0, 15.0);
}

TEST(FailureModel, SoftwareFractionRespected) {
  FailureModel fm(100.0, 11, 0.8);
  int software = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (fm.next().type == FailureType::kSoftware) ++software;
  }
  EXPECT_NEAR(static_cast<double>(software) / n, 0.8, 0.02);
}

TEST(FailureModel, SoftwareFractionBoundaries) {
  // fraction = 0: every failure is a hardware failure; fraction = 1: all
  // software.  The boundaries must be exact, not just probable.
  FailureModel none(100.0, 13, 0.0);
  FailureModel all(100.0, 13, 1.0);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(none.next().type, FailureType::kHardware);
    EXPECT_EQ(all.next().type, FailureType::kSoftware);
  }
}

TEST(FailureModel, InterArrivalTimesArePositiveAndSpread) {
  FailureModel fm(250.0, 21);
  double min_t = 1e30, max_t = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const double t = fm.next().time;
    EXPECT_GE(t, 0.0);
    min_t = std::min(min_t, t);
    max_t = std::max(max_t, t);
  }
  // An exponential with mean 250 s should show both short and long gaps.
  EXPECT_LT(min_t, 25.0);
  EXPECT_GT(max_t, 500.0);
}

TEST(FailureModel, DifferentSeedsDiverge) {
  FailureModel a(1000.0, 7), b(1000.0, 8);
  bool diverged = false;
  for (int i = 0; i < 10 && !diverged; ++i) {
    diverged = a.next().time != b.next().time;
  }
  EXPECT_TRUE(diverged);
}

// --- failure-injected runs -------------------------------------------------------------

FailureRunConfig quick_run(double mtbf) {
  FailureRunConfig run;
  run.train_work_sec = 4 * 3600.0;
  run.mtbf_sec = mtbf;
  run.seed = 5;
  run.restart_overhead_sec = 15.0;
  return run;
}

TEST(FailureRun, LowerMtbfMeansMoreWaste) {
  const auto cluster = a100_cluster();
  const auto w = Workload::for_model("GPT2-S", gpus::a100(), 0.01);
  StrategyConfig cfg;
  cfg.kind = StrategyKind::kLowDiff;
  cfg.full_interval = 20;
  cfg.batch_size = 2;
  const auto a = run_with_failures(cluster, w, cfg, quick_run(0.5 * 3600));
  const auto b = run_with_failures(cluster, w, cfg, quick_run(2.0 * 3600));
  EXPECT_GT(a.failures, b.failures);
  EXPECT_GT(a.wasted_time, b.wasted_time);
  EXPECT_LT(a.effective_ratio, b.effective_ratio);
}

TEST(FailureRun, Exp3StrategyOrdering) {
  const auto cluster = a100_cluster();
  const auto w = Workload::for_model("GPT2-S", gpus::a100(), 0.01);
  const auto run = quick_run(1.0 * 3600);

  StrategyConfig lowdiff{StrategyKind::kLowDiff, 1, 20, 2};
  StrategyConfig gemini{StrategyKind::kGemini, 1, 1};
  StrategyConfig checkfreq{StrategyKind::kCheckFreq, 10, 10};
  StrategyConfig naive{StrategyKind::kNaiveDC, 1, 20};

  const double wl = run_with_failures(cluster, w, lowdiff, run).wasted_time;
  const double wg = run_with_failures(cluster, w, gemini, run).wasted_time;
  const double wc = run_with_failures(cluster, w, checkfreq, run).wasted_time;
  const double wn = run_with_failures(cluster, w, naive, run).wasted_time;

  EXPECT_LT(wl, wg);
  EXPECT_LT(wl, wc);
  EXPECT_LT(wl, wn);
}

TEST(FailureRun, EffectiveRatioDegradesGracefullyForLowDiff) {
  // Exp. 9 shape: at MTBF 0.3h LowDiff keeps ~90%+ effective ratio while
  // CheckFreq drops well below it.
  const auto cluster = a100_cluster();
  const auto w = Workload::for_model("GPT2-S", gpus::v100s(), 0.01);
  const auto run = quick_run(0.3 * 3600);

  StrategyConfig lowdiff{StrategyKind::kLowDiff, 1, 20, 2};
  StrategyConfig checkfreq{StrategyKind::kCheckFreq, 10, 10};
  const auto rl = run_with_failures(cluster, w, lowdiff, run);
  const auto rc = run_with_failures(cluster, w, checkfreq, run);
  EXPECT_GT(rl.effective_ratio, 0.85);
  EXPECT_GT(rl.effective_ratio, rc.effective_ratio);
}

TEST(FailureRun, DeterministicForSeed) {
  const auto cluster = a100_cluster();
  const auto w = Workload::for_model("BERT-B", gpus::a100(), 0.01);
  StrategyConfig cfg{StrategyKind::kLowDiff, 1, 20, 2};
  const auto a = run_with_failures(cluster, w, cfg, quick_run(3600));
  const auto b = run_with_failures(cluster, w, cfg, quick_run(3600));
  EXPECT_EQ(a.wall_time, b.wall_time);
  EXPECT_EQ(a.failures, b.failures);
}

TEST(FailureRun, RejectsBadConfig) {
  const auto cluster = a100_cluster();
  const auto w = Workload::for_model("BERT-B", gpus::a100(), 0.01);
  StrategyConfig cfg;
  FailureRunConfig run;
  run.train_work_sec = 0.0;
  EXPECT_THROW(run_with_failures(cluster, w, cfg, run), lowdiff::Error);
}

}  // namespace
}  // namespace lowdiff::sim

namespace lowdiff::sim {
namespace {

TEST(StrategyTimeline, ExplicitPersistIntervalRespected) {
  const ClusterSpec cluster;
  const auto w = Workload::for_model("GPT2-L", gpus::a100(), 0.0);
  StrategyConfig cfg;
  cfg.kind = StrategyKind::kLowDiffPlus;
  cfg.persist_interval = 7;
  StrategyTimeline t(cluster, w, cfg);
  EXPECT_EQ(t.persist_interval(), 7u);
  const auto stats = t.run(70);
  EXPECT_EQ(stats.full_ckpts, 10u);  // one persist per 7 iterations
}

TEST(StrategyTimeline, PipelineParallelAddsBubbleAndShrinksSync) {
  const ClusterSpec cluster;
  auto flat = Workload::for_model("VGG-16", gpus::a100(), 0.01);
  auto pp = flat;
  pp.pipeline_stages = 4;
  StrategyTimeline tf(cluster, flat, {StrategyKind::kNone, 1});
  StrategyTimeline tp(cluster, pp, {StrategyKind::kNone, 1});
  const auto sf = tf.run(10);
  const auto sp = tp.run(10);
  EXPECT_GT(sp.compute_time, sf.compute_time);  // pipeline bubble
  EXPECT_LT(sp.sync_time, sf.sync_time);        // per-stage payloads
}

}  // namespace
}  // namespace lowdiff::sim

namespace lowdiff::sim {
namespace {

TEST(PCcheck, SitsBetweenCheckFreqAndLowDiff) {
  // PCcheck's PMEM path supports much higher frequency than SSD-bound
  // CheckFreq (paper: ~every 10 iterations), but its full-state snapshots
  // still cannot match LowDiff's per-iteration differentials.
  const ClusterSpec cluster;
  const auto w = Workload::for_model("GPT2-S", gpus::a100(), 0.01);

  StrategyConfig pccheck;
  pccheck.kind = StrategyKind::kPCcheck;
  const auto f_pc = max_checkpoint_frequency(cluster, w, pccheck);

  StrategyConfig checkfreq;
  checkfreq.kind = StrategyKind::kCheckFreq;
  const auto f_cf = max_checkpoint_frequency(cluster, w, checkfreq);

  StrategyConfig lowdiff{StrategyKind::kLowDiff, 1, 100, 2};
  const auto f_ld = max_checkpoint_frequency(cluster, w, lowdiff);

  EXPECT_LT(f_pc, f_cf);  // PMEM beats SSD-bound CheckFreq
  EXPECT_GT(f_pc, f_ld);  // but full-state snapshots lose to reuse
  EXPECT_GE(f_pc, 4u);    // paper: ~every 10 iterations
  EXPECT_LE(f_pc, 16u);
}

TEST(PCcheck, RecoveryFasterThanSsdBaseline) {
  const ClusterSpec cluster;
  const auto w = Workload::for_model("GPT2-S", gpus::a100(), 0.01);
  StrategyTimeline pc(cluster, w, {StrategyKind::kPCcheck, 10, 10});
  StrategyTimeline torch(cluster, w, {StrategyKind::kTorchSave, 10, 10});
  EXPECT_LT(pc.load_and_replay_time(0), torch.load_and_replay_time(0));
}

}  // namespace
}  // namespace lowdiff::sim
