#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "compress/dense.h"
#include "compress/topk.h"
#include "core/checkpoint_store.h"
#include "core/recovery.h"
#include "optim/adam.h"
#include "optim/sgd.h"
#include "storage/mem_storage.h"
#include "tensor/ops.h"

namespace lowdiff {
namespace {

ModelSpec spec_of(std::size_t n) {
  ModelSpec spec;
  spec.name = "flat";
  spec.layers = {{"w", {n}}};
  return spec;
}

/// Simulates `iters` training iterations with gradient reuse: every
/// synchronized compressed gradient goes both into the optimizer (dense,
/// after decompression) and into the store as a differential checkpoint.
/// Returns the final training state.
ModelState train_with_reuse(CheckpointStore& store, const ModelSpec& spec,
                            const Optimizer& opt, const Compressor& comp,
                            std::uint64_t full_at, std::uint64_t iters,
                            std::uint64_t seed) {
  ModelState state(spec);
  state.init_random(seed);
  Tensor grad(spec.param_count());
  Tensor dense(spec.param_count());
  Xoshiro256 rng(seed * 31 + 1);
  for (std::uint64_t t = 0; t < iters; ++t) {
    ops::fill_normal(grad.span(), rng, 0.5f);
    const auto payload = comp.compress(grad.cspan(), t);
    comp.decompress(payload, dense.span());
    opt.step(state, dense.cspan());
    if (t == full_at) {
      store.put_full(t, state);
    } else if (t > full_at) {
      store.put_diff(payload);
    }
  }
  return state;
}

TEST(Recovery, SerialReplayIsBitExact) {
  const auto spec = spec_of(400);
  auto mem = std::make_shared<MemStorage>();
  CheckpointStore store(mem);
  Adam adam;
  TopKCompressor comp(0.05);
  const auto trained =
      train_with_reuse(store, spec, adam, comp, /*full_at=*/10, /*iters=*/30, 7);

  RecoveryEngine engine(spec, adam.clone(), comp.clone());
  RecoveryReport report;
  const auto recovered = engine.recover_serial(store, &report);

  EXPECT_TRUE(trained.bit_equal(recovered));  // Finding 1, exactly
  EXPECT_EQ(report.full_iteration, 10u);
  EXPECT_EQ(report.diffs_replayed, 19u);
  EXPECT_EQ(report.final_iteration, 29u);
}

TEST(Recovery, ParallelEqualsSerial) {
  const auto spec = spec_of(300);
  auto mem = std::make_shared<MemStorage>();
  CheckpointStore store(mem);
  Adam adam;
  TopKCompressor comp(0.1);
  train_with_reuse(store, spec, adam, comp, 5, 40, 3);

  RecoveryEngine engine(spec, adam.clone(), comp.clone());
  ThreadPool pool(4);
  RecoveryReport serial_report, parallel_report;
  const auto serial = engine.recover_serial(store, &serial_report);
  const auto parallel = engine.recover_parallel(store, pool, &parallel_report);
  EXPECT_TRUE(serial.bit_equal(parallel));
  EXPECT_EQ(serial_report.final_iteration, parallel_report.final_iteration);
}

TEST(Recovery, ParallelAdditiveEqualsSerialForPlainSgd) {
  const auto spec = spec_of(256);
  auto mem = std::make_shared<MemStorage>();
  CheckpointStore store(mem);
  Sgd sgd(SgdConfig{.lr = 0.05f, .momentum = 0.0f});
  TopKCompressor comp(0.1);
  const auto trained = train_with_reuse(store, spec, sgd, comp, 3, 35, 11);

  RecoveryEngine engine(spec, sgd.clone(), comp.clone());
  ThreadPool pool(4);
  RecoveryReport report;
  const auto recovered =
      engine.recover_parallel_additive(store, pool, 0.05f, &report);

  // Additive merge reorders float additions, so compare numerically.
  EXPECT_EQ(recovered.step(), trained.step());
  EXPECT_LT(ops::max_abs_diff(recovered.params().cspan(), trained.params().cspan()),
            1e-5f);
  // 31 diffs -> ceil(log2(31)) = 5 pairwise merge rounds (Fig. 7).
  EXPECT_EQ(report.diffs_replayed, 31u);
  EXPECT_EQ(report.merge_rounds, 5u);
}

TEST(Recovery, ReportAccountsEveryByteReadAndItsSource) {
  const auto spec = spec_of(350);
  auto mem = std::make_shared<MemStorage>();
  CheckpointStore store(mem);
  Adam adam;
  TopKCompressor comp(0.05);
  const auto trained =
      train_with_reuse(store, spec, adam, comp, /*full_at=*/2, /*iters=*/25, 19);

  const auto before = mem->stats();
  RecoveryEngine engine(spec, adam.clone(), comp.clone());
  RecoveryReport report;
  const auto recovered = engine.recover_serial(store, &report);
  EXPECT_TRUE(trained.bit_equal(recovered));

  // bytes_read is the backend's own delta (markers included), attributed
  // to the single flat source "storage" with one read per record.
  EXPECT_EQ(report.bytes_read, mem->stats().bytes_read - before.bytes_read);
  EXPECT_GT(report.bytes_read, 0u);
  EXPECT_GT(report.read_seconds, 0.0);
  ASSERT_EQ(report.read_sources.size(), 1u);
  const auto& source = report.read_sources.at("storage");
  EXPECT_EQ(source.bytes, report.bytes_read);
  EXPECT_EQ(source.reads, report.diffs_replayed + 1);  // diffs + the full
  EXPECT_EQ(source.seconds, report.read_seconds);
}

TEST(Recovery, ParallelReportAccountsBytesReadLikeSerial) {
  const auto spec = spec_of(280);
  auto mem = std::make_shared<MemStorage>();
  CheckpointStore store(mem);
  Adam adam;
  TopKCompressor comp(0.1);
  train_with_reuse(store, spec, adam, comp, 3, 30, 23);

  RecoveryEngine engine(spec, adam.clone(), comp.clone());
  ThreadPool pool(4);
  RecoveryReport serial_report, parallel_report;
  (void)engine.recover_serial(store, &serial_report);
  (void)engine.recover_parallel(store, pool, &parallel_report);

  // Same records, same bytes — overlap changes wall time, not I/O volume.
  EXPECT_EQ(parallel_report.bytes_read, serial_report.bytes_read);
  EXPECT_GT(parallel_report.read_seconds, 0.0);
  ASSERT_EQ(parallel_report.read_sources.size(), 1u);
  EXPECT_EQ(parallel_report.read_sources.at("storage").bytes,
            parallel_report.bytes_read);
  EXPECT_EQ(parallel_report.read_sources.at("storage").reads,
            parallel_report.diffs_replayed + 1);
}

TEST(Recovery, NoDiffsRecoversFullOnly) {
  const auto spec = spec_of(64);
  auto mem = std::make_shared<MemStorage>();
  CheckpointStore store(mem);
  ModelState state(spec);
  state.init_random(1);
  state.set_step(42);
  store.put_full(41, state);

  Adam adam;
  TopKCompressor comp(0.1);
  RecoveryEngine engine(spec, adam.clone(), comp.clone());
  RecoveryReport report;
  const auto recovered = engine.recover_serial(store, &report);
  EXPECT_TRUE(state.bit_equal(recovered));
  EXPECT_EQ(report.diffs_replayed, 0u);
}

TEST(Recovery, MissingFullCheckpointThrows) {
  auto mem = std::make_shared<MemStorage>();
  CheckpointStore store(mem);
  Adam adam;
  TopKCompressor comp(0.1);
  RecoveryEngine engine(spec_of(10), adam.clone(), comp.clone());
  EXPECT_THROW(engine.recover_serial(store), Error);
  ThreadPool pool(2);
  EXPECT_THROW(engine.recover_parallel(store, pool), Error);
}

TEST(Recovery, BatchedDiffsReplayIdenticallyToStandalone) {
  // The same payload stream stored as batches vs standalone diffs must
  // recover to the same state — batching is a write optimization only.
  const auto spec = spec_of(200);
  Adam adam;
  TopKCompressor comp(0.1);

  auto mem_single = std::make_shared<MemStorage>();
  CheckpointStore store_single(mem_single);
  const auto trained =
      train_with_reuse(store_single, spec, adam, comp, 4, 24, 9);

  // Rebuild the same stream into batches of 3.
  auto mem_batched = std::make_shared<MemStorage>();
  CheckpointStore store_batched(mem_batched);
  store_batched.put_full(4, store_single.read_full(4, spec));
  const auto diff_iters = store_single.diffs_after(4);
  BatchedGrad batch;
  for (std::uint64_t iter : diff_iters) {
    if (batch.members.empty()) batch.first_iteration = iter;
    batch.members.push_back(store_single.read_diff(iter));
    batch.last_iteration = iter;
    if (batch.members.size() == 3) {
      store_batched.put_batch(batch);
      batch = BatchedGrad{};
    }
  }
  if (!batch.members.empty()) store_batched.put_batch(batch);

  RecoveryEngine engine(spec, adam.clone(), comp.clone());
  const auto recovered = engine.recover_serial(store_batched);
  EXPECT_TRUE(trained.bit_equal(recovered));
}

class RecoveryDiffCounts : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RecoveryDiffCounts, ParallelEqualsSerialForAnyCount) {
  const std::uint64_t iters = GetParam();
  const auto spec = spec_of(120);
  auto mem = std::make_shared<MemStorage>();
  CheckpointStore store(mem);
  Adam adam;
  TopKCompressor comp(0.2);
  train_with_reuse(store, spec, adam, comp, 0, iters, 13);

  RecoveryEngine engine(spec, adam.clone(), comp.clone());
  ThreadPool pool(3);
  EXPECT_TRUE(
      engine.recover_serial(store).bit_equal(engine.recover_parallel(store, pool)));
}

INSTANTIATE_TEST_SUITE_P(Counts, RecoveryDiffCounts,
                         ::testing::Values(1, 2, 3, 5, 9, 17, 33));

}  // namespace
}  // namespace lowdiff
