// Tests for the observability layer: metrics registry (property/stress
// style) and timeline tracer, plus the end-to-end acceptance check that a
// traced Trainer run reconstructs its reported checkpoint stall from spans.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/checkpoint_store.h"
#include "core/strategies.h"
#include "core/trainer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/mem_storage.h"
#include "storage/throttled.h"

namespace lowdiff {
namespace {

// --- Metrics ---------------------------------------------------------------

TEST(ObsMetrics, CounterSumsConcurrentAddsExactly) {
  obs::Registry reg;
  auto& counter = reg.counter("hits");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kAdds = 50000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kAdds; ++i) counter.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kAdds);
}

TEST(ObsMetrics, GaugeMixesSetAndConcurrentDeltas) {
  obs::Gauge gauge;
  gauge.set(100.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < 1000; ++i) gauge.add(1.0);
      for (int i = 0; i < 1000; ++i) gauge.add(-1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(gauge.value(), 100.0);
  gauge.set(-3.5);  // set() clears accumulated deltas
  EXPECT_DOUBLE_EQ(gauge.value(), -3.5);
}

TEST(ObsMetrics, HistogramBucketsCountAndQuantiles) {
  obs::Histogram hist({1.0, 10.0, 100.0});
  for (const double v : {0.5, 0.7, 5.0, 5.0, 50.0, 500.0}) hist.observe(v);
  EXPECT_EQ(hist.count(), 6u);
  EXPECT_DOUBLE_EQ(hist.sum(), 561.2);
  const auto counts = hist.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);

  obs::HistogramSnapshot snap{hist.bounds(), counts, hist.count(), hist.sum()};
  EXPECT_NEAR(snap.mean(), 561.2 / 6.0, 1e-9);
  // Quantiles are bucket-interpolated: monotone and within bucket ranges.
  const double p25 = snap.quantile(0.25);
  const double p50 = snap.quantile(0.50);
  const double p95 = snap.quantile(0.95);
  EXPECT_LE(p25, p50);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p25, 1.0);
  EXPECT_GT(p95, 10.0);
}

TEST(ObsMetrics, HistogramConcurrentObserveLosesNothing) {
  obs::Histogram hist(obs::latency_buckets_us());
  constexpr std::size_t kThreads = 6;
  constexpr std::uint64_t kObs = 20000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (std::uint64_t i = 0; i < kObs; ++i) {
        hist.observe(static_cast<double>((t * kObs + i) % 1000));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hist.count(), kThreads * kObs);
  std::uint64_t bucket_total = 0;
  for (const auto c : hist.bucket_counts()) bucket_total += c;
  EXPECT_EQ(bucket_total, kThreads * kObs);
}

TEST(ObsMetrics, RegistryHandlesAreStableAndResettable) {
  obs::Registry reg;
  auto& c1 = reg.counter("a.total");
  auto& c2 = reg.counter("a.total");
  EXPECT_EQ(&c1, &c2);  // find-or-create returns the same object
  c1.add(7);
  reg.gauge("g").set(2.0);
  reg.histogram("h").observe(42.0);

  auto snap = reg.scrape();
  EXPECT_EQ(snap.counters.at("a.total"), 7u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 2.0);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);

  reg.reset_values();
  snap = reg.scrape();
  EXPECT_EQ(snap.counters.at("a.total"), 0u);
  EXPECT_EQ(snap.histograms.at("h").count, 0u);
  EXPECT_EQ(c1.value(), 0u);  // handle survives the reset
}

TEST(ObsMetrics, SnapshotJsonCarriesSchemaAndMetrics) {
  obs::Registry reg;
  reg.counter("writes_total").add(3);
  reg.gauge("depth").set(1.5);
  reg.histogram("lat_us").observe(12.0);
  const auto json = reg.scrape().to_json("unit_test");
  EXPECT_NE(json.find("\"schema\": \"lowdiff-metrics/1\""), std::string::npos);
  EXPECT_NE(json.find("\"bench\": \"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"writes_total\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"depth\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"lat_us\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

TEST(ObsMetrics, ScopedTimerObservesElapsedMicroseconds) {
  obs::Histogram hist(obs::latency_buckets_us());
  {
    obs::ScopedTimerUs timer(hist);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_GE(hist.sum(), 4000.0);  // at least ~4ms recorded
}

// --- Tracer ----------------------------------------------------------------

TEST(ObsTrace, DisabledTracerRecordsNothing) {
  obs::Tracer tracer;
  {
    obs::TraceSpan span(tracer, "work", "cat");
    tracer.instant("ping");
  }
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.span_total_us("work"), 0.0);
}

TEST(ObsTrace, SpansRecordDurationsAndOrdering) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_thread_name("main-test");
  {
    obs::TraceSpan outer(tracer, "outer", "cat");
    std::this_thread::sleep_for(std::chrono::milliseconds(8));
    tracer.instant("midpoint", "cat");
  }
  {
    obs::TraceSpan second(tracer, "outer", "cat");
    std::this_thread::sleep_for(std::chrono::milliseconds(4));
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us) << "not time-ordered";
  }
  // Both spans accumulate under one name; durations reflect the sleeps.
  EXPECT_GE(tracer.span_total_us("outer"), 10000.0);
  EXPECT_EQ(tracer.span_total_us("nonexistent"), 0.0);

  tracer.clear();
  EXPECT_TRUE(tracer.events().empty());
}

TEST(ObsTrace, ThreadsGetSeparateTimelineRows) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  std::thread a([&tracer] {
    tracer.set_thread_name("worker-a");
    obs::TraceSpan span(tracer, "job", "cat");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  });
  std::thread b([&tracer] {
    tracer.set_thread_name("worker-b");
    obs::TraceSpan span(tracer, "job", "cat");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  });
  a.join();
  b.join();
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
  EXPECT_GE(tracer.span_total_us("job"), 8000.0);

  const auto json = tracer.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("worker-a"), std::string::npos);
  EXPECT_NE(json.find("worker-b"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST(ObsTrace, WriteChromeJsonProducesLoadableFile) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  { obs::TraceSpan span(tracer, "persist", "writer"); }
  const auto path =
      (std::filesystem::temp_directory_path() / "lowdiff_trace_test.json")
          .string();
  ASSERT_TRUE(tracer.write_chrome_json(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const auto content = buf.str();
  EXPECT_EQ(content.front(), '{');
  EXPECT_NE(content.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(content.find("\"persist\""), std::string::npos);
  std::remove(path.c_str());
}

// --- End-to-end: trace reconstructs the Trainer's reported stall -----------

MlpConfig tiny_mlp() {
  MlpConfig cfg;
  cfg.input_dim = 8;
  cfg.hidden = {24};
  cfg.num_classes = 4;
  return cfg;
}

TEST(ObsEndToEnd, TraceSpansReconstructTrainerStallWithinFivePercent) {
  auto& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);

  TrainerConfig cfg;
  cfg.world = 1;
  cfg.batch_size = 16;
  cfg.rho = 0.0;  // dense regime; the strategy serializes full state
  cfg.seed = 21;
  Trainer trainer(tiny_mlp(), cfg);

  // Slow storage makes each synchronous save a multi-millisecond stall, so
  // timing noise is far below the 5%% acceptance bar.
  auto mem = std::make_shared<MemStorage>();
  auto throttled = std::make_shared<ThrottledStorage>(
      mem, LinkSpec{2.0e6, 0.0}, /*time_scale=*/1.0, "obs_test");
  auto store = std::make_shared<CheckpointStore>(throttled);
  TorchSaveStrategy strategy(store, /*interval=*/2);

  const auto result = trainer.run(0, 30, &strategy);
  tracer.set_enabled(false);

  ASSERT_GT(result.stall_seconds, 0.01) << "stall too small to compare";
  const double traced_stall_sec = tracer.span_total_us("ckpt.stall") / 1e6;
  const double rel_err =
      std::fabs(traced_stall_sec - result.stall_seconds) / result.stall_seconds;
  EXPECT_LT(rel_err, 0.05) << "traced=" << traced_stall_sec
                           << "s reported=" << result.stall_seconds << "s";

  // The trace is a loadable Chrome timeline of the run.
  const auto json = tracer.to_chrome_json();
  EXPECT_NE(json.find("ckpt.stall"), std::string::npos);
  EXPECT_NE(json.find("ckpt.full"), std::string::npos);
  EXPECT_NE(json.find("train.compute"), std::string::npos);
  EXPECT_NE(json.find("rank0"), std::string::npos);
  tracer.clear();
}

}  // namespace
}  // namespace lowdiff
