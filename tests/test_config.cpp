#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "core/config_optimizer.h"

namespace lowdiff {
namespace {

WastedTimeParams paper_like_params() {
  WastedTimeParams p;
  p.num_gpus = 8;
  p.mtbf_sec = 3600.0;
  p.write_bw = 2.0e9;
  p.full_ckpt_bytes = 1.4e9;  // GPT2-S full checkpoint
  p.total_train_sec = 24 * 3600.0;
  p.load_full_sec = 0.7;
  p.merge_diff_sec = 0.05;
  return p;
}

TEST(WastedTimeModel, MatchesHandComputedValue) {
  WastedTimeParams p;
  p.num_gpus = 2;
  p.mtbf_sec = 100.0;
  p.write_bw = 10.0;
  p.full_ckpt_bytes = 5.0;
  p.total_train_sec = 1000.0;
  p.load_full_sec = 3.0;
  p.merge_diff_sec = 4.0;
  const double f = 0.5, b = 2.0;
  // failures = 10; recovery = 2*10*(1 + 3 + 2*(1/(1) - 1)) = 20*4 = 80
  // steady = 2*1000*5*0.5/10 = 500
  EXPECT_NEAR(wasted_time_model(p, f, b), 580.0, 1e-9);
}

TEST(WastedTimeModel, RejectsNonPositive) {
  EXPECT_THROW(wasted_time_model(paper_like_params(), 0.0, 1.0), lowdiff::Error);
  EXPECT_THROW(wasted_time_model(paper_like_params(), 1.0, -1.0), lowdiff::Error);
}

TEST(OptimalConfig, MatchesEq5ClosedForm) {
  const auto p = paper_like_params();
  const auto [f, b] = optimal_config(p);
  EXPECT_NEAR(f, std::cbrt(p.merge_diff_sec * p.write_bw * p.write_bw /
                           (4 * p.full_ckpt_bytes * p.full_ckpt_bytes *
                            p.mtbf_sec * p.mtbf_sec)),
              1e-12);
  EXPECT_NEAR(b, std::cbrt(2 * p.full_ckpt_bytes * p.merge_diff_sec *
                           p.mtbf_sec / p.write_bw),
              1e-12);
}

TEST(OptimalConfig, IsStationaryPointOfTheModel) {
  const auto p = paper_like_params();
  const auto [f, b] = optimal_config(p);
  const double base = wasted_time_model(p, f, b);
  // Perturbing either coordinate should not decrease the model value.
  for (double scale : {0.8, 0.9, 1.1, 1.25}) {
    EXPECT_GE(wasted_time_model(p, f * scale, b) + 1e-9, base);
    EXPECT_GE(wasted_time_model(p, f, b * scale) + 1e-9, base);
  }
}

TEST(OptimalConfig, RespondsToParametersAsTheoryPredicts) {
  auto p = paper_like_params();
  const auto [f0, b0] = optimal_config(p);
  // More frequent failures (smaller M) => checkpoint more often, smaller b.
  p.mtbf_sec /= 4.0;
  const auto [f1, b1] = optimal_config(p);
  EXPECT_GT(f1, f0);
  EXPECT_LT(b1, b0);
  // Faster storage => checkpoint more often.
  p = paper_like_params();
  p.write_bw *= 4.0;
  const auto [f2, b2] = optimal_config(p);
  EXPECT_GT(f2, f0);
  EXPECT_LT(b2, b0);
}

TEST(IterationConfig, SensibleDiscretization) {
  const auto p = paper_like_params();
  const auto cfg = to_iteration_config(p, /*iter_time_sec=*/0.18);
  EXPECT_GE(cfg.full_interval, 1u);
  EXPECT_GE(cfg.batch_size, 1u);
  EXPECT_LE(cfg.batch_size, cfg.full_interval);
  // For these parameters the optimum is minutes-scale FCF and small BS.
  EXPECT_GT(cfg.full_interval, 10u);
  EXPECT_LT(cfg.batch_size, 64u);
}

TEST(IterationConfig, RejectsBadIterTime) {
  EXPECT_THROW(to_iteration_config(paper_like_params(), 0.0), lowdiff::Error);
}

TEST(ConfigTuner, RecommendationIsLocalOptimumOfModel) {
  ConfigTuner tuner(paper_like_params(), 0.18);
  const auto rec = tuner.recommend();
  auto cost = [&](std::uint64_t fi, std::uint64_t bs) {
    const double f = 1.0 / (static_cast<double>(fi) * 0.18);
    const double b = static_cast<double>(bs) * 0.18;
    return wasted_time_model(tuner.params(), f, b);
  };
  const double best = cost(rec.full_interval, rec.batch_size);
  EXPECT_LE(best, cost(rec.full_interval + 1, rec.batch_size));
  EXPECT_LE(best, cost(rec.full_interval, rec.batch_size + 1));
  if (rec.full_interval > 1) {
    EXPECT_LE(best, cost(rec.full_interval - 1, rec.batch_size));
  }
  if (rec.batch_size > 1) {
    EXPECT_LE(best, cost(rec.full_interval, rec.batch_size - 1));
  }
}

TEST(ConfigTuner, ObservationsShiftRecommendation) {
  ConfigTuner tuner(paper_like_params(), 0.18);
  const auto before = tuner.recommend();
  // Failures became 50x more frequent: checkpoint much more often.
  for (int i = 0; i < 30; ++i) tuner.observe_mtbf(3600.0 / 50.0);
  const auto after = tuner.recommend();
  EXPECT_LT(after.full_interval, before.full_interval);
}

TEST(ConfigTuner, BandwidthObservationSmoothing) {
  ConfigTuner tuner(paper_like_params(), 0.18);
  const double before = tuner.params().write_bw;
  tuner.observe_write_bandwidth(4.0e9);
  const double after = tuner.params().write_bw;
  EXPECT_GT(after, before);
  EXPECT_LT(after, 4.0e9);  // smoothed, not replaced
  EXPECT_THROW(tuner.observe_write_bandwidth(0.0), lowdiff::Error);
  EXPECT_THROW(tuner.observe_mtbf(-1.0), lowdiff::Error);
}

TEST(TableI, ModelReproducesInteriorMinimumShape) {
  // Table I: wasted time has an interior minimum over (FCF, BS); rows with
  // larger FCF interval have their best BS at larger values.
  auto p = paper_like_params();
  p.merge_diff_sec = 0.12;
  const double iter = 0.18;
  auto cell = [&](std::uint64_t fcf_interval, std::uint64_t bs) {
    return wasted_time_model(p, 1.0 / (fcf_interval * iter), bs * iter);
  };
  // For a fixed row, the best BS is interior (not BS=1, not BS=6) for at
  // least one of the paper's rows.
  bool interior_found = false;
  for (std::uint64_t fcf : {10u, 20u, 50u, 100u}) {
    std::uint64_t best_bs = 1;
    double best = cell(fcf, 1);
    for (std::uint64_t bs = 2; bs <= 6; ++bs) {
      if (cell(fcf, bs) < best) {
        best = cell(fcf, bs);
        best_bs = bs;
      }
    }
    if (best_bs > 1 && best_bs < 6) interior_found = true;
  }
  EXPECT_TRUE(interior_found);
}

}  // namespace
}  // namespace lowdiff
