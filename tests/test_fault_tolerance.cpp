#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>

#include "common/logging.h"
#include "compress/topk.h"
#include "core/recovery.h"
#include "core/trainer.h"
#include "sim/failure.h"
#include "storage/fault_injection.h"
#include "storage/mem_storage.h"
#include "support/kill_points.h"

namespace lowdiff {
namespace {

using test_support::KillPointEnumerator;
using test_support::poisson_kill_points;
using test_support::sweep_seed;

/// Crash harness: kill training at the points yielded by an injected
/// KillPointEnumerator, restart a fresh "process", recover from the
/// checkpoint store, resume — and require the final state to be bit-exact
/// against an uninterrupted run.  The enumerator is the only thing that
/// differs between this suite (Poisson-sampled iteration kills, the paper's
/// failure process) and the persist-pipeline crash matrix (exhaustive
/// backend-op boundaries in test_persist_pipeline.cpp) — the kill logic
/// itself lives once, in tests/support/kill_points.h.  Then the same
/// end-to-end loop under injected silent bit flips: every corrupt record
/// recovery encounters must be detected by CRC and degraded around, never
/// thrown on and never silently consumed.
///
/// All base seeds route through sweep_seed(), so `ctest -L seeds` reruns
/// the whole file over decorrelated universes via LOWDIFF_TEST_SEED.

constexpr std::uint64_t kTotalIters = 40;
constexpr double kRho = 0.05;

MlpConfig mlp() {
  MlpConfig cfg;
  cfg.input_dim = 10;
  cfg.hidden = {20, 16};
  cfg.num_classes = 5;
  return cfg;
}

TrainerConfig harness_cfg(OptimizerKind kind) {
  TrainerConfig cfg;
  cfg.world = 2;
  cfg.batch_size = 16;
  cfg.rho = kRho;
  cfg.optimizer = kind;
  cfg.adam.lr = 4e-3f;
  cfg.sgd.lr = 1e-2f;
  cfg.sgd.momentum = 0.9f;
  cfg.seed = sweep_seed(123);
  return cfg;
}

LowDiffStrategy::Options strategy_opt() {
  LowDiffStrategy::Options opt;
  opt.batch_size = 3;
  opt.full_interval = 5;
  return opt;
}

/// The harness body, kill schedule injected.  `recoveries_out` counts the
/// kills that landed after a durable full checkpoint (i.e. actually
/// exercised recovery rather than a from-scratch restart).
void run_crash_harness(const TrainerConfig& cfg,
                       const KillPointEnumerator& kill_points,
                       int* recoveries_out) {
  // Uninterrupted reference run.
  Trainer reference(mlp(), cfg);
  reference.run(0, kTotalIters, nullptr);

  int& recoveries = *recoveries_out;
  recoveries = 0;
  while (const auto kill_point = kill_points()) {
    const std::uint64_t kill = *kill_point;

    auto store = std::make_shared<CheckpointStore>(std::make_shared<MemStorage>());
    Trainer crashed(mlp(), cfg);
    {
      auto strategy = std::make_unique<LowDiffStrategy>(store, strategy_opt());
      crashed.run(0, kill, strategy.get());
    }  // destructor without flush(): the crash; a partial batch may be lost

    // Fresh "process": recover whatever is durable and finish the job.
    Trainer resumed(mlp(), cfg);
    std::uint64_t position = 0;
    if (!store->fulls().empty()) {
      RecoveryEngine engine(resumed.spec(), resumed.make_optimizer(),
                            TopKCompressor(kRho).clone());
      RecoveryReport report;
      const ModelState recovered = engine.recover_serial(*store, &report);
      ASSERT_LT(report.final_iteration, kill) << "kill=" << kill;
      EXPECT_EQ(report.corrupt_diffs_skipped, 0u);
      EXPECT_EQ(report.corrupt_fulls_skipped, 0u);
      position = report.final_iteration + 1;
      resumed.set_state(recovered);
      ++recoveries;
    }  // else: crashed before the first full checkpoint — restart from scratch
    resumed.run(position, kTotalIters - position, nullptr);

    ASSERT_TRUE(resumed.state(0).bit_equal(reference.state(0)))
        << "kill point " << kill << " broke bit-exactness";
  }
}

class CrashHarness : public ::testing::TestWithParam<OptimizerKind> {};

TEST_P(CrashHarness, RandomizedKillPointsRecoverBitExact) {
  const TrainerConfig cfg = harness_cfg(GetParam());
  // Kill points drawn from the simulator's failure process, decorrelated
  // per sweep universe.
  const int kKillPoints = 20;
  const std::uint64_t seed =
      sweep_seed(GetParam() == OptimizerKind::kAdam ? 101 : 202);
  int recoveries = 0;
  run_crash_harness(
      cfg, poisson_kill_points(/*mtbf_sec=*/15.0, seed, kKillPoints, kTotalIters),
      &recoveries);
  // The sampled kill points must actually exercise recovery, not just
  // from-scratch restarts.
  EXPECT_GE(recoveries, kKillPoints / 2);
}

INSTANTIATE_TEST_SUITE_P(Optimizers, CrashHarness,
                         ::testing::Values(OptimizerKind::kAdam,
                                           OptimizerKind::kSgd),
                         [](const auto& info) {
                           return info.param == OptimizerKind::kAdam ? "Adam"
                                                                     : "Sgd";
                         });

// --- corruption-aware recovery ------------------------------------------------

TEST(FaultTolerance, CorruptDiffTruncatesReplayAndIsCounted) {
  auto mem = std::make_shared<MemStorage>();
  auto store = std::make_shared<CheckpointStore>(mem);
  const TrainerConfig cfg = harness_cfg(OptimizerKind::kAdam);

  Trainer trainer(mlp(), cfg);
  LowDiffStrategy::Options opt;
  opt.batch_size = 2;
  opt.full_interval = 8;
  {
    auto strategy = std::make_unique<LowDiffStrategy>(store, opt);
    trainer.run(0, 20, strategy.get());
    strategy->flush();
  }
  // Fulls at 7 and 15; diff batches [16,17] and [18,19] follow the latest.
  ASSERT_EQ(*store->latest_full(), 15u);
  const auto diffs = store->diffs_after(15);
  ASSERT_EQ(diffs.size(), 4u);

  // Silently flip one bit in the *second* batch, bypassing the commit
  // protocol (the marker still promises the original CRC).
  const auto key = CheckpointStore::batch_key(18, 19);
  auto bytes = *mem->read(key);
  bytes[bytes.size() / 3] ^= std::byte{0x04};
  mem->write(key, bytes);

  RecoveryEngine engine(trainer.spec(), trainer.make_optimizer(),
                        TopKCompressor(kRho).clone());
  RecoveryReport report;
  const ModelState recovered = engine.recover_serial(*store, &report);

  // Both members of the corrupt batch are detected; the replay stops at the
  // last iteration before the damage instead of consuming bad state.
  EXPECT_EQ(report.corrupt_diffs_skipped, 2u);
  EXPECT_EQ(report.diffs_replayed, 2u);
  EXPECT_EQ(report.final_iteration, 17u);

  Trainer replay(mlp(), cfg);
  replay.run(0, 18, nullptr);
  EXPECT_TRUE(recovered.bit_equal(replay.state(0)));
}

TEST(FaultTolerance, InjectedBitFlipsAllDetectedAndDegraded) {
  const TrainerConfig cfg = harness_cfg(OptimizerKind::kAdam);
  set_log_level(LogLevel::kOff);  // recovery legitimately logs each corrupt record

  // A fault seed can be vacuous two ways: no flip ever fires, or a flip
  // kills *every* full checkpoint so there is nothing to degrade to.  Under
  // the seed sweep either can happen for some universes, so re-roll the
  // fault seed (bounded, deterministic) until the run is assertable.
  auto mem = std::make_shared<MemStorage>();
  std::shared_ptr<FaultInjectingStorage> faulty;
  std::shared_ptr<CheckpointStore> store;
  std::optional<Trainer> trainer;
  std::optional<std::uint64_t> base;
  std::uint64_t expected_bad_fulls = 0;
  constexpr int kMaxRolls = 8;
  for (int roll = 0; roll < kMaxRolls && !base.has_value(); ++roll) {
    FaultSpec spec;
    spec.bit_flip_rate = 0.15;
    // roll 0 in a normal run is the historical seed 31, unchanged.
    spec.seed = roll == 0 ? sweep_seed(31)
                          : test_support::mix_seed(sweep_seed(31), 7000 + roll);
    mem = std::make_shared<MemStorage>();
    faulty = std::make_shared<FaultInjectingStorage>(mem, spec);
    store = std::make_shared<CheckpointStore>(faulty);
    trainer.emplace(mlp(), cfg);
    LowDiffStrategy::Options opt;
    opt.batch_size = 2;
    opt.full_interval = 8;
    {
      auto strategy = std::make_unique<LowDiffStrategy>(store, opt);
      trainer->run(0, 30, strategy.get());
      strategy->flush();
    }
    if (faulty->fault_stats().bit_flips == 0) continue;  // vacuous: no damage
    faulty->set_armed(false);  // the storage medium is quiet during recovery

    // Ground truth from the manifest: the newest full a scan finds intact.
    expected_bad_fulls = 0;
    const auto fulls = store->fulls();
    for (auto it = fulls.rbegin(); it != fulls.rend(); ++it) {
      if (store->try_read_full(*it, trainer->spec()).ok()) {
        base = *it;
        break;
      }
      ++expected_bad_fulls;
    }  // base unset: every full corrupt — also vacuous, re-roll
  }
  ASSERT_TRUE(base.has_value())
      << kMaxRolls << " fault seeds in a row produced no assertable universe";

  // Recovery must report exactly the corrupt records a manifest scan finds
  // — no more, no fewer.
  std::uint64_t expected_bad_diffs = 0;
  for (std::uint64_t iter : store->diffs_after(*base)) {
    if (!store->try_read_diff(iter).ok()) ++expected_bad_diffs;
  }

  RecoveryEngine engine(trainer->spec(), trainer->make_optimizer(),
                        TopKCompressor(kRho).clone());
  RecoveryReport report;
  ModelState recovered(trainer->spec());
  // The headline requirement: corruption degrades, it does not throw.
  ASSERT_NO_THROW(recovered = engine.recover_serial(*store, &report));

  EXPECT_EQ(report.full_iteration, *base);
  EXPECT_EQ(report.corrupt_fulls_skipped, expected_bad_fulls);
  EXPECT_EQ(report.corrupt_diffs_skipped, expected_bad_diffs);

  // Whatever prefix survived, it is a *correct* prefix.
  Trainer replay(mlp(), cfg);
  replay.run(0, report.final_iteration + 1, nullptr);
  EXPECT_TRUE(recovered.bit_equal(replay.state(0)));
  set_log_level(LogLevel::kWarn);
}

}  // namespace
}  // namespace lowdiff
