#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>

#include "common/logging.h"
#include "compress/topk.h"
#include "core/recovery.h"
#include "core/trainer.h"
#include "sim/failure.h"
#include "storage/fault_injection.h"
#include "storage/mem_storage.h"

namespace lowdiff {
namespace {

/// Crash harness: kill training at randomized points (sampled from
/// sim::FailureModel, the paper's Poisson failure process), restart a fresh
/// "process", recover from the checkpoint store, resume — and require the
/// final state to be bit-exact against an uninterrupted run.  Then the same
/// end-to-end loop under injected silent bit flips: every corrupt record
/// recovery encounters must be detected by CRC and degraded around, never
/// thrown on and never silently consumed.

constexpr std::uint64_t kTotalIters = 40;
constexpr double kRho = 0.05;

MlpConfig mlp() {
  MlpConfig cfg;
  cfg.input_dim = 10;
  cfg.hidden = {20, 16};
  cfg.num_classes = 5;
  return cfg;
}

TrainerConfig harness_cfg(OptimizerKind kind) {
  TrainerConfig cfg;
  cfg.world = 2;
  cfg.batch_size = 16;
  cfg.rho = kRho;
  cfg.optimizer = kind;
  cfg.adam.lr = 4e-3f;
  cfg.sgd.lr = 1e-2f;
  cfg.sgd.momentum = 0.9f;
  cfg.seed = 123;
  return cfg;
}

LowDiffStrategy::Options strategy_opt() {
  LowDiffStrategy::Options opt;
  opt.batch_size = 3;
  opt.full_interval = 5;
  return opt;
}

class CrashHarness : public ::testing::TestWithParam<OptimizerKind> {};

TEST_P(CrashHarness, RandomizedKillPointsRecoverBitExact) {
  const TrainerConfig cfg = harness_cfg(GetParam());

  // Uninterrupted reference run.
  Trainer reference(mlp(), cfg);
  reference.run(0, kTotalIters, nullptr);

  // Kill points drawn from the simulator's failure process.
  sim::FailureModel failures(
      /*mtbf_sec=*/15.0,
      /*seed=*/GetParam() == OptimizerKind::kAdam ? 101 : 202);

  int recoveries = 0;
  const int kKillPoints = 20;
  for (int k = 0; k < kKillPoints; ++k) {
    const std::uint64_t kill =
        1 + static_cast<std::uint64_t>(failures.next().time) % (kTotalIters - 1);

    auto store = std::make_shared<CheckpointStore>(std::make_shared<MemStorage>());
    Trainer crashed(mlp(), cfg);
    {
      auto strategy = std::make_unique<LowDiffStrategy>(store, strategy_opt());
      crashed.run(0, kill, strategy.get());
    }  // destructor without flush(): the crash; a partial batch may be lost

    // Fresh "process": recover whatever is durable and finish the job.
    Trainer resumed(mlp(), cfg);
    std::uint64_t position = 0;
    if (!store->fulls().empty()) {
      RecoveryEngine engine(resumed.spec(), resumed.make_optimizer(),
                            TopKCompressor(kRho).clone());
      RecoveryReport report;
      const ModelState recovered = engine.recover_serial(*store, &report);
      ASSERT_LT(report.final_iteration, kill) << "kill=" << kill;
      EXPECT_EQ(report.corrupt_diffs_skipped, 0u);
      EXPECT_EQ(report.corrupt_fulls_skipped, 0u);
      position = report.final_iteration + 1;
      resumed.set_state(recovered);
      ++recoveries;
    }  // else: crashed before the first full checkpoint — restart from scratch
    resumed.run(position, kTotalIters - position, nullptr);

    ASSERT_TRUE(resumed.state(0).bit_equal(reference.state(0)))
        << "kill point " << kill << " broke bit-exactness";
  }
  // The sampled kill points must actually exercise recovery, not just
  // from-scratch restarts.
  EXPECT_GE(recoveries, kKillPoints / 2);
}

INSTANTIATE_TEST_SUITE_P(Optimizers, CrashHarness,
                         ::testing::Values(OptimizerKind::kAdam,
                                           OptimizerKind::kSgd),
                         [](const auto& info) {
                           return info.param == OptimizerKind::kAdam ? "Adam"
                                                                     : "Sgd";
                         });

// --- corruption-aware recovery ------------------------------------------------

TEST(FaultTolerance, CorruptDiffTruncatesReplayAndIsCounted) {
  auto mem = std::make_shared<MemStorage>();
  auto store = std::make_shared<CheckpointStore>(mem);
  const TrainerConfig cfg = harness_cfg(OptimizerKind::kAdam);

  Trainer trainer(mlp(), cfg);
  LowDiffStrategy::Options opt;
  opt.batch_size = 2;
  opt.full_interval = 8;
  {
    auto strategy = std::make_unique<LowDiffStrategy>(store, opt);
    trainer.run(0, 20, strategy.get());
    strategy->flush();
  }
  // Fulls at 7 and 15; diff batches [16,17] and [18,19] follow the latest.
  ASSERT_EQ(*store->latest_full(), 15u);
  const auto diffs = store->diffs_after(15);
  ASSERT_EQ(diffs.size(), 4u);

  // Silently flip one bit in the *second* batch, bypassing the commit
  // protocol (the marker still promises the original CRC).
  const auto key = CheckpointStore::batch_key(18, 19);
  auto bytes = *mem->read(key);
  bytes[bytes.size() / 3] ^= std::byte{0x04};
  mem->write(key, bytes);

  RecoveryEngine engine(trainer.spec(), trainer.make_optimizer(),
                        TopKCompressor(kRho).clone());
  RecoveryReport report;
  const ModelState recovered = engine.recover_serial(*store, &report);

  // Both members of the corrupt batch are detected; the replay stops at the
  // last iteration before the damage instead of consuming bad state.
  EXPECT_EQ(report.corrupt_diffs_skipped, 2u);
  EXPECT_EQ(report.diffs_replayed, 2u);
  EXPECT_EQ(report.final_iteration, 17u);

  Trainer replay(mlp(), cfg);
  replay.run(0, 18, nullptr);
  EXPECT_TRUE(recovered.bit_equal(replay.state(0)));
}

TEST(FaultTolerance, InjectedBitFlipsAllDetectedAndDegraded) {
  FaultSpec spec;
  spec.bit_flip_rate = 0.15;
  spec.seed = 31;
  auto mem = std::make_shared<MemStorage>();
  auto faulty = std::make_shared<FaultInjectingStorage>(mem, spec);
  auto store = std::make_shared<CheckpointStore>(faulty);
  const TrainerConfig cfg = harness_cfg(OptimizerKind::kAdam);

  set_log_level(LogLevel::kOff);  // recovery legitimately logs each corrupt record
  Trainer trainer(mlp(), cfg);
  LowDiffStrategy::Options opt;
  opt.batch_size = 2;
  opt.full_interval = 8;
  {
    auto strategy = std::make_unique<LowDiffStrategy>(store, opt);
    trainer.run(0, 30, strategy.get());
    strategy->flush();
  }
  ASSERT_GT(faulty->fault_stats().bit_flips, 0u)
      << "seed produced no corruption; the test would be vacuous";
  faulty->set_armed(false);  // the storage medium is quiet during recovery

  // Ground truth from the manifest: which records does a scan actually find
  // corrupt?  Recovery must report exactly these — no more, no fewer.
  std::uint64_t expected_bad_fulls = 0;
  std::optional<std::uint64_t> base;
  const auto fulls = store->fulls();
  for (auto it = fulls.rbegin(); it != fulls.rend(); ++it) {
    if (store->try_read_full(*it, trainer.spec()).ok()) {
      base = *it;
      break;
    }
    ++expected_bad_fulls;
  }
  ASSERT_TRUE(base.has_value()) << "every full corrupt; pick another seed";
  std::uint64_t expected_bad_diffs = 0;
  for (std::uint64_t iter : store->diffs_after(*base)) {
    if (!store->try_read_diff(iter).ok()) ++expected_bad_diffs;
  }

  RecoveryEngine engine(trainer.spec(), trainer.make_optimizer(),
                        TopKCompressor(kRho).clone());
  RecoveryReport report;
  ModelState recovered(trainer.spec());
  // The headline requirement: corruption degrades, it does not throw.
  ASSERT_NO_THROW(recovered = engine.recover_serial(*store, &report));

  EXPECT_EQ(report.full_iteration, *base);
  EXPECT_EQ(report.corrupt_fulls_skipped, expected_bad_fulls);
  EXPECT_EQ(report.corrupt_diffs_skipped, expected_bad_diffs);

  // Whatever prefix survived, it is a *correct* prefix.
  Trainer replay(mlp(), cfg);
  replay.run(0, report.final_iteration + 1, nullptr);
  EXPECT_TRUE(recovered.bit_equal(replay.state(0)));
  set_log_level(LogLevel::kWarn);
}

}  // namespace
}  // namespace lowdiff
