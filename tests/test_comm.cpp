#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "comm/comm_group.h"
#include "comm/network_model.h"
#include "common/rng.h"
#include "compress/topk.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace lowdiff {
namespace {

/// Runs `fn(rank)` on `world` threads and joins.
void spawn_ranks(std::size_t world, const std::function<void(std::size_t)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(world);
  for (std::size_t r = 0; r < world; ++r) threads.emplace_back(fn, r);
  for (auto& t : threads) t.join();
}

class CommWorlds : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CommWorlds, AllreduceSumEqualsSerialSum) {
  const std::size_t world = GetParam();
  const std::size_t n = 257;
  CommGroup comm(world);

  // Per-rank inputs and the expected rank-ordered serial sum.
  std::vector<Tensor> inputs;
  Tensor expected(n);
  for (std::size_t r = 0; r < world; ++r) {
    Tensor t(n);
    Xoshiro256 rng(100 + r);
    ops::fill_normal(t.span(), rng, 1.0f);
    inputs.push_back(std::move(t));
  }
  // The implementation reduces in rank order with float accumulation into a
  // zero-initialized buffer; reproduce exactly for bitwise comparison.
  {
    std::vector<float> acc(n, 0.0f);
    for (std::size_t r = 0; r < world; ++r) {
      for (std::size_t i = 0; i < n; ++i) acc[i] += inputs[r][i];
    }
    for (std::size_t i = 0; i < n; ++i) expected[i] = acc[i];
  }

  std::vector<Tensor> outputs(world);
  for (auto& t : outputs) t = Tensor(n);
  spawn_ranks(world, [&](std::size_t rank) {
    ops::copy(inputs[rank].cspan(), outputs[rank].span());
    comm.allreduce_sum(rank, outputs[rank].span());
  });

  for (std::size_t r = 0; r < world; ++r) {
    EXPECT_TRUE(ops::bit_equal(outputs[r].cspan(), expected.cspan()))
        << "rank " << r << " result differs";
  }
}

TEST_P(CommWorlds, AllgatherReturnsEveryContribution) {
  const std::size_t world = GetParam();
  CommGroup comm(world);
  TopKCompressor comp(0.5);

  std::vector<std::vector<CompressedGrad>> gathered(world);
  spawn_ranks(world, [&](std::size_t rank) {
    Tensor g(16);
    Xoshiro256 rng(rank + 1);
    ops::fill_normal(g.span(), rng, 1.0f);
    const auto mine = comp.compress(g.cspan(), 9);
    gathered[rank] = comm.allgather(rank, mine);
  });

  for (std::size_t r = 0; r < world; ++r) {
    ASSERT_EQ(gathered[r].size(), world);
    EXPECT_EQ(gathered[r], gathered[0]);  // identical view everywhere
  }
}

TEST_P(CommWorlds, AllreduceSparseIdenticalAcrossRanks) {
  const std::size_t world = GetParam();
  CommGroup comm(world);
  TopKCompressor comp(0.1);

  std::vector<CompressedGrad> merged(world);
  spawn_ranks(world, [&](std::size_t rank) {
    Tensor g(500);
    Xoshiro256 rng(rank * 17 + 3);
    ops::fill_normal(g.span(), rng, 1.0f);
    merged[rank] = comm.allreduce_sparse(rank, comp.compress(g.cspan(), 0));
  });

  for (std::size_t r = 1; r < world; ++r) EXPECT_EQ(merged[r], merged[0]);
  // Union of k-per-rank coordinates, bounded by world * k.
  EXPECT_GE(merged[0].indices.size(), 50u);
  EXPECT_LE(merged[0].indices.size(), 50u * world);
}

INSTANTIATE_TEST_SUITE_P(Worlds, CommWorlds, ::testing::Values(1, 2, 3, 4, 8));

TEST(CommGroup, RepeatedCollectivesStayConsistent) {
  const std::size_t world = 4;
  CommGroup comm(world);
  std::vector<Tensor> data(world);
  for (auto& t : data) t = Tensor(64);

  spawn_ranks(world, [&](std::size_t rank) {
    for (int iter = 0; iter < 25; ++iter) {
      for (std::size_t i = 0; i < 64; ++i) {
        data[rank][i] = static_cast<float>(rank + iter);
      }
      comm.allreduce_sum(rank, data[rank].span());
      // sum over ranks of (rank + iter) = world*iter + 0+1+2+3
      const float expected = static_cast<float>(world * iter + 6);
      for (std::size_t i = 0; i < 64; ++i) {
        ASSERT_EQ(data[rank][i], expected) << "iter " << iter;
      }
    }
  });
}

TEST(CommGroup, ModeledTimeCharged) {
  CommGroup comm(2, NetworkModel{links::ib_25gbps(), 2}, /*time_scale=*/0.0);
  Tensor a(1024), b(1024);
  spawn_ranks(2, [&](std::size_t rank) {
    comm.allreduce_sum(rank, (rank == 0 ? a : b).span());
  });
  EXPECT_GT(comm.modeled_comm_time(0), 0.0);
  EXPECT_DOUBLE_EQ(comm.modeled_comm_time(0), comm.modeled_comm_time(1));
}

TEST(CommGroup, RankOutOfRangeThrows) {
  CommGroup comm(2);
  Tensor t(4);
  EXPECT_THROW(comm.allreduce_sum(5, t.span()), Error);
}

TEST(NetworkModel, RingAllreduceFormula) {
  NetworkModel nm{LinkSpec{1.0e9, 0.0}, 4};
  // 2*(4-1)/4 * bytes / bw
  EXPECT_NEAR(nm.allreduce_time(1'000'000'000ull), 1.5, 1e-9);
  nm.world = 1;
  EXPECT_EQ(nm.allreduce_time(123), 0.0);
}

TEST(NetworkModel, AllgatherFormula) {
  NetworkModel nm{LinkSpec{1.0e9, 0.0}, 5};
  EXPECT_NEAR(nm.allgather_time(250'000'000ull), 1.0, 1e-9);
}

TEST(NetworkModel, BroadcastLogHops) {
  NetworkModel nm{LinkSpec{1.0e9, 1e-3}, 8};
  // ceil(log2(8)) = 3 hops
  EXPECT_NEAR(nm.broadcast_time(1'000'000'000ull), 3.0 * (1.0 + 1e-3), 1e-9);
}

TEST(CommGroup, BroadcastCopiesRootToAll) {
  const std::size_t world = 4;
  CommGroup comm(world);
  std::vector<Tensor> data(world);
  for (std::size_t r = 0; r < world; ++r) {
    data[r] = Tensor(32);
    for (std::size_t i = 0; i < 32; ++i) {
      data[r][i] = static_cast<float>(r * 100 + i);
    }
  }
  spawn_ranks(world, [&](std::size_t rank) { comm.broadcast(rank, 2, data[rank].span()); });
  for (std::size_t r = 0; r < world; ++r) {
    EXPECT_TRUE(ops::bit_equal(data[r].cspan(), data[2].cspan())) << "rank " << r;
  }
}

TEST(CommGroup, BroadcastSingleRankIsNoop) {
  CommGroup comm(1);
  Tensor t = Tensor::from_values({1, 2, 3});
  comm.broadcast(0, 0, t.span());
  EXPECT_EQ(t[1], 2.0f);
}

TEST(Barrier, ReleasesAllParties) {
  Barrier barrier(4);
  std::atomic<int> before{0}, after{0};
  spawn_ranks(4, [&](std::size_t) {
    ++before;
    barrier.arrive_and_wait();
    EXPECT_EQ(before.load(), 4);
    ++after;
    barrier.arrive_and_wait();
    EXPECT_EQ(after.load(), 4);
  });
}

}  // namespace
}  // namespace lowdiff
