#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "compress/compressed_grad.h"
#include "compress/dense.h"
#include "compress/error_feedback.h"
#include "compress/merge.h"
#include "compress/quant8.h"
#include "compress/randomk.h"
#include "compress/topk.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace lowdiff {
namespace {

Tensor random_grad(std::size_t n, std::uint64_t seed) {
  Tensor t(n);
  Xoshiro256 rng(seed);
  ops::fill_normal(t.span(), rng, 1.0f);
  return t;
}

// --- TopK --------------------------------------------------------------------

TEST(TopK, KeepsExactlyTheLargestMagnitudes) {
  auto g = Tensor::from_values({0.1f, -5.0f, 0.2f, 4.0f, -0.3f, 3.0f});
  TopKCompressor comp(0.5);  // k = 3
  const auto payload = comp.compress(g.cspan(), 0);
  ASSERT_EQ(payload.indices.size(), 3u);
  EXPECT_EQ(payload.indices[0], 1u);
  EXPECT_EQ(payload.indices[1], 3u);
  EXPECT_EQ(payload.indices[2], 5u);
  EXPECT_FLOAT_EQ(payload.values[0], -5.0f);
  EXPECT_FLOAT_EQ(payload.values[1], 4.0f);
  EXPECT_FLOAT_EQ(payload.values[2], 3.0f);
}

TEST(TopK, DecompressRestoresKeptZerosElsewhere) {
  auto g = random_grad(1000, 1);
  TopKCompressor comp(0.01);
  const auto payload = comp.compress(g.cspan(), 7);
  EXPECT_EQ(payload.iteration, 7u);
  Tensor out(1000);
  comp.decompress(payload, out.span());
  std::size_t nonzero = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] != 0.0f) {
      ++nonzero;
      EXPECT_EQ(out[i], g[i]);
    }
  }
  EXPECT_EQ(nonzero, comp.k_for(1000));
}

TEST(TopK, DeterministicTieBreak) {
  auto g = Tensor::from_values({1.0f, 1.0f, 1.0f, 1.0f});
  TopKCompressor comp(0.5);
  const auto p1 = comp.compress(g.cspan(), 0);
  const auto p2 = comp.compress(g.cspan(), 0);
  EXPECT_EQ(p1, p2);
  ASSERT_EQ(p1.indices.size(), 2u);
  EXPECT_EQ(p1.indices[0], 0u);  // lower index wins ties
  EXPECT_EQ(p1.indices[1], 1u);
}

TEST(TopK, AtLeastOneElementKept) {
  auto g = random_grad(100, 3);
  TopKCompressor comp(0.001);  // 0.1 of an element -> clamped to 1
  EXPECT_EQ(comp.k_for(100), 1u);
  const auto payload = comp.compress(g.cspan(), 0);
  EXPECT_EQ(payload.indices.size(), 1u);
}

TEST(TopK, RejectsBadRatio) {
  EXPECT_THROW(TopKCompressor(0.0), Error);
  EXPECT_THROW(TopKCompressor(1.5), Error);
}

class TopKRatios : public ::testing::TestWithParam<double> {};

TEST_P(TopKRatios, PayloadSizeTracksRho) {
  const double rho = GetParam();
  const std::size_t n = 50'000;
  auto g = random_grad(n, 5);
  TopKCompressor comp(rho);
  const auto payload = comp.compress(g.cspan(), 0);
  // Wire size ~ 8 bytes per kept element (index + value) + header.
  const double expected = 8.0 * rho * static_cast<double>(n);
  EXPECT_NEAR(static_cast<double>(payload.byte_size()), expected,
              expected * 0.05 + 64);
}

INSTANTIATE_TEST_SUITE_P(RhoSweep, TopKRatios,
                         ::testing::Values(0.001, 0.01, 0.05, 0.1));

// --- RandomK ------------------------------------------------------------------

TEST(RandomK, SameIterationSameCoordinatesAcrossInstances) {
  // Two workers with the same seed must select identical coordinates or
  // the sparse allreduce sums mismatched entries.
  auto g1 = random_grad(500, 1);
  auto g2 = random_grad(500, 2);
  RandomKCompressor a(0.05, 99), b(0.05, 99);
  const auto p1 = a.compress(g1.cspan(), 13);
  const auto p2 = b.compress(g2.cspan(), 13);
  EXPECT_EQ(p1.indices, p2.indices);
  const auto p3 = a.compress(g1.cspan(), 14);
  EXPECT_NE(p1.indices, p3.indices);
}

TEST(RandomK, IndicesDistinctAndSorted) {
  auto g = random_grad(1000, 4);
  RandomKCompressor comp(0.1, 5);
  const auto payload = comp.compress(g.cspan(), 0);
  EXPECT_EQ(payload.indices.size(), 100u);
  EXPECT_TRUE(std::is_sorted(payload.indices.begin(), payload.indices.end()));
  EXPECT_EQ(std::adjacent_find(payload.indices.begin(), payload.indices.end()),
            payload.indices.end());
}

TEST(RandomK, RoundTrip) {
  auto g = random_grad(256, 8);
  RandomKCompressor comp(0.25, 1);
  const auto payload = comp.compress(g.cspan(), 3);
  Tensor out(256);
  comp.decompress(payload, out.span());
  for (std::size_t i = 0; i < payload.indices.size(); ++i) {
    EXPECT_EQ(out[payload.indices[i]], g[payload.indices[i]]);
  }
}

// --- Quant8 -------------------------------------------------------------------

TEST(Quant8, BoundedRelativeBlockError) {
  auto g = random_grad(1024, 9);
  Quant8Compressor comp;
  const auto payload = comp.compress(g.cspan(), 0);
  Tensor out(1024);
  comp.decompress(payload, out.span());
  for (std::size_t b = 0; b < 4; ++b) {
    float block_max = 0.0f;
    for (std::size_t i = b * 256; i < (b + 1) * 256; ++i) {
      block_max = std::max(block_max, std::fabs(g[i]));
    }
    const float tolerance = block_max / 127.0f * 0.51f;
    for (std::size_t i = b * 256; i < (b + 1) * 256; ++i) {
      EXPECT_NEAR(out[i], g[i], tolerance);
    }
  }
}

TEST(Quant8, HandlesZeroBlockAndTail) {
  Tensor g(300);  // one full block + a 44-element tail, all zeros
  Quant8Compressor comp;
  const auto payload = comp.compress(g.cspan(), 0);
  EXPECT_EQ(payload.scales.size(), 2u);
  EXPECT_EQ(payload.codes.size(), 300u);
  Tensor out(300);
  comp.decompress(payload, out.span());
  for (std::size_t i = 0; i < 300; ++i) EXPECT_EQ(out[i], 0.0f);
}

TEST(Quant8, NominalRatioNearQuarter) {
  Quant8Compressor comp;
  EXPECT_NEAR(comp.nominal_ratio(), 0.25, 0.01);
}

// --- Dense --------------------------------------------------------------------

TEST(Dense, ExactRoundTrip) {
  auto g = random_grad(128, 10);
  DenseCompressor comp;
  const auto payload = comp.compress(g.cspan(), 2);
  Tensor out(128);
  comp.decompress(payload, out.span());
  EXPECT_TRUE(ops::bit_equal(g.cspan(), out.cspan()));
  EXPECT_EQ(comp.nominal_ratio(), 1.0);
}

// --- Error feedback -------------------------------------------------------------

TEST(ErrorFeedback, ResidualPlusPayloadEqualsCorrectedGradient) {
  const std::size_t n = 200;
  auto g = random_grad(n, 11);
  ErrorFeedback ef(std::make_unique<TopKCompressor>(0.1), n);
  const auto payload = ef.compress(g.cspan(), 0);
  Tensor decompressed(n);
  TopKCompressor(0.1).decompress(payload, decompressed.span());
  // residual + decompressed == g (first iteration: corrected == g).
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(ef.residual()[i] + decompressed[i], g[i], 1e-6f);
  }
}

TEST(ErrorFeedback, EventuallyTransmitsEverything) {
  // A constant gradient: with error feedback the cumulative transmitted
  // mass converges to iteration * gradient even though each payload only
  // carries 10% of the coordinates.
  const std::size_t n = 50;
  Tensor g(n);
  for (std::size_t i = 0; i < n; ++i) g[i] = 1.0f + 0.001f * static_cast<float>(i);
  ErrorFeedback ef(std::make_unique<TopKCompressor>(0.1), n);
  Tensor cumulative(n);
  TopKCompressor ref(0.1);
  const int iters = 60;
  for (int t = 0; t < iters; ++t) {
    const auto payload = ef.compress(g.cspan(), t);
    accumulate_decompressed(ref, payload, cumulative.span());
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(cumulative[i] / iters, g[i], g[i] * 0.25);
  }
}

TEST(ErrorFeedback, ResetClearsResidual) {
  auto g = random_grad(64, 12);
  ErrorFeedback ef(std::make_unique<TopKCompressor>(0.1), 64);
  ef.compress(g.cspan(), 0);
  EXPECT_GT(ops::max_abs(ef.residual()), 0.0f);
  ef.reset();
  EXPECT_EQ(ops::max_abs(ef.residual()), 0.0f);
}

// --- serialization ---------------------------------------------------------------

TEST(CompressedGrad, SerializeRoundTripSparse) {
  auto g = random_grad(512, 13);
  TopKCompressor comp(0.05);
  const auto payload = comp.compress(g.cspan(), 21);
  const auto bytes = payload.serialize();
  const auto back = CompressedGrad::deserialize(bytes);
  EXPECT_EQ(payload, back);
}

TEST(CompressedGrad, SerializeRoundTripQuant) {
  auto g = random_grad(400, 14);
  Quant8Compressor comp;
  const auto payload = comp.compress(g.cspan(), 5);
  const auto back = CompressedGrad::deserialize(payload.serialize());
  EXPECT_EQ(payload, back);
}

TEST(CompressedGrad, TruncatedBytesRejected) {
  auto g = random_grad(100, 15);
  const auto bytes = TopKCompressor(0.1).compress(g.cspan(), 0).serialize();
  const std::span<const std::byte> truncated(bytes.data(), bytes.size() - 3);
  EXPECT_THROW(CompressedGrad::deserialize(truncated), Error);
}

// --- merging / batching ------------------------------------------------------------

TEST(Merge, SparseSumIsIndexUnionWithSummedValues) {
  CompressedGrad a, b;
  a.scheme = b.scheme = CompressionScheme::kTopK;
  a.dense_size = b.dense_size = 10;
  a.iteration = 1;
  b.iteration = 2;
  a.indices = {1, 4, 7};
  a.values = {1.0f, 2.0f, 3.0f};
  b.indices = {4, 9};
  b.values = {10.0f, 20.0f};

  const CompressedGrad payloads[] = {a, b};
  const auto merged = merge_sparse_sum(payloads);
  EXPECT_EQ(merged.iteration, 2u);
  ASSERT_EQ(merged.indices.size(), 4u);
  EXPECT_EQ(merged.indices, (std::vector<std::uint32_t>{1, 4, 7, 9}));
  EXPECT_EQ(merged.values, (std::vector<float>{1.0f, 12.0f, 3.0f, 20.0f}));
}

TEST(Merge, RejectsMixedDenseSizesAndEmpty) {
  CompressedGrad a, b;
  a.scheme = b.scheme = CompressionScheme::kTopK;
  a.dense_size = 10;
  b.dense_size = 11;
  const CompressedGrad payloads[] = {a, b};
  EXPECT_THROW(merge_sparse_sum(payloads), Error);
  EXPECT_THROW(merge_sparse_sum(std::span<const CompressedGrad>()), Error);
}

TEST(Merge, SumEqualsDenseSum) {
  const std::size_t n = 300;
  TopKCompressor comp(0.1);
  std::vector<CompressedGrad> payloads;
  Tensor dense_sum(n);
  for (int i = 0; i < 5; ++i) {
    auto g = random_grad(n, 100 + i);
    payloads.push_back(comp.compress(g.cspan(), i));
    accumulate_decompressed(comp, payloads.back(), dense_sum.span());
  }
  const auto merged = merge_sparse_sum(payloads);
  Tensor merged_dense(n);
  comp.decompress(merged, merged_dense.span());
  EXPECT_LT(ops::max_abs_diff(dense_sum.cspan(), merged_dense.cspan()), 1e-5f);
}

TEST(BatchedGrad, SerializeRoundTrip) {
  TopKCompressor comp(0.1);
  BatchedGrad batch;
  batch.first_iteration = 10;
  batch.last_iteration = 12;
  for (int i = 0; i < 3; ++i) {
    auto g = random_grad(64, 200 + i);
    batch.members.push_back(comp.compress(g.cspan(), 10 + i));
  }
  const auto back = BatchedGrad::deserialize(batch.serialize());
  EXPECT_EQ(back.first_iteration, 10u);
  EXPECT_EQ(back.last_iteration, 12u);
  ASSERT_EQ(back.members.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(back.members[i], batch.members[i]);
}

// --- Finding 2 -----------------------------------------------------------------------

TEST(Finding2, CompressedGradientIsOneThirdOfCompressedDifferential) {
  // A gradient is Ψ elements; a differential checkpoint is 3Ψ (params +
  // both Adam moments).  Same compressor => ~3x the wire size.
  const std::size_t psi = 30'000;
  TopKCompressor comp(0.01);
  auto grad = random_grad(psi, 42);
  auto diff = random_grad(3 * psi, 43);
  const auto grad_payload = comp.compress(grad.cspan(), 0);
  const auto diff_payload = comp.compress(diff.cspan(), 0);
  const double ratio = static_cast<double>(diff_payload.byte_size()) /
                       static_cast<double>(grad_payload.byte_size());
  EXPECT_NEAR(ratio, 3.0, 0.1);
}

}  // namespace
}  // namespace lowdiff

namespace lowdiff {
namespace {

TEST(CompressedGrad, IndexValueCountMismatchRejected) {
  CompressedGrad g;
  g.scheme = CompressionScheme::kTopK;
  g.dense_size = 10;
  g.indices = {1, 2};
  g.values = {1.0f};  // mismatch
  const auto bytes = g.serialize();
  EXPECT_THROW(CompressedGrad::deserialize(bytes), Error);
}

TEST(Quant8, ExtremeValuesClampToCodeRange) {
  Tensor g(256);
  g[0] = 1.0e30f;
  g[1] = -1.0e30f;
  g[2] = 1.0f;  // tiny relative to the block max
  Quant8Compressor comp;
  const auto payload = comp.compress(g.cspan(), 0);
  Tensor out(256);
  comp.decompress(payload, out.span());
  EXPECT_GT(out[0], 0.0f);
  EXPECT_LT(out[1], 0.0f);
  EXPECT_EQ(out[2], 0.0f);  // quantized away by the huge block scale
}

TEST(TopK, FullRatioIsLossless) {
  auto make = [] {
    Tensor t(100);
    Xoshiro256 rng(3);
    ops::fill_normal(t.span(), rng, 1.0f);
    return t;
  };
  const auto g = make();
  TopKCompressor comp(1.0);
  Tensor out(100);
  comp.decompress(comp.compress(g.cspan(), 0), out.span());
  EXPECT_TRUE(ops::bit_equal(g.cspan(), out.cspan()));
}

TEST(Merge, SingletonIsIdentity) {
  Tensor g(64);
  Xoshiro256 rng(5);
  ops::fill_normal(g.span(), rng, 1.0f);
  const auto payload = TopKCompressor(0.25).compress(g.cspan(), 4);
  const CompressedGrad one[] = {payload};
  EXPECT_EQ(merge_sparse_sum(one), payload);
}

TEST(Merge, ManyPayloadsMatchDenseSum) {
  // Stress the fold path with 16 payloads.
  const std::size_t n = 400;
  TopKCompressor comp(0.05);
  std::vector<CompressedGrad> payloads;
  Tensor dense_sum(n);
  for (int i = 0; i < 16; ++i) {
    Tensor g(n);
    Xoshiro256 rng(300 + i);
    ops::fill_normal(g.span(), rng, 1.0f);
    payloads.push_back(comp.compress(g.cspan(), i));
    accumulate_decompressed(comp, payloads.back(), dense_sum.span());
  }
  Tensor merged_dense(n);
  comp.decompress(merge_sparse_sum(payloads), merged_dense.span());
  EXPECT_LT(ops::max_abs_diff(dense_sum.cspan(), merged_dense.cspan()), 1e-4f);
}

}  // namespace
}  // namespace lowdiff
