#include <gtest/gtest.h>

#include <cmath>

#include "model/dataset.h"
#include "model/grad_gen.h"
#include "model/mlp.h"
#include "model/model_state.h"
#include "model/zoo.h"
#include "tensor/ops.h"

namespace lowdiff {
namespace {

// --- model zoo -------------------------------------------------------------

struct ZooCase {
  const char* name;
  std::size_t params;
};

class ZooParamCount : public ::testing::TestWithParam<ZooCase> {};

TEST_P(ZooParamCount, MatchesPaperTable2b) {
  const auto spec = zoo::by_name(GetParam().name);
  EXPECT_EQ(spec.param_count(), GetParam().params);
  EXPECT_EQ(spec.full_checkpoint_bytes(), 3 * 4 * GetParam().params);
  EXPECT_GT(spec.layer_count(), 10u);  // real structure, not one blob
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ZooParamCount,
    ::testing::Values(ZooCase{"ResNet-50", 25'600'000},
                      ZooCase{"ResNet-101", 44'500'000},
                      ZooCase{"VGG-16", 138'800'000},
                      ZooCase{"VGG-19", 143'700'000},
                      ZooCase{"BERT-B", 110'000'000},
                      ZooCase{"BERT-L", 334'000'000},
                      ZooCase{"GPT2-S", 117'000'000},
                      ZooCase{"GPT2-L", 762'000'000}),
    [](const auto& info) {
      std::string n = info.param.name;
      for (auto& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST(Zoo, UnknownNameThrows) { EXPECT_THROW(zoo::by_name("AlexNet"), Error); }

TEST(Zoo, AllReturnsEight) { EXPECT_EQ(zoo::all().size(), 8u); }

TEST(ModelSpec, LayerOffsetsArePrefixSums) {
  const auto spec = zoo::resnet50();
  const auto offsets = spec.layer_offsets();
  ASSERT_EQ(offsets.size(), spec.layer_count() + 1);
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(offsets.back(), spec.param_count());
  for (std::size_t i = 0; i < spec.layer_count(); ++i) {
    EXPECT_EQ(offsets[i + 1] - offsets[i], spec.layers[i].size());
  }
}

TEST(ModelSpec, ScaledShrinksParams) {
  const auto spec = zoo::gpt2_small();
  const auto small = spec.scaled(1.0 / 64.0);
  EXPECT_LT(small.param_count(), spec.param_count() / 16);
  EXPECT_EQ(small.layer_count(), spec.layer_count());
}

TEST(ModelSpec, ScaledRejectsNonPositive) {
  EXPECT_THROW(zoo::resnet50().scaled(0.0), Error);
}

TEST(ModelSpec, PartitionPreservesLayersAndParams) {
  // VGG-16's classifier.0 weight alone is ~74% of the parameters, so
  // stage balance is impossible there — only conservation is checked.
  const auto spec = zoo::vgg16();
  const auto stages = spec.partition(4);
  ASSERT_EQ(stages.size(), 4u);
  std::size_t total_layers = 0, total_params = 0;
  for (const auto& s : stages) {
    total_layers += s.layer_count();
    total_params += s.param_count();
    EXPECT_GT(s.layer_count(), 0u);
  }
  EXPECT_EQ(total_layers, spec.layer_count());
  EXPECT_EQ(total_params, spec.param_count());
}

TEST(ModelSpec, PartitionBalancesUniformModels) {
  // ResNet-101 has no dominant layer: stages should be roughly balanced.
  const auto spec = zoo::resnet101();
  const auto stages = spec.partition(4);
  for (const auto& s : stages) {
    EXPECT_LT(s.param_count(), spec.param_count() / 2);
    EXPECT_GT(s.param_count(), spec.param_count() / 20);
  }
}

TEST(ModelSpec, PartitionEdgeCases) {
  const auto spec = zoo::resnet50();
  EXPECT_EQ(spec.partition(1).size(), 1u);
  EXPECT_THROW(spec.partition(0), Error);
  EXPECT_THROW(spec.partition(spec.layer_count() + 1), Error);
}

// --- model state -----------------------------------------------------------

ModelSpec tiny_spec() {
  ModelSpec spec;
  spec.name = "tiny";
  spec.layers = {{"a", {4, 3}}, {"b", {4}}, {"c", {2, 4}}};
  return spec;
}

TEST(ModelState, LayerViewsPartitionParams) {
  ModelState state(tiny_spec());
  EXPECT_EQ(state.param_count(), 12u + 4u + 8u);
  EXPECT_EQ(state.layer_params(0).size(), 12u);
  EXPECT_EQ(state.layer_params(1).size(), 4u);
  EXPECT_EQ(state.layer_offset(2), 16u);
  EXPECT_THROW(state.layer_params(3), Error);
}

TEST(ModelState, InitRandomDeterministicAcrossInstances) {
  ModelState a(tiny_spec()), b(tiny_spec());
  a.init_random(99);
  b.init_random(99);
  EXPECT_TRUE(a.bit_equal(b));
  b.init_random(100);
  EXPECT_FALSE(a.bit_equal(b));
}

TEST(ModelState, BiasesInitializedToZero) {
  ModelState state(tiny_spec());
  state.init_random(1);
  for (float v : state.layer_params(1)) EXPECT_EQ(v, 0.0f);  // 1-D layer
  // 2-D layer gets nonzero weights.
  EXPECT_GT(ops::max_abs(state.layer_params(0)), 0.0f);
}

TEST(ModelState, CloneIsDeepAndTracksStep) {
  ModelState a(tiny_spec());
  a.init_random(3);
  a.set_step(17);
  ModelState b = a.clone();
  EXPECT_TRUE(a.bit_equal(b));
  b.params()[0] += 1.0f;
  EXPECT_FALSE(a.bit_equal(b));
  b.params()[0] -= 1.0f;
  b.set_step(18);
  EXPECT_FALSE(a.bit_equal(b));  // step participates in equality
}

// --- synthetic gradients ----------------------------------------------------

TEST(GradGen, DeterministicPerIterationWorkerLayer) {
  const auto spec = tiny_spec();
  SyntheticGradientGenerator gen(spec, 7);
  Tensor g1(spec.param_count()), g2(spec.param_count());
  gen.generate(5, 2, g1);
  gen.generate(5, 2, g2);
  EXPECT_TRUE(ops::bit_equal(g1.cspan(), g2.cspan()));
  gen.generate(6, 2, g2);
  EXPECT_FALSE(ops::bit_equal(g1.cspan(), g2.cspan()));
  gen.generate(5, 3, g2);
  EXPECT_FALSE(ops::bit_equal(g1.cspan(), g2.cspan()));
}

TEST(GradGen, LayerSlicesComposeToFullGradient) {
  const auto spec = tiny_spec();
  SyntheticGradientGenerator gen(spec, 7);
  Tensor full(spec.param_count());
  gen.generate(3, 0, full);
  const auto offsets = spec.layer_offsets();
  Tensor assembled(spec.param_count());
  for (std::size_t l = 0; l < spec.layer_count(); ++l) {
    gen.generate_layer(3, 0, l,
                       assembled.span().subspan(offsets[l],
                                                offsets[l + 1] - offsets[l]));
  }
  EXPECT_TRUE(ops::bit_equal(full.cspan(), assembled.cspan()));
}

TEST(GradGen, RejectsBadSizes) {
  const auto spec = tiny_spec();
  SyntheticGradientGenerator gen(spec, 7);
  Tensor wrong(spec.param_count() + 1);
  EXPECT_THROW(gen.generate(0, 0, wrong), Error);
}

// --- dataset ----------------------------------------------------------------

TEST(Dataset, DeterministicBatches) {
  SyntheticDataset ds(8, 3, 11);
  std::vector<float> x1, x2;
  std::vector<std::uint32_t> y1, y2;
  ds.batch(42, 16, x1, y1);
  ds.batch(42, 16, x2, y2);
  EXPECT_EQ(x1, x2);
  EXPECT_EQ(y1, y2);
  ds.batch(43, 16, x2, y2);
  EXPECT_NE(x1, x2);
}

TEST(Dataset, LabelsInRange) {
  SyntheticDataset ds(4, 5, 2);
  std::vector<float> x;
  std::vector<std::uint32_t> y;
  ds.batch(0, 512, x, y);
  EXPECT_EQ(x.size(), 512u * 4u);
  for (auto label : y) EXPECT_LT(label, 5u);
}

// --- MLP --------------------------------------------------------------------

TEST(Mlp, GradientMatchesFiniteDifferences) {
  MlpConfig cfg;
  cfg.input_dim = 5;
  cfg.hidden = {7};
  cfg.num_classes = 3;
  MlpNet net(cfg);
  ModelState state(net.spec());
  state.init_random(21);
  // Nonzero biases so their gradients are exercised too.
  for (std::size_t i = 0; i < state.param_count(); ++i) {
    if (state.params()[i] == 0.0f) {
      state.params()[i] = 0.01f * static_cast<float>(static_cast<int>(i % 7) - 3);
    }
  }

  SyntheticDataset ds(5, 3, 77);
  std::vector<float> x;
  std::vector<std::uint32_t> y;
  ds.batch(0, 8, x, y);

  Tensor grad(net.spec().param_count());
  net.loss_and_gradient(state, x, y, grad);

  // Central differences on a sample of coordinates.
  const double eps = 1e-3;
  for (std::size_t i = 0; i < state.param_count(); i += 5) {
    ModelState plus = state.clone();
    ModelState minus = state.clone();
    plus.params()[i] += static_cast<float>(eps);
    minus.params()[i] -= static_cast<float>(eps);
    const double numeric =
        (net.forward(plus, x, y) - net.forward(minus, x, y)) / (2 * eps);
    EXPECT_NEAR(grad[i], numeric, 5e-3)
        << "coordinate " << i << " analytic " << grad[i] << " numeric " << numeric;
  }
}

TEST(Mlp, GradientIsDeterministic) {
  MlpConfig cfg;
  MlpNet net(cfg);
  ModelState state(net.spec());
  state.init_random(5);
  SyntheticDataset ds(cfg.input_dim, cfg.num_classes, 5);
  std::vector<float> x;
  std::vector<std::uint32_t> y;
  ds.batch(1, 16, x, y);
  Tensor g1(net.spec().param_count()), g2(net.spec().param_count());
  const double l1 = net.loss_and_gradient(state, x, y, g1);
  const double l2 = net.loss_and_gradient(state, x, y, g2);
  EXPECT_EQ(l1, l2);
  EXPECT_TRUE(ops::bit_equal(g1.cspan(), g2.cspan()));
}

TEST(Mlp, GradientDescentReducesLoss) {
  MlpConfig cfg;
  cfg.input_dim = 6;
  cfg.hidden = {16};
  cfg.num_classes = 3;
  MlpNet net(cfg);
  ModelState state(net.spec());
  state.init_random(8);
  SyntheticDataset ds(6, 3, 8, 0.3f);
  std::vector<float> x;
  std::vector<std::uint32_t> y;
  ds.batch(0, 64, x, y);

  Tensor grad(net.spec().param_count());
  const double initial = net.forward(state, x, y);
  for (int step = 0; step < 60; ++step) {
    grad.zero();
    net.loss_and_gradient(state, x, y, grad);
    ops::axpy(-0.5f, grad.cspan(), state.params().span());
  }
  const double final_loss = net.forward(state, x, y);
  EXPECT_LT(final_loss, initial * 0.5);
  EXPECT_GT(net.accuracy(state, x, y), 0.7);
}

TEST(Mlp, RejectsBadInputs) {
  MlpNet net(MlpConfig{});
  ModelState state(net.spec());
  std::vector<float> ragged(MlpConfig{}.input_dim + 1, 0.0f);
  std::vector<std::uint32_t> labels(1, 0);
  EXPECT_THROW(net.forward(state, ragged, labels), Error);
}

}  // namespace
}  // namespace lowdiff

namespace lowdiff {
namespace {

TEST(Mlp, NoHiddenLayersIsLogisticRegression) {
  MlpConfig cfg;
  cfg.input_dim = 6;
  cfg.hidden = {};
  cfg.num_classes = 3;
  MlpNet net(cfg);
  EXPECT_EQ(net.spec().layer_count(), 2u);  // one weight + one bias
  ModelState state(net.spec());
  state.init_random(5);
  SyntheticDataset ds(6, 3, 5, 0.3f);
  std::vector<float> x;
  std::vector<std::uint32_t> y;
  ds.batch(0, 64, x, y);
  Tensor grad(net.spec().param_count());
  const double initial = net.forward(state, x, y);
  for (int i = 0; i < 80; ++i) {
    grad.zero();
    net.loss_and_gradient(state, x, y, grad);
    ops::axpy(-0.5f, grad.cspan(), state.params().span());
  }
  EXPECT_LT(net.forward(state, x, y), initial * 0.6);
}

}  // namespace
}  // namespace lowdiff
