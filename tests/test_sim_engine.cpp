#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <vector>

#include "common/batch_rng.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "sim/event_queue.h"
#include "sim/failure.h"
#include "sim/run_sim.h"
#include "sim/scenario.h"
#include "sim/sweep.h"
#include "support/sim_golden.h"

namespace lowdiff::sim {
namespace {

std::uint64_t bits(double v) {
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof u);
  return u;
}

ClusterSpec cluster_by_name(const char* name) {
  ClusterSpec c;
  if (std::strcmp(name, "v100x64") == 0) {
    c.gpu = gpus::v100s();
    c.num_gpus = 64;
  }
  return c;
}

// --- golden bit-identity ------------------------------------------------------

// The legacy path of the event rewrite must reproduce the pre-rewrite
// scalar engine bit for bit — goldens were generated before the rewrite.
TEST(SimGolden, EngineMatchesPreRewriteGoldensBitExactly) {
  for (std::size_t i = 0; i < golden::kNumRows; ++i) {
    const auto& row = golden::kRows[i];
    const ClusterSpec cluster = cluster_by_name(row.cluster);
    const double rho = row.kind == StrategyKind::kLowDiffPlus ? 0.0 : 0.01;
    const Workload w = Workload::for_model("GPT2-S", cluster.gpu, rho);
    StrategyConfig s;
    s.kind = row.kind;
    s.ckpt_interval = row.ckpt_interval;
    s.full_interval = row.full_interval;
    s.batch_size = row.batch_size;
    FailureRunConfig run;
    run.train_work_sec = golden::kGoldenTrainWorkSec;
    run.mtbf_sec = row.mtbf_sec;
    run.seed = row.seed;
    run.software_fraction = golden::kGoldenSoftwareFraction;

    const FailureRunResult r = run_with_failures(cluster, w, s, run);
    SCOPED_TRACE(testing::Message() << "row " << i << " " << row.cluster
                                    << " kind=" << static_cast<int>(row.kind)
                                    << " mtbf=" << row.mtbf_sec
                                    << " seed=" << row.seed);
    EXPECT_EQ(bits(r.wall_time), row.wall_bits);
    EXPECT_EQ(bits(r.wasted_time), row.wasted_bits);
    EXPECT_EQ(bits(r.effective_ratio), row.ratio_bits);
    EXPECT_EQ(r.failures, row.failures);
    EXPECT_EQ(bits(r.overhead_time), row.overhead_bits);
    EXPECT_EQ(bits(r.recovery_time), row.recovery_bits);
    EXPECT_EQ(bits(r.redo_time), row.redo_bits);
  }
}

// The frozen reference engine must also match — it IS the golden source.
TEST(SimGolden, ReferenceEngineMatchesGoldens) {
  for (std::size_t i = 0; i < golden::kNumRows; i += 7) {  // spot-check
    const auto& row = golden::kRows[i];
    const ClusterSpec cluster = cluster_by_name(row.cluster);
    const double rho = row.kind == StrategyKind::kLowDiffPlus ? 0.0 : 0.01;
    const Workload w = Workload::for_model("GPT2-S", cluster.gpu, rho);
    StrategyConfig s;
    s.kind = row.kind;
    s.ckpt_interval = row.ckpt_interval;
    s.full_interval = row.full_interval;
    s.batch_size = row.batch_size;
    FailureRunConfig run;
    run.train_work_sec = golden::kGoldenTrainWorkSec;
    run.mtbf_sec = row.mtbf_sec;
    run.seed = row.seed;
    run.software_fraction = golden::kGoldenSoftwareFraction;

    const FailureRunResult r = run_with_failures_reference(cluster, w, s, run);
    EXPECT_EQ(bits(r.wall_time), row.wall_bits) << "row " << i;
    EXPECT_EQ(bits(r.wasted_time), row.wasted_bits) << "row " << i;
  }
}

// --- event queue backends -----------------------------------------------------

// Pop order must be a total, backend-independent function of the pushes.
TEST(EventQueueBackends, PopOrderEquivalentOnRandomSchedules) {
  Xoshiro256 rng(99);
  for (int round = 0; round < 20; ++round) {
    EventQueue cal(QueuePolicy::kCalendar);
    EventQueue heap(QueuePolicy::kHeap);
    const std::size_t n = 50 + 100 * static_cast<std::size_t>(round % 5);
    std::vector<double> times(n);
    // Mix of clustered and spread times, plus exact ties.
    for (std::size_t i = 0; i < n; ++i) {
      times[i] = round % 2 == 0 ? rng.exponential(100.0)
                                : 1000.0 + rng.uniform_double();
      if (i % 7 == 0 && i > 0) times[i] = times[i - 1];  // tie
    }
    for (std::size_t i = 0; i < n; ++i) {
      cal.push(times[i], EventKind::kFailure, static_cast<std::uint32_t>(i));
      heap.push(times[i], EventKind::kFailure, static_cast<std::uint32_t>(i));
    }
    double prev = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      const Event a = cal.pop();
      const Event b = heap.pop();
      EXPECT_EQ(a.time, b.time);
      EXPECT_EQ(a.worker, b.worker);
      EXPECT_EQ(a.seq, b.seq);
      EXPECT_GE(a.time, prev);
      prev = a.time;
    }
    EXPECT_TRUE(cal.empty());
    EXPECT_TRUE(heap.empty());
  }
}

TEST(EventQueueBackends, InterleavedPushPopStaysSorted) {
  // Hold-and-fire: the canonical DES access pattern.  The calendar's
  // year-circular scan must keep returning a nondecreasing sequence even
  // as new arrivals land ahead of the scan position.
  EventQueue cal(QueuePolicy::kCalendar);
  Xoshiro256 rng(7);
  cal.push(rng.exponential(10.0), EventKind::kFailure);
  double prev = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const Event e = cal.pop();
    EXPECT_GE(e.time, prev);
    prev = e.time;
    cal.push(e.time + rng.exponential(10.0), EventKind::kFailure);
    if (i % 3 == 0) {
      cal.push(e.time + rng.uniform_double(), EventKind::kRecoveryDone);
    }
  }
}

// Adversarially clustered times degrade the calendar; whether or not the
// adaptive facade migrates to the heap, pop order must stay identical.
TEST(EventQueueBackends, AdaptiveMatchesHeapOnDegenerateDistribution) {
  EventQueue adaptive(QueuePolicy::kAdaptive);
  EventQueue heap(QueuePolicy::kHeap);
  Xoshiro256 rng(5);
  // Two far-apart clusters force long empty-bucket scans.
  std::vector<double> times;
  for (int i = 0; i < 4000; ++i) {
    const double t = (i % 2 == 0 ? 0.0 : 1e9) + rng.uniform_double() * 1e-6;
    times.push_back(t);
  }
  for (double t : times) {
    adaptive.push(t, EventKind::kFailure);
    heap.push(t, EventKind::kFailure);
  }
  for (std::size_t i = 0; i < times.size(); ++i) {
    const Event a = adaptive.pop();
    const Event b = heap.pop();
    ASSERT_EQ(a.seq, b.seq) << "diverged at pop " << i;
  }
}

// Scenario results must not depend on the queue backend.
TEST(EventQueueBackends, ScenarioResultsBackendIndependent) {
  ClusterSpec cluster;
  cluster.num_gpus = 256;
  const Workload w = Workload::for_model("GPT2-S", cluster.gpu, 0.01);
  StrategyConfig s;
  s.kind = StrategyKind::kLowDiff;
  s.full_interval = 20;
  ScenarioConfig sc;
  sc.train_work_sec = 2 * 3600.0;
  sc.mtbf_sec = 1800.0;
  sc.seed = 42;
  sc.stragglers.onset_mtbf_sec = 600.0;
  sc.correlated.burst_mtbf_sec = 3600.0;
  sc.preemption.preempt_mtbf_sec = 2400.0;
  sc.elastic.leave_mtbf_sec = 1200.0;

  const FleetRunResult cal =
      run_scenario(cluster, w, s, sc, nullptr, QueuePolicy::kCalendar);
  const FleetRunResult heap =
      run_scenario(cluster, w, s, sc, nullptr, QueuePolicy::kHeap);
  const FleetRunResult adaptive =
      run_scenario(cluster, w, s, sc, nullptr, QueuePolicy::kAdaptive);
  EXPECT_EQ(bits(cal.base.wall_time), bits(heap.base.wall_time));
  EXPECT_EQ(bits(cal.base.wasted_time), bits(heap.base.wasted_time));
  EXPECT_EQ(cal.events, heap.events);
  EXPECT_EQ(cal.rack_bursts, heap.rack_bursts);
  EXPECT_EQ(cal.preemptions, heap.preemptions);
  EXPECT_EQ(bits(adaptive.base.wall_time), bits(heap.base.wall_time));
}

// --- memoization --------------------------------------------------------------

TEST(StepCostCacheTest, MemoizedRunsMatchUncached) {
  const ClusterSpec cluster;
  const Workload w = Workload::for_model("BERT-B", cluster.gpu, 0.01);
  StrategyConfig s;
  s.kind = StrategyKind::kLowDiff;
  FailureRunConfig run;
  run.mtbf_sec = 900.0;
  run.seed = 3;
  StepCostCache cache;
  const ScenarioConfig sc = ScenarioConfig::from(run);
  const FleetRunResult cached = run_scenario(cluster, w, s, sc, &cache);
  const FleetRunResult uncached = run_scenario(cluster, w, s, sc, nullptr);
  const FailureRunResult ref = run_with_failures_reference(cluster, w, s, run);
  EXPECT_EQ(bits(cached.base.wall_time), bits(ref.wall_time));
  EXPECT_EQ(bits(uncached.base.wall_time), bits(ref.wall_time));
  EXPECT_EQ(cache.size(), 1u);
  // Distinct strategies get distinct keys.
  s.ckpt_interval = 2;
  run_scenario(cluster, w, s, sc, &cache);
  EXPECT_EQ(cache.size(), 2u);
}

// --- sweep determinism --------------------------------------------------------

std::vector<SweepCell> make_grid() {
  std::vector<SweepCell> cells;
  const StrategyKind kinds[] = {StrategyKind::kTorchSave, StrategyKind::kLowDiff,
                                StrategyKind::kLowDiffPlus};
  for (const StrategyKind k : kinds) {
    for (const double mtbf : {600.0, 1800.0}) {
      SweepCell cell;
      cell.label = "cell";
      cell.cluster.num_gpus = 128;
      cell.workload = Workload::for_model(
          "GPT2-S", cell.cluster.gpu,
          k == StrategyKind::kLowDiffPlus ? 0.0 : 0.01);
      cell.strategy.kind = k;
      cell.strategy.full_interval = 20;
      cell.scenario.train_work_sec = 1800.0;
      cell.scenario.mtbf_sec = mtbf;
      cell.scenario.stragglers.onset_mtbf_sec = 300.0;
      cell.scenario.preemption.preempt_mtbf_sec = 1200.0;
      cell.scenario.cost.gpu_hour_usd = 2.5;
      cells.push_back(cell);
    }
  }
  return cells;
}

TEST(Sweep, DeterministicAcrossThreadCounts) {
  const std::vector<SweepCell> cells = make_grid();
  SweepOptions opts;
  opts.base_seed = 2025;
  std::vector<std::vector<SweepCellResult>> runs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    runs.push_back(run_sweep(cells, opts, &pool));
  }
  // Serial (no pool) as the reference.
  const std::vector<SweepCellResult> serial = run_sweep(cells, opts, nullptr);
  for (const auto& r : runs) {
    ASSERT_EQ(r.size(), serial.size());
    for (std::size_t i = 0; i < r.size(); ++i) {
      EXPECT_EQ(bits(r[i].run.base.wall_time), bits(serial[i].run.base.wall_time));
      EXPECT_EQ(bits(r[i].run.base.wasted_time),
                bits(serial[i].run.base.wasted_time));
      EXPECT_EQ(r[i].run.events, serial[i].run.events);
      EXPECT_EQ(bits(r[i].run.cost_wasted_usd), bits(serial[i].run.cost_wasted_usd));
    }
  }
}

TEST(Sweep, PerCellSeedsAreSplitMixDerived) {
  std::vector<SweepCell> cells = make_grid();
  SweepOptions opts;
  opts.base_seed = 7;
  // keep_seed pins the scenario seed; the sweeper must not override it.
  cells[0].keep_seed = true;
  cells[0].scenario.seed = 1234;
  const auto res = run_sweep(cells, opts, nullptr);
  // Re-run cell 1 standalone with its derived seed — must match the sweep.
  ScenarioConfig sc = cells[1].scenario;
  sc.seed = SplitMix64(opts.base_seed ^ 1ull).next();
  const FleetRunResult solo =
      run_scenario(cells[1].cluster, cells[1].workload, cells[1].strategy, sc);
  EXPECT_EQ(bits(res[1].run.base.wall_time), bits(solo.base.wall_time));
}

// --- TCO accounting -----------------------------------------------------------

TEST(Tco, DollarAccountingFollowsGpuHours) {
  ClusterSpec cluster;
  cluster.num_gpus = 1000;
  const Workload w = Workload::for_model("GPT2-S", cluster.gpu, 0.01);
  StrategyConfig s;
  s.kind = StrategyKind::kLowDiff;
  s.full_interval = 20;
  ScenarioConfig sc;
  sc.train_work_sec = 3600.0;
  sc.mtbf_sec = 1800.0;
  sc.cost.gpu_hour_usd = 3.0;
  const FleetRunResult r = run_scenario(cluster, w, s, sc);
  EXPECT_DOUBLE_EQ(r.gpu_hours_total, r.base.wall_time * 1000.0 / 3600.0);
  EXPECT_DOUBLE_EQ(r.gpu_hours_wasted, r.base.wasted_time * 1000.0 / 3600.0);
  EXPECT_DOUBLE_EQ(r.cost_total_usd, r.gpu_hours_total * 3.0);
  EXPECT_DOUBLE_EQ(r.cost_wasted_usd, r.gpu_hours_wasted * 3.0);
  EXPECT_GT(r.cost_wasted_usd, 0.0);
  EXPECT_LT(r.cost_wasted_usd, r.cost_total_usd);
}

TEST(Tco, SummaryGroupsByStrategy) {
  const auto res = run_sweep(make_grid(), SweepOptions{}, nullptr);
  const auto tco = summarize_tco(res);
  ASSERT_EQ(tco.size(), 3u);  // three strategies in the grid
  double total = 0.0;
  std::size_t cells = 0;
  for (const auto& t : tco) {
    EXPECT_EQ(t.cells, 2u);
    EXPECT_GT(t.gpu_hours_total, 0.0);
    EXPECT_GE(t.worst_wasted_ratio, 0.0);
    EXPECT_LE(t.worst_wasted_ratio, 1.0);
    total += t.cost_total_usd;
    cells += t.cells;
  }
  EXPECT_EQ(cells, res.size());
  double direct = 0.0;
  for (const auto& r : res) direct += r.run.cost_total_usd;
  EXPECT_NEAR(total, direct, 1e-9);
}

// --- Floyd sampling -----------------------------------------------------------

TEST(FloydSampling, DistinctSortedAndDeterministic) {
  for (const std::size_t n : {10u, 1000u, 10000u}) {
    for (const std::size_t count : {1u, 3u, 9u}) {
      const auto a = sample_server_losses(n, count, 77);
      const auto b = sample_server_losses(n, count, 77);
      EXPECT_EQ(a, b);
      ASSERT_EQ(a.size(), count);
      EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
      EXPECT_EQ(std::set<std::size_t>(a.begin(), a.end()).size(), count);
      for (const std::size_t v : a) EXPECT_LT(v, n);
    }
  }
  // Full wipe.
  const auto all = sample_server_losses(8, 8, 5);
  EXPECT_EQ(all.size(), 8u);
  EXPECT_EQ(all.front(), 0u);
  EXPECT_EQ(all.back(), 7u);
}

// count == 1 consumes the same single uniform_below(n) draw as the old
// partial Fisher-Yates, so historical single-loss picks are unchanged.
TEST(FloydSampling, SingleLossMatchesHistoricalDraw) {
  for (const std::uint64_t seed : {1ull, 9ull, 20250705ull}) {
    for (const std::size_t n : {4u, 64u, 4096u}) {
      Xoshiro256 rng(SplitMix64(seed ^ 0x5E12Fu).next());
      const std::size_t expected = static_cast<std::size_t>(
          rng.uniform_below(static_cast<std::uint64_t>(n)));
      const auto got = sample_server_losses(n, 1, seed);
      ASSERT_EQ(got.size(), 1u);
      EXPECT_EQ(got[0], expected);
    }
  }
}

TEST(FloydSampling, UniformMarginals) {
  // Each server should be hit ~count/n of the time.
  const std::size_t n = 40, count = 4, trials = 20000;
  std::vector<std::size_t> hits(n, 0);
  for (std::size_t t = 0; t < trials; ++t) {
    for (const std::size_t v : sample_server_losses(n, count, 1000 + t)) {
      ++hits[v];
    }
  }
  const double expect = static_cast<double>(trials * count) / n;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(static_cast<double>(hits[i]), expect, 5.0 * std::sqrt(expect))
        << "server " << i;
  }
}

// --- batched RNG --------------------------------------------------------------

TEST(BatchRng, StreamEquivalentToScalarDraws) {
  Xoshiro256 a(123), b(123);
  double batch[64], scalar[64];
  fill_exponential(a, 10.0, batch, 64);
  for (double& v : scalar) v = b.exponential(10.0);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(bits(batch[i]), bits(scalar[i]));

  fill_uniform(a, batch, 64);
  for (double& v : scalar) v = b.uniform_double();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(bits(batch[i]), bits(scalar[i]));

  std::uint64_t bi[64], si[64];
  fill_uniform_below(a, 17, bi, 64);
  for (auto& v : si) v = b.uniform_below(17);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(bi[i], si[i]);
}

TEST(BatchRng, ExponentialMomentsMatchClosedForm) {
  Xoshiro256 rng(55);
  const std::size_t n = 200000;
  std::vector<double> draws(n);
  fill_exponential(rng, 42.0, draws.data(), n);
  double sum = 0.0;
  for (const double d : draws) sum += d;
  const double mean = sum / static_cast<double>(n);
  double var = 0.0;
  for (const double d : draws) var += (d - mean) * (d - mean);
  var /= static_cast<double>(n);
  EXPECT_NEAR(mean, 42.0, 0.5);          // SE ~ 42/sqrt(n) ~ 0.094
  EXPECT_NEAR(var, 42.0 * 42.0, 40.0);   // Var(X) = mean^2
}

// --- fleet failure processes: statistical validation --------------------------

// FailureModel::fill must continue the historical stream exactly.
TEST(FailureProcesses, FillMatchesScalarNext) {
  FailureModel a(3600.0, 11, 0.5), b(3600.0, 11, 0.5);
  FailureEvent block[32];
  a.fill(block, 32);
  for (int i = 0; i < 32; ++i) {
    const FailureEvent ev = b.next();
    EXPECT_EQ(bits(block[i].time), bits(ev.time));
    EXPECT_EQ(block[i].type, ev.type);
  }
}

struct AxisCounts {
  double horizon = 0.0;
  FleetRunResult run;
};

AxisCounts run_axis(const ScenarioConfig& sc) {
  ClusterSpec cluster;
  cluster.num_gpus = 512;
  const Workload w = Workload::for_model("GPT2-S", cluster.gpu, 0.01);
  StrategyConfig s;
  s.kind = StrategyKind::kLowDiff;
  s.full_interval = 20;
  AxisCounts out;
  out.run = run_scenario(cluster, w, s, sc);
  out.horizon = out.run.base.wall_time;
  return out;
}

// Each axis's event count over the run should track horizon / mtbf —
// arrivals are Poisson, so a +/-4 sigma band around the expectation.
TEST(FailureProcesses, StragglerArrivalRateMatchesPoisson) {
  ScenarioConfig sc;
  sc.train_work_sec = 8 * 3600.0;
  sc.mtbf_sec = 1e9;  // base failures effectively off
  sc.seed = 5;
  sc.stragglers.onset_mtbf_sec = 120.0;
  sc.stragglers.slowdown_mean = 1.3;
  sc.stragglers.episode_mean_sec = 60.0;
  const AxisCounts r = run_axis(sc);
  const double expect = r.horizon / 120.0;
  EXPECT_GT(expect, 100.0);  // enough mass for the band to be meaningful
  EXPECT_NEAR(static_cast<double>(r.run.straggler_episodes), expect,
              4.0 * std::sqrt(expect) + 0.05 * expect);
  // Stragglers degrade capacity but never roll the job back.
  EXPECT_GT(r.run.degraded_time, 0.0);
  EXPECT_EQ(r.run.base.failures, 0u);
}

TEST(FailureProcesses, BurstArrivalRateAndVictimSemantics) {
  ScenarioConfig sc;
  sc.train_work_sec = 8 * 3600.0;
  sc.mtbf_sec = 1e9;
  sc.seed = 6;
  sc.correlated.burst_mtbf_sec = 300.0;
  sc.correlated.num_racks = 16;
  sc.correlated.rack_fraction = 0.5;
  sc.correlated.repair_mean_sec = 120.0;
  const AxisCounts r = run_axis(sc);
  const double expect = r.horizon / 300.0;
  EXPECT_NEAR(static_cast<double>(r.run.rack_bursts), expect,
              4.0 * std::sqrt(expect) + 0.05 * expect);
  // Bursts cost rollback work (hardware semantics) and degraded capacity.
  EXPECT_GT(r.run.base.redo_time, 0.0);
  EXPECT_GT(r.run.degraded_time, 0.0);
}

TEST(FailureProcesses, PreemptionLosesCapacityNotWork) {
  ScenarioConfig sc;
  sc.train_work_sec = 8 * 3600.0;
  sc.mtbf_sec = 1e9;
  sc.seed = 8;
  sc.preemption.preempt_mtbf_sec = 400.0;
  sc.preemption.notice_sec = 60.0;
  sc.preemption.replacement_mean_sec = 200.0;
  const AxisCounts r = run_axis(sc);
  const double expect = r.horizon / 400.0;
  EXPECT_NEAR(static_cast<double>(r.run.preemptions), expect,
              4.0 * std::sqrt(expect) + 0.10 * expect);
  // The notice window flushes state: no redone work for a ckpt strategy.
  EXPECT_EQ(r.run.base.redo_time, 0.0);
  EXPECT_GT(r.run.degraded_time, 0.0);
}

TEST(FailureProcesses, ElasticMembershipBalancesAndRespectsFloor) {
  ScenarioConfig sc;
  sc.train_work_sec = 8 * 3600.0;
  sc.mtbf_sec = 1e9;
  sc.seed = 9;
  sc.elastic.leave_mtbf_sec = 300.0;
  sc.elastic.rejoin_delay_mean_sec = 100.0;
  sc.elastic.resync_sec = 1.0;
  sc.elastic.min_workers = 500;  // fleet is 512 — floor binds often
  const AxisCounts r = run_axis(sc);
  EXPECT_GT(r.run.leaves, 0u);
  // Every leave eventually rejoins; in-flight ones may remain at the end.
  EXPECT_LE(r.run.joins, r.run.leaves);
  EXPECT_GE(r.run.joins + 12, r.run.leaves);  // fleet floor bounds in-flight
}

// Straggler slowdown draws follow 1 + Exp(mean - 1): mean = slowdown_mean,
// variance = (slowdown_mean - 1)^2.  Validated on the spec's own formula
// with the engine's stream-splitting tag discipline.
TEST(FailureProcesses, StragglerSlowdownMomentsMatchClosedForm) {
  const double slowdown_mean = 1.8;
  Xoshiro256 rng(SplitMix64(123 ^ 0x57A661Eull).next());
  const std::size_t n = 100000;
  double sum = 0.0, sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double s = 1.0 + rng.exponential(slowdown_mean - 1.0);
    sum += s;
    sq += s * s;
  }
  const double mean = sum / static_cast<double>(n);
  const double var = sq / static_cast<double>(n) - mean * mean;
  EXPECT_NEAR(mean, slowdown_mean, 0.02);
  EXPECT_NEAR(var, (slowdown_mean - 1.0) * (slowdown_mean - 1.0), 0.03);
}

// --- RepairModel cross-check --------------------------------------------------

// The simulated fraction of time with >= m concurrent unrepaired failures
// must track the analytic M/G/inf Poisson tail at fleet scale.
TEST(RepairModelCrossCheck, SimulationMatchesAnalyticTailAt1k) {
  const double mtbf = 500'000.0, repair = 600.0;
  const std::size_t n = 1000;
  RepairModel model(mtbf, repair);
  const double analytic = model.concurrent_loss_probability(n, 2);
  const double simulated =
      measure_concurrent_downtime(n, mtbf, repair, 2, 5e6, 31);
  EXPECT_GT(analytic, 1e-4);  // regime where the estimate has support
  EXPECT_NEAR(simulated, analytic, std::max(0.35 * analytic, 2e-4));
}

TEST(RepairModelCrossCheck, SimulationMatchesAnalyticTailAt10k) {
  const double mtbf = 5'000'000.0, repair = 600.0;
  const std::size_t n = 10000;
  RepairModel model(mtbf, repair);
  const double analytic = model.concurrent_loss_probability(n, 2);
  const double simulated =
      measure_concurrent_downtime(n, mtbf, repair, 2, 5e6, 37);
  EXPECT_NEAR(simulated, analytic, std::max(0.35 * analytic, 2e-4));
}

// --- fleet-scale sanity -------------------------------------------------------

TEST(FleetScale, TenThousandWorkerScenarioCompletes) {
  ClusterSpec cluster;
  const Workload w = Workload::for_model("GPT2-S", cluster.gpu, 0.01);
  StrategyConfig s;
  s.kind = StrategyKind::kLowDiffPlus;
  ScenarioConfig sc;
  sc.num_workers = 10000;
  sc.train_work_sec = 3600.0;
  sc.mtbf_sec = 7200.0;
  sc.stragglers.onset_mtbf_sec = 60.0;
  sc.correlated.burst_mtbf_sec = 1800.0;
  sc.correlated.num_racks = 64;
  sc.preemption.preempt_mtbf_sec = 300.0;
  sc.elastic.leave_mtbf_sec = 600.0;
  sc.cost.gpu_hour_usd = 2.0;
  const FleetRunResult r = run_scenario(cluster, w, s, sc);
  EXPECT_GT(r.base.wall_time, sc.train_work_sec);
  EXPECT_GT(r.events, 100u);
  EXPECT_GT(r.gpu_hours_total, 10000.0);  // >1 h x 10k workers
  EXPECT_GT(r.cost_wasted_usd, 0.0);
  // Work conservation: wall = productive + everything accounted as waste.
  EXPECT_NEAR(r.base.wall_time, sc.train_work_sec + r.base.wasted_time, 1e-6);
}

}  // namespace
}  // namespace lowdiff::sim
