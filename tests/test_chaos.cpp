/// \file test_chaos.cpp
/// Self-healing replication runtime (DESIGN.md §9): breaker state machines
/// and failure classification, deadline-to-timeout conversion, the
/// short-circuit proof (retry counter flat while a breaker is open),
/// breaker-aware read routing, the three quorum-degradation policies,
/// budgeted online quorum repair, the M/G/∞ repair-overlap model, and the
/// randomized chaos campaign's bit-exact-recovery acceptance bar.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/logging.h"
#include "common/retry.h"
#include "common/rng.h"
#include "compress/topk.h"
#include "core/checkpoint_store.h"
#include "obs/metrics.h"
#include "optim/adam.h"
#include "sim/cluster.h"
#include "sim/failure.h"
#include "support/kill_points.h"
#include "storage/atomic_commit.h"
#include "storage/deadline.h"
#include "storage/fault_injection.h"
#include "storage/mem_storage.h"
#include "tier/chaos.h"
#include "tier/demoter.h"
#include "tier/health.h"
#include "tier/placement.h"
#include "tier/repair.h"
#include "tier/replicator.h"
#include "tier/topology.h"

namespace lowdiff {
namespace {

using tier::ChaosOptions;
using tier::ChaosRunner;
using tier::FailureClass;
using tier::HealthOptions;
using tier::PlacementPolicy;
using tier::QuorumRepairEngine;
using tier::Replicator;
using tier::TargetHealth;
using tier::TierHealthMonitor;
using tier::TierTopology;

sim::ClusterSpec cluster_of(std::size_t servers) {
  sim::ClusterSpec cluster;
  cluster.num_gpus = servers * cluster.gpus_per_server;
  return cluster;
}

std::shared_ptr<TierTopology> topo_of(std::size_t servers) {
  tier::TierSimOptions opts;
  opts.time_scale = 1e-7;
  return TierTopology::for_cluster(cluster_of(servers), opts);
}

std::vector<std::byte> payload_of(std::size_t n, std::uint8_t fill = 0x5a) {
  return std::vector<std::byte>(n, std::byte{fill});
}

std::uint64_t counter(const std::string& name) {
  return obs::Registry::global().counter(name).value();
}

double gauge(const std::string& name) {
  return obs::Registry::global().gauge(name).value();
}

/// Fast retries so fault-window tests don't sleep out real backoff.
RetryPolicy quick_retry() {
  RetryPolicy p;
  p.max_attempts = 3;
  p.base_delay_sec = 1e-5;
  p.max_delay_sec = 1e-4;
  return p;
}

/// Health monitor on a hand-stepped clock; `now` may be advanced from the
/// test thread while writer threads read it, hence the atomic.
struct SteppedClock {
  std::shared_ptr<std::atomic<double>> now =
      std::make_shared<std::atomic<double>>(0.0);
  std::function<double()> fn() const {
    auto p = now;
    return [p] { return p->load(std::memory_order_relaxed); };
  }
  void advance(double sec) {
    now->store(now->load(std::memory_order_relaxed) + sec,
               std::memory_order_relaxed);
  }
};

// --- breaker state machine ---------------------------------------------------

TEST(Health, BreakerLifecycleWalksAllFourStates) {
  SteppedClock clock;
  HealthOptions h;
  h.clock = clock.fn();
  TierHealthMonitor mon(h);

  EXPECT_EQ(mon.state("t"), TargetHealth::kHealthy);
  EXPECT_TRUE(mon.admit("t"));
  EXPECT_TRUE(mon.readable("t"));

  mon.record_failure("t", ErrorCode::kTransient);
  EXPECT_EQ(mon.state("t"), TargetHealth::kHealthy);  // below suspect_after
  mon.record_failure("t", ErrorCode::kTransient);
  EXPECT_EQ(mon.state("t"), TargetHealth::kSuspect);
  EXPECT_TRUE(mon.admit("t"));  // suspect still admitted

  mon.record_failure("t", ErrorCode::kTimeout);
  mon.record_failure("t", ErrorCode::kTimeout);
  EXPECT_EQ(mon.state("t"), TargetHealth::kOpen);

  // Open + cooldown not elapsed: short-circuit, not readable.
  const auto sc0 = mon.short_circuits();
  EXPECT_FALSE(mon.admit("t"));
  EXPECT_FALSE(mon.readable("t"));
  EXPECT_EQ(mon.short_circuits(), sc0 + 1);
  EXPECT_EQ(mon.state("t"), TargetHealth::kOpen);

  // Cooldown elapses: the next admit is the half-open probe.
  clock.advance(h.open_cooldown_sec + 0.01);
  EXPECT_TRUE(mon.readable("t"));
  const auto probes0 = mon.probes();
  EXPECT_TRUE(mon.admit("t"));
  EXPECT_EQ(mon.probes(), probes0 + 1);
  EXPECT_EQ(mon.state("t"), TargetHealth::kHalfOpen);

  mon.record_success("t");
  EXPECT_EQ(mon.state("t"), TargetHealth::kHalfOpen);
  mon.record_success("t");  // close_after = 2
  EXPECT_EQ(mon.state("t"), TargetHealth::kHealthy);
}

TEST(Health, HardFailuresWeighDoubleAndFailedProbeReopens) {
  SteppedClock clock;
  HealthOptions h;
  h.clock = clock.fn();
  TierHealthMonitor mon(h);

  // hard weight 2: two declared-dead responses trip the breaker.
  mon.record_failure("a", ErrorCode::kUnavailable);
  EXPECT_EQ(mon.state("a"), TargetHealth::kSuspect);
  mon.record_failure("a", ErrorCode::kCorrupted);
  EXPECT_EQ(mon.state("a"), TargetHealth::kOpen);

  const auto in_open = mon.targets_in(TargetHealth::kOpen);
  EXPECT_NE(std::find(in_open.begin(), in_open.end(), "a"), in_open.end());

  // Probe fails: straight back to Open, cooldown restarted.
  clock.advance(h.open_cooldown_sec + 0.01);
  EXPECT_TRUE(mon.admit("a"));
  EXPECT_EQ(mon.state("a"), TargetHealth::kHalfOpen);
  mon.record_failure("a", ErrorCode::kTransient);
  EXPECT_EQ(mon.state("a"), TargetHealth::kOpen);
  EXPECT_FALSE(mon.admit("a"));

  // Operator override after replacing the hardware.
  mon.reset("a");
  EXPECT_EQ(mon.state("a"), TargetHealth::kHealthy);
  EXPECT_TRUE(mon.admit("a"));
}

TEST(Health, ClassificationAndRetryability) {
  EXPECT_EQ(tier::classify_failure(ErrorCode::kTimeout), FailureClass::kTimeout);
  EXPECT_EQ(tier::classify_failure(ErrorCode::kTransient),
            FailureClass::kTransient);
  EXPECT_EQ(tier::classify_failure(ErrorCode::kUnavailable), FailureClass::kHard);
  EXPECT_EQ(tier::classify_failure(ErrorCode::kCorrupted), FailureClass::kHard);
  EXPECT_EQ(tier::classify_failure(ErrorCode::kExhausted), FailureClass::kHard);

  // A timeout's outcome is ambiguous — retrying is safe under the commit
  // protocol.  A short-circuit must NOT be retried: that flatness while a
  // breaker is open is the whole point of tripping it.
  EXPECT_TRUE(Status(ErrorCode::kTimeout, "t").retryable());
  EXPECT_FALSE(Status(ErrorCode::kCircuitOpen, "t").retryable());
}

// --- deadline detector -------------------------------------------------------

TEST(Deadline, SlowOpsConvertToTimeoutAndAreCounted) {
  auto mem = std::make_shared<MemStorage>();
  FaultSpec slow;
  slow.latency_spike_rate = 1.0;
  slow.latency_spike_sec = 5e-3;
  auto sick = std::make_shared<FaultInjectingStorage>(mem, slow);

  DeadlineSpec spec;
  spec.write_deadline_sec = 1e-3;
  spec.read_deadline_sec = 1e-3;
  DeadlineStorage dl(sick, spec);

  const auto bytes = payload_of(64);
  const Status st = dl.write("k", bytes);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kTimeout);
  EXPECT_EQ(dl.timeouts(), 1u);
  // Ambiguous outcome: the bytes actually landed (the inner op finished,
  // just late) — exactly the torn semantics the commit protocol absorbs.
  EXPECT_TRUE(mem->exists("k"));

  const auto rd = dl.read("k");
  EXPECT_FALSE(rd.ok());
  EXPECT_EQ(rd.status().code(), ErrorCode::kTimeout);
  EXPECT_EQ(dl.timeouts(), 2u);

  // Disabled classes pass straight through.
  DeadlineStorage loose(sick, DeadlineSpec{});
  EXPECT_TRUE(loose.write("k2", bytes).ok());
  EXPECT_TRUE(loose.read("k2").ok());
  EXPECT_EQ(loose.timeouts(), 0u);
}

// --- retry jitter determinism (satellite: seeded RNG injection) --------------

TEST(Retry, JitterStreamsAreSeedDeterministic) {
  RetryPolicy p;
  p.seed = 42;
  auto a = p.make_rng(0);
  auto b = p.make_rng(0);
  auto c = p.make_rng(1);

  bool stream_diverged = false;
  for (int i = 0; i < 8; ++i) {
    const double da = p.delay_sec(i, a);
    const double db = p.delay_sec(i, b);
    const double dc = p.delay_sec(i, c);
    EXPECT_DOUBLE_EQ(da, db);  // same seed + stream => same schedule
    if (da != dc) stream_diverged = true;
    EXPECT_GE(da, 0.0);
    EXPECT_LE(da, p.max_delay_sec * (1.0 + p.jitter));
  }
  EXPECT_TRUE(stream_diverged);  // streams are decorrelated

  RetryPolicy q = p;
  q.seed = 43;
  auto d = q.make_rng(0);
  auto e = p.make_rng(0);
  bool seed_diverged = false;
  for (int i = 0; i < 8; ++i) {
    if (q.delay_sec(i, d) != p.delay_sec(i, e)) seed_diverged = true;
  }
  EXPECT_TRUE(seed_diverged);
}

// --- the short-circuit proof -------------------------------------------------

TEST(Breaker, OpenLaneShortCircuitsWritesWithFlatRetriesThenProbesClosed) {
  set_log_level(LogLevel::kOff);  // the flap window logs every failed job
  auto topo = topo_of(3);
  SteppedClock clock;
  HealthOptions h;
  h.open_cooldown_sec = 0.5;  // only the stepped clock can elapse it
  h.clock = clock.fn();
  auto health = std::make_shared<TierHealthMonitor>(h);

  tier::ReplicatorOptions opts;
  opts.origin_server = 0;
  opts.health = health;
  opts.replica_retry = quick_retry();
  auto rep = std::make_shared<Replicator>(
      topo, PlacementPolicy::parse("2@local,peer"), opts);

  // Flap the secondary lane: every device write fails with kTransient.
  tier::TierTarget* sick = topo->find("mem.s1");
  ASSERT_NE(sick, nullptr);
  ASSERT_NE(sick->faults, nullptr);
  FaultSpec flap;
  flap.write_error_rate = 1.0;
  sick->faults->set_spec(flap);

  const auto bytes = payload_of(256);
  int writes = 0;
  while (health->state("mem.s1") != TargetHealth::kOpen && writes < 64) {
    ASSERT_TRUE(rep->write("rec/" + std::to_string(writes), bytes).ok());
    rep->flush();
    ++writes;
  }
  ASSERT_EQ(health->state("mem.s1"), TargetHealth::kOpen);

  // While the breaker is open: the retry counter stays FLAT and the device
  // sees zero further attempts — writes to the open target are provably
  // short-circuited, not retried against.
  const auto retries_at_open = rep->writer_retries();
  const auto device_attempts = sick->faults->fault_stats().write_errors;
  EXPECT_GT(retries_at_open, 0u);  // the counter was alive before the trip
  EXPECT_GT(device_attempts, 0u);

  for (int j = 0; j < 8; ++j) {
    // Still succeeds: placement degrades to the healthy lane (best-effort
    // under quorum), and the key is tracked as durability-lagging.
    ASSERT_TRUE(rep->write("post/" + std::to_string(j), bytes).ok());
  }
  rep->flush();
  EXPECT_EQ(rep->writer_retries(), retries_at_open);
  EXPECT_EQ(sick->faults->fault_stats().write_errors, device_attempts);
  EXPECT_EQ(health->state("mem.s1"), TargetHealth::kOpen);
  EXPECT_FALSE(rep->lagging_keys().empty());
  EXPECT_GT(gauge("tier.replication.durability_lag_records"), 0.0);

  // Heal the device, elapse the cooldown: probe traffic re-closes the
  // breaker and the lane rejoins placement.
  sick->faults->set_spec(FaultSpec{});
  clock.advance(h.open_cooldown_sec + 0.01);
  const auto probes0 = health->probes();
  for (int j = 0; j < 4; ++j) {
    ASSERT_TRUE(rep->write("heal/" + std::to_string(j), bytes).ok());
    rep->flush();
  }
  EXPECT_EQ(health->state("mem.s1"), TargetHealth::kHealthy);
  EXPECT_GT(health->probes(), probes0);
  EXPECT_GT(sick->faults->fault_stats().write_errors, 0u);  // stats intact
  EXPECT_TRUE(sick->backend->exists("heal/3"));              // traffic landed
  set_log_level(LogLevel::kWarn);
}

// --- breaker-aware read routing (satellite) ----------------------------------

TEST(Breaker, ReadSkipsOpenLaneWithoutConsumingCrcFallback) {
  auto topo = topo_of(2);
  HealthOptions h;
  h.open_cooldown_sec = 1e9;  // stays open for the whole test
  auto health = std::make_shared<TierHealthMonitor>(h);

  tier::ReplicatorOptions opts;
  opts.origin_server = 0;
  opts.health = health;
  auto rep = std::make_shared<Replicator>(
      topo, PlacementPolicy::parse("2@local,peer"), opts);

  const auto bytes = payload_of(512, 0x33);
  RetryPolicy policy = quick_retry();
  auto rng = policy.make_rng();
  ASSERT_TRUE(committed_write(*rep, "full/000001", bytes, policy, rng).ok());
  ASSERT_TRUE(rep->sync().ok());
  ASSERT_TRUE(rep->durable("full/000001"));

  // Healthy cluster: the origin SSD (3.2 GB/s) is the bandwidth-preferred
  // source.  Trip its breaker: the read must fall to the next-ranked
  // healthy tier without touching the open lane — and without consuming
  // the CRC-fallback budget (no corrupt counts anywhere).
  health->record_failure("ssd.s0", ErrorCode::kUnavailable);
  health->record_failure("ssd.s0", ErrorCode::kUnavailable);
  ASSERT_EQ(health->state("ssd.s0"), TargetHealth::kOpen);

  const auto ssd_reads = counter("tier.ssd.s0.reads_total");
  const auto mem_reads = counter("tier.mem.s1.reads_total");
  const auto ssd_corrupt = counter("tier.ssd.s0.read_corrupt_total");
  const auto mem_corrupt = counter("tier.mem.s1.read_corrupt_total");

  const auto got = rep->read("full/000001");
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(std::equal(got->begin(), got->end(), bytes.begin(), bytes.end()));

  EXPECT_EQ(counter("tier.ssd.s0.reads_total"), ssd_reads);  // never touched
  EXPECT_GT(counter("tier.mem.s1.reads_total"), mem_reads);
  EXPECT_EQ(counter("tier.ssd.s0.read_corrupt_total"), ssd_corrupt);
  EXPECT_EQ(counter("tier.mem.s1.read_corrupt_total"), mem_corrupt);

  const auto totals = rep->read_totals();
  EXPECT_EQ(totals.count("ssd.s0"), 0u);  // open lane absent from totals
}

// --- quorum degradation policies ---------------------------------------------

TEST(Degrade, FailFastRefusesWithoutTouchingAnyTier) {
  auto topo = topo_of(2);
  tier::ReplicatorOptions opts;
  opts.origin_server = 0;
  opts.degrade = tier::DegradeMode::kFailFast;
  auto rep = std::make_shared<Replicator>(
      topo, PlacementPolicy::parse("2@local,peer"), opts);

  topo->fail_domain(1);  // only ssd.s0 remains admissible: 1 < quorum 2
  const auto failfast0 = counter("tier.replication.failfast_total");
  const Status st = rep->write("full/000007", payload_of(128));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(counter("tier.replication.failfast_total"), failfast0 + 1);
  rep->flush();
  for (std::size_t i = 0; i < topo->size(); ++i) {
    EXPECT_FALSE(topo->target(i).base->exists("full/000007"))
        << topo->target(i).name;
  }
}

TEST(Degrade, BestEffortLagsThenRepairRestoresQuorum) {
  auto topo = topo_of(2);
  auto health = std::make_shared<TierHealthMonitor>();
  tier::ReplicatorOptions opts;
  opts.origin_server = 0;
  opts.health = health;
  opts.degrade = tier::DegradeMode::kBestEffort;
  auto rep = std::make_shared<Replicator>(
      topo, PlacementPolicy::parse("2@local,peer"), opts);

  topo->fail_domain(1);
  const auto best0 = counter("tier.replication.best_effort_total");
  RetryPolicy policy = quick_retry();
  auto rng = policy.make_rng();
  ASSERT_TRUE(committed_write(*rep, "full/000003", payload_of(256), policy, rng)
                  .ok());
  EXPECT_GT(counter("tier.replication.best_effort_total"), best0);
  EXPECT_FALSE(rep->durable("full/000003"));  // one committed copy only
  const auto lagging = rep->lagging_keys();
  ASSERT_EQ(lagging.size(), 1u);
  EXPECT_EQ(lagging[0], "full/000003");
  EXPECT_GT(gauge("tier.replication.durability_lag_records"), 0.0);

  // Domain returns; one repair pass re-earns the quorum and clears the lag.
  topo->restore_domain(1);
  QuorumRepairEngine repair(topo, *rep);
  const auto pass = repair.run_once();
  EXPECT_GE(pass.repaired, 1u);
  EXPECT_EQ(pass.remaining, 0u);
  EXPECT_TRUE(rep->durable("full/000003"));
  EXPECT_TRUE(rep->lagging_keys().empty());
  EXPECT_EQ(gauge("tier.replication.durability_lag_records"), 0.0);
}

TEST(Degrade, BlockWaitsBoundedUntilQuorumReturns) {
  auto topo = topo_of(2);
  tier::ReplicatorOptions opts;
  opts.origin_server = 0;
  opts.degrade = tier::DegradeMode::kBlock;
  opts.block_timeout_sec = 2.0;
  opts.block_poll_sec = 1e-3;
  auto rep = std::make_shared<Replicator>(
      topo, PlacementPolicy::parse("2@local,peer"), opts);

  topo->fail_domain(1);
  const auto waits0 = counter("tier.replication.block_waits_total");
  std::thread restorer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    topo->restore_domain(1);
  });
  const auto start = std::chrono::steady_clock::now();
  const Status st = rep->write("full/000009", payload_of(128));
  const auto waited = std::chrono::steady_clock::now() - start;
  restorer.join();

  EXPECT_TRUE(st.ok());
  EXPECT_GE(waited, std::chrono::milliseconds(20));  // actually blocked
  EXPECT_LT(waited, std::chrono::seconds(2));        // and not to timeout
  EXPECT_EQ(counter("tier.replication.block_waits_total"), waits0 + 1);
  rep->flush();
  // The write that unblocked went to the full quorum.
  EXPECT_TRUE(topo->find("ssd.s0")->base->exists("full/000009"));
  EXPECT_TRUE(topo->find("mem.s1")->base->exists("full/000009"));

  // Timeout path: quorum never returns, the write falls back to
  // best-effort rather than blocking forever.
  topo->fail_domain(1);
  rep = std::make_shared<Replicator>(
      topo, PlacementPolicy::parse("2@local,peer"),
      [&] {
        auto o = opts;
        o.block_timeout_sec = 0.02;
        return o;
      }());
  const Status fallback = rep->write("full/000011", payload_of(128));
  EXPECT_TRUE(fallback.ok());
  const auto lagging = rep->lagging_keys();
  EXPECT_NE(std::find(lagging.begin(), lagging.end(), "full/000011"),
            lagging.end());
}

// --- budgeted quorum repair --------------------------------------------------

TEST(Repair, BudgetedPassesMakeMonotoneProgressAfterDomainLoss) {
  const std::size_t kRecords = 6;
  auto topo = topo_of(3);
  auto health = std::make_shared<TierHealthMonitor>();
  tier::ReplicatorOptions opts;
  opts.origin_server = 0;
  opts.health = health;
  auto rep = std::make_shared<Replicator>(
      topo, PlacementPolicy::parse("2@local,peer"), opts);

  // Commit kRecords full checkpoints (~1 KiB of data each).
  ModelSpec spec;
  spec.name = "repair";
  spec.layers = {{"w", {256}}};
  CheckpointStore store(rep, quick_retry());
  ModelState state(spec);
  for (std::size_t i = 0; i < kRecords; ++i) {
    state.init_random(100 + i);
    ASSERT_TRUE(store.put_full(i, state).ok());
  }
  ASSERT_TRUE(rep->sync().ok());
  for (std::size_t i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(rep->durable(CheckpointStore::full_key(i)));
  }

  // Lose the peer-memory domain: every record drops to one committed copy.
  topo->fail_domain(1);

  QuorumRepairEngine::Options ropts;
  ropts.budget_bytes_per_pass = 2ull << 10;  // ~1–2 records per pass
  QuorumRepairEngine repair(topo, *rep, ropts);

  const auto repaired0 = counter("repair.records_repaired_total");
  const auto first = repair.run_once();
  EXPECT_EQ(first.under_replicated, kRecords);
  EXPECT_TRUE(first.budget_exhausted);  // the tiny budget bit
  EXPECT_GE(first.repaired, 1u);        // but progress was made
  EXPECT_GT(first.remaining, 0u);
  EXPECT_EQ(first.unrepairable, 0u);

  EXPECT_TRUE(repair.repair_until_quorum(/*max_passes=*/20));
  EXPECT_EQ(counter("repair.records_repaired_total") - repaired0, kRecords);
  EXPECT_EQ(gauge("repair.under_replicated"), 0.0);

  // Quorum is re-earned on distinct live domains (the dead one stays dead).
  for (std::size_t i = 0; i < kRecords; ++i) {
    const auto key = CheckpointStore::full_key(i);
    ASSERT_TRUE(rep->durable(key)) << key;
    std::set<std::size_t> domains;
    for (std::size_t t = 0; t < topo->size(); ++t) {
      auto& target = topo->target(t);
      if (!topo->alive(target)) continue;
      if (target.backend->exists(commit_marker_key(key))) {
        domains.insert(target.failure_domain);
      }
    }
    EXPECT_GE(domains.size(), 2u) << key;
  }
}

TEST(Repair, OrphanedDataIsNotRepairWork) {
  auto topo = topo_of(2);
  auto rep = std::make_shared<Replicator>(
      topo, PlacementPolicy::parse("2@local,peer"), tier::ReplicatorOptions{});

  // A torn write's leftover: data landed, no marker anywhere.  Under the
  // commit protocol this record does not exist; repair must not report it
  // as under-replicated (that would pin `remaining` above zero forever).
  ASSERT_TRUE(rep->write("full/000099", payload_of(64)).ok());
  rep->flush();

  QuorumRepairEngine repair(topo, *rep);
  const auto pass = repair.run_once();
  EXPECT_GE(pass.scanned, 1u);
  EXPECT_GE(pass.orphaned, 1u);
  EXPECT_EQ(pass.under_replicated, 0u);
  EXPECT_EQ(pass.unrepairable, 0u);
  EXPECT_EQ(pass.remaining, 0u);
  EXPECT_TRUE(repair.repair_until_quorum(1));
}

// --- demoter skips open breakers (satellite) ---------------------------------

TEST(Demoter, SkipsBreakerOpenTargetsAndCountsThem) {
  auto topo = topo_of(2);
  HealthOptions h;
  h.open_cooldown_sec = 1e9;
  auto health = std::make_shared<TierHealthMonitor>(h);

  // Trip the remote (migration destination) and one peer (source).
  for (const char* name : {"remote", "mem.s0"}) {
    health->record_failure(name, ErrorCode::kUnavailable);
    health->record_failure(name, ErrorCode::kUnavailable);
    ASSERT_EQ(health->state(name), TargetHealth::kOpen);
  }

  tier::Demoter::Options dopts;
  dopts.health = health;
  tier::Demoter demoter(topo, dopts);
  const auto skipped0 = counter("tier.demoter.skipped_open_total");
  const auto pass = demoter.run_once();
  EXPECT_EQ(pass.skipped_open, 2u);  // remote as dest + mem.s0 as source
  EXPECT_EQ(counter("tier.demoter.skipped_open_total"), skipped0 + 2);
  EXPECT_EQ(pass.migrated, 0u);
}

// --- M/G/∞ repair-overlap model ----------------------------------------------

TEST(RepairModel, OverlapAndOccupancyMatchClosedForms) {
  sim::RepairModel m(/*mtbf_sec=*/3600.0, /*mean_repair_sec=*/120.0);
  EXPECT_NEAR(m.overlap_probability(), 1.0 - std::exp(-120.0 / 3600.0), 1e-12);
  EXPECT_NEAR(m.expected_unrepaired(16), 16.0 * 120.0 / 3600.0, 1e-12);

  // Degenerate repair-in-zero-time: nothing ever overlaps.
  sim::RepairModel instant(3600.0, 0.0);
  EXPECT_DOUBLE_EQ(instant.overlap_probability(), 0.0);
  EXPECT_DOUBLE_EQ(instant.concurrent_loss_probability(64, 1), 0.0);
}

TEST(RepairModel, QuorumLossIsMonotoneInReplicationAndRepairSpeed) {
  sim::RepairModel m(3600.0, 120.0);
  // More simultaneous losses required => less likely.
  EXPECT_GT(m.concurrent_loss_probability(16, 1),
            m.concurrent_loss_probability(16, 2));
  EXPECT_GT(m.concurrent_loss_probability(16, 2),
            m.concurrent_loss_probability(16, 3));
  // k replicas / quorum q dies when k - q + 1 overlap.
  EXPECT_DOUBLE_EQ(m.quorum_loss_probability(16, 3, 2),
                   m.concurrent_loss_probability(16, 2));
  // Faster repair strictly helps.
  sim::RepairModel fast(3600.0, 30.0);
  EXPECT_LT(fast.quorum_loss_probability(16, 3, 2),
            m.quorum_loss_probability(16, 3, 2));

  // Samples are positive and seed-deterministic.
  Xoshiro256 r1(7), r2(7);
  for (int i = 0; i < 16; ++i) {
    const double s = m.sample_repair_sec(r1);
    EXPECT_GT(s, 0.0);
    EXPECT_DOUBLE_EQ(s, m.sample_repair_sec(r2));
  }
}

// --- the chaos campaign ------------------------------------------------------

TEST(ChaosCampaign, TwentySeedsRecoverBitExactWithQuorumRestored) {
  set_log_level(LogLevel::kOff);  // fault windows log every expected error
  ChaosRunner runner;
  std::size_t total_kills = 0;
  std::size_t total_sickenings = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    // Identity in a normal run; a decorrelated universe under the sweep.
    const auto r = runner.run(test_support::sweep_seed(seed));
    total_kills += r.kills;
    total_sickenings += r.sickenings;
    EXPECT_TRUE(r.recovered) << "seed " << seed;
    EXPECT_TRUE(r.bit_exact) << "seed " << seed << " recovered iteration "
                             << r.recovered_iteration;
    EXPECT_TRUE(r.quorum_restored)
        << "seed " << seed << " needed more than "
        << runner.options().repair_passes_per_event << " budgeted passes";
    EXPECT_EQ(r.under_replicated_final, 0u) << "seed " << seed;
  }
  // The campaign must actually have put the runtime under fire.
  EXPECT_GE(total_kills, 3u);
  EXPECT_GE(total_sickenings, 3u);
  set_log_level(LogLevel::kWarn);
}

TEST(ChaosCampaign, ScheduleIsAPureFunctionOfTheSeed) {
  set_log_level(LogLevel::kOff);
  ChaosRunner runner;
  const auto a = runner.run(7);
  const auto b = runner.run(7);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind) << i;
    EXPECT_EQ(a.events[i].iteration, b.events[i].iteration) << i;
    EXPECT_EQ(a.events[i].server, b.events[i].server) << i;
    EXPECT_EQ(a.events[i].target, b.events[i].target) << i;
  }
  EXPECT_EQ(a.kills, b.kills);
  EXPECT_EQ(a.sickenings, b.sickenings);
  EXPECT_TRUE(a.bit_exact);
  EXPECT_TRUE(b.bit_exact);
  set_log_level(LogLevel::kWarn);
}

}  // namespace
}  // namespace lowdiff
