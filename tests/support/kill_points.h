#pragma once

/// \file kill_points.h
/// Shared kill/crash-point machinery for the fault-tolerance harnesses.
///
/// Two suites consume this: the PR 1 crash harness in
/// test_fault_tolerance.cpp (randomized iteration-level kills sampled from
/// the Poisson failure process) and the persist-pipeline crash matrix in
/// test_persist_pipeline.cpp (exhaustive backend-op-level boundaries).
/// Both take a KillPointEnumerator, so the kill logic lives once, here,
/// and a harness is "exhaustive" or "sampled" purely by the enumerator
/// injected into it.
///
/// Also hosts the `ctest -L seeds` plumbing: env_seed_offset() reads
/// LOWDIFF_TEST_SEED so the seed-sweep runner can rerun every randomized
/// suite over 50 deterministic universes without code changes.

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "sim/failure.h"

namespace lowdiff::test_support {

/// Offset mixed into a randomized suite's base seeds.  Unset (the normal
/// `ctest -L tier1` run) means 0 — the historical seeds, unchanged.
inline std::uint64_t env_seed_offset() {
  const char* s = std::getenv("LOWDIFF_TEST_SEED");
  if (s == nullptr || *s == '\0') return 0;
  return std::strtoull(s, nullptr, 10);
}

/// SplitMix-style mix for deriving per-case seeds from (base, offset) so
/// sweep universes decorrelate instead of just shifting.
inline std::uint64_t mix_seed(std::uint64_t base, std::uint64_t offset) {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ull * (offset + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// The seed a randomized suite should actually use for a historical base
/// seed: the base itself in a normal run (sweep offset 0 — bit-for-bit the
/// pre-sweep behavior), a decorrelated mix under `ctest -L seeds`.
inline std::uint64_t sweep_seed(std::uint64_t base) {
  const std::uint64_t offset = env_seed_offset();
  return offset == 0 ? base : mix_seed(base, offset);
}

/// A source of kill points: each call yields the next point (an iteration
/// index for the training harness, a backend-op ordinal for the pipeline
/// crash matrix), or nullopt when the schedule is exhausted.
using KillPointEnumerator = std::function<std::optional<std::uint64_t>()>;

/// Randomized enumerator — the PR 1 harness behavior, parameterized:
/// `count` points in [1, max_exclusive) drawn from sim::FailureModel's
/// Poisson process.
inline KillPointEnumerator poisson_kill_points(double mtbf_sec,
                                               std::uint64_t seed, int count,
                                               std::uint64_t max_exclusive) {
  auto model = std::make_shared<sim::FailureModel>(mtbf_sec, seed);
  auto remaining = std::make_shared<int>(count);
  return [model, remaining, max_exclusive]() -> std::optional<std::uint64_t> {
    if (*remaining <= 0) return std::nullopt;
    --*remaining;
    return 1 + static_cast<std::uint64_t>(model->next().time) %
                   (max_exclusive - 1);
  };
}

/// Exhaustive enumerator: every boundary 0..last inclusive, in order.  The
/// pipeline crash matrix uses this so no submit/complete/sync boundary is
/// sampled away.
inline KillPointEnumerator exhaustive_kill_points(std::uint64_t last) {
  auto next = std::make_shared<std::uint64_t>(0);
  return [next, last]() -> std::optional<std::uint64_t> {
    if (*next > last) return std::nullopt;
    return (*next)++;
  };
}

/// Drains an enumerator into a vector (harnesses that want the full list
/// up front, e.g. to assert its cardinality).
inline std::vector<std::uint64_t> drain(const KillPointEnumerator& e) {
  std::vector<std::uint64_t> out;
  while (auto k = e()) out.push_back(*k);
  return out;
}

}  // namespace lowdiff::test_support
