#pragma once

/// \file sim_golden.h
/// Bit-exact golden results for the legacy 64-GPU-and-below failure
/// scenarios, generated from the pre-rewrite scalar engine (the code now
/// frozen as run_with_failures_reference) before the discrete-event
/// rewrite landed.  Every double is stored as raw IEEE-754 bits: the
/// engine's legacy path must reproduce these exactly — not approximately —
/// on every platform the CI matrix covers.
///
/// Grid: {A100 x 8, V100S x 64} clusters x 7 strategies x
/// MTBF {1800 s, 7200 s} x seeds {1, 7}; GPT2-S; rho = 0.01 (LowDiff+
/// runs the dense rho = 0 regime); 4 h of productive work;
/// software_fraction = 0.5.  56 cells.
///
/// Regenerating (only when the accounting model itself changes, with a
/// DESIGN.md §11 note): build run_with_failures_reference over this grid
/// and dump each result's doubles via memcpy to uint64.

#include <cstdint>

#include "sim/strategy_model.h"

namespace lowdiff::sim::golden {

struct GoldenRow {
  const char* cluster;  ///< "a100x8" or "v100x64"
  StrategyKind kind;
  std::uint64_t ckpt_interval;
  std::uint64_t full_interval;
  std::uint64_t batch_size;
  double mtbf_sec;
  std::uint64_t seed;
  std::uint64_t wall_bits;
  std::uint64_t wasted_bits;
  std::uint64_t ratio_bits;
  std::uint64_t failures;
  std::uint64_t overhead_bits;
  std::uint64_t recovery_bits;
  std::uint64_t redo_bits;
};

inline constexpr double kGoldenTrainWorkSec = 4 * 3600.0;
inline constexpr double kGoldenSoftwareFraction = 0.5;

inline constexpr GoldenRow kRows[] = {
    // clang-format off
    {"a100x8", StrategyKind::kTorchSave, 25, 25, 2, 1800.0, 1,
     0x40d648c394036180ull, 0x40c071872806c300ull, 0x3fe43192f7079117ull, 6, 0x40c03c67d2bf68cfull, 0x4057287ae147ae15ull, 0x402b397e132b55efull},
    {"a100x8", StrategyKind::kTorchSave, 25, 25, 2, 1800.0, 7,
     0x40d681cfcbc74438ull, 0x40c0e39f978e8870ull, 0x3fe3fe63ddd39459ull, 18, 0x40c0444197b879dbull, 0x40715e5c28f5c290ull, 0x40446b1e8e608073ull},
    {"a100x8", StrategyKind::kTorchSave, 25, 25, 2, 7200.0, 1,
     0x40d635bf816cc099ull, 0x40c04b7f02d98132ull, 0x3fe442dd186522e3ull, 2, 0x40c039c9e66c6320ull, 0x403ee0a3d70a3d71ull, 0x401226540cc78e9full},
    {"a100x8", StrategyKind::kTorchSave, 25, 25, 2, 7200.0, 7,
     0x40d65706a1f45a2eull, 0x40c08e0d43e8b45cull, 0x3fe424aeaeeaa5b1ull, 9, 0x40c03e5e43fdad11ull, 0x40615e5c28f5c290ull, 0x40346b1e8e608073ull},
    {"a100x8", StrategyKind::kCheckFreq, 10, 10, 2, 1800.0, 1,
     0x40d43aba1797b2faull, 0x40b8aae85e5ecbe8ull, 0x3fe63eae71bbd4a6ull, 6, 0x40b848d48cd5d7b9ull, 0x4057287ae147ae15ull, 0x4015c7980f55de5aull},
    {"a100x8", StrategyKind::kCheckFreq, 10, 10, 2, 1800.0, 7,
     0x40d468c18dc7f0afull, 0x40b96306371fc2bcull, 0x3fe60c832759e7e1ull, 17, 0x40b84d2365710ee1ull, 0x407067570a3d70a4ull, 0x402edac215b9a5acull},
    {"a100x8", StrategyKind::kCheckFreq, 10, 10, 2, 7200.0, 1,
     0x40d425cdf924ae34ull, 0x40b85737e492b8d0ull, 0x3fe655c81527795dull, 1, 0x40b846df41a6901bull, 0x402ee0a3d70a3d71ull, 0x3fed0a2014727dccull},
    {"a100x8", StrategyKind::kCheckFreq, 10, 10, 2, 7200.0, 7,
     0x40d4368ade4d7ed3ull, 0x40b89a2b7935fb4cull, 0x3fe6434958a24191ull, 5, 0x40b848704a992fccull, 0x40534c6666666667ull, 0x401226540cc78ea0ull},
    {"a100x8", StrategyKind::kGemini, 1, 1, 2, 1800.0, 1,
     0x40e17aae3820ca3full, 0x40d4e55c7041947eull, 0x3fd9beaeca91550bull, 12, 0x40d4b2b28e2fbc10ull, 0x4069321815a07b37ull, 0x3ff16c79a5de4b79ull},
    {"a100x8", StrategyKind::kGemini, 1, 1, 2, 1800.0, 7,
     0x40e19a98812c32a6ull, 0x40d525310258654cull, 0x3fd9900222cff61cull, 27, 0x40d4b332c5b03e56ull, 0x407c585b18548a9eull, 0x40039a08da9a14e8ull},
    {"a100x8", StrategyKind::kGemini, 1, 1, 2, 7200.0, 1,
     0x40e165675cc3d9faull, 0x40d4baceb987b3f4ull, 0x3fd9de2bb49e762bull, 2, 0x40d4b25d13da0fe2ull, 0x4040cc100e6afcceull, 0x3fc73b4cdd2864a3ull},
    {"a100x8", StrategyKind::kGemini, 1, 1, 2, 7200.0, 7,
     0x40e1744c2984e890ull, 0x40d4d8985309d120ull, 0x3fd9c8190144d06cull, 9, 0x40d4b298e97c6eceull, 0x4062e59210385c69ull, 0x3fea22b678cd7136ull},
    {"a100x8", StrategyKind::kNaiveDC, 1, 20, 2, 1800.0, 1,
     0x41023ab1c1a65e1eull, 0x410078b1c1a65e1eull, 0x3fb8af815edf4cceull, 73, 0x41004c86c98a07a5ull, 0x4095fafc6a7ef9ddull, 0x401a7fa3ac4212d5ull},
    {"a100x8", StrategyKind::kNaiveDC, 1, 20, 2, 1800.0, 7,
     0x4102442a088ed881ull, 0x4100822a088ed881ull, 0x3fb8a2b521b1ce28ull, 88, 0x41004cebb6e3eb00ull, 0x409a7f374bc6a7f7ull, 0x401ff189b0178a72ull},
    {"a100x8", StrategyKind::kNaiveDC, 1, 20, 2, 7200.0, 1,
     0x4102157244583870ull, 0x4100537244583870ull, 0x3fb8e259f4582768ull, 14, 0x41004af9ce9fefbeull, 0x4070dc978d4fdf3bull, 0x3ff453e34183580dull},
    {"a100x8", StrategyKind::kNaiveDC, 1, 20, 2, 7200.0, 7,
     0x41021e48ececeeedull, 0x41005c48ececeeedull, 0x3fb8d6365afa2134ull, 28, 0x41004b58017c5d8aull, 0x4080dc978d4fdf38ull, 0x400453e34183580dull},
    {"a100x8", StrategyKind::kLowDiff, 1, 20, 2, 1800.0, 1,
     0x40cce69e5bc64ccdull, 0x4078d3cb78c999a0ull, 0x3fef2415327c700eull, 4, 0x4074dd17adc0f244ull, 0x404f2a3a8b164918ull, 0x3ff16c79a5de4b7aull},
    {"a100x8", StrategyKind::kLowDiff, 1, 20, 2, 1800.0, 7,
     0x40cd2dfe452516daull, 0x4080dfe452516da0ull, 0x3feed7e92761d33bull, 13, 0x4074de0050c6ba90ull, 0x4069524f91021b66ull, 0x400c5045ad893aa4ull},
    {"a100x8", StrategyKind::kLowDiff, 1, 20, 2, 7200.0, 1,
     0x40ccc6e58246d691ull, 0x4074dcb048dad220ull, 0x3fef46692b7ed373ull, 0, 0x4074dcb048dad223ull, 0x0000000000000000ull, 0x0000000000000000ull},
    {"a100x8", StrategyKind::kLowDiff, 1, 20, 2, 7200.0, 7,
     0x40ccdeb025666f40ull, 0x4077d604accde800ull, 0x3fef2ca31e347558ull, 3, 0x4074dcfdd4876a3cull, 0x40475fabe850b6d2ull, 0x3fea22b678cd7137ull},
    {"a100x8", StrategyKind::kLowDiffPlus, 1, 100, 2, 1800.0, 1,
     0x40ce676b6554241dull, 0x40923b5b2aa120e8ull, 0x3fed99f4630d1305ull, 4, 0x4091484ca892be3full, 0x404e1cc100e6afcdull, 0x3fe143d03968d75aull},
    {"a100x8", StrategyKind::kLowDiffPlus, 1, 100, 2, 1800.0, 7,
     0x40ceae84a3818657ull, 0x409474251c0c32b8ull, 0x3fed555c060257f9ull, 13, 0x40914955dfde84e8ull, 0x4068d94e3bcd35a9ull, 0x400f4ae9680e0655ull},
    {"a100x8", StrategyKind::kLowDiffPlus, 1, 100, 2, 7200.0, 1,
     0x40ce4904472a6d68ull, 0x4091482239536b40ull, 0x3fedb7abc353398eull, 0, 0x4091482239536b41ull, 0x0000000000000000ull, 0x0000000000000000ull},
    {"a100x8", StrategyKind::kLowDiffPlus, 1, 100, 2, 7200.0, 7,
     0x40ce607dec5d983aull, 0x409203ef62ecc1d0ull, 0x3feda0b494f74d3eull, 3, 0x4091486c7c023c7bull, 0x4046f7822bbecaacull, 0x3fee36ac647778deull},
    {"a100x8", StrategyKind::kPCcheck, 10, 10, 2, 1800.0, 1,
     0x40cd1f0250722825ull, 0x407fe04a0e4504a0ull, 0x3feee7c7f97bb51eull, 4, 0x407bdafa69c2030eull, 0x404e59db22d0e560ull, 0x400d0a2014727dccull},
    {"a100x8", StrategyKind::kPCcheck, 10, 10, 2, 1800.0, 7,
     0x40cd6782432461c8ull, 0x4084782432461c80ull, 0x3fee9b948ef6eadcull, 13, 0x407bdf058de273c6ull, 0x4068a9020c49ba5eull, 0x4027983a109d0638ull},
    {"a100x8", StrategyKind::kPCcheck, 10, 10, 2, 7200.0, 1,
     0x40ccfec972cd9cc1ull, 0x407bd92e59b39820ull, 0x3fef0a204129e2bdull, 0, 0x407bd92e59b39811ull, 0x0000000000000000ull, 0x0000000000000000ull},
    {"a100x8", StrategyKind::kPCcheck, 10, 10, 2, 7200.0, 7,
     0x40cd16f41909054cull, 0x407ede832120a980ull, 0x3feef056e9544d90ull, 3, 0x407bda8765be684eull, 0x4046c3645a1cac08ull, 0x4005c7980f55de59ull},
    {"v100x64", StrategyKind::kTorchSave, 25, 25, 2, 1800.0, 1,
     0x40d2496878e7070bull, 0x40b0e5a1e39c1c2cull, 0x3fe89ba49f5ca455ull, 6, 0x40b06d70c6873870ull, 0x4057287ae147ae15ull, 0x403b8f318fc50482ull},
    {"v100x64", StrategyKind::kTorchSave, 25, 25, 2, 1800.0, 7,
     0x40d2797e1348cf6cull, 0x40b1a5f84d233db0ull, 0x3fe85b985677d550ull, 15, 0x40b0797d846f0451ull, 0x406cf2999999999aull, 0x4051397ef9db22d3ull},
    {"v100x64", StrategyKind::kTorchSave, 25, 25, 2, 7200.0, 1,
     0x40d2295a11fb2c22ull, 0x40b0656847ecb088ull, 0x3fe8c713e4c4cb01ull, 0, 0x40b0656847ecb087ull, 0x0000000000000000ull, 0x0000000000000000ull},
    {"v100x64", StrategyKind::kTorchSave, 25, 25, 2, 7200.0, 7,
     0x40d23eb901431369ull, 0x40b0bae4050c4da4ull, 0x3fe8aa0e16675a46ull, 4, 0x40b06ac346fe6078ull, 0x404ee0a3d70a3d71ull, 0x40325f765fd8adacull},
    {"v100x64", StrategyKind::kCheckFreq, 10, 10, 2, 1800.0, 1,
     0x40cd27eb7609dbe0ull, 0x40807eb7609dbe00ull, 0x3feede55f36cf722ull, 4, 0x407cabc41d8e6356ull, 0x404ee0a3d70a3d71ull, 0x401d658a32f44913ull},
    {"v100x64", StrategyKind::kCheckFreq, 10, 10, 2, 1800.0, 7,
     0x40cd75ecd9e62448ull, 0x40855ecd9e624480ull, 0x3fee8c9a457ee151ull, 13, 0x407cb430a8d1f8d4ull, 0x406916851eb851ecull, 0x4037e28049667b5eull},
    {"v100x64", StrategyKind::kCheckFreq, 10, 10, 2, 7200.0, 1,
     0x40cd05402d362d79ull, 0x407ca805a6c5af20ull, 0x3fef033666e7d3d5ull, 0, 0x407ca805a6c5af1dull, 0x0000000000000000ull, 0x0000000000000000ull},
    {"v100x64", StrategyKind::kCheckFreq, 10, 10, 2, 7200.0, 7,
     0x40cd1f40a3d4f046ull, 0x407fe8147a9e08c0ull, 0x3feee785d50e4fecull, 3, 0x407caad47fdc3647ull, 0x4047287ae147ae15ull, 0x40160c27a63736ceull},
    {"v100x64", StrategyKind::kGemini, 1, 1, 2, 1800.0, 1,
     0x40d14930d0edda7cull, 0x40a9c986876ed3e0ull, 0x3fea086409d94a29ull, 6, 0x40a8fdc15c64641aull, 0x4059321815a07b36ull, 0x3ff1a352eb5f5f0bull},
    {"v100x64", StrategyKind::kGemini, 1, 1, 2, 1800.0, 7,
     0x40d16f7d4adbdfd2ull, 0x40aafbea56defe90ull, 0x3fe9cf35130b80b5ull, 15, 0x40a8fe7d6b44e727ull, 0x406f7e9e1b089a05ull, 0x40060c27a63736ceull},
    {"v100x64", StrategyKind::kGemini, 1, 1, 2, 7200.0, 1,
     0x40d12fa87fa48197ull, 0x40a8fd43fd240cb8ull, 0x3fea2f10f0276eafull, 0, 0x40a8fd43fd240cbaull, 0x0000000000000000ull, 0x0000000000000000ull},
    {"v100x64", StrategyKind::kGemini, 1, 1, 2, 7200.0, 7,
     0x40d140ae0b2abcdaull, 0x40a985705955e6d0ull, 0x3fea153b9e814630ull, 4, 0x40a8fd9791f99c4eull, 0x4050cc100e6afcceull, 0x3fe7846e8f29d40full},
    {"v100x64", StrategyKind::kNaiveDC, 1, 20, 2, 1800.0, 1,
     0x40f269ba94e573a7ull, 0x40edcb7529cae74eull, 0x3fc87072b95163d1ull, 40, 0x40ed6a2fc008abd8ull, 0x4088168f5c28f5bcull, 0x401d658a32f4490aull},
    {"v100x64", StrategyKind::kNaiveDC, 1, 20, 2, 1800.0, 7,
     0x40f27b6c69642916ull, 0x40edeed8d2c8522cull, 0x3fc8590cd8b09934ull, 54, 0x40ed6b87ea6881e8ull, 0x4090426d916872abull, 0x4023d7bd48cb4ae5ull},
    {"v100x64", StrategyKind::kNaiveDC, 1, 20, 2, 7200.0, 1,
     0x40f23ec190d64d4full, 0x40ed758321ac9a9eull, 0x3fc8aa0283c5e008ull, 6, 0x40ed66ebeb6911b3ull, 0x405ce7df3b645a1cull, 0x3ff1a352eb5f5f0bull},
    {"v100x64", StrategyKind::kNaiveDC, 1, 20, 2, 7200.0, 7,
     0x40f24a219970e683ull, 0x40ed8c4332e1cd06ull, 0x3fc89aab8a5ddf10ull, 15, 0x40ed67c92b38f6bdull, 0x407210eb851eb852ull, 0x40060c27a63736ceull},
    {"v100x64", StrategyKind::kLowDiff, 1, 20, 2, 1800.0, 1,
     0x40cc9177a122347full, 0x406c5de8488d1fc0ull, 0x3fef80e703affd99ull, 4, 0x40643af22de92ff2ull, 0x404f71a33bd9cae2ull, 0x4001a352eb5f5f0bull},
    {"v100x64", StrategyKind::kLowDiff, 1, 20, 2, 1800.0, 7,
     0x40ccdab96ab6bf2full, 0x4077572d56d7e5e0ull, 0x3fef30eb6f2abd5dull, 13, 0x40643cbad71b0087ull, 0x40698c54a0a0f4d7ull, 0x401ca966be7afa70ull},
    {"v100x64", StrategyKind::kLowDiff, 1, 20, 2, 7200.0, 1,
     0x40cc70e89ce02fbfull, 0x40643a27380befc0ull, 0x3fefa4f7876f688cull, 0, 0x40643a27380befb0ull, 0x0000000000000000ull, 0x0000000000000000ull},
    {"v100x64", StrategyKind::kLowDiff, 1, 20, 2, 7200.0, 7,
     0x40cc8953e011b34full, 0x406a54f8046cd3c0ull, 0x3fef89e36d877498ull, 3, 0x40643abf7071dfe2ull, 0x4047953a6ce3582aull, 0x3ffa74fc610f0e90ull},
    {"v100x64", StrategyKind::kLowDiffPlus, 1, 100, 2, 1800.0, 1,
     0x40ce5c9c43f0f642ull, 0x4091e4e21f87b210ull, 0x3feda47e37c50c4cull, 4, 0x4090eea7049410b5ull, 0x404e3be76c8b4396ull, 0x3ff16f7e3d1cc101ull},
    {"v100x64", StrategyKind::kLowDiffPlus, 1, 100, 2, 1800.0, 7,
     0x40cea469efe42eb2ull, 0x4094234f7f217590ull, 0x3fed5f083d9bbe09ull, 13, 0x4090f00be1c32b54ull, 0x4068e30a3d70a3d7ull, 0x4016e255b035bd51ull},
    {"v100x64", StrategyKind::kLowDiffPlus, 1, 100, 2, 7200.0, 1,
     0x40ce3dca6198a6f4ull, 0x4090ee530cc537a0ull, 0x3fedc2b3df3ec1e9ull, 0, 0x4090ee530cc5379eull, 0x0000000000000000ull, 0x0000000000000000ull},
    {"v100x64", StrategyKind::kLowDiffPlus, 1, 100, 2, 7200.0, 7,
     0x40ce5585270603eeull, 0x4091ac2938301f70ull, 0x3fedab6bf3d689f3ull, 3, 0x4090eebc0287c6faull, 0x4046ff4bc6a7ef9eull, 0x3ff5cb5dcc63f141ull},
    {"v100x64", StrategyKind::kPCcheck, 10, 10, 2, 1800.0, 1,
     0x40cd2764ad55a288ull, 0x4080764ad55a2880ull, 0x3feedee4a971f9f3ull, 4, 0x407cabc41d8e6356ull, 0x404e59db22d0e560ull, 0x401d658a32f44913ull},
    {"v100x64", StrategyKind::kPCcheck, 10, 10, 2, 1800.0, 7,
     0x40cd7436cd9c69eaull, 0x4085436cd9c69ea0ull, 0x3fee8e609bce08eaull, 13, 0x407cb430a8d1f8d4ull, 0x4068a9020c49ba5eull, 0x4037e28049667b5eull},
    {"v100x64", StrategyKind::kPCcheck, 10, 10, 2, 7200.0, 1,
     0x40cd05402d362d79ull, 0x407ca805a6c5af20ull, 0x3fef033666e7d3d5ull, 0, 0x407ca805a6c5af1dull, 0x0000000000000000ull, 0x0000000000000000ull},
    {"v100x64", StrategyKind::kPCcheck, 10, 10, 2, 7200.0, 7,
     0x40cd1edb8d4dc544ull, 0x407fdb71a9b8a880ull, 0x3feee7f11cd5ca26ull, 3, 0x407caad47fdc3647ull, 0x4046c3645a1cac08ull, 0x40160c27a63736ceull},
    // clang-format on
    // clang-format on
};

inline constexpr std::size_t kNumRows = sizeof(kRows) / sizeof(kRows[0]);

}  // namespace lowdiff::sim::golden
