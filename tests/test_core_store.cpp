#include <gtest/gtest.h>

#include "common/rng.h"
#include "compress/topk.h"
#include "core/checkpoint_store.h"
#include "storage/mem_storage.h"
#include "tensor/ops.h"

namespace lowdiff {
namespace {

ModelSpec small_spec() {
  ModelSpec spec;
  spec.name = "s";
  spec.layers = {{"w", {10, 4}}, {"b", {10}}};
  return spec;
}

CompressedGrad make_diff(std::uint64_t iter, std::uint64_t seed = 1) {
  Tensor g(50);
  Xoshiro256 rng(seed + iter);
  ops::fill_normal(g.span(), rng, 1.0f);
  return TopKCompressor(0.2).compress(g.cspan(), iter);
}

class StoreTest : public ::testing::Test {
 protected:
  std::shared_ptr<MemStorage> mem_ = std::make_shared<MemStorage>();
  CheckpointStore store_{mem_};
};

TEST_F(StoreTest, KeysAreLexicographicallyChronological) {
  EXPECT_LT(CheckpointStore::full_key(9), CheckpointStore::full_key(10));
  EXPECT_LT(CheckpointStore::diff_key(99), CheckpointStore::diff_key(100));
  EXPECT_LT(CheckpointStore::batch_key(1, 3), CheckpointStore::batch_key(4, 6));
}

TEST_F(StoreTest, LatestFullTracksWrites) {
  EXPECT_FALSE(store_.latest_full().has_value());
  ModelState state(small_spec());
  state.init_random(1);
  store_.put_full(10, state);
  store_.put_full(30, state);
  store_.put_full(20, state);
  EXPECT_EQ(store_.latest_full(), 30u);
}

TEST_F(StoreTest, FullRoundTripBitExact) {
  ModelState state(small_spec());
  state.init_random(2);
  state.set_step(17);
  store_.put_full(16, state);
  const auto back = store_.read_full(16, small_spec());
  EXPECT_TRUE(state.bit_equal(back));
  EXPECT_THROW(store_.read_full(17, small_spec()), Error);
}

TEST_F(StoreTest, DiffsAfterCollectsStandaloneAndBatched) {
  store_.put_diff(make_diff(5));
  store_.put_diff(make_diff(6));
  BatchedGrad batch;
  batch.first_iteration = 7;
  batch.last_iteration = 9;
  for (std::uint64_t i = 7; i <= 9; ++i) batch.members.push_back(make_diff(i));
  store_.put_batch(batch);

  EXPECT_EQ(store_.diffs_after(4),
            (std::vector<std::uint64_t>{5, 6, 7, 8, 9}));
  EXPECT_EQ(store_.diffs_after(6), (std::vector<std::uint64_t>{7, 8, 9}));
  EXPECT_EQ(store_.diffs_after(8), (std::vector<std::uint64_t>{9}));
  EXPECT_TRUE(store_.diffs_after(9).empty());
}

TEST_F(StoreTest, ReadDiffFromStandaloneAndBatch) {
  const auto d5 = make_diff(5);
  store_.put_diff(d5);
  BatchedGrad batch;
  batch.first_iteration = 6;
  batch.last_iteration = 7;
  batch.members = {make_diff(6), make_diff(7)};
  store_.put_batch(batch);

  EXPECT_EQ(store_.read_diff(5), d5);
  EXPECT_EQ(store_.read_diff(7), batch.members[1]);
  EXPECT_THROW(store_.read_diff(8), Error);
}

TEST_F(StoreTest, PruneRemovesObsolete) {
  ModelState state(small_spec());
  state.init_random(3);
  store_.put_full(10, state);
  store_.put_diff(make_diff(11));
  store_.put_diff(make_diff(12));
  store_.put_full(20, state);
  BatchedGrad batch;
  batch.first_iteration = 18;
  batch.last_iteration = 20;
  batch.members = {make_diff(18), make_diff(19), make_diff(20)};
  store_.put_batch(batch);
  store_.put_diff(make_diff(21));

  store_.prune_before(20);
  EXPECT_EQ(store_.latest_full(), 20u);
  EXPECT_FALSE(mem_->exists(CheckpointStore::full_key(10)));
  EXPECT_FALSE(mem_->exists(CheckpointStore::diff_key(11)));
  EXPECT_FALSE(mem_->exists(CheckpointStore::batch_key(18, 20)));
  EXPECT_TRUE(mem_->exists(CheckpointStore::diff_key(21)));
  EXPECT_EQ(store_.diffs_after(20), (std::vector<std::uint64_t>{21}));
}

TEST_F(StoreTest, UsageSplitsFullAndDiffBytes) {
  ModelState state(small_spec());
  state.init_random(4);
  store_.put_full(0, state);
  store_.put_diff(make_diff(1));
  BatchedGrad batch;
  batch.first_iteration = 2;
  batch.last_iteration = 3;
  batch.members = {make_diff(2), make_diff(3)};
  store_.put_batch(batch);

  const auto usage = store_.usage();
  EXPECT_EQ(usage.full_count, 1u);
  EXPECT_EQ(usage.diff_count, 3u);
  EXPECT_GT(usage.full_bytes, state.byte_size());
  EXPECT_GT(usage.diff_bytes, 0u);
  EXPECT_LT(usage.diff_bytes, usage.full_bytes);
}

TEST_F(StoreTest, ShardedFullRoundTripBitExact) {
  ModelState state(small_spec());
  state.init_random(7);
  state.set_step(9);
  const std::uint32_t world = 4;
  for (std::uint32_t r = 0; r < world; ++r) {
    store_.put_full_shard(8, r, world, state);
  }
  EXPECT_EQ(store_.latest_full(), 8u);
  const auto back = store_.read_full(8, small_spec());
  EXPECT_TRUE(state.bit_equal(back));
}

TEST_F(StoreTest, IncompleteShardSetIsInvisible) {
  ModelState state(small_spec());
  state.init_random(7);
  store_.put_full(3, state);
  // Only 2 of 3 shards arrive (crash mid-save).
  store_.put_full_shard(10, 0, 3, state);
  store_.put_full_shard(10, 2, 3, state);
  EXPECT_EQ(store_.latest_full(), 3u);  // torn save never becomes "latest"
  EXPECT_TRUE(store_.complete_shard_sets().empty());
  store_.put_full_shard(10, 1, 3, state);
  EXPECT_EQ(store_.latest_full(), 10u);
  EXPECT_EQ(store_.complete_shard_sets(),
            (std::vector<std::uint64_t>{10}));
}

TEST_F(StoreTest, ShardedUnbalancedWorldSizes) {
  // param_count = 50; world = 7 does not divide it evenly.
  ModelState state(small_spec());
  state.init_random(11);
  for (std::uint32_t r = 0; r < 7; ++r) store_.put_full_shard(1, r, 7, state);
  EXPECT_TRUE(store_.read_full(1, small_spec()).bit_equal(state));
}

TEST_F(StoreTest, ShardCoordinateValidation) {
  ModelState state(small_spec());
  EXPECT_THROW(store_.put_full_shard(0, 3, 3, state), Error);
  EXPECT_THROW(store_.put_full_shard(0, 0, 0, state), Error);
}

TEST_F(StoreTest, PruneRemovesOldShards) {
  ModelState state(small_spec());
  state.init_random(2);
  for (std::uint32_t r = 0; r < 2; ++r) store_.put_full_shard(5, r, 2, state);
  store_.put_full(9, state);
  store_.prune_before(9);
  EXPECT_TRUE(store_.complete_shard_sets().empty());
  EXPECT_EQ(store_.latest_full(), 9u);
}

TEST_F(StoreTest, ShardedRecoveryWithDiffs) {
  // A sharded full checkpoint composes with differentials exactly like a
  // monolithic one.
  ModelState state(small_spec());
  state.init_random(4);
  for (std::uint32_t r = 0; r < 3; ++r) store_.put_full_shard(6, r, 3, state);
  store_.put_diff(make_diff(7));
  store_.put_diff(make_diff(8));
  EXPECT_EQ(store_.diffs_after(*store_.latest_full()),
            (std::vector<std::uint64_t>{7, 8}));
}

TEST_F(StoreTest, IgnoresForeignKeys) {
  mem_->write("unrelated/key", std::vector<std::byte>(4));
  EXPECT_FALSE(store_.latest_full().has_value());
  EXPECT_TRUE(store_.diffs_after(0).empty());
}

}  // namespace
}  // namespace lowdiff
