// Concurrency stress tests for the ReusingQueue — the zero-copy handoff at
// the heart of LowDiff's checkpointing path.  Run in the tier-1 suite with
// modest parameters, and again under ThreadSanitizer via the
// `tsan_queue_stress` ctest entry (cmake/run_sanitized_test.cmake).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "queue/reusing_queue.h"

namespace lowdiff {
namespace {

struct Item {
  std::uint64_t id = 0;
};

TEST(QueueStress, MpmcDeliversEveryItemExactlyOnce) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 2000;
  constexpr std::uint64_t kTotal = kProducers * kPerProducer;

  ReusingQueue<Item> queue(/*capacity=*/8);  // small: forces back-pressure
  std::vector<std::uint8_t> seen(kTotal, 0);
  std::mutex seen_mu;
  std::atomic<std::uint64_t> consumed{0};

  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const auto ok = queue.put(
            std::make_shared<const Item>(Item{p * kPerProducer + i}));
        ASSERT_TRUE(ok);
      }
    });
  }
  for (std::size_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        auto handle = queue.get();
        if (!handle.has_value()) return;  // closed and drained
        {
          std::lock_guard lock(seen_mu);
          ASSERT_LT((*handle)->id, kTotal);
          ASSERT_EQ(seen[(*handle)->id], 0) << "duplicate delivery";
          seen[(*handle)->id] = 1;
        }
        consumed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::size_t p = 0; p < kProducers; ++p) threads[p].join();
  queue.close();
  for (std::size_t c = kProducers; c < threads.size(); ++c) threads[c].join();

  EXPECT_EQ(consumed.load(), kTotal);
  EXPECT_EQ(queue.total_enqueued(), kTotal);
  EXPECT_EQ(queue.size(), 0u);
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(seen[i], 1) << "item " << i << " lost";
  }
}

TEST(QueueStress, OccupancyGaugeReturnsToZeroUnderContention) {
  ReusingQueue<Item> queue(/*capacity=*/4);
  obs::Registry reg;  // test-local registry, isolated from global state
  auto& occupancy = reg.gauge("occupancy");
  auto& blocked = reg.counter("blocked_us");
  queue.set_obs({&occupancy, &blocked});

  constexpr std::uint64_t kItems = 5000;
  std::thread consumer([&queue] {
    while (queue.get().has_value()) {
    }
  });
  for (std::uint64_t i = 0; i < kItems; ++i) {
    ASSERT_TRUE(queue.put(std::make_shared<const Item>(Item{i})));
  }
  queue.close();
  consumer.join();
  // Every +1 was matched by a -1 once the consumer drained the queue.
  EXPECT_EQ(occupancy.value(), 0.0);
}

TEST(QueueStress, CloseWhileFullUnblocksProducer) {
  ReusingQueue<Item> queue(/*capacity=*/2);
  ASSERT_TRUE(queue.put(std::make_shared<const Item>(Item{0})));
  ASSERT_TRUE(queue.put(std::make_shared<const Item>(Item{1})));

  std::atomic<int> blocked_put_result{-1};
  std::thread producer([&] {
    // Queue is full: this put blocks until close() wakes it, then reports
    // rejection (the handle is dropped, never half-enqueued).
    blocked_put_result.store(
        queue.put(std::make_shared<const Item>(Item{2})) ? 1 : 0);
  });
  // Give the producer time to reach the blocking wait (close() is correct
  // whether or not it got there — this just makes the interesting
  // interleaving overwhelmingly likely).
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  producer.join();
  EXPECT_EQ(blocked_put_result.load(), 0);

  // The two items enqueued before close() are still drainable.
  EXPECT_EQ((*queue.get())->id, 0u);
  EXPECT_EQ((*queue.get())->id, 1u);
  EXPECT_FALSE(queue.get().has_value());
}

TEST(QueueStress, DrainOnCloseKeepsFifoOrder) {
  ReusingQueue<Item> queue(/*capacity=*/0);  // unbounded
  constexpr std::uint64_t kItems = 100;
  for (std::uint64_t i = 0; i < kItems; ++i) {
    ASSERT_TRUE(queue.put(std::make_shared<const Item>(Item{i})));
  }
  queue.close();
  EXPECT_FALSE(queue.put(std::make_shared<const Item>(Item{999})));
  for (std::uint64_t i = 0; i < kItems; ++i) {
    auto handle = queue.get();
    ASSERT_TRUE(handle.has_value());
    EXPECT_EQ((*handle)->id, i);
  }
  EXPECT_FALSE(queue.get().has_value());
  EXPECT_FALSE(queue.try_get().has_value());
}

TEST(QueueStress, BlockedProducerTimeIsRecorded) {
  ReusingQueue<Item> queue(/*capacity=*/1);
  obs::Registry reg;
  auto& occupancy = reg.gauge("occupancy");
  auto& blocked = reg.counter("blocked_us");
  queue.set_obs({&occupancy, &blocked});

  ASSERT_TRUE(queue.put(std::make_shared<const Item>(Item{0})));
  std::thread slow_consumer([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    while (queue.get().has_value()) {
    }
  });
  // Full queue: this put blocks ~30ms until the consumer starts draining.
  ASSERT_TRUE(queue.put(std::make_shared<const Item>(Item{1})));
  queue.close();
  slow_consumer.join();
  EXPECT_GE(blocked.value(), 10'000u);  // at least 10ms of recorded blocking
}

}  // namespace
}  // namespace lowdiff
