#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "compress/dense.h"
#include "compress/quant8.h"
#include "compress/randomk.h"
#include "compress/topk.h"
#include "core/recovery.h"
#include "core/trainer.h"
#include "storage/file_storage.h"
#include "tensor/ops.h"

namespace lowdiff {
namespace {

/// End-to-end scenarios: train with LowDiff, crash, recover, continue —
/// asserting the recovered trajectory is indistinguishable from an
/// uninterrupted one.  This is the strongest form of the paper's
/// correctness claim (Eq. 2 / Finding 1).

MlpConfig mlp() {
  MlpConfig cfg;
  cfg.input_dim = 10;
  cfg.hidden = {20, 16};
  cfg.num_classes = 5;
  return cfg;
}

TrainerConfig trainer_cfg(double rho) {
  TrainerConfig cfg;
  cfg.world = 2;
  cfg.batch_size = 24;
  cfg.rho = rho;
  cfg.adam.lr = 4e-3f;
  cfg.seed = 77;
  return cfg;
}

TEST(Integration, CrashAndRecoverBitExactContinuation) {
  // Reference: uninterrupted 60-iteration run.
  Trainer reference(mlp(), trainer_cfg(0.05));
  reference.run(0, 60, nullptr);

  // Interrupted: LowDiff checkpointing, crash after 37 iterations.
  auto mem = std::make_shared<MemStorage>();
  auto store = std::make_shared<CheckpointStore>(mem);
  LowDiffStrategy::Options opt;
  opt.batch_size = 3;
  opt.full_interval = 10;

  Trainer crashed(mlp(), trainer_cfg(0.05));
  {
    auto strategy = std::make_unique<LowDiffStrategy>(store, opt);
    crashed.run(0, 37, strategy.get());
    strategy->flush();  // clean handoff point for the assertion below
  }

  // "New process": recover the model state from storage.
  TopKCompressor comp(0.05);
  Adam adam(trainer_cfg(0.05).adam);
  RecoveryEngine engine(crashed.spec(), adam.clone(), comp.clone());
  RecoveryReport report;
  const auto recovered = engine.recover_serial(*store, &report);
  EXPECT_EQ(report.final_iteration, 36u);

  // The recovered state matches the crashed trainer's live state exactly.
  EXPECT_TRUE(recovered.bit_equal(crashed.state(0)));

  // Resume training from iteration 37 and converge with the reference.
  Trainer resumed(mlp(), trainer_cfg(0.05));
  resumed.set_state(recovered);
  resumed.run(37, 23, nullptr);
  EXPECT_TRUE(resumed.state(0).bit_equal(reference.state(0)));
}

TEST(Integration, CrashMidBatchLosesOnlyTheBufferedTail) {
  auto mem = std::make_shared<MemStorage>();
  auto store = std::make_shared<CheckpointStore>(mem);
  LowDiffStrategy::Options opt;
  opt.batch_size = 4;
  opt.full_interval = 8;

  Trainer trainer(mlp(), trainer_cfg(0.05));
  {
    auto strategy = std::make_unique<LowDiffStrategy>(store, opt);
    trainer.run(0, 22, strategy.get());
    // Wait until every enqueued payload has been offloaded and all full
    // batches written, then crash without flushing the partial batch.
    while (strategy->stats().batched_writes < 5) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }  // destructor = crash; diffs 20..21 (partial batch) are dropped

  TopKCompressor comp(0.05);
  Adam adam(trainer_cfg(0.05).adam);
  RecoveryEngine engine(trainer.spec(), adam.clone(), comp.clone());
  RecoveryReport report;
  const auto recovered = engine.recover_serial(*store, &report);

  // Full at 15, batches up to diff 19: at most batch_size iterations lost.
  EXPECT_GE(report.final_iteration, 19u);
  EXPECT_LE(22u - (report.final_iteration + 1), opt.batch_size);

  // Recovered state equals a clean run up to final_iteration + 1.
  Trainer replay(mlp(), trainer_cfg(0.05));
  replay.run(0, report.final_iteration + 1, nullptr);
  EXPECT_TRUE(recovered.bit_equal(replay.state(0)));
}

TEST(Integration, ParallelRecoveryMatchesSerialOnRealTraining) {
  auto mem = std::make_shared<MemStorage>();
  auto store = std::make_shared<CheckpointStore>(mem);
  LowDiffStrategy::Options opt;
  opt.batch_size = 2;
  opt.full_interval = 12;

  Trainer trainer(mlp(), trainer_cfg(0.05));
  auto strategy = std::make_unique<LowDiffStrategy>(store, opt);
  trainer.run(0, 30, strategy.get());
  strategy->flush();
  strategy.reset();

  TopKCompressor comp(0.05);
  Adam adam(trainer_cfg(0.05).adam);
  RecoveryEngine engine(trainer.spec(), adam.clone(), comp.clone());
  ThreadPool pool(4);
  const auto serial = engine.recover_serial(*store);
  const auto parallel = engine.recover_parallel(*store, pool);
  EXPECT_TRUE(serial.bit_equal(parallel));
  EXPECT_TRUE(serial.bit_equal(trainer.state(0)));
}

TEST(Integration, LowDiffPlusSoftwareFailureRecovery) {
  // Dense training with layer-wise streaming; kill the training process
  // (but not the checkpointing process) and restore from the CPU replica.
  auto mem = std::make_shared<MemStorage>();
  auto store = std::make_shared<CheckpointStore>(mem);

  auto cfg = trainer_cfg(0.0);
  Trainer trainer(mlp(), cfg);
  ModelState init(trainer.spec());
  init.init_random(cfg.seed);

  LowDiffPlusStrategy::Options opt;
  opt.persist_interval = 6;
  auto strategy = std::make_unique<LowDiffPlusStrategy>(
      store, init, std::make_unique<Adam>(cfg.adam), opt);

  trainer.run(0, 20, nullptr, strategy.get());

  // Software failure: training state lost, replica survives in "CPU
  // memory".  Restore and verify it equals the lost training state.
  const auto replica = strategy->replica_snapshot(19);
  EXPECT_TRUE(replica.bit_equal(trainer.state(0)));

  // Resume from the replica; trajectory matches an uninterrupted run.
  Trainer resumed(mlp(), cfg);
  resumed.set_state(replica);
  resumed.run(20, 15, nullptr);

  Trainer reference(mlp(), cfg);
  reference.run(0, 35, nullptr);
  EXPECT_TRUE(resumed.state(0).bit_equal(reference.state(0)));

  // Hardware failure path: replica lost, recover from persisted storage.
  strategy->flush();
  strategy.reset();
  const auto persisted_iter = store->latest_full();
  ASSERT_TRUE(persisted_iter.has_value());
  EXPECT_EQ(*persisted_iter, 17u);  // persists at iterations 5, 11, 17
  const auto from_disk = store->read_full(*persisted_iter, trainer.spec());
  Trainer replay(mlp(), cfg);
  replay.run(0, *persisted_iter + 1, nullptr);
  EXPECT_TRUE(from_disk.bit_equal(replay.state(0)));
}

TEST(Integration, LossTrajectoryUnaffectedByCheckpointing) {
  // Checkpointing must be observationally transparent to training.
  Trainer plain(mlp(), trainer_cfg(0.05));
  const auto r1 = plain.run(0, 25, nullptr);

  auto mem = std::make_shared<MemStorage>();
  auto store = std::make_shared<CheckpointStore>(mem);
  LowDiffStrategy::Options opt;
  opt.batch_size = 2;
  opt.full_interval = 5;
  Trainer checkpointed(mlp(), trainer_cfg(0.05));
  auto strategy = std::make_unique<LowDiffStrategy>(store, opt);
  const auto r2 = checkpointed.run(0, 25, strategy.get());
  strategy->flush();
  strategy.reset();

  EXPECT_EQ(r1.losses, r2.losses);
  EXPECT_TRUE(plain.state(0).bit_equal(checkpointed.state(0)));
}

/// Bit-exact crash recovery must hold for every compression scheme the
/// training loop supports — the reuse idea is compressor-agnostic.
class CompressionSchemes : public ::testing::TestWithParam<GradCompression> {};

TEST_P(CompressionSchemes, CrashRecoveryIsBitExact) {
  auto cfg = trainer_cfg(0.05);
  cfg.compression = GetParam();

  auto mem = std::make_shared<MemStorage>();
  auto store = std::make_shared<CheckpointStore>(mem);
  LowDiffStrategy::Options opt;
  opt.batch_size = 2;
  opt.full_interval = 7;

  Trainer trainer(mlp(), cfg);
  {
    auto strategy = std::make_unique<LowDiffStrategy>(store, opt);
    trainer.run(0, 18, strategy.get());
    strategy->flush();
  }

  std::unique_ptr<Compressor> comp;
  switch (GetParam()) {
    case GradCompression::kTopK:
      comp = std::make_unique<TopKCompressor>(cfg.rho);
      break;
    case GradCompression::kRandomK:
      comp = std::make_unique<RandomKCompressor>(cfg.rho, cfg.seed);
      break;
    case GradCompression::kQuant8:
      comp = std::make_unique<Quant8Compressor>();
      break;
    case GradCompression::kDense:
      comp = std::make_unique<DenseCompressor>();
      break;
  }
  Adam adam(cfg.adam);
  RecoveryEngine engine(trainer.spec(), adam.clone(), std::move(comp));
  const auto recovered = engine.recover_serial(*store);
  EXPECT_TRUE(recovered.bit_equal(trainer.state(0)));
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, CompressionSchemes,
                         ::testing::Values(GradCompression::kTopK,
                                           GradCompression::kRandomK,
                                           GradCompression::kQuant8),
                         [](const auto& info) {
                           switch (info.param) {
                             case GradCompression::kTopK: return "TopK";
                             case GradCompression::kRandomK: return "RandomK";
                             case GradCompression::kQuant8: return "Quant8";
                             case GradCompression::kDense: return "Dense";
                           }
                           return "?";
                         });

/// Chaos property: crash at an arbitrary iteration (no flush).  Recovery
/// must land on a consistent prefix of training — never a torn state —
/// losing at most the unbatched differential tail.
class CrashPoints : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrashPoints, RecoveryLandsOnAValidPrefixState) {
  const std::uint64_t crash_iter = GetParam();
  const std::uint64_t full_interval = 5;
  const std::uint64_t batch = 3;

  auto mem = std::make_shared<MemStorage>();
  auto store = std::make_shared<CheckpointStore>(mem);

  Trainer trainer(mlp(), trainer_cfg(0.05));
  {
    LowDiffStrategy::Options chaos_opt;
    chaos_opt.batch_size = batch;
    chaos_opt.full_interval = full_interval;
    auto strategy = std::make_unique<LowDiffStrategy>(store, chaos_opt);
    trainer.run(0, crash_iter, strategy.get());
    // Let the async pipeline catch up to a deterministic cut, then crash.
    while (strategy->stats().diff_ckpts != crash_iter ||
           store->latest_full() == std::nullopt) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }  // crash: partial batch + any in-queue payloads may be lost

  Adam adam(trainer_cfg(0.05).adam);
  TopKCompressor comp(0.05);
  RecoveryEngine engine(trainer.spec(), adam.clone(), comp.clone());
  RecoveryReport report;
  const auto recovered = engine.recover_serial(*store, &report);

  // Bounded loss: everything up to the last durable artifact survives.
  EXPECT_LT(crash_iter - 1 - report.final_iteration, batch + full_interval);

  // Consistent prefix: identical to a clean run of final_iteration+1 steps.
  Trainer replay(mlp(), trainer_cfg(0.05));
  replay.run(0, report.final_iteration + 1, nullptr);
  EXPECT_TRUE(recovered.bit_equal(replay.state(0)));
}

INSTANTIATE_TEST_SUITE_P(Chaos, CrashPoints,
                         ::testing::Values(6, 9, 14, 23, 31, 40));

TEST(Integration, RecoveredStateBroadcastsToAllRanks) {
  // After recovery, rank 0 broadcasts the restored parameters to the
  // worker group; training then proceeds in lockstep.
  auto cfg = trainer_cfg(0.05);
  cfg.world = 3;
  Trainer trainer(mlp(), cfg);
  trainer.run(0, 10, nullptr);
  const auto snapshot = trainer.state(0).clone();

  // Simulate: only rank 0 has the recovered state; others hold garbage.
  CommGroup comm(3);
  std::vector<ModelState> states;
  for (std::size_t r = 0; r < 3; ++r) {
    ModelState s(trainer.spec());
    if (r == 0) {
      s = snapshot.clone();
    } else {
      s.init_random(999 + r);
    }
    states.push_back(std::move(s));
  }
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] {
      comm.broadcast(r, 0, states[r].params().span());
      comm.broadcast(r, 0, states[r].moment1().span());
      comm.broadcast(r, 0, states[r].moment2().span());
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t r = 1; r < 3; ++r) {
    states[r].set_step(snapshot.step());
    EXPECT_TRUE(states[r].bit_equal(snapshot)) << "rank " << r;
  }
}

TEST(Integration, DiskBackedCheckpointsSurviveProcessBoundary) {
  // FileStorage end-to-end: everything a "new process" needs is on disk.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("lowdiff_disk_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  auto cfg = trainer_cfg(0.05);
  const MlpNet probe_net(mlp());
  ModelState final_state(probe_net.spec());
  {
    auto backend = std::make_shared<FileStorage>(dir);
    auto store = std::make_shared<CheckpointStore>(backend);
    Trainer trainer(mlp(), cfg);
    LowDiffStrategy::Options disk_opt;
    disk_opt.batch_size = 3;
    disk_opt.full_interval = 8;
    auto strategy = std::make_unique<LowDiffStrategy>(store, disk_opt);
    trainer.run(0, 20, strategy.get());
    strategy->flush();
    strategy.reset();
    final_state = trainer.state(0).clone();
  }  // "process exits"

  {
    auto backend = std::make_shared<FileStorage>(dir);
    CheckpointStore store(backend);
    Trainer probe(mlp(), cfg);  // provides the spec
    Adam adam(cfg.adam);
    TopKCompressor comp(cfg.rho);
    RecoveryEngine engine(probe.spec(), adam.clone(), comp.clone());
    const auto recovered = engine.recover_serial(store);
    EXPECT_TRUE(recovered.bit_equal(final_state));
  }
  std::filesystem::remove_all(dir);
}

TEST(Integration, CorruptedCheckpointDegradesToLastValidFull) {
  auto mem = std::make_shared<MemStorage>();
  auto store = std::make_shared<CheckpointStore>(mem);
  Trainer trainer(mlp(), trainer_cfg(0.05));
  LowDiffStrategy::Options corrupt_opt;
  corrupt_opt.batch_size = 2;
  corrupt_opt.full_interval = 5;
  auto strategy = std::make_unique<LowDiffStrategy>(store, corrupt_opt);
  trainer.run(0, 10, strategy.get());
  strategy->flush();
  strategy.reset();

  const auto fulls = store->fulls();
  ASSERT_GE(fulls.size(), 2u) << "test needs an older full to fall back to";

  // Flip a bit in the latest full checkpoint, bypassing the commit protocol
  // (the marker still promises the original CRC — silent media corruption).
  const auto key = CheckpointStore::full_key(*store->latest_full());
  auto bytes = *mem->read(key);
  bytes[bytes.size() / 2] ^= std::byte{0x01};
  mem->write(key, bytes);

  // Recovery must detect the corruption via CRC and degrade to the previous
  // valid full checkpoint instead of throwing or using the bad state.
  TopKCompressor comp(0.05);
  Adam adam(trainer_cfg(0.05).adam);
  RecoveryEngine engine(trainer.spec(), adam.clone(), comp.clone());
  RecoveryReport report;
  const auto recovered = engine.recover_serial(*store, &report);

  EXPECT_EQ(report.corrupt_fulls_skipped, 1u);
  EXPECT_GE(report.final_iteration, fulls[fulls.size() - 2]);

  // The degraded state is still a *correct* state: bit-equal to a clean run
  // executed up to the iteration recovery reports.
  Trainer replay(mlp(), trainer_cfg(0.05));
  replay.run(0, report.final_iteration + 1, nullptr);
  EXPECT_TRUE(recovered.bit_equal(replay.state(0)));
}

}  // namespace
}  // namespace lowdiff

namespace lowdiff {
namespace {

TEST(Integration, RepeatedCrashRecoverCyclesStayOnTrajectory) {
  // Four crash/recover cycles; after each, training resumes from the
  // recovered state.  The final state must be *identical* to a run that
  // re-executed only the lost iterations — i.e., repeated failures degrade
  // time, never correctness.
  const auto cfg = trainer_cfg(0.05);
  auto mem = std::make_shared<MemStorage>();
  auto store = std::make_shared<CheckpointStore>(mem);
  LowDiffStrategy::Options opt;
  opt.batch_size = 2;
  opt.full_interval = 6;

  Adam adam(cfg.adam);
  TopKCompressor comp(0.05);

  std::uint64_t position = 0;  // next iteration to execute
  Trainer trainer(mlp(), cfg);
  for (int cycle = 0; cycle < 4; ++cycle) {
    {
      auto strategy = std::make_unique<LowDiffStrategy>(store, opt);
      trainer.run(position, 11, strategy.get());
      strategy->flush();  // cycle boundary is durable
    }
    // Crash: a fresh "process" recovers from storage.
    RecoveryEngine engine(trainer.spec(), adam.clone(), comp.clone());
    RecoveryReport report;
    const auto recovered = engine.recover_serial(*store, &report);
    position = report.final_iteration + 1;
    trainer.set_state(recovered);
  }

  Trainer reference(mlp(), cfg);
  reference.run(0, position, nullptr);
  EXPECT_TRUE(trainer.state(0).bit_equal(reference.state(0)));
  EXPECT_EQ(position, 44u);  // flushed boundaries lose nothing here
}

}  // namespace
}  // namespace lowdiff
