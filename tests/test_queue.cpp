#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "queue/reusing_queue.h"

namespace lowdiff {
namespace {

TEST(ReusingQueue, FifoOrder) {
  ReusingQueue<int> q;
  for (int i = 0; i < 10; ++i) q.put(std::make_shared<const int>(i));
  for (int i = 0; i < 10; ++i) {
    auto h = q.get();
    ASSERT_TRUE(h.has_value());
    EXPECT_EQ(**h, i);
  }
}

TEST(ReusingQueue, ZeroCopyHandleIdentity) {
  // The queue must move the handle, not the payload — the in-process
  // analogue of CUDA IPC sharing the same GPU memory.
  ReusingQueue<std::vector<float>> q;
  auto payload = std::make_shared<const std::vector<float>>(1000, 1.0f);
  const void* address = payload->data();
  q.put(payload);
  auto out = q.get();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ((*out)->data(), address);
}

TEST(ReusingQueue, NullHandleRejected) {
  ReusingQueue<int> q;
  EXPECT_THROW(q.put(nullptr), Error);
}

TEST(ReusingQueue, BoundedPutBlocksUntilConsumed) {
  ReusingQueue<int> q(2);
  q.put(std::make_shared<const int>(1));
  q.put(std::make_shared<const int>(2));
  EXPECT_FALSE(q.try_put(std::make_shared<const int>(3)));

  std::atomic<bool> third_accepted{false};
  std::thread producer([&q, &third_accepted] {
    q.put(std::make_shared<const int>(3));  // blocks until a slot frees
    third_accepted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_accepted.load());
  EXPECT_EQ(**q.get(), 1);
  producer.join();
  EXPECT_TRUE(third_accepted.load());
  EXPECT_EQ(**q.get(), 2);
  EXPECT_EQ(**q.get(), 3);
}

TEST(ReusingQueue, CloseDrainsThenSignalsEnd) {
  ReusingQueue<int> q;
  q.put(std::make_shared<const int>(7));
  q.put(std::make_shared<const int>(8));
  q.close();
  EXPECT_FALSE(q.put(std::make_shared<const int>(9)));  // rejected
  EXPECT_EQ(**q.get(), 7);
  EXPECT_EQ(**q.get(), 8);
  EXPECT_FALSE(q.get().has_value());  // drained -> end
  EXPECT_TRUE(q.closed());
}

TEST(ReusingQueue, GetBlocksUntilPut) {
  ReusingQueue<int> q;
  std::optional<std::shared_ptr<const int>> received;
  std::thread consumer([&q, &received] { received = q.get(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.put(std::make_shared<const int>(5));
  consumer.join();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(**received, 5);
}

TEST(ReusingQueue, TryGetNonBlocking) {
  ReusingQueue<int> q;
  EXPECT_FALSE(q.try_get().has_value());
  q.put(std::make_shared<const int>(1));
  EXPECT_TRUE(q.try_get().has_value());
}

TEST(ReusingQueue, HighWatermarkAndCounters) {
  ReusingQueue<int> q;
  for (int i = 0; i < 5; ++i) q.put(std::make_shared<const int>(i));
  q.get();
  q.put(std::make_shared<const int>(9));
  EXPECT_EQ(q.high_watermark(), 5u);
  EXPECT_EQ(q.total_enqueued(), 6u);
  EXPECT_EQ(q.size(), 5u);
}

TEST(ReusingQueue, ConcurrentProducerConsumerDeliversAll) {
  ReusingQueue<int> q(16);
  constexpr int kItems = 5000;
  std::vector<int> received;
  received.reserve(kItems);

  std::thread consumer([&q, &received] {
    while (auto h = q.get()) {
      received.push_back(**h);
    }
  });
  std::thread producer([&q] {
    for (int i = 0; i < kItems; ++i) q.put(std::make_shared<const int>(i));
    q.close();
  });
  producer.join();
  consumer.join();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kItems));
  // FIFO: the single consumer must see items in exact order.
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(received[i], i);
}

TEST(ReusingQueue, PayloadFreedWhenConsumerDropsHandle) {
  ReusingQueue<std::vector<float>> q;
  std::weak_ptr<const std::vector<float>> weak;
  {
    auto payload = std::make_shared<const std::vector<float>>(10, 2.0f);
    weak = payload;
    q.put(std::move(payload));
  }
  EXPECT_FALSE(weak.expired());  // queue keeps it alive
  {
    auto h = q.get();
    ASSERT_TRUE(h.has_value());
  }
  EXPECT_TRUE(weak.expired());  // "GPU memory" released after offload
}

}  // namespace
}  // namespace lowdiff

namespace lowdiff {
namespace {

TEST(ReusingQueue, CloseUnblocksWaitingProducer) {
  ReusingQueue<int> q(1);
  q.put(std::make_shared<const int>(1));
  std::atomic<bool> returned{false};
  std::thread producer([&q, &returned] {
    const bool accepted = q.put(std::make_shared<const int>(2));
    EXPECT_FALSE(accepted);  // released by close, not by space
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(returned.load());
  q.close();
  producer.join();
  EXPECT_TRUE(returned.load());
}

TEST(ReusingQueue, CloseUnblocksWaitingConsumer) {
  ReusingQueue<int> q;
  std::atomic<bool> got_end{false};
  std::thread consumer([&q, &got_end] {
    got_end = !q.get().has_value();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
  EXPECT_TRUE(got_end.load());
}

}  // namespace
}  // namespace lowdiff
